package wwt_test

// Batched-execution tests: every AnswerBatch member must be bit-identical
// to a solo Answer of the same query, batches must be safe under -race
// with arenas recycling between workers, and a failing (or panicking)
// member must be isolated to its own slot.

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"wwt"
	"wwt/internal/corpusgen"
	"wwt/internal/extract"
	"wwt/internal/inference"
	"wwt/internal/workload"
)

// TestAnswerBatchEquivalence answers the evaluation workload solo and then
// as one batch per inference algorithm, and demands bit-identical results
// for every member: labeling, model edges and node potentials, candidate
// tables, probe2 usage, and the consolidated answer rows with their
// ranking.
func TestAnswerBatchEquivalence(t *testing.T) {
	corpus := corpusgen.Generate(corpusgen.Config{Seed: 2012, Scale: 0.25})
	tables := corpus.ExtractAll(extract.NewOptions())
	queries := workload.FromCorpus(corpus)
	if len(queries) == 0 {
		t.Fatal("no workload queries")
	}
	wqs := make([]wwt.Query, len(queries))
	for i, q := range queries {
		wqs[i] = wwt.Query{Columns: q.Columns}
	}
	for _, alg := range inference.Algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			opts := wwt.DefaultOptions()
			opts.Algorithm = alg
			eng, err := wwt.NewEngine(tables, &opts)
			if err != nil {
				t.Fatal(err)
			}
			// Solo references, serially. Retained (not Released), so their
			// scratch-backed models cannot alias the batch's arenas.
			refs := make([]*wwt.Result, len(wqs))
			refErrs := make([]error, len(wqs))
			for i, q := range wqs {
				refs[i], refErrs[i] = eng.Answer(q)
			}

			br := eng.AnswerBatch(wqs, 4)
			if br.Timings.Queries != len(wqs) {
				t.Fatalf("Timings.Queries = %d, want %d", br.Timings.Queries, len(wqs))
			}
			for i, q := range queries {
				if (br.Errs[i] == nil) != (refErrs[i] == nil) {
					t.Fatalf("%v: batch err %v, solo err %v", q.Columns, br.Errs[i], refErrs[i])
				}
				if br.Errs[i] != nil {
					continue
				}
				got, want := br.Results[i], refs[i]
				if got.UsedProbe2 != want.UsedProbe2 {
					t.Fatalf("%v: UsedProbe2 %v != %v", q.Columns, got.UsedProbe2, want.UsedProbe2)
				}
				if len(got.Tables) != len(want.Tables) {
					t.Fatalf("%v: %d tables != %d", q.Columns, len(got.Tables), len(want.Tables))
				}
				for ti := range got.Tables {
					if got.Tables[ti].ID != want.Tables[ti].ID {
						t.Fatalf("%v: table %d = %s, want %s", q.Columns, ti, got.Tables[ti].ID, want.Tables[ti].ID)
					}
				}
				if !reflect.DeepEqual(got.Labeling.Y, want.Labeling.Y) {
					t.Fatalf("%v: labeling diverged", q.Columns)
				}
				if !reflect.DeepEqual(got.Model.Edges, want.Model.Edges) {
					t.Fatalf("%v: model edges diverged", q.Columns)
				}
				if !reflect.DeepEqual(got.Model.Node, want.Model.Node) {
					t.Fatalf("%v: node potentials diverged", q.Columns)
				}
				// Answer rows, including ranking, support, sources, scores.
				if !reflect.DeepEqual(got.Answer, want.Answer) {
					t.Fatalf("%v: consolidated answer diverged", q.Columns)
				}
			}
			br.Release()
			br.Release() // idempotent

			// The ctx entry point with a generous per-member deadline must
			// stay bit-identical too (deadline plumbing perturbs nothing).
			// Run it for the paper-default algorithm to bound test cost.
			if alg == inference.TableCentric {
				dbr := eng.AnswerBatchCtx(context.Background(), wqs, 4, time.Hour)
				for i := range wqs {
					if (dbr.Errs[i] == nil) != (refErrs[i] == nil) {
						t.Fatalf("deadline batch member %d: err %v, solo err %v", i, dbr.Errs[i], refErrs[i])
					}
					if dbr.Errs[i] != nil {
						continue
					}
					if !reflect.DeepEqual(dbr.Results[i].Labeling.Y, refs[i].Labeling.Y) ||
						!reflect.DeepEqual(dbr.Results[i].Answer, refs[i].Answer) {
						t.Fatalf("deadline batch member %d diverged from solo", i)
					}
				}
				dbr.Release()
			}

			// A pre-canceled parent context fails every member with ctx.Err()
			// in its own slot — and leaves the arena pool healthy: the next
			// solo answer still matches its reference.
			cctx, cancel := context.WithCancel(context.Background())
			cancel()
			cbr := eng.AnswerBatchCtx(cctx, wqs, 4, 0)
			for i := range wqs {
				if !errors.Is(cbr.Errs[i], context.Canceled) {
					t.Fatalf("canceled batch member %d: err = %v, want context.Canceled", i, cbr.Errs[i])
				}
				if cbr.Results[i] != nil {
					t.Fatalf("canceled batch member %d: non-nil result", i)
				}
			}
			if cbr.Timings.Failed != len(wqs) || cbr.Timings.QPS() != 0 {
				t.Fatalf("canceled batch: Failed = %d, QPS = %v, want all failed at 0 QPS",
					cbr.Timings.Failed, cbr.Timings.QPS())
			}
			if refErrs[0] == nil {
				again, err := eng.Answer(wqs[0])
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(again.Answer, refs[0].Answer) {
					t.Fatal("post-cancel solo answer diverged: arena pool poisoned")
				}
				again.Release()
			}
		})
	}
}

// TestAnswerBatchConcurrent runs overlapping batches from many goroutines
// on one engine (run under -race). Every batch contains two members that
// must error — an empty query and a stopword-only query — and those
// errors must stay isolated to their slots while every other member stays
// bit-identical to its solo reference.
func TestAnswerBatchConcurrent(t *testing.T) {
	eng, err := wwt.NewEngine(smallCorpus(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	queries := []wwt.Query{
		{Columns: []string{"country", "currency"}},
		{}, // must error: empty query
		{Columns: []string{"currency", "country"}},
		{Columns: []string{"the of a"}}, // must error: no content words
		{Columns: []string{"name", "area"}},
		{Columns: []string{"currency"}},
	}
	bad := map[int]bool{1: true, 3: true}
	refs := make([]*wwt.Result, len(queries))
	for i, q := range queries {
		if bad[i] {
			continue
		}
		if refs[i], err = eng.Answer(q); err != nil {
			t.Fatal(err)
		}
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			br := eng.AnswerBatch(queries, 1+g%4)
			if br.FirstErr() == nil {
				t.Errorf("goroutine %d: FirstErr = nil, want the empty-query error", g)
				return
			}
			for i := range queries {
				if bad[i] {
					if br.Errs[i] == nil || br.Results[i] != nil {
						t.Errorf("goroutine %d member %d: bad query not isolated (err=%v)", g, i, br.Errs[i])
						return
					}
					continue
				}
				if br.Errs[i] != nil {
					t.Errorf("goroutine %d member %d: %v", g, i, br.Errs[i])
					return
				}
				res := br.Results[i]
				if !reflect.DeepEqual(res.Labeling.Y, refs[i].Labeling.Y) ||
					!reflect.DeepEqual(res.Model.Edges, refs[i].Model.Edges) ||
					!reflect.DeepEqual(res.Answer, refs[i].Answer) {
					t.Errorf("goroutine %d member %d: diverged from solo reference", g, i)
					return
				}
			}
			if br.Timings.Failed != len(bad) {
				t.Errorf("goroutine %d: Failed = %d, want %d", g, br.Timings.Failed, len(bad))
			}
			br.Release()
		}(g)
	}
	wg.Wait()
}

// TestCandidatesBatchEquivalence pins every CandidatesBatch member to its
// solo Candidates call: same tables in the same order, same probe2 usage,
// and errors in the same slots.
func TestCandidatesBatchEquivalence(t *testing.T) {
	eng, err := wwt.NewEngine(smallCorpus(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	queries := []wwt.Query{
		{Columns: []string{"country", "currency"}},
		{Columns: []string{"the of a"}}, // must error
		{Columns: []string{"name", "area"}},
		{Columns: []string{"currency"}},
	}
	sets, errs, bt := eng.CandidatesBatch(queries, 2)
	if bt.Queries != len(queries) || bt.Failed != 1 {
		t.Fatalf("BatchTimings = %+v, want %d queries, 1 failed", bt, len(queries))
	}
	for i, q := range queries {
		tables, used2, err := eng.Candidates(q, nil)
		if (err == nil) != (errs[i] == nil) {
			t.Fatalf("member %d: batch err %v, solo err %v", i, errs[i], err)
		}
		if err != nil {
			continue
		}
		if sets[i].UsedProbe2 != used2 {
			t.Errorf("member %d: UsedProbe2 %v != %v", i, sets[i].UsedProbe2, used2)
		}
		if len(sets[i].Tables) != len(tables) {
			t.Fatalf("member %d: %d tables != %d", i, len(sets[i].Tables), len(tables))
		}
		for ti := range tables {
			if sets[i].Tables[ti].ID != tables[ti].ID {
				t.Errorf("member %d table %d: %s != %s", i, ti, sets[i].Tables[ti].ID, tables[ti].ID)
			}
		}
	}
}

// TestAnswerBatchPanicIsolation wrecks the engine's table store so every
// member's Read1 stage panics, and demands that each panic is recovered
// into its member's error slot instead of killing the process — and that a
// poisoned arena never re-enters the pool (a later Answer on a healthy
// engine still works).
func TestAnswerBatchPanicIsolation(t *testing.T) {
	tables := smallCorpus(t)
	eng, err := wwt.NewEngine(tables, nil)
	if err != nil {
		t.Fatal(err)
	}
	broken := wwt.NewEngineFrom(eng.Index, nil, &eng.Opts) // nil store: Read1 panics
	queries := []wwt.Query{
		{Columns: []string{"country", "currency"}},
		{Columns: []string{"currency"}},
	}
	br := broken.AnswerBatch(queries, 2)
	for i := range queries {
		if br.Errs[i] == nil || !strings.Contains(br.Errs[i].Error(), "panicked") {
			t.Fatalf("member %d: err = %v, want recovered panic", i, br.Errs[i])
		}
		if br.Results[i] != nil {
			t.Fatalf("member %d: non-nil result for panicked member", i)
		}
	}
	if br.Timings.Failed != len(queries) {
		t.Errorf("Failed = %d, want %d", br.Timings.Failed, len(queries))
	}
	// Same with a per-member deadline: the panic must not leak the
	// member's timeout context (its cancel is deferred under the panic).
	dbr := broken.AnswerBatchCtx(context.Background(), queries, 2, time.Hour)
	for i := range queries {
		if dbr.Errs[i] == nil || !strings.Contains(dbr.Errs[i].Error(), "panicked") {
			t.Fatalf("deadline member %d: err = %v, want recovered panic", i, dbr.Errs[i])
		}
		if !errors.Is(dbr.Errs[i], wwt.ErrPanic) {
			t.Fatalf("deadline member %d: err %v does not wrap wwt.ErrPanic", i, dbr.Errs[i])
		}
	}
	// The healthy engine is unaffected.
	res, err := eng.Answer(queries[0])
	if err != nil {
		t.Fatalf("healthy engine after panic batch: %v", err)
	}
	res.Release()
}

// TestAnswerBatchEmpty: a zero-member batch is a cheap no-op.
func TestAnswerBatchEmpty(t *testing.T) {
	eng, err := wwt.NewEngine(smallCorpus(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	br := eng.AnswerBatch(nil, 8)
	if len(br.Results) != 0 || len(br.Errs) != 0 || br.FirstErr() != nil {
		t.Fatalf("empty batch = %+v", br)
	}
	br.Release()
}
