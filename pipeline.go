package wwt

// The Fig. 2 query path as an explicit staged pipeline:
//
//	Probe1 → Read1 → Probe2 → Read2 → ColumnMap → Infer → Consolidate
//
// Each stage is a named Engine method with explicit inputs/outputs carried
// by a queryState, fed by one pooled QueryScratch arena. Candidates runs
// the probe prefix; Answer runs the whole list. The stage list is the
// seam later batching/sharding work builds on: a stage sees only the
// state fields it declares, and the per-stage Timings split falls out of
// the driver loop.

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"wwt/internal/consolidate"
	"wwt/internal/core"
	"wwt/internal/index"
	"wwt/internal/inference"
	"wwt/internal/plan"
	"wwt/internal/text"
	"wwt/internal/wtable"
)

// QueryScratch is the pooled per-query arena: every stage's reusable flat
// buffers live here — probe token buffers, the model builder's grids, the
// inference message arrays, and consolidation's key indexes. The zero
// value is ready to use.
//
// Ownership: an arena is drawn from the engine pool at the start of a
// query and owned by exactly one query at a time. Candidates returns its
// arena when it finishes; Answer hands it to the Result (whose Model
// aliases the build arena) and it is recycled only by Result.Release.
// Everything else a query returns — answer rows, labeling, tables, hits —
// is freshly allocated, so an unreleased arena can never corrupt a
// retained result. Scratch buffers must never be written into the
// engine's cross-query caches; cache-owned slices referenced from scratch
// fields are read-only.
type QueryScratch struct {
	tokens []string        // probe-1 query tokens
	sample []string        // probe-2 token buffer (distinct from tokens: never aliased)
	seen   map[string]bool // read-2 table dedup

	build core.BuildScratch
	infer inference.Scratch
	cons  consolidate.Scratch
}

// getScratch draws an arena from the pool (fresh when empty).
func (e *Engine) getScratch() *QueryScratch {
	if s, ok := e.scratch.Get().(*QueryScratch); ok && s != nil {
		return s
	}
	return &QueryScratch{}
}

// putScratch returns an arena to the pool.
func (e *Engine) putScratch(s *QueryScratch) { e.scratch.Put(s) }

// queryState is the data flowing between pipeline stages. Each stage
// reads the fields earlier stages wrote and fills its own outputs; all
// retained outputs (tables, model payload, labeling, answer) own their
// storage except model, which aliases the query's arena.
type queryState struct {
	query  Query
	tokens []string // normalized probe-1 tokens (scratch-backed)

	hits1 []index.Hit // first-probe hits
	hits2 []index.Hit // second-probe hits (when probe2Fired)

	tables      []*wtable.Table // deduplicated candidates, probe-1 order first
	probe2Fired bool

	model    *core.Model
	labeling core.Labeling
	answer   *consolidate.Answer

	// Adaptive-planner state. popts are the effective levers for this
	// query (engine default or batch override); deadline is the context
	// deadline, captured once (zero when none). postings and tables1 are
	// the cost features observed on the way through; elided/degraded
	// record lever outcomes; algUsed is the algorithm actually solved
	// with (degraded or not), for calibration.
	popts    PlannerOptions
	deadline time.Time
	postings int
	scanned  int64 // probe-1 postings actually scored (after skips)
	tables1  int
	elided   bool
	degraded bool
	algUsed  inference.Algorithm
}

// pipelineStage names one stage and binds it to its Timings slot. run
// reports whether the stage actually did work: a skipped stage (e.g. the
// second probe when disabled or unseeded) leaves its Timings slot at zero.
type pipelineStage struct {
	name  string
	clock func(*Timings) *time.Duration
	run   func(*Engine, *queryState, *QueryScratch) (bool, error)
}

// answerPipeline is the full Fig. 2 online path; probePipeline is the
// candidate-retrieval prefix Candidates runs.
var answerPipeline = []pipelineStage{
	{"probe1", func(t *Timings) *time.Duration { return &t.Probe1 }, (*Engine).stageProbe1},
	{"read1", func(t *Timings) *time.Duration { return &t.Read1 }, (*Engine).stageRead1},
	{"probe2", func(t *Timings) *time.Duration { return &t.Probe2 }, (*Engine).stageProbe2},
	{"read2", func(t *Timings) *time.Duration { return &t.Read2 }, (*Engine).stageRead2},
	{"colmap", func(t *Timings) *time.Duration { return &t.ColumnMap }, (*Engine).stageColumnMap},
	{"infer", func(t *Timings) *time.Duration { return &t.Infer }, (*Engine).stageInfer},
	{"consolidate", func(t *Timings) *time.Duration { return &t.Consolidate }, (*Engine).stageConsolidate},
}

var probePipeline = answerPipeline[:4]

// runStages drives a stage list over one query, recording each stage's
// wall time in its Timings slot. Cancellation is checked between stages
// (a nil ctx disables the checks): a query whose context is canceled or
// past its deadline stops before the next stage starts and returns
// ctx.Err(). Stages themselves run to completion, so an aborted query
// leaves its arena in the same merely-reusable state as any other failed
// query — safe to return to the pool, never poisoned.
func (e *Engine) runStages(ctx context.Context, stages []pipelineStage, st *queryState, s *QueryScratch, tm *Timings) error {
	for i := range stages {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		start := time.Now()
		ran, err := stages[i].run(e, st, s)
		if ran && tm != nil {
			*stages[i].clock(tm) = time.Since(start)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// stageProbe1 normalizes the query columns into one keyword set and runs
// the first index probe.
func (e *Engine) stageProbe1(st *queryState, s *QueryScratch) (bool, error) {
	if len(st.query.Columns) == 0 {
		return false, fmt.Errorf("wwt: empty query")
	}
	tokens := s.tokens[:0]
	for _, col := range st.query.Columns {
		tokens = append(tokens, text.Normalize(col)...)
	}
	s.tokens = tokens
	st.tokens = tokens
	if len(tokens) == 0 {
		return false, fmt.Errorf("wwt: query has no content words")
	}
	if e.planner != nil {
		// Cost feature: total posting entries under the (unique) query
		// terms. The read2 dedup map doubles as the token dedup here — it
		// is cleared again before stageRead2 uses it.
		if s.seen == nil {
			s.seen = make(map[string]bool, 2*len(tokens))
		}
		clear(s.seen)
		for _, tok := range tokens {
			if s.seen[tok] {
				continue
			}
			s.seen[tok] = true
			if _, postings, ok := e.termStats(tok); ok {
				st.postings += postings
			}
		}
	}
	var pst index.ProbeStats
	st.hits1, pst = e.search(tokens, e.Opts.ProbeK)
	st.scanned = pst.Scanned
	return true, nil
}

// stageRead1 materializes the first-probe candidate tables from the store.
func (e *Engine) stageRead1(st *queryState, _ *QueryScratch) (bool, error) {
	st.tables = e.readTables(st.hits1)
	st.tables1 = len(st.tables)
	return true, nil
}

// stageProbe2 runs the content-overlap re-probe of §2.2.1: a stage-1
// column mapping finds confident tables, rows sampled from them extend the
// keyword set, and the index is probed again. The stage-1 model is built
// in the query's arena and dead before the stage returns, so ColumnMap
// can reuse the same grids.
func (e *Engine) stageProbe2(st *queryState, s *QueryScratch) (bool, error) {
	if !e.Opts.SecondProbe || len(st.tables) == 0 {
		return false, nil
	}
	m := e.builder().BuildWith(st.query.Columns, st.tables, &s.build)
	l := inference.SolveScratch(m, inference.Independent, &s.infer)
	type scored struct {
		ti  int
		rel float64
	}
	// Top-two confident tables by relevance in one linear scan; strict
	// comparisons keep the earlier table on ties, matching a stable sort.
	var confident [2]scored
	nConf := 0
	for ti := range st.tables {
		if !l.Relevant(ti) || m.Rel[ti] < e.Opts.MinConfidentRelevance {
			continue
		}
		sc := scored{ti, m.Rel[ti]}
		switch {
		case nConf == 0:
			confident[0] = sc
			nConf = 1
		case sc.rel > confident[0].rel:
			confident[1] = confident[0]
			if nConf < 2 {
				nConf = 2
			}
			confident[0] = sc
		case nConf < 2:
			confident[1] = sc
			nConf = 2
		case sc.rel > confident[1].rel:
			confident[1] = sc
		}
	}
	if nConf == 0 {
		// No confident seed table: the second probe never fires. Report the
		// stage as skipped so Timings.Probe2 stays zero (the stage-1 mapping
		// cost stays untimed, as it always was), consistent with UsedProbe2.
		return false, nil
	}
	// Planner lever (a): when the stage-1 mapping is already confident
	// enough — some relevant, confidently-seeded table maps EVERY query
	// column with a stage-1 max-marginal clearing the threshold — the
	// second probe would only re-find tables the first probe ranked, so
	// skip it (and read2) entirely. Off by default; the threshold is the
	// safety knob.
	if st.popts.ElideProbe2 &&
		stage1Confidence(m, l, e.Opts.MinConfidentRelevance) >= st.popts.elideConfidence() {
		st.elided = true
		e.planElided.Add(1)
		return false, nil
	}
	// Sample rows deterministically per query.
	h := fnv.New64a()
	for _, c := range st.query.Columns {
		h.Write([]byte(c))
	}
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	// Probe-2 tokens go into their own scratch buffer — never an alias of
	// tokens, so appending can't grow into (and later clobber) its array.
	sample := append(s.sample[:0], st.tokens...)
	for i := 0; i < nConf; i++ {
		tb := st.tables[confident[i].ti]
		take := e.Opts.SecondProbeRows
		if rows := tb.NumBodyRows(); take > rows {
			take = rows
		}
		for _, r := range sampleRows(rng, tb.NumBodyRows(), take) {
			for c := 0; c < tb.NumCols(); c++ {
				sample = append(sample, e.normalizeCell(tb.Body(r, c))...)
			}
		}
	}
	s.sample = sample
	st.hits2, _ = e.search(sample, e.Opts.ProbeK)
	st.probe2Fired = true
	return true, nil
}

// stage1Confidence scores how certain the stage-1 (independent) mapping
// already is: over the relevant tables whose relevance clears minRel (the
// same gate that seeds the second probe), the best "weakest-link"
// confidence — the minimum, across the table's columns mapped to query
// columns, of the stage-1 max-marginal Conf. A table leaving any query
// column unmapped contributes nothing (the hard mutex constraint makes
// mapped columns distinct, so counting them detects full coverage).
// Returns 0 when no table covers every query column.
func stage1Confidence(m *core.Model, l core.Labeling, minRel float64) float64 {
	best := 0.0
	for ti := range m.Conf {
		if !l.Relevant(ti) || m.Rel[ti] < minRel {
			continue
		}
		minConf, covered := 1.0, 0
		for c, y := range l.Y[ti] {
			if y >= 0 && y < m.NumQ {
				covered++
				if v := m.Conf[ti][c]; v < minConf {
					minConf = v
				}
			}
		}
		if covered == m.NumQ && minConf > best {
			best = minConf
		}
	}
	return best
}

// normalizeCell analyzes one sampled body cell through the engine's
// normalization cache: cell values repeat heavily across queries, so the
// tokenize/stem chain runs once per distinct string. The returned tokens
// are the cache's backing slice — read-only; callers append copies. Falls
// back to plain Normalize on zero-value engines built without
// NewEngine/NewEngineFrom.
func (e *Engine) normalizeCell(s string) []string {
	if e.norm != nil {
		return e.norm.Normalize(s)
	}
	return text.Normalize(s)
}

// stageRead2 merges the second-probe tables into the candidate list,
// keeping first-probe order first and dropping duplicates.
func (e *Engine) stageRead2(st *queryState, s *QueryScratch) (bool, error) {
	if !st.probe2Fired {
		return false, nil
	}
	if s.seen == nil {
		s.seen = make(map[string]bool, 2*len(st.tables))
	}
	clear(s.seen)
	seen := s.seen
	for _, t := range st.tables {
		seen[t.ID] = true
	}
	for _, t := range e.readTables(st.hits2) {
		if !seen[t.ID] {
			seen[t.ID] = true
			st.tables = append(st.tables, t)
		}
	}
	return true, nil
}

// stageColumnMap assembles the §3 graphical model over the candidate set,
// reusing the arena grids the stage-1 build warmed. Planner lever (b)
// fires here first: a query whose estimated build+infer+consolidate cost
// overruns its deadline is degraded — candidates capped, inference
// downgraded at stageInfer — instead of aborting with DeadlineExceeded.
func (e *Engine) stageColumnMap(st *queryState, s *QueryScratch) (bool, error) {
	if e.overDeadline(st, true) {
		st.degraded = true
		e.planDegraded.Add(1)
		if limit := st.popts.degradeMaxTables(); len(st.tables) > limit {
			st.tables = st.tables[:limit]
		}
	}
	st.model = e.builder().BuildWith(st.query.Columns, st.tables, &s.build)
	return true, nil
}

// stageInfer runs the configured collective inference algorithm (§4). A
// degraded query — marked at stageColumnMap, or here when the build left
// too little budget for the collective solve — falls back to
// inference.Degrade's cheap algorithm.
func (e *Engine) stageInfer(st *queryState, s *QueryScratch) (bool, error) {
	alg := e.Opts.Algorithm
	if !st.degraded && e.overDeadline(st, false) {
		st.degraded = true
		e.planDegraded.Add(1)
	}
	if st.degraded {
		alg = inference.Degrade(alg)
	}
	st.algUsed = alg
	st.labeling = inference.SolveScratch(st.model, alg, &s.infer)
	return true, nil
}

// overDeadline reports whether planner lever (b) should degrade the query
// now: the lever is on, the query has a deadline, and the estimated cost
// of the remaining tail stages (scaled by the headroom factor) exceeds
// the remaining budget. A cold estimator predicts 0 and never degrades.
func (e *Engine) overDeadline(st *queryState, includeBuild bool) bool {
	if !st.popts.DeadlineDegrade || st.deadline.IsZero() || e.planner == nil {
		return false
	}
	tail := e.planner.EstimateTail(len(st.tables), int(e.Opts.Algorithm), includeBuild)
	if tail <= 0 {
		return false
	}
	need := time.Duration(float64(tail) * st.popts.degradeHeadroom())
	return need > time.Until(st.deadline)
}

// stageConsolidate merges and ranks the relevant tables' rows (§2.2.3).
func (e *Engine) stageConsolidate(st *queryState, s *QueryScratch) (bool, error) {
	st.answer = consolidate.ConsolidateScratch(len(st.query.Columns), st.tables,
		st.labeling, st.model.Conf, st.model.Rel, e.Opts.Consolidate, &s.cons)
	return true, nil
}

// Candidates runs the two-stage index probe of §2.2.1 — the probe prefix
// of the pipeline — and returns the candidate tables (deduplicated,
// first-probe order first). It reports whether the second probe fired and
// accumulates stage timings. The probe scratch comes from the engine pool
// and is returned before Candidates does.
func (e *Engine) Candidates(q Query, tm *Timings) ([]*wtable.Table, bool, error) {
	s := e.getScratch()
	defer e.putScratch(s)
	st := &queryState{query: q, popts: e.Opts.Planner}
	if err := e.runStages(nil, probePipeline, st, s, tm); err != nil {
		return nil, false, err
	}
	return st.tables, st.probe2Fired, nil
}

// Answer runs the full pipeline: probes, column mapping with the
// configured inference algorithm, and consolidation. The per-query arena
// is drawn from the engine pool and handed to the Result; call
// Result.Release to recycle it (see QueryScratch for the contract).
func (e *Engine) Answer(q Query) (*Result, error) {
	return e.AnswerCtx(context.Background(), q)
}

// AnswerCtx is Answer under a context: cancellation and the deadline are
// checked between pipeline stages, and an aborted query returns ctx.Err().
// Individual stages are not interrupted mid-flight, so the abort latency
// is bounded by the longest single stage. An aborted query's arena goes
// back to the engine pool exactly like any other failed query's.
func (e *Engine) AnswerCtx(ctx context.Context, q Query) (*Result, error) {
	s := e.getScratch()
	res, err := e.answer(ctx, q, s)
	if err != nil {
		e.putScratch(s)
		return nil, err
	}
	return res, nil
}

// answer drives the full stage list with the given arena under the
// engine's default planner levers; the returned Result owns the arena. A
// nil ctx disables cancellation checks.
func (e *Engine) answer(ctx context.Context, q Query, s *QueryScratch) (*Result, error) {
	return e.answerPlan(ctx, q, s, e.Opts.Planner)
}

// answerPlan is answer with explicit planner levers (batch requests can
// override the engine default per call). Every successfully answered
// query feeds its observed stage timings back into the cost estimator —
// calibration is observability-only and never changes an answer.
func (e *Engine) answerPlan(ctx context.Context, q Query, s *QueryScratch, popts PlannerOptions) (*Result, error) {
	res := &Result{engine: e, scratch: s}
	st := &queryState{query: q, popts: popts}
	if ctx != nil {
		if d, ok := ctx.Deadline(); ok {
			st.deadline = d
		}
	}
	if err := e.runStages(ctx, answerPipeline, st, s, &res.Timings); err != nil {
		return nil, err
	}
	res.Tables = st.tables
	res.UsedProbe2 = st.probe2Fired
	res.Probe2Elided = st.elided
	res.Degraded = st.degraded
	res.Model = st.model
	res.Labeling = st.labeling
	res.Answer = st.answer
	e.observePlan(st, &res.Timings)
	return res, nil
}

// observePlan folds one answered query's realized per-stage cost into the
// planner's estimator.
func (e *Engine) observePlan(st *queryState, tm *Timings) {
	if e.planner == nil {
		return
	}
	e.planner.Observe(plan.Sample{
		Postings:        st.postings,
		PostingsScanned: st.scanned,
		Tables1:         st.tables1,
		Tables:          len(st.tables),
		Alg:             int(st.algUsed),
		Probe2Ran:       st.probe2Fired,
		Probe1:          tm.Probe1,
		Read1:           tm.Read1,
		Probe2:          tm.Probe2,
		Read2:           tm.Read2,
		Build:           tm.ColumnMap,
		Infer:           tm.Infer,
		Cons:            tm.Consolidate,
	})
}
