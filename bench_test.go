package wwt_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), plus the ablations DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// The corpus is generated once per process at a reduced scale so the
// whole suite completes in seconds; cmd/wwt-experiments regenerates the
// full-scale numbers.

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wwt"
	"wwt/internal/baseline"
	"wwt/internal/consolidate"
	"wwt/internal/core"
	"wwt/internal/corpusgen"
	"wwt/internal/extract"
	"wwt/internal/inference"
	"wwt/internal/text"
	"wwt/internal/workload"
	"wwt/internal/wtable"
)

type benchWorld struct {
	corpus  *corpusgen.Corpus
	tables  []*wtable.Table
	engine  *wwt.Engine
	queries []workload.Query
	// Per-query candidates and models, prebuilt so solve-only benches
	// measure inference, not feature extraction.
	cands  [][]*wtable.Table
	models []*core.Model
}

var (
	worldOnce sync.Once
	world     *benchWorld
)

func getWorld(b *testing.B) *benchWorld {
	b.Helper()
	worldOnce.Do(func() {
		corpus := corpusgen.Generate(corpusgen.Config{Seed: 2012, Scale: 0.5})
		tables := corpus.ExtractAll(extract.NewOptions())
		eng, err := wwt.NewEngine(tables, nil)
		if err != nil {
			panic(err)
		}
		w := &benchWorld{
			corpus:  corpus,
			tables:  tables,
			engine:  eng,
			queries: workload.FromCorpus(corpus),
		}
		for _, q := range w.queries {
			cands, _, err := eng.Candidates(wwt.Query{Columns: q.Columns}, nil)
			if err != nil {
				cands = nil
			}
			builder := &core.Builder{Params: eng.Opts.Params, Stats: eng.Index, PMI: eng.PMISource()}
			w.cands = append(w.cands, cands)
			w.models = append(w.models, builder.Build(q.Columns, cands))
		}
		world = w
	})
	return world
}

// BenchmarkTable1Workload measures the two-stage candidate retrieval of
// §2.2.1 across the workload (Table 1's candidate counts).
func BenchmarkTable1Workload(b *testing.B) {
	w := getWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := w.queries[i%len(w.queries)]
		if _, _, err := w.engine.Candidates(wwt.Query{Columns: q.Columns}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5ColumnMapping measures the column-mapping stage (model
// build + table-centric inference) that Figure 5 evaluates.
func BenchmarkFig5ColumnMapping(b *testing.B) {
	w := getWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := w.queries[i%len(w.queries)]
		w.engine.MapColumns(wwt.Query{Columns: q.Columns}, w.cands[i%len(w.queries)])
	}
}

// BenchmarkFig5Baseline measures the Basic baseline on the same task.
func BenchmarkFig5Baseline(b *testing.B) {
	w := getWorld(b)
	cfg := baseline.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := i % len(w.queries)
		baseline.Solve(baseline.Basic, cfg, w.queries[qi].Columns, w.cands[qi], w.engine.Index, nil)
	}
}

// BenchmarkFig5PMI2 measures the PMI² baseline — the paper reports it
// roughly 6x slower than Basic end to end (40s vs 6.3s per query).
func BenchmarkFig5PMI2(b *testing.B) {
	w := getWorld(b)
	cfg := baseline.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := i % len(w.queries)
		baseline.Solve(baseline.PMI2, cfg, w.queries[qi].Columns, w.cands[qi], w.engine.Index, w.engine.PMISource())
	}
}

// BenchmarkFig6Consolidation measures the consolidator (Figure 6's answer
// tables).
func BenchmarkFig6Consolidation(b *testing.B) {
	w := getWorld(b)
	labelings := make([]core.Labeling, len(w.queries))
	for i := range w.queries {
		labelings[i] = inference.SolveTableCentric(w.models[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := i % len(w.queries)
		consolidate.Consolidate(w.queries[qi].Q(), w.cands[qi], labelings[qi],
			w.models[qi].Conf, w.models[qi].Rel, consolidate.NewOptions())
	}
}

// BenchmarkFig7QueryPipeline measures the full online pipeline per query
// (Figure 7's total running time).
func BenchmarkFig7QueryPipeline(b *testing.B) {
	w := getWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := w.queries[i%len(w.queries)]
		res, err := w.engine.Answer(wwt.Query{Columns: q.Columns})
		if err != nil {
			b.Fatal(err)
		}
		// Releasing per iteration measures the steady state the pooled
		// arena is designed for; discarding results starved the pool and
		// charged every op a fresh arena.
		res.Release()
	}
}

// BenchmarkFig7QueryPipelinePooled is the steady-state serving variant of
// the full pipeline: each query releases its arena back to the engine
// pool, so warm-pool Answer runs with the scratch buffers of earlier
// queries instead of fresh allocations.
func BenchmarkFig7QueryPipelinePooled(b *testing.B) {
	w := getWorld(b)
	// Warm the pool across the whole workload before measuring.
	for _, q := range w.queries {
		res, err := w.engine.Answer(wwt.Query{Columns: q.Columns})
		if err != nil {
			b.Fatal(err)
		}
		res.Release()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := w.queries[i%len(w.queries)]
		res, err := w.engine.Answer(wwt.Query{Columns: q.Columns})
		if err != nil {
			b.Fatal(err)
		}
		res.Release()
	}
}

// BenchmarkFig8Segmentation and BenchmarkFig8Unsegmented compare the cost
// of model building under the segmented similarity (Eq. 1) and the plain
// unsegmented cosine of §5.2.
func BenchmarkFig8Segmentation(b *testing.B) {
	benchModelBuild(b, false)
}

// BenchmarkFig8Unsegmented is the §5.2 comparison model's build cost.
func BenchmarkFig8Unsegmented(b *testing.B) {
	benchModelBuild(b, true)
}

func benchModelBuild(b *testing.B, unsegmented bool) {
	w := getWorld(b)
	params := w.engine.Opts.Params
	params.Unsegmented = unsegmented
	// Fig 8 deliberately builds cacheless (a params sweep can't share view
	// caches), but a sweep CAN share one interner across configurations —
	// the symbol table is pure content addressing.
	builder := &core.Builder{Params: params, Stats: w.engine.Index, PMI: w.engine.PMISource(), Interner: core.NewInterner()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := i % len(w.queries)
		builder.Build(w.queries[qi].Columns, w.cands[qi])
	}
}

// BenchmarkTable2Inference benchmarks each collective inference algorithm
// on prebuilt models (Table 2's runtime comparison: the paper reports
// table-centric fastest, α-expansion ~5x, BP ~6x, TRWS ~30x slower).
func BenchmarkTable2Inference(b *testing.B) {
	w := getWorld(b)
	for _, alg := range inference.Algorithms {
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				inference.Solve(w.models[i%len(w.models)], alg)
			}
		})
	}
}

// BenchmarkAblationEdgePotentials compares the edge-potential variants of
// §3.3 (reweight + table-centric solve per variant).
func BenchmarkAblationEdgePotentials(b *testing.B) {
	w := getWorld(b)
	for _, variant := range []core.EdgeVariant{core.EdgeCustom, core.EdgePotts, core.EdgePottsNoNR} {
		b.Run(variant.String(), func(b *testing.B) {
			params := w.engine.Opts.Params
			params.Edges = variant
			for i := 0; i < b.N; i++ {
				m := w.models[i%len(w.models)].Reweight(params)
				inference.SolveTableCentric(m)
			}
		})
	}
}

// BenchmarkAblationMutexCut compares the constrained-cut mutex handling
// against post-hoc repair inside α-expansion (§4.3).
func BenchmarkAblationMutexCut(b *testing.B) {
	w := getWorld(b)
	b.Run("constrained-cut", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inference.SolveAlphaExpansion(w.models[i%len(w.models)])
		}
	})
	b.Run("post-hoc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inference.SolveAlphaExpansionPostHocMutex(w.models[i%len(w.models)])
		}
	})
}

// BenchmarkOfflineExtraction measures the §2.1 offline pipeline: HTML
// parsing, table extraction, header detection and context scoring.
func BenchmarkOfflineExtraction(b *testing.B) {
	w := getWorld(b)
	opts := extract.NewOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := w.corpus.Pages[i%len(w.corpus.Pages)]
		extract.Page(p.URL, p.HTML, opts)
	}
}

// queryTokens normalizes every workload query once for the probe benches.
func queryTokens(w *benchWorld) [][]string {
	out := make([][]string, len(w.queries))
	for i, q := range w.queries {
		var tokens []string
		for _, col := range q.Columns {
			tokens = append(tokens, text.Normalize(col)...)
		}
		out[i] = tokens
	}
	return out
}

// BenchmarkSearchDense measures the frozen CSR searcher (dense accumulator,
// precomputed weights, bounded top-k with max-score skip) on the workload's
// first-probe token sets.
func BenchmarkSearchDense(b *testing.B) {
	w := getWorld(b)
	toks := queryTokens(w)
	s := w.engine.Searcher()
	k := w.engine.Opts.ProbeK
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Search(toks[i%len(toks)], k)
	}
}

// BenchmarkSearchMap measures the reference map-based scorer on the same
// probes — the before side of the CSR refactor.
func BenchmarkSearchMap(b *testing.B) {
	w := getWorld(b)
	toks := queryTokens(w)
	k := w.engine.Opts.ProbeK
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.engine.Index.Search(toks[i%len(toks)], k)
	}
}

// BenchmarkBuildParallel measures the worker-pool model build (with the
// engine's shared view cache) over the workload's candidate sets.
func BenchmarkBuildParallel(b *testing.B) {
	w := getWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := i % len(w.queries)
		w.engine.MapColumns(wwt.Query{Columns: w.queries[qi].Columns}, w.cands[qi])
	}
}

// edgeBenchBuilder returns a builder with a pre-warmed view cache (views
// are the tentpole of PR 1; these benches isolate edge construction) and
// the given pair cache.
func edgeBenchBuilder(w *benchWorld, pairs *core.PairSimCache) *core.Builder {
	views := core.NewViewCache()
	b := &core.Builder{Params: w.engine.Opts.Params, Stats: w.engine.Index, PMI: w.engine.PMISource(), Views: views, Pairs: pairs}
	for i, q := range w.queries {
		b.Build(q.Columns, w.cands[i])
	}
	return b
}

// BenchmarkBuildModelEdges measures a model build whose pair-similarity
// cache is cold on every iteration: the full Jaccard grid plus the
// per-table-pair max-matching runs each time (views stay warm).
func BenchmarkBuildModelEdges(b *testing.B) {
	w := getWorld(b)
	builder := edgeBenchBuilder(w, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := i % len(w.queries)
		builder.Pairs = core.NewPairSimCache(0)
		builder.Build(w.queries[qi].Columns, w.cands[qi])
	}
}

// BenchmarkBuildModelEdgesCached is the warm-cache counterpart: repeated
// queries over the same candidate tables serve every pair from the
// PairSimCache, skipping both the similarity grid and the matching solve.
func BenchmarkBuildModelEdgesCached(b *testing.B) {
	w := getWorld(b)
	builder := edgeBenchBuilder(w, core.NewPairSimCache(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := i % len(w.queries)
		builder.Build(w.queries[qi].Columns, w.cands[qi])
	}
}

// BenchmarkAnswerConcurrent measures full-pipeline throughput with many
// querying goroutines sharing one engine (run with -race to verify the
// concurrent hot path).
func BenchmarkAnswerConcurrent(b *testing.B) {
	w := getWorld(b)
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			qi := int(next.Add(1)) % len(w.queries)
			res, err := w.engine.Answer(wwt.Query{Columns: w.queries[qi].Columns})
			if err != nil {
				b.Error(err)
				return
			}
			res.Release()
		}
	})
}

// batchQueries converts the workload into the public query type once.
func batchQueries(w *benchWorld) []wwt.Query {
	out := make([]wwt.Query, len(w.queries))
	for i, q := range w.queries {
		out[i] = wwt.Query{Columns: q.Columns}
	}
	return out
}

// BenchmarkAnswerBatch measures batched full-pipeline throughput: the
// whole workload per iteration through AnswerBatch on a GOMAXPROCS worker
// pool, every member released back to the arena pool. Compare against
// BenchmarkAnswerBatchSerial (same queries, solo Answer loop) for the
// queries/sec speedup; both report a qps metric.
func BenchmarkAnswerBatch(b *testing.B) {
	w := getWorld(b)
	queries := batchQueries(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br := w.engine.AnswerBatch(queries, 0)
		if err := br.FirstErr(); err != nil {
			b.Fatal(err)
		}
		br.Release()
	}
	b.ReportMetric(float64(len(queries)*b.N)/b.Elapsed().Seconds(), "qps")
}

// BenchmarkAnswerBatchSerial is the before side of the batch entry point:
// the same workload answered one query at a time (arenas still pooled via
// Release), so the only difference from BenchmarkAnswerBatch is the
// batch-level worker pool.
func BenchmarkAnswerBatchSerial(b *testing.B) {
	w := getWorld(b)
	queries := batchQueries(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			res, err := w.engine.Answer(q)
			if err != nil {
				b.Fatal(err)
			}
			res.Release()
		}
	}
	b.ReportMetric(float64(len(queries)*b.N)/b.Elapsed().Seconds(), "qps")
}

// mixedWorld is the scheduling benchmark's world: a TRWS engine (the
// slowest inference, maximizing heavy-query cost) over the bench corpus
// plus one tiny synthetic table that only the light queries can reach.
// The query list is adversarial for FIFO: the heavy queries sit at the
// front of the submission order, so FIFO worker slots are head-of-line
// blocked while hundreds of sub-millisecond light queries wait.
type mixedWorld struct {
	engine  *wwt.Engine
	queries []wwt.Query
	nHeavy  int
}

var (
	mixedOnce sync.Once
	mixed     *mixedWorld
)

const mixedLightHTML = `<html><head><title>Zzlight reference</title></head><body>
<p>Synthetic light-query table.</p>
<table><tr><th>Zzlighta</th><th>Zzlightb</th></tr>
<tr><td>zzrowone</td><td>zzvalone</td></tr>
<tr><td>zzrowtwo</td><td>zzvaltwo</td></tr>
<tr><td>zzrowthree</td><td>zzvalthree</td></tr></table>
</body></html>`

func getMixedWorld(b *testing.B) *mixedWorld {
	b.Helper()
	mixedOnce.Do(func() {
		w := getWorld(b)
		tables := append(append([]*wtable.Table(nil), w.tables...),
			extract.Page("http://light.example/zz", mixedLightHTML, extract.NewOptions())...)
		opts := wwt.DefaultOptions()
		opts.Algorithm = inference.TRWS
		eng, err := wwt.NewEngine(tables, &opts)
		if err != nil {
			panic(err)
		}
		// Heavy = the workload queries with the widest candidate sets.
		type sized struct {
			q wwt.Query
			n int
		}
		var pool []sized
		for _, q := range w.queries {
			wq := wwt.Query{Columns: q.Columns}
			cands, _, err := eng.Candidates(wq, nil)
			if err != nil {
				continue
			}
			pool = append(pool, sized{wq, len(cands)})
		}
		sort.Slice(pool, func(i, j int) bool { return pool[i].n > pool[j].n })
		// Each heavy member merges the columns of three wide queries: the
		// label space triples, which is where TRW-S hurts most, so one heavy
		// costs hundreds of light queries.
		const nHeavy, nLight = 4, 400
		queries := make([]wwt.Query, 0, nHeavy+nLight)
		for i := 0; i < nHeavy && 3*i+2 < len(pool); i++ {
			var cols []string
			for j := 3 * i; j < 3*i+3; j++ {
				cols = append(cols, pool[j].q.Columns...)
			}
			queries = append(queries, wwt.Query{Columns: cols})
		}
		light := wwt.Query{Columns: []string{"zzlighta"}}
		for i := 0; i < nLight; i++ {
			queries = append(queries, light)
		}
		// One warmup pass: warms the engine caches AND calibrates the cost
		// estimator, so SJF has real estimates to sort by.
		br := eng.AnswerBatchPlan(context.Background(), queries, 2, 0, wwt.BatchPlan{})
		if err := br.FirstErr(); err != nil {
			panic(err)
		}
		br.Release()
		mixed = &mixedWorld{engine: eng, queries: queries, nHeavy: len(queries) - nLight}
	})
	return mixed
}

// latPercentile returns the p-th percentile of a sorted latency slice.
func latPercentile(sorted []time.Duration, p float64) time.Duration {
	return sorted[int(p*float64(len(sorted)-1)+0.5)]
}

// benchMixedBatch runs the adversarial mixed workload under one schedule,
// pooling per-member latencies across iterations and reporting p50/p99.
func benchMixedBatch(b *testing.B, sched wwt.Schedule) {
	w := getMixedWorld(b)
	var lat []time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br := w.engine.AnswerBatchPlan(context.Background(), w.queries, 2, 0, wwt.BatchPlan{Schedule: sched})
		if err := br.FirstErr(); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, br.Latency...)
		br.Release()
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(latPercentile(lat, 0.50)), "p50-ns")
	b.ReportMetric(float64(latPercentile(lat, 0.99)), "p99-ns")
	b.ReportMetric(float64(len(w.queries)*b.N)/b.Elapsed().Seconds(), "qps")
}

// BenchmarkAnswerBatchMixedFIFO is the before side of planner lever (c):
// heavy-first submission order dispatched as submitted, so light members
// queue behind the heavy head of line.
func BenchmarkAnswerBatchMixedFIFO(b *testing.B) { benchMixedBatch(b, wwt.ScheduleFIFO) }

// BenchmarkAnswerBatchMixedSJF dispatches the same members
// shortest-job-first by estimated cost: light members drain immediately
// and only the heavy tail pays the heavy cost. Compare p99-ns against
// BenchmarkAnswerBatchMixedFIFO.
func BenchmarkAnswerBatchMixedSJF(b *testing.B) { benchMixedBatch(b, wwt.ScheduleSJF) }

// BenchmarkPlannerElision measures the full pipeline with probe-2 elision
// enabled at a threshold low enough to fire on the eval workload, and
// reports the realized elision rate alongside latency.
func BenchmarkPlannerElision(b *testing.B) {
	w := getWorld(b)
	opts := wwt.DefaultOptions()
	opts.Planner.ElideProbe2 = true
	opts.Planner.ElideConfidence = 0.9
	eng, err := wwt.NewEngine(w.tables, &opts)
	if err != nil {
		b.Fatal(err)
	}
	queries := batchQueries(w)
	answered := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		res, err := eng.Answer(q)
		if err != nil {
			b.Fatal(err)
		}
		res.Release()
		answered++
	}
	b.StopTimer()
	if answered > 0 {
		b.ReportMetric(float64(eng.PlanStats().Probe2Elided)/float64(answered), "elide-rate")
	}
}

// BenchmarkIndexBuild measures building the boosted 3-field index.
func BenchmarkIndexBuild(b *testing.B) {
	w := getWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wwt.NewEngine(w.tables, nil); err != nil {
			b.Fatal(err)
		}
	}
}
