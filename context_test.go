package wwt_test

// Cancellation and batch-accounting tests: a query whose context expires
// mid-pipeline must abort between stages with ctx.Err() in its own slot,
// its arena must return to the pool reusable (never poisoned), and the
// batch throughput/stage accounting must stay honest as stages are added
// or members fail.

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"wwt"
)

// countingCtx is a deterministic stand-in for a deadline: Err returns nil
// for the first failAfter calls and context.DeadlineExceeded (stickily)
// from then on. The pipeline polls Err exactly once per stage, so a
// mid-pipeline expiry can be pinned to an exact stage boundary without
// timing races. Done/Deadline/Value come from the embedded background
// context — the pipeline only polls Err.
type countingCtx struct {
	context.Context
	calls     atomic.Int64
	failAfter int64
}

func newCountingCtx(failAfter int64) *countingCtx {
	return &countingCtx{Context: context.Background(), failAfter: failAfter}
}

func (c *countingCtx) Err() error {
	if c.calls.Add(1) > c.failAfter {
		return context.DeadlineExceeded
	}
	return nil
}

// errChecksPerAnswer learns how many times a full successful pipeline
// polls ctx.Err (once per stage), so the cancellation tests stay correct
// if stages are added to the pipeline.
func errChecksPerAnswer(t *testing.T, eng *wwt.Engine, q wwt.Query) int64 {
	t.Helper()
	ctx := newCountingCtx(1 << 30)
	res, err := eng.AnswerCtx(ctx, q)
	if err != nil {
		t.Fatalf("probe answer: %v", err)
	}
	res.Release()
	n := ctx.calls.Load()
	if n < 2 {
		t.Fatalf("pipeline polled ctx.Err %d times, want at least one check per stage", n)
	}
	return n
}

// assertSameResult compares everything a Result carries that the batch
// equivalence contract pins: candidates, probe2 usage, labeling, model
// edges and node potentials, and the consolidated answer.
func assertSameResult(t *testing.T, label string, got, want *wwt.Result) {
	t.Helper()
	if got.UsedProbe2 != want.UsedProbe2 {
		t.Fatalf("%s: UsedProbe2 %v != %v", label, got.UsedProbe2, want.UsedProbe2)
	}
	if len(got.Tables) != len(want.Tables) {
		t.Fatalf("%s: %d tables != %d", label, len(got.Tables), len(want.Tables))
	}
	for ti := range got.Tables {
		if got.Tables[ti].ID != want.Tables[ti].ID {
			t.Fatalf("%s: table %d = %s, want %s", label, ti, got.Tables[ti].ID, want.Tables[ti].ID)
		}
	}
	if !reflect.DeepEqual(got.Labeling.Y, want.Labeling.Y) {
		t.Fatalf("%s: labeling diverged", label)
	}
	if !reflect.DeepEqual(got.Model.Edges, want.Model.Edges) {
		t.Fatalf("%s: model edges diverged", label)
	}
	if !reflect.DeepEqual(got.Model.Node, want.Model.Node) {
		t.Fatalf("%s: node potentials diverged", label)
	}
	if !reflect.DeepEqual(got.Answer, want.Answer) {
		t.Fatalf("%s: consolidated answer diverged", label)
	}
}

// TestAnswerCtxDeadlineMidPipeline aborts a solo query between two
// mid-pipeline stages and demands ctx.Err() back — and that the arena the
// aborted query returned to the pool is clean: the very next Answer on
// the same engine (which draws that arena) is bit-identical to a
// reference computed before the abort.
func TestAnswerCtxDeadlineMidPipeline(t *testing.T) {
	eng, err := wwt.NewEngine(smallCorpus(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	q := wwt.Query{Columns: []string{"country", "currency"}}
	ref, err := eng.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if n := errChecksPerAnswer(t, eng, q); n < 3 {
		t.Skipf("pipeline too short (%d stages) for a mid-pipeline abort", n)
	}

	//wwt:retained — aborted mid-pipeline: AnswerCtx returns a nil Result
	res, err := eng.AnswerCtx(newCountingCtx(2), q) // aborts before the 3rd stage
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res != nil {
		t.Fatalf("non-nil result for aborted query")
	}

	// An already-expired context aborts before the first stage.
	if _, err := eng.AnswerCtx(newCountingCtx(0), q); !errors.Is(err, context.DeadlineExceeded) { //wwt:retained — aborted call, no Result
		t.Fatalf("pre-expired ctx: err = %v, want context.DeadlineExceeded", err)
	}

	// The aborted queries' arenas are back in the pool and clean.
	got, err := eng.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "post-abort answer", got, ref)
}

// TestAnswerCtxRealDeadline exercises the real context.WithTimeout plumbing
// (as opposed to countingCtx): an already-expired deadline must surface as
// context.DeadlineExceeded, a canceled context as context.Canceled.
func TestAnswerCtxRealDeadline(t *testing.T) {
	eng, err := wwt.NewEngine(smallCorpus(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	q := wwt.Query{Columns: []string{"country", "currency"}}

	ctx, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	if _, err := eng.AnswerCtx(ctx, q); !errors.Is(err, context.DeadlineExceeded) { //wwt:retained — aborted call, no Result
		t.Errorf("expired deadline: err = %v, want context.DeadlineExceeded", err)
	}

	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	if _, err := eng.AnswerCtx(cctx, q); !errors.Is(err, context.Canceled) { //wwt:retained — aborted call, no Result
		t.Errorf("canceled ctx: err = %v, want context.Canceled", err)
	}

	// A generous deadline changes nothing.
	gctx, gcancel := context.WithTimeout(context.Background(), time.Hour)
	defer gcancel()
	ref, err := eng.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.AnswerCtx(gctx, q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "generous deadline", got, ref)
}

// TestAnswerBatchCtxMemberCancellation runs a serial batch whose shared
// context expires while a middle member is mid-pipeline: members before
// the expiry must stay bit-identical to solo answers, the expiring member
// and every later one must carry context.DeadlineExceeded in their own
// slots, and the canceled members' arenas must recycle cleanly (the same
// engine answers the whole workload again, bit-identically, afterwards).
func TestAnswerBatchCtxMemberCancellation(t *testing.T) {
	eng, err := wwt.NewEngine(smallCorpus(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	queries := []wwt.Query{
		{Columns: []string{"country", "currency"}},
		{Columns: []string{"name", "area"}},
		{Columns: []string{"currency"}},
	}
	refs := make([]*wwt.Result, len(queries))
	for i, q := range queries {
		if refs[i], err = eng.Answer(q); err != nil {
			t.Fatal(err)
		}
	}
	perQuery := errChecksPerAnswer(t, eng, queries[0])

	// One worker answers the members in order; the context starts failing
	// partway through member 1's pipeline.
	ctx := newCountingCtx(perQuery + 2)
	br := eng.AnswerBatchCtx(ctx, queries, 1, 0)
	assertSameResult(t, "member 0", br.Results[0], refs[0])
	for i := 1; i < len(queries); i++ {
		if !errors.Is(br.Errs[i], context.DeadlineExceeded) {
			t.Fatalf("member %d: err = %v, want context.DeadlineExceeded", i, br.Errs[i])
		}
		if br.Results[i] != nil {
			t.Fatalf("member %d: non-nil result for canceled member", i)
		}
	}
	if br.Timings.Failed != len(queries)-1 {
		t.Errorf("Failed = %d, want %d", br.Timings.Failed, len(queries)-1)
	}
	br.Release()

	// Canceled members' arenas are back in the pool and clean: the same
	// engine re-answers everything bit-identically.
	for i, q := range queries {
		got, err := eng.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, "post-cancel re-answer", got, refs[i])
		got.Release()
	}
}

// TestAnswerBatchCtxPerQueryDeadline: a generous per-member deadline must
// not perturb results, and a pre-canceled parent fails every member with
// its own context.Canceled slot.
func TestAnswerBatchCtxPerQueryDeadline(t *testing.T) {
	eng, err := wwt.NewEngine(smallCorpus(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	queries := []wwt.Query{
		{Columns: []string{"country", "currency"}},
		{Columns: []string{"currency"}},
	}
	refs := make([]*wwt.Result, len(queries))
	for i, q := range queries {
		if refs[i], err = eng.Answer(q); err != nil {
			t.Fatal(err)
		}
	}

	br := eng.AnswerBatchCtx(context.Background(), queries, 2, time.Hour)
	for i := range queries {
		if br.Errs[i] != nil {
			t.Fatalf("member %d: %v", i, br.Errs[i])
		}
		assertSameResult(t, "deadline batch member", br.Results[i], refs[i])
	}
	br.Release()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cbr := eng.AnswerBatchCtx(ctx, queries, 2, time.Hour)
	for i := range queries {
		if !errors.Is(cbr.Errs[i], context.Canceled) {
			t.Fatalf("member %d: err = %v, want context.Canceled", i, cbr.Errs[i])
		}
	}
	if cbr.Timings.Failed != len(queries) || cbr.Timings.Succeeded() != 0 {
		t.Errorf("canceled batch: Failed = %d, Succeeded = %d", cbr.Timings.Failed, cbr.Timings.Succeeded())
	}
}

// TestBatchTimingsQPS is the throughput-accounting regression test: QPS
// counts only successfully answered members (a batch of fast-failing
// members must not report inflated throughput); TotalQPS keeps the
// all-members rate.
func TestBatchTimingsQPS(t *testing.T) {
	bt := wwt.BatchTimings{Queries: 10, Failed: 4, Wall: 2 * time.Second}
	if got := bt.Succeeded(); got != 6 {
		t.Errorf("Succeeded = %d, want 6", got)
	}
	if got := bt.QPS(); got != 3 {
		t.Errorf("QPS = %v, want 3 (successful members only)", got)
	}
	if got := bt.TotalQPS(); got != 5 {
		t.Errorf("TotalQPS = %v, want 5", got)
	}
	var zero wwt.BatchTimings
	if zero.QPS() != 0 || zero.TotalQPS() != 0 {
		t.Errorf("zero-wall QPS must be 0, got %v/%v", zero.QPS(), zero.TotalQPS())
	}
}

// TestTimingsFieldsComplete pins the single stage enumeration behind
// Timings.Add, Total and Stages against the struct by reflection: every
// field must be a duration, appear exactly once in Stages, and be summed
// by Add — so a stage added to the pipeline cannot be silently dropped
// from batch aggregation.
func TestTimingsFieldsComplete(t *testing.T) {
	var a, b wwt.Timings
	rv := reflect.ValueOf(&b).Elem()
	rt := rv.Type()
	var wantTotal time.Duration
	for i := 0; i < rt.NumField(); i++ {
		if rt.Field(i).Type != reflect.TypeOf(time.Duration(0)) {
			t.Fatalf("Timings.%s is %v, want time.Duration", rt.Field(i).Name, rt.Field(i).Type)
		}
		d := time.Duration(i + 1)
		rv.Field(i).Set(reflect.ValueOf(d))
		wantTotal += d
	}

	if got := b.Total(); got != wantTotal {
		t.Errorf("Total = %v, want %v: a field is missing from the enumeration", got, wantTotal)
	}

	stages := b.Stages()
	if len(stages) != rt.NumField() {
		t.Fatalf("Stages lists %d entries, struct has %d fields", len(stages), rt.NumField())
	}
	seen := map[string]bool{}
	var stageTotal time.Duration
	for _, s := range stages {
		if s.Name == "" || seen[s.Name] {
			t.Errorf("stage name %q empty or duplicated", s.Name)
		}
		seen[s.Name] = true
		stageTotal += s.D
	}
	if stageTotal != wantTotal {
		t.Errorf("Stages sum to %v, want %v", stageTotal, wantTotal)
	}

	a.Add(b)
	a.Add(b)
	av := reflect.ValueOf(a)
	for i := 0; i < rt.NumField(); i++ {
		want := 2 * time.Duration(i+1)
		if got := av.Field(i).Interface().(time.Duration); got != want {
			t.Errorf("after two Adds, %s = %v, want %v: field missing from Add", rt.Field(i).Name, got, want)
		}
	}
}
