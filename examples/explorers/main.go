// Explorers reproduces the paper's Figure 1 scenario end to end: a
// three-column query "name of explorers | nationality | areas explored"
// over three web tables — a well-headed explorers table, a two-column
// table with swapped column order and a spurious second header row, and an
// irrelevant forest-reserves table whose context mentions "exploration".
//
// The column mapper must label table 1 relevant with columns Q1,Q2,Q3,
// table 2 relevant with column 1 -> Q3 and column 2 -> Q1, and table 3
// irrelevant — exactly the outcome described in §1.
package main

import (
	"fmt"
	"log"

	"wwt"
	"wwt/internal/core"
	"wwt/internal/extract"
	"wwt/internal/wtable"
)

var pages = map[string]string{
	// Web Table 1 of Figure 1.
	"http://wiki.example/explorers": `
<html><head><title>List of explorers - Wikipedia, the free encyclopedia</title></head><body>
<h1>List of explorers</h1>
<p>This article lists the explorations in history. For the documentary
'Explorations, powered by Duracell', see Explorations (TV).</p>
<table>
<tr><th>Name</th><th>Nationality</th><th>Main areas</th></tr>
<tr><th></th><th></th><th>explored</th></tr>
<tr><td>Abel Tasman</td><td>Dutch</td><td>Oceania</td></tr>
<tr><td>Vasco da Gama</td><td>Portuguese</td><td>Sea route to India</td></tr>
<tr><td>Alexander Mackenzie</td><td>British</td><td>Canada</td></tr>
<tr><td>James Cook</td><td>British</td><td>Pacific Ocean</td></tr>
</table>
</body></html>`,

	// Web Table 2: swapped order, spurious second header row.
	"http://history.example/explorations": `
<html><head><title>Explorations in chronological order</title></head><body>
<p>Great explorations of history, and who made them.</p>
<table>
<tr><th>Exploration</th><th>Who (explorer)</th></tr>
<tr><th>(Chronological order)</th><th></th></tr>
<tr><td>Sea route to India</td><td>Vasco da Gama</td></tr>
<tr><td>Caribbean</td><td>Christopher Columbus</td></tr>
<tr><td>Oceania</td><td>Abel Tasman</td></tr>
<tr><td>Pacific Ocean</td><td>James Cook</td></tr>
</table>
</body></html>`,

	// Web Table 3: irrelevant, but its context mentions exploration.
	"http://forestry.example/reserves": `
<html><head><title>Other Formal Reserves</title></head><body>
<p>Other Formal Reserves 1.3 Forest Reserves under the Forestry Act 1920.</p>
<table>
<tr><td><b>Forest reserves</b></td><td></td><td></td></tr>
<tr><th>ID</th><th>Name</th><th>Area</th></tr>
<tr><td>7</td><td>Shakespeare Hills</td><td>2236</td></tr>
<tr><td>9</td><td>Plains Creek</td><td>880</td></tr>
<tr><td>13</td><td>Welcome Swamp</td><td>168</td></tr>
</table>
<p>All areas will be available for mineral exploration and mining.</p>
</body></html>`,

	// Background pages: on the real web, "Name" and "Area" are ubiquitous
	// header words; these pages give the index realistic IDF statistics so
	// an uninformative "Name" header cannot pin much query mass (§3.2.1).
	"http://lakes.example/list": `
<html><head><title>Lakes by size</title></head><body>
<table><tr><th>Name</th><th>Area</th></tr>
<tr><td>Lake Superior</td><td>82100</td></tr>
<tr><td>Lake Victoria</td><td>68870</td></tr>
<tr><td>Lake Huron</td><td>59600</td></tr></table>
</body></html>`,
	"http://parks.example/list": `
<html><head><title>National parks</title></head><body>
<table><tr><th>Name</th><th>Area</th><th>Established</th></tr>
<tr><td>Yellowstone</td><td>8983</td><td>1872</td></tr>
<tr><td>Yosemite</td><td>3027</td><td>1890</td></tr>
<tr><td>Grand Canyon</td><td>4926</td><td>1919</td></tr></table>
</body></html>`,
	"http://staff.example/directory": `
<html><head><title>Staff directory</title></head><body>
<table><tr><th>Name</th><th>Office</th></tr>
<tr><td>Dana Reeve</td><td>201</td></tr>
<tr><td>Sam Okafor</td><td>317</td></tr>
<tr><td>Li Wei</td><td>110</td></tr></table>
</body></html>`,
	"http://islands.example/list": `
<html><head><title>Islands of the Pacific</title></head><body>
<table><tr><th>Name</th><th>Area</th></tr>
<tr><td>New Guinea</td><td>785753</td></tr>
<tr><td>Borneo</td><td>748168</td></tr>
<tr><td>Sumatra</td><td>443066</td></tr></table>
</body></html>`,
}

func main() {
	var tables []*wtable.Table
	for url, html := range pages {
		tables = append(tables, extract.Page(url, html, extract.NewOptions())...)
	}
	eng, err := wwt.NewEngine(tables, nil)
	if err != nil {
		log.Fatal(err)
	}
	query := wwt.Query{Columns: []string{"name of explorers", "nationality", "areas explored"}}
	res, err := eng.Answer(query)
	if err != nil {
		log.Fatal(err)
	}
	defer res.Release()

	fmt.Println("Column mapping (the §3 task):")
	for ti, tb := range res.Tables {
		fmt.Printf("  %s\n", tb.ID)
		if !res.Labeling.Relevant(ti) {
			fmt.Println("    -> irrelevant")
			continue
		}
		for c := 0; c < tb.NumCols(); c++ {
			label := res.Labeling.Y[ti][c]
			desc := core.LabelString(label, len(query.Columns))
			if label >= 0 && label < len(query.Columns) {
				desc += " (" + query.Columns[label] + ")"
			}
			fmt.Printf("    column %d -> %s\n", c+1, desc)
		}
	}

	fmt.Println("\nConsolidated answer table:")
	fmt.Printf("%-24s %-14s %-22s %s\n", "NAME", "NATIONALITY", "AREAS EXPLORED", "SUPPORT")
	for _, row := range res.Answer.Rows {
		fmt.Printf("%-24s %-14s %-22s %d\n", row.Cells[0], row.Cells[1], row.Cells[2], row.Support)
	}
}
