// Inference compares the paper's five inference algorithms (§4) on one
// query's graphical model: per-table exact matching (None), the
// table-centric collective algorithm, constrained α-expansion, loopy
// belief propagation and TRW-S — reporting agreement, objective scores and
// wall time, as in the paper's Table 2.
package main

import (
	"fmt"
	"log"
	"time"

	"wwt"
	"wwt/internal/core"
	"wwt/internal/corpusgen"
	"wwt/internal/extract"
	"wwt/internal/inference"
)

func main() {
	corpus := corpusgen.Generate(corpusgen.Config{Seed: 2012})
	tables := corpus.ExtractAll(extract.NewOptions())
	eng, err := wwt.NewEngine(tables, nil)
	if err != nil {
		log.Fatal(err)
	}

	query := wwt.Query{Columns: []string{"country", "currency"}}
	cands, usedProbe2, err := eng.Candidates(query, nil)
	if err != nil {
		log.Fatal(err)
	}
	builder := &core.Builder{Params: eng.Opts.Params, Stats: eng.Index, PMI: eng.PMISource()}
	m := builder.Build(query.Columns, cands)
	fmt.Printf("query %q: %d candidates (probe2=%v), %d cross-table edges\n\n",
		query.Columns, len(cands), usedProbe2, len(m.Edges))

	fmt.Printf("%-15s %10s %12s %10s\n", "algorithm", "relevant", "objective", "time")
	var reference core.Labeling
	for _, alg := range inference.Algorithms {
		start := time.Now()
		l := inference.Solve(m, alg)
		elapsed := time.Since(start)
		relevant := 0
		for ti := range cands {
			if l.Relevant(ti) {
				relevant++
			}
		}
		fmt.Printf("%-15s %10d %12.2f %10s\n", alg.String(), relevant, m.Score(l), elapsed.Round(time.Microsecond))
		if alg == inference.TableCentric {
			reference = l
		}
	}

	// Show where the collective methods disagree with per-table inference.
	indep := inference.Solve(m, inference.Independent)
	diff := 0
	for ti := range cands {
		if indep.Relevant(ti) != reference.Relevant(ti) {
			diff++
		}
	}
	fmt.Printf("\ntable-centric changed the relevance of %d tables vs independent inference\n", diff)
	fmt.Println("(collective inference recovers headerless tables via content overlap, §3.3)")
}
