// Quickstart: extract tables from raw HTML pages, build an engine, and
// answer a two-column keyword query. This is the smallest end-to-end use
// of the public API.
package main

import (
	"fmt"
	"log"

	"wwt"
	"wwt/internal/extract"
	"wwt/internal/wtable"
)

// Three tiny "web pages": two about currencies (one headerless), one about
// forest reserves (irrelevant).
var pages = map[string]string{
	"http://money.example/currencies": `
<html><head><title>Currencies of the world</title></head><body>
<h1>World currencies</h1>
<p>This article lists the currencies of the world by country.</p>
<table>
<tr><th>Country</th><th>Currency</th></tr>
<tr><td>France</td><td>Euro</td></tr>
<tr><td>Japan</td><td>Yen</td></tr>
<tr><td>India</td><td>Indian rupee</td></tr>
<tr><td>Brazil</td><td>Real</td></tr>
</table>
</body></html>`,

	"http://blog.example/travel-money": `
<html><head><title>Travel money tips</title></head><body>
<p>Cash you will need on your trip:</p>
<table>
<tr><td>United Kingdom</td><td>Pound sterling</td></tr>
<tr><td>Japan</td><td>Yen</td></tr>
<tr><td>India</td><td>Indian rupee</td></tr>
<tr><td>Switzerland</td><td>Swiss franc</td></tr>
</table>
</body></html>`,

	"http://parks.example/reserves": `
<html><head><title>Forest reserves</title></head><body>
<p>Forest reserves under the Forestry Act.</p>
<table>
<tr><th>ID</th><th>Name</th><th>Area</th></tr>
<tr><td>7</td><td>Shakespeare Hills</td><td>2236</td></tr>
<tr><td>9</td><td>Plains Creek</td><td>880</td></tr>
<tr><td>13</td><td>Welcome Swamp</td><td>168</td></tr>
</table>
</body></html>`,
}

func main() {
	// Offline: extract data tables from the crawl (§2.1).
	var tables []*wtable.Table
	for url, html := range pages {
		tables = append(tables, extract.Page(url, html, extract.NewOptions())...)
	}
	fmt.Printf("extracted %d data tables\n", len(tables))

	// Build the engine (index + store).
	eng, err := wwt.NewEngine(tables, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Online: a two-column keyword query.
	res, err := eng.Answer(wwt.Query{Columns: []string{"country", "currency"}})
	if err != nil {
		log.Fatal(err)
	}
	defer res.Release()

	fmt.Printf("candidates: %d, answer rows: %d\n\n", len(res.Tables), len(res.Answer.Rows))
	fmt.Printf("%-20s %-20s %s\n", "COUNTRY", "CURRENCY", "SUPPORT")
	for _, row := range res.Answer.Rows {
		fmt.Printf("%-20s %-20s %d\n", row.Cells[0], row.Cells[1], row.Support)
	}

	// The headerless table was recovered via content overlap; the forest
	// reserves table was rejected.
	for ti, tb := range res.Tables {
		status := "irrelevant"
		if res.Labeling.Relevant(ti) {
			status = "relevant"
		}
		fmt.Printf("\n%-12s %s", status, tb.ID)
	}
	fmt.Println()
}
