// Countries runs several country-centric queries over the full synthetic
// corpus, demonstrating that the same candidate universe (dozens of
// country tables about currencies, populations, GDPs and exchange rates)
// is carved up differently per query: a country|gdp table is a genuine
// answer source for the GDP query and a confusable distractor for the
// currency query.
package main

import (
	"fmt"
	"log"

	"wwt"
	"wwt/internal/corpusgen"
	"wwt/internal/extract"
)

func main() {
	corpus := corpusgen.Generate(corpusgen.Config{Seed: 2012})
	tables := corpus.ExtractAll(extract.NewOptions())
	fmt.Printf("corpus: %d pages, %d data tables\n\n", len(corpus.Pages), len(tables))

	eng, err := wwt.NewEngine(tables, nil)
	if err != nil {
		log.Fatal(err)
	}

	queries := [][]string{
		{"country", "currency"},
		{"country", "gdp"},
		{"country", "population"},
		{"country", "us dollar exchange rate"},
	}
	for _, cols := range queries {
		res, err := eng.Answer(wwt.Query{Columns: cols})
		if err != nil {
			log.Fatal(err)
		}
		relevant := 0
		for ti := range res.Tables {
			if res.Labeling.Relevant(ti) {
				relevant++
			}
		}
		fmt.Printf("=== %s | %s ===\n", cols[0], cols[1])
		fmt.Printf("candidates=%d relevant=%d rows=%d probe2=%v total=%.0fms\n",
			len(res.Tables), relevant, len(res.Answer.Rows), res.UsedProbe2,
			float64(res.Timings.Total().Microseconds())/1000)
		for i, row := range res.Answer.Rows {
			if i >= 5 {
				fmt.Printf("  ... %d more rows\n", len(res.Answer.Rows)-5)
				break
			}
			fmt.Printf("  %-16s %-22s support=%d\n", row.Cells[0], row.Cells[1], row.Support)
		}
		fmt.Println()
		res.Release()
	}
}
