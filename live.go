package wwt

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"wwt/internal/index"
	"wwt/internal/inference"
	"wwt/internal/plan"
	"wwt/internal/text"
	"wwt/internal/wtable"
)

// LiveEngine serves queries over a segmented index directory that grows
// at runtime: IngestTables freezes each batch into a new immutable
// segment, commits the manifest atomically, and hot-swaps a fresh
// generation (Engine over the new multi-segment snapshot) behind an
// atomic pointer. Queries pin the generation they start on with a
// refcount, so a swap never invalidates an in-flight query — the retired
// generation's mappings close only when its last query releases it. A
// size-tiered background merge compacts accumulated small segments.
//
// Per-generation state (views, pair similarities, doc sets) is rebuilt
// or migrated at each swap: the IDF-baking caches start fresh, while the
// doc-set cache adopts the previous generation's entries and evicts
// exactly the keys the new segment staled. The normalization cache and
// the planner's cost calibration are corpus-independent and shared
// across generations.
type LiveEngine struct {
	dir  string
	opts Options

	// mu serializes ingest, merge and generation publication. Queries
	// never take it — they only acquire/release the current generation.
	mu       sync.Mutex
	closed   bool
	manifest index.Manifest
	nextSeq  uint64

	cur atomic.Pointer[liveGen]

	// Cross-generation shared state: text normalization is
	// corpus-independent, and cost calibration should survive swaps.
	norm    *text.NormCache
	planner *plan.Estimator

	writeOpts index.WriteShardedOptions
	policy    index.MergePolicy
	merges    sync.WaitGroup

	ingests        atomic.Uint64
	ingestedTables atomic.Uint64
	ingestErrors   atomic.Uint64
	mergesDone     atomic.Uint64
	retired        atomic.Uint64 // generations replaced by a swap
	reclaimed      atomic.Uint64 // retired generations whose last ref released
}

// liveGen is one published generation: an immutable Engine plus the
// refcount that defers Close past the last in-flight query. The
// published pointer itself holds one reference; retiring the generation
// releases it.
type liveGen struct {
	eng       *Engine
	gen       uint64
	refs      atomic.Int64
	closeOnce sync.Once
	reclaimed *atomic.Uint64
}

func (g *liveGen) release() {
	if g.refs.Add(-1) == 0 {
		g.closeOnce.Do(func() {
			g.eng.Close()
			if g.reclaimed != nil {
				g.reclaimed.Add(1)
			}
		})
	}
}

// LiveInfo is a point-in-time snapshot of the serving generation.
type LiveInfo struct {
	Generation uint64
	Segments   int
	Shards     int
	Docs       int
	Mmapped    bool // every segment serves from file mappings
}

// OpenLive opens dir — a flat index directory, with or without a
// committed manifest — for live serving. A directory without a flat
// index fails with an error wrapping fs.ErrNotExist, so callers can fall
// back to the gob path. opts may be nil for DefaultOptions.
func OpenLive(dir string, opts *Options) (*LiveEngine, error) {
	o := DefaultOptions()
	if opts != nil {
		o = *opts
	}
	ms, m, err := index.OpenMultiSnapshot(dir)
	if err != nil {
		return nil, err
	}
	st, err := unionStore(dir, m)
	if err != nil {
		ms.Close()
		return nil, err
	}
	le := &LiveEngine{
		dir:      dir,
		opts:     o,
		manifest: m,
		nextSeq:  nextSegmentSeq(dir, m),
		norm:     text.NewNormCache(0),
		planner:  plan.NewEstimator(len(inference.Algorithms), plan.DefaultAlpha),
	}
	eng := NewEngineFromMulti(ms, st, &o)
	eng.norm = le.norm
	eng.planner = le.planner
	g := &liveGen{eng: eng, gen: m.Generation, reclaimed: &le.reclaimed}
	g.refs.Store(1)
	le.cur.Store(g)
	return le, nil
}

// unionStore loads and unions the table stores of every manifest
// segment, in canonical order.
func unionStore(dir string, m index.Manifest) (*index.Store, error) {
	st := index.NewStore()
	for _, entry := range m.Segments {
		seg, err := index.LoadStore(filepath.Join(dir, entry, index.StoreFileName))
		if err != nil {
			return nil, err
		}
		for _, t := range seg.All() {
			if err := st.Add(t); err != nil {
				return nil, fmt.Errorf("wwt: segment %s: %w", entry, err)
			}
		}
	}
	return st, nil
}

// nextSegmentSeq picks the next unused segment sequence number: past the
// manifest's entries and past anything on disk (a crash between segment
// write and manifest commit leaves an orphan directory whose name must
// not be reused).
func nextSegmentSeq(dir string, m index.Manifest) uint64 {
	next := uint64(0)
	bump := func(name string) {
		var seq uint64
		if _, err := fmt.Sscanf(name, "seg-%d", &seq); err == nil && seq+1 > next {
			next = seq + 1
		}
	}
	for _, entry := range m.Segments {
		if entry != "." {
			bump(filepath.Base(entry))
		}
	}
	if des, err := os.ReadDir(filepath.Join(dir, index.SegmentsDirName)); err == nil {
		for _, de := range des {
			bump(de.Name())
		}
	}
	return next
}

// acquire pins the current generation for one query. The validate-retry
// loop closes the race against a concurrent retire: incrementing after
// the swap-and-release could resurrect a generation whose refcount
// already hit zero, so the increment only counts if the generation is
// still the published one afterwards.
func (le *LiveEngine) acquire() *liveGen {
	for {
		g := le.cur.Load()
		g.refs.Add(1)
		if le.cur.Load() == g {
			return g
		}
		g.release()
	}
}

// AnswerBatchPlan answers a batch on the generation current at call
// time, which stays pinned (mappings open) until every member finishes —
// concurrent ingests swap later queries to newer generations without
// disturbing this one. Results remain valid after the generation is
// ultimately closed: answers are backed by the heap-resident table
// store, not the index mappings.
func (le *LiveEngine) AnswerBatchPlan(ctx context.Context, queries []Query, workers int, perQuery time.Duration, bp BatchPlan) *BatchResult {
	g := le.acquire()
	defer g.release()
	return g.eng.AnswerBatchPlan(ctx, queries, workers, perQuery, bp)
}

// Answer answers one query on the pinned current generation.
func (le *LiveEngine) Answer(q Query) (*Result, error) {
	g := le.acquire()
	defer g.release()
	return g.eng.Answer(q)
}

// CacheStats snapshots the current generation's cache counters.
func (le *LiveEngine) CacheStats() EngineCacheStats { return le.cur.Load().eng.CacheStats() }

// PlanStats snapshots the current generation's planner and probe
// counters (cost calibration is shared across generations).
func (le *LiveEngine) PlanStats() PlanStats { return le.cur.Load().eng.PlanStats() }

// EstimateCost predicts a query's wall time on the current generation.
func (le *LiveEngine) EstimateCost(q Query) time.Duration {
	g := le.acquire()
	defer g.release()
	return g.eng.EstimateCost(q)
}

// Planner returns the cost estimator shared by every generation.
func (le *LiveEngine) Planner() *plan.Estimator { return le.planner }

// Info snapshots the serving generation.
func (le *LiveEngine) Info() LiveInfo {
	g := le.cur.Load()
	ms := g.eng.multi
	return LiveInfo{Generation: g.gen, Segments: ms.Segments(), Shards: ms.Shards(), Docs: ms.Len(), Mmapped: ms.Mmapped()}
}

// GenerationCounts reports swap accounting: generations retired by a
// swap, and generations fully reclaimed (closed after the last in-flight
// query released its pin — includes the final generation after Close).
func (le *LiveEngine) GenerationCounts() (retired, reclaimed uint64) {
	return le.retired.Load(), le.reclaimed.Load()
}

// IngestCounts reports cumulative ingest/merge activity.
func (le *LiveEngine) IngestCounts() (ingests, tables, errs, merges uint64) {
	return le.ingests.Load(), le.ingestedTables.Load(), le.ingestErrors.Load(), le.mergesDone.Load()
}

// IngestTables freezes the batch into a new immutable segment, commits
// the manifest, and atomically publishes the new generation — queries
// started before the swap drain on the old one. Table IDs must be new to
// the corpus. Ingests serialize with each other and with merges; queries
// are never blocked. Returns the published generation's snapshot info.
func (le *LiveEngine) IngestTables(tables []*wtable.Table) (LiveInfo, error) {
	info, err := le.ingestTables(tables)
	if err != nil {
		le.ingestErrors.Add(1)
	}
	return info, err
}

func (le *LiveEngine) ingestTables(tables []*wtable.Table) (LiveInfo, error) {
	le.mu.Lock()
	defer le.mu.Unlock()
	if le.closed {
		return LiveInfo{}, errors.New("wwt: live engine is closed")
	}
	if len(tables) == 0 {
		return LiveInfo{}, errors.New("wwt: ingest of an empty table batch")
	}
	cur := le.cur.Load()
	w := index.NewSegmentWriter()
	for _, t := range tables {
		if t != nil {
			if _, dup := cur.eng.Store.Get(t.ID); dup {
				return LiveInfo{}, fmt.Errorf("wwt: ingest: table ID %q already indexed", t.ID)
			}
		}
		if err := w.Add(t); err != nil {
			return LiveInfo{}, err
		}
	}
	entry := index.SegmentDirName(le.nextSeq)
	if err := w.Flush(filepath.Join(le.dir, entry), le.writeOpts); err != nil {
		return LiveInfo{}, err
	}
	le.nextSeq++
	m := le.manifest
	m.Segments = append(append([]string{}, m.Segments...), entry)
	m.Generation++
	if err := index.WriteManifest(le.dir, m); err != nil {
		return LiveInfo{}, err
	}
	le.manifest = m
	if err := le.publishLocked(tables, true); err != nil {
		return LiveInfo{}, err
	}
	le.ingests.Add(1)
	le.ingestedTables.Add(uint64(len(tables)))
	le.maybeMergeLocked()
	return le.Info(), nil
}

// publishLocked opens the just-committed manifest as a new generation
// and swaps it in. added lists tables new in this generation (nil when
// the table set is unchanged, e.g. a merge — the store is then shared
// with the old generation). migrate adopts the old generation's warm
// doc-set entries, evicting exactly the keys whose tokens occur in the
// newest segment; valid only for append-only swaps, where prior global
// doc numbers are stable — merges remap doc numbers and start cold.
func (le *LiveEngine) publishLocked(added []*wtable.Table, migrate bool) error {
	old := le.cur.Load()
	ms, m, err := index.OpenMultiSnapshot(le.dir)
	if err != nil {
		return err
	}
	st := old.eng.Store
	if added != nil {
		st = index.NewStore()
		for _, t := range old.eng.Store.All() {
			if err := st.Add(t); err != nil {
				ms.Close()
				return err
			}
		}
		for _, t := range added {
			if err := st.Add(t); err != nil {
				ms.Close()
				return err
			}
		}
	}
	eng := NewEngineFromMulti(ms, st, &le.opts)
	eng.norm = le.norm
	eng.planner = le.planner
	if migrate {
		newC, okNew := eng.docsets.(*index.ShardedDocSetCache)
		oldC, okOld := old.eng.docsets.(*index.ShardedDocSetCache)
		if okNew && okOld {
			last := ms.Segments() - 1
			newC.AdoptFrom(oldC, func(tokens []string) bool {
				for _, tok := range tokens {
					if ms.SegmentHasTerm(last, tok) {
						return true
					}
				}
				return false
			})
		}
	}
	g := &liveGen{eng: eng, gen: m.Generation, reclaimed: &le.reclaimed}
	g.refs.Store(1)
	le.cur.Store(g)
	le.retired.Add(1)
	old.release()
	return nil
}

// maybeMergeLocked kicks the background merge goroutine when the policy
// finds a full tier. The merge re-checks under the lock, so spurious
// kicks are cheap.
func (le *LiveEngine) maybeMergeLocked() {
	names, docs := le.mergeableLocked()
	if index.PlanMerge(docs, le.policy) == nil {
		return
	}
	_ = names
	le.merges.Add(1)
	go func() {
		defer le.merges.Done()
		for le.mergeOnce() {
		}
	}()
}

// mergeableLocked lists the merge-eligible segments (every manifest
// entry except the base index) with their doc counts.
func (le *LiveEngine) mergeableLocked() ([]string, []int) {
	lens := le.cur.Load().eng.multi.SegmentLens()
	var names []string
	var docs []int
	for i, entry := range le.manifest.Segments {
		if entry == "." {
			continue
		}
		names = append(names, entry)
		docs = append(docs, lens[i])
	}
	return names, docs
}

// mergeOnce compacts one full tier into a new segment and publishes the
// swap; reports whether it merged (the caller loops until the policy is
// satisfied). Inputs are immutable — the merged segment is written
// beside them, the manifest commit replaces them at the first input's
// position, and the input directories are unlinked only after the swap
// (generations still mapping them keep the inodes alive).
func (le *LiveEngine) mergeOnce() bool {
	le.mu.Lock()
	defer le.mu.Unlock()
	if le.closed {
		return false
	}
	names, docs := le.mergeableLocked()
	picks := index.PlanMerge(docs, le.policy)
	if picks == nil {
		return false
	}
	picked := make(map[string]bool, len(picks))
	srcDirs := make([]string, 0, len(picks))
	for _, i := range picks {
		picked[names[i]] = true
		srcDirs = append(srcDirs, filepath.Join(le.dir, names[i]))
	}
	entry := index.SegmentDirName(le.nextSeq)
	if _, err := index.MergeSegments(filepath.Join(le.dir, entry), srcDirs, le.writeOpts); err != nil {
		return false
	}
	le.nextSeq++
	m := le.manifest
	m.Segments = nil
	inserted := false
	for _, s := range le.manifest.Segments {
		if picked[s] {
			if !inserted {
				m.Segments = append(m.Segments, entry)
				inserted = true
			}
			continue
		}
		m.Segments = append(m.Segments, s)
	}
	m.Generation++
	if err := index.WriteManifest(le.dir, m); err != nil {
		return false
	}
	le.manifest = m
	if err := le.publishLocked(nil, false); err != nil {
		return false
	}
	le.mergesDone.Add(1)
	for n := range picked {
		os.RemoveAll(filepath.Join(le.dir, n))
	}
	return true
}

// WaitMerges blocks until no background merge is running.
func (le *LiveEngine) WaitMerges() { le.merges.Wait() }

// Close stops accepting ingests, waits for background merges, and
// releases the published generation — its mappings close once the last
// in-flight query releases its pin. Queries must not be issued after
// Close.
func (le *LiveEngine) Close() error {
	le.mu.Lock()
	if le.closed {
		le.mu.Unlock()
		return nil
	}
	le.closed = true
	le.mu.Unlock()
	le.merges.Wait()
	le.cur.Load().release()
	return nil
}
