module wwt

go 1.24
