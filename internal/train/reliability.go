package train

import (
	"wwt/internal/core"
	"wwt/internal/eval"
)

// Reliabilities holds the measured outSim part reliabilities p_i of
// §3.2.1 for parts T (title), C (context), Hc (other header rows), Hr
// (other columns' headers) and B (frequent body content).
type Reliabilities struct {
	Title, Context, OtherHeaderRow, OtherHeaderCol, Body float64
	// Support counts how many (column, part) observations backed each
	// estimate, in the same order.
	Support [5]int
}

// MeasureReliabilities implements the paper's estimation procedure: for
// each part i, the reliability p_i is the fraction of correctly matched
// columns among all columns with positive inSim and a positive match with
// part i, measured against ground truth over the training workload. The
// paper reports (1.0, 0.9, 0.5, 1.0, 0.8) on its corpus.
func MeasureReliabilities(r *eval.Runner, base core.Params) Reliabilities {
	var correct, total [5]int
	for _, q := range r.Queries {
		tables, gt := r.CandidatesFor(q)
		b := &core.Builder{Params: base, Stats: r.Engine.Index, PMI: r.Engine.PMISource()}
		m := b.Build(q.Columns, tables)
		for ti, v := range m.Views {
			truth := gt.Labels[tables[ti].ID]
			for c := 0; c < v.NumCols; c++ {
				for ell := 0; ell < m.NumQ; ell++ {
					parts := core.PartMatches(&m.Q[ell], v, c)
					if !parts.AnyInSim {
						continue
					}
					isCorrect := c < len(truth) && truth[c] == ell
					for pi, hit := range parts.Parts {
						if hit {
							total[pi]++
							if isCorrect {
								correct[pi]++
							}
						}
					}
				}
			}
		}
	}
	frac := func(i int) float64 {
		if total[i] == 0 {
			return 0
		}
		return float64(correct[i]) / float64(total[i])
	}
	return Reliabilities{
		Title:          frac(0),
		Context:        frac(1),
		OtherHeaderRow: frac(2),
		OtherHeaderCol: frac(3),
		Body:           frac(4),
		Support:        total,
	}
}
