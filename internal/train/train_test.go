package train

import (
	"testing"

	"wwt/internal/core"
	"wwt/internal/corpusgen"
	"wwt/internal/eval"
)

func smallRunner(t *testing.T) *eval.Runner {
	t.Helper()
	r, err := eval.NewRunner(corpusgen.Config{Seed: 55, Scale: 0.2, JunkPages: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestWeightsImproveOrMatchBase(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus generation")
	}
	r := smallRunner(t)
	base := core.DefaultParams()
	grid := WeightGrid{ // tiny grid for test speed
		W2: []float64{base.W2},
		W3: []float64{base.W3},
		W4: []float64{base.W4, base.W4 * 2},
		W5: []float64{base.W5},
		We: []float64{base.We},
	}
	cases := prepare(r, base)
	baseErr := evalWeights(cases, base)
	_, bestErr := Weights(r, base, grid)
	if bestErr > baseErr+1e-9 {
		t.Errorf("grid search returned worse error than base: %f > %f", bestErr, baseErr)
	}
}

func TestBaselineThresholdsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus generation")
	}
	r := smallRunner(t)
	grid := ThresholdGrid{Relevance: []float64{0.2, 0.4}, Column: []float64{0.05}}
	cfg, err := BaselineThresholds(r, grid)
	if err < 0 || err > 100 {
		t.Errorf("error out of range: %f", err)
	}
	found := false
	for _, rel := range grid.Relevance {
		if cfg.RelevanceThreshold == rel {
			found = true
		}
	}
	if !found {
		t.Errorf("returned threshold %f not from grid", cfg.RelevanceThreshold)
	}
}

func TestMeasureReliabilities(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus generation")
	}
	r := smallRunner(t)
	rel := MeasureReliabilities(r, core.DefaultParams())
	for i, v := range []float64{rel.Title, rel.Context, rel.OtherHeaderRow, rel.OtherHeaderCol, rel.Body} {
		if v < 0 || v > 1 {
			t.Errorf("reliability %d out of range: %f", i, v)
		}
	}
	// Context support should exist on this corpus (phrases in context).
	if rel.Support[1] == 0 {
		t.Error("no context observations measured")
	}
}
