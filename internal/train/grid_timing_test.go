package train

import (
	"testing"
	"time"

	"wwt/internal/core"
	"wwt/internal/corpusgen"
	"wwt/internal/eval"
)

// TestGridPointTimings guards against pathological weight combinations
// making the grid search hang; every point must evaluate quickly.
func TestGridPointTimings(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	r, err := eval.NewRunner(corpusgen.Config{Seed: 777, Scale: 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := prepare(r, core.DefaultParams())
	grid := DefaultGrid()
	for _, w2 := range grid.W2 {
		for _, w4 := range grid.W4 {
			for _, w5 := range grid.W5 {
				for _, we := range grid.We {
					p := core.DefaultParams()
					p.W1, p.W2, p.W4, p.W5, p.We = 1.0, w2, w4, w5, we
					start := time.Now()
					evalWeights(cases, p)
					if d := time.Since(start); d > 5*time.Second {
						t.Errorf("slow grid point w2=%.2f w4=%.2f w5=%.2f we=%.2f: %v", w2, w4, w5, we, d)
					}
				}
			}
		}
	}
}
