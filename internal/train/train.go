// Package train finds the six trainable weights of the column mapper
// (w1..w5, we of Eq. 3/4) by exhaustive enumeration over a grid — the
// procedure the paper uses (§3.4: "Since we had only six parameters, we
// were able to find the best values through exhaustive enumeration") —
// and calibrates the Basic baseline's thresholds the same way. Training
// runs on a corpus generated with a *different seed* than evaluation.
package train

import (
	"wwt/internal/baseline"
	"wwt/internal/core"
	"wwt/internal/eval"
	"wwt/internal/inference"
	"wwt/internal/workload"
	"wwt/internal/wtable"
)

// WeightGrid enumerates candidate values per trainable weight. W1 is
// pinned to 1.0: the objective is invariant to a global rescaling of all
// potentials, so one weight can anchor the scale.
type WeightGrid struct {
	W2, W3, W4, W5, We []float64
}

// DefaultGrid spans the useful ranges at the paper's granularity.
func DefaultGrid() WeightGrid {
	return WeightGrid{
		W2: []float64{8.0, 11.0, 16.0},
		W3: []float64{0.25}, // only active when UsePMI is set
		W4: []float64{0.05, 0.1, 0.2, 0.35},
		W5: []float64{-5.5, -8.0, -11.0},
		We: []float64{2.0, 2.8, 4.0, 5.5},
	}
}

// queryCase caches the per-query model (features are weight-independent).
type queryCase struct {
	query  workload.Query
	tables []*wtable.Table
	gt     eval.GroundTruth
	model  *core.Model
}

// prepare builds one model per workload query with the base params. All
// cacheless builds share one interner: the workload's candidate sets
// overlap heavily, so the symbol table is populated once instead of per
// query (cross-view IDs stay comparable — every view of one model interns
// into the same table).
func prepare(r *eval.Runner, base core.Params) []queryCase {
	cases := make([]queryCase, 0, len(r.Queries))
	in := core.NewInterner()
	for _, q := range r.Queries {
		tables, gt := r.CandidatesFor(q)
		b := &core.Builder{Params: base, Stats: r.Engine.Index, PMI: r.Engine.PMISource(), Interner: in}
		cases = append(cases, queryCase{
			query: q, tables: tables, gt: gt,
			model: b.Build(q.Columns, tables),
		})
	}
	return cases
}

// Weights exhaustively enumerates the grid and returns the parameter set
// minimizing mean F1 error of the table-centric algorithm over the
// training workload, along with that error.
func Weights(r *eval.Runner, base core.Params, grid WeightGrid) (core.Params, float64) {
	cases := prepare(r, base)
	best := base
	bestErr := evalWeights(cases, base)
	w3s := grid.W3
	if !base.UsePMI {
		w3s = []float64{base.W3}
	}
	for _, w2 := range grid.W2 {
		for _, w3 := range w3s {
			for _, w4 := range grid.W4 {
				for _, w5 := range grid.W5 {
					for _, we := range grid.We {
						p := base
						p.W1, p.W2, p.W3, p.W4, p.W5, p.We = 1.0, w2, w3, w4, w5, we
						if err := evalWeights(cases, p); err < bestErr {
							bestErr = err
							best = p
						}
					}
				}
			}
		}
	}
	return best, bestErr
}

func evalWeights(cases []queryCase, p core.Params) float64 {
	var sum float64
	for i := range cases {
		m := cases[i].model.Reweight(p)
		l := inference.SolveTableCentric(m)
		sum += eval.F1Error(l, cases[i].tables, cases[i].gt)
	}
	return sum / float64(len(cases))
}

// ThresholdGrid enumerates the Basic baseline's thresholds.
type ThresholdGrid struct {
	Relevance, Column []float64
}

// DefaultThresholdGrid spans the plausible cosine ranges.
func DefaultThresholdGrid() ThresholdGrid {
	return ThresholdGrid{
		Relevance: []float64{0.25, 0.33, 0.42, 0.52, 0.62},
		Column:    []float64{0.02, 0.05, 0.10, 0.18, 0.28},
	}
}

// BaselineThresholds calibrates Basic's two thresholds by exhaustive
// enumeration, minimizing mean F1 error over the training workload. The
// candidate views are analyzed once per query and shared across the grid.
func BaselineThresholds(r *eval.Runner, grid ThresholdGrid) (baseline.Config, float64) {
	type tcase struct {
		tables   []*wtable.Table
		gt       eval.GroundTruth
		prepared *baseline.Prepared
	}
	var cases []tcase
	for _, q := range r.Queries {
		tables, gt := r.CandidatesFor(q)
		cases = append(cases, tcase{tables, gt, baseline.Prepare(q.Columns, tables, r.Engine.Index)})
	}
	best := baseline.DefaultConfig()
	bestErr := 1e18
	for _, rel := range grid.Relevance {
		for _, col := range grid.Column {
			cfg := baseline.DefaultConfig()
			cfg.RelevanceThreshold = rel
			cfg.ColumnThreshold = col
			var sum float64
			for _, c := range cases {
				l := c.prepared.Solve(baseline.Basic, cfg, nil)
				sum += eval.F1Error(l, c.tables, c.gt)
			}
			if err := sum / float64(len(cases)); err < bestErr {
				bestErr = err
				best = cfg
			}
		}
	}
	return best, bestErr
}
