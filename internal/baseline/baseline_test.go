package baseline

import (
	"testing"

	"wwt/internal/core"
	"wwt/internal/index"
	"wwt/internal/wtable"
)

type constStats struct{}

func (constStats) IDF(string) float64 { return 1 }

func row(texts ...string) wtable.Row {
	cells := make([]wtable.Cell, len(texts))
	for i, t := range texts {
		cells[i] = wtable.Cell{Text: t}
	}
	return wtable.Row{Cells: cells}
}

func table(id string, headers []string, body [][]string, context string) *wtable.Table {
	t := &wtable.Table{ID: id}
	if headers != nil {
		t.HeaderRows = []wtable.Row{row(headers...)}
	}
	for _, br := range body {
		t.BodyRows = append(t.BodyRows, row(br...))
	}
	if context != "" {
		t.Context = []wtable.Snippet{{Text: context, Score: 1}}
	}
	return t
}

func TestBasicLabelsCleanTable(t *testing.T) {
	good := table("good", []string{"Country", "Currency"},
		[][]string{{"France", "Euro"}}, "currencies of the world")
	junk := table("junk", []string{"ID", "Area"},
		[][]string{{"7", "2236"}}, "forest reserves")
	l := Solve(Basic, DefaultConfig(), []string{"country", "currency"},
		[]*wtable.Table{good, junk}, constStats{}, nil)
	if l.Y[0][0] != 0 || l.Y[0][1] != 1 {
		t.Errorf("good table labels = %v", l.Y[0])
	}
	if l.Relevant(1) {
		t.Errorf("junk labeled relevant: %v", l.Y[1])
	}
}

func TestBasicFailsOnSplitKeywords(t *testing.T) {
	// "Nobel prize" only in context, "winner" in header: whole-string
	// cosine against the header is weak — Basic misses what SegSim catches.
	// With default thresholds the winner column should NOT be mapped
	// (1/sqrt(3) cosine is below nothing... it is actually decent), so we
	// check it scores strictly lower than a full header match.
	split := table("split", []string{"winner", "year"},
		[][]string{{"Curie", "1903"}}, "Nobel prize laureates")
	full := table("full", []string{"nobel prize winner", "year"},
		[][]string{{"Curie", "1903"}}, "")
	lSplit := Solve(Basic, DefaultConfig(), []string{"nobel prize winner"},
		[]*wtable.Table{split}, constStats{}, nil)
	lFull := Solve(Basic, DefaultConfig(), []string{"nobel prize winner"},
		[]*wtable.Table{full}, constStats{}, nil)
	if lFull.Y[0][0] != 0 {
		t.Errorf("full header not mapped: %v", lFull.Y[0])
	}
	_ = lSplit // split may or may not clear the threshold; asserted via scores in core tests
}

func TestBasicMutexGreedy(t *testing.T) {
	twin := table("twin", []string{"Currency", "Currency"},
		[][]string{{"Euro", "Euro"}}, "currency")
	l := Solve(Basic, DefaultConfig(), []string{"currency"},
		[]*wtable.Table{twin}, constStats{}, nil)
	n := 0
	for _, y := range l.Y[0] {
		if y == 0 {
			n++
		}
	}
	if n > 1 {
		t.Errorf("greedy assignment violated mutex: %v", l.Y[0])
	}
}

func TestNbrTextImportsHeaders(t *testing.T) {
	good := table("good", []string{"Country", "Currency"},
		[][]string{{"France", "Euro"}, {"Japan", "Yen"}, {"India", "Rupee"}},
		"currencies of the world")
	bare := table("bare", nil,
		[][]string{{"France", "Euro"}, {"Japan", "Yen"}, {"India", "Rupee"}}, "world currencies by country")
	q := []string{"country", "currency"}
	lBasic := Solve(Basic, DefaultConfig(), q, []*wtable.Table{good, bare}, constStats{}, nil)
	lNbr := Solve(NbrText, DefaultConfig(), q, []*wtable.Table{good, bare}, constStats{}, nil)
	// Basic cannot map the headerless table's columns.
	for _, y := range lBasic.Y[1] {
		if y >= 0 && y < 2 {
			t.Errorf("Basic mapped a headerless column: %v", lBasic.Y[1])
		}
	}
	// NbrText imports the good table's header similarities.
	if lNbr.Y[1][0] != 0 || lNbr.Y[1][1] != 1 {
		t.Errorf("NbrText failed to import headers: %v", lNbr.Y[1])
	}
}

func TestNbrTextOverlapTrap(t *testing.T) {
	// §5.1: when two columns inside a table overlap (capitals vs largest
	// cities share many values), NbrText imports the wrong header.
	states := table("states", []string{"State", "Capital", "Largest city"},
		[][]string{
			{"Arizona", "Phoenix", "Phoenix"},
			{"Massachusetts", "Boston", "Boston"},
			{"Georgia", "Atlanta", "Atlanta"},
			{"New York", "Albany", "New York City"},
		}, "us states")
	other := table("other", []string{"State", "Capital"},
		[][]string{
			{"Arizona", "Phoenix"},
			{"Massachusetts", "Boston"},
			{"Georgia", "Atlanta"},
			{"New York", "Albany"},
		}, "state capitals")
	q := []string{"us states", "capitals", "largest cities"}
	l := Solve(NbrText, DefaultConfig(), q, []*wtable.Table{states, other}, constStats{}, nil)
	// The "Capital" column of table `other` overlaps the "Largest city"
	// column of `states` heavily; NbrText may cross-assign. We only assert
	// the run completes and the mutex holds — the accuracy damage is
	// measured by the experiments.
	seen := map[int]bool{}
	for _, y := range l.Y[1] {
		if y >= 0 && y < 3 {
			if seen[y] {
				t.Fatalf("mutex violated: %v", l.Y[1])
			}
			seen[y] = true
		}
	}
}

func TestPMI2AddsCorpusSignal(t *testing.T) {
	// Corpus: many tables associate "black metal" context with band cells.
	var tables []*wtable.Table
	bands := [][]string{{"Mayhem"}, {"Darkthrone"}, {"Burzum"}}
	for i := 0; i < 5; i++ {
		tb := table(idf("bm", i), []string{"Band"}, bands, "black metal bands")
		tables = append(tables, tb)
	}
	// Candidate: headers useless ("Name"), content = band names.
	cand := table("cand", []string{"Name"}, bands, "black metal")
	all := append(tables, cand)
	ix, err := index.Build(all)
	if err != nil {
		t.Fatal(err)
	}
	src := indexPMI{ix}
	// Use permissive thresholds: this test isolates the PMI² signal, not
	// the trained relevance gate.
	cfg := Config{RelevanceThreshold: 0.05, ColumnThreshold: 0.3, PMIWeight: 1.0, NbrMinSim: 0.5}
	lBasic := Solve(Basic, cfg, []string{"black metal bands"},
		[]*wtable.Table{cand}, ix, nil)
	lPMI := Solve(PMI2, cfg, []string{"black metal bands"},
		[]*wtable.Table{cand}, ix, src)
	if lBasic.Y[0][0] == 0 {
		t.Fatalf("Basic should not clear the column threshold without PMI: %v", lBasic.Y[0])
	}
	if lPMI.Y[0][0] != 0 {
		t.Errorf("PMI2 failed to map content-evidence column: %v", lPMI.Y[0])
	}
}

func idf(p string, i int) string { return p + string(rune('a'+i)) }

// indexPMI adapts index.Index to core.PMISource.
type indexPMI struct{ ix *index.Index }

func (s indexPMI) HeaderContextDocs(tokens []string) []int32 {
	return s.ix.DocSet(tokens, index.FieldHeader, index.FieldContext)
}
func (s indexPMI) ContentDocs(tokens []string) []int32 {
	return s.ix.DocSet(tokens, index.FieldContent)
}

var _ core.PMISource = indexPMI{}
