// Package baseline implements the three comparison methods of §5:
//
//   - Basic: the strawman described at the start of §3 — threshold the
//     whole-query TF-IDF similarity against a table's context+header text
//     for relevance, then greedily match each query column to the best
//     whole-header cosine above a threshold.
//   - NbrText: Basic, with each column's similarity augmented by header
//     text imported from content-similar columns of other tables
//     (max(TI(Qℓ,tc), max_{t'c'} sim(tc,t'c')·TI(Qℓ,t'c'))).
//   - PMI2: Basic augmented with the corpus co-occurrence PMI² score of
//     §3.2.3, after [2].
//
// All three output core.Labeling values directly comparable to WWT's.
package baseline

import (
	"math"
	"sort"

	"wwt/internal/core"
	"wwt/internal/text"
	"wwt/internal/wtable"
)

// Method selects a baseline.
type Method int

// The baselines of §5.
const (
	Basic Method = iota
	NbrText
	PMI2
)

// String names the method as in the paper.
func (m Method) String() string {
	switch m {
	case Basic:
		return "Basic"
	case NbrText:
		return "NbrText"
	case PMI2:
		return "PMI2"
	}
	return "Baseline(?)"
}

// Config carries the thresholds of the basic method. The zero value is not
// useful; use DefaultConfig.
type Config struct {
	// RelevanceThreshold gates the table-level decision on the cosine of
	// the whole query against header+context text.
	RelevanceThreshold float64
	// ColumnThreshold gates each per-column assignment.
	ColumnThreshold float64
	// PMIWeight scales the PMI² contribution for the PMI2 method.
	PMIWeight float64
	// NbrMinSim is the minimum content similarity for importing neighbor
	// header text (NbrText method).
	NbrMinSim float64
}

// DefaultConfig returns thresholds tuned on the generated training split
// by internal/train's exhaustive enumeration (cmd/wwt-train).
func DefaultConfig() Config {
	return Config{RelevanceThreshold: 0.42, ColumnThreshold: 0.02, PMIWeight: 1.0, NbrMinSim: 0.5}
}

// Prepared caches the analyzed views and base header-similarity scores of
// one (query, candidate set) pair so that different methods and threshold
// settings can be evaluated without re-tokenizing (used heavily by the
// training grid search).
type Prepared struct {
	q       int
	views   []*tview
	qcols   [][]string
	relSim  []float64     // per table: cosine(whole query, header+context)
	base    [][][]float64 // header cosine per (table, col, query col)
	pmiPart [][][]float64 // lazily computed PMI² per (table, col, query col)
}

// Prepare analyzes the candidates for a query once.
func Prepare(queryCols []string, tables []*wtable.Table, stats core.CorpusStats) *Prepared {
	q := len(queryCols)
	p := &Prepared{q: q}
	p.views = make([]*tview, len(tables))
	for i, t := range tables {
		p.views[i] = newTView(t, stats)
	}
	p.qcols = make([][]string, q)
	var allQ []string
	for i, s := range queryCols {
		p.qcols[i] = text.Normalize(s)
		allQ = append(allQ, p.qcols[i]...)
	}
	p.relSim = make([]float64, len(tables))
	p.base = make([][][]float64, len(tables))
	for ti, v := range p.views {
		p.relSim[ti] = cosineVec(v.stats, allQ, v.relevanceToks)
		p.base[ti] = make([][]float64, v.numCols)
		for c := 0; c < v.numCols; c++ {
			p.base[ti][c] = make([]float64, q)
			for ell := 0; ell < q; ell++ {
				p.base[ti][c][ell] = cosineVec(v.stats, p.qcols[ell], v.headerToks[c])
			}
		}
	}
	return p
}

// Solve labels the prepared candidates with the chosen method and config.
func (p *Prepared) Solve(method Method, cfg Config, pmi core.PMISource) core.Labeling {
	q := p.q
	// Copy base scores; methods augment them.
	score := make([][][]float64, len(p.views))
	for ti := range p.base {
		score[ti] = make([][]float64, len(p.base[ti]))
		for c := range p.base[ti] {
			score[ti][c] = append([]float64(nil), p.base[ti][c]...)
		}
	}
	switch method {
	case NbrText:
		augmentWithNeighborText(cfg, p.views, p.qcols, score)
	case PMI2:
		if pmi != nil {
			p.ensurePMI(pmi)
			for ti := range score {
				for c := range score[ti] {
					for ell := 0; ell < q; ell++ {
						score[ti][c][ell] += cfg.PMIWeight * p.pmiPart[ti][c][ell]
					}
				}
			}
		}
	}
	cols := make([]int, len(p.views))
	for i, v := range p.views {
		cols[i] = v.numCols
	}
	l := core.NewLabeling(q, cols)
	for ti := range p.views {
		if p.relSim[ti] < cfg.RelevanceThreshold {
			continue // stays all-nr
		}
		assignGreedy(l.Y[ti], score[ti], q, cfg.ColumnThreshold)
	}
	return l
}

// ensurePMI computes the PMI² contributions once.
func (p *Prepared) ensurePMI(pmi core.PMISource) {
	if p.pmiPart != nil {
		return
	}
	p.pmiPart = make([][][]float64, len(p.views))
	for ti, v := range p.views {
		p.pmiPart[ti] = make([][]float64, v.numCols)
		for c := 0; c < v.numCols; c++ {
			p.pmiPart[ti][c] = make([]float64, p.q)
		}
	}
	for ell, qc := range p.qcols {
		h := pmi.HeaderContextDocs(qc)
		if len(h) == 0 {
			continue
		}
		for ti, v := range p.views {
			for c := 0; c < v.numCols; c++ {
				p.pmiPart[ti][c][ell] = pmiColumn(h, v, c, pmi)
			}
		}
	}
}

// Solve labels all candidate tables with the chosen baseline method.
func Solve(method Method, cfg Config, queryCols []string, tables []*wtable.Table, stats core.CorpusStats, pmi core.PMISource) core.Labeling {
	return Prepare(queryCols, tables, stats).Solve(method, cfg, pmi)
}

// assignGreedy matches query columns to table columns best-first under the
// mutex constraint, leaving the rest na.
func assignGreedy(labels []int, score [][]float64, q int, threshold float64) {
	for c := range labels {
		labels[c] = core.NA(q)
	}
	type cand struct {
		c, ell int
		s      float64
	}
	var cands []cand
	for c := range score {
		for ell := 0; ell < q; ell++ {
			if score[c][ell] >= threshold {
				cands = append(cands, cand{c, ell, score[c][ell]})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].s != cands[j].s {
			return cands[i].s > cands[j].s
		}
		if cands[i].c != cands[j].c {
			return cands[i].c < cands[j].c
		}
		return cands[i].ell < cands[j].ell
	})
	usedCol := make(map[int]bool)
	usedEll := make(map[int]bool)
	for _, cd := range cands {
		if usedCol[cd.c] || usedEll[cd.ell] {
			continue
		}
		labels[cd.c] = cd.ell
		usedCol[cd.c] = true
		usedEll[cd.ell] = true
	}
}

// augmentWithNeighborText implements the NbrText similarity: a column
// inherits the best neighbor's header similarity scaled by the content
// overlap, which helps headerless tables but imports wrong headers when
// columns within a table overlap (§5.1).
func augmentWithNeighborText(cfg Config, views []*tview, qcols [][]string, score [][][]float64) {
	for ti, v := range views {
		for c := 0; c < v.numCols; c++ {
			for tj, w := range views {
				if tj == ti {
					continue
				}
				for c2 := 0; c2 < w.numCols; c2++ {
					sim := cellJaccard(v.cellSet[c], w.cellSet[c2])
					if sim < cfg.NbrMinSim {
						continue
					}
					for ell := range qcols {
						if s := sim * score[tj][c2][ell]; s > score[ti][c][ell] {
							score[ti][c][ell] = s
						}
					}
				}
			}
		}
	}
}

// pmiColumn mirrors core's PMI² computation on the baseline's view.
func pmiColumn(hDocs []int32, v *tview, c int, pmi core.PMISource) float64 {
	t := v.table
	rows := t.NumBodyRows()
	if rows == 0 {
		return 0
	}
	if rows > 50 {
		rows = 50
	}
	var sum float64
	for r := 0; r < rows; r++ {
		toks := text.Normalize(t.Body(r, c))
		if len(toks) == 0 {
			continue
		}
		if len(toks) > 8 {
			toks = toks[:8]
		}
		b := pmi.ContentDocs(toks)
		if len(b) == 0 {
			continue
		}
		inter := 0
		i, j := 0, 0
		for i < len(hDocs) && j < len(b) {
			switch {
			case hDocs[i] < b[j]:
				i++
			case hDocs[i] > b[j]:
				j++
			default:
				inter++
				i++
				j++
			}
		}
		sum += float64(inter) * float64(inter) / (float64(len(hDocs)) * float64(len(b)))
	}
	return sum / float64(rows)
}

// tview is the baseline's lightweight analyzed table.
type tview struct {
	table         *wtable.Table
	stats         core.CorpusStats
	numCols       int
	headerToks    [][]string
	relevanceToks []string // header + context + title text
	cellSet       []map[string]bool
}

func newTView(t *wtable.Table, stats core.CorpusStats) *tview {
	v := &tview{table: t, stats: stats, numCols: t.NumCols()}
	v.headerToks = make([][]string, v.numCols)
	for c := 0; c < v.numCols; c++ {
		var toks []string
		for r := 0; r < len(t.HeaderRows); r++ {
			toks = append(toks, text.Normalize(t.Header(r, c))...)
		}
		v.headerToks[c] = toks
		v.relevanceToks = append(v.relevanceToks, toks...)
	}
	v.relevanceToks = append(v.relevanceToks, text.Normalize(t.TitleText())...)
	v.relevanceToks = append(v.relevanceToks, text.Normalize(t.PageTitle)...)
	for _, s := range t.Context {
		v.relevanceToks = append(v.relevanceToks, text.Normalize(s.Text)...)
	}
	v.cellSet = make([]map[string]bool, v.numCols)
	for c := 0; c < v.numCols; c++ {
		set := make(map[string]bool)
		for r := 0; r < t.NumBodyRows(); r++ {
			toks := text.Normalize(t.Body(r, c))
			if len(toks) == 0 {
				continue
			}
			key := ""
			for i, tok := range toks {
				if i > 0 {
					key += " "
				}
				key += tok
			}
			set[key] = true
		}
		v.cellSet[c] = set
	}
	return v
}

func cellJaccard(a, b map[string]bool) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	small, large := a, b
	if len(b) < len(a) {
		small, large = b, a
	}
	for k := range small {
		if large[k] {
			inter++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// cosineVec computes TF-IDF cosine between two token bags under stats.
func cosineVec(stats core.CorpusStats, a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	va := make(map[string]float64, len(a))
	for _, t := range a {
		va[t] += stats.IDF(t)
	}
	vb := make(map[string]float64, len(b))
	for _, t := range b {
		vb[t] += stats.IDF(t)
	}
	// Sum in first-occurrence token order, not map order: float sums over
	// map iteration are bit-nondeterministic and this oracle is diffed
	// against the engine's deterministic scorer.
	var dot, na, nb float64
	seen := make(map[string]bool, len(va))
	for _, t := range a {
		if seen[t] {
			continue
		}
		seen[t] = true
		x := va[t]
		na += x * x
		if y, ok := vb[t]; ok {
			dot += x * y
		}
	}
	clear(seen)
	for _, t := range b {
		if seen[t] {
			continue
		}
		seen[t] = true
		y := vb[t]
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}
