package index

import (
	"math"
	"path/filepath"
	"slices"
	"sort"
	"sync"
)

// MultiSearcher unions searches over an ordered list of immutable
// segments — each a complete ShardedSearcher over its own document
// subset — and presents them as one index over a global doc space:
// segment i's documents occupy the contiguous global range starting at
// its doc base, in manifest order.
//
// Scoring stays bit-identical to a single index rebuilt over the union.
// The one corpus-wide quantity in the score is idf, so every resolved
// term carries the global statistics on its termRef: df summed across
// segments (documents live in exactly one segment, so the sum is exact)
// and idf recomputed from the global doc count with the same smoothed
// formula — the identical float64 operation a rebuilt index would run at
// freeze time. Each segment is then gathered independently in the
// canonical global term order (df ascending, token ascending), so every
// document accumulates the identical operation sequence it would in the
// rebuilt index; per-segment top-k candidate lists merge by the shared
// hit order. The top-k score floor established by earlier segments
// carries into later segments' gathers — per-segment scores are complete
// (no document spans segments), so the running kth-best is a valid
// admission bound, and later segments open with blocks already closed.
//
// A MultiSearcher is immutable and safe for concurrent use; Close
// releases every segment's mappings.
type MultiSearcher struct {
	segs    []*multiSegment
	numDocs int
	maxSeg  int    // largest single-segment doc count (accumulator sizing)
	gen     uint64 // manifest generation this snapshot was opened at
	pool    sync.Pool
}

// multiSegment pairs a segment's searcher with its global doc base.
type multiSegment struct {
	ss   *ShardedSearcher
	base int32
}

// segLoc is one (segment, shard, term) resolution hit.
type segLoc struct {
	si  int32
	sh  *shard
	tid int32
}

// multiScratch is the pooled per-probe state of a multi-segment search.
type multiScratch struct {
	acc     accumulator
	seen    map[string]bool
	toks    []string
	locs    []segLoc
	segRefs [][]termRef
	all     []Hit
}

// NewMultiFromSearchers assembles a MultiSearcher over already-open
// segments in the given canonical order. The searchers are owned by the
// result: Close closes them.
func NewMultiFromSearchers(segs []*ShardedSearcher) *MultiSearcher {
	ms := &MultiSearcher{}
	for _, ss := range segs {
		ms.segs = append(ms.segs, &multiSegment{ss: ss, base: int32(ms.numDocs)})
		ms.numDocs += ss.Len()
		if ss.Len() > ms.maxSeg {
			ms.maxSeg = ss.Len()
		}
	}
	return ms
}

// OpenMulti opens the given segment directories (each a flat sharded
// index) in canonical order.
func OpenMulti(dirs []string) (*MultiSearcher, error) {
	return openMulti(dirs, false)
}

func openMulti(dirs []string, noMmap bool) (*MultiSearcher, error) {
	segs := make([]*ShardedSearcher, 0, len(dirs))
	for _, d := range dirs {
		ss, err := openSharded(d, noMmap)
		if err != nil {
			for _, open := range segs {
				open.Close()
			}
			return nil, err
		}
		segs = append(segs, ss)
	}
	return NewMultiFromSearchers(segs), nil
}

// OpenMultiSnapshot opens dir's committed manifest (or the implicit
// base-only manifest of a plain frozen index directory) as one
// MultiSearcher, and returns the manifest it opened. A directory holding
// neither a manifest nor a flat index fails with an error wrapping
// fs.ErrNotExist, so callers can fall back to the gob path.
func OpenMultiSnapshot(dir string) (*MultiSearcher, Manifest, error) {
	return openMultiSnapshot(dir, false)
}

func openMultiSnapshot(dir string, noMmap bool) (*MultiSearcher, Manifest, error) {
	m, err := SnapshotManifest(dir)
	if err != nil {
		return nil, m, err
	}
	dirs := make([]string, len(m.Segments))
	for i, s := range m.Segments {
		dirs[i] = segPath(dir, s)
	}
	ms, err := openMulti(dirs, noMmap)
	if err != nil {
		return nil, m, err
	}
	ms.gen = m.Generation
	return ms, m, nil
}

// segPath resolves a manifest segment entry against the index root
// ("." is the root itself).
func segPath(dir, entry string) string {
	return filepath.Join(dir, entry)
}

// Close releases every segment. Results alias segment mappings and must
// not be used afterwards.
func (ms *MultiSearcher) Close() error {
	var first error
	for _, seg := range ms.segs {
		if err := seg.ss.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Len returns the total document count across segments.
func (ms *MultiSearcher) Len() int { return ms.numDocs }

// Segments returns the segment count.
func (ms *MultiSearcher) Segments() int { return len(ms.segs) }

// Generation returns the manifest generation this snapshot was opened at
// (0 for snapshots assembled without a manifest).
func (ms *MultiSearcher) Generation() uint64 { return ms.gen }

// SegmentLens returns the per-segment document counts in canonical
// order — the merge planner's input.
func (ms *MultiSearcher) SegmentLens() []int {
	out := make([]int, len(ms.segs))
	for i, seg := range ms.segs {
		out[i] = seg.ss.Len()
	}
	return out
}

// SegmentHasTerm reports whether segment i contains the token. Generation
// swaps use it to evict exactly the cached doc sets the new segment
// staled.
func (ms *MultiSearcher) SegmentHasTerm(i int, tok string) bool {
	return ms.segs[i].ss.HasTerm(tok)
}

// Shards returns the total shard count across segments.
func (ms *MultiSearcher) Shards() int {
	n := 0
	for _, seg := range ms.segs {
		n += seg.ss.Shards()
	}
	return n
}

// Mmapped reports whether every segment aliases file mappings.
func (ms *MultiSearcher) Mmapped() bool {
	for _, seg := range ms.segs {
		if !seg.ss.Mmapped() {
			return false
		}
	}
	return len(ms.segs) > 0
}

// ShardPruneCounts concatenates the per-shard prune counters in segment
// order (only single-segment probes run the pruning pre-pass, so later
// segments' counters stay zero).
func (ms *MultiSearcher) ShardPruneCounts() []uint64 {
	var out []uint64
	for _, seg := range ms.segs {
		out = append(out, seg.ss.ShardPruneCounts()...)
	}
	return out
}

// IDOf returns the table ID of a global doc number.
func (ms *MultiSearcher) IDOf(doc int32) string {
	si := ms.segOf(doc)
	return ms.segs[si].ss.IDOf(doc - ms.segs[si].base)
}

// segOf locates the segment owning a global doc number.
func (ms *MultiSearcher) segOf(doc int32) int {
	return sort.Search(len(ms.segs), func(i int) bool { return ms.segs[i].base > doc }) - 1
}

// globalDF sums the token's per-segment document frequencies. Documents
// live in exactly one segment, so the sum equals the df a rebuilt index
// over the union would compute.
func (ms *MultiSearcher) globalDF(tok string) int64 {
	var df int64
	for _, seg := range ms.segs {
		sh := seg.ss.shards[shardOfToken(tok, seg.ss.shardCount)]
		if tid, ok := sh.lookup(tok); ok {
			df += int64(sh.df[tid])
		}
	}
	return df
}

// IDF returns the smoothed corpus-global inverse document frequency,
// identical to Index.IDF over the union of segments.
func (ms *MultiSearcher) IDF(tok string) float64 {
	if ms.numDocs == 0 {
		return 1
	}
	return math.Log(1 + float64(ms.numDocs)/float64(1+ms.globalDF(tok)))
}

// TermStats returns the corpus-global union document frequency and total
// posting entries of a token. Unknown tokens report ok=false.
func (ms *MultiSearcher) TermStats(tok string) (df int32, postings int, ok bool) {
	var d int64
	for _, seg := range ms.segs {
		sd, sp, sok := seg.ss.TermStats(tok)
		if sok {
			d += int64(sd)
			postings += sp
			ok = true
		}
	}
	return int32(d), postings, ok
}

// HasTerm reports whether any segment contains the token.
func (ms *MultiSearcher) HasTerm(tok string) bool {
	for _, seg := range ms.segs {
		if seg.ss.HasTerm(tok) {
			return true
		}
	}
	return false
}

func (ms *MultiSearcher) getScratch() *multiScratch {
	sc, _ := ms.pool.Get().(*multiScratch)
	if sc == nil {
		sc = &multiScratch{}
	}
	a := &sc.acc
	if len(a.score) < ms.maxSeg {
		a.score = make([]float64, ms.maxSeg)
		a.gen = make([]uint32, ms.maxSeg)
		a.cur = 0
	}
	if sc.seen == nil {
		sc.seen = make(map[string]bool, 16)
	}
	clear(sc.seen)
	if len(sc.segRefs) != len(ms.segs) {
		sc.segRefs = make([][]termRef, len(ms.segs))
	}
	return sc
}

// Search scores a union-of-keywords query over all segments and returns
// the top k hits (all hits when k <= 0), bit-identical to a single index
// rebuilt over the union of the segments' documents.
func (ms *MultiSearcher) Search(tokens []string, k int) []Hit {
	hits, _ := ms.SearchStats(tokens, k)
	return hits
}

// SearchStats is Search plus the probe's skip counters, summed across
// segments.
//
// Each segment is scored independently into one reused accumulator
// generation: per-term global df/idf are computed once, the segment's
// resolved refs are sorted into the canonical global order, and the
// gather runs with the floor carried over from already-scored segments'
// merged top k (exact, since no document spans segments). The global
// top k is a subset of the per-segment top k's, so merging the
// candidate lists with the shared hit order reproduces the rebuilt
// index's result exactly. Multi-segment probes skip the page-prefault
// scatter and the shard-pruning pre-pass — segments past the first
// usually open with most blocks closed by the carried floor instead.
func (ms *MultiSearcher) SearchStats(tokens []string, k int) ([]Hit, ProbeStats) {
	var st ProbeStats
	if len(tokens) == 0 || ms.numDocs == 0 {
		return nil, st
	}
	if len(ms.segs) == 1 {
		// One segment is just that index: take its scatter/prune path.
		return ms.segs[0].ss.SearchStats(tokens, k)
	}
	sc := ms.getScratch()
	defer ms.pool.Put(sc)

	toks := sc.toks[:0]
	for _, tok := range tokens {
		if !sc.seen[tok] {
			sc.seen[tok] = true
			toks = append(toks, tok)
		}
	}
	sc.toks = toks
	for i := range sc.segRefs {
		sc.segRefs[i] = sc.segRefs[i][:0]
	}

	// Resolve every token in every segment and stamp the refs with the
	// corpus-global statistics. idf is computed with the exact float64
	// operation sequence Index.IDF uses, so downstream sums match a
	// rebuilt index bit for bit. The segment-local best-weight bound is
	// rescaled by the global idf — still a valid per-doc contribution
	// bound within that segment.
	locs := sc.locs[:0]
	for _, tok := range toks {
		start := len(locs)
		var df int64
		for si, seg := range ms.segs {
			sh := seg.ss.shards[shardOfToken(tok, seg.ss.shardCount)]
			if tid, ok := sh.lookup(tok); ok {
				df += int64(sh.df[tid])
				locs = append(locs, segLoc{si: int32(si), sh: sh, tid: tid})
			}
		}
		if len(locs) == start {
			continue
		}
		idf := math.Log(1 + float64(ms.numDocs)/float64(1+df))
		for _, l := range locs[start:] {
			sc.segRefs[l.si] = append(sc.segRefs[l.si], termRef{
				tok: tok, sh: l.sh, tid: l.tid,
				df: int32(df), idf: idf,
				maxS: idf * l.sh.bestW[l.tid],
			})
		}
		locs = locs[:start]
	}
	sc.locs = locs

	acc := &sc.acc
	all := sc.all[:0]
	floor := math.Inf(-1)
	for si, seg := range ms.segs {
		refs := sc.segRefs[si]
		if len(refs) == 0 {
			continue
		}
		for i, r := range refs {
			probed := false
			for _, p := range refs[:i] {
				if p.sh == r.sh {
					probed = true
					break
				}
			}
			if !probed {
				st.ShardsProbed++
			}
		}
		sortRefs(refs)
		acc.nextGen()
		gather(acc, refs, k, floor, &st)
		all = append(all, seg.ss.collect(acc, k)...)
		if k > 0 && len(all) >= k {
			if f := kthHitScore(all, k, &acc.scratch); f > floor {
				floor = f
			}
		}
	}
	sc.all = all
	if len(all) == 0 {
		return nil, st
	}
	return selectTopHits(all, k), st
}

// kthHitScore returns the kth largest score among hits (k <= len(hits))
// using the accumulator's reusable selection scratch.
func kthHitScore(hits []Hit, k int, scratch *[]float64) float64 {
	s := (*scratch)[:0]
	for _, h := range hits {
		s = append(s, h.Score)
	}
	*scratch = s
	if k >= len(s) {
		return slices.Min(s)
	}
	return topKSelect(s, k, func(x, y float64) bool { return x < y })[0]
}

// DocsWithToken returns the sorted global doc set containing tok in any
// of the given fields — segment sets remapped by doc base, concatenated
// in canonical order (bases ascend, so the result stays sorted). The
// slice is freshly allocated and safe to retain across Close.
func (ms *MultiSearcher) DocsWithToken(tok string, fields ...Field) []int32 {
	var out []int32
	for _, seg := range ms.segs {
		sh := seg.ss.shards[shardOfToken(tok, seg.ss.shardCount)]
		tid, ok := sh.lookup(tok)
		if !ok {
			continue
		}
		for _, d := range sh.termDocs(tid, fields) {
			out = append(out, d+seg.base)
		}
	}
	return out
}

// DocSet returns the sorted global set of documents containing all
// tokens, each in at least one of the given fields. A document's tokens
// all live in its own segment, so the intersection runs per segment and
// the remapped results concatenate. The slice is freshly allocated and
// safe to retain across Close.
func (ms *MultiSearcher) DocSet(tokens []string, fields ...Field) []int32 {
	var out []int32
	for _, seg := range ms.segs {
		for _, d := range seg.ss.DocSet(tokens, fields...) {
			out = append(out, d+seg.base)
		}
	}
	return out
}
