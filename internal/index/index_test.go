package index

import (
	"path/filepath"
	"reflect"
	"testing"

	"wwt/internal/text"
	"wwt/internal/wtable"
)

func mkTable(id string, headers []string, rows [][]string, context string) *wtable.Table {
	t := &wtable.Table{ID: id, URL: "http://" + id}
	if headers != nil {
		var hr wtable.Row
		for _, h := range headers {
			hr.Cells = append(hr.Cells, wtable.Cell{Text: h, IsTH: true})
		}
		t.HeaderRows = []wtable.Row{hr}
	}
	for _, r := range rows {
		var br wtable.Row
		for _, c := range r {
			br.Cells = append(br.Cells, wtable.Cell{Text: c})
		}
		t.BodyRows = append(t.BodyRows, br)
	}
	if context != "" {
		t.Context = []wtable.Snippet{{Text: context, Score: 1}}
	}
	return t
}

func corpus(t *testing.T) *Index {
	t.Helper()
	tables := []*wtable.Table{
		mkTable("t1", []string{"Country", "Currency"},
			[][]string{{"France", "Euro"}, {"Japan", "Yen"}}, "currencies of the world"),
		mkTable("t2", []string{"Country", "Population"},
			[][]string{{"France", "67 million"}, {"India", "1.4 billion"}}, "world population data"),
		mkTable("t3", []string{"Name", "Height"},
			[][]string{{"Denali", "6190"}, {"Logan", "5959"}}, "north american mountains"),
		mkTable("t4", nil,
			[][]string{{"France", "Euro"}, {"India", "Rupee"}}, ""),
	}
	ix, err := Build(tables)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return ix
}

func TestSearchRanking(t *testing.T) {
	ix := corpus(t)
	hits := ix.Search(text.Normalize("country currency"), 0)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if hits[0].ID != "t1" {
		t.Errorf("top hit = %s, want t1 (hits=%v)", hits[0].ID, hits)
	}
	// t2 matches "country" in its header, must beat t4 which has no header.
	pos := map[string]int{}
	for i, h := range hits {
		pos[h.ID] = i
	}
	if p2, ok := pos["t2"]; !ok {
		t.Error("t2 not retrieved")
	} else if p4, ok := pos["t4"]; ok && p4 < p2 {
		t.Errorf("headerless t4 outranked header match t2: %v", hits)
	}
}

func TestSearchTopK(t *testing.T) {
	ix := corpus(t)
	hits := ix.Search(text.Normalize("france"), 1)
	if len(hits) != 1 {
		t.Errorf("k=1 returned %d hits", len(hits))
	}
	if got := ix.Search(nil, 5); got != nil {
		t.Errorf("empty query should return nil, got %v", got)
	}
}

func TestSearchDeterministicTieBreak(t *testing.T) {
	ix := corpus(t)
	a := ix.Search(text.Normalize("france euro"), 0)
	b := ix.Search(text.Normalize("france euro"), 0)
	if !reflect.DeepEqual(a, b) {
		t.Error("search not deterministic")
	}
}

func TestHeaderBoostDominates(t *testing.T) {
	// Same token in header (t1 "currency") vs only in context (tc).
	tables := []*wtable.Table{
		mkTable("hdr", []string{"Currency"}, [][]string{{"Euro"}, {"Yen"}}, ""),
		mkTable("ctx", []string{"Thing"}, [][]string{{"Euro"}, {"Yen"}}, "currency currency"),
	}
	ix, err := Build(tables)
	if err != nil {
		t.Fatal(err)
	}
	hits := ix.Search(text.Normalize("currency"), 0)
	if len(hits) != 2 || hits[0].ID != "hdr" {
		t.Errorf("header match should outrank context match: %v", hits)
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	ix := New()
	a := mkTable("dup", nil, [][]string{{"x"}}, "")
	if err := ix.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(a); err == nil {
		t.Error("duplicate ID accepted")
	}
}

func TestIDFOrdering(t *testing.T) {
	ix := corpus(t)
	franc := text.Normalize("france")[0]
	denali := text.Normalize("denali")[0]
	if ix.IDF(franc) >= ix.IDF(denali) {
		t.Errorf("IDF(france)=%f should be < IDF(denali)=%f", ix.IDF(franc), ix.IDF(denali))
	}
}

func TestDocSetIntersection(t *testing.T) {
	ix := corpus(t)
	toks := text.Normalize("country")
	set := ix.DocSet(toks, FieldHeader, FieldContext)
	if len(set) != 2 {
		t.Fatalf("H(country) = %d docs, want 2", len(set))
	}
	// france appears in content of t1, t2, t4.
	franceSet := ix.DocSet(text.Normalize("france"), FieldContent)
	if len(franceSet) != 3 {
		t.Fatalf("B(france) = %d docs, want 3", len(franceSet))
	}
	if n := IntersectSize(set, franceSet); n != 2 {
		t.Errorf("|H ∩ B| = %d, want 2", n)
	}
	// Multi-token DocSet requires all tokens.
	both := ix.DocSet(text.Normalize("france japan"), FieldContent)
	if len(both) != 1 {
		t.Errorf("DocSet(france AND japan) = %d docs, want 1", len(both))
	}
}

func TestDocSetEmptyToken(t *testing.T) {
	ix := corpus(t)
	if set := ix.DocSet(nil, FieldContent); set != nil {
		t.Errorf("empty DocSet = %v", set)
	}
	if set := ix.DocSet([]string{"zzzznotfound"}, FieldContent); len(set) != 0 {
		t.Errorf("unknown token DocSet = %v", set)
	}
}

func TestIntersectSize(t *testing.T) {
	cases := []struct {
		a, b []int32
		want int
	}{
		{[]int32{1, 2, 3}, []int32{2, 3, 4}, 2},
		{[]int32{}, []int32{1}, 0},
		{[]int32{1, 5, 9}, []int32{2, 6, 10}, 0},
		{[]int32{1, 2, 3}, []int32{1, 2, 3}, 3},
	}
	for _, c := range cases {
		if got := IntersectSize(c.a, c.b); got != c.want {
			t.Errorf("IntersectSize(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ix := corpus(t)
	p := filepath.Join(dir, "idx.gob")
	if err := ix.Save(p); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(p)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Len() != ix.Len() {
		t.Fatalf("Len mismatch: %d vs %d", loaded.Len(), ix.Len())
	}
	q := text.Normalize("country currency")
	if !reflect.DeepEqual(ix.Search(q, 5), loaded.Search(q, 5)) {
		t.Error("search results differ after reload")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Error("loading missing file should fail")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s := NewStore()
	tb := mkTable("s1", []string{"A"}, [][]string{{"x"}}, "ctx")
	if err := s.Add(tb); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(tb); err == nil {
		t.Error("duplicate store add accepted")
	}
	if got, ok := s.Get("s1"); !ok || got.ID != "s1" {
		t.Error("Get failed")
	}
	if _, ok := s.Get("missing"); ok {
		t.Error("phantom table")
	}
	p := filepath.Join(t.TempDir(), "store.gob")
	if err := s.Save(p); err != nil {
		t.Fatal(err)
	}
	s2, err := LoadStore(p)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("loaded store len = %d", s2.Len())
	}
	got, _ := s2.Get("s1")
	if got.Header(0, 0) != "A" || got.Body(0, 0) != "x" {
		t.Error("table content lost in round trip")
	}
}

func TestStoreOrderPreserved(t *testing.T) {
	s := NewStore()
	for _, id := range []string{"c", "a", "b"} {
		if err := s.Add(mkTable(id, nil, [][]string{{"x"}}, "")); err != nil {
			t.Fatal(err)
		}
	}
	var ids []string
	for _, tb := range s.All() {
		ids = append(ids, tb.ID)
	}
	if !reflect.DeepEqual(ids, []string{"c", "a", "b"}) {
		t.Errorf("order = %v", ids)
	}
}
