package index

import (
	"reflect"
	"testing"
)

// TestDocSetCacheAdoptFrom pins the generation-migration contract: a new
// generation's cache adopts the old generation's entries and evicts
// exactly the keys the stale predicate marks — warm live entries keep
// serving hits across the swap instead of starting cold.
func TestDocSetCacheAdoptFrom(t *testing.T) {
	ix, _ := buildRandCorpus(t, 21, 30)
	s := NewSearcher(ix)

	old := NewDocSetCache(s, 64)
	warm := [][]string{{"alpha", "beta"}, {"gamma"}, {"delta", "beta"}}
	for _, toks := range warm {
		old.DocSet(toks)
	}
	if old.Len() != len(warm) {
		t.Fatalf("old cache len %d, want %d", old.Len(), len(warm))
	}

	next := NewDocSetCache(s, 64)
	adopted, evicted := next.AdoptFrom(old, func(tokens []string) bool {
		for _, tok := range tokens {
			if tok == "beta" {
				return true
			}
		}
		return false
	})
	if adopted != 3 || evicted != 2 {
		t.Fatalf("AdoptFrom = (%d adopted, %d evicted), want (3, 2)", adopted, evicted)
	}
	if next.Len() != 1 {
		t.Fatalf("post-adopt len %d, want 1", next.Len())
	}
	// The surviving entry is warm: the next lookup is a hit with the old
	// generation's value.
	want := old.DocSet([]string{"gamma"})
	got := next.DocSet([]string{"gamma"})
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("surviving entry = %v, want %v", got, want)
	}
	if hits, _ := next.Stats(); hits != 1 {
		t.Fatalf("surviving entry missed (hits=%d)", hits)
	}
	// A staled key recomputes (miss), it was not served stale.
	next.DocSet([]string{"alpha", "beta"})
	if _, misses := next.Stats(); misses != 1 {
		t.Fatalf("staled entry did not recompute (misses=%d)", misses)
	}
}

// TestShardedDocSetCacheAdoptFrom: entries migrate across different shard
// layouts (re-routed by the new cache's shard count) with the same
// staleness eviction.
func TestShardedDocSetCacheAdoptFrom(t *testing.T) {
	ix, _ := buildRandCorpus(t, 22, 30)
	s := NewSearcher(ix)

	old := NewShardedDocSetCache(s, 2, 256)
	keys := [][]string{{"alpha"}, {"beta"}, {"gamma", "delta"}, {"epsilon", "zeta"}}
	for _, toks := range keys {
		old.DocSet(toks)
	}
	next := NewShardedDocSetCache(s, 5, 256)
	adopted, evicted := next.AdoptFrom(old, func(tokens []string) bool {
		return tokens[0] == "beta"
	})
	if adopted != len(keys) || evicted != 1 {
		t.Fatalf("AdoptFrom = (%d, %d), want (%d, 1)", adopted, evicted, len(keys))
	}
	if next.Len() != len(keys)-1 {
		t.Fatalf("post-adopt len %d, want %d", next.Len(), len(keys)-1)
	}
	for _, toks := range [][]string{{"alpha"}, {"gamma", "delta"}, {"epsilon", "zeta"}} {
		next.DocSet(toks)
	}
	if hits, misses := next.Stats(); hits != 3 || misses != 0 {
		t.Fatalf("surviving entries: %d hits / %d misses, want 3/0", hits, misses)
	}
}
