package index

import (
	"fmt"
	"math/rand"
	"testing"

	"wwt/internal/wtable"
)

// benchSkewedTables builds the 1500-table skewed fixture corpus behind
// the block-max/pruning benchmarks: every table carries a handful of
// zipf-picked common words (long posting lists, low idf), and each table
// also carries one of 125 rare words (12 tables per word, repeated — high
// idf, high tf). A rare+common query's top-10 is decided by the rare
// term, which is exactly the shape where block-max skipping and shard
// pruning pay: the common lists are long, cold and mostly hopeless.
func benchSkewedTables() []*wtable.Table {
	r := rand.New(rand.NewSource(2012))
	common := make([]string, 30)
	for i := range common {
		common[i] = fmt.Sprintf("common%02d", i)
	}
	pickCommon := func() string {
		i := int(r.ExpFloat64() * 5)
		if i >= len(common) {
			i = len(common) - 1
		}
		return common[i]
	}
	row := func(cells ...string) wtable.Row {
		w := wtable.Row{}
		for _, c := range cells {
			w.Cells = append(w.Cells, wtable.Cell{Text: c})
		}
		return w
	}
	tables := make([]*wtable.Table, benchCorpusSize)
	for i := range tables {
		tb := &wtable.Table{ID: fmt.Sprintf("t%04d", i)}
		// Rare words cluster over contiguous doc IDs (12 tables per word),
		// the way a crawl's site locality clusters related tables — so a
		// rare query term's candidates concentrate in a few blocks of each
		// common list instead of leaving one live doc per block.
		rare := fmt.Sprintf("rare%03d", i/12)
		tb.HeaderRows = []wtable.Row{row(rare)}
		for j := 0; j < 3; j++ {
			tb.BodyRows = append(tb.BodyRows, row(pickCommon(), pickCommon(), pickCommon(), pickCommon()))
		}
		tb.BodyRows = append(tb.BodyRows, row(rare, rare, rare, rare))
		tables[i] = tb
	}
	return tables
}

// benchSkewedQueries is the skewed multi-term query mix: one rare term
// plus three common ones.
func benchSkewedQueries(n int) [][]string {
	r := rand.New(rand.NewSource(7))
	qs := make([][]string, n)
	for i := range qs {
		qs[i] = []string{
			fmt.Sprintf("rare%03d", r.Intn(125)),
			fmt.Sprintf("common%02d", r.Intn(10)),
			fmt.Sprintf("common%02d", r.Intn(30)),
			fmt.Sprintf("common%02d", r.Intn(30)),
		}
	}
	return qs
}

func benchSkewedSearcher(b *testing.B) *Searcher {
	b.Helper()
	ix, err := Build(benchSkewedTables())
	if err != nil {
		b.Fatal(err)
	}
	return NewSearcher(ix)
}

// stripBlocks drops a searcher's block summaries, turning it into the
// exact v1 probe path (term-level max-score skip only) for baselines.
func stripBlocks(s *Searcher) {
	s.sh.blockSize = 0
	for f := 0; f < int(numFields); f++ {
		s.sh.blkOff[f] = nil
		s.sh.blkMax[f] = nil
		s.sh.blkDoc[f] = nil
		s.sh.fieldMaxW[f] = nil
	}
}

// reportProbeMetrics turns cumulative probe stats into per-op and rate
// metrics on the benchmark (picked up by wwt-benchjson).
func reportProbeMetrics(b *testing.B, st ProbeStats, ops int) {
	if ops == 0 {
		return
	}
	if st.BlocksTotal > 0 {
		b.ReportMetric(float64(st.BlocksSkipped)/float64(st.BlocksTotal)*100, "blockskip%")
	}
	if st.Postings > 0 {
		b.ReportMetric(float64(st.Scanned)/float64(st.Postings)*100, "scan%")
	}
	b.ReportMetric(float64(st.ShardsPruned)/float64(ops), "pruned/op")
}

// BenchmarkSearchBlockMax: skewed top-10 probes on the single-shard
// searcher, block-max v2 against the stripped v1 baseline.
func BenchmarkSearchBlockMax(b *testing.B) {
	queries := benchSkewedQueries(64)
	for _, mode := range []string{"v2", "v1"} {
		b.Run(mode, func(b *testing.B) {
			s := benchSkewedSearcher(b)
			if mode == "v1" {
				stripBlocks(s)
			}
			var total ProbeStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st := s.SearchStats(queries[i%len(queries)], 10)
				total.BlocksTotal += st.BlocksTotal
				total.BlocksSkipped += st.BlocksSkipped
				total.Postings += st.Postings
				total.Scanned += st.Scanned
			}
			b.StopTimer()
			reportProbeMetrics(b, total, b.N)
		})
	}
}

// BenchmarkShardedPruned: the acceptance benchmark — skewed multi-term
// top-10 probes over the 1500-table fixture at 8 shards, the mmap-opened
// v2 index (block-max + shard pruning) against the same index written as
// v1 (term-level skip only).
func BenchmarkShardedPruned(b *testing.B) {
	s := benchSkewedSearcher(b)
	queries := benchSkewedQueries(64)
	for _, mode := range []int{2, 1} {
		b.Run(fmt.Sprintf("v%d", mode), func(b *testing.B) {
			dir := b.TempDir()
			if err := WriteShardedWith(dir, s, 8, WriteShardedOptions{FormatVersion: mode}); err != nil {
				b.Fatal(err)
			}
			ss, err := OpenSharded(dir)
			if err != nil {
				b.Fatal(err)
			}
			defer ss.Close()
			ss.Search(queries[0], 10) // fault in before timing
			var total ProbeStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st := ss.SearchStats(queries[i%len(queries)], 10)
				total.BlocksTotal += st.BlocksTotal
				total.BlocksSkipped += st.BlocksSkipped
				total.Postings += st.Postings
				total.Scanned += st.Scanned
				total.ShardsPruned += st.ShardsPruned
			}
			b.StopTimer()
			reportProbeMetrics(b, total, b.N)
		})
	}
}
