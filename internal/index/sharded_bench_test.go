package index

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"wwt/internal/wtable"
)

// benchCorpusSize keeps open-time benchmarks meaningful (gob decode cost
// scales with the corpus; mmap open does not) without slowing the suite.
const benchCorpusSize = 1500

func benchSearcher(b *testing.B) *Searcher {
	b.Helper()
	r := rand.New(rand.NewSource(2012))
	tables := make([]*wtable.Table, benchCorpusSize)
	for i := range tables {
		tables[i] = randDocTable(r, i)
	}
	ix, err := Build(tables)
	if err != nil {
		b.Fatal(err)
	}
	return NewSearcher(ix)
}

func benchGobPath(b *testing.B, s *Searcher) string {
	b.Helper()
	r := rand.New(rand.NewSource(2012))
	tables := make([]*wtable.Table, benchCorpusSize)
	for i := range tables {
		tables[i] = randDocTable(r, i)
	}
	ix, err := Build(tables)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "index.gob")
	if err := ix.Save(path); err != nil {
		b.Fatal(err)
	}
	return path
}

// BenchmarkOpenIndexGob measures the legacy decode-on-load path: gob
// decode plus freezing the searcher, both O(corpus).
func BenchmarkOpenIndexGob(b *testing.B) {
	s := benchSearcher(b)
	path := benchGobPath(b, s)
	if st, err := os.Stat(path); err == nil {
		b.SetBytes(st.Size())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := Load(path)
		if err != nil {
			b.Fatal(err)
		}
		_ = NewSearcher(ix)
	}
}

// BenchmarkOpenIndexMmap measures the flat path: page-map the files and
// validate headers, O(1) in corpus size.
func BenchmarkOpenIndexMmap(b *testing.B) {
	s := benchSearcher(b)
	dir := b.TempDir()
	if err := WriteSharded(dir, s, 2); err != nil {
		b.Fatal(err)
	}
	if st, err := os.Stat(filepath.Join(dir, DocsFileName)); err == nil {
		b.SetBytes(st.Size())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss, err := OpenSharded(dir)
		if err != nil {
			b.Fatal(err)
		}
		ss.Close()
	}
}

// BenchmarkShardedSearch probes an mmap-opened index at each shard count
// of the CHANGES.md trajectory (1, 2, 4, 8).
func BenchmarkShardedSearch(b *testing.B) {
	s := benchSearcher(b)
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			if err := WriteSharded(dir, s, n); err != nil {
				b.Fatal(err)
			}
			ss, err := OpenSharded(dir)
			if err != nil {
				b.Fatal(err)
			}
			defer ss.Close()
			r := rand.New(rand.NewSource(7))
			queries := make([][]string, 64)
			for i := range queries {
				queries[i] = randQuery(r)
			}
			ss.Search(queries[0], 10) // fault in before timing
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ss.Search(queries[i%len(queries)], 10)
			}
		})
	}
}

// BenchmarkSingleShardSearch is the in-memory Searcher baseline over the
// same corpus and query mix as BenchmarkShardedSearch.
func BenchmarkSingleShardSearch(b *testing.B) {
	s := benchSearcher(b)
	r := rand.New(rand.NewSource(7))
	queries := make([][]string, 64)
	for i := range queries {
		queries[i] = randQuery(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Search(queries[i%len(queries)], 10)
	}
}

// BenchmarkDocSetCacheWarmHit pins the warm-hit path at one alloc/op (the
// canonical key string); the assertion lives in
// TestDocSetCacheWarmHitAllocs, this reports the trajectory numbers.
func BenchmarkDocSetCacheWarmHit(b *testing.B) {
	s := benchSearcher(b)
	c := NewDocSetCache(s, 0)
	toks := []string{propWords[3], propWords[1], propWords[1], propWords[0]}
	c.DocSet(toks, FieldHeader, FieldContext)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DocSet(toks, FieldHeader, FieldContext)
	}
}
