package index

import (
	"encoding/gob"
	"fmt"
	"os"

	"wwt/internal/wtable"
)

// Store is the table store of Figure 2: it keeps the raw extracted tables
// addressable by ID so that the online pipeline can read the candidates a
// probe returns. Insertion order is preserved for deterministic iteration.
type Store struct {
	byID  map[string]*wtable.Table
	order []string
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{byID: make(map[string]*wtable.Table)} }

// Add inserts a table; duplicate IDs are an error.
func (s *Store) Add(t *wtable.Table) error {
	if t == nil || t.ID == "" {
		return fmt.Errorf("store: table without ID")
	}
	if _, dup := s.byID[t.ID]; dup {
		return fmt.Errorf("store: duplicate table ID %q", t.ID)
	}
	s.byID[t.ID] = t
	s.order = append(s.order, t.ID)
	return nil
}

// Get returns the table with the given ID.
func (s *Store) Get(id string) (*wtable.Table, bool) {
	t, ok := s.byID[id]
	return t, ok
}

// Len returns the number of stored tables.
func (s *Store) Len() int { return len(s.order) }

// All returns all tables in insertion order. The slice is fresh; the tables
// are shared.
func (s *Store) All() []*wtable.Table {
	out := make([]*wtable.Table, len(s.order))
	for i, id := range s.order {
		out[i] = s.byID[id]
	}
	return out
}

// storeSnapshot is the gob wire form of a Store.
type storeSnapshot struct {
	Tables []*wtable.Table
}

// Save writes the store to path.
func (s *Store) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("store save: %w", err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(storeSnapshot{Tables: s.All()}); err != nil {
		return fmt.Errorf("store save: %w", err)
	}
	return f.Close()
}

// LoadStore reads a store previously written by Save.
func LoadStore(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store load: %w", err)
	}
	defer f.Close()
	var snap storeSnapshot
	if err := gob.NewDecoder(f).Decode(&snap); err != nil {
		return nil, fmt.Errorf("store load: %w", err)
	}
	s := NewStore()
	for _, t := range snap.Tables {
		if err := s.Add(t); err != nil {
			return nil, fmt.Errorf("store load: %w", err)
		}
	}
	return s, nil
}

// indexSnapshot is the gob wire form of an Index.
type indexSnapshot struct {
	IDs      []string
	Postings [numFields]map[string][]Posting
	FieldLen [numFields][]float32
	DF       map[string]int
}

// Save writes the index to path.
func (ix *Index) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("index save: %w", err)
	}
	defer f.Close()
	snap := indexSnapshot{IDs: ix.ids, Postings: ix.postings, FieldLen: ix.fieldLen, DF: ix.df}
	if err := gob.NewEncoder(f).Encode(snap); err != nil {
		return fmt.Errorf("index save: %w", err)
	}
	return f.Close()
}

// Load reads an index previously written by Save.
func Load(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index load: %w", err)
	}
	defer f.Close()
	var snap indexSnapshot
	if err := gob.NewDecoder(f).Decode(&snap); err != nil {
		return nil, fmt.Errorf("index load: %w", err)
	}
	ix := &Index{
		ids:      snap.IDs,
		byID:     make(map[string]int32, len(snap.IDs)),
		postings: snap.Postings,
		fieldLen: snap.FieldLen,
		df:       snap.DF,
	}
	for i, id := range snap.IDs {
		ix.byID[id] = int32(i)
	}
	for fi := range ix.postings {
		if ix.postings[fi] == nil {
			ix.postings[fi] = make(map[string][]Posting)
		}
	}
	if ix.df == nil {
		ix.df = make(map[string]int)
	}
	return ix, nil
}
