package index

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"wwt/internal/wtable"
)

// writeGobHeader prefixes a gob snapshot with its 8-byte magic and uint32
// format version, so a later open of a stale or foreign file fails fast
// with a clear error instead of a decoder error deep in the stack.
func writeGobHeader(w io.Writer, magic string) error {
	var hdr [12]byte
	copy(hdr[:8], magic)
	binary.LittleEndian.PutUint32(hdr[8:], gobFormatVersion)
	_, err := w.Write(hdr[:])
	return err
}

// checkGobHeader validates the magic+version header of a gob snapshot,
// diagnosing the common mix-ups precisely: the sibling gob kind, a flat
// index file, a pre-versioning legacy file, or foreign data.
func checkGobHeader(r io.Reader, magic, what, path string) error {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("%s load %s: file too short for a format header (not a wwt %s file, or written before format versioning — rebuild with wwt-index)", what, path, what)
	}
	if got := string(hdr[:8]); got != magic {
		switch got {
		case flatMagic, flatMagicV2:
			return fmt.Errorf("%s load %s: this is a flat sharded index file; open its directory with index.OpenSharded instead", what, path)
		case gobIndexMagic:
			return fmt.Errorf("%s load %s: this is a wwt index snapshot, not a %s; open it with index.Load", what, path, what)
		case gobStoreMagic:
			return fmt.Errorf("%s load %s: this is a wwt table store, not a %s; open it with index.LoadStore", what, path, what)
		}
		return fmt.Errorf("%s load %s: bad magic %q — not a wwt %s file, or written before format versioning; rebuild with wwt-index", what, path, got, what)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != gobFormatVersion {
		return fmt.Errorf("%s load %s: format version %d, this build supports %d; rebuild with wwt-index", what, path, v, gobFormatVersion)
	}
	return nil
}

// Store is the table store of Figure 2: it keeps the raw extracted tables
// addressable by ID so that the online pipeline can read the candidates a
// probe returns. Insertion order is preserved for deterministic iteration.
type Store struct {
	byID  map[string]*wtable.Table
	order []string
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{byID: make(map[string]*wtable.Table)} }

// Add inserts a table; duplicate IDs are an error.
func (s *Store) Add(t *wtable.Table) error {
	if t == nil || t.ID == "" {
		return fmt.Errorf("store: table without ID")
	}
	if _, dup := s.byID[t.ID]; dup {
		return fmt.Errorf("store: duplicate table ID %q", t.ID)
	}
	s.byID[t.ID] = t
	s.order = append(s.order, t.ID)
	return nil
}

// Get returns the table with the given ID.
func (s *Store) Get(id string) (*wtable.Table, bool) {
	t, ok := s.byID[id]
	return t, ok
}

// Len returns the number of stored tables.
func (s *Store) Len() int { return len(s.order) }

// All returns all tables in insertion order. The slice is fresh; the tables
// are shared.
func (s *Store) All() []*wtable.Table {
	out := make([]*wtable.Table, len(s.order))
	for i, id := range s.order {
		out[i] = s.byID[id]
	}
	return out
}

// storeSnapshot is the gob wire form of a Store.
type storeSnapshot struct {
	Tables []*wtable.Table
}

// Save writes the store to path, prefixed with its magic and format
// version.
func (s *Store) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("store save: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	if err := writeGobHeader(w, gobStoreMagic); err != nil {
		return fmt.Errorf("store save: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(storeSnapshot{Tables: s.All()}); err != nil {
		return fmt.Errorf("store save: %w", err)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("store save: %w", err)
	}
	return f.Close()
}

// LoadStore reads a store previously written by Save, validating the
// format header first.
func LoadStore(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store load: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	if err := checkGobHeader(r, gobStoreMagic, "store", path); err != nil {
		return nil, err
	}
	var snap storeSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("store load: %w", err)
	}
	s := NewStore()
	for _, t := range snap.Tables {
		if err := s.Add(t); err != nil {
			return nil, fmt.Errorf("store load: %w", err)
		}
	}
	return s, nil
}

// indexSnapshot is the gob wire form of an Index.
type indexSnapshot struct {
	IDs      []string
	Postings [numFields]map[string][]Posting
	FieldLen [numFields][]float32
	DF       map[string]int
}

// Save writes the index to path, prefixed with its magic and format
// version.
func (ix *Index) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("index save: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	if err := writeGobHeader(w, gobIndexMagic); err != nil {
		return fmt.Errorf("index save: %w", err)
	}
	snap := indexSnapshot{IDs: ix.ids, Postings: ix.postings, FieldLen: ix.fieldLen, DF: ix.df}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("index save: %w", err)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("index save: %w", err)
	}
	return f.Close()
}

// Load reads an index previously written by Save, validating the format
// header first.
func Load(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index load: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	if err := checkGobHeader(r, gobIndexMagic, "index", path); err != nil {
		return nil, err
	}
	var snap indexSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("index load: %w", err)
	}
	ix := &Index{
		ids:      snap.IDs,
		byID:     make(map[string]int32, len(snap.IDs)),
		postings: snap.Postings,
		fieldLen: snap.FieldLen,
		df:       snap.DF,
	}
	for i, id := range snap.IDs {
		ix.byID[id] = int32(i)
	}
	for fi := range ix.postings {
		if ix.postings[fi] == nil {
			ix.postings[fi] = make(map[string][]Posting)
		}
	}
	if ix.df == nil {
		ix.df = make(map[string]int)
	}
	return ix, nil
}
