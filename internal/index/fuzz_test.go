package index

import (
	"math/rand"
	"testing"

	"wwt/internal/wtable"
)

// FuzzSearchPruningEquivalence drives the layered score-bound pruning —
// the term-level max-score skip, the block-max closures and the sharded
// floor-seeding scatter prune — through fuzzer-chosen corpora, queries,
// k values and shard counts, and requires bit-identical hits (IDs,
// scores within 1e-9, order) from the map-based reference scorer, the
// frozen CSR searcher and a sharded split of the same index. The
// pruning boundaries (k equal to the touched-document count, absent
// terms, duplicate terms, single-doc shards) are exactly where past
// regressions lived (TestSearcherSkipWithExactlyKTouched); the fuzzer
// searches that boundary space mechanically.
func FuzzSearchPruningEquivalence(f *testing.F) {
	f.Add(int64(1), int64(2), uint8(8), uint8(3), uint8(2))
	f.Add(int64(42), int64(7), uint8(40), uint8(0), uint8(3))
	f.Add(int64(2012), int64(99991), uint8(3), uint8(17), uint8(1))
	f.Fuzz(func(t *testing.T, seed, qseed int64, n, k, shards uint8) {
		docs := 2 + int(n)%60
		r := rand.New(rand.NewSource(seed))
		tables := make([]*wtable.Table, docs)
		for i := range tables {
			tables[i] = randDocTable(r, i)
		}
		ix, err := Build(tables)
		if err != nil {
			t.Fatal(err)
		}
		s := NewSearcher(ix)
		ss := NewShardedFromSearcher(s, 1+int(shards)%4)

		qr := rand.New(rand.NewSource(qseed))
		query := randQuery(qr)
		topK := int(k) % (docs + 2) // covers 0 (unbounded), 1, and > docs

		want := ix.Search(query, topK)
		sameHits(t, want, s.Search(query, topK), "frozen searcher")
		sameHits(t, want, ss.Search(query, topK), "sharded searcher")
	})
}
