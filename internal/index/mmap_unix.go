//go:build unix

package index

import (
	"os"
	"syscall"
)

// mapFile memory-maps path read-only: opening a flat index is O(1) page
// mapping, and postings pages fault in lazily as probes touch them.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	if st.Size() == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Some filesystems refuse mmap; fall back to the portable reader.
		return readFileAligned(path)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
