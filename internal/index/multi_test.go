package index

import (
	"errors"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"wwt/internal/wtable"
)

// splitTables partitions tables into nSeg contiguous non-empty chunks with
// deterministically uneven sizes — segment boundaries land mid-posting-list
// so the cross-segment stat union is actually exercised.
func splitTables(tables []*wtable.Table, nSeg int, seed int64) [][]*wtable.Table {
	if nSeg > len(tables) {
		nSeg = len(tables)
	}
	r := rand.New(rand.NewSource(seed))
	cuts := map[int]bool{0: true}
	for len(cuts) < nSeg {
		cuts[r.Intn(len(tables))] = true
	}
	var chunks [][]*wtable.Table
	start := -1
	for i := 0; i <= len(tables); i++ {
		if i == len(tables) || cuts[i] {
			if start >= 0 {
				chunks = append(chunks, tables[start:i])
			}
			start = i
		}
	}
	return chunks
}

// multiVariants freezes the chunks as one segment each (format version fv)
// and opens them as a MultiSearcher both memory-mapped and read-into-
// memory, plus a pure in-memory construction over per-chunk searchers.
func multiVariants(t *testing.T, chunks [][]*wtable.Table, fv int) map[string]*MultiSearcher {
	t.Helper()
	dirs := make([]string, len(chunks))
	searchers := make([]*ShardedSearcher, len(chunks))
	for i, chunk := range chunks {
		w := NewSegmentWriter()
		for _, tb := range chunk {
			if err := w.Add(tb); err != nil {
				t.Fatal(err)
			}
		}
		dirs[i] = t.TempDir()
		if err := w.Flush(dirs[i], WriteShardedOptions{FormatVersion: fv}); err != nil {
			t.Fatal(err)
		}
		ix, err := Build(chunk)
		if err != nil {
			t.Fatal(err)
		}
		searchers[i] = NewShardedFromSearcher(NewSearcher(ix), 1)
	}
	mm, err := OpenMulti(dirs)
	if err != nil {
		t.Fatal(err)
	}
	if !mm.Mmapped() {
		t.Fatal("OpenMulti did not map the segment files")
	}
	rd, err := openMulti(dirs, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mm.Close(); rd.Close() })
	return map[string]*MultiSearcher{
		"memory": NewMultiFromSearchers(searchers),
		"mmap":   mm,
		"nommap": rd,
	}
}

// TestMultiSearcherEquivalence: top-k over K segments must be bit-identical
// (IDs, float64 score bits, order) to a single index rebuilt over the whole
// corpus, for every segment count, format version and open path. The
// per-term stats a multi probe carries (corpus-global df/idf/bound) are
// what makes a partitioned corpus score exactly like an unpartitioned one.
func TestMultiSearcherEquivalence(t *testing.T) {
	for _, seed := range []int64{5, 77} {
		ix, tables := buildRandCorpus(t, seed, 24+rand.New(rand.NewSource(seed)).Intn(40))
		s := NewSearcher(ix)
		for _, nSeg := range []int{1, 2, 3, 8} {
			chunks := splitTables(tables, nSeg, seed+int64(nSeg))
			for _, fv := range []int{2, 1} {
				for name, ms := range multiVariants(t, chunks, fv) {
					if ms.Len() != ix.Len() {
						t.Fatalf("%s: Len() = %d, want %d", name, ms.Len(), ix.Len())
					}
					if ms.Segments() != len(chunks) {
						t.Fatalf("%s: Segments() = %d, want %d", name, ms.Segments(), len(chunks))
					}
					r := rand.New(rand.NewSource(seed * int64(nSeg*fv)))
					for qi := 0; qi < 20; qi++ {
						q := randQuery(r)
						for _, k := range []int{0, 1, 3, 17, 1000} {
							want := s.Search(q, k)
							got := ms.Search(q, k)
							sameHitsBitIdentical(t, want, got,
								"multi "+name)
						}
					}
				}
			}
		}
	}
}

// TestMultiSearcherSkipWithExactlyKTouched replays the exactly-k-skip
// regression corpus across segment splits: the first term touches exactly
// k docs, and the doc arriving after the skip threshold — in a different
// segment — must still enter the top k (the cross-segment score floor is
// a bound, never a filter).
func TestMultiSearcherSkipWithExactlyKTouched(t *testing.T) {
	row := func(cells ...string) wtable.Row {
		r := wtable.Row{}
		for _, c := range cells {
			r.Cells = append(r.Cells, wtable.Cell{Text: c})
		}
		return r
	}
	tables := []*wtable.Table{
		{ID: "t0", HeaderRows: []wtable.Row{row("aaa")}, BodyRows: []wtable.Row{row("xxx")}},
		{ID: "t1", BodyRows: []wtable.Row{row("aaa")}},
		{ID: "t2", BodyRows: []wtable.Row{row("bbb")}},
	}
	ix, err := Build(tables)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(ix)
	q := []string{"aaa", "bbb"}
	want := s.Search(q, 2)
	for _, nSeg := range []int{1, 2, 3} {
		for _, split := range [][][]*wtable.Table{
			splitTables(tables, nSeg, 1),
			splitTables(tables, nSeg, 9),
		} {
			for name, ms := range multiVariants(t, split, 2) {
				got := ms.Search(q, 2)
				sameHitsBitIdentical(t, want, got, name)
				ids := map[string]bool{}
				for _, h := range got {
					ids[h.ID] = true
				}
				if !ids["t0"] || !ids["t2"] {
					t.Fatalf("%s segs=%d: top-2 = %v, want t0 and t2", name, nSeg, got)
				}
			}
		}
	}
}

// TestMultiSearcherPruningBoundary drives the skewed shard-pruning corpus
// through segment splits: the winning docs need contributions from
// low-bound filler terms, so a segment whose gather over-pruned would
// corrupt scores. Bit-identity against the unpartitioned oracle is the
// whole assertion.
func TestMultiSearcherPruningBoundary(t *testing.T) {
	heavy, fills, tables := buildSkewedCorpus(t, 240, 4)
	ix, err := Build(tables)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(ix)
	q := append([]string{heavy}, fills...)
	for _, nSeg := range []int{2, 3, 8} {
		chunks := splitTables(tables, nSeg, int64(nSeg))
		for _, fv := range []int{2, 1} {
			for name, ms := range multiVariants(t, chunks, fv) {
				for _, k := range []int{1, 3, 10, 1000} {
					want := s.Search(q, k)
					got := ms.Search(q, k)
					sameHitsBitIdentical(t, want, got, name)
				}
			}
		}
	}
}

// TestMultiSearcherDocSets: DocsWithToken/DocSet/IDF/TermStats must match
// the unpartitioned searcher — doc numbers remap through the segment
// bases, and df sums across segments.
func TestMultiSearcherDocSets(t *testing.T) {
	ix, tables := buildRandCorpus(t, 4242, 40)
	s := NewSearcher(ix)
	for _, nSeg := range []int{2, 3} {
		chunks := splitTables(tables, nSeg, int64(nSeg))
		for name, ms := range multiVariants(t, chunks, 2) {
			r := rand.New(rand.NewSource(17))
			for i := 0; i < 40; i++ {
				toks := randQuery(r)
				want := s.DocSet(toks)
				got := ms.DocSet(toks)
				if len(want) != 0 || len(got) != 0 {
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("%s: DocSet(%v) = %v, want %v", name, toks, got, want)
					}
				}
				tok := propWords[r.Intn(len(propWords))]
				if w, g := s.IDF(tok), ms.IDF(tok); w != g {
					t.Fatalf("%s: IDF(%q) = %v, want %v", name, tok, g, w)
				}
				wdf, wpost, wok := s.TermStats(tok)
				gdf, gpost, gok := ms.TermStats(tok)
				if wdf != gdf || wpost != gpost || wok != gok {
					t.Fatalf("%s: TermStats(%q) = (%d,%d,%v), want (%d,%d,%v)", name, tok, gdf, gpost, gok, wdf, wpost, wok)
				}
			}
		}
	}
}

// TestManifestRoundTrip: commit, read back, and the implicit manifest of a
// bare flat directory.
func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()

	// Neither manifest nor flat index: fs.ErrNotExist for the gob fallback.
	if _, err := SnapshotManifest(dir); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("empty dir: err = %v, want fs.ErrNotExist", err)
	}

	// A bare flat index gets the implicit base-only manifest.
	ix, _ := buildRandCorpus(t, 1, 8)
	if err := WriteSharded(dir, NewSearcher(ix), 2); err != nil {
		t.Fatal(err)
	}
	m, err := SnapshotManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Generation != 0 || !reflect.DeepEqual(m.Segments, []string{"."}) {
		t.Fatalf("implicit manifest = %+v", m)
	}

	m.Generation = 7
	m.Segments = []string{".", SegmentDirName(0)}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("ReadManifest: ok=%v err=%v", ok, err)
	}
	if got.Generation != 7 || !reflect.DeepEqual(got.Segments, m.Segments) {
		t.Fatalf("round trip = %+v, want %+v", got, m)
	}

	// Malicious/corrupt segment paths are rejected.
	for _, bad := range []string{"", "/abs", "../escape"} {
		b := m
		b.Segments = []string{bad}
		if err := WriteManifest(dir, b); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ReadManifest(dir); err == nil {
			t.Fatalf("segment path %q accepted", bad)
		}
	}
}

// TestPlanMerge pins the size-tiered policy: the lowest full tier merges,
// partial tiers wait.
func TestPlanMerge(t *testing.T) {
	p := MergePolicy{TierFanIn: 4, TierBase: 4}
	cases := []struct {
		docs []int
		want []int
	}{
		{nil, nil},
		{[]int{1, 2, 3}, nil},                                  // tier 0 not full
		{[]int{1, 2, 3, 2}, []int{0, 1, 2, 3}},                 // tier 0 full
		{[]int{100, 1, 2, 3, 2}, []int{1, 2, 3, 4}},            // big segment left out
		{[]int{20, 30, 21, 22, 1, 2}, []int{0, 1, 2, 3}},       // tier 2 (16..63 docs) full
		{[]int{1, 1, 1, 1, 20, 30, 21, 22}, []int{0, 1, 2, 3}}, // lowest full tier wins
	}
	for i, c := range cases {
		if got := PlanMerge(c.docs, p); !reflect.DeepEqual(got, c.want) {
			t.Fatalf("case %d: PlanMerge(%v) = %v, want %v", i, c.docs, got, c.want)
		}
	}
}

// TestMergeSegments: merging segments yields a segment whose search
// results are bit-identical to the pre-merge multi (same docs, same order,
// same global stats) and whose store holds every table.
func TestMergeSegments(t *testing.T) {
	_, tables := buildRandCorpus(t, 9, 30)
	chunks := splitTables(tables, 3, 9)
	dirs := make([]string, len(chunks))
	for i, chunk := range chunks {
		w := NewSegmentWriter()
		for _, tb := range chunk {
			if err := w.Add(tb); err != nil {
				t.Fatal(err)
			}
		}
		dirs[i] = filepath.Join(t.TempDir(), "seg")
		if err := w.Flush(dirs[i], WriteShardedOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	before, err := OpenMulti(dirs)
	if err != nil {
		t.Fatal(err)
	}
	defer before.Close()

	merged := filepath.Join(t.TempDir(), "merged")
	n, err := MergeSegments(merged, dirs, WriteShardedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(tables) {
		t.Fatalf("merged %d docs, want %d", n, len(tables))
	}
	after, err := OpenMulti([]string{merged})
	if err != nil {
		t.Fatal(err)
	}
	defer after.Close()

	r := rand.New(rand.NewSource(3))
	for i := 0; i < 25; i++ {
		q := randQuery(r)
		sameHitsBitIdentical(t, before.Search(q, 10), after.Search(q, 10), "merge")
	}
	st, err := LoadStore(filepath.Join(merged, StoreFileName))
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != len(tables) {
		t.Fatalf("merged store holds %d tables, want %d", st.Len(), len(tables))
	}
}

// TestOpenMultiSnapshot: a committed manifest opens all listed segments in
// order with stable global doc numbering, and a stale segment directory
// not in the manifest is ignored.
func TestOpenMultiSnapshot(t *testing.T) {
	dir := t.TempDir()
	ix, tables := buildRandCorpus(t, 11, 20)
	if err := WriteSharded(dir, NewSearcher(ix), 2); err != nil {
		t.Fatal(err)
	}
	extra := mkTable("live-1", []string{"Planet", "Moons"},
		[][]string{{"Jupiter", "95"}, {"Saturn", "146"}}, "moon counts")
	w := NewSegmentWriter()
	if err := w.Add(extra); err != nil {
		t.Fatal(err)
	}
	seg := SegmentDirName(0)
	if err := w.Flush(filepath.Join(dir, seg), WriteShardedOptions{}); err != nil {
		t.Fatal(err)
	}
	// An orphan directory (crash between flush and commit) must be ignored.
	orphan := filepath.Join(dir, SegmentDirName(1))
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteManifest(dir, Manifest{Generation: 3, Segments: []string{".", seg}}); err != nil {
		t.Fatal(err)
	}

	ms, m, err := OpenMultiSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	if m.Generation != 3 || ms.Generation() != 3 {
		t.Fatalf("generation = %d/%d, want 3", m.Generation, ms.Generation())
	}
	if ms.Segments() != 2 || ms.Len() != len(tables)+1 {
		t.Fatalf("segments=%d len=%d, want 2/%d", ms.Segments(), ms.Len(), len(tables)+1)
	}
	// The ingested doc is searchable and globally numbered after the base.
	hits := ms.Search([]string{"saturn"}, 1)
	if len(hits) != 1 || hits[0].ID != "live-1" {
		t.Fatalf("search for ingested table = %v", hits)
	}
	if id := ms.IDOf(int32(len(tables))); id != "live-1" {
		t.Fatalf("IDOf(base len) = %q, want live-1", id)
	}
}
