package index

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"wwt/internal/wtable"
)

// pickTok scans integer suffixes until prefix+N lands on the wanted home
// shard — a deterministic way to pin query terms to specific shards.
func pickTok(prefix string, shard, nShards int) string {
	for i := 0; ; i++ {
		tok := fmt.Sprintf("%s%d", prefix, i)
		if shardOfToken(tok, nShards) == shard {
			return tok
		}
	}
}

// buildSkewedCorpus builds the adversarial pruning corpus: nDocs tables
// that all carry three low-weight filler tokens (pinned to shards 1, 2, 3
// of an 8-shard layout), while only the first few tables carry a heavily
// repeated rare token (pinned to shard 0). The rare token's shard bound
// dwarfs the filler shards', so a top-k probe should establish its floor
// there and prune the rest — and the filler posting lists span multiple
// 128-posting blocks whose only live candidates sit in the first block.
func buildSkewedCorpus(t *testing.T, nDocs, nHeavy int) (heavy string, fills []string, tables []*wtable.Table) {
	t.Helper()
	heavy = pickTok("aaheavy", 0, 8)
	fills = []string{
		pickTok("zzfill", 1, 8),
		pickTok("zzfill", 2, 8),
		pickTok("zzfill", 3, 8),
	}
	row := func(cells ...string) wtable.Row {
		r := wtable.Row{}
		for _, c := range cells {
			r.Cells = append(r.Cells, wtable.Cell{Text: c})
		}
		return r
	}
	for i := 0; i < nDocs; i++ {
		tb := &wtable.Table{ID: fmt.Sprintf("t%03d", i)}
		tb.BodyRows = append(tb.BodyRows, row(fills[0], fills[1], fills[2]))
		if i < nHeavy {
			tb.BodyRows = append(tb.BodyRows, row(heavy, heavy, heavy, heavy))
		}
		tables = append(tables, tb)
	}
	return heavy, fills, tables
}

// TestShardPruningAdversarial drives the floor-seeding pre-pass through
// its boundary case: the winning documents' scores need contributions from
// the very shards the pre-pass prunes (every doc holds filler terms), so a
// pruned shard whose postings were actually dropped — rather than merely
// not prefaulted — would corrupt the scores. Asserts bit-identity against
// both oracles plus that pruning and block skipping really fired.
func TestShardPruningAdversarial(t *testing.T) {
	heavy, fills, tables := buildSkewedCorpus(t, 300, 4)
	ix, err := Build(tables)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(ix)
	q := append([]string{heavy}, fills...)
	for _, k := range []int{1, 3, 10} {
		want := ix.Search(q, k)
		sameHitsBitIdentical(t, want, s.Search(q, k), fmt.Sprintf("searcher k=%d", k))
		for name, ss := range shardedVariants(t, s, 8) {
			got, st := ss.SearchStats(q, k)
			sameHitsBitIdentical(t, want, got, fmt.Sprintf("%s k=%d", name, k))
			if name == "mmap-v1" || name == "nommap-v1" {
				// v1 shards carry no block summaries: the pre-pass must
				// stand down entirely rather than prune blind.
				if st.ShardsPruned != 0 || st.BlocksTotal != 0 {
					t.Fatalf("%s k=%d: v1 path reports pruning (%+v)", name, k, st)
				}
				continue
			}
			if k > 4 {
				// Fewer heavy docs than k: the pre-pass cannot establish a
				// floor, so pruning legitimately stands down. Exactness
				// (asserted above) is all that is required here.
				continue
			}
			if st.ShardsPruned == 0 {
				t.Fatalf("%s k=%d: no shard pruned on the skewed corpus (%+v)", name, k, st)
			}
			if st.ShardsProbed+st.ShardsPruned != 4 {
				t.Fatalf("%s k=%d: probed %d + pruned %d != 4 active shards", name, k, st.ShardsProbed, st.ShardsPruned)
			}
			if st.BlocksSkipped == 0 {
				t.Fatalf("%s k=%d: no block skipped over multi-block filler lists (%+v)", name, k, st)
			}
			if st.Scanned > st.Postings {
				// Scanned includes the pre-pass rescan, but it must stay
				// bounded: each posting is scanned at most twice.
				if st.Scanned > 2*st.Postings {
					t.Fatalf("%s k=%d: scanned %d over 2x postings %d", name, k, st.Scanned, st.Postings)
				}
			}
			pruned := uint64(0)
			for _, n := range ss.ShardPruneCounts() {
				pruned += n
			}
			if pruned == 0 {
				t.Fatalf("%s k=%d: ShardPruneCounts all zero after a pruned probe", name, k)
			}
		}
	}
	// k=0 (all hits) must disable pruning but stay exact.
	want := ix.Search(q, 0)
	for name, ss := range shardedVariants(t, s, 8) {
		got, st := ss.SearchStats(q, 0)
		sameHitsBitIdentical(t, want, got, name+" k=0")
		if st.ShardsPruned != 0 {
			t.Fatalf("%s k=0: pruned %d shards on an unbounded probe", name, st.ShardsPruned)
		}
	}
}

// TestSearcherSearchStats sanity-checks the single-shard counters: totals
// cover the query's postings, the skewed corpus skips blocks, and Search
// and SearchStats return identical hits.
func TestSearcherSearchStats(t *testing.T) {
	heavy, fills, tables := buildSkewedCorpus(t, 300, 4)
	ix, err := Build(tables)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(ix)
	q := append([]string{heavy}, fills...)
	hits, st := s.SearchStats(q, 3)
	sameHitsBitIdentical(t, s.Search(q, 3), hits, "SearchStats vs Search")
	if st.Postings == 0 || st.BlocksTotal == 0 {
		t.Fatalf("counters empty: %+v", st)
	}
	if st.BlocksSkipped == 0 {
		t.Fatalf("no block skipped on the skewed corpus: %+v", st)
	}
	if st.Scanned >= st.Postings {
		t.Fatalf("skips saved nothing: scanned %d of %d postings", st.Scanned, st.Postings)
	}
	if st.ShardsPruned != 0 || st.ShardsProbed != 0 {
		t.Fatalf("single-shard probe reports shard counters: %+v", st)
	}
}

// TestBlockMaxEquivalenceQuick fuzzes the block-max path at tiny block
// sizes (so even small corpora span many blocks) across shard counts:
// hits must stay bit-identical to the reference scorer for random
// corpora, queries and k.
func TestBlockMaxEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		tables := make([]*wtable.Table, n)
		for i := range tables {
			tables[i] = randDocTable(r, i)
		}
		ix, err := Build(tables)
		if err != nil {
			return false
		}
		s := NewSearcher(ix)
		s.sh.computeBlocks(1 + r.Intn(5))
		q := []string{
			propWords[r.Intn(len(propWords))],
			propWords[r.Intn(len(propWords))],
			propWords[r.Intn(len(propWords))],
		}
		k := []int{1, 2, 5, 0}[r.Intn(4)]
		want := ix.Search(q, k)
		got, _ := s.SearchStats(q, k)
		if !hitsEqual(want, got) {
			return false
		}
		for _, shards := range []int{1, 3, 8} {
			ss := NewShardedFromSearcher(s, shards)
			sg, _ := ss.SearchStats(q, k)
			if !hitsEqual(want, sg) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// hitsEqual is sameHitsBitIdentical as a predicate (for quick.Check).
func hitsEqual(want, got []Hit) bool {
	if len(want) != len(got) {
		return false
	}
	for i := range want {
		if want[i].ID != got[i].ID || want[i].Score != got[i].Score {
			return false
		}
	}
	return true
}
