package index

import "math"

// This file is the single scoring gather shared by Searcher and
// ShardedSearcher. Both resolve their query terms into termRefs (a shard
// plus a local term ID), sort them into the canonical lexicographic term
// order, and hand them to gather, which accumulates per-document float64
// scores in exactly that order — the property the bit-identity tests pin.
//
// On top of the PR 1 term-level max-score skip, gather layers three exact
// pruning mechanisms, all of which only ever discard work that provably
// cannot change the top k:
//
//  1. Block closure. With format-v2 block summaries, a posting block whose
//     best reachable score — idf·blkMax for the block, plus the term's
//     other-field maxima, plus the suffix bound of all later terms — sits
//     strictly below the current threshold cannot introduce a new top-k
//     document. The block stops admitting candidates (documents first seen
//     there are provably non-winners) but still updates ones already
//     admitted.
//  2. Freezing. Whenever the threshold is recomputed, touched documents
//     whose score plus the remaining suffix bound sit strictly below it are
//     provably out of the top k: their score is set to -Inf (so any later
//     update self-absorbs) and they leave the candidate list. The k
//     documents defining the threshold can never freeze, so winners always
//     survive with exact, fully-accumulated scores.
//  3. Whole-block skips. A closed block whose stored doc-ID range contains
//     no live candidate has nothing left to contribute — it is skipped
//     without touching its posting pages at all. Only the dense block
//     summaries (~1/blockSize of the postings) are read.
//
// All bound comparisons carry the same 1e-9 absolute slack as the original
// max-score skip, absorbing summation-order rounding in the bounds; the
// winners' scores themselves are always the exact canonical-order sums.

// defaultBlockSize is the posting-block width NewSearcher and the v2 writer
// use unless told otherwise: 128 postings ≈ 1KiB of doc+weight data per
// block, giving summaries 1/128 the size of the postings they bound.
const DefaultBlockSize = 128

// laneWidth is the fixed group width of the lane-grouped accumulation loop.
const laneWidth = 8

// ProbeStats reports how much scoring work one probe actually did against
// the posting volume its terms resolved to — the skip counters behind the
// wwt_probe_* metrics and the planner's scanned-fraction feature.
type ProbeStats struct {
	Postings      int64 // posting entries across all resolved (term, field) lists
	Scanned       int64 // posting entries actually visited by the accumulator
	BlocksTotal   int64 // posting blocks considered on block-summarized lists
	BlocksSkipped int64 // blocks skipped outright (closed, no live candidate in range)
	ShardsProbed  int   // shards that received a scatter
	ShardsPruned  int   // shards whose scatter was pruned by the score floor
}

// computeBlocks fills the shard's block-summary arrays from its CSR
// postings: per (term, field) list, fixed-width blocks with the maximum
// posting weight and first doc ID of each, plus the per-term per-field
// maximum weight used in cross-field bounds. Blocks are aligned to each
// list's start, so the summaries are exactly reproducible from the
// postings (the v2 writer persists these arrays verbatim).
func (sh *shard) computeBlocks(blockSize int) {
	sh.blockSize = blockSize
	for f := 0; f < int(numFields); f++ {
		sh.blkOff[f] = make([]int32, sh.numTerms+1)
		nb := 0
		for t := 0; t < sh.numTerms; t++ {
			sh.blkOff[f][t] = int32(nb)
			n := int(sh.off[f][t+1] - sh.off[f][t])
			nb += (n + blockSize - 1) / blockSize
		}
		sh.blkOff[f][sh.numTerms] = int32(nb)
		sh.blkMax[f] = make([]float32, nb)
		sh.blkDoc[f] = make([]int32, nb)
		sh.fieldMaxW[f] = make([]float32, sh.numTerms)
		for t := 0; t < sh.numTerms; t++ {
			lo, hi := int(sh.off[f][t]), int(sh.off[f][t+1])
			b := int(sh.blkOff[f][t])
			var fieldMax float32
			for p := lo; p < hi; p += blockSize {
				end := min(p+blockSize, hi)
				var m float32
				for _, w := range sh.wts[f][p:end] {
					if w > m {
						m = w
					}
				}
				sh.blkMax[f][b] = m
				sh.blkDoc[f][b] = sh.docs[f][p]
				if m > fieldMax {
					fieldMax = m
				}
				b++
			}
			sh.fieldMaxW[f][t] = fieldMax
		}
	}
}

// hasBlocks reports whether block summaries are available (always for
// in-memory shards; only for format-v2 files when opened from disk).
func (sh *shard) hasBlocks() bool { return sh.blockSize > 0 }

// nextGen advances the accumulator to a fresh generation: previously
// touched scores become stale without clearing the dense arrays.
func (a *accumulator) nextGen() {
	a.cur++
	if a.cur == 0 { // generation counter wrapped: hard reset
		clear(a.gen)
		a.cur = 1
	}
	a.touched = a.touched[:0]
	a.merged = 0
	a.liveBuilt = false
}

// freeze drops candidates that can no longer reach the top k: a touched
// document whose score plus the remaining-terms bound sits strictly below
// the threshold is provably beaten by at least k others. Its score becomes
// -Inf — any later posting update self-absorbs without a branch — and it
// leaves both the touched and live lists. The k documents defining the
// threshold always have score >= threshold and therefore never freeze.
func (a *accumulator) freeze(threshold, remaining float64) {
	if a.liveBuilt {
		a.mergeLive()
	}
	keep := a.touched[:0]
	for _, d := range a.touched {
		if a.score[d]+remaining < threshold-1e-9 {
			a.score[d] = math.Inf(-1)
			if a.liveBuilt {
				a.liveBits[d>>6] &^= 1 << (uint32(d) & 63)
			}
		} else {
			keep = append(keep, d)
		}
	}
	a.touched = keep
	if a.liveBuilt {
		a.merged = len(keep)
	}
}

// mergeLive keeps the live-candidate bitmap current, materializing it from
// touched the first time a closed block needs it. Until a block actually
// closes, no candidate structure is built at all — on corpora where block
// closure never triggers, gather costs the same as the plain term-level
// path. Folding later admissions in is one bit-set per new candidate; O(1)
// when nothing changed since the last merge.
func (a *accumulator) mergeLive() {
	if !a.liveBuilt {
		nw := (len(a.score) + 63) >> 6
		if cap(a.liveBits) < nw {
			a.liveBits = make([]uint64, nw)
		} else {
			a.liveBits = a.liveBits[:nw]
			clear(a.liveBits)
		}
		for _, d := range a.touched {
			a.liveBits[d>>6] |= 1 << (uint32(d) & 63)
		}
		a.merged = len(a.touched)
		a.liveBuilt = true
		return
	}
	for _, d := range a.touched[a.merged:] {
		a.liveBits[d>>6] |= 1 << (uint32(d) & 63)
	}
	a.merged = len(a.touched)
}

// liveInRange reports whether any live candidate has a doc ID in [lo, hi).
func (a *accumulator) liveInRange(lo, hi int32) bool {
	if n := int32(len(a.liveBits)) << 6; hi > n {
		hi = n // doc IDs are < len(score) <= n, so clamping loses nothing
	}
	if lo >= hi {
		return false
	}
	w0, w1 := int(lo)>>6, int(hi-1)>>6
	first := ^uint64(0) << (uint32(lo) & 63)
	last := ^uint64(0) >> (63 - (uint32(hi-1) & 63))
	if w0 == w1 {
		return a.liveBits[w0]&first&last != 0
	}
	if a.liveBits[w0]&first != 0 {
		return true
	}
	for w := w0 + 1; w < w1; w++ {
		if a.liveBits[w] != 0 {
			return true
		}
	}
	return a.liveBits[w1]&last != 0
}

// scanList applies one posting run to the accumulator in lane groups of
// laneWidth: weight products are computed into a fixed-width buffer with
// bounds checks hoisted by the full-slice reslicing, then applied in
// posting order. Every document sees the identical operation sequence
// (idf·float64(w), then one += or store) as a scalar loop, so scores stay
// bit-identical. updateOnly suppresses admission of unseen documents.
func (a *accumulator) scanList(idf float64, ds []int32, ws []float32, updateOnly bool) {
	var lane [laneWidth]float64
	j := 0
	for ; j+laneWidth <= len(ds); j += laneWidth {
		dg := ds[j : j+laneWidth : j+laneWidth]
		wg := ws[j : j+laneWidth : j+laneWidth]
		for l := 0; l < laneWidth; l++ {
			lane[l] = idf * float64(wg[l])
		}
		if updateOnly {
			for l := 0; l < laneWidth; l++ {
				if d := dg[l]; a.gen[d] == a.cur {
					a.score[d] += lane[l]
				}
			}
		} else {
			for l := 0; l < laneWidth; l++ {
				d := dg[l]
				if a.gen[d] == a.cur {
					a.score[d] += lane[l]
				} else {
					a.gen[d] = a.cur
					a.score[d] = lane[l]
					a.touched = append(a.touched, d)
				}
			}
		}
	}
	for ; j < len(ds); j++ {
		w := idf * float64(ws[j])
		d := ds[j]
		if a.gen[d] == a.cur {
			a.score[d] += w
		} else if !updateOnly {
			a.gen[d] = a.cur
			a.score[d] = w
			a.touched = append(a.touched, d)
		}
	}
}

// gather accumulates refs — already sorted into canonical lexicographic
// term order — into acc. k bounds the selection (k <= 0 scans everything
// with no pruning); floor preseeds the admission threshold with an
// externally established lower bound on the kth-best final score (-Inf for
// none); st collects the skip counters.
func gather(acc *accumulator, refs []termRef, k int, floor float64, st *ProbeStats) {
	n := len(refs)
	// suffix[i]: the best score any document matching only terms i..n can
	// reach — the admission bound for documents first seen at term i.
	if cap(acc.suffix) < n+1 {
		acc.suffix = make([]float64, n+1)
	}
	suffix := acc.suffix[:n+1]
	acc.suffix = suffix
	suffix[n] = 0
	for i := n - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + refs[i].maxS
	}
	acc.merged = 0
	acc.liveBuilt = false

	updateOnly := false
	threshold := floor
	seeded := !math.IsInf(floor, -1)
	touchedAtThreshold := -1
	for i, r := range refs {
		if k > 0 && !updateOnly && (seeded || len(acc.touched) >= k) {
			// Partial scores only grow, so the kth largest partial score is
			// a valid lower bound on the final kth-best score (as is a
			// preseeded floor). A document unseen so far can reach at most
			// suffix[i]; strictly below the bound it can neither beat nor
			// tie the current top k. The 1e-9 slack absorbs summation-order
			// rounding in the bound.
			//
			// The bound stays valid as terms advance, so first retry the
			// last computed threshold for free; recompute (an O(touched)
			// scan) only while the candidate set keeps growing materially.
			if threshold > suffix[i]+1e-9 {
				updateOnly = true
			} else if len(acc.touched) >= k &&
				(touchedAtThreshold < 0 || len(acc.touched) > touchedAtThreshold+touchedAtThreshold/4) {
				if t := acc.kthLargest(k); t > threshold {
					threshold = t
				}
				touchedAtThreshold = len(acc.touched)
				acc.freeze(threshold, suffix[i])
				if threshold > suffix[i]+1e-9 {
					updateOnly = true
				}
			}
		}
		sh := r.sh
		idf := r.idf
		active := threshold > math.Inf(-1) && k > 0
		for f := 0; f < int(numFields); f++ {
			lo, hi := sh.off[f][r.tid], sh.off[f][r.tid+1]
			if lo == hi {
				continue
			}
			st.Postings += int64(hi - lo)
			if !active && !updateOnly {
				// No threshold yet: every block is open, scan flat.
				acc.scanList(idf, sh.docs[f][lo:hi], sh.wts[f][lo:hi], false)
				st.Scanned += int64(hi - lo)
				continue
			}
			if !sh.hasBlocks() {
				// v1 shard: only the term-level skip is available.
				acc.scanList(idf, sh.docs[f][lo:hi], sh.wts[f][lo:hi], updateOnly)
				st.Scanned += int64(hi - lo)
				continue
			}
			// Cross-field bound: beyond one block of this list, a document
			// can still collect at most the other fields' maxima for this
			// term plus everything later terms offer. (Earlier fields are
			// included too — a looser but still valid bound.)
			rest := suffix[i+1]
			for f2 := 0; f2 < int(numFields); f2++ {
				if f2 != f {
					rest += idf * float64(sh.fieldMaxW[f2][r.tid])
				}
			}
			base := int(sh.blkOff[f][r.tid])
			nb := int(sh.blkOff[f][r.tid+1]) - base
			ds := sh.docs[f][lo:hi]
			ws := sh.wts[f][lo:hi]
			bm := sh.blkMax[f][base : base+nb]
			bd := sh.blkDoc[f][base : base+nb]
			bs := sh.blockSize
			st.BlocksTotal += int64(nb)
			for b := 0; b < nb; b++ {
				p := b * bs
				q := min(p+bs, len(ds))
				closed := updateOnly || threshold > idf*float64(bm[b])+rest+1e-9
				if !closed {
					acc.scanList(idf, ds[p:q], ws[p:q], false)
					st.Scanned += int64(q - p)
					continue
				}
				// Closed: the block cannot introduce a new top-k document.
				// If no live candidate falls in its doc range either, skip
				// it without touching the posting pages.
				acc.mergeLive()
				hiDoc := int32(math.MaxInt32)
				if b+1 < nb {
					hiDoc = bd[b+1]
				}
				if !acc.liveInRange(bd[b], hiDoc) {
					st.BlocksSkipped++
					continue
				}
				acc.scanList(idf, ds[p:q], ws[p:q], true)
				st.Scanned += int64(q - p)
			}
		}
	}
}
