package index

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// ShardedSearcher is the sharded, disk-resident form of the frozen
// Searcher: postings are partitioned by term hash into independent shards,
// each holding its own term table and CSR arrays, while the doc table
// (doc number → table ID) is shared. A probe scatters across shards in
// parallel — each shard resolves its slice of the query terms and
// prefaults their posting pages — and the gather accumulates contributions
// in the same canonical lexicographic term order as the single-shard
// Searcher, so hits are bit-identical (IDs, scores, order, tie-breaks)
// for every shard count. Term-hash sharding keeps every per-term quantity
// (idf, df, max-score bound, posting list) exactly equal to its
// single-shard value, which is what makes the canonical-order gather
// exact rather than merely approximate.
//
// A ShardedSearcher is immutable and safe for concurrent use. When opened
// from disk (OpenSharded) its arrays alias the file mapping: results must
// not outlive Close.
//
// This type must stay in lockstep with Searcher.Search — the skip logic,
// thresholds and tie-breaks are deliberate copies; change both sides
// together (TestShardedSearcherEquivalence pins them).
type ShardedSearcher struct {
	numDocs    int
	shardCount int

	// Doc table: either materialized strings (in-memory construction) or
	// an offsets+blob view into the docs file (flat construction).
	ids    []string
	idOffs []int64
	idBlob []byte

	shards  []*shard
	pool    sync.Pool // *shardedScratch
	closers []func() error
	mmapped bool
}

// shard is one term-hash partition: a term table in lexicographic order
// plus the per-field CSR arrays over the shared doc space.
type shard struct {
	numTerms int

	names    []string // in-memory construction
	termOffs []int64  // flat construction
	termBlob []byte

	idf      []float64
	maxScore []float64
	df       []int32

	off  [numFields][]int32
	docs [numFields][]int32
	wts  [numFields][]float32
}

// shardOfToken is the stable (cross-process) term→shard assignment:
// FNV-1a 64 over the token bytes, mod the shard count. Inlined so probes
// don't allocate a hash.Hash per token.
func shardOfToken(tok string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(tok); i++ {
		h ^= uint64(tok[i])
		h *= 1099511628211
	}
	return int(h % uint64(n))
}

// termName returns term i's token.
func (sh *shard) termName(i int32) string {
	if sh.names != nil {
		return sh.names[i]
	}
	return unsafeString(sh.termBlob[sh.termOffs[i]:sh.termOffs[i+1]])
}

// lookup binary-searches the shard's lexicographic term table — no map to
// build at open time, so opening stays O(1) in corpus size.
func (sh *shard) lookup(tok string) (int32, bool) {
	lo, hi := int32(0), int32(sh.numTerms)
	for lo < hi {
		mid := int32(uint32(lo+hi) >> 1)
		if sh.termName(mid) < tok {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < int32(sh.numTerms) && sh.termName(lo) == tok {
		return lo, true
	}
	return 0, false
}

// NewShardedFromSearcher partitions a frozen Searcher's terms by hash into
// n shards, copying each term's CSR ranges into its home shard. Per-term
// statistics (idf, df, maxScore) carry over unchanged — term-hash
// sharding does not alter them. The doc table is shared with s.
func NewShardedFromSearcher(s *Searcher, n int) *ShardedSearcher {
	if n < 1 {
		n = 1
	}
	ss := &ShardedSearcher{
		numDocs:    s.numDocs,
		shardCount: n,
		ids:        s.ids,
		shards:     make([]*shard, n),
	}
	perShard := make([][]int32, n)
	for ti, name := range s.names {
		g := shardOfToken(name, n)
		perShard[g] = append(perShard[g], int32(ti))
	}
	for g := 0; g < n; g++ {
		tids := perShard[g] // ascending global term IDs = lexicographic order
		sh := &shard{
			numTerms: len(tids),
			names:    make([]string, len(tids)),
			idf:      make([]float64, len(tids)),
			maxScore: make([]float64, len(tids)),
			df:       make([]int32, len(tids)),
		}
		for f := 0; f < int(numFields); f++ {
			total := 0
			for _, ti := range tids {
				total += int(s.off[f][ti+1] - s.off[f][ti])
			}
			sh.off[f] = make([]int32, len(tids)+1)
			sh.docs[f] = make([]int32, 0, total)
			sh.wts[f] = make([]float32, 0, total)
		}
		for li, ti := range tids {
			sh.names[li] = s.names[ti]
			sh.idf[li] = s.idf[ti]
			sh.maxScore[li] = s.maxScore[ti]
			sh.df[li] = s.df[ti]
			for f := 0; f < int(numFields); f++ {
				lo, hi := s.off[f][ti], s.off[f][ti+1]
				sh.off[f][li] = int32(len(sh.docs[f]))
				sh.docs[f] = append(sh.docs[f], s.docs[f][lo:hi]...)
				sh.wts[f] = append(sh.wts[f], s.wts[f][lo:hi]...)
			}
		}
		for f := 0; f < int(numFields); f++ {
			sh.off[f][len(tids)] = int32(len(sh.docs[f]))
		}
		ss.shards[g] = sh
	}
	return ss
}

// shardFileName names shard g's postings file inside an index directory.
func shardFileName(g int) string { return fmt.Sprintf("postings-%03d.wwt", g) }

// DocsFileName is the shared doc-table file of a flat sharded index; its
// presence marks a directory as holding one.
const DocsFileName = "docs.wwt"

// maxShards bounds the builder: beyond this, per-shard overhead dwarfs any
// fan-out win and the file-per-shard layout stops making sense.
const maxShards = 4096

// WriteSharded persists a frozen Searcher as a flat sharded index under
// dir: one shared doc-table file plus nShards postings files, each in the
// versioned mmap-friendly layout described in the package documentation.
func WriteSharded(dir string, s *Searcher, nShards int) error {
	if nShards < 1 {
		nShards = 1
	}
	if nShards > maxShards {
		return fmt.Errorf("index write: %d shards exceeds the %d-shard limit", nShards, maxShards)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("index write: %w", err)
	}
	ss := NewShardedFromSearcher(s, nShards)
	idOffs, idBlob := packStrings(s.ids)
	err := writeFlatFile(filepath.Join(dir, DocsFileName), kindDocs, 0, uint32(nShards),
		uint64(s.numDocs), 0, []section{
			{secIDOffs, int64Bytes(idOffs)},
			{secIDBlob, idBlob},
		})
	if err != nil {
		return fmt.Errorf("index write: %w", err)
	}
	for g, sh := range ss.shards {
		termOffs, termBlob := packStrings(sh.names)
		secs := []section{
			{secTermOffs, int64Bytes(termOffs)},
			{secTermBlob, termBlob},
			{secIDF, float64Bytes(sh.idf)},
			{secMaxScore, float64Bytes(sh.maxScore)},
			{secDF, int32Bytes(sh.df)},
		}
		for f := 0; f < int(numFields); f++ {
			secs = append(secs,
				section{secFieldOff(f), int32Bytes(sh.off[f])},
				section{secFieldDocs(f), int32Bytes(sh.docs[f])},
				section{secFieldWts(f), float32Bytes(sh.wts[f])},
			)
		}
		err := writeFlatFile(filepath.Join(dir, shardFileName(g)), kindPostings,
			uint32(g), uint32(nShards), uint64(s.numDocs), uint64(sh.numTerms), secs)
		if err != nil {
			return fmt.Errorf("index write: %w", err)
		}
	}
	return nil
}

// OpenSharded opens a flat sharded index written by WriteSharded. Opening
// is O(1) in corpus size: the files are page-mapped (or read whole where
// mmap is unavailable) and only headers are validated — no decode, no
// map building. The returned searcher's strings and arrays alias the
// mappings; results must not outlive Close. A directory without a flat
// index fails with an error wrapping fs.ErrNotExist, so callers can fall
// back to the gob path.
func OpenSharded(dir string) (*ShardedSearcher, error) {
	return openSharded(dir, false)
}

// openSharded is OpenSharded with a switch forcing the portable
// read-into-memory path (exercised by tests; also the only path on
// platforms without mmap).
func openSharded(dir string, noMmap bool) (*ShardedSearcher, error) {
	df, err := openFlatFile(filepath.Join(dir, DocsFileName), noMmap)
	if err != nil {
		return nil, err
	}
	ss := &ShardedSearcher{mmapped: !noMmap}
	ss.closers = append(ss.closers, df.Close)
	fail := func(e error) (*ShardedSearcher, error) {
		ss.Close()
		return nil, e
	}
	if df.kind != kindDocs {
		return fail(df.corrupt("file kind %d, want doc table (%d)", df.kind, kindDocs))
	}
	if df.shardCount < 1 || df.shardCount > maxShards {
		return fail(df.corrupt("shard count %d out of range", df.shardCount))
	}
	ss.numDocs = int(df.numDocs)
	ss.shardCount = int(df.shardCount)
	if ss.idOffs, err = df.int64Sec(secIDOffs, ss.numDocs+1); err != nil {
		return fail(err)
	}
	if ss.idBlob, err = df.sec(secIDBlob); err != nil {
		return fail(err)
	}
	if ss.numDocs > 0 && int(ss.idOffs[ss.numDocs]) != len(ss.idBlob) {
		return fail(df.corrupt("doc-ID blob is %d bytes, offsets end at %d", len(ss.idBlob), ss.idOffs[ss.numDocs]))
	}
	ss.shards = make([]*shard, ss.shardCount)
	for g := 0; g < ss.shardCount; g++ {
		pf, err := openFlatFile(filepath.Join(dir, shardFileName(g)), noMmap)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return fail(fmt.Errorf("index open %s: shard file %s missing (doc table says %d shards): %w",
					dir, shardFileName(g), ss.shardCount, err))
			}
			return fail(err)
		}
		ss.closers = append(ss.closers, pf.Close)
		sh, err := openShardFile(pf, g, ss.shardCount, ss.numDocs)
		if err != nil {
			return fail(err)
		}
		ss.shards[g] = sh
	}
	return ss, nil
}

// openShardFile validates one postings file's header against the doc
// table and aliases its sections into a shard.
func openShardFile(pf *flatFile, g, shardCount, numDocs int) (*shard, error) {
	if pf.kind != kindPostings {
		return nil, pf.corrupt("file kind %d, want postings shard (%d)", pf.kind, kindPostings)
	}
	if int(pf.shardIndex) != g || int(pf.shardCount) != shardCount {
		return nil, pf.corrupt("shard %d/%d, doc table says %d/%d — files from different builds mixed in one directory?",
			pf.shardIndex, pf.shardCount, g, shardCount)
	}
	if int(pf.numDocs) != numDocs {
		return nil, pf.corrupt("shard built over %d docs, doc table has %d — files from different builds mixed in one directory?",
			pf.numDocs, numDocs)
	}
	sh := &shard{numTerms: int(pf.numTerms)}
	var err error
	if sh.termOffs, err = pf.int64Sec(secTermOffs, sh.numTerms+1); err != nil {
		return nil, err
	}
	if sh.termBlob, err = pf.sec(secTermBlob); err != nil {
		return nil, err
	}
	if sh.numTerms > 0 && int(sh.termOffs[sh.numTerms]) != len(sh.termBlob) {
		return nil, pf.corrupt("term blob is %d bytes, offsets end at %d", len(sh.termBlob), sh.termOffs[sh.numTerms])
	}
	if sh.idf, err = pf.float64Sec(secIDF, sh.numTerms); err != nil {
		return nil, err
	}
	if sh.maxScore, err = pf.float64Sec(secMaxScore, sh.numTerms); err != nil {
		return nil, err
	}
	if sh.df, err = pf.int32Sec(secDF, sh.numTerms); err != nil {
		return nil, err
	}
	for f := 0; f < int(numFields); f++ {
		if sh.off[f], err = pf.int32Sec(secFieldOff(f), sh.numTerms+1); err != nil {
			return nil, err
		}
		count := int(sh.off[f][sh.numTerms])
		if sh.docs[f], err = pf.int32Sec(secFieldDocs(f), count); err != nil {
			return nil, err
		}
		if sh.wts[f], err = pf.float32Sec(secFieldWts(f), count); err != nil {
			return nil, err
		}
	}
	return sh, nil
}

// Close releases the file mappings of a disk-opened searcher. Hits, doc
// IDs and doc sets returned earlier alias the mappings and must not be
// used afterwards. Close on an in-memory searcher is a no-op.
func (ss *ShardedSearcher) Close() error {
	var first error
	for _, c := range ss.closers {
		if err := c(); err != nil && first == nil {
			first = err
		}
	}
	ss.closers = nil
	return first
}

// Len returns the number of indexed documents.
func (ss *ShardedSearcher) Len() int { return ss.numDocs }

// Shards returns the shard count.
func (ss *ShardedSearcher) Shards() int { return ss.shardCount }

// Mmapped reports whether the searcher aliases file mappings (as opposed
// to heap-resident arrays).
func (ss *ShardedSearcher) Mmapped() bool { return ss.mmapped }

// NumTerms returns the total distinct terms across shards.
func (ss *ShardedSearcher) NumTerms() int {
	n := 0
	for _, sh := range ss.shards {
		n += sh.numTerms
	}
	return n
}

// IDOf returns the table ID of an internal doc number. For disk-opened
// searchers the string aliases the mapping (zero-copy).
func (ss *ShardedSearcher) IDOf(doc int32) string {
	if ss.ids != nil {
		return ss.ids[doc]
	}
	return unsafeString(ss.idBlob[ss.idOffs[doc]:ss.idOffs[doc+1]])
}

// IDF returns the smoothed inverse document frequency of a token,
// identical to Index.IDF: the per-term value was computed at freeze time,
// and the unknown-token case recomputes the same smoothed formula.
func (ss *ShardedSearcher) IDF(tok string) float64 {
	if ss.numDocs == 0 {
		return 1
	}
	sh := ss.shards[shardOfToken(tok, ss.shardCount)]
	if ti, ok := sh.lookup(tok); ok {
		return sh.idf[ti]
	}
	return math.Log(1 + float64(ss.numDocs))
}

// TermStats returns a token's union document frequency and total posting
// entries across all fields, read from the token's home shard — identical
// to Searcher.TermStats at every shard count. Unknown tokens report
// ok=false.
func (ss *ShardedSearcher) TermStats(tok string) (df int32, postings int, ok bool) {
	sh := ss.shards[shardOfToken(tok, ss.shardCount)]
	ti, ok := sh.lookup(tok)
	if !ok {
		return 0, 0, false
	}
	for f := 0; f < int(numFields); f++ {
		postings += int(sh.off[f][ti+1] - sh.off[f][ti])
	}
	return sh.df[ti], postings, true
}

// termRef is one resolved query term: its home shard and local term ID,
// plus the token for canonical (lexicographic) ordering at gather time.
type termRef struct {
	tok string
	sh  *shard
	tid int32
}

// shardedScratch is the pooled per-probe state: the dense accumulator
// (shared layout with the single-shard Searcher) plus the scatter-side
// buffers (token dedup, per-shard token groups, resolved refs).
type shardedScratch struct {
	acc       accumulator
	seen      map[string]bool
	refs      []termRef
	groups    [][]string
	shardRefs [][]termRef
}

func (ss *ShardedSearcher) getScratch() *shardedScratch {
	sc, _ := ss.pool.Get().(*shardedScratch)
	if sc == nil {
		sc = &shardedScratch{}
	}
	a := &sc.acc
	if len(a.score) < ss.numDocs {
		a.score = make([]float64, ss.numDocs)
		a.gen = make([]uint32, ss.numDocs)
		a.cur = 0
	}
	a.cur++
	if a.cur == 0 { // generation counter wrapped: hard reset
		clear(a.gen)
		a.cur = 1
	}
	a.touched = a.touched[:0]
	if sc.seen == nil {
		sc.seen = make(map[string]bool, 16)
	}
	clear(sc.seen)
	if len(sc.groups) != ss.shardCount {
		sc.groups = make([][]string, ss.shardCount)
		sc.shardRefs = make([][]termRef, ss.shardCount)
	}
	return sc
}

// prefetchSink defeats dead-code elimination of the page-prefault loads.
var prefetchSink atomic.Uint64

// resolve is the per-shard scatter step: look up each token in the
// shard's term table and prefault its posting pages (one load per 4KiB),
// so cold pages of different shards fault in concurrently instead of
// serially inside the gather loop.
func (sh *shard) resolve(toks []string, out []termRef) []termRef {
	var touch uint64
	for _, tok := range toks {
		tid, ok := sh.lookup(tok)
		if !ok {
			continue
		}
		out = append(out, termRef{tok: tok, sh: sh, tid: tid})
		for f := 0; f < int(numFields); f++ {
			lo, hi := sh.off[f][tid], sh.off[f][tid+1]
			for p := lo; p < hi; p += 1024 { // 1024 int32s per 4KiB page
				touch += uint64(sh.docs[f][p]) + uint64(math.Float32bits(sh.wts[f][p]))
			}
			if hi > lo {
				touch += uint64(sh.docs[f][hi-1])
			}
		}
	}
	if touch != 0 {
		prefetchSink.Add(touch)
	}
	return out
}

// Search scores a union-of-keywords query and returns the top k hits (all
// hits when k <= 0), bit-identical to the single-shard Searcher: the
// scatter phase fans term resolution and page prefaulting out across
// shards, and the gather phase accumulates in canonical lexicographic
// term order with the same max-score admission skip, top-k selection and
// tie-breaks. The skip block below is a deliberate copy of
// Searcher.Search — keep both in lockstep.
func (ss *ShardedSearcher) Search(tokens []string, k int) []Hit {
	if len(tokens) == 0 || ss.numDocs == 0 {
		return nil
	}
	sc := ss.getScratch()
	defer ss.pool.Put(sc)

	// Group unique tokens by home shard (the scatter input).
	active := 0
	for i := range sc.groups {
		sc.groups[i] = sc.groups[i][:0]
		sc.shardRefs[i] = sc.shardRefs[i][:0]
	}
	for _, tok := range tokens {
		if sc.seen[tok] {
			continue
		}
		sc.seen[tok] = true
		g := shardOfToken(tok, ss.shardCount)
		if len(sc.groups[g]) == 0 {
			active++
		}
		sc.groups[g] = append(sc.groups[g], tok)
	}

	// Scatter: resolve and prefault each involved shard concurrently.
	// Every goroutine writes only its own shardRefs slot.
	if active > 1 {
		var wg sync.WaitGroup
		for g := range sc.groups {
			if len(sc.groups[g]) == 0 {
				continue
			}
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				sc.shardRefs[g] = ss.shards[g].resolve(sc.groups[g], sc.shardRefs[g])
			}(g)
		}
		wg.Wait()
	} else {
		for g := range sc.groups {
			if len(sc.groups[g]) > 0 {
				sc.shardRefs[g] = ss.shards[g].resolve(sc.groups[g], sc.shardRefs[g])
			}
		}
	}
	refs := sc.refs[:0]
	for _, rs := range sc.shardRefs {
		refs = append(refs, rs...)
	}
	sc.refs = refs
	if len(refs) == 0 {
		return nil
	}
	// Gather in canonical lexicographic term order — exactly the order the
	// single-shard Searcher and the reference scorer accumulate in, so
	// per-document float64 sums are bit-identical.
	sort.Slice(refs, func(i, j int) bool { return refs[i].tok < refs[j].tok })

	acc := &sc.acc
	if cap(acc.suffix) < len(refs)+1 {
		acc.suffix = make([]float64, len(refs)+1)
	}
	suffix := acc.suffix[:len(refs)+1]
	acc.suffix = suffix
	suffix[len(refs)] = 0
	for i := len(refs) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + refs[i].sh.maxScore[refs[i].tid]
	}

	updateOnly := false
	threshold := math.Inf(-1)
	touchedAtThreshold := -1
	for i, r := range refs {
		if k > 0 && !updateOnly && len(acc.touched) >= k {
			// Same admission bound as Searcher.Search: the kth largest
			// partial score only grows, so once it clears what any unseen
			// document could still reach, stop registering new candidates.
			if threshold > suffix[i]+1e-9 {
				updateOnly = true
			} else if touchedAtThreshold < 0 || len(acc.touched) > touchedAtThreshold+touchedAtThreshold/4 {
				threshold = acc.kthLargest(k)
				touchedAtThreshold = len(acc.touched)
				if threshold > suffix[i]+1e-9 {
					updateOnly = true
				}
			}
		}
		idf := r.sh.idf[r.tid]
		for f := 0; f < int(numFields); f++ {
			lo, hi := r.sh.off[f][r.tid], r.sh.off[f][r.tid+1]
			ds := r.sh.docs[f][lo:hi]
			ws := r.sh.wts[f][lo:hi]
			for j, d := range ds {
				w := idf * float64(ws[j])
				if acc.gen[d] == acc.cur {
					acc.score[d] += w
				} else if !updateOnly {
					acc.gen[d] = acc.cur
					acc.score[d] = w
					acc.touched = append(acc.touched, d)
				}
			}
		}
	}
	return ss.collect(acc, k)
}

// worseDoc mirrors Searcher.worseDoc over the shared doc table.
func (ss *ShardedSearcher) worseDoc(acc *accumulator, a, b int32) bool {
	sa, sb := acc.score[a], acc.score[b]
	if sa != sb {
		return sa < sb
	}
	return ss.IDOf(a) > ss.IDOf(b)
}

// collect mirrors Searcher.collect.
func (ss *ShardedSearcher) collect(acc *accumulator, k int) []Hit {
	if len(acc.touched) == 0 {
		return nil
	}
	winners := acc.touched
	if k > 0 {
		winners = topKSelect(acc.touched, k, func(a, b int32) bool { return ss.worseDoc(acc, a, b) })
	}
	hits := make([]Hit, len(winners))
	for i, d := range winners {
		hits[i] = Hit{ID: ss.IDOf(d), Score: acc.score[d]}
	}
	sort.Slice(hits, func(i, j int) bool { return betterHit(hits[i], hits[j]) })
	return hits
}

// termDocs mirrors Searcher.termDocs over one shard.
func (sh *shard) termDocs(ti int32, fields []Field) []int32 {
	var lists [int(numFields)][]int32
	var used [int(numFields)]bool
	n := 0
	for _, f := range fields {
		if used[f] {
			continue
		}
		used[f] = true
		lo, hi := sh.off[f][ti], sh.off[f][ti+1]
		if lo < hi {
			lists[n] = sh.docs[f][lo:hi]
			n++
		}
	}
	return mergeSortedDocLists(lists[:n])
}

// DocsWithToken returns the sorted doc set containing tok in any of the
// given fields — equivalent to Searcher.DocsWithToken. A term's postings
// live wholly in its home shard, and doc numbers are global, so no
// cross-shard merge is needed.
func (ss *ShardedSearcher) DocsWithToken(tok string, fields ...Field) []int32 {
	if ss.numDocs == 0 {
		return nil
	}
	sh := ss.shards[shardOfToken(tok, ss.shardCount)]
	ti, ok := sh.lookup(tok)
	if !ok {
		return nil
	}
	return sh.termDocs(ti, fields)
}

// DocSet returns the sorted set of documents containing all tokens, each
// in at least one of the given fields — equivalent to Searcher.DocSet.
// Tokens resolve to their home shards; the intersection runs over global
// doc numbers, rarest term first with lexicographic tie-breaks (the same
// order the single-shard Searcher uses, whose term IDs are lexicographic
// ranks).
func (ss *ShardedSearcher) DocSet(tokens []string, fields ...Field) []int32 {
	if ss.numDocs == 0 {
		return nil
	}
	refs := make([]termRef, 0, len(tokens))
	seen := make(map[string]bool, len(tokens))
	for _, tok := range tokens {
		if seen[tok] {
			continue
		}
		seen[tok] = true
		sh := ss.shards[shardOfToken(tok, ss.shardCount)]
		ti, ok := sh.lookup(tok)
		if !ok {
			return nil // a token absent from the corpus empties the set
		}
		refs = append(refs, termRef{tok: tok, sh: sh, tid: ti})
	}
	if len(refs) == 0 {
		return nil
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].sh.df[refs[i].tid] != refs[j].sh.df[refs[j].tid] {
			return refs[i].sh.df[refs[i].tid] < refs[j].sh.df[refs[j].tid]
		}
		return refs[i].tok < refs[j].tok
	})
	set := refs[0].sh.termDocs(refs[0].tid, fields)
	for _, r := range refs[1:] {
		if len(set) == 0 {
			return nil
		}
		set = intersectSorted(set, r.sh.termDocs(r.tid, fields))
	}
	return set
}
