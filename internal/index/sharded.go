package index

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// ShardedSearcher is the sharded, disk-resident form of the frozen
// Searcher: postings are partitioned by term hash into independent shards,
// each holding its own term table and CSR arrays, while the doc table
// (doc number → table ID) is shared. A probe scatters across shards in
// parallel — each shard resolves its slice of the query terms and
// prefaults their posting pages — and the gather accumulates contributions
// in the same canonical lexicographic term order as the single-shard
// Searcher, so hits are bit-identical (IDs, scores, order, tie-breaks)
// for every shard count. Term-hash sharding keeps every per-term quantity
// (idf, df, max-score bound, posting list) exactly equal to its
// single-shard value, which is what makes the canonical-order gather
// exact rather than merely approximate.
//
// A ShardedSearcher is immutable and safe for concurrent use (the pruning
// counters are atomics). When opened from disk (OpenSharded) its arrays
// alias the file mapping: results must not outlive Close.
//
// Scoring itself is the shared gather (gather.go) — the same code path the
// single-shard Searcher runs, so the two cannot drift apart
// (TestShardedSearcherEquivalence pins them anyway). On top of it, a probe
// with block summaries on every shard runs a floor-seeding pre-pass: shards
// are ranked by their score upper bound (the sum of their resolved terms'
// max-scores), the best one or two are scored into a throwaway generation
// to establish a top-k floor, and shards whose bound cannot beat that floor
// are pruned from the scatter — their pages are never prefaulted, and under
// the preseeded floor the main gather touches at most their block
// summaries. The main gather always processes every resolved term in
// canonical order, so hits stay bit-identical at every shard count.
type ShardedSearcher struct {
	numDocs    int
	shardCount int

	// Doc table: either materialized strings (in-memory construction) or
	// an offsets+blob view into the docs file (flat construction).
	ids    []string
	idOffs []int64
	idBlob []byte

	shards      []*shard
	shardPruned []atomic.Uint64 // per shard: probes that pruned its scatter
	pool        sync.Pool       // *shardedScratch
	closers     []func() error
	mmapped     bool
}

// shard is one term-hash partition: a term table in lexicographic order
// plus the per-field CSR arrays over the shared doc space. The single-shard
// Searcher holds its whole corpus as one shard, so the scoring gather is
// shared verbatim.
//
// A flat-opened shard's arrays are zero-copy views over its postings
// file's mapping; the Searcher/ShardedSearcher that opened it owns the
// mapping and its Close is the unmap point (mmapalias invariant).
//
//wwt:mmap-owner
type shard struct {
	numTerms int

	names    []string // in-memory construction
	termOffs []int64  // flat construction
	termBlob []byte

	idf      []float64
	maxScore []float64
	bestW    []float64 // per term: max per-doc cross-field weight sum (idf-free)
	df       []int32

	off  [numFields][]int32
	docs [numFields][]int32
	wts  [numFields][]float32

	// Block-max summaries (gather.go). blockSize == 0 (a v1 file) means no
	// summaries: the gather falls back to the term-level skip alone, with
	// identical results.
	blockSize int
	blkOff    [numFields][]int32   // per term: cumulative block counts (numTerms+1)
	blkMax    [numFields][]float32 // per block: max posting weight
	blkDoc    [numFields][]int32   // per block: first doc ID
	fieldMaxW [numFields][]float32 // per term: max posting weight in the field
}

// shardOfToken is the stable (cross-process) term→shard assignment:
// FNV-1a 64 over the token bytes, mod the shard count. Inlined so probes
// don't allocate a hash.Hash per token.
func shardOfToken(tok string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(tok); i++ {
		h ^= uint64(tok[i])
		h *= 1099511628211
	}
	return int(h % uint64(n))
}

// termName returns term i's token.
func (sh *shard) termName(i int32) string {
	if sh.names != nil {
		return sh.names[i]
	}
	return unsafeString(sh.termBlob[sh.termOffs[i]:sh.termOffs[i+1]])
}

// lookup binary-searches the shard's lexicographic term table — no map to
// build at open time, so opening stays O(1) in corpus size.
func (sh *shard) lookup(tok string) (int32, bool) {
	lo, hi := int32(0), int32(sh.numTerms)
	for lo < hi {
		mid := int32(uint32(lo+hi) >> 1)
		if sh.termName(mid) < tok {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < int32(sh.numTerms) && sh.termName(lo) == tok {
		return lo, true
	}
	return 0, false
}

// NewShardedFromSearcher partitions a frozen Searcher's terms by hash into
// n shards, copying each term's CSR ranges into its home shard. Per-term
// statistics (idf, df, maxScore) carry over unchanged — term-hash
// sharding does not alter them. The doc table is shared with s.
func NewShardedFromSearcher(s *Searcher, n int) *ShardedSearcher {
	if n < 1 {
		n = 1
	}
	ss := &ShardedSearcher{
		numDocs:     s.numDocs,
		shardCount:  n,
		ids:         s.ids,
		shards:      make([]*shard, n),
		shardPruned: make([]atomic.Uint64, n),
	}
	src := s.sh
	perShard := make([][]int32, n)
	for ti, name := range src.names {
		g := shardOfToken(name, n)
		perShard[g] = append(perShard[g], int32(ti))
	}
	for g := 0; g < n; g++ {
		tids := perShard[g] // ascending global term IDs = lexicographic order
		sh := &shard{
			numTerms: len(tids),
			names:    make([]string, len(tids)),
			idf:      make([]float64, len(tids)),
			maxScore: make([]float64, len(tids)),
			bestW:    make([]float64, len(tids)),
			df:       make([]int32, len(tids)),
		}
		for f := 0; f < int(numFields); f++ {
			total := 0
			for _, ti := range tids {
				total += int(src.off[f][ti+1] - src.off[f][ti])
			}
			sh.off[f] = make([]int32, len(tids)+1)
			sh.docs[f] = make([]int32, 0, total)
			sh.wts[f] = make([]float32, 0, total)
		}
		for li, ti := range tids {
			sh.names[li] = src.names[ti]
			sh.idf[li] = src.idf[ti]
			sh.maxScore[li] = src.maxScore[ti]
			sh.bestW[li] = src.bestW[ti]
			sh.df[li] = src.df[ti]
			for f := 0; f < int(numFields); f++ {
				lo, hi := src.off[f][ti], src.off[f][ti+1]
				sh.off[f][li] = int32(len(sh.docs[f]))
				sh.docs[f] = append(sh.docs[f], src.docs[f][lo:hi]...)
				sh.wts[f] = append(sh.wts[f], src.wts[f][lo:hi]...)
			}
		}
		for f := 0; f < int(numFields); f++ {
			sh.off[f][len(tids)] = int32(len(sh.docs[f]))
		}
		sh.computeBlocks(src.blockSize)
		ss.shards[g] = sh
	}
	return ss
}

// shardFileName names shard g's postings file inside an index directory.
func shardFileName(g int) string { return fmt.Sprintf("postings-%03d.wwt", g) }

// DocsFileName is the shared doc-table file of a flat sharded index; its
// presence marks a directory as holding one.
const DocsFileName = "docs.wwt"

// maxShards bounds the builder: beyond this, per-shard overhead dwarfs any
// fan-out win and the file-per-shard layout stops making sense.
const maxShards = 4096

// WriteShardedOptions configures WriteShardedWith.
type WriteShardedOptions struct {
	// FormatVersion selects the flat layout: 1 writes WWTFLT01 (no block
	// summaries, readable by older builds), 2 writes WWTFLT02 (block-max
	// postings). 0 means 2.
	FormatVersion int
	// BlockSize is the v2 posting-block width. 0 means DefaultBlockSize;
	// an explicit non-positive value is rejected. Ignored for version 1.
	BlockSize int
}

// maxSectionInt32 bounds per-field posting counts: the CSR offsets (and
// the v2 block counts derived from them) are int32 section arrays. A var
// so tests can exercise the bound without a 2^31-posting corpus.
var maxSectionInt32 = math.MaxInt32

// WriteSharded persists a frozen Searcher as a flat sharded index under
// dir in the current format version (2): one shared doc-table file plus
// nShards postings files, each in the versioned mmap-friendly layout
// described in the package documentation.
func WriteSharded(dir string, s *Searcher, nShards int) error {
	return WriteShardedWith(dir, s, nShards, WriteShardedOptions{})
}

// WriteShardedWith is WriteSharded with an explicit format version and
// block size. Invalid options fail before any file is written.
func WriteShardedWith(dir string, s *Searcher, nShards int, opts WriteShardedOptions) error {
	if nShards < 1 {
		nShards = 1
	}
	if nShards > maxShards {
		return fmt.Errorf("index write: %d shards exceeds the %d-shard limit", nShards, maxShards)
	}
	version := opts.FormatVersion
	if version == 0 {
		version = flatFormatVersion2
	}
	if version != flatFormatVersion && version != flatFormatVersion2 {
		return fmt.Errorf("index write: flat format version %d not supported, this build writes %d (%s) and %d (%s)",
			version, flatFormatVersion, flatMagic, flatFormatVersion2, flatMagicV2)
	}
	blockSize := opts.BlockSize
	if version == flatFormatVersion2 {
		if blockSize == 0 {
			blockSize = DefaultBlockSize
		}
		if blockSize <= 0 {
			return fmt.Errorf("index write: flat format v2 (%s) requires a positive block size, got %d", flatMagicV2, opts.BlockSize)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("index write: %w", err)
	}
	ss := NewShardedFromSearcher(s, nShards)
	for g, sh := range ss.shards {
		for f := 0; f < int(numFields); f++ {
			if n := len(sh.docs[f]); n > maxSectionInt32 {
				return fmt.Errorf("index write: flat format v%d: shard %d field %s has %d postings, over the int32 section-offset bound (%d); rebuild with more shards",
					version, g, Field(f), n, maxSectionInt32)
			}
		}
	}
	idOffs, idBlob := packStrings(s.ids)
	err := writeFlatFile(filepath.Join(dir, DocsFileName), uint32(version), 0, kindDocs, 0, uint32(nShards),
		uint64(s.numDocs), 0, []section{
			{secIDOffs, int64Bytes(idOffs)},
			{secIDBlob, idBlob},
		})
	if err != nil {
		return fmt.Errorf("index write: %w", err)
	}
	for g, sh := range ss.shards {
		termOffs, termBlob := packStrings(sh.names)
		secs := []section{
			{secTermOffs, int64Bytes(termOffs)},
			{secTermBlob, termBlob},
			{secIDF, float64Bytes(sh.idf)},
			{secMaxScore, float64Bytes(sh.maxScore)},
			{secDF, int32Bytes(sh.df)},
			// The idf-free best weight backs multi-segment bounds; old
			// readers ignore the unknown section ID.
			{secBestWeight, float64Bytes(sh.bestW)},
		}
		for f := 0; f < int(numFields); f++ {
			secs = append(secs,
				section{secFieldOff(f), int32Bytes(sh.off[f])},
				section{secFieldDocs(f), int32Bytes(sh.docs[f])},
				section{secFieldWts(f), float32Bytes(sh.wts[f])},
			)
		}
		shardBlockSize := 0
		if version == flatFormatVersion2 {
			shardBlockSize = blockSize
			if sh.blockSize != blockSize {
				sh.computeBlocks(blockSize)
			}
			for f := 0; f < int(numFields); f++ {
				secs = append(secs,
					section{secFieldBlkOff(f), int32Bytes(sh.blkOff[f])},
					section{secFieldBlkMax(f), float32Bytes(sh.blkMax[f])},
					section{secFieldBlkDoc(f), int32Bytes(sh.blkDoc[f])},
					section{secFieldFieldMax(f), float32Bytes(sh.fieldMaxW[f])},
				)
			}
		}
		err := writeFlatFile(filepath.Join(dir, shardFileName(g)), uint32(version), uint32(shardBlockSize), kindPostings,
			uint32(g), uint32(nShards), uint64(s.numDocs), uint64(sh.numTerms), secs)
		if err != nil {
			return fmt.Errorf("index write: %w", err)
		}
	}
	return nil
}

// OpenSharded opens a flat sharded index written by WriteSharded. Opening
// is O(1) in corpus size: the files are page-mapped (or read whole where
// mmap is unavailable) and only headers are validated — no decode, no
// map building. The returned searcher's strings and arrays alias the
// mappings; results must not outlive Close. A directory without a flat
// index fails with an error wrapping fs.ErrNotExist, so callers can fall
// back to the gob path.
func OpenSharded(dir string) (*ShardedSearcher, error) {
	return openSharded(dir, false)
}

// openSharded is OpenSharded with a switch forcing the portable
// read-into-memory path (exercised by tests; also the only path on
// platforms without mmap).
func openSharded(dir string, noMmap bool) (*ShardedSearcher, error) {
	df, err := openFlatFile(filepath.Join(dir, DocsFileName), noMmap)
	if err != nil {
		return nil, err
	}
	ss := &ShardedSearcher{mmapped: !noMmap}
	ss.closers = append(ss.closers, df.Close)
	fail := func(e error) (*ShardedSearcher, error) {
		ss.Close()
		return nil, e
	}
	if df.kind != kindDocs {
		return fail(df.corrupt("file kind %d, want doc table (%d)", df.kind, kindDocs))
	}
	if df.shardCount < 1 || df.shardCount > maxShards {
		return fail(df.corrupt("shard count %d out of range", df.shardCount))
	}
	ss.numDocs = int(df.numDocs)
	ss.shardCount = int(df.shardCount)
	if ss.idOffs, err = df.int64Sec(secIDOffs, ss.numDocs+1); err != nil {
		return fail(err)
	}
	if ss.idBlob, err = df.sec(secIDBlob); err != nil {
		return fail(err)
	}
	if ss.numDocs > 0 && int(ss.idOffs[ss.numDocs]) != len(ss.idBlob) {
		return fail(df.corrupt("doc-ID blob is %d bytes, offsets end at %d", len(ss.idBlob), ss.idOffs[ss.numDocs]))
	}
	ss.shards = make([]*shard, ss.shardCount)
	ss.shardPruned = make([]atomic.Uint64, ss.shardCount)
	for g := 0; g < ss.shardCount; g++ {
		pf, err := openFlatFile(filepath.Join(dir, shardFileName(g)), noMmap)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return fail(fmt.Errorf("index open %s: shard file %s missing (doc table says %d shards): %w",
					dir, shardFileName(g), ss.shardCount, err))
			}
			return fail(err)
		}
		ss.closers = append(ss.closers, pf.Close)
		sh, err := openShardFile(pf, g, ss.shardCount, ss.numDocs)
		if err != nil {
			return fail(err)
		}
		ss.shards[g] = sh
	}
	return ss, nil
}

// openShardFile validates one postings file's header against the doc
// table and aliases its sections into a shard.
func openShardFile(pf *flatFile, g, shardCount, numDocs int) (*shard, error) {
	if pf.kind != kindPostings {
		return nil, pf.corrupt("file kind %d, want postings shard (%d)", pf.kind, kindPostings)
	}
	if int(pf.shardIndex) != g || int(pf.shardCount) != shardCount {
		return nil, pf.corrupt("shard %d/%d, doc table says %d/%d — files from different builds mixed in one directory?",
			pf.shardIndex, pf.shardCount, g, shardCount)
	}
	if int(pf.numDocs) != numDocs {
		return nil, pf.corrupt("shard built over %d docs, doc table has %d — files from different builds mixed in one directory?",
			pf.numDocs, numDocs)
	}
	sh := &shard{numTerms: int(pf.numTerms)}
	var err error
	if sh.termOffs, err = pf.int64Sec(secTermOffs, sh.numTerms+1); err != nil {
		return nil, err
	}
	if sh.termBlob, err = pf.sec(secTermBlob); err != nil {
		return nil, err
	}
	if sh.numTerms > 0 && int(sh.termOffs[sh.numTerms]) != len(sh.termBlob) {
		return nil, pf.corrupt("term blob is %d bytes, offsets end at %d", len(sh.termBlob), sh.termOffs[sh.numTerms])
	}
	if sh.idf, err = pf.float64Sec(secIDF, sh.numTerms); err != nil {
		return nil, err
	}
	if sh.maxScore, err = pf.float64Sec(secMaxScore, sh.numTerms); err != nil {
		return nil, err
	}
	if sh.df, err = pf.int32Sec(secDF, sh.numTerms); err != nil {
		return nil, err
	}
	if pf.hasSec(secBestWeight) {
		if sh.bestW, err = pf.float64Sec(secBestWeight, sh.numTerms); err != nil {
			return nil, err
		}
	} else {
		// Files written before the best-weight section carry only
		// maxScore = idf·bestW. Dividing the rounding back out can land a
		// hair below the true bestW, so pad by one ulp-scale factor — the
		// value is only ever used as an upper bound, never in scores.
		sh.bestW = make([]float64, sh.numTerms)
		for t := 0; t < sh.numTerms; t++ {
			if sh.idf[t] > 0 {
				sh.bestW[t] = sh.maxScore[t] / sh.idf[t] * (1 + 1e-12)
			}
		}
	}
	for f := 0; f < int(numFields); f++ {
		if sh.off[f], err = pf.int32Sec(secFieldOff(f), sh.numTerms+1); err != nil {
			return nil, err
		}
		count := int(sh.off[f][sh.numTerms])
		if sh.docs[f], err = pf.int32Sec(secFieldDocs(f), count); err != nil {
			return nil, err
		}
		if sh.wts[f], err = pf.float32Sec(secFieldWts(f), count); err != nil {
			return nil, err
		}
	}
	if pf.version >= flatFormatVersion2 {
		// v2: block-max summaries. Validation stays O(1) in corpus size —
		// section byte counts are cross-checked against the block counts
		// declared by the last blkOff entry.
		if pf.blockSize <= 0 {
			return nil, pf.corrupt("flat v2 header declares block size %d, want > 0", pf.blockSize)
		}
		sh.blockSize = pf.blockSize
		for f := 0; f < int(numFields); f++ {
			if sh.blkOff[f], err = pf.int32Sec(secFieldBlkOff(f), sh.numTerms+1); err != nil {
				return nil, err
			}
			nb := 0
			if sh.numTerms > 0 {
				nb = int(sh.blkOff[f][sh.numTerms])
			}
			if nb < 0 {
				return nil, pf.corrupt("field %s declares %d posting blocks", Field(f), nb)
			}
			if sh.blkMax[f], err = pf.float32Sec(secFieldBlkMax(f), nb); err != nil {
				return nil, err
			}
			if sh.blkDoc[f], err = pf.int32Sec(secFieldBlkDoc(f), nb); err != nil {
				return nil, err
			}
			if sh.fieldMaxW[f], err = pf.float32Sec(secFieldFieldMax(f), sh.numTerms); err != nil {
				return nil, err
			}
		}
	}
	return sh, nil
}

// Close releases the file mappings of a disk-opened searcher. Hits, doc
// IDs and doc sets returned earlier alias the mappings and must not be
// used afterwards. Close on an in-memory searcher is a no-op.
func (ss *ShardedSearcher) Close() error {
	var first error
	for _, c := range ss.closers {
		if err := c(); err != nil && first == nil {
			first = err
		}
	}
	ss.closers = nil
	return first
}

// Len returns the number of indexed documents.
func (ss *ShardedSearcher) Len() int { return ss.numDocs }

// Shards returns the shard count.
func (ss *ShardedSearcher) Shards() int { return ss.shardCount }

// Mmapped reports whether the searcher aliases file mappings (as opposed
// to heap-resident arrays).
func (ss *ShardedSearcher) Mmapped() bool { return ss.mmapped }

// NumTerms returns the total distinct terms across shards.
func (ss *ShardedSearcher) NumTerms() int {
	n := 0
	for _, sh := range ss.shards {
		n += sh.numTerms
	}
	return n
}

// IDOf returns the table ID of an internal doc number. For disk-opened
// searchers the string aliases the mapping (zero-copy).
func (ss *ShardedSearcher) IDOf(doc int32) string {
	if ss.ids != nil {
		return ss.ids[doc]
	}
	return unsafeString(ss.idBlob[ss.idOffs[doc]:ss.idOffs[doc+1]])
}

// IDF returns the smoothed inverse document frequency of a token,
// identical to Index.IDF: the per-term value was computed at freeze time,
// and the unknown-token case recomputes the same smoothed formula.
func (ss *ShardedSearcher) IDF(tok string) float64 {
	if ss.numDocs == 0 {
		return 1
	}
	sh := ss.shards[shardOfToken(tok, ss.shardCount)]
	if ti, ok := sh.lookup(tok); ok {
		return sh.idf[ti]
	}
	return math.Log(1 + float64(ss.numDocs))
}

// TermStats returns a token's union document frequency and total posting
// entries across all fields, read from the token's home shard — identical
// to Searcher.TermStats at every shard count. Unknown tokens report
// ok=false.
func (ss *ShardedSearcher) TermStats(tok string) (df int32, postings int, ok bool) {
	sh := ss.shards[shardOfToken(tok, ss.shardCount)]
	ti, ok := sh.lookup(tok)
	if !ok {
		return 0, 0, false
	}
	for f := 0; f < int(numFields); f++ {
		postings += int(sh.off[f][ti+1] - sh.off[f][ti])
	}
	return sh.df[ti], postings, true
}

// HasTerm reports whether the token occurs in this index. Generation
// swaps use it to decide which cached doc sets a new segment staled.
func (ss *ShardedSearcher) HasTerm(tok string) bool {
	_, ok := ss.shards[shardOfToken(tok, ss.shardCount)].lookup(tok)
	return ok
}

// termRef is one resolved query term: its home shard and local term ID,
// plus the token for canonical (lexicographic) ordering at gather time.
// The per-term statistics (df, idf, max-score bound) are carried on the
// ref rather than read from the shard arrays so a multi-segment probe can
// substitute corpus-global values: a segment's shard only knows its own
// doc population, but MultiSearcher scores every segment under the global
// df/idf, which is what keeps multi-segment sums bit-identical to a
// single rebuilt index. Single-index probes populate the fields from the
// shard arrays, so behavior there is unchanged.
type termRef struct {
	tok  string
	sh   *shard
	tid  int32
	df   int32   // document frequency (corpus-global in multi probes)
	idf  float64 // smoothed IDF the gather multiplies by
	maxS float64 // per-doc contribution bound: idf · best cross-field weight sum
}

// fill populates a ref's carried statistics from its home shard — the
// single-index case, where shard-local and corpus-global values coincide.
func (r *termRef) fill() {
	r.df = r.sh.df[r.tid]
	r.idf = r.sh.idf[r.tid]
	r.maxS = r.sh.maxScore[r.tid]
}

// shardedScratch is the pooled per-probe state: the dense accumulator
// (shared layout with the single-shard Searcher) plus the scatter-side
// buffers (token dedup, per-shard token groups, resolved refs, and the
// pruning pre-pass's shard ordering).
type shardedScratch struct {
	acc       accumulator
	seen      map[string]bool
	refs      []termRef
	groups    [][]string
	shardRefs [][]termRef
	order     []int     // shards with refs, sorted by descending bound
	bounds    []float64 // per entry of order: shard score upper bound
}

func (ss *ShardedSearcher) getScratch() *shardedScratch {
	sc, _ := ss.pool.Get().(*shardedScratch)
	if sc == nil {
		sc = &shardedScratch{}
	}
	a := &sc.acc
	if len(a.score) < ss.numDocs {
		a.score = make([]float64, ss.numDocs)
		a.gen = make([]uint32, ss.numDocs)
		a.cur = 0
	}
	a.nextGen()
	if sc.seen == nil {
		sc.seen = make(map[string]bool, 16)
	}
	clear(sc.seen)
	if len(sc.groups) != ss.shardCount {
		sc.groups = make([][]string, ss.shardCount)
		sc.shardRefs = make([][]termRef, ss.shardCount)
	}
	return sc
}

// prefetchSink defeats dead-code elimination of the page-prefault loads.
var prefetchSink atomic.Uint64

// resolve is the per-shard scatter step: look up each token in the shard's
// term table and, when prefault is set, touch its posting pages (one load
// per 4KiB) so cold pages of different shards fault in concurrently
// instead of serially inside the gather loop. The pruning pre-pass
// resolves first and prefaults only the shards that survive.
func (sh *shard) resolve(toks []string, out []termRef, prefault bool) []termRef {
	start := len(out)
	for _, tok := range toks {
		if tid, ok := sh.lookup(tok); ok {
			r := termRef{tok: tok, sh: sh, tid: tid}
			r.fill()
			out = append(out, r)
		}
	}
	if prefault {
		sh.prefault(out[start:])
	}
	return out
}

// prefault touches the posting pages of already-resolved refs.
func (sh *shard) prefault(refs []termRef) {
	var touch uint64
	for _, r := range refs {
		for f := 0; f < int(numFields); f++ {
			lo, hi := sh.off[f][r.tid], sh.off[f][r.tid+1]
			for p := lo; p < hi; p += 1024 { // 1024 int32s per 4KiB page
				touch += uint64(sh.docs[f][p]) + uint64(math.Float32bits(sh.wts[f][p]))
			}
			if hi > lo {
				touch += uint64(sh.docs[f][hi-1])
			}
		}
	}
	if touch != 0 {
		prefetchSink.Add(touch)
	}
}

// passAShardCap bounds how many shards the floor-seeding pre-pass scores:
// on a skewed corpus the top-bound shard alone sets a floor that prunes
// the rest, and on a uniform corpus scanning more shards twice would cost
// more than the pruning saves.
const passAShardCap = 2

// passASkewFactor is the bound-skew threshold arming the pre-pass: the
// top shard's score bound must exceed the weakest involved shard's by this
// factor before the double scan of the top shards can plausibly pay for
// itself in pruned prefaults and closed blocks.
const passASkewFactor = 4

// Search scores a union-of-keywords query and returns the top k hits (all
// hits when k <= 0), bit-identical to the single-shard Searcher at every
// shard count.
func (ss *ShardedSearcher) Search(tokens []string, k int) []Hit {
	hits, _ := ss.SearchStats(tokens, k)
	return hits
}

// SearchStats is Search plus the probe's skip and shard-pruning counters.
//
// The scatter phase resolves each involved shard's terms concurrently.
// When every shard carries block summaries and k > 0, a floor-seeding
// pre-pass then scores the highest-bound shard(s) into a throwaway
// accumulator generation: shards whose score upper bound cannot beat the
// resulting floor are pruned — never prefaulted — while the survivors
// prefault their posting pages concurrently. The main gather accumulates
// every resolved term (pruned shards included: their terms still
// contribute to documents shared with other shards) in canonical
// lexicographic order with the threshold preseeded to the floor, so
// pruned shards' lists open as closed blocks and are mostly skipped.
func (ss *ShardedSearcher) SearchStats(tokens []string, k int) ([]Hit, ProbeStats) {
	var st ProbeStats
	if len(tokens) == 0 || ss.numDocs == 0 {
		return nil, st
	}
	sc := ss.getScratch()
	defer ss.pool.Put(sc)

	// Group unique tokens by home shard (the scatter input).
	active := 0
	for i := range sc.groups {
		sc.groups[i] = sc.groups[i][:0]
		sc.shardRefs[i] = sc.shardRefs[i][:0]
	}
	for _, tok := range tokens {
		if sc.seen[tok] {
			continue
		}
		sc.seen[tok] = true
		g := shardOfToken(tok, ss.shardCount)
		if len(sc.groups[g]) == 0 {
			active++
		}
		sc.groups[g] = append(sc.groups[g], tok)
	}

	// The pre-pass needs block summaries everywhere: without them the main
	// gather would rescan pruned shards' postings in full and the pre-pass
	// would be pure overhead. v1 indexes scatter exactly as before.
	pruning := k > 0 && active > 1
	for g := range sc.groups {
		if len(sc.groups[g]) > 0 && !ss.shards[g].hasBlocks() {
			pruning = false
			break
		}
	}

	// Scatter. With a pruning pre-pass ahead, resolution is lookup-only (a
	// few binary searches per shard) — run it serially rather than pay a
	// goroutine wave; the page prefaulting that justifies fan-out happens
	// after the prune decision, for surviving shards only. Without the
	// pre-pass, resolve and prefault each involved shard concurrently as
	// before. Every goroutine writes only its own shardRefs slot.
	if active > 1 && !pruning {
		var wg sync.WaitGroup
		for g := range sc.groups {
			if len(sc.groups[g]) == 0 {
				continue
			}
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				sc.shardRefs[g] = ss.shards[g].resolve(sc.groups[g], sc.shardRefs[g], true)
			}(g)
		}
		wg.Wait()
	} else {
		for g := range sc.groups {
			if len(sc.groups[g]) > 0 {
				sc.shardRefs[g] = ss.shards[g].resolve(sc.groups[g], sc.shardRefs[g], !pruning)
			}
		}
	}

	floor := math.Inf(-1)
	if pruning {
		floor = ss.passA(sc, k, &st)
	} else {
		for g := range sc.groups {
			if len(sc.groups[g]) > 0 {
				st.ShardsProbed++
			}
		}
	}

	refs := sc.refs[:0]
	for _, rs := range sc.shardRefs {
		refs = append(refs, rs...)
	}
	sc.refs = refs
	if len(refs) == 0 {
		return nil, st
	}
	// Gather in canonical term order — df ascending, token ascending on
	// ties, exactly the order the single-shard Searcher and the reference
	// scorer accumulate in, so per-document float64 sums are bit-identical.
	sortRefs(refs)
	gather(&sc.acc, refs, k, floor, &st)
	return ss.collect(&sc.acc, k), st
}

// passA is the floor-seeding pre-pass: rank shards by their score upper
// bound (the sum of their resolved terms' max-scores), score the top
// shard(s) into a throwaway accumulator generation, and prune the scatter
// of every shard whose bound cannot beat the established floor. Pruning is
// a prefault decision only — the main gather still sees every resolved
// term — so a too-aggressive floor can cost speed, never correctness. The
// returned floor is a valid lower bound on the kth-best final score: it is
// the kth-largest sum of real (partial) contributions. Shards neither
// scanned nor pruned prefault concurrently before this returns.
func (ss *ShardedSearcher) passA(sc *shardedScratch, k int, st *ProbeStats) float64 {
	sc.order = sc.order[:0]
	sc.bounds = sc.bounds[:0]
	for g := range sc.shardRefs {
		if len(sc.shardRefs[g]) == 0 {
			continue
		}
		b := 0.0
		for _, r := range sc.shardRefs[g] {
			b += r.maxS
		}
		sc.order = append(sc.order, g)
		sc.bounds = append(sc.bounds, b)
	}
	sort.Sort(&shardsByBound{sc.order, sc.bounds})

	floor := math.Inf(-1)
	acc := &sc.acc
	scanned := 0
	prunedFrom := len(sc.order)
	// Bound-skew gate: the pre-pass rescans its top shards, so it only pays
	// when the bound profile is skewed — a floor built from the top shard's
	// real scores has to plausibly beat the weakest shard's bound. On a flat
	// profile (every shard could reach comparable scores) no floor can prune
	// anything, and the pre-pass would be pure double work: fall through to
	// an ordinary prefault of every involved shard.
	if n := len(sc.order); n > 1 && sc.bounds[0] > passASkewFactor*sc.bounds[n-1] {
		var subStats ProbeStats // pre-pass work is not part of Postings totals
		for idx, g := range sc.order {
			if floor > sc.bounds[idx]+1e-9 {
				// Neither this shard nor any lower-bound one can lift a new
				// document into the top k on its own: skip their prefault.
				prunedFrom = idx
				break
			}
			if scanned >= passAShardCap {
				continue // bound not beaten, but pre-pass budget spent
			}
			scanned++
			rs := sc.shardRefs[g]
			sortRefs(rs)
			gather(acc, rs, k, floor, &subStats)
			if len(acc.touched) >= k {
				if t := acc.kthLargest(k); t > floor {
					floor = t
				}
			}
		}
		st.Scanned += subStats.Scanned
		st.BlocksTotal += subStats.BlocksTotal
		st.BlocksSkipped += subStats.BlocksSkipped
	}
	st.ShardsPruned = len(sc.order) - prunedFrom
	st.ShardsProbed = prunedFrom

	// Prune the tail; prefault the surviving shards the pre-pass did not
	// already warm, concurrently as the plain scatter would have.
	for _, g := range sc.order[prunedFrom:] {
		ss.shardPruned[g].Add(1)
	}
	survivors := sc.order[:prunedFrom]
	need := 0
	for idx := range survivors {
		if idx >= scanned {
			need++
		}
	}
	if need == 1 {
		// One cold shard: faulting it from this goroutine is cheaper than
		// spawning one.
		for idx, g := range survivors {
			if idx >= scanned {
				ss.shards[g].prefault(sc.shardRefs[g])
			}
		}
	} else if need > 1 {
		var wg sync.WaitGroup
		for idx, g := range survivors {
			if idx < scanned {
				continue // pre-pass scan already faulted these pages in
			}
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				ss.shards[g].prefault(sc.shardRefs[g])
			}(g)
		}
		wg.Wait()
	}

	// Fresh generation for the canonical main gather; the pre-pass floor
	// carries over as the preseeded admission threshold.
	acc.nextGen()
	return floor
}

// sortRefs puts resolved term refs into the canonical accumulation order:
// df ascending, token ascending on ties (the same order the reference
// scorer and the single-shard Searcher use — per-document float64 sums
// depend on it).
func sortRefs(refs []termRef) {
	slices.SortFunc(refs, func(a, b termRef) int {
		if a.df != b.df {
			return int(a.df - b.df)
		}
		return strings.Compare(a.tok, b.tok)
	})
}

// shardsByBound sorts shard indices by descending bound, shard index
// ascending on ties — a deterministic pre-pass order.
type shardsByBound struct {
	order  []int
	bounds []float64
}

func (s *shardsByBound) Len() int { return len(s.order) }
func (s *shardsByBound) Less(i, j int) bool {
	if s.bounds[i] != s.bounds[j] {
		return s.bounds[i] > s.bounds[j]
	}
	return s.order[i] < s.order[j]
}
func (s *shardsByBound) Swap(i, j int) {
	s.order[i], s.order[j] = s.order[j], s.order[i]
	s.bounds[i], s.bounds[j] = s.bounds[j], s.bounds[i]
}

// ShardPruneCounts returns, per shard, how many probes pruned that shard's
// scatter since the searcher was opened.
func (ss *ShardedSearcher) ShardPruneCounts() []uint64 {
	out := make([]uint64, len(ss.shardPruned))
	for i := range ss.shardPruned {
		out[i] = ss.shardPruned[i].Load()
	}
	return out
}

// worseDoc mirrors Searcher.worseDoc over the shared doc table.
func (ss *ShardedSearcher) worseDoc(acc *accumulator, a, b int32) bool {
	sa, sb := acc.score[a], acc.score[b]
	if sa != sb {
		return sa < sb
	}
	return ss.IDOf(a) > ss.IDOf(b)
}

// collect mirrors Searcher.collect.
func (ss *ShardedSearcher) collect(acc *accumulator, k int) []Hit {
	if len(acc.touched) == 0 {
		return nil
	}
	winners := acc.touched
	if k > 0 {
		winners = topKSelect(acc.touched, k, func(a, b int32) bool { return ss.worseDoc(acc, a, b) })
	}
	hits := make([]Hit, len(winners))
	for i, d := range winners {
		hits[i] = Hit{ID: ss.IDOf(d), Score: acc.score[d]}
	}
	slices.SortFunc(hits, cmpHits)
	return hits
}

// termDocs mirrors Searcher.termDocs over one shard.
func (sh *shard) termDocs(ti int32, fields []Field) []int32 {
	var lists [int(numFields)][]int32
	var used [int(numFields)]bool
	n := 0
	for _, f := range fields {
		if used[f] {
			continue
		}
		used[f] = true
		lo, hi := sh.off[f][ti], sh.off[f][ti+1]
		if lo < hi {
			lists[n] = sh.docs[f][lo:hi]
			n++
		}
	}
	return mergeSortedDocLists(lists[:n])
}

// DocsWithToken returns the sorted doc set containing tok in any of the
// given fields — equivalent to Searcher.DocsWithToken. A term's postings
// live wholly in its home shard, and doc numbers are global, so no
// cross-shard merge is needed.
func (ss *ShardedSearcher) DocsWithToken(tok string, fields ...Field) []int32 {
	if ss.numDocs == 0 {
		return nil
	}
	sh := ss.shards[shardOfToken(tok, ss.shardCount)]
	ti, ok := sh.lookup(tok)
	if !ok {
		return nil
	}
	return sh.termDocs(ti, fields)
}

// DocSet returns the sorted set of documents containing all tokens, each
// in at least one of the given fields — equivalent to Searcher.DocSet.
// Tokens resolve to their home shards; the intersection runs over global
// doc numbers, rarest term first with lexicographic tie-breaks (the same
// order the single-shard Searcher uses, whose term IDs are lexicographic
// ranks).
func (ss *ShardedSearcher) DocSet(tokens []string, fields ...Field) []int32 {
	if ss.numDocs == 0 {
		return nil
	}
	refs := make([]termRef, 0, len(tokens))
	seen := make(map[string]bool, len(tokens))
	for _, tok := range tokens {
		if seen[tok] {
			continue
		}
		seen[tok] = true
		sh := ss.shards[shardOfToken(tok, ss.shardCount)]
		ti, ok := sh.lookup(tok)
		if !ok {
			return nil // a token absent from the corpus empties the set
		}
		refs = append(refs, termRef{tok: tok, sh: sh, tid: ti})
	}
	if len(refs) == 0 {
		return nil
	}
	slices.SortFunc(refs, func(a, b termRef) int {
		if a.sh.df[a.tid] != b.sh.df[b.tid] {
			return cmp.Compare(a.sh.df[a.tid], b.sh.df[b.tid])
		}
		return cmp.Compare(a.tok, b.tok)
	})
	set := refs[0].sh.termDocs(refs[0].tid, fields)
	for _, r := range refs[1:] {
		if len(set) == 0 {
			return nil
		}
		set = intersectSorted(set, r.sh.termDocs(r.tid, fields))
	}
	return set
}
