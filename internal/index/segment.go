package index

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"wwt/internal/wtable"
)

// This file is the segment layer of the live index: small frozen flat
// indexes (segments) listed by an atomically committed manifest. A
// segment is just a one-shard flat index directory plus its table store,
// so the existing writer, reader and gather are reused verbatim; what is
// new here is the lifecycle — build (SegmentWriter), list (Manifest),
// and compact (PlanMerge / MergeSegments). MultiSearcher (multi.go)
// unions searches across the listed segments.

// StoreFileName is the gob table store each index directory and segment
// carries alongside its flat files.
const StoreFileName = "store.gob"

// ManifestFileName is the segment list of a live index directory. It is
// committed atomically (write temp file, fsync, rename), so readers see
// either the old or the new generation, never a partial one. A directory
// without a manifest is a plain frozen index: its implicit manifest is
// generation 0 with the directory itself as the only segment.
const ManifestFileName = "MANIFEST.json"

// SegmentsDirName is the subdirectory holding ingested segments.
const SegmentsDirName = "segments"

// manifestFormatVersion is the manifest schema version.
const manifestFormatVersion = 1

// Manifest is the committed state of a live index: an ordered list of
// segment directories (relative to the index root; "." is the base index
// the directory was originally built with) and a generation counter that
// increases with every commit. Segment order is canonical: global doc
// numbers are assigned segment by segment in list order.
type Manifest struct {
	Version    int      `json:"version"`
	Generation uint64   `json:"generation"`
	Segments   []string `json:"segments"`
}

// clone returns a deep copy safe to mutate for the next commit.
func (m *Manifest) clone() Manifest {
	out := *m
	out.Segments = append([]string(nil), m.Segments...)
	return out
}

// ReadManifest reads dir's manifest. ok is false when none exists (a
// plain frozen index directory).
func ReadManifest(dir string) (Manifest, bool, error) {
	var m Manifest
	b, err := os.ReadFile(filepath.Join(dir, ManifestFileName))
	if err != nil {
		if os.IsNotExist(err) {
			return m, false, nil
		}
		return m, false, fmt.Errorf("manifest read: %w", err)
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return m, false, fmt.Errorf("manifest read %s: %w", dir, err)
	}
	if m.Version != manifestFormatVersion {
		return m, false, fmt.Errorf("manifest read %s: version %d, this build supports %d", dir, m.Version, manifestFormatVersion)
	}
	for _, s := range m.Segments {
		if s != "." && (s == "" || filepath.IsAbs(s) || strings.Contains(s, "..")) {
			return m, false, fmt.Errorf("manifest read %s: invalid segment path %q", dir, s)
		}
	}
	return m, true, nil
}

// WriteManifest atomically commits m as dir's manifest: the JSON is
// written to a temp file in the same directory, synced, and renamed over
// the live name. A crash leaves either the previous manifest or the new
// one, never a torn file.
func WriteManifest(dir string, m Manifest) error {
	m.Version = manifestFormatVersion
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("manifest write: %w", err)
	}
	b = append(b, '\n')
	tmp, err := os.CreateTemp(dir, ManifestFileName+".tmp-*")
	if err != nil {
		return fmt.Errorf("manifest write: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("manifest write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("manifest write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("manifest write: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, ManifestFileName)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("manifest write: %w", err)
	}
	return nil
}

// SnapshotManifest returns dir's committed manifest, or the implicit
// base-only manifest (generation 0, segment ".") when none exists and the
// directory holds a flat index. A directory with neither fails with an
// error wrapping fs.ErrNotExist so callers can fall back to the gob path.
func SnapshotManifest(dir string) (Manifest, error) {
	m, ok, err := ReadManifest(dir)
	if err != nil {
		return m, err
	}
	if ok {
		return m, nil
	}
	if _, err := os.Stat(filepath.Join(dir, DocsFileName)); err != nil {
		return m, fmt.Errorf("index open %s: no manifest and no flat index: %w", dir, err)
	}
	return Manifest{Version: manifestFormatVersion, Segments: []string{"."}}, nil
}

// SegmentDirName names the seq-th ingested segment, relative to the index
// root. The fixed-width sequence number keeps lexicographic listing equal
// to creation order.
func SegmentDirName(seq uint64) string {
	return filepath.Join(SegmentsDirName, fmt.Sprintf("seg-%010d", seq))
}

// SegmentWriter accumulates a batch of extracted tables and freezes them
// into one immutable segment: a single-shard flat index plus its table
// store. Segments are small by design — one ingest batch each — and the
// background merge policy compacts them later.
type SegmentWriter struct {
	tables []*wtable.Table
	seen   map[string]bool
}

// NewSegmentWriter returns an empty segment writer.
func NewSegmentWriter() *SegmentWriter {
	return &SegmentWriter{seen: make(map[string]bool)}
}

// Add queues one table. Duplicate IDs within the batch are an error —
// every table ID must be unique across the whole live index, and the
// cross-segment half of that invariant is checked by the ingest path
// against the current generation's store.
func (w *SegmentWriter) Add(t *wtable.Table) error {
	if t == nil || t.ID == "" {
		return fmt.Errorf("segment: table without ID")
	}
	if w.seen[t.ID] {
		return fmt.Errorf("segment: duplicate table ID %q", t.ID)
	}
	w.seen[t.ID] = true
	w.tables = append(w.tables, t)
	return nil
}

// Len returns the number of queued tables.
func (w *SegmentWriter) Len() int { return len(w.tables) }

// Tables returns the queued tables in insertion order (shared, not
// copied).
func (w *SegmentWriter) Tables() []*wtable.Table { return w.tables }

// Flush freezes the queued tables into dir as an immutable one-shard
// segment: builds the index, writes the flat files and the table store.
// An empty writer is an error — the manifest never lists empty segments.
func (w *SegmentWriter) Flush(dir string, opts WriteShardedOptions) error {
	if len(w.tables) == 0 {
		return fmt.Errorf("segment: flush of an empty segment")
	}
	ix, err := Build(w.tables)
	if err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	if err := WriteShardedWith(dir, NewSearcher(ix), 1, opts); err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	st := NewStore()
	for _, t := range w.tables {
		if err := st.Add(t); err != nil {
			return fmt.Errorf("segment: %w", err)
		}
	}
	if err := st.Save(filepath.Join(dir, StoreFileName)); err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	return nil
}

// MergePolicy parameterizes the size-tiered background merge: segments
// are bucketed into doc-count tiers of ratio TierBase, and any tier that
// accumulates TierFanIn segments is compacted into one. Inputs are
// immutable — a merge writes a brand-new segment and the manifest commit
// swaps it in — so queries running on the old generation are unaffected.
type MergePolicy struct {
	TierFanIn int // segments per tier that trigger a merge (default 4)
	TierBase  int // doc-count ratio between adjacent tiers (default 4)
}

func (p MergePolicy) withDefaults() MergePolicy {
	if p.TierFanIn <= 1 {
		p.TierFanIn = 4
	}
	if p.TierBase <= 1 {
		p.TierBase = 4
	}
	return p
}

// tier buckets a doc count: 0 for < TierBase docs, 1 for < TierBase²,
// and so on.
func (p MergePolicy) tier(docs int) int {
	t := 0
	for docs >= p.TierBase {
		docs /= p.TierBase
		t++
	}
	return t
}

// PlanMerge picks one merge from the given per-segment doc counts: the
// indices (ascending) of the segments in the lowest tier holding at least
// TierFanIn members, or nil when no tier is full. Pure function — the
// caller owns locking and the decision of which segments are eligible
// (the base index, typically the largest tier, is usually excluded).
func PlanMerge(docCounts []int, p MergePolicy) []int {
	p = p.withDefaults()
	byTier := make(map[int][]int)
	for i, n := range docCounts {
		t := p.tier(n)
		byTier[t] = append(byTier[t], i)
	}
	best := -1
	for t, members := range byTier {
		if len(members) >= p.TierFanIn && (best < 0 || t < best) {
			best = t
		}
	}
	if best < 0 {
		return nil
	}
	return byTier[best]
}

// MergeSegments compacts the tables of srcDirs (in order) into one new
// segment at dst. The inputs are only read — deleting them after the
// manifest no longer lists them is the caller's job. Returns the merged
// doc count.
func MergeSegments(dst string, srcDirs []string, opts WriteShardedOptions) (int, error) {
	w := NewSegmentWriter()
	for _, d := range srcDirs {
		st, err := LoadStore(filepath.Join(d, StoreFileName))
		if err != nil {
			return 0, fmt.Errorf("segment merge: %w", err)
		}
		for _, t := range st.All() {
			if err := w.Add(t); err != nil {
				return 0, fmt.Errorf("segment merge: %w", err)
			}
		}
	}
	if err := w.Flush(dst, opts); err != nil {
		return 0, fmt.Errorf("segment merge: %w", err)
	}
	return w.Len(), nil
}
