package index

import (
	"errors"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"wwt/internal/wtable"
)

// sameHitsBitIdentical is the strict form of sameHits: IDs, order AND exact
// float64 score bits must match — the sharded gather accumulates in the
// same operation order as the single-shard searcher, so == (not a
// tolerance) is the contract.
func sameHitsBitIdentical(t *testing.T, want, got []Hit, ctx string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: hit count %d != %d (want %v, got %v)", ctx, len(got), len(want), want, got)
	}
	for i := range want {
		if want[i].ID != got[i].ID {
			t.Fatalf("%s: hit %d ID %q != %q", ctx, i, got[i].ID, want[i].ID)
		}
		if want[i].Score != got[i].Score {
			t.Fatalf("%s: hit %d score %v != %v (bit-identity violated)", ctx, i, got[i].Score, want[i].Score)
		}
	}
}

// shardedVariants returns the construction paths for n shards — pure
// in-memory partitioning, the mmap-opened flat index and the forced
// read-into-memory fallback for both the block-max v2 format and the
// summary-less v1 format — with cleanup registered on t. Every variant
// must stay bit-identical: v2 paths exercise block-max skipping and shard
// pruning, v1 paths pin the term-level-only fallback.
func shardedVariants(t *testing.T, s *Searcher, n int) map[string]*ShardedSearcher {
	t.Helper()
	out := map[string]*ShardedSearcher{"memory": NewShardedFromSearcher(s, n)}
	for _, v := range []int{2, 1} {
		dir := t.TempDir()
		if err := WriteShardedWith(dir, s, n, WriteShardedOptions{FormatVersion: v}); err != nil {
			t.Fatal(err)
		}
		mm, err := OpenSharded(dir)
		if err != nil {
			t.Fatal(err)
		}
		if !mm.Mmapped() {
			t.Fatalf("OpenSharded did not map the files")
		}
		rd, err := openSharded(dir, true)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { mm.Close(); rd.Close() })
		for g := 0; g < n; g++ {
			if got := mm.shards[g].hasBlocks(); got != (v == 2) {
				t.Fatalf("v%d shard %d: hasBlocks() = %v", v, g, got)
			}
		}
		if v == 2 {
			out["mmap"], out["nommap"] = mm, rd
		} else {
			out["mmap-v1"], out["nommap-v1"] = mm, rd
		}
	}
	return out
}

// TestShardedSearcherEquivalence: for every shard count, every construction
// path must return hits bit-identical (IDs, scores, order) to the
// single-shard Searcher across random queries and k values.
func TestShardedSearcherEquivalence(t *testing.T) {
	for _, seed := range []int64{3, 42, 2012} {
		ix, _ := buildRandCorpus(t, seed, 2+rand.New(rand.NewSource(seed)).Intn(60))
		s := NewSearcher(ix)
		for _, n := range []int{1, 2, 3, 8} {
			for name, ss := range shardedVariants(t, s, n) {
				if ss.Shards() != n {
					t.Fatalf("%s: Shards() = %d, want %d", name, ss.Shards(), n)
				}
				if ss.Len() != ix.Len() {
					t.Fatalf("%s: Len() = %d, want %d", name, ss.Len(), ix.Len())
				}
				r := rand.New(rand.NewSource(seed + int64(n)))
				for qi := 0; qi < 25; qi++ {
					q := randQuery(r)
					for _, k := range []int{0, 1, 3, 17, 1000} {
						want := s.Search(q, k)
						got := ss.Search(q, k)
						sameHitsBitIdentical(t, want, got, name)
					}
				}
			}
		}
	}
}

// TestShardedSearcherSkipWithExactlyKTouched replays the PR 1 skip
// regression corpus against every shard count: the first term touches
// exactly k docs, and a document arriving after the skip threshold is set
// must still enter the top k.
func TestShardedSearcherSkipWithExactlyKTouched(t *testing.T) {
	row := func(cells ...string) wtable.Row {
		r := wtable.Row{}
		for _, c := range cells {
			r.Cells = append(r.Cells, wtable.Cell{Text: c})
		}
		return r
	}
	tables := []*wtable.Table{
		{ID: "t0", HeaderRows: []wtable.Row{row("aaa")}, BodyRows: []wtable.Row{row("xxx")}},
		{ID: "t1", BodyRows: []wtable.Row{row("aaa")}},
		{ID: "t2", BodyRows: []wtable.Row{row("bbb")}},
	}
	ix, err := Build(tables)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(ix)
	q := []string{"aaa", "bbb"}
	want := s.Search(q, 2)
	for _, n := range []int{1, 2, 3, 8} {
		for name, ss := range shardedVariants(t, s, n) {
			got := ss.Search(q, 2)
			sameHitsBitIdentical(t, want, got, name)
			ids := map[string]bool{}
			for _, h := range got {
				ids[h.ID] = true
			}
			if !ids["t0"] || !ids["t2"] {
				t.Fatalf("%s shards=%d: top-2 = %v, want t0 and t2", name, n, got)
			}
		}
	}
}

// TestShardedDocSetEquivalence: DocsWithToken, DocSet and IDF must match
// the single-shard Searcher for every shard count and construction path.
func TestShardedDocSetEquivalence(t *testing.T) {
	ix, _ := buildRandCorpus(t, 4242, 40)
	s := NewSearcher(ix)
	fieldSets := [][]Field{
		{FieldHeader}, {FieldContext}, {FieldContent},
		{FieldHeader, FieldContext}, {FieldHeader, FieldContext, FieldContent},
	}
	for _, n := range []int{1, 2, 3, 8} {
		for name, ss := range shardedVariants(t, s, n) {
			r := rand.New(rand.NewSource(17))
			for i := 0; i < 60; i++ {
				toks := randQuery(r)
				for _, fs := range fieldSets {
					want := s.DocSet(toks, fs...)
					got := ss.DocSet(toks, fs...)
					if len(want) == 0 && len(got) == 0 {
						continue
					}
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("%s shards=%d: DocSet(%v, %v) = %v, want %v", name, n, toks, fs, got, want)
					}
				}
				tok := propWords[r.Intn(len(propWords))]
				for _, fs := range fieldSets {
					want := s.DocsWithToken(tok, fs...)
					got := ss.DocsWithToken(tok, fs...)
					if len(want) == 0 && len(got) == 0 {
						continue
					}
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("%s shards=%d: DocsWithToken(%q, %v) = %v, want %v", name, n, tok, fs, got, want)
					}
				}
				if got, want := ss.IDF(tok), s.IDF(tok); got != want {
					t.Fatalf("%s shards=%d: IDF(%q) = %v, want %v", name, n, tok, got, want)
				}
				if got, want := ss.IDF("unknownword"), s.IDF("unknownword"); got != want {
					t.Fatalf("%s shards=%d: unknown-token IDF = %v, want %v", name, n, got, want)
				}
			}
		}
	}
}

// TestShardedSearcherConcurrent: one mmap-opened sharded searcher must
// serve goroutines concurrently with bit-identical results (run under
// -race; the scatter goroutines cross shard boundaries here).
func TestShardedSearcherConcurrent(t *testing.T) {
	ix, _ := buildRandCorpus(t, 777, 50)
	s := NewSearcher(ix)
	dir := t.TempDir()
	if err := WriteSharded(dir, s, 4); err != nil {
		t.Fatal(err)
	}
	ss, err := OpenSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 150; i++ {
				q := randQuery(r)
				want := s.Search(q, 7)
				got := ss.Search(q, 7)
				if len(want) != len(got) {
					t.Errorf("goroutine %d: %d hits, want %d", g, len(got), len(want))
					return
				}
				for j := range want {
					if want[j].ID != got[j].ID || want[j].Score != got[j].Score {
						t.Errorf("goroutine %d: hit %d mismatch", g, j)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestShardedDocSetCache: the sharded cache must return the same sets as
// the uncached source, expose per-shard counters that sum to the
// aggregate, and canonicalize keys like the flat cache.
func TestShardedDocSetCache(t *testing.T) {
	ix, _ := buildRandCorpus(t, 11, 30)
	s := NewSearcher(ix)
	ss := NewShardedFromSearcher(s, 4)
	c := NewShardedDocSetCache(ss, 4, 0)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		toks := randQuery(r)
		want := s.DocSet(toks, FieldHeader, FieldContext)
		got := c.DocSet(toks, FieldHeader, FieldContext)
		if len(want) != 0 || len(got) != 0 {
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("sharded cached DocSet(%v) = %v, want %v", toks, got, want)
			}
		}
	}
	toks := []string{propWords[0], propWords[1]}
	first := c.DocSet(toks, FieldContent)
	// Token order and duplicates must not change the key.
	second := c.DocSet([]string{propWords[1], propWords[0], propWords[0]}, FieldContent)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("canonicalized repeat lookup differs")
	}
	hits, misses := c.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("stats = %d hits / %d misses, want both nonzero", hits, misses)
	}
	per := c.ShardStats()
	if len(per) != 4 {
		t.Fatalf("ShardStats has %d shards, want 4", len(per))
	}
	var sh, sm uint64
	for _, st := range per {
		sh += st.Hits
		sm += st.Misses
	}
	if sh != hits || sm != misses {
		t.Fatalf("per-shard counters sum to %d/%d, aggregate says %d/%d", sh, sm, hits, misses)
	}
	if c.Len() == 0 {
		t.Fatalf("cache is empty after %d probes", misses)
	}
}

// TestDocSetCacheWarmHitAllocs pins the docSetKey rewrite: a warm cache
// hit's only allocation is the key string itself.
func TestDocSetCacheWarmHitAllocs(t *testing.T) {
	ix, _ := buildRandCorpus(t, 5, 20)
	s := NewSearcher(ix)
	c := NewDocSetCache(s, 0)
	toks := []string{propWords[3], propWords[1], propWords[1], propWords[0]}
	c.DocSet(toks, FieldHeader, FieldContext) // warm
	allocs := testing.AllocsPerRun(200, func() {
		c.DocSet(toks, FieldHeader, FieldContext)
	})
	if allocs > 1 {
		t.Fatalf("warm hit does %.1f allocs/op, want <= 1 (the key string)", allocs)
	}
}

// writeShardedDir builds a small corpus and writes an n-shard flat index,
// returning the directory and the frozen searcher it came from.
func writeShardedDir(t *testing.T, n int) (string, *Searcher) {
	t.Helper()
	ix, _ := buildRandCorpus(t, 99, 12)
	s := NewSearcher(ix)
	dir := t.TempDir()
	if err := WriteSharded(dir, s, n); err != nil {
		t.Fatal(err)
	}
	return dir, s
}

// expectOpenError asserts OpenSharded fails mentioning want.
func expectOpenError(t *testing.T, dir, want string) {
	t.Helper()
	ss, err := OpenSharded(dir)
	if err == nil {
		ss.Close()
		t.Fatalf("OpenSharded succeeded, want error mentioning %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("OpenSharded error %q does not mention %q", err, want)
	}
}

// TestOpenShardedErrors: every corruption mode must fail with a precise,
// actionable message — and a directory without a flat index must wrap
// fs.ErrNotExist so callers can fall back to the gob path.
func TestOpenShardedErrors(t *testing.T) {
	t.Run("missing", func(t *testing.T) {
		_, err := OpenSharded(t.TempDir())
		if !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("error %v does not wrap fs.ErrNotExist", err)
		}
	})
	t.Run("missing shard file", func(t *testing.T) {
		dir, _ := writeShardedDir(t, 2)
		if err := os.Remove(filepath.Join(dir, shardFileName(1))); err != nil {
			t.Fatal(err)
		}
		expectOpenError(t, dir, "shard file postings-001.wwt missing")
		if _, err := OpenSharded(dir); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("missing shard error %v does not wrap fs.ErrNotExist", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		dir, _ := writeShardedDir(t, 1)
		if err := os.Truncate(filepath.Join(dir, DocsFileName), 10); err != nil {
			t.Fatal(err)
		}
		expectOpenError(t, dir, "smaller than")
	})
	t.Run("bad magic", func(t *testing.T) {
		dir, _ := writeShardedDir(t, 1)
		if err := os.WriteFile(filepath.Join(dir, DocsFileName), []byte("PNG-DATA-and-then-some-more-bytes-padding-it-out-past-the-header"), 0o644); err != nil {
			t.Fatal(err)
		}
		expectOpenError(t, dir, "bad magic")
	})
	t.Run("newer version", func(t *testing.T) {
		dir, _ := writeShardedDir(t, 1)
		path := filepath.Join(dir, DocsFileName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[8] = 99 // version field
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		expectOpenError(t, dir, "version 99")
	})
	t.Run("gob file as flat index", func(t *testing.T) {
		dir, _ := writeShardedDir(t, 1)
		ix, _ := buildRandCorpus(t, 1, 3)
		if err := ix.Save(filepath.Join(dir, DocsFileName)); err != nil {
			t.Fatal(err)
		}
		expectOpenError(t, dir, "gob index snapshot")
	})
	t.Run("kind mix-up", func(t *testing.T) {
		dir, _ := writeShardedDir(t, 1)
		postings, err := os.ReadFile(filepath.Join(dir, shardFileName(0)))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, DocsFileName), postings, 0o644); err != nil {
			t.Fatal(err)
		}
		expectOpenError(t, dir, "want doc table")
	})
	t.Run("mixed builds", func(t *testing.T) {
		// A shard file from a 3-shard build dropped into a 2-shard
		// directory must be rejected by the header cross-check.
		dir, s := writeShardedDir(t, 2)
		other := t.TempDir()
		if err := WriteSharded(other, s, 3); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(filepath.Join(other, shardFileName(1)), filepath.Join(dir, shardFileName(1))); err != nil {
			t.Fatal(err)
		}
		expectOpenError(t, dir, "different builds")
	})
	t.Run("v2 zero block size", func(t *testing.T) {
		// A v2 postings file whose header declares block size 0 is corrupt:
		// the block geometry would be undefined.
		dir, _ := writeShardedDir(t, 1)
		path := filepath.Join(dir, shardFileName(0))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[44], data[45], data[46], data[47] = 0, 0, 0, 0 // block-size field
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		expectOpenError(t, dir, "block size 0")
	})
	t.Run("v2 missing block sections", func(t *testing.T) {
		// A v1-bodied postings file whose header claims v2 must fail on the
		// absent block-summary sections, not open with silent misbehavior.
		ix, _ := buildRandCorpus(t, 99, 12)
		s := NewSearcher(ix)
		dir := t.TempDir()
		if err := WriteShardedWith(dir, s, 1, WriteShardedOptions{FormatVersion: 1}); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, shardFileName(0))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		copy(data[:8], flatMagicV2)
		data[8] = flatFormatVersion2 // version field (little-endian u32)
		data[44] = DefaultBlockSize  // block-size field
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		expectOpenError(t, dir, "missing section 32")
	})
}

// TestWriteShardedWithErrors: invalid write options and over-limit corpora
// must fail with precise versioned errors before any file is written.
func TestWriteShardedWithErrors(t *testing.T) {
	ix, _ := buildRandCorpus(t, 99, 12)
	s := NewSearcher(ix)
	expectWriteError := func(t *testing.T, opts WriteShardedOptions, want string) {
		t.Helper()
		dir := t.TempDir()
		err := WriteShardedWith(dir, s, 1, opts)
		if err == nil {
			t.Fatalf("WriteShardedWith succeeded, want error mentioning %q", want)
		}
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
		ents, derr := os.ReadDir(dir)
		if derr != nil {
			t.Fatal(derr)
		}
		if len(ents) != 0 {
			t.Fatalf("failed write left %d file(s) behind: %v", len(ents), ents)
		}
	}
	t.Run("unsupported version", func(t *testing.T) {
		expectWriteError(t, WriteShardedOptions{FormatVersion: 3}, "version 3 not supported")
	})
	t.Run("negative block size", func(t *testing.T) {
		expectWriteError(t, WriteShardedOptions{BlockSize: -4}, "requires a positive block size, got -4")
	})
	t.Run("postings over section bound", func(t *testing.T) {
		old := maxSectionInt32
		maxSectionInt32 = 8 // force the int32 section-offset bound down
		defer func() { maxSectionInt32 = old }()
		expectWriteError(t, WriteShardedOptions{}, "over the int32 section-offset bound")
	})
}

// TestGobHeaderErrors: the gob snapshots' magic/version headers must
// diagnose mix-ups and stale files precisely.
func TestGobHeaderErrors(t *testing.T) {
	dir := t.TempDir()
	ix, tables := buildRandCorpus(t, 7, 5)
	st := NewStore()
	for _, tb := range tables {
		if err := st.Add(tb); err != nil {
			t.Fatal(err)
		}
	}
	ixPath := filepath.Join(dir, "index.gob")
	stPath := filepath.Join(dir, "store.gob")
	if err := ix.Save(ixPath); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(stPath); err != nil {
		t.Fatal(err)
	}

	expect := func(t *testing.T, err error, want string) {
		t.Helper()
		if err == nil {
			t.Fatalf("load succeeded, want error mentioning %q", want)
		}
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}

	t.Run("round trip", func(t *testing.T) {
		if _, err := Load(ixPath); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadStore(stPath); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("store to Load", func(t *testing.T) {
		_, err := Load(stPath)
		expect(t, err, "wwt table store")
	})
	t.Run("index to LoadStore", func(t *testing.T) {
		_, err := LoadStore(ixPath)
		expect(t, err, "wwt index snapshot")
	})
	t.Run("flat file to Load", func(t *testing.T) {
		flatDir, _ := writeShardedDir(t, 1)
		_, err := Load(filepath.Join(flatDir, DocsFileName))
		expect(t, err, "flat sharded index")
	})
	t.Run("legacy headerless gob", func(t *testing.T) {
		// A pre-versioning snapshot starts with gob's own framing, not our
		// magic.
		legacy := filepath.Join(dir, "legacy.gob")
		data, err := os.ReadFile(ixPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(legacy, data[12:], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = Load(legacy)
		expect(t, err, "rebuild with wwt-index")
	})
	t.Run("newer gob version", func(t *testing.T) {
		data, err := os.ReadFile(ixPath)
		if err != nil {
			t.Fatal(err)
		}
		data[8] = 42
		newer := filepath.Join(dir, "newer.gob")
		if err := os.WriteFile(newer, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = Load(newer)
		expect(t, err, "format version 42")
	})
	t.Run("truncated", func(t *testing.T) {
		short := filepath.Join(dir, "short.gob")
		if err := os.WriteFile(short, []byte("WWT"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Load(short)
		expect(t, err, "too short")
	})
}

// TestTermStatsEquivalence: the planner's cost features (df, total posting
// entries) must read identically from the mutable Index, the frozen
// Searcher, and every sharded construction path at every shard count.
func TestTermStatsEquivalence(t *testing.T) {
	ix, _ := buildRandCorpus(t, 2012, 40)
	s := NewSearcher(ix)
	for _, n := range []int{1, 2, 3, 8} {
		for name, ss := range shardedVariants(t, s, n) {
			for _, tok := range s.sh.names {
				wdf, wpost, wok := ix.TermStats(tok)
				sdf, spost, sok := s.TermStats(tok)
				gdf, gpost, gok := ss.TermStats(tok)
				if !wok || !sok || !gok {
					t.Fatalf("%s shards=%d: token %q ok = (%v,%v,%v), want all true", name, n, tok, wok, sok, gok)
				}
				if wdf != sdf || wdf != gdf || wpost != spost || wpost != gpost {
					t.Fatalf("%s shards=%d: token %q stats (%d,%d)/(%d,%d)/(%d,%d) disagree",
						name, n, tok, wdf, wpost, sdf, spost, gdf, gpost)
				}
				if wpost < int(wdf) {
					t.Fatalf("token %q: %d posting entries < df %d", tok, wpost, wdf)
				}
			}
			if _, _, ok := ss.TermStats("zzz-no-such-token"); ok {
				t.Fatalf("%s shards=%d: unknown token reported ok", name, n)
			}
		}
	}
	if _, _, ok := ix.TermStats("zzz-no-such-token"); ok {
		t.Fatal("Index: unknown token reported ok")
	}
	if _, _, ok := s.TermStats("zzz-no-such-token"); ok {
		t.Fatal("Searcher: unknown token reported ok")
	}
}
