package index

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sync"

	"wwt/internal/text"
	"wwt/internal/wtable"
)

// Field identifies one of the three indexed fields.
type Field int

// The three fields of a table document.
const (
	FieldHeader Field = iota
	FieldContext
	FieldContent
	numFields
)

// Boosts are the per-field match boosts from §2.1: header 2, context 1.5,
// content 1.
var Boosts = [numFields]float64{2.0, 1.5, 1.0}

// String names the field.
func (f Field) String() string {
	switch f {
	case FieldHeader:
		return "header"
	case FieldContext:
		return "context"
	case FieldContent:
		return "content"
	}
	return fmt.Sprintf("field(%d)", int(f))
}

// Posting is one (document, term-frequency) pair. Exported for gob.
type Posting struct {
	Doc int32
	TF  float32
}

// Index is an inverted index over table documents.
type Index struct {
	ids      []string
	byID     map[string]int32
	postings [numFields]map[string][]Posting
	fieldLen [numFields][]float32 // per-doc analyzed token counts
	df       map[string]int       // union document frequency (any field)
}

// New returns an empty index.
func New() *Index {
	ix := &Index{
		byID: make(map[string]int32),
		df:   make(map[string]int),
	}
	for f := range ix.postings {
		ix.postings[f] = make(map[string][]Posting)
	}
	return ix
}

// FieldTokens analyzes one table into its three field token bags. This is
// the single point deciding what text lands in which field: titles and page
// titles join the context field; header rows form the header field; body
// cells form the content field.
func FieldTokens(t *wtable.Table) [numFields][]string {
	var out [numFields][]string
	for _, r := range t.HeaderRows {
		for _, c := range r.Cells {
			out[FieldHeader] = append(out[FieldHeader], text.Normalize(c.Text)...)
		}
	}
	ctx := t.TitleText() + " " + t.PageTitle
	out[FieldContext] = append(out[FieldContext], text.Normalize(ctx)...)
	for _, s := range t.Context {
		out[FieldContext] = append(out[FieldContext], text.Normalize(s.Text)...)
	}
	for _, r := range t.BodyRows {
		for _, c := range r.Cells {
			out[FieldContent] = append(out[FieldContent], text.Normalize(c.Text)...)
		}
	}
	return out
}

// Add indexes one table. Adding a duplicate ID is an error.
func (ix *Index) Add(t *wtable.Table) error {
	if _, dup := ix.byID[t.ID]; dup {
		return fmt.Errorf("index: duplicate table ID %q", t.ID)
	}
	doc := int32(len(ix.ids))
	ix.ids = append(ix.ids, t.ID)
	ix.byID[t.ID] = doc

	fields := FieldTokens(t)
	seenAnywhere := make(map[string]bool)
	for f := 0; f < int(numFields); f++ {
		tf := make(map[string]int)
		for _, tok := range fields[f] {
			tf[tok]++
			seenAnywhere[tok] = true
		}
		ix.fieldLen[f] = append(ix.fieldLen[f], float32(len(fields[f])))
		for tok, n := range tf {
			ix.postings[f][tok] = append(ix.postings[f][tok], Posting{Doc: doc, TF: float32(n)})
		}
	}
	for tok := range seenAnywhere {
		ix.df[tok]++
	}
	return nil
}

// Build constructs an index over tables; it fails on duplicate IDs.
func Build(tables []*wtable.Table) (*Index, error) {
	ix := New()
	for _, t := range tables {
		if err := ix.Add(t); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return len(ix.ids) }

// IDOf returns the table ID of an internal doc number.
func (ix *Index) IDOf(doc int32) string { return ix.ids[doc] }

// DocOf returns the internal doc number of a table ID.
func (ix *Index) DocOf(id string) (int32, bool) {
	d, ok := ix.byID[id]
	return d, ok
}

// IDF returns the smoothed inverse document frequency of a token over the
// whole corpus (union of fields): log(1 + N/(1+df)).
// TermStats returns a token's union document frequency and total posting
// entries across all fields — the map-based equivalent of
// Searcher.TermStats, for engines that never froze their index. Unknown
// tokens report ok=false.
func (ix *Index) TermStats(tok string) (df int32, postings int, ok bool) {
	d, ok := ix.df[tok]
	if !ok {
		return 0, 0, false
	}
	for f := 0; f < int(numFields); f++ {
		postings += len(ix.postings[f][tok])
	}
	return int32(d), postings, true
}

func (ix *Index) IDF(tok string) float64 {
	n := len(ix.ids)
	if n == 0 {
		return 1
	}
	return math.Log(1 + float64(n)/float64(1+ix.df[tok]))
}

// Hit is one search result.
type Hit struct {
	ID    string
	Score float64
}

// hitScratch pools the intermediate candidate slices of the map-based
// scorer so repeated searches reuse capacity instead of reallocating.
var hitScratch = sync.Pool{New: func() any { s := make([]Hit, 0, 256); return &s }}

// Search runs a union-of-keywords (OR) query over all three fields with the
// standard boosted TF-IDF score
//
//	score(d) = Σ_f boost_f Σ_{t∈q} (1+ln tf) · idf(t) / sqrt(len_f(d))
//
// and returns the top k hits by score (all hits when k <= 0). tokens must
// already be analyzed (text.Normalize).
//
// This is the reference scorer; the hot path uses the frozen Searcher,
// which must stay hit-for-hit identical (see TestSearcherEquivalence).
func (ix *Index) Search(tokens []string, k int) []Hit {
	if len(tokens) == 0 || len(ix.ids) == 0 {
		return nil
	}
	uniq := dedup(tokens)
	// Accumulate in canonical term order — df ascending, token ascending on
	// ties — the same order the frozen Searcher uses, so both scorers
	// produce bit-identical sums. Rarest-first is not cosmetic: the
	// selective terms establish the block-max probe's top-k floor before
	// the long common lists are walked, which is what lets whole blocks of
	// those lists be skipped (gather.go).
	slices.SortFunc(uniq, func(a, b string) int {
		if da, db := ix.df[a], ix.df[b]; da != db {
			return cmp.Compare(da, db)
		}
		return cmp.Compare(a, b)
	})
	scores := make(map[int32]float64)
	for _, tok := range uniq {
		idf := ix.IDF(tok)
		for f := 0; f < int(numFields); f++ {
			for _, p := range ix.postings[f][tok] {
				scores[p.Doc] += idf * float64(postingWeight(f, p.TF, ix.fieldLen[f][p.Doc]))
			}
		}
	}
	scratchp := hitScratch.Get().(*[]Hit)
	scratch := (*scratchp)[:0]
	for d, s := range scores {
		scratch = append(scratch, Hit{ID: ix.ids[d], Score: s})
	}
	hits := selectTopHits(scratch, k)
	*scratchp = scratch[:0]
	hitScratch.Put(scratchp)
	return hits
}

// betterHit is the hit ordering: higher score first, ties by table ID.
func betterHit(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// cmpHits is betterHit as a three-way comparison for slices.SortFunc —
// the generic sorter skips the reflection swapper sort.Slice pays per call,
// which matters at one hit sort per probe.
func cmpHits(a, b Hit) int {
	switch {
	case betterHit(a, b):
		return -1
	case betterHit(b, a):
		return 1
	}
	return 0
}

// topKSelect partially selects the k best elements of items using an
// in-place worst-first min-heap over items[:k], and returns that prefix in
// heap (not sorted) order. worse must be a strict total order ranking a
// strictly below b. items may be reordered; k >= len(items) returns items
// unchanged.
func topKSelect[T any](items []T, k int, worse func(a, b T) bool) []T {
	if k >= len(items) {
		return items
	}
	h := items[:k]
	for i := 1; i < len(h); i++ {
		for j := i; j > 0; {
			p := (j - 1) / 2
			if worse(h[p], h[j]) {
				break
			}
			h[p], h[j] = h[j], h[p]
			j = p
		}
	}
	for _, c := range items[k:] {
		if worse(c, h[0]) {
			continue
		}
		h[0] = c
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && worse(h[l], h[m]) {
				m = l
			}
			if r < len(h) && worse(h[r], h[m]) {
				m = r
			}
			if m == i {
				break
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	return h
}

// worseHit ranks a strictly below b (topKSelect's order for hits).
func worseHit(a, b Hit) bool { return betterHit(b, a) }

// selectTopHits returns a freshly allocated, sorted slice of the top k
// candidates (all of them when k <= 0), partially selecting instead of
// sorting everything when k is small. cands may be reordered.
func selectTopHits(cands []Hit, k int) []Hit {
	sel := cands
	if k > 0 {
		sel = topKSelect(cands, k, worseHit)
	}
	out := make([]Hit, len(sel))
	copy(out, sel)
	slices.SortFunc(out, cmpHits)
	return out
}

// DocsWithToken returns the sorted doc set containing tok in any of the
// given fields. Per-field posting lists are already doc-sorted, so multiple
// fields k-way merge instead of the old append-then-sort. Duplicate fields
// are ignored.
func (ix *Index) DocsWithToken(tok string, fields ...Field) []int32 {
	var lists [int(numFields)][]int32
	var used [int(numFields)]bool
	n := 0
	for _, f := range fields {
		if used[f] {
			continue
		}
		used[f] = true
		ps := ix.postings[f][tok]
		if len(ps) == 0 {
			continue
		}
		docs := make([]int32, len(ps))
		for i, p := range ps {
			docs[i] = p.Doc
		}
		lists[n] = docs
		n++
	}
	if n == 1 {
		return lists[0] // already freshly allocated; skip the merge's copy
	}
	return mergeSortedDocLists(lists[:n])
}

// DocSet returns the sorted set of documents containing *all* tokens, each
// in at least one of the given fields. Used by PMI²: H(Qℓ) is
// DocSet(Qℓ, header, context); B(cell) is DocSet(cellTokens, content).
func (ix *Index) DocSet(tokens []string, fields ...Field) []int32 {
	uniq := dedup(tokens)
	if len(uniq) == 0 {
		return nil
	}
	// Start from the rarest token for cheap intersections.
	slices.SortFunc(uniq, func(a, b string) int { return cmp.Compare(ix.df[a], ix.df[b]) })
	set := ix.DocsWithToken(uniq[0], fields...)
	for _, tok := range uniq[1:] {
		if len(set) == 0 {
			return nil
		}
		set = intersectSorted(set, ix.DocsWithToken(tok, fields...))
	}
	return set
}

// IntersectSize returns |a ∩ b| for two sorted doc sets.
func IntersectSize(a, b []int32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

func intersectSorted(a, b []int32) []int32 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func dedup(toks []string) []string {
	seen := make(map[string]bool, len(toks))
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}
