package index

import (
	"cmp"
	"math"
	"slices"
	"sort"
	"sync"
)

// Searcher is a frozen, flat snapshot of an Index built for the online hot
// path. Postings are laid out CSR-style: for every (term, field) pair a
// contiguous range over flat doc/weight arrays, with the length-normalized
// boosted weight (1+ln tf)·boost_f/√len_f(d) precomputed at freeze time so
// a query probe is a pure gather-multiply-accumulate over idf. Scoring uses
// a dense accumulator with generation-tagged reset (no per-query map), a
// bounded top-k heap instead of a full sort, and the layered score-bound
// pruning in gather.go: the term-level max-score skip, per-block closure
// from the block-max summaries, candidate freezing, and whole-block skips.
//
// The CSR arrays live in a single *shard — the same representation
// ShardedSearcher partitions by term hash — so both searchers share one
// gather implementation and stay bit-identical by construction.
//
// A Searcher is immutable and safe for concurrent use; per-query scratch
// state lives in a sync.Pool.
type Searcher struct {
	ids     []string
	numDocs int

	terms map[string]int32 // token -> term ID (lexicographic rank)
	sh    *shard

	pool sync.Pool // *accumulator
}

// postingWeight is the per-posting score weight shared by the map-based
// scorer and the frozen searcher: boost_f · (1+ln tf) / √len_f(d), rounded
// to float32 (the searcher's storage precision) so both paths score
// identically.
func postingWeight(f int, tf, fieldLen float32) float32 {
	l := float64(fieldLen)
	if l < 1 {
		l = 1
	}
	return float32(Boosts[f] * (1 + math.Log(float64(tf))) / math.Sqrt(l))
}

// NewSearcher freezes an index into its flat search form. The index must
// not be mutated afterwards (the searcher shares its ids slice).
func NewSearcher(ix *Index) *Searcher {
	terms := make([]string, 0, len(ix.df))
	for tok := range ix.df {
		terms = append(terms, tok)
	}
	sort.Strings(terms)

	sh := &shard{
		numTerms: len(terms),
		names:    terms,
		idf:      make([]float64, len(terms)),
		maxScore: make([]float64, len(terms)),
		bestW:    make([]float64, len(terms)),
		df:       make([]int32, len(terms)),
	}
	s := &Searcher{
		ids:     ix.ids,
		numDocs: len(ix.ids),
		terms:   make(map[string]int32, len(terms)),
		sh:      sh,
	}
	for ti, tok := range terms {
		s.terms[tok] = int32(ti)
		sh.idf[ti] = ix.IDF(tok)
		sh.df[ti] = int32(ix.df[tok])
	}
	for f := 0; f < int(numFields); f++ {
		total := 0
		for _, ps := range ix.postings[f] {
			total += len(ps)
		}
		sh.off[f] = make([]int32, len(terms)+1)
		sh.docs[f] = make([]int32, 0, total)
		sh.wts[f] = make([]float32, 0, total)
		for ti, tok := range terms {
			sh.off[f][ti] = int32(len(sh.docs[f]))
			for _, p := range ix.postings[f][tok] {
				sh.docs[f] = append(sh.docs[f], p.Doc)
				sh.wts[f] = append(sh.wts[f], postingWeight(f, p.TF, ix.fieldLen[f][p.Doc]))
			}
		}
		sh.off[f][len(terms)] = int32(len(sh.docs[f]))
	}
	// maxScore[t] bounds the contribution of term t to any single document:
	// a doc matching t in several fields accumulates the SUM of its
	// per-field weights, so the bound is the max per-doc cross-field sum,
	// found with a 3-way merge over the term's doc-sorted ranges.
	for ti := range terms {
		var pos, hi [numFields]int32
		for f := 0; f < int(numFields); f++ {
			pos[f], hi[f] = sh.off[f][ti], sh.off[f][ti+1]
		}
		best := 0.0
		for {
			min := int32(math.MaxInt32)
			for f := 0; f < int(numFields); f++ {
				if pos[f] < hi[f] && sh.docs[f][pos[f]] < min {
					min = sh.docs[f][pos[f]]
				}
			}
			if min == math.MaxInt32 {
				break
			}
			sum := 0.0
			for f := 0; f < int(numFields); f++ {
				if pos[f] < hi[f] && sh.docs[f][pos[f]] == min {
					sum += float64(sh.wts[f][pos[f]])
					pos[f]++
				}
			}
			if sum > best {
				best = sum
			}
		}
		sh.bestW[ti] = best
		sh.maxScore[ti] = sh.idf[ti] * best
	}
	sh.computeBlocks(DefaultBlockSize)
	return s
}

// Len returns the number of indexed documents.
func (s *Searcher) Len() int { return s.numDocs }

// IDF returns the smoothed inverse document frequency of a token,
// identical to Index.IDF: known terms return the value precomputed at
// freeze time; unknown terms recompute the same smoothed formula.
func (s *Searcher) IDF(tok string) float64 {
	if s.numDocs == 0 {
		return 1
	}
	if ti, ok := s.terms[tok]; ok {
		return s.sh.idf[ti]
	}
	return math.Log(1 + float64(s.numDocs))
}

// IDOf returns the table ID of an internal doc number.
func (s *Searcher) IDOf(doc int32) string { return s.ids[doc] }

// TermStats returns a token's union document frequency and total posting
// entries across all fields — the cost-model features a query planner
// reads before probing. Both are O(1) reads off the frozen CSR arrays;
// unknown tokens report ok=false.
func (s *Searcher) TermStats(tok string) (df int32, postings int, ok bool) {
	ti, ok := s.terms[tok]
	if !ok {
		return 0, 0, false
	}
	for f := 0; f < int(numFields); f++ {
		postings += int(s.sh.off[f][ti+1] - s.sh.off[f][ti])
	}
	return s.sh.df[ti], postings, true
}

// accumulator is the per-query scratch of a search: a dense score array
// whose entries are valid only when their generation tag matches cur, the
// list of touched docs, reusable heap scratch for threshold and top-k
// selection, and the probe-side term buffers (resolution set, canonical
// term list, admission bounds). live/merged maintain the sorted list of
// unfrozen candidates that whole-block skips check against (gather.go).
type accumulator struct {
	score   []float64
	gen     []uint32
	cur     uint32
	touched []int32
	scratch []float64 // reusable buffer for the skip-threshold selection

	tids   []int32        // resolved unique term IDs, canonical order
	refs   []termRef      // resolved term refs handed to gather
	seen   map[int32]bool // term dedup, cleared per search
	suffix []float64      // per-position admission bound

	liveBits  []uint64 // bit per doc: unfrozen candidate (whole-block skip test)
	merged    int      // touched entries already folded into liveBits
	liveBuilt bool     // liveBits materialized (first closed block encountered)
}

func (s *Searcher) getAcc() *accumulator {
	a, _ := s.pool.Get().(*accumulator)
	if a == nil {
		a = &accumulator{}
	}
	if len(a.score) < s.numDocs {
		a.score = make([]float64, s.numDocs)
		a.gen = make([]uint32, s.numDocs)
		a.cur = 0
	}
	a.nextGen()
	return a
}

// Search scores a union-of-keywords query exactly like Index.Search and
// returns the top k hits (all hits when k <= 0), sorted by score then ID.
func (s *Searcher) Search(tokens []string, k int) []Hit {
	hits, _ := s.SearchStats(tokens, k)
	return hits
}

// SearchStats is Search plus the probe's skip counters.
func (s *Searcher) SearchStats(tokens []string, k int) ([]Hit, ProbeStats) {
	var st ProbeStats
	if len(tokens) == 0 || s.numDocs == 0 {
		return nil, st
	}
	acc := s.getAcc()
	defer s.pool.Put(acc)
	// Resolve unique known terms into the pooled probe buffers.
	tids := acc.tids[:0]
	if acc.seen == nil {
		acc.seen = make(map[int32]bool, len(tokens))
	}
	seen := acc.seen
	clear(seen)
	for _, tok := range tokens {
		if ti, ok := s.terms[tok]; ok && !seen[ti] {
			seen[ti] = true
			tids = append(tids, ti)
		}
	}
	acc.tids = tids
	if len(tids) == 0 {
		return nil, st
	}
	// Canonical processing order: df ascending, token ascending on ties.
	// The map-based reference scorer uses the same order, which makes
	// per-document float64 sums bit-identical — the equivalence the
	// ranking tests pin down. Rarest-first also puts the selective terms
	// ahead of the long lists, so the top-k floor forms before the block
	// walk reaches the blocks worth skipping (term IDs are lexicographic
	// ranks, breaking df ties by tid breaks them by token).
	slices.SortFunc(tids, func(a, b int32) int {
		if s.sh.df[a] != s.sh.df[b] {
			return int(s.sh.df[a] - s.sh.df[b])
		}
		return int(a - b)
	})
	refs := acc.refs[:0]
	for _, ti := range tids {
		r := termRef{sh: s.sh, tid: ti}
		r.fill()
		refs = append(refs, r)
	}
	acc.refs = refs
	gather(acc, refs, k, math.Inf(-1), &st)
	return s.collect(acc, k), st
}

// kthLargest returns the kth largest score among touched docs (k <=
// len(touched)) by top-k selection over the reusable scratch slice.
func (a *accumulator) kthLargest(k int) float64 {
	a.scratch = a.scratch[:0]
	for _, d := range a.touched {
		a.scratch = append(a.scratch, a.score[d])
	}
	if k >= len(a.scratch) {
		// topKSelect returns the slice unheapified in this case, so its
		// [0] would be arbitrary; the kth largest of k items is the min.
		return slices.Min(a.scratch)
	}
	// Worst-first heap of the k largest: the root is the kth largest.
	return topKSelect(a.scratch, k, func(x, y float64) bool { return x < y })[0]
}

// worseDoc reports whether doc a ranks strictly below doc b (lower score,
// or equal score and lexicographically larger table ID) — the inverse of
// the hit ordering.
func (s *Searcher) worseDoc(acc *accumulator, a, b int32) bool {
	sa, sb := acc.score[a], acc.score[b]
	if sa != sb {
		return sa < sb
	}
	return s.ids[a] > s.ids[b]
}

// collect selects the top k touched docs (all when k <= 0) and materializes
// sorted hits.
func (s *Searcher) collect(acc *accumulator, k int) []Hit {
	if len(acc.touched) == 0 {
		return nil
	}
	winners := acc.touched
	if k > 0 {
		winners = topKSelect(acc.touched, k, func(a, b int32) bool { return s.worseDoc(acc, a, b) })
	}
	hits := make([]Hit, len(winners))
	for i, d := range winners {
		hits[i] = Hit{ID: s.ids[d], Score: acc.score[d]}
	}
	slices.SortFunc(hits, cmpHits)
	return hits
}

// DocsWithToken returns the sorted doc set containing tok in any of the
// given fields, equivalent to Index.DocsWithToken.
func (s *Searcher) DocsWithToken(tok string, fields ...Field) []int32 {
	ti, ok := s.terms[tok]
	if !ok {
		return nil
	}
	return s.sh.termDocs(ti, fields)
}

// DocSet returns the sorted set of documents containing all tokens, each in
// at least one of the given fields — equivalent to Index.DocSet. The result
// is freshly allocated and safe to retain.
func (s *Searcher) DocSet(tokens []string, fields ...Field) []int32 {
	tids := make([]int32, 0, len(tokens))
	seen := make(map[int32]bool, len(tokens))
	for _, tok := range tokens {
		ti, ok := s.terms[tok]
		if !ok {
			return nil // a token absent from the corpus empties the set
		}
		if !seen[ti] {
			seen[ti] = true
			tids = append(tids, ti)
		}
	}
	if len(tids) == 0 {
		return nil
	}
	// Rarest token first keeps intermediate intersections small.
	slices.SortFunc(tids, func(a, b int32) int {
		if s.sh.df[a] != s.sh.df[b] {
			return cmp.Compare(s.sh.df[a], s.sh.df[b])
		}
		return cmp.Compare(a, b)
	})
	set := s.sh.termDocs(tids[0], fields)
	for _, ti := range tids[1:] {
		if len(set) == 0 {
			return nil
		}
		set = intersectSorted(set, s.sh.termDocs(ti, fields))
	}
	return set
}

// mergeSortedDocLists k-way merges up to numFields sorted doc lists into a
// fresh deduplicated sorted slice.
func mergeSortedDocLists(lists [][]int32) []int32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		out := make([]int32, len(lists[0]))
		copy(out, lists[0])
		return out
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]int32, 0, total)
	pos := make([]int, len(lists))
	for {
		min := int32(math.MaxInt32)
		found := false
		for li, l := range lists {
			if pos[li] < len(l) && l[pos[li]] < min {
				min = l[pos[li]]
				found = true
			}
		}
		if !found {
			return out
		}
		for li, l := range lists {
			if pos[li] < len(l) && l[pos[li]] == min {
				pos[li]++
			}
		}
		out = append(out, min)
	}
}
