// Package index is the repo's Lucene substitute (§2.1): every extracted web
// table is indexed as a document with three analyzed text fields — header,
// context and content — carrying relative boosts 2, 1.5 and 1. It supports
// the union-of-keywords probes used by WWT's two-stage retrieval, exposes
// corpus statistics (IDF) to the feature code, and serves the sorted
// document sets that the PMI² feature intersects.
//
// # Ownership and concurrency contracts
//
// Index is the mutable, map-based build-time structure and the reference
// scorer; it must not be mutated once a Searcher has been frozen from it.
// Searcher is the query-time form: a frozen CSR layout with precomputed
// (1+ln tf)·boost/√len weights, a pooled dense accumulator with
// generation-tagged reset, bounded top-k heap selection and the layered
// probe pruning described below. A Searcher is immutable and safe for
// concurrent Search calls; TestSearcherEquivalence pins it hit-for-hit
// identical to Index.Search — keep that invariant when touching either
// side.
//
// DocSetCache (and its sharded counterpart ShardedDocSetCache) is a
// concurrency-safe LRU over DocSet, keyed by the canonicalized token set
// plus field mask. Cached doc-set slices are shared and read-only: callers
// only intersect them, never mutate. Store is append-only at build time
// and read-only afterwards.
//
// # The canonical term order and bit-identity
//
// All three scorers — Index.Search, Searcher and ShardedSearcher —
// accumulate per-document float64 scores in one canonical term order:
// document frequency ascending, token ascending on ties. Identical
// operation order makes the sums — and therefore hits, scores and
// tie-breaks — bit-identical across every path and shard count
// (TestSearcherEquivalence, TestShardedSearcherEquivalence). Rarest-first
// is not cosmetic: the selective terms establish the top-k score floor
// before the long common lists are walked, which is what arms the block
// and shard pruning below. Keep the order in sync in all three scorers.
//
// # The probe layer: three levels of exact pruning
//
// On top of the PR 1 term-level max-score skip, probes prune work at three
// granularities (gather.go); every level only ever discards work that
// provably cannot change the top k, so results stay bit-identical:
//
//  1. Block closure. Posting lists carry fixed-width block summaries (max
//     posting weight + first doc ID per block). A block whose best
//     reachable score sits strictly below the current top-k threshold
//     stops admitting new candidate documents.
//  2. Whole-block skips. A closed block whose doc-ID range contains no
//     still-live candidate is skipped without touching its posting pages;
//     only the dense summaries (~1/blockSize of the postings) are read.
//     Live candidates are tracked in a lazily built per-probe bitmap, so
//     probes that never close a block pay nothing for it.
//  3. Shard pruning. When every involved shard has block summaries, a
//     floor-seeding pre-pass scores the highest-bound shard(s) into a
//     throwaway accumulator generation; shards whose score upper bound
//     cannot beat the resulting floor are pruned — their posting pages
//     are never prefaulted — and the main gather opens with the floor
//     preseeded, so pruned shards' lists begin closed. The pre-pass only
//     arms itself when the per-query bound profile is skewed
//     (passASkewFactor); on flat profiles it would be pure double work.
//
// Inner scoring loops are lane-grouped (laneWidth-wide groups with bounds
// checks hoisted); every document sees the identical float64 operation
// sequence as a scalar loop, so the lanes change speed, never sums.
// SearchStats exposes per-probe counters (ProbeStats) for the
// wwt_probe_* metrics and the planner's scanned-fraction feature.
//
// # Persistence: gob snapshots and the flat sharded index
//
// Two on-disk forms exist side by side:
//
//   - index.gob / store.gob — encoding/gob snapshots of the build-time
//     Index and the table Store, each prefixed with an 8-byte magic
//     ("WWTIXG01" / "WWTSTG01") and a uint32 little-endian format version
//     so stale or mixed-up files fail fast with a precise error. Loading
//     the index gob decodes every posting map into memory (O(corpus)).
//
//   - docs.wwt + postings-NNN.wwt — the flat sharded index written by
//     WriteSharded / WriteShardedWith and opened by OpenSharded. Opening
//     is O(1) in corpus size: the files are memory-mapped (page-cache
//     backed) and the searcher's arrays alias the mapping directly; no
//     maps are built and no bytes are copied on the fast path.
//
// # Flat file layout (format versions 1 and 2)
//
// Every .wwt file is little-endian and starts with a 48-byte header:
//
//	offset  size  field
//	     0     8  magic "WWTFLT01" (version 1) / "WWTFLT02" (version 2)
//	     8     4  format version (1 or 2, matching the magic)
//	    12     4  kind: 1 = docs file, 2 = postings shard
//	    16     4  shardIndex (0 for docs)
//	    20     4  shardCount
//	    24     8  numDocs
//	    32     8  numTerms (this shard's; 0 for docs)
//	    40     4  sectionCount
//	    44     4  version 1: reserved (0); version 2: blockSize (> 0)
//
// A section table of sectionCount 24-byte entries {id u32, reserved u32,
// offset u64, len u64} follows, then the section payloads. Every payload
// starts at an 8-byte-aligned offset, so int64/float64 sections can be
// aliased in place. Strings (doc IDs, terms) are stored as an int64
// offsets array plus one concatenated byte blob; terms are sorted, and
// lookup is a binary search over the blob — building a map at open time
// would make open O(terms).
//
// Version 2 postings shards append four block-summary sections per field f
// (IDs secFieldBlkBase + 4f + k), derived deterministically from the
// postings with the header's blockSize:
//
//	k  section      type     contents
//	0  blkOff[f]    int32    per term: first block index; numTerms+1
//	                         entries (CSR over blocks)
//	1  blkMax[f]    float32  per block: max posting weight
//	2  blkDoc[f]    int32    per block: first doc ID
//	3  fieldMaxW[f] float32  per term: max posting weight in the field
//
// Blocks are aligned to each (term, field) list's start — block b of term
// t covers postings [t.off + b·blockSize, t.off + (b+1)·blockSize) of the
// list — so the summaries are exactly reproducible from the postings.
// Version 1 files open with no block summaries: probes fall back to the
// term-level skip alone, bit-identical hits, no pruning counters.
//
// Postings shards may also carry section secBestWeight (id 24, float64,
// numTerms entries): each term's best per-document cross-field weight sum
// — the idf-free factor of the maxScore bound. Multi-segment probes need
// it to restate a term's score bound under the corpus-global idf (bound =
// global idf · bestWeight). Files written before the section derive a
// safe overshoot from maxScore/idf at open; readers that predate it skip
// the unknown section id — both directions stay compatible.
//
// On little-endian hosts with an aligned mapping the typed views are
// zero-copy (unsafe.Slice over the mapped bytes); on big-endian hosts or
// unaligned fallback reads each section is decoded element-wise into a
// fresh slice. When mmap is unavailable (or refused by the kernel) the
// same files are read whole through io.ReaderAt into aligned buffers —
// same format, portable path, still one validation pass.
//
// Because the flat searcher's strings and doc sets alias the mapping,
// results must not outlive ShardedSearcher.Close.
//
// # Sharding and the scatter-gather contract
//
// Terms are partitioned across postings shards by FNV-1a hash
// (shardOfToken), while documents stay global: every shard stores the
// full-corpus df, idf and max-score bound for its terms, so per-term
// statistics are exactly equal to their single-shard values. A probe
// scatters term resolution (lookup + page prefault) across shards in
// parallel — or, when the pruning pre-pass is armed, resolves serially
// and defers prefaulting until the prune decision — then gathers by
// accumulating every resolved term in the canonical order above.
// TestShardedSearcherEquivalence pins bit-identity for N ∈ {1, 2, 3, 8};
// keep that invariant when touching either search loop.
//
// # Segments and the manifest: the live-index lifecycle
//
// A live index directory is a flat index plus an ordered list of frozen
// segments, committed by a manifest (segment.go, multi.go):
//
//	idx/
//	  MANIFEST.json           the committed generation (may be absent)
//	  docs.wwt                base segment ("."): flat files + store
//	  postings-NNN.wwt
//	  store.gob
//	  segments/seg-0000000000/   one ingest batch, frozen: a one-shard
//	    docs.wwt                 flat index + its own store.gob
//	    postings-000.wwt
//	    store.gob
//
// MANIFEST.json is UTF-8 JSON: {"version": 1, "generation": G,
// "segments": [...]}. Segment entries are paths relative to the index
// root; "." names the base index. Entry order is canonical — global doc
// numbers are assigned segment by segment in list order, so the manifest
// fixes the doc-ID space, not just the file set. Absolute paths, empty
// entries and ".." are rejected at read time.
//
// The manifest is the single commit point, written atomically: the JSON
// goes to a CreateTemp file in the index directory, is fsynced, closed,
// and renamed over MANIFEST.json. A reader therefore sees either the old
// generation or the new one, never a torn file. Every other file in the
// lifecycle is immutable once written: segment writes (SegmentWriter),
// merges (MergeSegments) and the base index are create-only, so the
// crash-recovery rule is simply "trust the manifest": a segment
// directory not (or not yet) listed is an orphan from a crash between
// flush and commit — ignored by OpenMultiSnapshot, its sequence number
// never reused (the live engine scans segments/ before minting names).
// A directory with no manifest at all is a plain frozen index; its
// implicit manifest is generation 0 with segments ["."].
//
// Ingest appends: flush the batch as segments/seg-<next>, commit the
// manifest with the entry appended and generation+1. Merge compacts:
// write the union of a full tier as a new segment, commit with the
// picked entries replaced (at the first picked position) by the merged
// one, then unlink the inputs — readers still mapping them keep the
// inodes alive. PlanMerge picks the lowest size tier (TierBase-ratio
// buckets over doc counts) holding at least TierFanIn segments; the base
// "." is never an input.
//
// MultiSearcher unions top-k across the listed segments with per-term
// corpus-global statistics: df sums across segments, idf and the
// max-score bound are restated from the summed df (via secBestWeight
// above), and each segment gathers in the canonical term order, so a
// partitioned corpus scores bit-identically to the same corpus rebuilt
// as one index (TestMultiSearcherEquivalence, K ∈ {1, 2, 3, 8} × format
// versions × open paths). Doc numbers remap by adding the segment's base
// (sum of prior segment lengths).
package index
