// Package index is the repo's Lucene substitute (§2.1): every extracted web
// table is indexed as a document with three analyzed text fields — header,
// context and content — carrying relative boosts 2, 1.5 and 1. It supports
// the union-of-keywords probes used by WWT's two-stage retrieval, exposes
// corpus statistics (IDF) to the feature code, and serves the sorted
// document sets that the PMI² feature intersects.
//
// # Ownership and concurrency contracts
//
// Index is the mutable, map-based build-time structure and the reference
// scorer; it must not be mutated once a Searcher has been frozen from it.
// Searcher is the query-time form: a frozen CSR layout with precomputed
// (1+ln tf)·boost/√len weights, a pooled dense accumulator with
// generation-tagged reset, bounded top-k heap selection and a max-score
// admission skip. A Searcher is immutable and safe for concurrent Search
// calls; TestSearcherEquivalence pins it hit-for-hit identical to
// Index.Search (both accumulate in lexicographic term order, so float64
// sums stay bit-identical) — keep that invariant when touching either
// side.
//
// DocSetCache (and its sharded counterpart ShardedDocSetCache) is a
// concurrency-safe LRU over DocSet, keyed by the canonicalized token set
// plus field mask. Cached doc-set slices are shared and read-only: callers
// only intersect them, never mutate. Store is append-only at build time
// and read-only afterwards.
//
// # Persistence: gob snapshots and the flat sharded index
//
// Two on-disk forms exist side by side:
//
//   - index.gob / store.gob — encoding/gob snapshots of the build-time
//     Index and the table Store, each prefixed with an 8-byte magic
//     ("WWTIXG01" / "WWTSTG01") and a uint32 little-endian format version
//     so stale or mixed-up files fail fast with a precise error. Loading
//     the index gob decodes every posting map into memory (O(corpus)).
//
//   - docs.wwt + postings-NNN.wwt — the flat sharded index written by
//     WriteSharded and opened by OpenSharded. Opening is O(1) in corpus
//     size: the files are memory-mapped (page-cache backed) and the
//     searcher's arrays alias the mapping directly; no maps are built and
//     no bytes are copied on the fast path.
//
// # Flat file layout (format version 1)
//
// Every .wwt file is little-endian and starts with a 48-byte header:
//
//	offset  size  field
//	     0     8  magic "WWTFLT01"
//	     8     4  format version (1)
//	    12     4  kind: 1 = docs file, 2 = postings shard
//	    16     4  shardIndex (0 for docs)
//	    20     4  shardCount
//	    24     8  numDocs
//	    32     8  numTerms (this shard's; 0 for docs)
//	    40     4  sectionCount
//	    44     4  reserved
//
// A section table of sectionCount 24-byte entries {id u32, reserved u32,
// offset u64, len u64} follows, then the section payloads. Every payload
// starts at an 8-byte-aligned offset, so int64/float64 sections can be
// aliased in place. Strings (doc IDs, terms) are stored as an int64
// offsets array plus one concatenated byte blob; terms are sorted, and
// lookup is a binary search over the blob — building a map at open time
// would make open O(terms).
//
// On little-endian hosts with an aligned mapping the typed views are
// zero-copy (unsafe.Slice over the mapped bytes); on big-endian hosts or
// unaligned fallback reads each section is decoded element-wise into a
// fresh slice. When mmap is unavailable (or refused by the kernel) the
// same files are read whole through io.ReaderAt into aligned buffers —
// same format, portable path, still one validation pass.
//
// Because the flat searcher's strings and doc sets alias the mapping,
// results must not outlive ShardedSearcher.Close.
//
// # Sharding and the scatter-gather contract
//
// Terms are partitioned across postings shards by FNV-1a hash
// (shardOfToken), while documents stay global: every shard stores the
// full-corpus df, idf and max-score bound for its terms, so per-term
// statistics are exactly equal to their single-shard values. A probe
// scatters term resolution (lookup + page prefault) across shards in
// parallel, then gathers by accumulating in canonical lexicographic term
// order with the same admission-skip logic as Searcher.Search. Identical
// operation order makes the float64 sums — and therefore hits, scores and
// tie-breaks — bit-identical to the single-shard searcher for every shard
// count; TestShardedSearcherEquivalence pins this for N ∈ {1, 2, 3, 8}.
// Keep that invariant when touching either search loop.
package index
