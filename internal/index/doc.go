// Package index is the repo's Lucene substitute (§2.1): every extracted web
// table is indexed as a document with three analyzed text fields — header,
// context and content — carrying relative boosts 2, 1.5 and 1. It supports
// the union-of-keywords probes used by WWT's two-stage retrieval, exposes
// corpus statistics (IDF) to the feature code, and serves the sorted
// document sets that the PMI² feature intersects. Indexes and table stores
// persist to disk with encoding/gob.
//
// # Ownership and concurrency contracts
//
// Index is the mutable, map-based build-time structure and the reference
// scorer; it must not be mutated once a Searcher has been frozen from it.
// Searcher is the query-time form: a frozen CSR layout with precomputed
// (1+ln tf)·boost/√len weights, a pooled dense accumulator with
// generation-tagged reset, bounded top-k heap selection and a max-score
// admission skip. A Searcher is immutable and safe for concurrent Search
// calls; TestSearcherEquivalence pins it hit-for-hit identical to
// Index.Search (both accumulate in lexicographic term order, so float64
// sums stay bit-identical) — keep that invariant when touching either
// side.
//
// DocSetCache is a concurrency-safe LRU over Searcher.DocSet, keyed by
// the canonicalized token set plus field mask. Cached doc-set slices are
// shared and read-only: callers only intersect them, never mutate.
// Store is append-only at build time and read-only afterwards.
package index
