//go:build !unix

package index

// mapFile on platforms without a wired-up mmap reads the whole file into
// an aligned buffer through the portable io.ReaderAt fallback. The flat
// format still skips all decoding — arrays are aliased from the buffer
// exactly as they would be from a mapping.
func mapFile(path string) ([]byte, func() error, error) {
	return readFileAligned(path)
}
