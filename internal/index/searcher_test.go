package index

import (
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"wwt/internal/wtable"
)

// buildRandCorpus returns an index plus its tables over the shared random
// table generator.
func buildRandCorpus(t *testing.T, seed int64, n int) (*Index, []*wtable.Table) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tables := make([]*wtable.Table, n)
	for i := range tables {
		tables[i] = randDocTable(r, i)
	}
	ix, err := Build(tables)
	if err != nil {
		t.Fatal(err)
	}
	return ix, tables
}

func randQuery(r *rand.Rand) []string {
	q := make([]string, 1+r.Intn(6))
	for i := range q {
		q[i] = propWords[r.Intn(len(propWords))]
	}
	if r.Intn(3) == 0 {
		q = append(q, "unknownword") // absent from every table
	}
	if r.Intn(3) == 0 && len(q) > 1 {
		q = append(q, q[0]) // duplicate token
	}
	return q
}

func sameHits(t *testing.T, want, got []Hit, ctx string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: hit count %d != %d (want %v, got %v)", ctx, len(got), len(want), want, got)
	}
	for i := range want {
		if want[i].ID != got[i].ID {
			t.Fatalf("%s: hit %d ID %q != %q", ctx, i, got[i].ID, want[i].ID)
		}
		if math.Abs(want[i].Score-got[i].Score) > 1e-9 {
			t.Fatalf("%s: hit %d score %v != %v", ctx, i, got[i].Score, want[i].Score)
		}
	}
}

// TestSearcherEquivalence: the frozen CSR searcher must return the exact
// hit sets, order and scores (within 1e-9) of the map-based scorer, for
// every k including the unbounded and over-bounded cases.
func TestSearcherEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 2012, 99991} {
		ix, _ := buildRandCorpus(t, seed, 2+rand.New(rand.NewSource(seed)).Intn(60))
		s := NewSearcher(ix)
		r := rand.New(rand.NewSource(seed + 1))
		for qi := 0; qi < 50; qi++ {
			q := randQuery(r)
			for _, k := range []int{0, 1, 2, 3, 5, 17, 1000} {
				want := ix.Search(q, k)
				got := s.Search(q, k)
				sameHits(t, want, got, "search")
			}
		}
	}
}

// TestSearcherSkipWithExactlyKTouched: regression for the max-score skip
// threshold. When the first term touches exactly k documents, kthLargest
// hands topKSelect a slice with k == len, which topKSelect returns
// unheapified — so [0] used to be an arbitrary (often the largest) partial
// score. The inflated threshold tripped the skip and documents brought in
// by later terms were never registered, even though they belong in the
// final top k.
func TestSearcherSkipWithExactlyKTouched(t *testing.T) {
	row := func(cells ...string) wtable.Row {
		r := wtable.Row{}
		for _, c := range cells {
			r.Cells = append(r.Cells, wtable.Cell{Text: c})
		}
		return r
	}
	// "aaa" touches exactly k=2 docs: t0 strongly (boosted header match)
	// and t1 weakly. "bbb" touches only t2, whose score lands strictly
	// between t0's and t1's, so the true top 2 is {t0, t2}. With the
	// inflated threshold (t0's partial score > maxScore["bbb"]) the skip
	// fired during "bbb" and t2 was dropped in favor of t1.
	tables := []*wtable.Table{
		{ID: "t0", HeaderRows: []wtable.Row{row("aaa")}, BodyRows: []wtable.Row{row("xxx")}},
		{ID: "t1", BodyRows: []wtable.Row{row("aaa")}},
		{ID: "t2", BodyRows: []wtable.Row{row("bbb")}},
	}
	ix, err := Build(tables)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(ix)
	q := []string{"aaa", "bbb"}
	want := ix.Search(q, 2)
	got := s.Search(q, 2)
	sameHits(t, want, got, "exactly-k skip")
	ids := map[string]bool{}
	for _, h := range got {
		ids[h.ID] = true
	}
	if !ids["t0"] || !ids["t2"] {
		t.Fatalf("top-2 = %v, want t0 and t2 (t2 arrives after the skip threshold is set)", got)
	}
}

// TestSearcherDocSetEquivalence: DocsWithToken and DocSet must match the
// index across field combinations.
func TestSearcherDocSetEquivalence(t *testing.T) {
	ix, _ := buildRandCorpus(t, 4242, 40)
	s := NewSearcher(ix)
	fieldSets := [][]Field{
		{FieldHeader}, {FieldContext}, {FieldContent},
		{FieldHeader, FieldContext}, {FieldHeader, FieldContext, FieldContent},
	}
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 100; i++ {
		toks := randQuery(r)
		for _, fs := range fieldSets {
			want := ix.DocSet(toks, fs...)
			got := s.DocSet(toks, fs...)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("DocSet(%v, %v) = %v, want %v", toks, fs, got, want)
			}
		}
		tok := propWords[r.Intn(len(propWords))]
		for _, fs := range fieldSets {
			want := ix.DocsWithToken(tok, fs...)
			got := s.DocsWithToken(tok, fs...)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("DocsWithToken(%q, %v) = %v, want %v", tok, fs, got, want)
			}
		}
	}
}

// TestSearcherAfterGobRoundTrip: a searcher frozen from a loaded index must
// behave like one frozen from the original.
func TestSearcherAfterGobRoundTrip(t *testing.T) {
	ix, _ := buildRandCorpus(t, 321, 25)
	path := filepath.Join(t.TempDir(), "index.gob")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(loaded)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		q := randQuery(r)
		sameHits(t, ix.Search(q, 10), s.Search(q, 10), "post-gob search")
	}
}

// TestSearcherConcurrent: one searcher must serve goroutines concurrently
// (run under -race).
func TestSearcherConcurrent(t *testing.T) {
	ix, _ := buildRandCorpus(t, 777, 50)
	s := NewSearcher(ix)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				q := randQuery(r)
				want := ix.Search(q, 7)
				got := s.Search(q, 7)
				if len(want) != len(got) {
					t.Errorf("goroutine %d: %d hits, want %d", g, len(got), len(want))
					return
				}
				for j := range want {
					if want[j].ID != got[j].ID || math.Abs(want[j].Score-got[j].Score) > 1e-9 {
						t.Errorf("goroutine %d: hit %d mismatch", g, j)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestDocSetCache: cached results equal uncached ones, repeats hit, and the
// LRU respects its capacity.
func TestDocSetCache(t *testing.T) {
	ix, _ := buildRandCorpus(t, 11, 30)
	s := NewSearcher(ix)
	c := NewDocSetCache(s, 4)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		toks := randQuery(r)
		want := ix.DocSet(toks, FieldHeader, FieldContext)
		got := c.DocSet(toks, FieldHeader, FieldContext)
		if len(want) != 0 || len(got) != 0 {
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("cached DocSet(%v) = %v, want %v", toks, got, want)
			}
		}
		if c.Len() > 4 {
			t.Fatalf("cache exceeded capacity: %d", c.Len())
		}
	}
	c2 := NewDocSetCache(s, 0) // default capacity
	toks := []string{propWords[0], propWords[1]}
	first := c2.DocSet(toks, FieldContent)
	second := c2.DocSet(toks, FieldContent)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("repeat lookup differs")
	}
	hits, misses := c2.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	// Token order and duplicates must not change the key.
	c2.DocSet([]string{propWords[1], propWords[0], propWords[0]}, FieldContent)
	if h, _ := c2.Stats(); h != 2 {
		t.Fatalf("canonicalized key missed the cache (hits=%d)", h)
	}
}
