package index

// On-disk formats. Two families exist:
//
//   - The gob snapshots (index.gob / store.gob) keep the full mutable Index
//     and the table Store. They are decode-on-load and now carry an 8-byte
//     magic plus a uint32 format version so a stale or foreign file fails
//     with a clear error instead of a decoder error deep in the stack.
//
//   - The flat sharded index (docs.wwt + postings-NNN.wwt) is the serving
//     form: a versioned, mmap-friendly layout of the frozen Searcher's CSR
//     arrays. Opening it is O(1) page mapping plus header validation — no
//     decode — with a portable read-into-memory fallback where mmap is
//     unavailable.
//
// Flat file layout (all integers little-endian, sections 8-byte aligned):
//
//	offset  size  field
//	0       8     magic "WWTFLT01" (version 1) or "WWTFLT02" (version 2)
//	8       4     format version (1 or 2, matching the magic)
//	12      4     kind (1 = doc table, 2 = postings shard)
//	16      4     shard index (postings files; 0 for the doc table)
//	20      4     shard count
//	24      8     numDocs
//	32      8     numTerms (0 for the doc table)
//	40      4     section count
//	44      4     block size (v2 postings files; reserved 0 in v1)
//	48      24×n  section table: {id u32, reserved u32, offset u64, bytes u64}
//	...           section payloads, each 8-byte aligned, zero padded between
//
// Version 2 postings files add four block-summary sections per field
// (secFieldBlkBase); everything else is identical to version 1, and a v1
// file keeps opening unchanged (it simply carries no block summaries).
//
// Numeric sections are raw little-endian arrays ([]int32, []int64,
// []float32, []float64 bit patterns); on little-endian hosts they are
// aliased straight out of the mapping with zero copies, on big-endian
// hosts they are decoded element-wise into the heap. String tables
// (table IDs, term names) are an offsets array plus one concatenated
// byte blob.

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"unsafe"
)

// Magic numbers and versions. The gob magics differ per file kind so that
// handing a store to Load (or vice versa) is diagnosed precisely. Flat
// version 2 (WWTFLT02) extends version 1 with block-max posting summaries;
// both open through the same reader.
const (
	flatMagic     = "WWTFLT01"
	flatMagicV2   = "WWTFLT02"
	gobIndexMagic = "WWTIXG01"
	gobStoreMagic = "WWTSTG01"

	flatFormatVersion  = 1
	flatFormatVersion2 = 2
	gobFormatVersion   = 1
)

// Flat file kinds.
const (
	kindDocs     = 1 // doc table: table IDs shared by every shard
	kindPostings = 2 // one postings shard: terms + CSR arrays
)

// Flat section IDs.
const (
	secIDOffs   = 1 // []int64, numDocs+1 offsets into secIDBlob
	secIDBlob   = 2 // concatenated table-ID bytes
	secTermOffs = 3 // []int64, numTerms+1 offsets into secTermBlob
	secTermBlob = 4 // concatenated term bytes, lexicographic order
	secIDF      = 5 // []float64, per term
	secMaxScore = 6 // []float64, per term
	secDF       = 7 // []int32, per term
	// Per-field CSR sections: off / docs / wts for field f.
	secFieldBase = 8 // + 3*f + {0: off, 1: docs, 2: wts}
	// secBestWeight is the idf-free counterpart of secMaxScore: per term,
	// the maximum per-document cross-field weight sum. A multi-segment
	// probe rescales it by the corpus-global idf to get a valid bound;
	// files written before this section existed derive it from
	// maxScore/idf at open time, and readers that predate it ignore the
	// unknown ID.
	secBestWeight = 24 // []float64, per term
)

func secFieldOff(f int) uint32  { return uint32(secFieldBase + 3*f) }
func secFieldDocs(f int) uint32 { return uint32(secFieldBase + 3*f + 1) }
func secFieldWts(f int) uint32  { return uint32(secFieldBase + 3*f + 2) }

// Format-v2 block-summary sections, per field f. Posting lists are cut into
// fixed-width blocks (the width lives in the header's blockSize field, byte
// 44, which version 1 wrote as reserved 0); the summaries let a probe bound
// and skip whole blocks without touching their posting pages.
const secFieldBlkBase = 32 // + 4*f + {0: blkOff, 1: blkMax, 2: blkDoc, 3: fieldMaxW}

func secFieldBlkOff(f int) uint32   { return uint32(secFieldBlkBase + 4*f) }
func secFieldBlkMax(f int) uint32   { return uint32(secFieldBlkBase + 4*f + 1) }
func secFieldBlkDoc(f int) uint32   { return uint32(secFieldBlkBase + 4*f + 2) }
func secFieldFieldMax(f int) uint32 { return uint32(secFieldBlkBase + 4*f + 3) }

const flatHeaderSize = 48

// hostLittleEndian reports whether raw multi-byte loads read little-endian
// data correctly on this machine — the gate for zero-copy array aliasing.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func align8(n int) int { return (n + 7) &^ 7 }

// ---- raw array <-> byte views ------------------------------------------

// int32Bytes returns the little-endian byte image of s: a zero-copy alias
// on little-endian hosts, an encoded copy otherwise.
func int32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
	}
	out := make([]byte, 4*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

func int64Bytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 8*len(s))
	}
	out := make([]byte, 8*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(v))
	}
	return out
}

func float32Bytes(s []float32) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
	}
	out := make([]byte, 4*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

func float64Bytes(s []float64) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 8*len(s))
	}
	out := make([]byte, 8*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// viewInt32 interprets b as a little-endian []int32 — zero-copy when the
// host is little-endian and b is 4-aligned (always true for section
// payloads: the mapping base is page aligned and sections are 8-aligned),
// a decoded heap copy otherwise.
func viewInt32(b []byte) []int32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func viewInt64(b []byte) []int64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func viewFloat32(b []byte) []float32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func viewFloat64(b []byte) []float64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// unsafeString returns b viewed as a string without copying. The bytes
// must stay immutable and mapped for the string's lifetime.
func unsafeString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// alignedBuf allocates an 8-byte-aligned byte buffer (backed by []uint64,
// whose alignment the runtime guarantees) so the read-into-memory fallback
// can use the same zero-copy array views as the mmap path.
func alignedBuf(n int) []byte {
	if n == 0 {
		return nil
	}
	u := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&u[0])), n)
}

// readFileAligned reads a whole file into an aligned heap buffer — the
// portable io.ReaderAt fallback used when mmap is unavailable or disabled.
func readFileAligned(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	buf := alignedBuf(int(st.Size()))
	if _, err := f.ReadAt(buf, 0); err != nil && int64(len(buf)) > 0 {
		return nil, nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return buf, func() error { return nil }, nil
}

// ---- flat file writer ---------------------------------------------------

// section is one payload queued for writeFlatFile.
type section struct {
	id   uint32
	data []byte
}

// writeFlatFile lays out header + section table + 8-aligned payloads.
// version selects the magic/version pair; blockSize lands in header byte 44
// (v2 postings files; 0 everywhere else, matching v1's reserved field).
func writeFlatFile(path string, version, blockSize, kind, shardIndex, shardCount uint32, numDocs, numTerms uint64, secs []section) (err error) {
	headerSize := flatHeaderSize + 24*len(secs)
	hdr := make([]byte, align8(headerSize))
	magic := flatMagic
	if version == flatFormatVersion2 {
		magic = flatMagicV2
	}
	copy(hdr[0:8], magic)
	le := binary.LittleEndian
	le.PutUint32(hdr[8:], version)
	le.PutUint32(hdr[12:], kind)
	le.PutUint32(hdr[16:], shardIndex)
	le.PutUint32(hdr[20:], shardCount)
	le.PutUint64(hdr[24:], numDocs)
	le.PutUint64(hdr[32:], numTerms)
	le.PutUint32(hdr[40:], uint32(len(secs)))
	le.PutUint32(hdr[44:], blockSize)

	off := len(hdr)
	for i, s := range secs {
		e := hdr[flatHeaderSize+24*i:]
		le.PutUint32(e, s.id)
		le.PutUint64(e[8:], uint64(off))
		le.PutUint64(e[16:], uint64(len(s.data)))
		off = align8(off + len(s.data))
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	if _, err := f.Write(hdr); err != nil {
		return err
	}
	var pad [8]byte
	pos := len(hdr)
	for _, s := range secs {
		if _, err := f.Write(s.data); err != nil {
			return err
		}
		pos += len(s.data)
		if p := align8(pos) - pos; p > 0 {
			if _, err := f.Write(pad[:p]); err != nil {
				return err
			}
			pos += p
		}
	}
	return nil
}

// ---- flat file reader ---------------------------------------------------

// flatFile is one opened flat-format file: the raw mapping, parsed header
// fields, and the section directory (views into the mapping).
type flatFile struct {
	path       string
	data       []byte
	closer     func() error
	version    uint32
	blockSize  int
	kind       uint32
	shardIndex uint32
	shardCount uint32
	numDocs    uint64
	numTerms   uint64
	secs       map[uint32][]byte
}

func (ff *flatFile) corrupt(format string, args ...any) error {
	return fmt.Errorf("index open %s: corrupt flat index: %s", ff.path, fmt.Sprintf(format, args...))
}

// openFlatFile maps (or reads) one flat file and validates magic, version
// and the section table. noMmap forces the portable read path.
func openFlatFile(path string, noMmap bool) (*flatFile, error) {
	var (
		data   []byte
		closer func() error
		err    error
	)
	if noMmap {
		data, closer, err = readFileAligned(path)
	} else {
		data, closer, err = mapFile(path)
	}
	if err != nil {
		return nil, fmt.Errorf("index open: %w", err)
	}
	ff := &flatFile{path: path, data: data, closer: closer}
	fail := func(e error) (*flatFile, error) {
		ff.Close()
		return nil, e
	}
	if len(data) < flatHeaderSize {
		return fail(ff.corrupt("file is %d bytes, smaller than the %d-byte header", len(data), flatHeaderSize))
	}
	got := string(data[0:8])
	if got != flatMagic && got != flatMagicV2 {
		switch got {
		case gobIndexMagic:
			return fail(fmt.Errorf("index open %s: this is a gob index snapshot (use index.Load), not a flat index file", path))
		case gobStoreMagic:
			return fail(fmt.Errorf("index open %s: this is a gob table store (use index.LoadStore), not a flat index file", path))
		}
		return fail(fmt.Errorf("index open %s: bad magic %q — not a wwt flat index file (foreign data, or written by an incompatible build); rebuild with wwt-index", path, got))
	}
	le := binary.LittleEndian
	ff.version = le.Uint32(data[8:])
	wantVersion := uint32(flatFormatVersion)
	if got == flatMagicV2 {
		wantVersion = flatFormatVersion2
	}
	if ff.version != wantVersion {
		return fail(fmt.Errorf("index open %s: flat format version %d, this build supports %d (%s) and %d (%s); rebuild with wwt-index",
			path, ff.version, flatFormatVersion, flatMagic, flatFormatVersion2, flatMagicV2))
	}
	if ff.version >= flatFormatVersion2 {
		ff.blockSize = int(le.Uint32(data[44:]))
	}
	ff.kind = le.Uint32(data[12:])
	ff.shardIndex = le.Uint32(data[16:])
	ff.shardCount = le.Uint32(data[20:])
	ff.numDocs = le.Uint64(data[24:])
	ff.numTerms = le.Uint64(data[32:])
	nSecs := int(le.Uint32(data[40:]))
	if flatHeaderSize+24*nSecs > len(data) {
		return fail(ff.corrupt("section table (%d entries) overruns the file", nSecs))
	}
	ff.secs = make(map[uint32][]byte, nSecs)
	for i := 0; i < nSecs; i++ {
		e := data[flatHeaderSize+24*i:]
		id := le.Uint32(e)
		off := le.Uint64(e[8:])
		n := le.Uint64(e[16:])
		if off%8 != 0 || off+n < off || off+n > uint64(len(data)) {
			return fail(ff.corrupt("section %d at [%d, %d) overruns the %d-byte file", id, off, off+n, len(data)))
		}
		if _, dup := ff.secs[id]; dup {
			return fail(ff.corrupt("duplicate section %d", id))
		}
		ff.secs[id] = data[off : off+n]
	}
	return ff, nil
}

// Close releases the mapping. Any zero-copy views into the file become
// invalid.
func (ff *flatFile) Close() error {
	if ff.closer == nil {
		return nil
	}
	c := ff.closer
	ff.closer = nil
	return c()
}

// hasSec reports whether a section is present — optional sections added
// after version freeze are probed with this before reading.
func (ff *flatFile) hasSec(id uint32) bool {
	_, ok := ff.secs[id]
	return ok
}

// sec returns a section payload, failing clearly when it is absent.
func (ff *flatFile) sec(id uint32) ([]byte, error) {
	b, ok := ff.secs[id]
	if !ok {
		return nil, ff.corrupt("missing section %d", id)
	}
	return b, nil
}

// int32Sec returns a section as []int32, validating the element count.
func (ff *flatFile) int32Sec(id uint32, count int) ([]int32, error) {
	b, err := ff.sec(id)
	if err != nil {
		return nil, err
	}
	if len(b) != 4*count {
		return nil, ff.corrupt("section %d is %d bytes, want %d int32s", id, len(b), count)
	}
	return viewInt32(b), nil
}

func (ff *flatFile) int64Sec(id uint32, count int) ([]int64, error) {
	b, err := ff.sec(id)
	if err != nil {
		return nil, err
	}
	if len(b) != 8*count {
		return nil, ff.corrupt("section %d is %d bytes, want %d int64s", id, len(b), count)
	}
	return viewInt64(b), nil
}

func (ff *flatFile) float32Sec(id uint32, count int) ([]float32, error) {
	b, err := ff.sec(id)
	if err != nil {
		return nil, err
	}
	if len(b) != 4*count {
		return nil, ff.corrupt("section %d is %d bytes, want %d float32s", id, len(b), count)
	}
	return viewFloat32(b), nil
}

func (ff *flatFile) float64Sec(id uint32, count int) ([]float64, error) {
	b, err := ff.sec(id)
	if err != nil {
		return nil, err
	}
	if len(b) != 8*count {
		return nil, ff.corrupt("section %d is %d bytes, want %d float64s", id, len(b), count)
	}
	return viewFloat64(b), nil
}

// packStrings flattens a string table into (offsets, blob) form.
func packStrings(ss []string) ([]int64, []byte) {
	total := 0
	for _, v := range ss {
		total += len(v)
	}
	offs := make([]int64, len(ss)+1)
	blob := make([]byte, 0, total)
	for i, v := range ss {
		offs[i] = int64(len(blob))
		blob = append(blob, v...)
	}
	offs[len(ss)] = int64(len(blob))
	return offs, blob
}
