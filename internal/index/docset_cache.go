package index

import (
	"sort"
	"strings"

	"wwt/internal/lru"
)

// DocSetCache is a bounded, concurrency-safe LRU cache in front of
// Searcher.DocSet. The PMI² feature probes the same H(Qℓ) set once per
// (query column × candidate column) and the same B(cell) set for every
// repeated cell value, within and across queries; caching the intersected
// sets turns those repeats into a map hit. Cached slices are shared —
// callers must treat them as read-only (every in-repo consumer only
// intersects them).
type DocSetCache struct {
	src *Searcher
	c   *lru.Cache[string, []int32]
}

// DefaultDocSetCacheSize bounds the cache when NewDocSetCache is given a
// non-positive capacity.
const DefaultDocSetCacheSize = 8192

// NewDocSetCache wraps a searcher with an LRU of at most capacity entries.
func NewDocSetCache(src *Searcher, capacity int) *DocSetCache {
	if capacity <= 0 {
		capacity = DefaultDocSetCacheSize
	}
	return &DocSetCache{src: src, c: lru.New[string, []int32](capacity)}
}

// DocSet returns Searcher.DocSet(tokens, fields...), memoized on the
// deduplicated sorted token set plus the field mask. The intersection runs
// outside the cache lock (it can be expensive; DocSet is a pure function
// of the key, so racing duplicate computes are harmless).
func (c *DocSetCache) DocSet(tokens []string, fields ...Field) []int32 {
	key := docSetKey(tokens, fields)
	return c.c.Get(key, func() []int32 { return c.src.DocSet(tokens, fields...) })
}

// Stats reports cumulative hit/miss counts.
func (c *DocSetCache) Stats() (hits, misses uint64) { return c.c.Stats() }

// Len returns the number of cached entries.
func (c *DocSetCache) Len() int { return c.c.Len() }

// docSetKey canonicalizes (tokens, fields) into a cache key: unique tokens
// sorted and joined with an unlikely separator, prefixed by the field mask.
func docSetKey(tokens []string, fields []Field) string {
	mask := 0
	for _, f := range fields {
		mask |= 1 << f
	}
	uniq := dedup(tokens)
	sort.Strings(uniq)
	var b strings.Builder
	b.Grow(2 + len(uniq)*8)
	b.WriteByte(byte('0' + mask))
	for _, t := range uniq {
		b.WriteByte(0x1f)
		b.WriteString(t)
	}
	return b.String()
}
