package index

import (
	"container/list"
	"sort"
	"strings"
	"sync"
)

// DocSetCache is a bounded, concurrency-safe LRU cache in front of
// Searcher.DocSet. The PMI² feature probes the same H(Qℓ) set once per
// (query column × candidate column) and the same B(cell) set for every
// repeated cell value, within and across queries; caching the intersected
// sets turns those repeats into a map hit. Cached slices are shared —
// callers must treat them as read-only (every in-repo consumer only
// intersects them).
type DocSetCache struct {
	src *Searcher

	mu  sync.Mutex
	cap int
	lru *list.List // front = most recent; values are *docSetEntry
	m   map[string]*list.Element

	hits, misses uint64
}

type docSetEntry struct {
	key string
	set []int32
}

// DefaultDocSetCacheSize bounds the cache when NewDocSetCache is given a
// non-positive capacity.
const DefaultDocSetCacheSize = 8192

// NewDocSetCache wraps a searcher with an LRU of at most capacity entries.
func NewDocSetCache(src *Searcher, capacity int) *DocSetCache {
	if capacity <= 0 {
		capacity = DefaultDocSetCacheSize
	}
	return &DocSetCache{
		src: src,
		cap: capacity,
		lru: list.New(),
		m:   make(map[string]*list.Element, capacity),
	}
}

// DocSet returns Searcher.DocSet(tokens, fields...), memoized on the
// deduplicated sorted token set plus the field mask.
func (c *DocSetCache) DocSet(tokens []string, fields ...Field) []int32 {
	key := docSetKey(tokens, fields)
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		c.lru.MoveToFront(el)
		set := el.Value.(*docSetEntry).set
		c.hits++
		c.mu.Unlock()
		return set
	}
	c.misses++
	c.mu.Unlock()

	// Compute outside the lock: intersections can be expensive and this
	// keeps concurrent misses from serializing. A racing duplicate insert
	// is harmless (same value; LRU keeps one entry per key).
	set := c.src.DocSet(tokens, fields...)

	c.mu.Lock()
	if _, ok := c.m[key]; !ok {
		c.m[key] = c.lru.PushFront(&docSetEntry{key: key, set: set})
		if c.lru.Len() > c.cap {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.m, oldest.Value.(*docSetEntry).key)
		}
	}
	c.mu.Unlock()
	return set
}

// Stats reports cumulative hit/miss counts.
func (c *DocSetCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached entries.
func (c *DocSetCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// docSetKey canonicalizes (tokens, fields) into a cache key: unique tokens
// sorted and joined with an unlikely separator, prefixed by the field mask.
func docSetKey(tokens []string, fields []Field) string {
	mask := 0
	for _, f := range fields {
		mask |= 1 << f
	}
	uniq := dedup(tokens)
	sort.Strings(uniq)
	var b strings.Builder
	b.Grow(2 + len(uniq)*8)
	b.WriteByte(byte('0' + mask))
	for _, t := range uniq {
		b.WriteByte(0x1f)
		b.WriteString(t)
	}
	return b.String()
}
