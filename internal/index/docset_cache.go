package index

import (
	"sort"
	"strings"
	"sync"

	"wwt/internal/lru"
)

// DocSetSource is anything that can compute sorted doc sets — both the
// single-shard Searcher and the ShardedSearcher qualify, as does the
// map-based Index.
type DocSetSource interface {
	DocSet(tokens []string, fields ...Field) []int32
}

// DocSetCache is a bounded, concurrency-safe LRU cache in front of a
// DocSetSource. The PMI² feature probes the same H(Qℓ) set once per
// (query column × candidate column) and the same B(cell) set for every
// repeated cell value, within and across queries; caching the intersected
// sets turns those repeats into a map hit. Cached slices are shared —
// callers must treat them as read-only (every in-repo consumer only
// intersects them).
type DocSetCache struct {
	src DocSetSource
	c   *lru.Cache[string, []int32]
}

// DefaultDocSetCacheSize bounds the cache when NewDocSetCache is given a
// non-positive capacity.
const DefaultDocSetCacheSize = 8192

// NewDocSetCache wraps a doc-set source with an LRU of at most capacity
// entries.
func NewDocSetCache(src DocSetSource, capacity int) *DocSetCache {
	if capacity <= 0 {
		capacity = DefaultDocSetCacheSize
	}
	return &DocSetCache{src: src, c: lru.New[string, []int32](capacity)}
}

// DocSet returns src.DocSet(tokens, fields...), memoized on the
// deduplicated sorted token set plus the field mask. The intersection runs
// outside the cache lock (it can be expensive; DocSet is a pure function
// of the key, so racing duplicate computes are harmless).
func (c *DocSetCache) DocSet(tokens []string, fields ...Field) []int32 {
	key := docSetKey(tokens, fields)
	if v, ok := c.c.Cached(key); ok { // closure-free: warm hits allocate only the key
		return v
	}
	// Copy fields so the variadic slice doesn't escape through the closure:
	// capturing it directly would heap-allocate it at every call site,
	// including warm hits that never run compute.
	fs := append([]Field(nil), fields...)
	return c.c.Get(key, func() []int32 { return c.src.DocSet(tokens, fs...) })
}

// AdoptFrom migrates old's entries into c (a fresh cache of a new index
// generation) and then evicts exactly the ones the generation change
// staled — stale receives each key's token set and reports whether any of
// its tokens could have gained members. Entries are re-inserted in LRU
// order, preserving recency; surviving warm entries keep serving hits
// across the swap. Valid only for append-only generation changes (doc
// numbers of prior documents unchanged): a merge remaps doc numbers, so
// merge swaps start cold instead. Returns entries adopted and evicted.
func (c *DocSetCache) AdoptFrom(old *DocSetCache, stale func(tokens []string) bool) (adopted, evicted int) {
	old.c.Each(func(k string, v []int32) {
		c.c.Put(k, v)
		adopted++
	})
	evicted = c.c.EvictIf(func(k string) bool { return stale(docSetKeyTokens(k)) })
	return adopted, evicted
}

// Stats reports cumulative hit/miss counts.
func (c *DocSetCache) Stats() (hits, misses uint64) { return c.c.Stats() }

// Len returns the number of cached entries.
func (c *DocSetCache) Len() int { return c.c.Len() }

// CacheCounters is one cache partition's cumulative hit/miss counters.
type CacheCounters struct {
	Hits, Misses uint64
}

// ShardedDocSetCache is the sharded counterpart of DocSetCache: one
// independent LRU per index shard, with keys routed by hash. Aligning the
// cache partitions with the index shards keeps lock contention per shard
// rather than global and gives per-shard hit-rate observability (surfaced
// through Engine.CacheStats → /metrics).
type ShardedDocSetCache struct {
	src    DocSetSource
	shards []*lru.Cache[string, []int32]
}

// NewShardedDocSetCache wraps src with nShards independent LRUs holding at
// most capacity entries in total (DefaultDocSetCacheSize when capacity is
// non-positive; every shard gets at least a handful of entries).
func NewShardedDocSetCache(src DocSetSource, nShards, capacity int) *ShardedDocSetCache {
	if nShards < 1 {
		nShards = 1
	}
	if capacity <= 0 {
		capacity = DefaultDocSetCacheSize
	}
	per := capacity / nShards
	if per < 16 {
		per = 16
	}
	c := &ShardedDocSetCache{src: src, shards: make([]*lru.Cache[string, []int32], nShards)}
	for i := range c.shards {
		c.shards[i] = lru.New[string, []int32](per)
	}
	return c
}

// DocSet is DocSetCache.DocSet with the key routed to its home shard.
func (c *ShardedDocSetCache) DocSet(tokens []string, fields ...Field) []int32 {
	key := docSetKey(tokens, fields)
	sh := c.shards[shardOfToken(key, len(c.shards))]
	if v, ok := sh.Cached(key); ok { // closure-free: warm hits allocate only the key
		return v
	}
	fs := append([]Field(nil), fields...) // see DocSetCache.DocSet
	return sh.Get(key, func() []int32 { return c.src.DocSet(tokens, fs...) })
}

// AdoptFrom is DocSetCache.AdoptFrom for the sharded cache: old's entries
// are re-routed by the new cache's shard count (generations can differ in
// shard layout), then the staled keys are evicted in place. Same
// append-only-generations contract. Returns entries adopted and evicted.
func (c *ShardedDocSetCache) AdoptFrom(old *ShardedDocSetCache, stale func(tokens []string) bool) (adopted, evicted int) {
	for _, osh := range old.shards {
		osh.Each(func(k string, v []int32) {
			c.shards[shardOfToken(k, len(c.shards))].Put(k, v)
			adopted++
		})
	}
	for _, sh := range c.shards {
		evicted += sh.EvictIf(func(k string) bool { return stale(docSetKeyTokens(k)) })
	}
	return adopted, evicted
}

// Stats reports cumulative hit/miss counts summed over all shards.
func (c *ShardedDocSetCache) Stats() (hits, misses uint64) {
	for _, sh := range c.shards {
		h, m := sh.Stats()
		hits += h
		misses += m
	}
	return hits, misses
}

// ShardStats reports each shard's cumulative counters, in shard order.
func (c *ShardedDocSetCache) ShardStats() []CacheCounters {
	out := make([]CacheCounters, len(c.shards))
	for i, sh := range c.shards {
		out[i].Hits, out[i].Misses = sh.Stats()
	}
	return out
}

// Len returns the number of cached entries across all shards.
func (c *ShardedDocSetCache) Len() int {
	n := 0
	for _, sh := range c.shards {
		n += sh.Len()
	}
	return n
}

// keyScratch pools the sort buffer docSetKey uses, so key construction's
// only allocation is the key string itself.
var keyScratch = sync.Pool{New: func() any { return new(docSetKeyScratch) }}

type docSetKeyScratch struct {
	toks []string
}

// docSetKey canonicalizes (tokens, fields) into a cache key: unique tokens
// sorted and joined with an unlikely separator, prefixed by the field
// mask. One pass over a pooled sorted copy sizes the builder exactly, so
// the single allocation is the returned key — warm cache hits do no other
// allocation (pinned by TestDocSetCacheWarmHitAllocs).
func docSetKey(tokens []string, fields []Field) string {
	mask := 0
	for _, f := range fields {
		mask |= 1 << f
	}
	ks := keyScratch.Get().(*docSetKeyScratch)
	toks := append(ks.toks[:0], tokens...)
	sort.Strings(toks)
	size := 1
	for i, t := range toks {
		if i > 0 && t == toks[i-1] {
			continue
		}
		size += 1 + len(t)
	}
	var b strings.Builder
	b.Grow(size)
	b.WriteByte(byte('0' + mask))
	for i, t := range toks {
		if i > 0 && t == toks[i-1] {
			continue
		}
		b.WriteByte(0x1f)
		b.WriteString(t)
	}
	ks.toks = toks
	keyScratch.Put(ks)
	return b.String()
}

// docSetKeyTokens recovers the sorted unique token set from a docSetKey —
// the separator never occurs inside normalized tokens, so the split is
// exact. Generation migration uses it to test keys for staleness.
func docSetKeyTokens(key string) []string {
	if len(key) <= 1 {
		return nil
	}
	return strings.Split(key[1:], "\x1f")[1:]
}
