package index

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"wwt/internal/wtable"
)

var propWords = []string{
	"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
}

func randDocTable(r *rand.Rand, id int) *wtable.Table {
	t := &wtable.Table{ID: fmt.Sprintf("t%d", id)}
	pick := func(n int) string {
		s := ""
		for i := 0; i < n; i++ {
			if i > 0 {
				s += " "
			}
			s += propWords[r.Intn(len(propWords))]
		}
		return s
	}
	if r.Intn(3) > 0 {
		t.HeaderRows = []wtable.Row{{Cells: []wtable.Cell{{Text: pick(2)}, {Text: pick(1)}}}}
	}
	rows := 1 + r.Intn(4)
	for i := 0; i < rows; i++ {
		t.BodyRows = append(t.BodyRows, wtable.Row{Cells: []wtable.Cell{{Text: pick(1)}, {Text: pick(2)}}})
	}
	if r.Intn(2) == 0 {
		t.Context = []wtable.Snippet{{Text: pick(3), Score: 1}}
	}
	return t
}

// bruteScore recomputes the Search score for one document directly from
// the definition.
func bruteScore(ix *Index, tables []*wtable.Table, doc int, tokens []string) float64 {
	fields := FieldTokens(tables[doc])
	var score float64
	seen := map[string]bool{}
	for _, tok := range tokens {
		if seen[tok] {
			continue
		}
		seen[tok] = true
		idf := ix.IDF(tok)
		for f := 0; f < int(numFields); f++ {
			tf := 0
			for _, w := range fields[f] {
				if w == tok {
					tf++
				}
			}
			if tf == 0 {
				continue
			}
			l := float64(len(fields[f]))
			if l < 1 {
				l = 1
			}
			// Spelled out independently of postingWeight (the oracle must
			// not share the code under test); the float32 conversion is the
			// index's documented storage precision.
			score += idf * float64(float32(Boosts[f]*(1+math.Log(float64(tf)))/math.Sqrt(l)))
		}
	}
	return score
}

// TestSearchMatchesBruteForceQuick: the inverted index must produce
// exactly the scores of a linear scan.
func TestSearchMatchesBruteForceQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		tables := make([]*wtable.Table, n)
		for i := range tables {
			tables[i] = randDocTable(r, i)
		}
		ix, err := Build(tables)
		if err != nil {
			return false
		}
		query := []string{propWords[r.Intn(len(propWords))], propWords[r.Intn(len(propWords))]}
		hits := ix.Search(query, 0)
		got := map[string]float64{}
		for _, h := range hits {
			got[h.ID] = h.Score
		}
		for doc := 0; doc < n; doc++ {
			want := bruteScore(ix, tables, doc, query)
			if want == 0 {
				if _, ok := got[tables[doc].ID]; ok {
					return false
				}
				continue
			}
			if math.Abs(got[tables[doc].ID]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDocSetSubsetOfUnionQuick: DocSet(tokens) ⊆ DocsWithToken(t) for
// every t, and is sorted strictly ascending.
func TestDocSetSubsetOfUnionQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		tables := make([]*wtable.Table, n)
		for i := range tables {
			tables[i] = randDocTable(r, i)
		}
		ix, err := Build(tables)
		if err != nil {
			return false
		}
		toks := []string{propWords[r.Intn(len(propWords))], propWords[r.Intn(len(propWords))]}
		set := ix.DocSet(toks, FieldContent)
		for i := 1; i < len(set); i++ {
			if set[i] <= set[i-1] {
				return false
			}
		}
		for _, tok := range toks {
			union := ix.DocsWithToken(tok, FieldContent)
			if IntersectSize(set, union) != len(set) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
