package plan

import (
	"sync"
	"testing"
	"time"
)

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 || e.Count() != 0 {
		t.Fatalf("cold EWMA: value %v count %d, want zeros", e.Value(), e.Count())
	}
	e.Observe(10)
	if e.Value() != 10 {
		t.Fatalf("first observation must seed directly: got %v", e.Value())
	}
	e.Observe(20)
	if e.Value() != 15 {
		t.Fatalf("alpha=0.5 after 10,20: got %v, want 15", e.Value())
	}
	if e.Count() != 2 {
		t.Fatalf("count: got %d, want 2", e.Count())
	}
}

func TestEWMABadAlphaFallsBack(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5} {
		e := NewEWMA(alpha)
		if e.alpha != DefaultAlpha {
			t.Fatalf("alpha %v: got %v, want DefaultAlpha", alpha, e.alpha)
		}
	}
}

func TestEstimatorColdIsZero(t *testing.T) {
	e := NewEstimator(5, DefaultAlpha)
	if got := e.EstimateQuery(Features{Postings: 1000, Tables: 40}, 4, true); got != 0 {
		t.Fatalf("cold estimate: got %v, want 0", got)
	}
	if got := e.EstimateTail(40, 4, true); got != 0 {
		t.Fatalf("cold tail: got %v, want 0", got)
	}
	if e.Calibrated(0) {
		t.Fatal("cold estimator reports calibrated")
	}
	if e.ErrorRate() != 0 {
		t.Fatalf("cold error rate: got %v", e.ErrorRate())
	}
}

// calibration from one synthetic sample must make estimates scale
// linearly with the features.
func TestEstimatorCalibratesAndScales(t *testing.T) {
	e := NewEstimator(5, DefaultAlpha)
	e.Observe(Sample{
		Postings: 100, Tables1: 10, Tables: 20, Alg: 1, Probe2Ran: true,
		Probe1: 100 * time.Microsecond, // 1µs per posting
		Read1:  10 * time.Microsecond,  // 1µs per table1
		Probe2: 15 * time.Microsecond,
		Read2:  5 * time.Microsecond, // probe2+read2: 2µs per table1
		Build:  40 * time.Microsecond,
		Infer:  20 * time.Microsecond,
		Cons:   20 * time.Microsecond, // build 2µs, infer 1µs, cons 1µs per table
	})
	if !e.Calibrated(1) {
		t.Fatal("estimator not calibrated after a full sample")
	}
	// Same shape back: 100·1 + 10·1 + 10·2 + 20·(2+1+1) = 210µs... but
	// EstimateQuery charges read and probe2 per predicted table, so with
	// Tables=20 the exact value is 100 + 20·1 + 20·2 + 20·4 = 240µs.
	got := e.EstimateQuery(Features{Postings: 100, Tables: 20}, 1, true)
	want := 240 * time.Microsecond
	if got != want {
		t.Fatalf("estimate: got %v, want %v", got, want)
	}
	// Doubling every feature doubles the estimate.
	if got2 := e.EstimateQuery(Features{Postings: 200, Tables: 40}, 1, true); got2 != 2*want {
		t.Fatalf("doubled features: got %v, want %v", got2, 2*want)
	}
	// Dropping the second probe drops its term.
	noP2 := e.EstimateQuery(Features{Postings: 100, Tables: 20}, 1, false)
	if noP2 != want-40*time.Microsecond {
		t.Fatalf("no-second-probe estimate: got %v, want %v", noP2, want-40*time.Microsecond)
	}
	// Tail-only estimate covers build+infer+cons.
	if tail := e.EstimateTail(20, 1, true); tail != 80*time.Microsecond {
		t.Fatalf("tail: got %v, want 80µs", tail)
	}
	if tail := e.EstimateTail(20, 1, false); tail != 40*time.Microsecond {
		t.Fatalf("tail sans build: got %v, want 40µs", tail)
	}
}

// a perfectly repeatable workload must drive the self-scored relative
// error toward zero, and a distorted one must raise it.
func TestEstimatorErrorRate(t *testing.T) {
	e := NewEstimator(5, 0.5)
	s := Sample{
		Postings: 100, Tables1: 20, Tables: 20, Alg: 0, Probe2Ran: false,
		Probe1: 100 * time.Microsecond,
		Read1:  20 * time.Microsecond,
		Build:  20 * time.Microsecond,
		Infer:  20 * time.Microsecond,
		Cons:   20 * time.Microsecond,
	}
	for i := 0; i < 5; i++ {
		e.Observe(s)
	}
	if err := e.ErrorRate(); err > 1e-9 {
		t.Fatalf("repeatable workload error rate: got %v, want ~0", err)
	}
	// A query that takes twice as long as predicted must register error.
	slow := s
	slow.Infer = 200 * time.Microsecond
	e.Observe(slow)
	if err := e.ErrorRate(); err < 0.1 {
		t.Fatalf("distorted workload error rate: got %v, want > 0.1", err)
	}
}

func TestEstimatorAlgIndexClamps(t *testing.T) {
	e := NewEstimator(2, DefaultAlpha)
	// Out-of-range algorithms share slot 0 instead of panicking.
	e.Observe(Sample{Postings: 1, Tables1: 1, Tables: 1, Alg: 99,
		Probe1: time.Microsecond, Read1: time.Microsecond,
		Build: time.Microsecond, Infer: time.Microsecond, Cons: time.Microsecond})
	if !e.Calibrated(-3) {
		t.Fatal("clamped algorithm slot not calibrated")
	}
	if e.EstimateQuery(Features{Postings: 1, Tables: 1}, 42, false) == 0 {
		t.Fatal("clamped algorithm estimate is cold")
	}
}

func TestEstimatorConcurrentAccess(t *testing.T) {
	e := NewEstimator(5, DefaultAlpha)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e.Observe(Sample{Postings: 10 + i, Tables1: 5, Tables: 10, Alg: w % 5,
					Probe1: time.Microsecond, Read1: time.Microsecond,
					Build: time.Microsecond, Infer: time.Microsecond, Cons: time.Microsecond})
				e.EstimateQuery(Features{Postings: 100, Tables: 10}, w%5, true)
				e.EstimateTail(10, w%5, true)
				e.ErrorRate()
			}
		}(w)
	}
	wg.Wait()
}

func TestDrainEstimate(t *testing.T) {
	hold := 2 * time.Second
	cases := []struct {
		occupied, need, capacity int
		want                     time.Duration
	}{
		{0, 1, 4, 2 * time.Second},   // empty server: one wave
		{4, 4, 4, 4 * time.Second},   // full server, full request: two waves
		{16, 4, 4, 10 * time.Second}, // deep queue: five waves
		{3, 0, 4, 2 * time.Second},   // need clamps up to 1
	}
	for _, c := range cases {
		if got := DrainEstimate(c.occupied, c.need, c.capacity, hold); got != c.want {
			t.Errorf("DrainEstimate(%d,%d,%d): got %v, want %v", c.occupied, c.need, c.capacity, got, c.want)
		}
	}
	if got := DrainEstimate(4, 1, 4, 0); got != 0 {
		t.Errorf("cold hold: got %v, want 0", got)
	}
	if got := DrainEstimate(4, 1, 0, hold); got != 0 {
		t.Errorf("zero capacity: got %v, want 0", got)
	}
}
