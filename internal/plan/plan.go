package plan

import (
	"sync"
	"time"
)

// DefaultAlpha is the decay factor of the calibration averages: each new
// observation carries this weight, so the effective memory is ~1/alpha
// recent queries.
const DefaultAlpha = 0.05

// EWMA is a mutex-guarded exponentially weighted moving average. The zero
// value is not ready; use NewEWMA. Value returns 0 before the first
// observation.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	v     float64
	n     uint64
}

// NewEWMA returns an average with the given decay factor (0 < alpha <= 1;
// out-of-range values fall back to DefaultAlpha).
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	return &EWMA{alpha: alpha}
}

// Observe folds x into the average. The first observation seeds the
// average directly (no bias toward zero).
func (e *EWMA) Observe(x float64) {
	e.mu.Lock()
	if e.n == 0 {
		e.v = x
	} else {
		e.v += e.alpha * (x - e.v)
	}
	e.n++
	e.mu.Unlock()
}

// Value returns the current average (0 before the first observation).
func (e *EWMA) Value() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.v
}

// Count returns the number of observations folded in.
func (e *EWMA) Count() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// coef is one decaying per-unit cost coefficient (ns per unit of work).
// Guarded by the owning Estimator's mutex.
type coef struct {
	v float64
	n uint64
}

func (c *coef) observe(x, alpha float64) {
	if c.n == 0 {
		c.v = x
	} else {
		c.v += alpha * (x - c.v)
	}
	c.n++
}

// Features are the pre-execution work sizes of one query, read from index
// statistics: the posting entries under the query's terms and the
// predicted candidate-table count (min(ProbeK, Σ df)).
type Features struct {
	Postings int
	Tables   int
}

// Sample is one answered query's observed work sizes and per-stage wall
// times, as fed to Estimator.Observe. Probe2 covers the re-probe plus the
// second read (they fire together); a query whose second probe did not
// fire reports Probe2Ran=false and those stages are not calibrated from
// it.
type Sample struct {
	Postings int // posting entries under the probe-1 terms
	// PostingsScanned is how many posting entries the probe actually
	// scored after block-max/term-level skips (0 when the probe surface
	// reports no scan statistics, e.g. the map-based fallback scorer).
	PostingsScanned int64
	Tables1         int // candidate tables after read1
	Tables          int // final candidate tables (after read2)
	Alg             int // inference algorithm actually run
	Probe2Ran       bool

	Probe1, Read1, Probe2, Read2, Build, Infer, Cons time.Duration
}

// Estimator holds the calibrated per-stage cost coefficients. The zero
// value is not ready; use NewEstimator. All methods are safe for
// concurrent use.
type Estimator struct {
	mu     sync.Mutex
	alpha  float64
	probe1 coef // ns per scanned posting entry
	skip   coef // scanned/total posting ratio after probe-layer skips
	read   coef // ns per first-probe table
	probe2 coef // ns per first-probe table (re-probe + read2, when fired)
	build  coef // ns per final table
	infer  []coef
	cons   coef // ns per final table
	errRel coef // decayed |est-actual|/actual of EstimateQuery
}

// NewEstimator returns a cold estimator with nAlgs inference-algorithm
// slots and the given decay factor (out-of-range alpha falls back to
// DefaultAlpha).
func NewEstimator(nAlgs int, alpha float64) *Estimator {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	if nAlgs < 1 {
		nAlgs = 1
	}
	return &Estimator{alpha: alpha, infer: make([]coef, nAlgs)}
}

// algIndex clamps an algorithm id into the estimator's slots (unknown
// algorithms share slot 0).
func (e *Estimator) algIndex(alg int) int {
	if alg < 0 || alg >= len(e.infer) {
		return 0
	}
	return alg
}

// Observe calibrates the coefficients from one answered query, and — when
// the estimator was already calibrated for this sample's shape — folds the
// relative error of its own pre-update prediction into the error gauge.
func (e *Estimator) Observe(s Sample) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ai := e.algIndex(s.Alg)

	// Score the prediction the estimator would have made for this query
	// before folding the query in, so the error gauge measures real
	// predictive skill, not hindsight.
	if e.calibratedLocked(ai) {
		est := e.estimateQueryLocked(s.Postings, s.Tables, ai, s.Probe2Ran)
		actual := s.Probe1 + s.Read1 + s.Probe2 + s.Read2 + s.Build + s.Infer + s.Cons
		if actual > 0 && est > 0 {
			rel := float64(est-actual) / float64(actual)
			if rel < 0 {
				rel = -rel
			}
			e.errRel.observe(rel, e.alpha)
		}
	}

	if s.Postings > 0 && s.Probe1 > 0 {
		// Calibrate ns-per-posting against the work actually done: with
		// scan statistics the coefficient is per scanned posting and the
		// skip ratio predicts how much of the nominal work survives the
		// probe-layer skips; without them both collapse to the old
		// per-nominal-posting model (ratio stays unobserved → 1).
		if s.PostingsScanned > 0 {
			e.probe1.observe(float64(s.Probe1)/float64(s.PostingsScanned), e.alpha)
			e.skip.observe(float64(s.PostingsScanned)/float64(s.Postings), e.alpha)
		} else {
			e.probe1.observe(float64(s.Probe1)/float64(s.Postings), e.alpha)
		}
	}
	if s.Tables1 > 0 {
		if s.Read1 > 0 {
			e.read.observe(float64(s.Read1)/float64(s.Tables1), e.alpha)
		}
		if s.Probe2Ran && s.Probe2+s.Read2 > 0 {
			e.probe2.observe(float64(s.Probe2+s.Read2)/float64(s.Tables1), e.alpha)
		}
	}
	if s.Tables > 0 {
		if s.Build > 0 {
			e.build.observe(float64(s.Build)/float64(s.Tables), e.alpha)
		}
		if s.Infer > 0 {
			e.infer[ai].observe(float64(s.Infer)/float64(s.Tables), e.alpha)
		}
		if s.Cons > 0 {
			e.cons.observe(float64(s.Cons)/float64(s.Tables), e.alpha)
		}
	}
}

// EstimateQuery predicts the full-pipeline wall time of a query with the
// given features under the given algorithm. secondProbe mirrors
// Options.SecondProbe: when false the re-probe term is dropped. A cold
// estimator returns 0.
func (e *Estimator) EstimateQuery(f Features, alg int, secondProbe bool) time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.estimateQueryLocked(f.Postings, f.Tables, e.algIndex(alg), secondProbe)
}

func (e *Estimator) estimateQueryLocked(postings, tables, ai int, secondProbe bool) time.Duration {
	work := float64(postings)
	if e.skip.n > 0 {
		work *= e.skip.v // predicted surviving fraction after skips
	}
	ns := e.probe1.v * work
	ns += e.read.v * float64(tables)
	if secondProbe {
		ns += e.probe2.v * float64(tables)
	}
	ns += e.tailLocked(tables, ai, true)
	return time.Duration(ns)
}

// EstimateTail predicts the cost of the pipeline stages still ahead of a
// query that holds the given final candidate-table count: model build
// (when includeBuild), inference under alg, and consolidation. A cold
// estimator returns 0.
func (e *Estimator) EstimateTail(tables, alg int, includeBuild bool) time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return time.Duration(e.tailLocked(tables, e.algIndex(alg), includeBuild))
}

func (e *Estimator) tailLocked(tables, ai int, includeBuild bool) float64 {
	ns := 0.0
	if includeBuild {
		ns += e.build.v * float64(tables)
	}
	ns += e.infer[ai].v * float64(tables)
	ns += e.cons.v * float64(tables)
	return ns
}

// Calibrated reports whether the estimator has observed at least one
// query under the given algorithm — i.e. whether estimates for it are
// meaningful rather than cold zeros.
func (e *Estimator) Calibrated(alg int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.calibratedLocked(e.algIndex(alg))
}

func (e *Estimator) calibratedLocked(ai int) bool {
	return e.probe1.n > 0 && e.build.n > 0 && e.infer[ai].n > 0 && e.cons.n > 0
}

// ErrorRate returns the decayed mean relative error of the estimator's
// own predictions (|estimated−actual|/actual; 0 until the estimator has
// scored itself at least once).
func (e *Estimator) ErrorRate() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.errRel.v
}

// DrainEstimate predicts how long until `need` worker slots free up, given
// the admission snapshot (occupied = in-flight + queued slots, capacity
// slots total) and the decayed average slot-hold time of recent requests.
// The queue drains in "waves" of at most capacity slots, each lasting
// about one hold time. Returns 0 when the inputs give no signal (cold
// hold average or nonsensical capacity) — callers fall back to their
// constant backoff.
func DrainEstimate(occupied, need, capacity int, hold time.Duration) time.Duration {
	if capacity <= 0 || hold <= 0 {
		return 0
	}
	if need < 1 {
		need = 1
	}
	waves := (occupied + need + capacity - 1) / capacity
	return time.Duration(waves) * hold
}
