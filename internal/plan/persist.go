package plan

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// CoeffsVersion is the schema version of the planner-coefficient sidecar.
// Bump it whenever Snapshot's meaning changes; Restore rejects other
// versions so a stale sidecar degrades to a cold start, never to silently
// wrong estimates.
const CoeffsVersion = 1

// Coef is one persisted cost coefficient: its decayed value and how many
// observations shaped it.
type Coef struct {
	V float64 `json:"v"`
	N uint64  `json:"n"`
}

// Snapshot is the JSON-serializable state of an Estimator's calibration —
// the tiny sidecar wwt-serve writes next to the index on drain so a
// restart resumes with a warm cost model instead of recalibrating from
// zero.
type Snapshot struct {
	Version int     `json:"version"`
	Alpha   float64 `json:"alpha"`
	Probe1  Coef    `json:"probe1"`
	Skip    Coef    `json:"skip"`
	Read    Coef    `json:"read"`
	Probe2  Coef    `json:"probe2"`
	Build   Coef    `json:"build"`
	Infer   []Coef  `json:"infer"`
	Cons    Coef    `json:"cons"`
	ErrRel  Coef    `json:"err_rel"`
}

func toCoef(c coef) Coef   { return Coef{V: c.v, N: c.n} }
func fromCoef(c Coef) coef { return coef{v: c.V, n: c.N} }

// Snapshot captures the estimator's current calibration.
func (e *Estimator) Snapshot() Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := Snapshot{
		Version: CoeffsVersion,
		Alpha:   e.alpha,
		Probe1:  toCoef(e.probe1),
		Skip:    toCoef(e.skip),
		Read:    toCoef(e.read),
		Probe2:  toCoef(e.probe2),
		Build:   toCoef(e.build),
		Cons:    toCoef(e.cons),
		ErrRel:  toCoef(e.errRel),
		Infer:   make([]Coef, len(e.infer)),
	}
	for i, c := range e.infer {
		s.Infer[i] = toCoef(c)
	}
	return s
}

// Restore replaces the estimator's calibration with a snapshot. The
// snapshot must carry the current CoeffsVersion; algorithm slots beyond
// the estimator's own stay cold, and missing ones keep their zero value.
func (e *Estimator) Restore(s Snapshot) error {
	if s.Version != CoeffsVersion {
		return fmt.Errorf("plan: coefficient snapshot version %d, this build supports %d; delete the sidecar to recalibrate", s.Version, CoeffsVersion)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.probe1 = fromCoef(s.Probe1)
	e.skip = fromCoef(s.Skip)
	e.read = fromCoef(s.Read)
	e.probe2 = fromCoef(s.Probe2)
	e.build = fromCoef(s.Build)
	e.cons = fromCoef(s.Cons)
	e.errRel = fromCoef(s.ErrRel)
	for i := range e.infer {
		if i < len(s.Infer) {
			e.infer[i] = fromCoef(s.Infer[i])
		} else {
			e.infer[i] = coef{}
		}
	}
	return nil
}

// SaveFile writes the calibration snapshot to path atomically (temp file +
// rename in the destination directory).
func (e *Estimator) SaveFile(path string) error {
	data, err := json.MarshalIndent(e.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("plan: encode coefficients: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".plan-coeffs-*.json")
	if err != nil {
		return fmt.Errorf("plan: save coefficients: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("plan: save coefficients %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("plan: save coefficients %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("plan: save coefficients: %w", err)
	}
	return nil
}

// LoadFile restores the calibration from a sidecar written by SaveFile.
// A missing file is not an error (the estimator just starts cold); a
// present-but-unreadable or version-mismatched one is.
func (e *Estimator) LoadFile(path string) (loaded bool, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("plan: load coefficients: %w", err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return false, fmt.Errorf("plan: load coefficients %s: %w", path, err)
	}
	if err := e.Restore(s); err != nil {
		return false, fmt.Errorf("%w (file %s)", err, path)
	}
	return true, nil
}
