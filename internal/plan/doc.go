// Package plan is the cost model behind the engine's adaptive query
// planner: per-query cost estimates computed from index statistics, with
// per-stage cost coefficients calibrated online from observed stage
// timings.
//
// # Cost model
//
// A query's cost is modeled as a sum of per-stage linear terms, each the
// product of a work-size feature (known before the stage runs) and a
// calibrated coefficient (ns per unit of work):
//
//	probe1      ≈ c_probe1 · postings      (posting entries under the query terms)
//	read1       ≈ c_read   · tables1       (first-probe candidate tables)
//	probe2+read2≈ c_probe2 · tables1       (the re-probe's cost tracks the
//	                                        stage-1 model built over tables1)
//	colmap      ≈ c_build  · tables        (final candidate tables)
//	infer       ≈ c_infer[alg] · tables    (one coefficient per algorithm)
//	consolidate ≈ c_cons   · tables
//
// The features come from statistics the index already holds: posting-list
// lengths and document frequencies are direct reads from the CSR term
// blobs (Searcher/ShardedSearcher TermStats), and the candidate-table
// count is bounded by min(ProbeK, Σ df). Linear-in-tables is deliberately
// crude for the quadratic edge build, but scheduling and degradation only
// need costs to be *ordered* correctly, and the decaying average tracks
// the workload's realized mix.
//
// # Calibration contract
//
// Estimator.Observe folds one answered query's per-stage wall times into
// the coefficients via an exponentially decaying average (default memory
// ≈ 1/alpha ≈ 20 queries), so the model self-corrects as the workload or
// hardware changes. Before the first observation every coefficient is
// zero: estimates are zero, every query ties, and consumers degrade to
// their non-adaptive behavior (FIFO dispatch, no degradation) — a cold
// estimator is safe by construction. Observe also tracks the decayed
// relative error |estimated−actual|/actual of its own predictions, which
// the serving layer exports as the estimated-vs-actual cost error gauge.
//
// Estimator is safe for concurrent Observe/Estimate calls (one mutex; the
// critical sections are a few dozen arithmetic operations).
//
// DrainEstimate is the admission-queue companion: given the admission
// snapshot (occupied and requested worker slots, capacity) and a decayed
// average slot-hold time, it estimates how long until the requested slots
// are free — the serving layer derives 429 Retry-After from it.
package plan
