package plan

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// calibrated returns an estimator warmed with a few distinctive samples.
func calibrated(t *testing.T) *Estimator {
	t.Helper()
	e := NewEstimator(3, 0.5)
	for i := 0; i < 5; i++ {
		e.Observe(Sample{
			Postings:        1000,
			PostingsScanned: 400,
			Tables1:         20,
			Tables:          30,
			Alg:             1,
			Probe2Ran:       true,
			Probe1:          2 * time.Millisecond,
			Read1:           time.Millisecond,
			Probe2:          3 * time.Millisecond,
			Read2:           time.Millisecond,
			Build:           4 * time.Millisecond,
			Infer:           5 * time.Millisecond,
			Cons:            time.Millisecond,
		})
	}
	return e
}

// TestSnapshotRoundTrip: Restore(Snapshot()) must reproduce the estimator
// exactly — same estimates, same calibration state, same error gauge.
func TestSnapshotRoundTrip(t *testing.T) {
	e := calibrated(t)
	f := Features{Postings: 5000, Tables: 40}
	want := e.EstimateQuery(f, 1, true)
	if want == 0 {
		t.Fatal("calibrated estimator returned a zero estimate")
	}

	e2 := NewEstimator(3, DefaultAlpha)
	if err := e2.Restore(e.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if got := e2.EstimateQuery(f, 1, true); got != want {
		t.Fatalf("restored estimate %v != %v", got, want)
	}
	if !e2.Calibrated(1) {
		t.Fatal("restored estimator not calibrated for alg 1")
	}
	if e2.Calibrated(2) {
		t.Fatal("never-observed alg 2 calibrated after restore")
	}
	if e2.ErrorRate() != e.ErrorRate() {
		t.Fatalf("error gauge %v != %v after restore", e2.ErrorRate(), e.ErrorRate())
	}
}

// TestRestoreVersionMismatch: a future-versioned snapshot must be
// rejected, naming both versions.
func TestRestoreVersionMismatch(t *testing.T) {
	s := NewEstimator(1, DefaultAlpha).Snapshot()
	s.Version = 99
	err := NewEstimator(1, DefaultAlpha).Restore(s)
	if err == nil {
		t.Fatal("Restore accepted version 99")
	}
	if !strings.Contains(err.Error(), "version 99") || !strings.Contains(err.Error(), "1") {
		t.Fatalf("error %q does not name both versions", err)
	}
}

// TestRestoreAlgSlotMismatch: extra snapshot slots are dropped, missing
// ones leave the estimator's slots cold.
func TestRestoreAlgSlotMismatch(t *testing.T) {
	wide := calibrated(t) // 3 slots, alg 1 calibrated
	narrow := NewEstimator(1, DefaultAlpha)
	if err := narrow.Restore(wide.Snapshot()); err != nil {
		t.Fatal(err)
	}
	e5 := NewEstimator(5, DefaultAlpha)
	if err := e5.Restore(wide.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !e5.Calibrated(1) || e5.Calibrated(4) {
		t.Fatal("slot-mismatch restore mis-set calibration")
	}
}

// TestSaveLoadFile: the sidecar file round-trips, a missing file loads as
// a no-op, and a corrupt one fails mentioning the path.
func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan-coeffs.json")
	e := calibrated(t)
	if err := e.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	e2 := NewEstimator(3, DefaultAlpha)
	loaded, err := e2.LoadFile(path)
	if err != nil || !loaded {
		t.Fatalf("LoadFile = %v, %v", loaded, err)
	}
	f := Features{Postings: 5000, Tables: 40}
	if got, want := e2.EstimateQuery(f, 1, true), e.EstimateQuery(f, 1, true); got != want {
		t.Fatalf("estimate after file round-trip %v != %v", got, want)
	}

	if loaded, err := NewEstimator(3, DefaultAlpha).LoadFile(filepath.Join(dir, "absent.json")); err != nil || loaded {
		t.Fatalf("missing sidecar: LoadFile = %v, %v, want false, nil", loaded, err)
	}

	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewEstimator(3, DefaultAlpha).LoadFile(path); err == nil || !strings.Contains(err.Error(), path) {
		t.Fatalf("corrupt sidecar error %v does not mention the path", err)
	}

	// No stray temp files left next to the sidecar.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("sidecar dir has %d entries, want 1: %v", len(ents), ents)
	}
}

// TestSkipRatioScalesEstimate: an observed skip ratio must shrink the
// probe-1 term of query estimates relative to nominal postings.
func TestSkipRatioScalesEstimate(t *testing.T) {
	withSkips := calibrated(t) // scanned/postings = 0.4, ns per scanned posting
	noStats := NewEstimator(3, 0.5)
	for i := 0; i < 5; i++ {
		noStats.Observe(Sample{
			Postings: 1000, Tables1: 20, Tables: 30, Alg: 1, Probe2Ran: true,
			Probe1: 2 * time.Millisecond, Read1: time.Millisecond,
			Probe2: 3 * time.Millisecond, Read2: time.Millisecond,
			Build: 4 * time.Millisecond, Infer: 5 * time.Millisecond, Cons: time.Millisecond,
		})
	}
	// Same observed wall times: the with-skips model attributes the probe
	// cost to 400 scanned postings and predicts 0.4x survival, so both
	// must agree on the whole-query estimate (coef x ratio cancels) —
	// while the per-scanned-posting coefficient itself is 2.5x larger.
	f := Features{Postings: 1000, Tables: 30}
	a := withSkips.EstimateQuery(f, 1, true)
	b := noStats.EstimateQuery(f, 1, true)
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if diff > time.Microsecond {
		t.Fatalf("estimates diverge: with skips %v, without %v", a, b)
	}
	if withSkips.Snapshot().Probe1.V <= noStats.Snapshot().Probe1.V {
		t.Fatal("per-scanned-posting coefficient not larger than per-nominal-posting one")
	}
}
