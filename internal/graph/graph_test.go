package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestMCMFSimplePath(t *testing.T) {
	g := NewMCMF(4)
	g.AddEdge(0, 1, 2, 1)
	g.AddEdge(1, 2, 2, 1)
	g.AddEdge(2, 3, 2, 1)
	flow, cost := g.Run(0, 3)
	if flow != 2 || math.Abs(cost-6) > 1e-9 {
		t.Errorf("flow=%d cost=%f, want 2, 6", flow, cost)
	}
}

func TestMCMFPicksCheaperPath(t *testing.T) {
	// Two parallel paths; cheaper one must carry flow first.
	g := NewMCMF(4)
	cheap := g.AddEdge(0, 1, 1, 1)
	g.AddEdge(1, 3, 1, 1)
	expensive := g.AddEdge(0, 2, 1, 10)
	g.AddEdge(2, 3, 1, 10)
	flow, cost := g.Run(0, 3)
	if flow != 2 || math.Abs(cost-22) > 1e-9 {
		t.Errorf("flow=%d cost=%f", flow, cost)
	}
	if g.EdgeFlow(cheap) != 1 || g.EdgeFlow(expensive) != 1 {
		t.Error("edge flows wrong")
	}
}

// TestMCMFTieBreakInsertionOrder: among equal-cost augmenting paths the
// solver must route flow along the first-added edges. The shortest-path
// relaxation is strict (nd < dist[v]-costEps), so the winner is whichever
// tied edge is relaxed first — which regressed when the forward-star lists
// briefly iterated most-recent-first instead of insertion order.
func TestMCMFTieBreakInsertionOrder(t *testing.T) {
	// A capacity-1 bottleneck 0→1 feeding two identical-cost branches
	// 1→2→4 and 1→3→4: only one tied branch can carry the single unit.
	g := NewMCMF(5)
	g.AddEdge(0, 1, 1, 0)
	first := g.AddEdge(1, 2, 1, 1)
	g.AddEdge(2, 4, 1, 1)
	second := g.AddEdge(1, 3, 1, 1)
	g.AddEdge(3, 4, 1, 1)
	flow, cost := g.Run(0, 4)
	if flow != 1 || math.Abs(cost-2) > 1e-9 {
		t.Fatalf("flow=%d cost=%f, want 1, 2", flow, cost)
	}
	if g.EdgeFlow(first) != 1 || g.EdgeFlow(second) != 0 {
		t.Errorf("tie broke to the later edge: flows %d/%d, want 1/0",
			g.EdgeFlow(first), g.EdgeFlow(second))
	}
}

func TestMCMFNegativeCosts(t *testing.T) {
	// Bipartite-matching-like graph with negative costs (= positive weights).
	g := NewMCMF(6)
	g.AddEdge(0, 1, 1, 0) // s -> l0
	g.AddEdge(0, 2, 1, 0) // s -> l1
	g.AddEdge(1, 3, 1, -5)
	g.AddEdge(1, 4, 1, -3)
	g.AddEdge(2, 3, 1, -4)
	g.AddEdge(2, 4, 1, -1)
	g.AddEdge(3, 5, 1, 0)
	g.AddEdge(4, 5, 1, 0)
	flow, cost := g.Run(0, 5)
	// Best assignment: l0->r1 (-3), l1->r0 (-4) = -7 (vs -5 + -1 = -6).
	if flow != 2 || math.Abs(cost-(-7)) > 1e-9 {
		t.Errorf("flow=%d cost=%f, want 2, -7", flow, cost)
	}
}

// bruteForceAssignment enumerates all assignments of left nodes (capacity 1
// each) to rights with capacities capR, maximizing total weight.
func bruteForceAssignment(capR []int, w [][]float64) float64 {
	nL, nR := len(w), len(capR)
	best := math.Inf(-1)
	assign := make([]int, nL)
	var rec func(i int, used []int, total float64)
	rec = func(i int, used []int, total float64) {
		if i == nL {
			if total > best {
				best = total
			}
			return
		}
		for j := 0; j < nR; j++ {
			if used[j] < capR[j] && !math.IsInf(w[i][j], -1) {
				used[j]++
				assign[i] = j
				rec(i+1, used, total+w[i][j])
				used[j]--
			}
		}
	}
	rec(0, make([]int, nR), 0)
	return best
}

func TestAssignmentMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		nL := 1 + rng.Intn(4)
		nR := 1 + rng.Intn(3)
		capL := make([]int, nL)
		for i := range capL {
			capL[i] = 1
		}
		capR := make([]int, nR)
		sumR := 0
		for j := range capR {
			capR[j] = 1 + rng.Intn(2)
			sumR += capR[j]
		}
		if sumR < nL {
			capR[0] += nL - sumR // ensure feasibility
		}
		w := make([][]float64, nL)
		for i := range w {
			w[i] = make([]float64, nR)
			for j := range w[i] {
				w[i][j] = math.Round(rng.Float64()*200-50) / 10
			}
		}
		sol := SolveAssignment(capL, capR, w)
		want := bruteForceAssignment(capR, w)
		if math.Abs(sol.Total-want) > 1e-6 {
			t.Fatalf("trial %d: Total=%f brute=%f w=%v capR=%v", trial, sol.Total, want, w, capR)
		}
	}
}

func TestAssignmentMatchVector(t *testing.T) {
	w := [][]float64{
		{5, 1},
		{4, 3},
	}
	sol := SolveAssignment([]int{1, 1}, []int{1, 1}, w)
	if math.Abs(sol.Total-8) > 1e-9 {
		t.Fatalf("Total=%f, want 8", sol.Total)
	}
	if sol.MatchL[0] != 0 || sol.MatchL[1] != 1 {
		t.Errorf("MatchL=%v", sol.MatchL)
	}
}

func TestAssignmentForbiddenPair(t *testing.T) {
	w := [][]float64{
		{math.Inf(-1), 2},
		{3, math.Inf(-1)},
	}
	sol := SolveAssignment([]int{1, 1}, []int{1, 1}, w)
	if math.Abs(sol.Total-5) > 1e-9 {
		t.Fatalf("Total=%f, want 5", sol.Total)
	}
	if sol.MatchL[0] != 1 || sol.MatchL[1] != 0 {
		t.Errorf("MatchL=%v", sol.MatchL)
	}
}

func TestAssignmentUnbalancedWithDummy(t *testing.T) {
	// 3 lefts, 2 rights of capacity 1: one left must go unmatched... but
	// §4.2.1 balances with a dummy; infeasible lefts match the dummy side.
	// Here we give rights extra capacity so everything is feasible.
	w := [][]float64{{1, 9}, {8, 2}, {3, 3}}
	sol := SolveAssignment([]int{1, 1, 1}, []int{2, 2}, w)
	want := bruteForceAssignment([]int{2, 2}, w)
	if math.Abs(sol.Total-want) > 1e-9 {
		t.Errorf("Total=%f brute=%f", sol.Total, want)
	}
}

// bruteMaxMarginal computes the best assignment total with left i forced
// to right j.
func bruteMaxMarginal(capR []int, w [][]float64, fi, fj int) float64 {
	nL, nR := len(w), len(capR)
	best := math.Inf(-1)
	var rec func(i int, used []int, total float64)
	rec = func(i int, used []int, total float64) {
		if i == nL {
			if total > best {
				best = total
			}
			return
		}
		lo, hi := 0, nR-1
		if i == fi {
			lo, hi = fj, fj
		}
		for j := lo; j <= hi; j++ {
			if used[j] < capR[j] && !math.IsInf(w[i][j], -1) {
				used[j]++
				rec(i+1, used, total+w[i][j])
				used[j]--
			}
		}
	}
	rec(0, make([]int, nR), 0)
	return best
}

func TestMaxMarginalsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		nL := 1 + rng.Intn(4)
		nR := nL + rng.Intn(3) // enough right capacity for any forcing
		capL := make([]int, nL)
		for i := range capL {
			capL[i] = 1
		}
		capR := make([]int, nR)
		for j := range capR {
			capR[j] = 1
		}
		w := make([][]float64, nL)
		for i := range w {
			w[i] = make([]float64, nR)
			for j := range w[i] {
				w[i][j] = math.Round(rng.Float64()*200-60) / 10
			}
		}
		sol := SolveAssignment(capL, capR, w)
		mu := sol.MaxMarginals()
		for i := 0; i < nL; i++ {
			for j := 0; j < nR; j++ {
				want := bruteMaxMarginal(capR, w, i, j)
				if math.IsInf(want, -1) != math.IsInf(mu[i][j], -1) {
					t.Fatalf("trial %d mu[%d][%d]=%v want %v (w=%v)", trial, i, j, mu[i][j], want, w)
				}
				if !math.IsInf(want, -1) && math.Abs(mu[i][j]-want) > 1e-6 {
					t.Fatalf("trial %d mu[%d][%d]=%f want %f (w=%v)", trial, i, j, mu[i][j], want, w)
				}
			}
		}
	}
}

func TestMaxMarginalOfOptimalIsTotal(t *testing.T) {
	w := [][]float64{{5, 1}, {4, 3}}
	sol := SolveAssignment([]int{1, 1}, []int{1, 1}, w)
	mu := sol.MaxMarginals()
	if math.Abs(mu[0][0]-sol.Total) > 1e-9 || math.Abs(mu[1][1]-sol.Total) > 1e-9 {
		t.Errorf("max-marginal at optimum should equal Total: %v vs %f", mu, sol.Total)
	}
	// Forcing either off-optimal pair leaves the swapped assignment 1+4=5.
	if math.Abs(mu[0][1]-5) > 1e-9 || math.Abs(mu[1][0]-5) > 1e-9 {
		t.Errorf("off-optimal max-marginals = %v, want 5", mu)
	}
}

func TestDinicSimple(t *testing.T) {
	g := NewFlowGraph(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(0, 2, 2)
	g.AddEdge(1, 3, 2)
	g.AddEdge(2, 3, 3)
	g.AddEdge(1, 2, 5)
	if f := g.MaxFlow(0, 3); math.Abs(f-5) > 1e-9 {
		t.Errorf("max flow = %f, want 5", f)
	}
}

func TestDinicMinCutSide(t *testing.T) {
	g := NewFlowGraph(4)
	g.AddEdge(0, 1, 1) // bottleneck
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 3, 10)
	g.MaxFlow(0, 3)
	side := g.SSide(0)
	if !side[0] || side[1] || side[2] || side[3] {
		t.Errorf("SSide = %v, want only node 0", side)
	}
}

func TestDinicIncrementalAfterRaiseCap(t *testing.T) {
	g := NewFlowGraph(3)
	e := g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 10)
	if f := g.MaxFlow(0, 2); math.Abs(f-1) > 1e-9 {
		t.Fatalf("first flow = %f", f)
	}
	g.RaiseCap(e, 4)
	if f := g.MaxFlow(0, 2); math.Abs(f-4) > 1e-9 {
		t.Errorf("incremental flow = %f, want 4", f)
	}
}

func TestDinicClone(t *testing.T) {
	g := NewFlowGraph(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 5)
	c := g.Clone()
	c.MaxFlow(0, 2)
	// Original must be untouched.
	if f := g.MaxFlow(0, 2); math.Abs(f-5) > 1e-9 {
		t.Errorf("clone mutated original: flow=%f", f)
	}
}

// buildCutGraph creates a graph where nodes 2..n+1 are variables with
// s-edge cost a[i] (cut when var on t side) and t-edge cost b[i] (cut when
// var on s side).
func buildCutGraph(a, b []float64) (*FlowGraph, map[int]int, []int) {
	n := len(a)
	g := NewFlowGraph(n + 2)
	sEdge := map[int]int{}
	vars := make([]int, n)
	for i := 0; i < n; i++ {
		v := 2 + i
		vars[i] = v
		sEdge[v] = g.AddEdge(0, v, a[i])
		g.AddEdge(v, 1, b[i])
	}
	return g, sEdge, vars
}

func TestConstrainedCutUnconstrainedCase(t *testing.T) {
	// Both variables prefer the t side (cheap s edges... wait: s-edge cut
	// when on t side). a[i] small => cheap to put on t side.
	g, sEdge, vars := buildCutGraph([]float64{1, 1}, []float64{10, 10})
	tSide := ConstrainedMinCut(g, 0, 1, [][]int{{vars[0]}, {vars[1]}}, sEdge)
	if !tSide[vars[0]] || !tSide[vars[1]] {
		t.Errorf("singleton groups must not constrain: %v", tSide)
	}
}

func TestConstrainedCutEnforcesGroup(t *testing.T) {
	// Three variables in one group all prefer the t side; only one may stay.
	g, sEdge, vars := buildCutGraph([]float64{1, 2, 3}, []float64{10, 10, 10})
	groups := [][]int{vars}
	tSide := ConstrainedMinCut(g, 0, 1, groups, sEdge)
	count := 0
	for _, v := range vars {
		if tSide[v] {
			count++
		}
	}
	if count > 1 {
		t.Fatalf("constraint violated: %d on t side", count)
	}
	// Keeping survivor k costs a_k + Σ_{i≠k} b_i; minimized by the cheapest
	// s-edge, vars[0].
	if !tSide[vars[0]] {
		t.Errorf("wrong survivor: %v", tSide)
	}
}

func TestConstrainedCutMultipleGroups(t *testing.T) {
	a := []float64{1, 1, 1, 1}
	b := []float64{5, 5, 5, 5}
	g, sEdge, vars := buildCutGraph(a, b)
	groups := [][]int{{vars[0], vars[1]}, {vars[2], vars[3]}}
	tSide := ConstrainedMinCut(g, 0, 1, groups, sEdge)
	for gi, grp := range groups {
		n := 0
		for _, v := range grp {
			if tSide[v] {
				n++
			}
		}
		if n > 1 {
			t.Errorf("group %d has %d on t side", gi, n)
		}
	}
}

func TestConstrainedCutAlreadySatisfied(t *testing.T) {
	// Variables prefer the s side: big a, small b.
	g, sEdge, vars := buildCutGraph([]float64{10, 10}, []float64{1, 1})
	tSide := ConstrainedMinCut(g, 0, 1, [][]int{vars}, sEdge)
	if tSide[vars[0]] || tSide[vars[1]] {
		t.Errorf("no one should be on t side: %v", tSide)
	}
}
