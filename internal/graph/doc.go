// Package graph implements the combinatorial machinery behind WWT's
// inference algorithms: a min-cost max-flow solver (successive shortest
// paths with Bellman-Ford, §4.2.2), the generalized maximum-weight
// bipartite matching reduction of §4.2.1 with residual-graph max-marginal
// queries (§4.2.3, Fig. 3), a Dinic max-flow/min-cut solver for expansion
// moves, and the constrained minimum s-t cut of Fig. 4.
//
// # Ownership and concurrency contracts
//
// Solvers here are single-threaded by design: thousands of small solves
// run per query, so the package optimizes for allocation-free reuse, not
// internal parallelism. Callers parallelize across independent solves,
// each with its own state.
//
// Workspace is the reusable assignment-solve state (MCMF network + SPFA
// scratch + matching/max-marginal buffers) behind SolveAssignmentWS. A
// workspace serves one solve at a time, and results alias the workspace —
// they are valid only until its next solve. SolveAssignment remains the
// fresh-workspace, safe-to-retain form.
//
// MCMF adjacency lists keep insertion order (forward-star head+tail
// pointers): shortest-path searches break cost ties by the first edge
// relaxed, so iteration order is part of the solver's contract — callers
// observe which equally-cheap path wins.
package graph
