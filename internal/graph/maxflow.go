package graph

// FlowGraph is a max-flow network with float64 capacities, solved with
// Dinic's algorithm. It backs the α-expansion graph cuts, where capacities
// come from real-valued potentials. Flow state persists across MaxFlow
// calls, so capacities may be raised and MaxFlow re-run to push only the
// additional flow — exactly what the constrained-cut loop of Fig. 4 needs.
type FlowGraph struct {
	n    int
	to   []int32
	capa []float64
	adj  [][]int32
	// scratch
	level []int32
	iter  []int32
}

const flowEps = 1e-10

// NewFlowGraph returns an empty flow network on n nodes.
func NewFlowGraph(n int) *FlowGraph {
	return &FlowGraph{n: n, adj: make([][]int32, n)}
}

// N returns the node count.
func (g *FlowGraph) N() int { return g.n }

// AddEdge adds the directed edge u→v with the given capacity (and a
// zero-capacity reverse edge), returning its edge id.
func (g *FlowGraph) AddEdge(u, v int, capacity float64) int {
	id := len(g.to)
	g.to = append(g.to, int32(v), int32(u))
	g.capa = append(g.capa, capacity, 0)
	g.adj[u] = append(g.adj[u], int32(id))
	g.adj[v] = append(g.adj[v], int32(id+1))
	return id
}

// AddUndirected adds a symmetric edge: capacity cap in both directions.
func (g *FlowGraph) AddUndirected(u, v int, capacity float64) (int, int) {
	a := g.AddEdge(u, v, capacity)
	b := g.AddEdge(v, u, capacity)
	return a, b
}

// RaiseCap increases the remaining capacity of edge id by delta.
func (g *FlowGraph) RaiseCap(id int, delta float64) { g.capa[id] += delta }

// Clone deep-copies the network including current flow state.
func (g *FlowGraph) Clone() *FlowGraph {
	c := &FlowGraph{n: g.n}
	c.to = append([]int32(nil), g.to...)
	c.capa = append([]float64(nil), g.capa...)
	c.adj = make([][]int32, g.n)
	for i := range g.adj {
		c.adj[i] = append([]int32(nil), g.adj[i]...)
	}
	return c
}

func (g *FlowGraph) bfs(s, t int) bool {
	if g.level == nil {
		g.level = make([]int32, g.n)
	}
	for i := range g.level {
		g.level[i] = -1
	}
	queue := make([]int32, 0, g.n)
	queue = append(queue, int32(s))
	g.level[s] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, id := range g.adj[u] {
			v := g.to[id]
			if g.capa[id] > flowEps && g.level[v] < 0 {
				g.level[v] = g.level[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return g.level[t] >= 0
}

func (g *FlowGraph) dfs(u, t int32, f float64) float64 {
	if u == t {
		return f
	}
	for ; g.iter[u] < int32(len(g.adj[u])); g.iter[u]++ {
		id := g.adj[u][g.iter[u]]
		v := g.to[id]
		if g.capa[id] <= flowEps || g.level[v] != g.level[u]+1 {
			continue
		}
		d := f
		if g.capa[id] < d {
			d = g.capa[id]
		}
		if got := g.dfs(v, t, d); got > flowEps {
			g.capa[id] -= got
			g.capa[id^1] += got
			return got
		}
	}
	return 0
}

// MaxFlow pushes as much additional flow as possible from s to t and
// returns the amount pushed in this call.
func (g *FlowGraph) MaxFlow(s, t int) float64 {
	var flow float64
	if g.iter == nil {
		g.iter = make([]int32, g.n)
	}
	for g.bfs(s, t) {
		for i := range g.iter {
			g.iter[i] = 0
		}
		for {
			f := g.dfs(int32(s), int32(t), Inf)
			if f <= flowEps {
				break
			}
			flow += f
		}
	}
	return flow
}

// SSide returns, after MaxFlow, the set of nodes reachable from s in the
// residual graph — the s side of a minimum cut. The complement is the
// t side.
func (g *FlowGraph) SSide(s int) []bool {
	side := make([]bool, g.n)
	queue := []int32{int32(s)}
	side[s] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, id := range g.adj[u] {
			v := g.to[id]
			if g.capa[id] > flowEps && !side[v] {
				side[v] = true
				queue = append(queue, v)
			}
		}
	}
	return side
}
