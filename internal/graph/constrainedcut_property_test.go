package graph

import (
	"math"
	"math/rand"
	"testing"
)

// cutCost evaluates the s-t cut implied by tSide on the ORIGINAL edge
// capacities: sum of capacities of edges from the s side to the t side.
func cutCost(edges [][3]float64, tSide []bool) float64 {
	var cost float64
	for _, e := range edges {
		u, v, w := int(e[0]), int(e[1]), e[2]
		if !tSide[u] && tSide[v] {
			cost += w
		}
	}
	return cost
}

// bruteConstrainedCut enumerates all s-t cuts over the variable nodes
// respecting "at most one per group on the t side" and returns the
// minimum cost.
func bruteConstrainedCut(nVars int, edges [][3]float64, groups [][]int) float64 {
	best := math.Inf(1)
	for mask := 0; mask < 1<<nVars; mask++ {
		tSide := make([]bool, nVars+2)
		tSide[1] = true // t node
		ok := true
		for i := 0; i < nVars; i++ {
			tSide[2+i] = mask&(1<<i) != 0
		}
		for _, g := range groups {
			cnt := 0
			for _, v := range g {
				if tSide[v] {
					cnt++
				}
			}
			if cnt > 1 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if c := cutCost(edges, tSide); c < best {
			best = c
		}
	}
	return best
}

// TestConstrainedCutWithinFactorTwo checks, on random small instances,
// that the Fig. 4 algorithm returns a feasible cut within the claimed
// factor-2 of the optimal constrained cut.
func TestConstrainedCutWithinFactorTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 120; trial++ {
		nVars := 2 + rng.Intn(5)
		// Node ids: s=0, t=1, vars 2..nVars+1.
		var edges [][3]float64
		g := NewFlowGraph(nVars + 2)
		sEdge := map[int]int{}
		for i := 0; i < nVars; i++ {
			v := 2 + i
			a := 1 + rng.Float64()*9
			b := 1 + rng.Float64()*9
			sEdge[v] = g.AddEdge(0, v, a)
			g.AddEdge(v, 1, b)
			edges = append(edges, [3]float64{0, float64(v), a}, [3]float64{float64(v), 1, b})
		}
		// A few inter-variable edges.
		for k := 0; k < rng.Intn(4); k++ {
			u := 2 + rng.Intn(nVars)
			v := 2 + rng.Intn(nVars)
			if u == v {
				continue
			}
			w := rng.Float64() * 5
			g.AddEdge(u, v, w)
			edges = append(edges, [3]float64{float64(u), float64(v), w})
		}
		// Groups: partition the variables into 1-2 groups.
		var groups [][]int
		if nVars >= 2 && rng.Intn(2) == 0 {
			cut := 1 + rng.Intn(nVars-1)
			var g1, g2 []int
			for i := 0; i < nVars; i++ {
				if i < cut {
					g1 = append(g1, 2+i)
				} else {
					g2 = append(g2, 2+i)
				}
			}
			groups = [][]int{g1, g2}
		} else {
			var g1 []int
			for i := 0; i < nVars; i++ {
				g1 = append(g1, 2+i)
			}
			groups = [][]int{g1}
		}

		tSide := ConstrainedMinCut(g, 0, 1, groups, sEdge)
		// Feasibility.
		for gi, grp := range groups {
			cnt := 0
			for _, v := range grp {
				if tSide[v] {
					cnt++
				}
			}
			if cnt > 1 {
				t.Fatalf("trial %d: group %d has %d on t side", trial, gi, cnt)
			}
		}
		got := cutCost(edges, tSide)
		opt := bruteConstrainedCut(nVars, edges, groups)
		if got > 2*opt+1e-6 {
			t.Fatalf("trial %d: cut %f exceeds 2x optimal %f", trial, got, opt)
		}
	}
}

// TestMCMFLargeBoostRegression guards against the float-precision hang:
// large constants added to edge costs must not spin the SPFA search.
func TestMCMFLargeBoostRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		nL := 2 + rng.Intn(6)
		nR := nL + rng.Intn(3)
		capL := make([]int, nL)
		for i := range capL {
			capL[i] = 1
		}
		capR := make([]int, nR)
		for j := range capR {
			capR[j] = 1
		}
		w := make([][]float64, nL)
		for i := range w {
			w[i] = make([]float64, nR)
			for j := range w[i] {
				w[i][j] = rng.Float64()*3 - 1
				if j == 0 {
					w[i][j] += 1e4 // the must-match boost pattern
				}
			}
		}
		sol := SolveAssignment(capL, capR, w) // must terminate
		if sol.Total < 1e4-10 {
			t.Fatalf("trial %d: boost not captured, total %f", trial, sol.Total)
		}
		sol.MaxMarginals() // must terminate too
	}
}
