package graph

// ConstrainedMinCut solves the constrained minimum s-t cut problem of §4.3
// (Fig. 4): given a flow network, disjoint vertex groups V1..VT, and for
// each group vertex the id of its s→v edge, find a small s-t cut such that
// at most one vertex of each group lies on the t side.
//
// The unconstrained problem is solved first. While some group has more
// than one member on the t side, the algorithm evaluates, for every member
// v of every violated group, the additional flow needed when all *other*
// t-side members of that group are pinned to the s side (via infinite
// s→u capacity); it commits the (group, survivor) choice with the minimum
// additional flow and repeats. The paper shows this is a factor-2
// approximation; each iteration permanently satisfies one group, so the
// loop runs at most len(groups) times.
//
// g is mutated (flow pushed, capacities raised). The returned slice marks
// the t side of the final cut.
func ConstrainedMinCut(g *FlowGraph, s, t int, groups [][]int, sEdge map[int]int) []bool {
	g.MaxFlow(s, t)
	tSide := complement(g.SSide(s))

	for iter := 0; iter <= len(groups); iter++ {
		violated := violatedGroups(groups, tSide)
		if len(violated) == 0 {
			return tSide
		}
		bestFlow := Inf
		bestGroup, bestKeep := -1, -1
		for _, gi := range violated {
			members := tMembers(groups[gi], tSide)
			for _, keep := range members {
				extra := pinnedExtraFlow(g, s, t, members, keep, sEdge)
				if extra < bestFlow {
					bestFlow = extra
					bestGroup, bestKeep = gi, keep
				}
			}
		}
		if bestGroup < 0 {
			return tSide
		}
		// Commit: pin all t-side members of the chosen group except the
		// survivor, push the extra flow, recompute the cut.
		for _, u := range tMembers(groups[bestGroup], tSide) {
			if u == bestKeep {
				continue
			}
			g.RaiseCap(sEdge[u], Inf)
		}
		g.MaxFlow(s, t)
		tSide = complement(g.SSide(s))
	}
	return tSide
}

// pinnedExtraFlow computes, on a clone, the additional max flow when every
// member except keep is pinned to the s side.
func pinnedExtraFlow(g *FlowGraph, s, t int, members []int, keep int, sEdge map[int]int) float64 {
	c := g.Clone()
	for _, u := range members {
		if u == keep {
			continue
		}
		c.RaiseCap(sEdge[u], Inf)
	}
	return c.MaxFlow(s, t)
}

func violatedGroups(groups [][]int, tSide []bool) []int {
	var out []int
	for i, grp := range groups {
		if len(tMembers(grp, tSide)) > 1 {
			out = append(out, i)
		}
	}
	return out
}

func tMembers(group []int, tSide []bool) []int {
	var out []int
	for _, v := range group {
		if tSide[v] {
			out = append(out, v)
		}
	}
	return out
}

func complement(side []bool) []bool {
	out := make([]bool, len(side))
	for i, b := range side {
		out[i] = !b
	}
	return out
}
