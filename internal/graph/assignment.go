package graph

import (
	"math"

	"wwt/internal/slicex"
)

// Assignment solves the generalized maximum-weight bipartite matching of
// §4.2.1: left nodes with capacities capL, right nodes with capacities
// capR, edge weights w[i][j], maximize the total weight of a matching that
// saturates every node up to its capacity. The reduction balances the two
// sides with a dummy node (cost-0 edges) and runs min-cost max-flow.
//
// The solved Assignment retains its residual graph so MaxMarginals can
// answer "best total weight when left i is forced to right j" queries in
// one Bellman-Ford per right node (§4.2.3, Fig. 3).
type Assignment struct {
	nL, nR int
	w      [][]float64

	ws      *Workspace
	g       *MCMF
	edgeIDs []int32 // flat nL x nR: left i, right j -> MCMF edge id (-1 when absent)
	// node numbering inside g
	s, t       int
	leftBase   int
	rightBase  int
	dummyLeft  int // -1 when absent
	dummyRight int // -1 when absent
	// results
	Total  float64 // sum of w over matched real pairs
	MatchL []int   // for each left node: matched right node, or -1
}

// SolveAssignment builds and solves the matching problem with a private
// workspace, so the result is safe to retain. w must be nL x nR;
// capacities must be positive. Entries of w may be negative (they
// participate like any weight); use math.Inf(-1) to forbid a pair.
func SolveAssignment(capL, capR []int, w [][]float64) *Assignment {
	return SolveAssignmentWS(capL, capR, w, nil)
}

// SolveAssignmentWS is SolveAssignment through a caller-owned workspace:
// the network, the solver scratch and the result buffers all come from ws,
// so a warm workspace solves without allocating. The returned Assignment
// aliases ws and is valid only until the next solve on it. A nil ws uses a
// fresh private workspace (identical to SolveAssignment).
func SolveAssignmentWS(capL, capR []int, w [][]float64, ws *Workspace) *Assignment {
	if ws == nil {
		ws = &Workspace{}
	}
	nL, nR := len(capL), len(capR)
	a := &ws.asn
	*a = Assignment{nL: nL, nR: nR, w: w, ws: ws, dummyLeft: -1, dummyRight: -1}

	sumL, sumR := 0, 0
	for _, c := range capL {
		sumL += c
	}
	for _, c := range capR {
		sumR += c
	}
	// Node layout: s, t, lefts, (dummy left), rights, (dummy right).
	extraL, extraR := 0, 0
	if sumR > sumL {
		extraL = 1
	} else if sumL > sumR {
		extraR = 1
	}
	n := 2 + nL + extraL + nR + extraR
	a.s, a.t = 0, 1
	a.leftBase = 2
	a.rightBase = 2 + nL + extraL
	g := &ws.g
	g.reset(n)
	g.Reserve(nL + nR + 2 + nL*nR + nL + nR) // caps, dummies, full bipartite grid
	a.g = g

	for i, c := range capL {
		g.AddEdge(a.s, a.leftBase+i, c, 0)
	}
	if extraL == 1 {
		a.dummyLeft = a.leftBase + nL
		g.AddEdge(a.s, a.dummyLeft, sumR-sumL, 0)
	}
	for j, c := range capR {
		g.AddEdge(a.rightBase+j, a.t, c, 0)
	}
	if extraR == 1 {
		a.dummyRight = a.rightBase + nR
		g.AddEdge(a.dummyRight, a.t, sumL-sumR, 0)
	}

	ws.edgeIDs = slicex.Grow(ws.edgeIDs, nL*nR)
	a.edgeIDs = ws.edgeIDs
	for i := 0; i < nL; i++ {
		row := a.edgeIDs[i*nR : (i+1)*nR]
		for j := 0; j < nR; j++ {
			if math.IsInf(w[i][j], -1) {
				row[j] = -1
				continue
			}
			c := capL[i]
			if capR[j] < c {
				c = capR[j]
			}
			row[j] = int32(g.AddEdge(a.leftBase+i, a.rightBase+j, c, -w[i][j]))
		}
		if a.dummyRight >= 0 {
			g.AddEdge(a.leftBase+i, a.dummyRight, capL[i], 0)
		}
	}
	if a.dummyLeft >= 0 {
		for j := 0; j < nR; j++ {
			g.AddEdge(a.dummyLeft, a.rightBase+j, capR[j], 0)
		}
	}

	_, cost := g.Run(a.s, a.t)
	a.Total = -cost
	ws.matchL = slicex.Grow(ws.matchL, nL)
	a.MatchL = ws.matchL
	for i := range a.MatchL {
		a.MatchL[i] = -1
		for j := 0; j < nR; j++ {
			if id := a.edgeIDs[i*nR+j]; id >= 0 && g.EdgeFlow(int(id)) > 0 {
				a.MatchL[i] = j
				break
			}
		}
	}
	return a
}

// MaxMarginals returns mu[i][j]: the maximum total matching weight under
// the constraint that left i is matched to right j, computed as
// Opt - d(j, i) - cost(i, j) over the final residual graph (Fig. 3).
// Forbidden or unreachable pairs yield -Inf. The result is backed by the
// assignment's workspace: valid only until its next solve.
func (a *Assignment) MaxMarginals() [][]float64 {
	ws := a.ws
	ws.muBacking = slicex.Grow(ws.muBacking, a.nL*a.nR)
	ws.mu = slicex.Grow(ws.mu, a.nL)
	mu := ws.mu
	for i := range mu {
		mu[i] = ws.muBacking[i*a.nR : (i+1)*a.nR]
	}
	for j := 0; j < a.nR; j++ {
		ws.resDist = slicex.Grow(ws.resDist, a.g.n)
		dist := ws.resDist
		a.g.residualShortestInto(a.rightBase+j, dist)
		for i := 0; i < a.nL; i++ {
			if a.edgeIDs[i*a.nR+j] == -1 {
				mu[i][j] = math.Inf(-1)
				continue
			}
			if a.MatchL[i] == j {
				mu[i][j] = a.Total
				continue
			}
			d := dist[a.leftBase+i]
			if math.IsInf(d, 1) {
				mu[i][j] = math.Inf(-1)
				continue
			}
			mu[i][j] = a.Total - d - (-a.w[i][j])
		}
	}
	return mu
}
