package graph

import (
	"math"

	"wwt/internal/slicex"
)

// Inf is the effectively-infinite cost/capacity used to encode hard
// constraints without overflowing float64 arithmetic.
const Inf = 1e15

// MCMF is a min-cost max-flow network with integer capacities and float64
// costs. Edges are stored in pairs: edge i and i^1 are mutual reverses.
// Adjacency is a forward-star (head/tail/next intrusive lists), so adding
// an edge never allocates beyond the amortized array appends — the
// assignment reductions build thousands of small networks per query. Lists
// are kept in insertion order: shortest-path searches break cost ties by
// the first edge relaxed, and callers (max-marginals, matching extraction)
// observe which equally-cheap path wins, so iteration order is part of the
// solver's contract.
type MCMF struct {
	n    int
	to   []int32
	capa []int32
	cost []float64
	head []int32 // node -> first incident edge id, -1 when none
	tail []int32 // node -> last incident edge id, -1 when none
	next []int32 // edge id -> next incident edge id at the same node

	// Run scratch, lazily sized and reused across Run calls (and across
	// solves when the MCMF itself is reused through a Workspace).
	dist     []float64
	inQueue  []bool
	prevEdge []int32
	queue    []int32
}

// NewMCMF returns an empty network on n nodes (0..n-1).
func NewMCMF(n int) *MCMF {
	head := make([]int32, 2*n)
	for i := range head {
		head[i] = -1
	}
	return &MCMF{n: n, head: head[:n], tail: head[n:]}
}

// Reserve preallocates room for m AddEdge calls.
func (g *MCMF) Reserve(m int) {
	if cap(g.to)-len(g.to) >= 2*m {
		return
	}
	grow := len(g.to) + 2*m
	to := make([]int32, len(g.to), grow)
	copy(to, g.to)
	g.to = to
	capa := make([]int32, len(g.capa), grow)
	copy(capa, g.capa)
	g.capa = capa
	cost := make([]float64, len(g.cost), grow)
	copy(cost, g.cost)
	g.cost = cost
	next := make([]int32, len(g.next), grow)
	copy(next, g.next)
	g.next = next
}

// AddEdge adds a directed edge u→v with the given capacity and per-unit
// cost, plus the implicit zero-capacity reverse edge. It returns the edge
// id; EdgeFlow(id) reads its flow after Run.
func (g *MCMF) AddEdge(u, v, capacity int, cost float64) int {
	id := len(g.to)
	g.to = append(g.to, int32(v), int32(u))
	g.capa = append(g.capa, int32(capacity), 0)
	g.cost = append(g.cost, cost, -cost)
	g.next = append(g.next, -1, -1)
	g.link(u, int32(id))
	g.link(v, int32(id+1))
	return id
}

// link appends edge id to node u's incident list, preserving insertion
// order.
func (g *MCMF) link(u int, id int32) {
	if g.tail[u] < 0 {
		g.head[u] = id
	} else {
		g.next[g.tail[u]] = id
	}
	g.tail[u] = id
}

// EdgeFlow returns the flow currently on edge id (the capacity accumulated
// by its reverse edge).
func (g *MCMF) EdgeFlow(id int) int { return int(g.capa[id^1]) }

// costEps is the relaxation threshold of the shortest-path searches.
// Successive shortest paths can leave hair-thin "negative cycles" in the
// residual graph purely from floating-point cancellation (costs combine
// user potentials with large constraint boosts); relaxations below this
// threshold are noise and must not loop forever.
const costEps = 1e-7

// Run pushes the maximum flow from s to t at minimum total cost using
// successive shortest paths found with Bellman-Ford (negative edge costs
// are allowed; the input must not contain negative cycles, which holds for
// all reductions in this repo). It returns the total flow and its cost.
func (g *MCMF) Run(s, t int) (int, float64) {
	totalFlow := 0
	totalCost := 0.0
	dist := slicex.Grow(g.dist, g.n)
	inQueue := slicex.Grow(g.inQueue, g.n)
	prevEdge := slicex.Grow(g.prevEdge, g.n)
	g.dist, g.inQueue, g.prevEdge = dist, inQueue, prevEdge
	// inQueue's invariant (queue empty => all false) holds between Run
	// calls except after a budget bailout; clear so reuse starts clean.
	clear(inQueue)
	for {
		// SPFA variant of Bellman-Ford over positive-residual edges. The
		// pop budget is a defensive bound: float noise cannot spin it.
		for i := range dist {
			dist[i] = math.Inf(1)
			prevEdge[i] = -1
		}
		dist[s] = 0
		queue := append(g.queue[:0], int32(s))
		qhead := 0
		inQueue[s] = true
		budget := 50 * (g.n + 1) * (len(g.to) + 1)
		for qhead < len(queue) && budget > 0 {
			budget--
			u := queue[qhead]
			qhead++
			inQueue[u] = false
			for id := g.head[u]; id >= 0; id = g.next[id] {
				if g.capa[id] <= 0 {
					continue
				}
				v := g.to[id]
				nd := dist[u] + g.cost[id]
				if nd < dist[v]-costEps {
					dist[v] = nd
					prevEdge[v] = id
					if !inQueue[v] {
						inQueue[v] = true
						queue = append(queue, v)
					}
				}
			}
		}
		g.queue = queue[:0]
		if math.IsInf(dist[t], 1) {
			return totalFlow, totalCost
		}
		// Bottleneck along the path.
		push := int32(math.MaxInt32)
		for v := int32(t); v != int32(s); {
			id := prevEdge[v]
			if g.capa[id] < push {
				push = g.capa[id]
			}
			v = g.to[id^1]
		}
		for v := int32(t); v != int32(s); {
			id := prevEdge[v]
			g.capa[id] -= push
			g.capa[id^1] += push
			v = g.to[id^1]
		}
		totalFlow += int(push)
		totalCost += float64(push) * dist[t]
	}
}

// ResidualShortestFrom runs Bellman-Ford from src over the residual graph
// (edges with positive remaining capacity) and returns the distance to
// every node (+Inf when unreachable). This is the Fig. 3 primitive for
// max-marginals.
func (g *MCMF) ResidualShortestFrom(src int) []float64 {
	dist := make([]float64, g.n)
	g.residualShortestInto(src, dist)
	return dist
}

// residualShortestInto is ResidualShortestFrom into a caller-owned buffer
// of length g.n (fully overwritten).
func (g *MCMF) residualShortestInto(src int, dist []float64) {
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	// Plain Bellman-Ford: n-1 relaxation rounds with early exit.
	for round := 0; round < g.n-1; round++ {
		changed := false
		for id := 0; id < len(g.to); id++ {
			if g.capa[id] <= 0 {
				continue
			}
			u := g.to[id^1]
			if math.IsInf(dist[u], 1) {
				continue
			}
			v := g.to[id]
			if nd := dist[u] + g.cost[id]; nd < dist[v]-costEps {
				dist[v] = nd
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}
