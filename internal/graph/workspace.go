package graph

import "wwt/internal/slicex"

// Workspace holds the reusable backing state of assignment solves: the
// MCMF network, its shortest-path scratch, and the matching/max-marginal
// output buffers. The query pipeline runs thousands of small solves per
// query; solving through a Workspace makes the steady-state allocation
// cost of each solve zero.
//
// The zero value is ready to use. A Workspace is single-owner state (one
// goroutine at a time): the Assignment returned by SolveAssignmentWS —
// including MatchL and anything returned by its MaxMarginals — aliases the
// workspace and is valid only until the workspace's next solve. Callers
// that retain solver output across solves must copy it out first.
type Workspace struct {
	g   MCMF
	asn Assignment

	edgeIDs []int32
	matchL  []int

	// MaxMarginals scratch.
	mu        [][]float64
	muBacking []float64
	resDist   []float64
}

// reset re-initializes the network to n empty nodes, keeping the backing
// arrays of previous solves.
func (g *MCMF) reset(n int) {
	g.n = n
	g.head = slicex.Grow(g.head, n)
	g.tail = slicex.Grow(g.tail, n)
	for i := 0; i < n; i++ {
		g.head[i] = -1
		g.tail[i] = -1
	}
	g.to = g.to[:0]
	g.capa = g.capa[:0]
	g.cost = g.cost[:0]
	g.next = g.next[:0]
}
