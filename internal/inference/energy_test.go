package inference

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wwt/internal/core"
	"wwt/internal/wtable"
)

func energyWorld(t *testing.T, withMutex bool) *pairwiseMRF {
	t.Helper()
	mk := func(id string, headers []string, body [][]string) *wtable.Table {
		tb := &wtable.Table{ID: id}
		if headers != nil {
			var hr wtable.Row
			for _, h := range headers {
				hr.Cells = append(hr.Cells, wtable.Cell{Text: h})
			}
			tb.HeaderRows = []wtable.Row{hr}
		}
		for _, r := range body {
			var br wtable.Row
			for _, c := range r {
				br.Cells = append(br.Cells, wtable.Cell{Text: c})
			}
			tb.BodyRows = append(tb.BodyRows, br)
		}
		return tb
	}
	tables := []*wtable.Table{
		mk("a", []string{"Country", "Currency"}, [][]string{{"France", "Euro"}, {"Japan", "Yen"}}),
		mk("b", nil, [][]string{{"France", "Euro"}, {"Japan", "Yen"}}),
	}
	b := &core.Builder{Params: core.DefaultParams(), Stats: constStats{}}
	m := b.Build([]string{"country", "currency"}, tables)
	return newPairwiseMRF(m, withMutex)
}

// TestPairEnergySubmodularForExpansion verifies the precondition of the
// α-expansion graph construction: for every edge, every current label
// pair and every α, E(yu,α)+E(α,yv) >= E(yu,yv)+E(α,α).
func TestPairEnergySubmodularForExpansion(t *testing.T) {
	p := energyWorld(t, false)
	L := p.labels
	for _, e := range p.edges {
		for yu := 0; yu < L; yu++ {
			for yv := 0; yv < L; yv++ {
				for alpha := 0; alpha < L; alpha++ {
					a := p.pairEnergy(e, yu, yv)
					b := p.pairEnergy(e, yu, alpha)
					c := p.pairEnergy(e, alpha, yv)
					d := p.pairEnergy(e, alpha, alpha)
					if b+c < a+d-1e-9 {
						t.Fatalf("submodularity violated on edge %+v: yu=%d yv=%d α=%d (%f+%f < %f+%f)",
							e, yu, yv, alpha, b, c, a, d)
					}
				}
			}
		}
	}
}

// TestPairEnergySymmetricCross: cross-table Potts energies are symmetric.
func TestPairEnergySymmetricCross(t *testing.T) {
	p := energyWorld(t, true)
	L := p.labels
	for _, e := range p.edges {
		for lu := 0; lu < L; lu++ {
			for lv := 0; lv < L; lv++ {
				if p.pairEnergy(e, lu, lv) != p.pairEnergy(e, lv, lu) {
					t.Fatalf("asymmetric pair energy on %+v at (%d,%d)", e, lu, lv)
				}
			}
		}
	}
}

// TestIntraEdgeEncodesAllIrr: exactly-one-nr label pairs are penalized.
func TestIntraEdgeEncodesAllIrr(t *testing.T) {
	p := energyWorld(t, false)
	nr := core.NR(p.q)
	for _, e := range p.edges {
		if e.kind != intraEdge {
			continue
		}
		if p.pairEnergy(e, nr, 0) < bigEnergy {
			t.Error("nr paired with real label not penalized")
		}
		if p.pairEnergy(e, nr, nr) != 0 {
			t.Error("double nr wrongly penalized")
		}
		if p.pairEnergy(e, 0, 1) != 0 {
			t.Error("distinct real labels wrongly penalized without mutex")
		}
	}
}

// TestMutexEncodedOnlyWhenRequested distinguishes the two MRF builds.
func TestMutexEncodedOnlyWhenRequested(t *testing.T) {
	without := energyWorld(t, false)
	with := energyWorld(t, true)
	var foundIntra bool
	for i, e := range with.edges {
		if e.kind != intraEdge {
			continue
		}
		foundIntra = true
		if with.pairEnergy(e, 0, 0) < bigEnergy {
			t.Error("mutex violation not penalized in withMutex build")
		}
		if without.pairEnergy(without.edges[i], 0, 0) != 0 {
			t.Error("mutex penalized in build without mutex edges")
		}
	}
	if !foundIntra {
		t.Fatal("no intra-table edges built")
	}
}

// TestTotalEnergyMatchesModelScore: for feasible labelings the MRF energy
// must be the negated model objective (up to the constraints, which are
// zero when satisfied).
func TestTotalEnergyMatchesModelScore(t *testing.T) {
	mkModel := func() (*core.Model, *pairwiseMRF) {
		tb := &wtable.Table{ID: "a"}
		tb.HeaderRows = []wtable.Row{{Cells: []wtable.Cell{{Text: "Country"}, {Text: "Currency"}}}}
		tb.BodyRows = []wtable.Row{{Cells: []wtable.Cell{{Text: "France"}, {Text: "Euro"}}}}
		b := &core.Builder{Params: core.DefaultParams(), Stats: constStats{}}
		m := b.Build([]string{"country", "currency"}, []*wtable.Table{tb})
		return m, newPairwiseMRF(m, false)
	}
	m, p := mkModel()
	l := core.Labeling{Q: 2, Y: [][]int{{0, 1}}}
	flat := []int{0, 1}
	score := m.Score(l)
	energy := p.totalEnergy(flat, true)
	if diff := score + energy; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("energy %f != -score %f", energy, score)
	}
}

// TestExpansionMoveNeverWorsensRelaxedEnergy (property): a single α-move
// accepted by the solver must not increase the relaxed energy.
func TestExpansionMoveNeverWorsensRelaxedEnergy(t *testing.T) {
	p := energyWorld(t, false)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random feasible-ish start: per table either all-na or all-nr.
		y := p.allNA()
		for ti := range p.varOf {
			if r.Intn(2) == 0 {
				for _, u := range p.varOf[ti] {
					y[u] = core.NR(p.q)
				}
			}
		}
		before := p.totalEnergy(y, true)
		alpha := r.Intn(p.labels)
		cand := expansionMove(p, y, alpha, true, &Scratch{})
		after := p.totalEnergy(cand, true)
		// The solver in SolveAlphaExpansion only accepts improving moves,
		// but the move itself (unconstrained labels) should rarely worsen;
		// tolerate equality and approximation slack for constrained cuts.
		return after <= before+bigEnergy/2 || after <= before+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
