package inference

import (
	"math"

	"wwt/internal/core"
	"wwt/internal/slicex"
)

// trwsIterations: each iteration is one forward plus one backward sweep.
// TRW-S converges slowly on this model's dissociative mutex edges; the
// paper measured it ~30x slower than the table-centric algorithm and least
// accurate of the collective methods (§5.3).
const trwsIterations = 100

// SolveTRWS runs sequential tree-reweighted message passing (Kolmogorov,
// 2006) on the pairwise MRF (mutex + all-Irr as pairwise penalties) in
// energy form, decodes sequentially, and repairs per-table violations.
func SolveTRWS(m *core.Model) core.Labeling {
	return solveTRWS(m, &Scratch{})
}

func solveTRWS(m *core.Model, s *Scratch) core.Labeling {
	p := newPairwiseMRFS(m, true, s)
	L := p.labels
	n := p.nVars

	// Edge appearance coefficients: gamma_u = 1/max(#fwd, #bwd) over the
	// monotonic chains induced by the variable order.
	s.gamma = slicex.Grow(s.gamma, n)
	gamma := s.gamma
	for u := 0; u < n; u++ {
		fwd, bwd := 0, 0
		for _, ei := range p.nbrs[u] {
			other := p.edges[ei].u
			if other == u {
				other = p.edges[ei].v
			}
			if other > u {
				fwd++
			} else {
				bwd++
			}
		}
		d := fwd
		if bwd > d {
			d = bwd
		}
		if d == 0 {
			d = 1
		}
		gamma[u] = 1 / float64(d)
	}

	s.emsgB = slicex.GrowClear(s.emsgB, 2*len(p.edges)*L)
	s.emsg = slicex.Grow(s.emsg, 2*len(p.edges))
	msg := s.emsg
	for i := range msg {
		msg[i] = s.emsgB[i*L : (i+1)*L : (i+1)*L]
	}
	s.h = slicex.Grow(s.h, L)
	hat := s.h
	s.newMsg = slicex.Grow(s.newMsg, L)
	newMsg := s.newMsg

	sweep := func(forward bool) {
		for step := 0; step < n; step++ {
			u := step
			if !forward {
				u = n - 1 - step
			}
			// theta-hat_u = unary + all incoming messages.
			for l := 0; l < L; l++ {
				hat[l] = p.unary[u][l]
			}
			for _, ei := range p.nbrs[u] {
				in := incoming(p, msg, ei, u)
				for l := 0; l < L; l++ {
					hat[l] += in[l]
				}
			}
			for _, ei := range p.nbrs[u] {
				e := p.edges[ei]
				other := e.u
				if other == u {
					other = e.v
				}
				if forward && other <= u || !forward && other >= u {
					continue
				}
				in := incoming(p, msg, ei, u)
				for lo := 0; lo < L; lo++ {
					best := math.Inf(1)
					for lu := 0; lu < L; lu++ {
						var pe float64
						if e.u == u {
							pe = p.pairEnergy(e, lu, lo)
						} else {
							pe = p.pairEnergy(e, lo, lu)
						}
						if v := gamma[u]*hat[lu] - in[lu] + pe; v < best {
							best = v
						}
					}
					newMsg[lo] = best
				}
				normalizeMin(newMsg)
				out := outgoing(p, msg, ei, u)
				copy(out, newMsg)
			}
		}
	}

	for iter := 0; iter < trwsIterations; iter++ {
		sweep(true)
		sweep(false)
	}

	// Sequential decode: condition each variable on already-decoded
	// earlier neighbors.
	s.y = slicex.Grow(s.y, n)
	y := s.y
	s.decided = slicex.GrowClear(s.decided, n)
	decided := s.decided
	for u := 0; u < n; u++ {
		y[u] = 0
		bestE := math.Inf(1)
		for l := 0; l < L; l++ {
			e := p.unary[u][l]
			for _, ei := range p.nbrs[u] {
				ed := p.edges[ei]
				other := ed.u
				if other == u {
					other = ed.v
				}
				if decided[other] {
					if ed.u == u {
						e += p.pairEnergy(ed, l, y[other])
					} else {
						e += p.pairEnergy(ed, y[other], l)
					}
				} else {
					e += incoming(p, msg, ei, u)[l]
				}
			}
			if e < bestE {
				bestE = e
				y[u] = l
			}
		}
		decided[u] = true
	}
	return repairTableConstraints(m, p.toLabeling(y), s)
}

// outgoing returns the message slot leaving variable 'from' along edge ei.
func outgoing(p *pairwiseMRF, msg [][]float64, ei, from int) []float64 {
	if p.edges[ei].u == from {
		return msg[2*ei] // u -> v
	}
	return msg[2*ei+1] // v -> u
}
