package inference

import "wwt/internal/core"

// tieBreakMsg scales the small additive share of the neighbor message kept
// on top of the paper's max(msg, θ): max() alone cannot break exact node
// ties (two query columns sharing their dominant keyword), whereas content
// overlap can. The term is an order of magnitude below typical potentials,
// so non-tied decisions are unaffected. This is a documented deviation
// from the literal §4.2 formula (see DESIGN.md).
const tieBreakMsg = 0.1

// SolveTableCentric implements the paper's table-centric collective
// inference (§4.2) in three stages:
//
//  1. Per table, compute max-marginals µ_tc(ℓ) under mutex + all-Irr and
//     normalize them into distributions p_tc(ℓ). (The model precomputes
//     these — they also gate the edges.)
//  2. Each column collects messages from its neighbors:
//     msg(tc,ℓ) = Σ_{t'c' ∈ nbr(tc)} we·nsim(tc,t'c')·p_{t'c'}(ℓ).
//  3. Per table, re-run the §4.1 matching with node potentials
//     max(msg(tc,ℓ), θ(tc,ℓ)) + tieBreakMsg·msg(tc,ℓ).
//
// Stage 2 only strengthens real query-column labels: edges exist to
// transfer column identities, never to spread irrelevance.
func SolveTableCentric(m *core.Model) core.Labeling {
	q := m.NumQ
	// Stage 2: messages.
	msg := make([][][]float64, len(m.Views))
	for ti, v := range m.Views {
		msg[ti] = make([][]float64, v.NumCols)
		for c := range msg[ti] {
			msg[ti][c] = make([]float64, q)
		}
	}
	for _, e := range m.Edges {
		for ell := 0; ell < q; ell++ {
			// WAB already folds in we, nsim(A,B) and B's confidence gate.
			msg[e.T1][e.C1][ell] += e.WAB * m.Dist[e.T2][e.C2][ell]
			msg[e.T2][e.C2][ell] += e.WBA * m.Dist[e.T1][e.C1][ell]
		}
	}

	// Stage 3: re-solve each table with boosted potentials.
	l := core.NewLabeling(q, m.Cols())
	for ti, v := range m.Views {
		node := make([][]float64, v.NumCols)
		for c := 0; c < v.NumCols; c++ {
			node[c] = append([]float64(nil), m.Node[ti][c]...)
			for ell := 0; ell < q; ell++ {
				// A zero message means "no neighbor evidence" and must not
				// override a (possibly negative) node potential.
				v := msg[ti][c][ell]
				if v <= 0 {
					continue
				}
				if v > node[c][ell] {
					node[c][ell] = v
				}
				node[c][ell] += tieBreakMsg * v
			}
		}
		l.Y[ti] = solveTableMAP(m, ti, node)
	}
	return l
}
