package inference

import (
	"wwt/internal/core"
	"wwt/internal/slicex"
)

// tieBreakMsg scales the small additive share of the neighbor message kept
// on top of the paper's max(msg, θ): max() alone cannot break exact node
// ties (two query columns sharing their dominant keyword), whereas content
// overlap can. The term is an order of magnitude below typical potentials,
// so non-tied decisions are unaffected. This is a documented deviation
// from the literal §4.2 formula (see DESIGN.md).
const tieBreakMsg = 0.1

// SolveTableCentric implements the paper's table-centric collective
// inference (§4.2) in three stages:
//
//  1. Per table, compute max-marginals µ_tc(ℓ) under mutex + all-Irr and
//     normalize them into distributions p_tc(ℓ). (The model precomputes
//     these — they also gate the edges.)
//  2. Each column collects messages from its neighbors:
//     msg(tc,ℓ) = Σ_{t'c' ∈ nbr(tc)} we·nsim(tc,t'c')·p_{t'c'}(ℓ).
//  3. Per table, re-run the §4.1 matching with node potentials
//     max(msg(tc,ℓ), θ(tc,ℓ)) + tieBreakMsg·msg(tc,ℓ).
//
// Stage 2 only strengthens real query-column labels: edges exist to
// transfer column identities, never to spread irrelevance.
func SolveTableCentric(m *core.Model) core.Labeling {
	return solveTableCentric(m, &Scratch{})
}

func solveTableCentric(m *core.Model, s *Scratch) core.Labeling {
	q := m.NumQ
	// Stage 2: messages, accumulated into one cleared flat grid over
	// (global column, query label).
	nVars := 0
	for _, v := range m.Views {
		nVars += v.NumCols
	}
	s.msgB = slicex.GrowClear(s.msgB, nVars*q)
	s.msgRows = slicex.Grow(s.msgRows, nVars)
	s.msgTab = slicex.Grow(s.msgTab, len(m.Views))
	msg := s.msgTab
	gc := 0
	for ti, v := range m.Views {
		nt := v.NumCols
		msg[ti] = s.msgRows[gc : gc+nt : gc+nt]
		for c := 0; c < nt; c++ {
			s.msgRows[gc+c] = s.msgB[(gc+c)*q : (gc+c+1)*q : (gc+c+1)*q]
		}
		gc += nt
	}
	for _, e := range m.Edges {
		for ell := 0; ell < q; ell++ {
			// WAB already folds in we, nsim(A,B) and B's confidence gate.
			msg[e.T1][e.C1][ell] += e.WAB * m.Dist[e.T2][e.C2][ell]
			msg[e.T2][e.C2][ell] += e.WBA * m.Dist[e.T1][e.C1][ell]
		}
	}

	// Stage 3: re-solve each table with boosted potentials.
	l := core.NewLabeling(q, m.Cols())
	labels := core.NumLabels(q)
	for ti, v := range m.Views {
		nt := v.NumCols
		s.nodeB = slicex.Grow(s.nodeB, nt*labels)
		s.node = slicex.Grow(s.node, nt)
		node := s.node
		for c := 0; c < nt; c++ {
			row := s.nodeB[c*labels : (c+1)*labels : (c+1)*labels]
			node[c] = row
			copy(row, m.Node[ti][c])
			for ell := 0; ell < q; ell++ {
				// A zero message means "no neighbor evidence" and must not
				// override a (possibly negative) node potential.
				mv := msg[ti][c][ell]
				if mv <= 0 {
					continue
				}
				if mv > row[ell] {
					row[ell] = mv
				}
				row[ell] += tieBreakMsg * mv
			}
		}
		solveTableMAPInto(m, ti, node, l.Y[ti], s)
	}
	return l
}
