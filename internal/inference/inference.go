package inference

import (
	"fmt"

	"wwt/internal/core"
)

// Algorithm selects a collective inference method.
type Algorithm int

// Available algorithms.
const (
	Independent Algorithm = iota
	TableCentric
	AlphaExpansion
	BP
	TRWS
)

// String names the algorithm as in the paper's Table 2.
func (a Algorithm) String() string {
	switch a {
	case Independent:
		return "None"
	case TableCentric:
		return "Table-centric"
	case AlphaExpansion:
		return "α-exp"
	case BP:
		return "BP"
	case TRWS:
		return "TRWS"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Algorithms lists all methods in Table 2 order.
var Algorithms = []Algorithm{Independent, AlphaExpansion, BP, TRWS, TableCentric}

// Degrade maps an algorithm to its deadline-degradation fallback: every
// collective method falls back to the independent per-table solve, which
// is the cheapest labeling that still satisfies all hard constraints
// (it is the ICM-style lower bound every collective method starts from).
// Independent degrades to itself. The query planner uses this seam when a
// member's estimated remaining cost overruns its deadline.
func Degrade(a Algorithm) Algorithm { return Independent }

// Solve runs the chosen algorithm on the model and returns a labeling that
// satisfies all hard constraints.
func Solve(m *core.Model, alg Algorithm) core.Labeling {
	return SolveScratch(m, alg, nil)
}

// SolveScratch is Solve through a caller-owned scratch arena, so a warm
// arena runs a solve without reallocating its message buffers or solver
// state. The labeling is always freshly allocated and safe to retain; s
// may be reused the moment the call returns. A nil s uses a fresh private
// arena (identical to Solve).
func SolveScratch(m *core.Model, alg Algorithm, s *Scratch) core.Labeling {
	if s == nil {
		s = &Scratch{}
	}
	switch alg {
	case TableCentric:
		return solveTableCentric(m, s)
	case AlphaExpansion:
		return solveAlphaExpansion(m, true, s)
	case BP:
		return solveBP(m, s)
	case TRWS:
		return solveTRWS(m, s)
	default:
		return solveIndependent(m, s)
	}
}
