package inference

import "wwt/internal/graph"

// Scratch is the reusable arena of the inference stage: the assignment
// workspace and weight grids behind the per-table §4.1 solves, the
// table-centric message and boosted-node buffers, and the pairwise-MRF
// storage (variables, unaries, edges, edge messages) the edge-centric
// algorithms run on. The zero value is ready to use.
//
// A Scratch is single-owner state: one Solve at a time. Only the returned
// Labeling survives a solve — it is always freshly allocated — so a
// Scratch may be reused as soon as the previous call returns, and pooled
// and fresh scratches produce bit-identical labelings.
type Scratch struct {
	ws graph.Workspace

	// Per-table §4.1 matching reduction (solveTableMAPInto).
	capL, capR []int
	w          [][]float64
	wB         []float64

	// Table-centric neighbor messages and boosted node grid.
	msgB    []float64
	msgRows [][]float64
	msgTab  [][][]float64
	nodeB   []float64
	node    [][]float64

	// Pairwise MRF (α-expansion, BP, TRWS).
	mrf     pairwiseMRF
	varOfB  []int
	varOf   [][]int
	tableOf []int
	colOf   []int
	unaryB  []float64
	unary   [][]float64
	edges   []mrfEdge
	deg     []int
	nbrsB   []int
	nbrs    [][]int

	// Message passing (BP, TRWS).
	emsgB   []float64
	emsg    [][]float64
	h       []float64
	newMsg  []float64
	gamma   []float64
	y       []int
	decided []bool

	// α-expansion moves.
	cost0, cost1 []float64
	cutEdges     []cutEdge
	sEdge        map[int]int
}
