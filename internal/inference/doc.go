// Package inference solves the column-mapping MAP problem (Eq. 9), which
// is NP-hard, with the paper's algorithms (§4):
//
//   - Independent: exact per-table inference via generalized maximum-weight
//     bipartite matching (§4.1); no cross-table edges.
//   - TableCentric: the paper's best collective method (§4.2) — table-local
//     max-marginals, softmax distributions, one round of neighbor messages,
//     re-solve with boosted node potentials.
//   - AlphaExpansion: edge-centric graph-cut inference (§4.3) with the
//     mutex constraint enforced through the constrained minimum s-t cut of
//     Fig. 4 and must/min-match repaired in post-processing.
//   - BP: loopy max-product belief propagation with mutex and all-Irr
//     reduced to (dissociative) pairwise potentials.
//   - TRWS: sequential tree-reweighted message passing on the same model.
//
// # Ownership and concurrency contracts
//
// Solve reads the Model but never mutates it, so any number of goroutines
// may Solve the same model concurrently — the evaluation harness runs all
// five algorithms on one build. SolveScratch runs the same algorithms out
// of a caller-owned Scratch arena (message grids, per-table §4.1 solver
// state, the pairwise-MRF storage): one solve owns the arena at a time,
// and the returned Labeling owns its storage, surviving any later reuse
// of the arena. All algorithms are deterministic: identical models yield
// bit-identical labelings.
package inference
