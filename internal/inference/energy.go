package inference

import (
	"wwt/internal/core"
	"wwt/internal/slicex"
)

// The edge-centric algorithms (α-expansion, BP, TRWS) operate on a
// pairwise MRF in energy form (minimization; energy = -potential).
// Cross-table edges carry the (negated) Eq. 4 potential; within-table
// pairs encode the all-Irr constraint (Eq. 11) and — for the
// message-passing methods only — the mutex constraint, both as large
// finite penalties.

// bigEnergy encodes a violated hard constraint. Large enough to dominate
// any sum of real potentials, small enough that sums of many penalties
// stay far from overflow.
const bigEnergy = 1e6

type edgeKind uint8

const (
	crossEdge edgeKind = iota // cross-table content-overlap edge
	intraEdge                 // within-table constraint edge
)

type mrfEdge struct {
	u, v      int
	kind      edgeKind
	coef      float64 // cross edges: Eq. 4 coefficient
	includeNR bool    // plain-Potts ablation: reward shared nr too
}

// pairwiseMRF is the flattened variable/edge view of a core.Model.
type pairwiseMRF struct {
	m         *core.Model
	q         int
	labels    int // q+2
	nVars     int
	varOf     [][]int // [table][col] -> var
	tableOf   []int   // var -> table
	colOf     []int   // var -> col
	unary     [][]float64
	edges     []mrfEdge
	nbrs      [][]int // var -> edge indices
	withMutex bool    // encode mutex as pairwise penalties
}

// newPairwiseMRF flattens a model into its pairwise energy form with a
// private scratch; the result owns its storage.
func newPairwiseMRF(m *core.Model, withMutex bool) *pairwiseMRF {
	return newPairwiseMRFS(m, withMutex, &Scratch{})
}

// newPairwiseMRFS builds the MRF into s: variables, unaries, edge list and
// adjacency all live in the scratch's flat arrays, so a warm scratch
// rebuilds the MRF without allocating. The result aliases s and is valid
// until the scratch's next MRF build.
func newPairwiseMRFS(m *core.Model, withMutex bool, s *Scratch) *pairwiseMRF {
	q := m.NumQ
	p := &s.mrf
	*p = pairwiseMRF{m: m, q: q, labels: core.NumLabels(q), withMutex: withMutex}
	nVars := 0
	for _, v := range m.Views {
		nVars += v.NumCols
	}
	p.nVars = nVars
	s.varOf = slicex.Grow(s.varOf, len(m.Views))
	s.varOfB = slicex.Grow(s.varOfB, nVars)
	s.tableOf = slicex.Grow(s.tableOf, nVars)
	s.colOf = slicex.Grow(s.colOf, nVars)
	p.varOf, p.tableOf, p.colOf = s.varOf, s.tableOf, s.colOf
	u := 0
	for ti, v := range m.Views {
		nt := v.NumCols
		p.varOf[ti] = s.varOfB[u : u+nt : u+nt]
		for c := 0; c < nt; c++ {
			p.varOf[ti][c] = u
			p.tableOf[u] = ti
			p.colOf[u] = c
			u++
		}
	}
	s.unaryB = slicex.Grow(s.unaryB, nVars*p.labels)
	s.unary = slicex.Grow(s.unary, nVars)
	p.unary = s.unary
	for u := 0; u < nVars; u++ {
		ti, c := p.tableOf[u], p.colOf[u]
		row := s.unaryB[u*p.labels : (u+1)*p.labels : (u+1)*p.labels]
		p.unary[u] = row
		for label := 0; label < p.labels; label++ {
			row[label] = -m.Node[ti][c][label]
		}
	}
	// Edge list in the canonical order: cross-table edges first, then the
	// within-table constraint pairs.
	edges := s.edges[:0]
	for _, e := range m.Edges {
		edges = append(edges, mrfEdge{
			u: p.varOf[e.T1][e.C1], v: p.varOf[e.T2][e.C2],
			kind: crossEdge, coef: e.Coef(), includeNR: e.IncludeNR,
		})
	}
	for ti, v := range m.Views {
		for c1 := 0; c1 < v.NumCols; c1++ {
			for c2 := c1 + 1; c2 < v.NumCols; c2++ {
				edges = append(edges, mrfEdge{u: p.varOf[ti][c1], v: p.varOf[ti][c2], kind: intraEdge})
			}
		}
	}
	s.edges = edges
	p.edges = edges
	// Adjacency: count degrees, carve per-variable windows of one flat
	// array, then fill in edge order — the same per-variable order the old
	// append-as-added construction produced.
	s.deg = slicex.GrowClear(s.deg, nVars)
	for _, e := range edges {
		s.deg[e.u]++
		s.deg[e.v]++
	}
	s.nbrsB = slicex.Grow(s.nbrsB, 2*len(edges))
	s.nbrs = slicex.Grow(s.nbrs, nVars)
	p.nbrs = s.nbrs
	off := 0
	for u := 0; u < nVars; u++ {
		p.nbrs[u] = s.nbrsB[off : off : off+s.deg[u]]
		off += s.deg[u]
	}
	for id, e := range edges {
		p.nbrs[e.u] = append(p.nbrs[e.u], id)
		p.nbrs[e.v] = append(p.nbrs[e.v], id)
	}
	return p
}

// pairEnergy evaluates the energy of edge e under labels (lu, lv).
func (p *pairwiseMRF) pairEnergy(e mrfEdge, lu, lv int) float64 {
	nr := core.NR(p.q)
	switch e.kind {
	case crossEdge:
		if lu == lv && (lu != nr || e.includeNR) {
			return -e.coef
		}
		return 0
	default: // intraEdge
		var en float64
		uNR, vNR := lu == nr, lv == nr
		if uNR != vNR {
			en += bigEnergy // all-Irr (Eq. 11)
		}
		if p.withMutex && lu == lv && lu < p.q {
			en += bigEnergy // mutex as a dissociative pairwise penalty
		}
		return en
	}
}

// totalEnergy evaluates a flat labeling; when checkMutex is set the mutex
// constraint is charged even for MRFs that do not encode it in edges
// (α-expansion's acceptance test).
func (p *pairwiseMRF) totalEnergy(y []int, checkMutex bool) float64 {
	var e float64
	for u := 0; u < p.nVars; u++ {
		e += p.unary[u][y[u]]
	}
	for _, ed := range p.edges {
		e += p.pairEnergy(ed, y[ed.u], y[ed.v])
	}
	if checkMutex && !p.withMutex {
		for ti := range p.varOf {
			seen := make(map[int]bool)
			for _, u := range p.varOf[ti] {
				l := y[u]
				if l < p.q {
					if seen[l] {
						e += bigEnergy
					}
					seen[l] = true
				}
			}
		}
	}
	return e
}

// toLabeling converts a flat assignment into a core.Labeling.
func (p *pairwiseMRF) toLabeling(y []int) core.Labeling {
	l := core.NewLabeling(p.q, p.m.Cols())
	for u := 0; u < p.nVars; u++ {
		l.Y[p.tableOf[u]][p.colOf[u]] = y[u]
	}
	return l
}

// allNA returns the α-expansion initial labeling (all variables na, §4.3).
func (p *pairwiseMRF) allNA() []int {
	y := make([]int, p.nVars)
	for i := range y {
		y[i] = core.NA(p.q)
	}
	return y
}
