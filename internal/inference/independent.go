package inference

import (
	"wwt/internal/core"
	"wwt/internal/graph"
)

// mustMatchBoost is the large constant M1 of §4.1 added to label-1 edges
// so the highest-scoring relevant labeling always covers the first query
// column. It dwarfs any achievable potential mass (node potentials are
// O(1) per column, tables have tens of columns) without eating the float64
// mantissa — adding 1e7-scale constants to O(1) costs would leave the
// min-cost-flow solver comparing path costs below its noise floor.
const mustMatchBoost = 1e4

// SolveIndependent labels every table independently and optimally (§4.1),
// ignoring cross-table edge potentials.
func SolveIndependent(m *core.Model) core.Labeling {
	l := core.NewLabeling(m.NumQ, m.Cols())
	for ti := range m.Views {
		l.Y[ti] = solveTableMAP(m, ti, m.Node[ti])
	}
	return l
}

// solveTableMAP runs the §4.1 reduction for one table with (possibly
// modified) node potentials: a generalized bipartite matching with
// capacity-1 label nodes, an na node of capacity nt-m, the M1 boost on the
// first query column, and a final comparison against the all-nr labeling.
func solveTableMAP(m *core.Model, ti int, node [][]float64) []int {
	q := m.NumQ
	nt := m.Views[ti].NumCols
	mm := m.Params.MinMatch(q)

	var nrScore float64
	for c := 0; c < nt; c++ {
		nrScore += node[c][core.NR(q)]
	}
	allNR := make([]int, nt)
	for c := range allNR {
		allNR[c] = core.NR(q)
	}
	// A table narrower than m can never satisfy min-match: irrelevant.
	if nt < mm {
		return allNR
	}

	capL := ones(nt)
	capR := make([]int, q+1)
	for j := 0; j < q; j++ {
		capR[j] = 1
	}
	capR[q] = nt - mm
	w := make([][]float64, nt)
	for c := 0; c < nt; c++ {
		w[c] = make([]float64, q+1)
		for j := 0; j < q; j++ {
			w[c][j] = node[c][j]
			if j == 0 {
				w[c][j] += mustMatchBoost
			}
		}
		w[c][q] = node[c][core.NA(q)]
	}
	sol := graph.SolveAssignment(capL, capR, w)
	relevantScore := sol.Total - mustMatchBoost

	if relevantScore <= nrScore {
		return allNR
	}
	labels := make([]int, nt)
	for c := 0; c < nt; c++ {
		j := sol.MatchL[c]
		if j < 0 || j == q {
			labels[c] = core.NA(q)
		} else {
			labels[c] = j
		}
	}
	return labels
}

// repairTableConstraints re-solves any table whose labeling violates a
// hard constraint (used as post-processing by the edge-centric methods,
// §4.3). The repaired labeling is the per-table optimum of the node
// potentials.
func repairTableConstraints(m *core.Model, l core.Labeling) core.Labeling {
	q := m.NumQ
	for ti := range m.Views {
		if !tableFeasible(m, ti, l.Y[ti], q) {
			l.Y[ti] = solveTableMAP(m, ti, m.Node[ti])
		}
	}
	return l
}

// tableFeasible checks all four table constraints for one table.
func tableFeasible(m *core.Model, ti int, labels []int, q int) bool {
	nrCount, realCount := 0, 0
	hasFirst := false
	seen := make(map[int]bool, len(labels))
	for _, y := range labels {
		switch {
		case y == core.NR(q):
			nrCount++
		case y >= 0 && y < q:
			if seen[y] {
				return false // mutex
			}
			seen[y] = true
			realCount++
			if y == 0 {
				hasFirst = true
			}
		}
	}
	if nrCount != 0 && nrCount != len(labels) {
		return false // all-Irr
	}
	if nrCount == 0 {
		if !hasFirst {
			return false // must-match
		}
		if realCount < m.Params.MinMatch(q) {
			return false // min-match
		}
	}
	return true
}

func ones(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 1
	}
	return out
}
