package inference

import (
	"wwt/internal/core"
	"wwt/internal/graph"
	"wwt/internal/slicex"
)

// mustMatchBoost is the large constant M1 of §4.1 added to label-1 edges
// so the highest-scoring relevant labeling always covers the first query
// column. It dwarfs any achievable potential mass (node potentials are
// O(1) per column, tables have tens of columns) without eating the float64
// mantissa — adding 1e7-scale constants to O(1) costs would leave the
// min-cost-flow solver comparing path costs below its noise floor.
const mustMatchBoost = 1e4

// SolveIndependent labels every table independently and optimally (§4.1),
// ignoring cross-table edge potentials.
func SolveIndependent(m *core.Model) core.Labeling {
	return solveIndependent(m, &Scratch{})
}

func solveIndependent(m *core.Model, s *Scratch) core.Labeling {
	l := core.NewLabeling(m.NumQ, m.Cols())
	for ti := range m.Views {
		solveTableMAPInto(m, ti, m.Node[ti], l.Y[ti], s)
	}
	return l
}

// solveTableMAPInto runs the §4.1 reduction for one table with (possibly
// modified) node potentials, writing the optimal labels into dst (length
// nt, fully overwritten): a generalized bipartite matching with capacity-1
// label nodes, an na node of capacity nt-m, the M1 boost on the first
// query column, and a final comparison against the all-nr labeling. All
// solver state comes from s.
func solveTableMAPInto(m *core.Model, ti int, node [][]float64, dst []int, s *Scratch) {
	q := m.NumQ
	nt := m.Views[ti].NumCols
	mm := m.Params.MinMatch(q)

	var nrScore float64
	for c := 0; c < nt; c++ {
		nrScore += node[c][core.NR(q)]
	}
	allNR := func() {
		for c := range dst {
			dst[c] = core.NR(q)
		}
	}
	// A table narrower than m can never satisfy min-match: irrelevant.
	if nt < mm {
		allNR()
		return
	}

	s.capL = slicex.Grow(s.capL, nt)
	capL := s.capL
	for i := range capL {
		capL[i] = 1
	}
	s.capR = slicex.Grow(s.capR, q+1)
	capR := s.capR
	for j := 0; j < q; j++ {
		capR[j] = 1
	}
	capR[q] = nt - mm
	s.wB = slicex.Grow(s.wB, nt*(q+1))
	s.w = slicex.Grow(s.w, nt)
	w := s.w
	for c := 0; c < nt; c++ {
		w[c] = s.wB[c*(q+1) : (c+1)*(q+1) : (c+1)*(q+1)]
		for j := 0; j < q; j++ {
			w[c][j] = node[c][j]
			if j == 0 {
				w[c][j] += mustMatchBoost
			}
		}
		w[c][q] = node[c][core.NA(q)]
	}
	sol := graph.SolveAssignmentWS(capL, capR, w, &s.ws)
	relevantScore := sol.Total - mustMatchBoost

	if relevantScore <= nrScore {
		allNR()
		return
	}
	for c := 0; c < nt; c++ {
		j := sol.MatchL[c]
		if j < 0 || j == q {
			dst[c] = core.NA(q)
		} else {
			dst[c] = j
		}
	}
}

// repairTableConstraints re-solves any table whose labeling violates a
// hard constraint (used as post-processing by the edge-centric methods,
// §4.3). The repaired labeling is the per-table optimum of the node
// potentials.
func repairTableConstraints(m *core.Model, l core.Labeling, s *Scratch) core.Labeling {
	q := m.NumQ
	for ti := range m.Views {
		if !tableFeasible(m, ti, l.Y[ti], q) {
			solveTableMAPInto(m, ti, m.Node[ti], l.Y[ti], s)
		}
	}
	return l
}

// tableFeasible checks all four table constraints for one table.
func tableFeasible(m *core.Model, ti int, labels []int, q int) bool {
	nrCount, realCount := 0, 0
	hasFirst := false
	seen := make(map[int]bool, len(labels))
	for _, y := range labels {
		switch {
		case y == core.NR(q):
			nrCount++
		case y >= 0 && y < q:
			if seen[y] {
				return false // mutex
			}
			seen[y] = true
			realCount++
			if y == 0 {
				hasFirst = true
			}
		}
	}
	if nrCount != 0 && nrCount != len(labels) {
		return false // all-Irr
	}
	if nrCount == 0 {
		if !hasFirst {
			return false // must-match
		}
		if realCount < m.Params.MinMatch(q) {
			return false // min-match
		}
	}
	return true
}
