package inference

import (
	"wwt/internal/core"
	"wwt/internal/graph"
	"wwt/internal/slicex"
)

// SolveAlphaExpansion implements the constrained α-expansion of §4.3.
// Starting from the all-na labeling, each move optimally switches a set of
// variables to label α via a minimum s-t cut; for query-column labels the
// cut is the constrained minimum cut of Fig. 4, which lets at most one
// column per table switch (the mutex constraint). The all-Irr constraint
// rides along as pairwise energies (Eq. 11); must-match and min-match are
// repaired per table afterwards (§4.3).
func SolveAlphaExpansion(m *core.Model) core.Labeling {
	return solveAlphaExpansion(m, true, &Scratch{})
}

// SolveAlphaExpansionPostHocMutex is the ablation variant that ignores the
// mutex constraint during expansion moves (plain minimum cuts) and leaves
// all mutex violations to the per-table post-processing repair.
func SolveAlphaExpansionPostHocMutex(m *core.Model) core.Labeling {
	return solveAlphaExpansion(m, false, &Scratch{})
}

func solveAlphaExpansion(m *core.Model, constrainedMutex bool, s *Scratch) core.Labeling {
	mrf := newPairwiseMRFS(m, false, s)
	y := mrf.allNA()
	best := mrf.totalEnergy(y, true)

	const maxRounds = 10
	for round := 0; round < maxRounds; round++ {
		improved := false
		for alpha := 0; alpha < mrf.labels; alpha++ {
			cand := expansionMove(mrf, y, alpha, constrainedMutex, s)
			if e := mrf.totalEnergy(cand, true); e < best-1e-9 {
				y, best = cand, e
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return repairTableConstraints(m, mrf.toLabeling(y), s)
}

// cutEdge is one pairwise term of an expansion move's cut graph.
type cutEdge struct {
	u, v int
	cap  float64
}

// expansionMove computes the optimal (or, under the mutex constraint,
// 2-approximate) α-move from labeling y via a graph cut. Variables on the
// t side of the cut switch to α. Move-local buffers come from sc.
func expansionMove(p *pairwiseMRF, y []int, alpha int, constrainedMutex bool, sc *Scratch) []int {
	n := p.nVars
	// Node ids: s=0, t=1, variable u -> 2+u.
	const s, t = 0, 1
	node := func(u int) int { return 2 + u }

	sc.cost0 = slicex.Grow(sc.cost0, n)
	sc.cost1 = slicex.Grow(sc.cost1, n)
	cost0 := sc.cost0 // energy contribution when u keeps y[u]
	cost1 := sc.cost1 // energy contribution when u switches to α
	for u := 0; u < n; u++ {
		cost0[u] = p.unary[u][y[u]]
		cost1[u] = p.unary[u][alpha]
		if y[u] == alpha {
			// A variable already labeled α must stay on the t side so the
			// constrained cut's per-table groups count it.
			cost0[u] = graph.Inf
		}
	}

	cutEdges := sc.cutEdges[:0]
	for _, e := range p.edges {
		a := p.pairEnergy(e, y[e.u], y[e.v]) // E00
		b := p.pairEnergy(e, y[e.u], alpha)  // E01
		c := p.pairEnergy(e, alpha, y[e.v])  // E10
		d := p.pairEnergy(e, alpha, alpha)   // E11
		// Decompose (Kolmogorov-Zabih): const a; (c-a)·xu; (d-c)·xv;
		// (b+c-a-d)·(1-xu)xv.
		if diff := c - a; diff >= 0 {
			cost1[e.u] = satAdd(cost1[e.u], diff)
		} else {
			cost0[e.u] = satAdd(cost0[e.u], -diff)
		}
		if diff := d - c; diff >= 0 {
			cost1[e.v] = satAdd(cost1[e.v], diff)
		} else {
			cost0[e.v] = satAdd(cost0[e.v], -diff)
		}
		pw := satAdd(b, c) - satAdd(a, d)
		if pw > 1e-12 {
			cutEdges = append(cutEdges, cutEdge{e.u, e.v, pw})
		}
	}
	sc.cutEdges = cutEdges

	g := graph.NewFlowGraph(2 + n)
	if sc.sEdge == nil {
		sc.sEdge = make(map[int]int, n)
	}
	clear(sc.sEdge)
	sEdge := sc.sEdge
	for u := 0; u < n; u++ {
		shift := cost0[u]
		if cost1[u] < shift {
			shift = cost1[u]
		}
		sEdge[node(u)] = g.AddEdge(s, node(u), satSub(cost1[u], shift))
		g.AddEdge(node(u), t, satSub(cost0[u], shift))
	}
	for _, ce := range cutEdges {
		g.AddEdge(node(ce.u), node(ce.v), ce.cap)
	}

	var tSide []bool
	if alpha < p.q && constrainedMutex {
		// Mutex: at most one column per table may switch to a query label.
		var groups [][]int
		for ti := range p.varOf {
			if len(p.varOf[ti]) < 2 {
				continue
			}
			grp := make([]int, len(p.varOf[ti]))
			for i, u := range p.varOf[ti] {
				grp[i] = node(u)
			}
			groups = append(groups, grp)
		}
		tSide = graph.ConstrainedMinCut(g, s, t, groups, sEdge)
	} else {
		g.MaxFlow(s, t)
		sSide := g.SSide(s)
		tSide = make([]bool, len(sSide))
		for i, b := range sSide {
			tSide[i] = !b
		}
	}

	out := append([]int(nil), y...)
	for u := 0; u < n; u++ {
		if tSide[node(u)] {
			out[u] = alpha
		}
	}
	return out
}

// satAdd adds with saturation at graph.Inf.
func satAdd(a, b float64) float64 {
	s := a + b
	if s > graph.Inf {
		return graph.Inf
	}
	return s
}

// satSub subtracts, treating Inf - x as Inf.
func satSub(a, b float64) float64 {
	if a >= graph.Inf {
		return graph.Inf
	}
	return a - b
}
