package inference

import (
	"math"
	"testing"

	"wwt/internal/core"
	"wwt/internal/wtable"
)

type constStats struct{}

func (constStats) IDF(string) float64 { return 1 }

func row(texts ...string) wtable.Row {
	cells := make([]wtable.Cell, len(texts))
	for i, t := range texts {
		cells[i] = wtable.Cell{Text: t}
	}
	return wtable.Row{Cells: cells}
}

func table(id string, headers []string, body [][]string, context string) *wtable.Table {
	t := &wtable.Table{ID: id}
	if headers != nil {
		t.HeaderRows = []wtable.Row{row(headers...)}
	}
	for _, br := range body {
		t.BodyRows = append(t.BodyRows, row(br...))
	}
	if context != "" {
		t.Context = []wtable.Snippet{{Text: context, Score: 1}}
	}
	return t
}

func build(t *testing.T, q []string, tables []*wtable.Table) *core.Model {
	t.Helper()
	b := &core.Builder{Params: core.DefaultParams(), Stats: constStats{}}
	return b.Build(q, tables)
}

// currencyWorld builds a small world: one well-headed relevant table, one
// headerless relevant table sharing its content, and one junk table.
func currencyWorld(t *testing.T) *core.Model {
	good := table("good", []string{"Country", "Currency"},
		[][]string{{"France", "Euro"}, {"Japan", "Yen"}, {"India", "Rupee"}, {"Brazil", "Real"}},
		"currencies of the world by country")
	bare := table("bare", nil,
		[][]string{{"France", "Euro"}, {"Japan", "Yen"}, {"India", "Rupee"}, {"Brazil", "Real"}},
		"")
	junk := table("junk", []string{"ID", "Area"},
		[][]string{{"7", "2236"}, {"9", "880"}, {"13", "168"}},
		"forest reserves under the forestry act")
	return build(t, []string{"country", "currency"}, []*wtable.Table{good, bare, junk})
}

func checkFeasible(t *testing.T, m *core.Model, l core.Labeling, alg string) {
	t.Helper()
	if s := m.Score(l); math.IsInf(s, -1) {
		t.Fatalf("%s produced infeasible labeling: %v", alg, l.Y)
	}
}

func TestAllAlgorithmsFeasible(t *testing.T) {
	m := currencyWorld(t)
	for _, alg := range Algorithms {
		l := Solve(m, alg)
		checkFeasible(t, m, l, alg.String())
	}
}

func TestIndependentMapsGoodTable(t *testing.T) {
	m := currencyWorld(t)
	l := SolveIndependent(m)
	if !l.Relevant(0) {
		t.Fatal("well-headed table not marked relevant")
	}
	if l.Y[0][0] != 0 || l.Y[0][1] != 1 {
		t.Errorf("good table labels = %v, want [Q1 Q2]", l.Y[0])
	}
	if !l.Relevant(2) {
		return // junk marked irrelevant - good
	}
	// If junk is relevant something is off with the potentials.
	t.Errorf("junk table marked relevant: %v", l.Y[2])
}

func TestIndependentCannotLabelHeaderless(t *testing.T) {
	// Without edges, the headerless table has zero SegSim everywhere and
	// must be all-nr (its nr potential is positive, real labels carry the
	// negative bias).
	m := currencyWorld(t)
	l := SolveIndependent(m)
	if l.Relevant(1) {
		t.Errorf("headerless table should be irrelevant without collective inference: %v", l.Y[1])
	}
}

func TestTableCentricRecoversHeaderless(t *testing.T) {
	// Collective inference transfers the confident good-table labels to
	// the content-identical headerless table (§3.3's motivation).
	m := currencyWorld(t)
	l := SolveTableCentric(m)
	if !l.Relevant(1) {
		t.Fatalf("table-centric failed to recover headerless table: %v", l.Y[1])
	}
	if l.Y[1][0] != 0 || l.Y[1][1] != 1 {
		t.Errorf("headerless labels = %v, want [Q1 Q2]", l.Y[1])
	}
	// And the junk table must stay irrelevant.
	if l.Relevant(2) {
		t.Errorf("junk table became relevant: %v", l.Y[2])
	}
}

func TestAlphaExpansionRecoversHeaderless(t *testing.T) {
	m := currencyWorld(t)
	l := SolveAlphaExpansion(m)
	checkFeasible(t, m, l, "α-exp")
	if !l.Relevant(0) {
		t.Fatal("α-exp lost the good table")
	}
	if l.Y[0][0] != 0 || l.Y[0][1] != 1 {
		t.Errorf("good table labels = %v", l.Y[0])
	}
}

func TestMutexNeverViolated(t *testing.T) {
	// Two identical columns both scoring high for Q1: every algorithm must
	// assign Q1 to at most one.
	twin := table("twin", []string{"Currency", "Currency"},
		[][]string{{"Euro", "Euro"}, {"Yen", "Yen"}}, "currency list")
	m := build(t, []string{"currency"}, []*wtable.Table{twin})
	for _, alg := range Algorithms {
		l := Solve(m, alg)
		n := 0
		for _, y := range l.Y[0] {
			if y == 0 {
				n++
			}
		}
		if n > 1 {
			t.Errorf("%s violated mutex: %v", alg, l.Y[0])
		}
	}
}

func TestMinMatchForcesNarrowTableIrrelevant(t *testing.T) {
	// Single-column table, two-column query: min-match m=2 cannot hold.
	narrow := table("narrow", []string{"Country"},
		[][]string{{"France"}, {"Japan"}}, "countries")
	m := build(t, []string{"country", "currency"}, []*wtable.Table{narrow})
	for _, alg := range Algorithms {
		l := Solve(m, alg)
		if l.Relevant(0) {
			t.Errorf("%s marked 1-column table relevant under q=2", alg)
		}
	}
}

func TestMustMatchFirstColumn(t *testing.T) {
	// Table matching only Q2 (currency) but not Q1 (country): must-match
	// forbids relevance unless Q1 is covered.
	onlySecond := table("half", []string{"Code", "Currency"},
		[][]string{{"FR", "Euro"}, {"JP", "Yen"}}, "")
	m := build(t, []string{"zebra", "currency"}, []*wtable.Table{onlySecond})
	for _, alg := range Algorithms {
		l := Solve(m, alg)
		if l.Relevant(0) && l.ColumnOf(0, 0) == -1 {
			t.Errorf("%s relevant without first query column: %v", alg, l.Y[0])
		}
	}
}

// bruteForceTableMAP enumerates all labelings of a single table subject to
// all four constraints and returns the best score.
func bruteForceTableMAP(m *core.Model, ti int) float64 {
	q := m.NumQ
	nt := m.Views[ti].NumCols
	labels := make([]int, nt)
	best := math.Inf(-1)
	var rec func(c int)
	rec = func(c int) {
		if c == nt {
			l := core.NewLabeling(q, m.Cols())
			// Other tables all-nr; with one table there are none.
			copy(l.Y[ti], labels)
			if s := m.Score(l); s > best {
				best = s
			}
			return
		}
		for lab := 0; lab < core.NumLabels(q); lab++ {
			labels[c] = lab
			rec(c + 1)
		}
	}
	rec(0)
	return best
}

func TestIndependentOptimalVsBruteForce(t *testing.T) {
	cases := []*wtable.Table{
		table("a", []string{"Country", "Currency", "Notes"},
			[][]string{{"France", "Euro", "x"}, {"Japan", "Yen", "y"}}, "currencies by country"),
		table("b", []string{"Name", "Height"},
			[][]string{{"Denali", "6190"}}, "mountains"),
		table("c", nil, [][]string{{"p", "q"}, {"r", "s"}}, ""),
	}
	for _, tb := range cases {
		m := build(t, []string{"country", "currency"}, []*wtable.Table{tb})
		l := SolveIndependent(m)
		got := m.Score(l)
		want := bruteForceTableMAP(m, 0)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("table %s: independent score %f != brute force %f (labels %v)",
				tb.ID, got, want, l.Y[0])
		}
	}
}

func TestAlphaExpansionObjectiveNotWorseThanIndependent(t *testing.T) {
	// α-expansion greedily improves the (relaxed) objective from all-na
	// and falls back to per-table repair; its final objective must not be
	// worse than Independent's here. (Table-centric deliberately trades
	// objective score for message-boosted decisions — §5.3 observes the
	// same — so no such bound holds for it.)
	m := currencyWorld(t)
	base := m.Score(SolveIndependent(m))
	if got := m.Score(Solve(m, AlphaExpansion)); got < base-1e-6 {
		t.Errorf("α-exp objective %f below independent %f", got, base)
	}
}

func TestRepairTableConstraints(t *testing.T) {
	m := currencyWorld(t)
	q := m.NumQ
	// Deliberately broken labeling: mutex violation in table 0.
	l := core.NewLabeling(q, m.Cols())
	l.Y[0][0] = 0
	l.Y[0][1] = 0
	fixed := repairTableConstraints(m, l, &Scratch{})
	if s := m.Score(fixed); math.IsInf(s, -1) {
		t.Fatalf("repair left infeasible labeling: %v", fixed.Y)
	}
}

func TestSolveDispatch(t *testing.T) {
	m := currencyWorld(t)
	for _, alg := range Algorithms {
		if got := Solve(m, alg); len(got.Y) != 3 {
			t.Errorf("%s returned wrong table count", alg)
		}
	}
	if Algorithm(99).String() == "" {
		t.Error("unknown algorithm should still render")
	}
}

func TestEmptyModelAllAlgorithms(t *testing.T) {
	m := build(t, []string{"country", "currency"}, nil)
	for _, alg := range Algorithms {
		l := Solve(m, alg)
		if len(l.Y) != 0 {
			t.Errorf("%s on empty model returned %v", alg, l.Y)
		}
	}
}
