package inference

import (
	"math"

	"wwt/internal/core"
	"wwt/internal/slicex"
)

// bpIterations and bpDamping tune loopy belief propagation. BP on this
// model contends with many dissociative (mutex) edges, which is exactly
// the regime where the paper found it approximate poorly (§5.3).
const (
	bpIterations = 15
	bpDamping    = 0.5
)

// SolveBP runs loopy min-sum belief propagation on the pairwise MRF with
// mutex and all-Irr encoded as pairwise penalties, decodes beliefs
// greedily, and repairs residual constraint violations per table.
func SolveBP(m *core.Model) core.Labeling {
	return solveBP(m, &Scratch{})
}

func solveBP(m *core.Model, s *Scratch) core.Labeling {
	p := newPairwiseMRFS(m, true, s)
	L := p.labels
	// msg[2*e]   : message u -> v of edge e
	// msg[2*e+1] : message v -> u of edge e
	// Messages start at zero, so the reused backing is cleared.
	s.emsgB = slicex.GrowClear(s.emsgB, 2*len(p.edges)*L)
	s.emsg = slicex.Grow(s.emsg, 2*len(p.edges))
	msg := s.emsg
	for i := range msg {
		msg[i] = s.emsgB[i*L : (i+1)*L : (i+1)*L]
	}
	s.newMsg = slicex.Grow(s.newMsg, L)
	newMsg := s.newMsg
	s.h = slicex.Grow(s.h, L)
	h := s.h

	for iter := 0; iter < bpIterations; iter++ {
		var maxDelta float64
		for ei, e := range p.edges {
			for dir := 0; dir < 2; dir++ {
				from := e.u
				if dir == 1 {
					from = e.v
				}
				// h(l) = unary[from](l) + incoming messages except along ei.
				copy(h, p.unary[from])
				for _, oe := range p.nbrs[from] {
					if oe == ei {
						continue
					}
					in := incoming(p, msg, oe, from)
					for l := 0; l < L; l++ {
						h[l] += in[l]
					}
				}
				for lt := 0; lt < L; lt++ {
					best := math.Inf(1)
					for lf := 0; lf < L; lf++ {
						var pe float64
						if dir == 0 {
							pe = p.pairEnergy(e, lf, lt)
						} else {
							pe = p.pairEnergy(e, lt, lf)
						}
						if v := h[lf] + pe; v < best {
							best = v
						}
					}
					newMsg[lt] = best
				}
				normalizeMin(newMsg)
				slot := msg[2*ei+dir]
				for l := 0; l < L; l++ {
					next := bpDamping*slot[l] + (1-bpDamping)*newMsg[l]
					if d := math.Abs(next - slot[l]); d > maxDelta {
						maxDelta = d
					}
					slot[l] = next
				}
			}
		}
		if maxDelta < 1e-6 {
			break
		}
	}

	s.y = slicex.Grow(s.y, p.nVars)
	y := s.y
	for u := 0; u < p.nVars; u++ {
		y[u] = 0
		best := math.Inf(1)
		for l := 0; l < L; l++ {
			b := p.unary[u][l]
			for _, ei := range p.nbrs[u] {
				b += incoming(p, msg, ei, u)[l]
			}
			if b < best {
				best = b
				y[u] = l
			}
		}
	}
	return repairTableConstraints(m, p.toLabeling(y), s)
}

// incoming returns the message arriving at variable 'at' along edge ei.
func incoming(p *pairwiseMRF, msg [][]float64, ei, at int) []float64 {
	if p.edges[ei].v == at {
		return msg[2*ei] // u -> v
	}
	return msg[2*ei+1] // v -> u
}

func normalizeMin(xs []float64) {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	if math.IsInf(m, 1) {
		return
	}
	for i := range xs {
		xs[i] -= m
	}
}
