// Package extract turns parsed HTML documents into wtable.Table values. It
// implements the paper's offline pipeline (§2.1): harvesting the contents of
// <table> tags, filtering out layout and artifact tables, classifying title
// and header rows with the formatting/layout/content heuristic of §2.1.1,
// and attaching scored context snippets from the surrounding DOM per §2.1.2.
package extract

import (
	"fmt"
	"strings"

	"wwt/internal/htmlx"
	"wwt/internal/wtable"
)

// Options tunes the extractor. The zero value is usable; NewOptions returns
// the defaults used in the paper-scale experiments.
type Options struct {
	// MinRows and MinCols gate the data-table filter.
	MinRows int
	MinCols int
	// MaxCellChars rejects tables with very long cells (layout artifacts).
	MaxCellChars int
	// MaxContextSnippets caps how many context snippets are kept per table.
	MaxContextSnippets int
}

// NewOptions returns the default extraction options.
func NewOptions() Options {
	return Options{MinRows: 2, MinCols: 1, MaxCellChars: 300, MaxContextSnippets: 12}
}

// Page extracts every data table from the HTML source of one page.
// url is used to mint table IDs ("url#k"). Tables that fail the data-table
// filter are dropped; the returned slice may be empty. Extraction never
// fails on malformed HTML.
func Page(url, src string, opts Options) []*wtable.Table {
	doc := htmlx.Parse(src)
	return Document(url, doc, opts)
}

// Document extracts data tables from an already-parsed DOM.
func Document(url string, doc *htmlx.Node, opts Options) []*wtable.Table {
	pageTitle := ""
	if t := doc.FindFirst("title"); t != nil {
		pageTitle = t.InnerText()
	}
	var out []*wtable.Table
	for i, tnode := range doc.Find("table") {
		raw := rawRows(tnode)
		if !isDataTable(raw, tnode, opts) {
			continue
		}
		tb := &wtable.Table{
			ID:        fmt.Sprintf("%s#%d", url, i),
			URL:       url,
			PageTitle: pageTitle,
		}
		classifyRows(raw, tb)
		if len(tb.BodyRows) == 0 {
			continue
		}
		tb.Context = contextSnippets(doc, tnode, opts.MaxContextSnippets)
		if cap := tnode.FindFirst("caption"); cap != nil {
			tb.TitleRows = append([]wtable.Row{{Cells: []wtable.Cell{{Text: cap.InnerText(), Bold: true}}}}, tb.TitleRows...)
		}
		out = append(out, tb)
	}
	return out
}

// rawRows materializes the rows of a table element, skipping rows belonging
// to nested tables, and capturing per-cell formatting markers.
func rawRows(tnode *htmlx.Node) []wtable.Row {
	var rows []wtable.Row
	for _, tr := range tnode.Find("tr") {
		if nestedIn(tr, tnode) {
			continue
		}
		var row wtable.Row
		for _, cellNode := range cellsOf(tr) {
			row.Cells = append(row.Cells, makeCell(cellNode))
		}
		if len(row.Cells) > 0 {
			rows = append(rows, row)
		}
	}
	return rows
}

// nestedIn reports whether n sits inside a table nested below root.
func nestedIn(n *htmlx.Node, root *htmlx.Node) bool {
	for cur := n.Parent; cur != nil && cur != root; cur = cur.Parent {
		if cur.Type == htmlx.ElementNode && cur.Tag == "table" {
			return true
		}
	}
	return false
}

func cellsOf(tr *htmlx.Node) []*htmlx.Node {
	var cells []*htmlx.Node
	for _, c := range tr.Children {
		if c.Type == htmlx.ElementNode && (c.Tag == "td" || c.Tag == "th") {
			cells = append(cells, c)
		}
	}
	return cells
}

func makeCell(n *htmlx.Node) wtable.Cell {
	cell := wtable.Cell{
		Text:     n.InnerText(),
		IsTH:     n.Tag == "th",
		BGColor:  styleColor(n),
		CSSClass: n.Attr("class"),
	}
	n.Walk(func(d *htmlx.Node) {
		if d.Type != htmlx.ElementNode {
			return
		}
		switch d.Tag {
		case "b", "strong":
			cell.Bold = true
		case "i", "em":
			cell.Italic = true
		case "u":
			cell.Underline = true
		}
	})
	return cell
}

func styleColor(n *htmlx.Node) string {
	if bg := n.Attr("bgcolor"); bg != "" {
		return bg
	}
	style := n.Attr("style")
	if idx := strings.Index(style, "background"); idx >= 0 {
		rest := style[idx:]
		if colon := strings.IndexByte(rest, ':'); colon >= 0 {
			val := rest[colon+1:]
			if semi := strings.IndexByte(val, ';'); semi >= 0 {
				val = val[:semi]
			}
			return strings.TrimSpace(val)
		}
	}
	return ""
}

// isDataTable implements the relational-information filter of §2.1: the
// table tag is frequently used for layout, forms, calendars and lists; only
// about 10% of table tags carry data. The heuristics here mirror those
// signals: enough rows, a dominant column count >= MinCols, mostly short
// cells, and no embedded form controls.
func isDataTable(rows []wtable.Row, tnode *htmlx.Node, opts Options) bool {
	if len(rows) < opts.MinRows {
		return false
	}
	// Forms and widgets are not data.
	if tnode.FindFirst("input") != nil || tnode.FindFirst("select") != nil ||
		tnode.FindFirst("textarea") != nil || tnode.FindFirst("button") != nil {
		return false
	}
	// Dominant column count: at least 60% of rows agree, and it meets the
	// minimum width.
	counts := map[int]int{}
	for _, r := range rows {
		counts[len(r.Cells)]++
	}
	bestCols, bestN := 0, 0
	for c, n := range counts {
		if n > bestN || (n == bestN && c > bestCols) {
			bestCols, bestN = c, n
		}
	}
	if bestCols < opts.MinCols {
		return false
	}
	if bestN*10 < len(rows)*6 {
		return false
	}
	// Layout tables tend to hold one giant cell or very long prose cells.
	long, cells := 0, 0
	for _, r := range rows {
		for _, c := range r.Cells {
			cells++
			if len(c.Text) > opts.MaxCellChars {
				long++
			}
		}
	}
	if cells == 0 || long*4 >= cells {
		return false
	}
	// Calendars: >80% of cells are bare day numbers 1..31 on a wide grid.
	if bestCols >= 5 {
		days := 0
		for _, r := range rows {
			for _, c := range r.Cells {
				if isDayNumber(strings.TrimSpace(c.Text)) {
					days++
				}
			}
		}
		if days*10 >= cells*8 {
			return false
		}
	}
	return true
}

func isDayNumber(s string) bool {
	if len(s) == 0 || len(s) > 2 {
		return false
	}
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
		n = n*10 + int(s[i]-'0')
	}
	return n >= 1 && n <= 31
}
