package extract

import (
	"fmt"
	"path/filepath"
	"testing"

	"wwt/internal/index"
)

// FuzzExtractHTML drives the whole ingest front half with hostile markup:
// extraction must never panic, every extracted table must satisfy the
// invariants the index layer relies on (non-empty unique IDs, at least
// one body row), and the batch must round-trip through SegmentWriter —
// freeze to a flat segment, reopen, same doc count and IDs, table store
// intact. This is exactly the path POST /v1/ingest runs on untrusted
// input.
func FuzzExtractHTML(f *testing.F) {
	f.Add("<html><body><table><tr><th>Country</th><th>Currency</th></tr>" +
		"<tr><td>France</td><td>Euro</td></tr><tr><td>Japan</td><td>Yen</td></tr></table></body></html>")
	f.Add("<table><tr><td>a<td>b<tr><td>c<td>d</table>")
	f.Add("<table><tr><td>a</td></tr><table><tr><td>nested</td><td>x</td></tr><tr><td>y</td><td>z</td></table></table>")
	f.Add("<!DOCTYPE html><title>t</title><table border=1><thead><tr><th>H</thead><tbody><tr><td>1<tr><td>2</tbody></table>")
	f.Add("<table><tr><td colspan='2' style='background:#fff'>x</td><td>&amp;&lt;&gt;</td></tr><tr><td><b>bold</b></td><td><i>i</i></td></tr></table>")
	f.Add("<table><tr></tr></table><table><tr><td></td></tr></table>")
	f.Add("<table><tr><td>\x00\xff</td><td>日本</td></tr><tr><td>β</td><td>γ</td></tr></table>")
	f.Add("<table")
	f.Add("</table><td>stray</td>")

	f.Fuzz(func(t *testing.T, src string) {
		tables := Page("http://fuzz.example/p", src, NewOptions())
		if len(tables) == 0 {
			return
		}
		seen := make(map[string]bool, len(tables))
		for _, tb := range tables {
			if tb.ID == "" {
				t.Fatal("extracted table without ID")
			}
			if seen[tb.ID] {
				t.Fatalf("duplicate table ID %q", tb.ID)
			}
			seen[tb.ID] = true
			if len(tb.BodyRows) == 0 {
				t.Fatalf("table %q extracted without body rows", tb.ID)
			}
		}

		w := index.NewSegmentWriter()
		for _, tb := range tables {
			if err := w.Add(tb); err != nil {
				t.Fatalf("SegmentWriter.Add: %v", err)
			}
		}
		dir := t.TempDir()
		if err := w.Flush(dir, index.WriteShardedOptions{}); err != nil {
			t.Fatalf("SegmentWriter.Flush: %v", err)
		}
		ms, err := index.OpenMulti([]string{dir})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer ms.Close()
		if ms.Len() != len(tables) {
			t.Fatalf("reopened segment holds %d docs, want %d", ms.Len(), len(tables))
		}
		for i, tb := range tables {
			if id := ms.IDOf(int32(i)); id != tb.ID {
				t.Fatalf("doc %d reopened as %q, want %q", i, id, tb.ID)
			}
		}
		st, err := index.LoadStore(filepath.Join(dir, index.StoreFileName))
		if err != nil {
			t.Fatalf("store reopen: %v", err)
		}
		if st.Len() != len(tables) {
			t.Fatalf("store holds %d tables, want %d", st.Len(), len(tables))
		}
		for _, tb := range tables {
			got, ok := st.Get(tb.ID)
			if !ok || got.ID != tb.ID {
				t.Fatalf("table %q lost in store round trip", tb.ID)
			}
			if fmt.Sprint(got.BodyRows) != fmt.Sprint(tb.BodyRows) {
				t.Fatalf("table %q body rows mutated in round trip", tb.ID)
			}
		}
	})
}
