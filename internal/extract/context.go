package extract

import (
	"sort"
	"strings"

	"wwt/internal/htmlx"
	"wwt/internal/wtable"
)

// contextSnippets implements §2.1.2: the context of a table T is every text
// node x that is a sibling of a node on the path from T to the document
// root. Each snippet is scored from (1) the edge distance in the DOM
// between x and T, with left siblings (text before the table) weighted
// above right siblings, and (2) the relative frequency in the document of
// the formatting tags wrapping x — rare emphasis (an h2 on a page full of
// plain text) is a stronger signal than ubiquitous formatting.
func contextSnippets(doc *htmlx.Node, tnode *htmlx.Node, maxSnippets int) []wtable.Snippet {
	tagFreq := formatTagFrequency(doc)
	path := tnode.PathToRoot()
	onPath := make(map[*htmlx.Node]bool, len(path))
	for _, n := range path {
		onPath[n] = true
	}

	var snips []wtable.Snippet
	// Walk up the path; at each ancestor, examine the siblings of the path
	// member below it.
	for depth := 0; depth < len(path)-1; depth++ {
		child := path[depth]
		parent := path[depth+1]
		idx := parent.ChildIndex(child)
		if idx < 0 {
			continue
		}
		for sibIdx, sib := range parent.Children {
			if sib == child || onPath[sib] {
				continue
			}
			txt, fmtScore := siblingText(sib, tagFreq)
			if txt == "" {
				continue
			}
			dist := float64(depth + abs(sibIdx-idx))
			side := 1.0
			if sibIdx > idx {
				side = 0.8 // text after the table is a weaker descriptor
			}
			score := side * fmtScore / (1 + dist)
			snips = append(snips, wtable.Snippet{Text: txt, Score: score})
		}
	}
	// The page title is always context, with a strong prior.
	if t := doc.FindFirst("title"); t != nil {
		if txt := t.InnerText(); txt != "" {
			snips = append(snips, wtable.Snippet{Text: txt, Score: 1.0})
		}
	}
	sort.SliceStable(snips, func(i, j int) bool { return snips[i].Score > snips[j].Score })
	if len(snips) > maxSnippets {
		snips = snips[:maxSnippets]
	}
	return snips
}

// siblingText extracts the visible text of a sibling subtree (bounded) and
// the formatting boost of the strongest format tag it contains.
func siblingText(n *htmlx.Node, tagFreq map[string]int) (string, float64) {
	if n.Type == htmlx.TextNode {
		return clip(strings.TrimSpace(n.Text), 240), 0.5
	}
	if n.Type != htmlx.ElementNode {
		return "", 0
	}
	switch n.Tag {
	case "script", "style", "table", "form", "nav", "footer":
		return "", 0
	}
	txt := clip(n.InnerText(), 240)
	if txt == "" {
		return "", 0
	}
	best := 0.5
	n.Walk(func(d *htmlx.Node) {
		if d.Type != htmlx.ElementNode {
			return
		}
		if w, ok := formatTagWeight(d.Tag, tagFreq); ok && w > best {
			best = w
		}
	})
	if w, ok := formatTagWeight(n.Tag, tagFreq); ok && w > best {
		best = w
	}
	return txt, best
}

// formatTags are the emphasis tags whose document-relative frequency feeds
// the snippet score.
var formatTags = map[string]bool{
	"h1": true, "h2": true, "h3": true, "h4": true, "h5": true, "h6": true,
	"b": true, "strong": true, "i": true, "em": true, "u": true,
	"caption": true, "cite": true,
}

func formatTagFrequency(doc *htmlx.Node) map[string]int {
	freq := make(map[string]int)
	total := 0
	doc.Walk(func(n *htmlx.Node) {
		if n.Type == htmlx.ElementNode {
			total++
			if formatTags[n.Tag] {
				freq[n.Tag]++
			}
		}
	})
	freq["__total__"] = total
	return freq
}

// formatTagWeight maps a format tag to a score in (0.5, 1]: rarer tags in
// this document score higher.
func formatTagWeight(tag string, freq map[string]int) (float64, bool) {
	if !formatTags[tag] {
		return 0, false
	}
	n := freq[tag]
	if n == 0 {
		n = 1
	}
	// 1/(1+log-ish falloff): 1 occurrence -> 1.0, 10 -> ~0.67, 100 -> ~0.5.
	w := 0.5 + 0.5/float64(1+(n-1)/4)
	return w, true
}

func clip(s string, n int) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) <= n {
		return s
	}
	cut := s[:n]
	if sp := strings.LastIndexByte(cut, ' '); sp > n/2 {
		cut = cut[:sp]
	}
	return cut
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
