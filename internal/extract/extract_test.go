package extract

import (
	"strings"
	"testing"

	"wwt/internal/wtable"
)

const explorersPage = `
<html><head><title>List of explorers - Wikipedia, the free encyclopedia</title></head>
<body>
<h1>List of explorers</h1>
<p>This article lists the explorations in history.</p>
<table>
<tr><th>Name</th><th>Nationality</th><th>Main areas explored</th></tr>
<tr><td>Abel Tasman</td><td>Dutch</td><td>Oceania</td></tr>
<tr><td>Vasco da Gama</td><td>Portuguese</td><td>Sea route to India</td></tr>
<tr><td>Alexander Mackenzie</td><td>British</td><td>Canada</td></tr>
</table>
<p>See also: Explorations (TV)</p>
</body></html>`

func TestExtractBasicTable(t *testing.T) {
	tables := Page("http://wiki/explorers", explorersPage, NewOptions())
	if len(tables) != 1 {
		t.Fatalf("want 1 table, got %d", len(tables))
	}
	tb := tables[0]
	if tb.NumCols() != 3 {
		t.Errorf("cols = %d", tb.NumCols())
	}
	if len(tb.HeaderRows) != 1 {
		t.Fatalf("header rows = %d, want 1", len(tb.HeaderRows))
	}
	if tb.Header(0, 1) != "Nationality" {
		t.Errorf("header(0,1) = %q", tb.Header(0, 1))
	}
	if len(tb.BodyRows) != 3 {
		t.Errorf("body rows = %d", len(tb.BodyRows))
	}
	if tb.Body(1, 0) != "Vasco da Gama" {
		t.Errorf("body(1,0) = %q", tb.Body(1, 0))
	}
	if tb.PageTitle == "" || !strings.Contains(tb.PageTitle, "explorers") {
		t.Errorf("page title = %q", tb.PageTitle)
	}
}

func TestExtractContextSnippets(t *testing.T) {
	tables := Page("u", explorersPage, NewOptions())
	if len(tables) != 1 {
		t.Fatal("extraction failed")
	}
	ctx := tables[0].ContextText()
	if !strings.Contains(ctx, "explorations in history") {
		t.Errorf("context missing intro paragraph: %q", ctx)
	}
	if !strings.Contains(ctx, "List of explorers") {
		t.Errorf("context missing heading/title: %q", ctx)
	}
	// Snippets must be scored and sorted descending.
	for i := 1; i < len(tables[0].Context); i++ {
		if tables[0].Context[i].Score > tables[0].Context[i-1].Score {
			t.Errorf("snippets not sorted by score")
		}
	}
}

func TestHeaderDetectionWithoutTH(t *testing.T) {
	// 80% of web tables do not use <th>; bold-vs-plain must still work.
	page := `<html><body><table>
<tr><td><b>Country</b></td><td><b>Currency</b></td></tr>
<tr><td>France</td><td>Euro</td></tr>
<tr><td>Japan</td><td>Yen</td></tr>
</table></body></html>`
	tables := Page("u", page, NewOptions())
	if len(tables) != 1 {
		t.Fatal("no table")
	}
	if len(tables[0].HeaderRows) != 1 {
		t.Fatalf("header rows = %d, want 1", len(tables[0].HeaderRows))
	}
	if tables[0].Header(0, 0) != "Country" {
		t.Errorf("header = %q", tables[0].Header(0, 0))
	}
}

func TestHeaderlessTable(t *testing.T) {
	// 18% of tables have no header: uniform formatting must yield none.
	page := `<html><body><table>
<tr><td>France</td><td>Euro</td></tr>
<tr><td>Japan</td><td>Yen</td></tr>
<tr><td>India</td><td>Rupee</td></tr>
</table></body></html>`
	tables := Page("u", page, NewOptions())
	if len(tables) != 1 {
		t.Fatal("no table")
	}
	if len(tables[0].HeaderRows) != 0 {
		t.Errorf("header rows = %d, want 0 (got %v)", len(tables[0].HeaderRows), tables[0].HeaderRows[0].Texts())
	}
	if len(tables[0].BodyRows) != 3 {
		t.Errorf("body rows = %d, want 3", len(tables[0].BodyRows))
	}
}

func TestMultiRowHeader(t *testing.T) {
	page := `<html><body><table>
<tr><th>Name</th><th>Nationality</th><th>Main areas</th></tr>
<tr><th></th><th></th><th>explored</th></tr>
<tr><td>Abel Tasman</td><td>Dutch</td><td>Oceania</td></tr>
<tr><td>Vasco da Gama</td><td>Portuguese</td><td>Sea route</td></tr>
</table></body></html>`
	tables := Page("u", page, NewOptions())
	if len(tables) != 1 {
		t.Fatal("no table")
	}
	if got := len(tables[0].HeaderRows); got != 2 {
		t.Fatalf("header rows = %d, want 2", got)
	}
	ht := tables[0].HeaderText(2)
	if len(ht) != 2 || ht[1] != "explored" {
		t.Errorf("split header = %v", ht)
	}
}

func TestTitleRowDetection(t *testing.T) {
	page := `<html><body><table>
<tr><td><b>Forest reserves</b></td><td></td><td></td></tr>
<tr><th>ID</th><th>Name</th><th>Area</th></tr>
<tr><td>7</td><td>Shakespeare Hills</td><td>2236</td></tr>
<tr><td>9</td><td>Plains Creek</td><td>880</td></tr>
</table></body></html>`
	tables := Page("u", page, NewOptions())
	if len(tables) != 1 {
		t.Fatal("no table")
	}
	tb := tables[0]
	if len(tb.TitleRows) != 1 {
		t.Fatalf("title rows = %d, want 1 (headers=%d)", len(tb.TitleRows), len(tb.HeaderRows))
	}
	if !strings.Contains(tb.TitleText(), "Forest reserves") {
		t.Errorf("title = %q", tb.TitleText())
	}
	if len(tb.HeaderRows) != 1 || tb.Header(0, 0) != "ID" {
		t.Errorf("header after title wrong: %d rows", len(tb.HeaderRows))
	}
}

func TestLayoutTableRejected(t *testing.T) {
	long := strings.Repeat("lorem ipsum dolor sit amet ", 30)
	page := `<html><body><table><tr><td>` + long + `</td></tr><tr><td>` + long + `</td></tr></table></body></html>`
	if tables := Page("u", page, NewOptions()); len(tables) != 0 {
		t.Errorf("layout table accepted: %d", len(tables))
	}
}

func TestFormTableRejected(t *testing.T) {
	page := `<html><body><table>
<tr><td>Name</td><td><input type="text" name="n"></td></tr>
<tr><td>Email</td><td><input type="text" name="e"></td></tr>
</table></body></html>`
	if tables := Page("u", page, NewOptions()); len(tables) != 0 {
		t.Error("form table accepted")
	}
}

func TestCalendarRejected(t *testing.T) {
	var b strings.Builder
	b.WriteString(`<html><body><table>`)
	day := 1
	for r := 0; r < 5; r++ {
		b.WriteString("<tr>")
		for c := 0; c < 7; c++ {
			if day <= 31 {
				b.WriteString("<td>")
				b.WriteString(strings.TrimSpace(string(rune('0'+day/10)) + string(rune('0'+day%10))))
				b.WriteString("</td>")
				day++
			} else {
				b.WriteString("<td></td>")
			}
		}
		b.WriteString("</tr>")
	}
	b.WriteString(`</table></body></html>`)
	if tables := Page("u", b.String(), NewOptions()); len(tables) != 0 {
		t.Error("calendar accepted as data table")
	}
}

func TestSmallTableRejected(t *testing.T) {
	page := `<html><body><table><tr><td>only</td></tr></table></body></html>`
	if tables := Page("u", page, NewOptions()); len(tables) != 0 {
		t.Error("single-row table accepted")
	}
}

func TestNestedTables(t *testing.T) {
	page := `<html><body><table>
<tr><th>A</th><th>B</th></tr>
<tr><td><table><tr><td>i1</td><td>i2</td></tr><tr><td>i3</td><td>i4</td></tr></table></td><td>outer</td></tr>
<tr><td>x</td><td>y</td></tr>
</table></body></html>`
	tables := Page("u", page, NewOptions())
	// Outer and inner both extracted (both structurally data-ish); the
	// inner rows must not leak into the outer table.
	for _, tb := range tables {
		for _, r := range tb.BodyRows {
			for _, c := range r.Cells {
				if strings.Contains(c.Text, "i1 i2") && tb.NumCols() == 2 && len(tb.BodyRows) > 2 {
					t.Error("nested rows leaked into outer table")
				}
			}
		}
	}
	if len(tables) < 1 {
		t.Fatal("no tables")
	}
}

func TestCaptionBecomesTitle(t *testing.T) {
	page := `<html><body><table><caption>Forest Reserves 2020</caption>
<tr><th>Name</th><th>Area</th></tr>
<tr><td>Plains Creek</td><td>880</td></tr>
<tr><td>Welcome Swamp</td><td>168</td></tr>
</table></body></html>`
	tables := Page("u", page, NewOptions())
	if len(tables) != 1 {
		t.Fatal("no table")
	}
	if !strings.Contains(tables[0].TitleText(), "Forest Reserves 2020") {
		t.Errorf("caption not promoted to title: %q", tables[0].TitleText())
	}
}

func TestTableIDsUnique(t *testing.T) {
	page := `<html><body>
<table><tr><th>A</th><th>B</th></tr><tr><td>1</td><td>2</td></tr></table>
<table><tr><th>C</th><th>D</th></tr><tr><td>3</td><td>4</td></tr></table>
</body></html>`
	tables := Page("http://x", page, NewOptions())
	if len(tables) != 2 {
		t.Fatalf("want 2 tables, got %d", len(tables))
	}
	if tables[0].ID == tables[1].ID {
		t.Error("duplicate table IDs")
	}
	for _, tb := range tables {
		if err := tb.Validate(); err != nil {
			t.Errorf("invalid extracted table: %v", err)
		}
	}
}

func TestRaggedRowsTolerated(t *testing.T) {
	page := `<html><body><table>
<tr><th>A</th><th>B</th><th>C</th></tr>
<tr><td>1</td><td>2</td><td>3</td></tr>
<tr><td>4</td><td>5</td></tr>
<tr><td>6</td><td>7</td><td>8</td></tr>
</table></body></html>`
	tables := Page("u", page, NewOptions())
	if len(tables) != 1 {
		t.Fatal("ragged table rejected")
	}
	if tables[0].NumCols() != 3 {
		t.Errorf("cols = %d", tables[0].NumCols())
	}
	if got := tables[0].Body(1, 2); got != "" {
		t.Errorf("missing cell should read empty, got %q", got)
	}
}

var _ = wtable.Table{} // keep import if assertions change
