package extract

import (
	"strings"

	"wwt/internal/wtable"
)

// classifyRows implements the §2.1.1 heuristic. Rows are assumed to consist
// of zero or more title rows, then zero or more header rows, then body rows.
// Scanning from the top, a row is "different" from most of the rows below it
// when it diverges on formatting (bold/italic/underline/capitalization/
// header tags), layout (background color, CSS classes) or content (textual
// row over numeric body, character counts).
//
// A different row is a *title* when all but the first column is empty (a
// caption-like row; the paper's text has an apparent typo here — its own
// Figure 1 Table 3 title is a single-cell row). Otherwise it is a header.
// Subsequent rows stay headers while they are similar to the first header
// row and different from the rows below; the scan stops at the first
// failure.
func classifyRows(rows []wtable.Row, tb *wtable.Table) {
	i := 0
	// Title rows: leading "different" rows with content only in column 1.
	for i < len(rows) && i < 3 {
		if !rowDifferent(rows[i], rows[i+1:]) {
			break
		}
		if !titleShaped(rows[i]) {
			break
		}
		tb.TitleRows = append(tb.TitleRows, rows[i])
		i++
	}
	// Header rows.
	var firstHeader *wtable.Row
	for i < len(rows) {
		if len(rows[i:]) == 1 {
			break // never classify the last row as header
		}
		if firstHeader == nil {
			if !rowDifferent(rows[i], rows[i+1:]) {
				break
			}
			h := rows[i]
			firstHeader = &h
			tb.HeaderRows = append(tb.HeaderRows, rows[i])
			i++
			continue
		}
		if rowsSimilar(rows[i], *firstHeader) && rowDifferent(rows[i], rows[i+1:]) {
			tb.HeaderRows = append(tb.HeaderRows, rows[i])
			i++
			continue
		}
		break
	}
	tb.BodyRows = rows[i:]
}

// titleShaped reports whether a row looks like a title: at most the first
// cell is non-empty, or it is a single-cell row.
func titleShaped(r wtable.Row) bool {
	if len(r.Cells) == 1 {
		return !r.Cells[0].IsEmpty()
	}
	if r.Cells[0].IsEmpty() {
		return false
	}
	for _, c := range r.Cells[1:] {
		if !c.IsEmpty() {
			return false
		}
	}
	return true
}

// rowDifferent reports whether r differs from the majority of the rows
// below it on at least one of the §2.1.1 signal families.
func rowDifferent(r wtable.Row, below []wtable.Row) bool {
	if len(below) == 0 {
		return false
	}
	diff := 0
	for _, b := range below {
		if rowSignalsDiffer(r, b) {
			diff++
		}
	}
	return diff*2 > len(below)
}

// rowSignalsDiffer compares two rows on formatting, layout and content
// signals.
func rowSignalsDiffer(a, b wtable.Row) bool {
	fa, fb := rowFingerprint(a), rowFingerprint(b)
	if fa.th != fb.th || fa.bold != fb.bold || fa.italic != fb.italic ||
		fa.underline != fb.underline || fa.bg != fb.bg || fa.class != fb.class {
		return true
	}
	if fa.capitalized != fb.capitalized {
		return true
	}
	// Content: textual header over numeric body.
	if fa.numeric != fb.numeric {
		return true
	}
	// Content: large divergence in average cell length.
	la, lb := fa.avgLen, fb.avgLen
	if la > 0 && lb > 0 && (la > 3*lb || lb > 3*la) {
		return true
	}
	return false
}

type rowPrint struct {
	th, bold, italic, underline bool
	bg, class                   string
	capitalized                 bool
	numeric                     bool
	avgLen                      float64
}

func rowFingerprint(r wtable.Row) rowPrint {
	var p rowPrint
	nonEmpty, caps, numeric, chars := 0, 0, 0, 0
	for _, c := range r.Cells {
		if c.IsTH {
			p.th = true
		}
		if c.Bold {
			p.bold = true
		}
		if c.Italic {
			p.italic = true
		}
		if c.Underline {
			p.underline = true
		}
		if c.BGColor != "" && p.bg == "" {
			p.bg = c.BGColor
		}
		if c.CSSClass != "" && p.class == "" {
			p.class = c.CSSClass
		}
		t := strings.TrimSpace(c.Text)
		if t == "" {
			continue
		}
		nonEmpty++
		chars += len(t)
		if isCapitalized(t) {
			caps++
		}
		if isNumericText(t) {
			numeric++
		}
	}
	if nonEmpty > 0 {
		p.capitalized = caps*2 > nonEmpty
		p.numeric = numeric*2 > nonEmpty
		p.avgLen = float64(chars) / float64(nonEmpty)
	}
	return p
}

// rowsSimilar reports whether two rows share the formatting profile —
// used to chain additional header rows onto the first one.
func rowsSimilar(a, b wtable.Row) bool {
	fa, fb := rowFingerprint(a), rowFingerprint(b)
	return fa.th == fb.th && fa.bold == fb.bold && fa.bg == fb.bg &&
		fa.class == fb.class && fa.numeric == fb.numeric
}

func isCapitalized(s string) bool {
	return len(s) > 0 && s[0] >= 'A' && s[0] <= 'Z'
}

// isNumericText reports whether s is predominantly numeric (numbers,
// currency, percentages, dates).
func isNumericText(s string) bool {
	digits, letters := 0, 0
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] >= '0' && s[i] <= '9':
			digits++
		case (s[i] >= 'a' && s[i] <= 'z') || (s[i] >= 'A' && s[i] <= 'Z'):
			letters++
		}
	}
	return digits > 0 && digits >= letters
}
