package analysis

import (
	"go/ast"
	"go/types"
)

// ReleaseResult flags Engine.Answer/AnswerCtx (and LiveEngine.Answer)
// call sites whose *wwt.Result never reaches Release. An unreleased
// Result is not a leak — the GC reclaims the arena — but it silently
// defeats the QueryScratch pool: every such call site costs a fresh
// arena allocation per query, the regression class the PR 3/PR 4 pooling
// work exists to prevent.
//
// The analysis is intra-procedural and deliberately forgiving, in the
// lostcancel style: a call site is flagged only when the Result is
// discarded outright (expression statement or assigned to _) or bound to
// a local that is never Released and never escapes the function (not
// returned, stored, sent, or passed along — an escaping Result is some
// other code's responsibility). Call sites that retain the arena on
// purpose — equivalence tests pinning pooled vs fresh, eval's heap-side
// retention — carry a //wwt:retained comment on the call line, which the
// analyzer respects.
var ReleaseResult = &Analyzer{
	Name: "releaseresult",
	Doc: "flag Answer results that never reach Release\n\n" +
		"Engine.Answer/AnswerCtx hand the pooled per-query arena to the " +
		"returned Result; only Result.Release re-pools it. A Result that is " +
		"discarded, or held in a local that neither Releases nor escapes, " +
		"silently falls off the arena pool. Deliberate retention is marked " +
		"//wwt:retained on the call line.",
	Run: runReleaseResult,
}

func runReleaseResult(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				pass.checkReleaseIn(body)
			}
			return true
		})
	}
	return nil
}

// checkReleaseIn examines every Answer-family call directly inside body
// (function literals are their own scope and handled separately).
func (pass *Pass) checkReleaseIn(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n.Pos() != body.Pos() {
			return false
		}
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && pass.isAnswerCall(call) {
				if !pass.HasDirective(call.Pos(), "retained") {
					pass.Reportf(call.Pos(),
						"result of %s is discarded without Release; the pooled arena is lost to the pool (use res.Release, or mark //wwt:retained)",
						answerCallName(call))
				}
				return false
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok || !pass.isAnswerCall(call) || len(n.Lhs) == 0 {
				return true
			}
			if pass.HasDirective(call.Pos(), "retained") {
				return true
			}
			resIdent, isIdent := ast.Unparen(n.Lhs[0]).(*ast.Ident)
			if !isIdent {
				// Stored straight into a field or element: escapes.
				return true
			}
			if resIdent.Name == "_" {
				pass.Reportf(call.Pos(),
					"result of %s is assigned to _ without Release; the pooled arena is lost to the pool (use res.Release, or mark //wwt:retained)",
					answerCallName(call))
				return true
			}
			obj := pass.TypesInfo.ObjectOf(resIdent)
			if obj == nil {
				return true
			}
			if !pass.resultReachesRelease(body, obj) {
				pass.Reportf(call.Pos(),
					"result of %s never reaches Release on any path in this function; the pooled arena is lost to the pool (defer %s.Release(), or mark //wwt:retained)",
					answerCallName(call), resIdent.Name)
			}
		}
		return true
	})
}

// resultReachesRelease reports whether obj (a *wwt.Result local) is
// Released somewhere in body, or escapes the function in a way that
// hands responsibility elsewhere: returned, assigned onward, stored in a
// composite, passed as an argument, or sent on a channel.
func (pass *Pass) resultReachesRelease(body *ast.BlockStmt, obj types.Object) bool {
	settled := false
	ast.Inspect(body, func(n ast.Node) bool {
		if settled {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.ObjectOf(id) != obj {
			return true
		}
		switch use := pass.identContext(body, id); use {
		case useRelease, useEscape:
			settled = true
		}
		return true
	})
	return settled
}

type useKind int

const (
	useRead useKind = iota
	useRelease
	useEscape
)

// identContext classifies one use of a Result identifier by its
// innermost enclosing expression/statement.
func (pass *Pass) identContext(body *ast.BlockStmt, id *ast.Ident) useKind {
	path := enclosingPath(body, id)
	// path[len-1] == id; walk outward.
	for i := len(path) - 2; i >= 0; i-- {
		switch parent := path[i].(type) {
		case *ast.SelectorExpr:
			if parent.X == path[i+1] && parent.Sel.Name == "Release" {
				return useRelease
			}
			// res.Model, res.Rows(): a read; keep walking? No — any
			// selector other than Release is a read of the result, and
			// enclosing contexts (call args, returns) apply to the
			// selected value, not the Result pointer itself.
			return useRead
		case *ast.CallExpr:
			for _, arg := range parent.Args {
				if arg == path[i+1] {
					return useEscape // passed along: someone else's Release
				}
			}
			return useRead
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt, *ast.KeyValueExpr:
			return useEscape
		case *ast.AssignStmt:
			for _, rhs := range parent.Rhs {
				if rhs == path[i+1] {
					return useEscape // re-assigned onward
				}
			}
			return useRead
		case *ast.UnaryExpr, *ast.ParenExpr, *ast.IndexExpr, *ast.StarExpr:
			continue // unwrap and keep classifying
		default:
			return useRead
		}
	}
	return useRead
}

// enclosingPath returns the node path from body down to target
// (inclusive), or nil.
func enclosingPath(body *ast.BlockStmt, target ast.Node) []ast.Node {
	var path, found []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if n == nil {
			path = path[:len(path)-1]
			return true
		}
		path = append(path, n)
		if n == target {
			found = append([]ast.Node(nil), path...)
			return false
		}
		return true
	})
	return found
}

// isAnswerCall reports whether call invokes a method named Answer or
// AnswerCtx whose first result is *wwt.Result.
func (pass *Pass) isAnswerCall(call *ast.CallExpr) bool {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || (fn.Name() != "Answer" && fn.Name() != "AnswerCtx") {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Results().Len() == 0 {
		return false
	}
	return isNamedType(sig.Results().At(0).Type(), "wwt", "Result")
}

// answerCallName renders the callee for diagnostics (Engine.Answer,
// LiveEngine.AnswerCtx, ...).
func answerCallName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X) + "." + sel.Sel.Name
	}
	return types.ExprString(call.Fun)
}
