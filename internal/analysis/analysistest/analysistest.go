// Package analysistest runs invariant analyzers over fixture packages
// and checks their diagnostics against `// want "regexp"` expectations
// embedded in the fixture sources — the offline, stdlib-only stand-in
// for golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under internal/analysis/testdata/src/<name>. Each is a
// real package of the wwt module (go list resolves explicit testdata
// paths even though ./... wildcards prune them), so fixtures may import
// real packages such as wwt or wwt/internal/lru and exercise analyzers
// against the genuine types they match on.
//
// Expectation syntax, on the line the diagnostic is reported at:
//
//	sum += v // want `depends on map iteration order`
//	x := f() // want "first regexp" "second regexp"
//
// Each quoted or backquoted token is a regular expression that must
// match the message of exactly one diagnostic reported on that line;
// diagnostics with no matching want, and wants with no matching
// diagnostic, both fail the test.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"wwt/internal/analysis"
	"wwt/internal/analysis/load"
)

// TestData returns the caller's testdata/src root (resolved relative to
// this source file, so it works regardless of the test's working
// directory).
func TestData() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		panic("analysistest: cannot locate caller")
	}
	// .../internal/analysis/analysistest/analysistest.go -> .../internal/analysis/testdata/src
	return filepath.Join(filepath.Dir(filepath.Dir(file)), "testdata", "src")
}

// Run loads each fixture package (a directory name under srcRoot),
// applies a, and matches diagnostics against the fixture's want
// comments.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	for _, fx := range fixtures {
		dir := filepath.Join(srcRoot, fx)
		pkgs, err := load.Load(load.Options{Dir: dir, Tests: true}, ".")
		if err != nil {
			t.Errorf("%s: loading fixture: %v", fx, err)
			continue
		}
		if len(pkgs) == 0 {
			t.Errorf("%s: fixture matched no packages", fx)
			continue
		}
		for _, pkg := range pkgs {
			for _, terr := range pkg.TypeErrors {
				t.Errorf("%s: fixture does not type-check: %v", fx, terr)
			}
			runOne(t, fx, a, pkg)
		}
	}
}

// want is one expectation: a compiled regexp at a file line.
type want struct {
	file string // base name
	line int
	re   *regexp.Regexp
	text string
	used bool
}

func runOne(t *testing.T, fx string, a *analysis.Analyzer, pkg *load.Package) {
	t.Helper()
	wants, err := collectWants(pkg)
	if err != nil {
		t.Errorf("%s: %v", fx, err)
		return
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Errorf("%s: analyzer %s: %v", fx, a.Name, err)
		return
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		file, line := filepath.Base(pos.Filename), pos.Line
		matched := false
		for _, w := range wants {
			if !w.used && w.file == file && w.line == line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: %s:%d: unexpected diagnostic: %s", fx, file, line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s: %s:%d: no diagnostic matching %q", fx, w.file, w.line, w.text)
		}
	}
}

// collectWants scans every fixture file's comments for want expectations.
func collectWants(pkg *load.Package) ([]*want, error) {
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				res, err := parseWantPatterns(rest)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want comment: %v", filepath.Base(pos.Filename), pos.Line, err)
				}
				for _, pat := range res {
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: want %q: %v", filepath.Base(pos.Filename), pos.Line, pat, err)
					}
					wants = append(wants, &want{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						re:   re,
						text: pat,
					})
				}
			}
		}
	}
	return wants, nil
}

// parseWantPatterns splits `"re1" "re2"` / “ `re` “ into its quoted
// tokens using Go string syntax.
func parseWantPatterns(s string) ([]string, error) {
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte
		switch s[0] {
		case '"', '`':
			quote = s[0]
		default:
			return nil, fmt.Errorf("expected quoted regexp, found %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated %c-quoted regexp", quote)
		}
		tok := s[:end+2]
		pat, err := strconv.Unquote(tok)
		if err != nil {
			return nil, fmt.Errorf("unquoting %s: %v", tok, err)
		}
		pats = append(pats, pat)
		s = strings.TrimSpace(s[end+2:])
	}
	if len(pats) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return pats, nil
}
