package analysis_test

import (
	"testing"

	"wwt/internal/analysis"
	"wwt/internal/analysis/analysistest"
)

func TestLockedCompute(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.LockedCompute, "lockedcompute")
}
