package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// LockedCompute enforces the compute-outside-lock cache protocol: the
// cross-query caches are all internal/lru.Cache wrappers whose Get runs
// the compute callback outside the cache's own lock, so concurrent
// misses don't serialize. That contract is defeated (and a lock-order
// cycle invited) when a consumer calls Get while holding its own
// sync.Mutex/RWMutex — the "compute" then happens inside the caller's
// critical section. The analyzer tracks Lock/RLock..Unlock/RUnlock
// windows within each function body and flags Cache.Get calls evaluated
// inside one.
//
// The tracking is lexical and intra-procedural: a deferred Unlock keeps
// the mutex held to the end of the function, branches share one held
// set, and calls through interfaces (sync.Locker) are not tracked.
var LockedCompute = &Analyzer{
	Name: "lockedcompute",
	Doc: "flag lru.Cache.Get calls made while a mutex is held\n\n" +
		"internal/lru.Cache.Get runs its compute callback outside the cache " +
		"lock by contract; calling Get inside a sync.Mutex/RWMutex critical " +
		"section moves the compute back under a lock. Release the caller's " +
		"lock before consulting the cache (compute-outside-lock protocol).",
	Run: runLockedCompute,
}

func runLockedCompute(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				w := &lockWalker{pass: pass, held: make(map[string]bool)}
				w.stmts(body.List)
			}
			return true
		})
	}
	return nil
}

// lockWalker scans one function body in statement order, maintaining the
// set of mutexes currently held (keyed by the receiver expression's
// source text).
type lockWalker struct {
	pass *Pass
	held map[string]bool
}

func (w *lockWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if recv, op, ok := w.lockEvent(s.X); ok {
			switch op {
			case "Lock", "RLock":
				w.held[recv] = true
			case "Unlock", "RUnlock":
				delete(w.held, recv)
			}
			return
		}
		w.checkExpr(s.X)
	case *ast.DeferStmt:
		if _, op, ok := w.lockEvent(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			// Deferred unlock: the mutex stays held for the rest of the
			// lexical function body.
			return
		}
		w.checkExpr(s.Call)
	case *ast.GoStmt:
		// Arguments are evaluated now, in the critical section.
		w.checkExpr(s.Call)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e)
		}
		for _, e := range s.Lhs {
			w.checkExpr(e)
		}
	case *ast.DeclStmt:
		w.checkExpr(s.Decl)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e)
		}
	case *ast.IncDecStmt:
		w.checkExpr(s.X)
	case *ast.SendStmt:
		w.checkExpr(s.Chan)
		w.checkExpr(s.Value)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.checkExpr(s.Cond)
		w.stmts(s.Body.List)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond)
		}
		w.stmts(s.Body.List)
		if s.Post != nil {
			w.stmt(s.Post)
		}
	case *ast.RangeStmt:
		w.checkExpr(s.X)
		w.stmts(s.Body.List)
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.checkExpr(e)
				}
				w.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmt(s.Assign)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.stmt(cc.Comm)
				}
				w.stmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

// lockEvent decodes e as a sync.(RW)Mutex Lock/RLock/Unlock/RUnlock call
// and returns the receiver's source text and the operation. Matching is
// by method object, so promoted methods of embedded mutexes count too.
func (w *lockWalker) lockEvent(e ast.Expr) (recv, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, _ := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), fn.Name(), true
	}
	return "", "", false
}

// checkExpr flags lru.Cache.Get calls inside n while any mutex is held.
// Function literals are skipped: their bodies run later, outside this
// critical section, and are analyzed as functions in their own right.
func (w *lockWalker) checkExpr(n ast.Node) {
	if len(w.held) == 0 || n == nil {
		return
	}
	ast.Inspect(n, func(inner ast.Node) bool {
		if _, isLit := inner.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := inner.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(w.pass.TypesInfo, call)
		if fn == nil || fn.Name() != "Get" {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil || !isNamedType(sig.Recv().Type(), "internal/lru", "Cache") {
			return true
		}
		// Name the held mutexes deterministically (mapfloatsum's sibling
		// sin would be reporting a map-order-dependent one).
		mus := make([]string, 0, len(w.held))
		for mu := range w.held {
			mus = append(mus, mu)
		}
		sort.Strings(mus)
		w.pass.Reportf(call.Pos(),
			"lru.Cache.Get called while %s is held; compute runs outside locks by contract — release the lock first (compute-outside-lock protocol)",
			strings.Join(mus, ", "))
		return true
	})
}
