package analysis_test

import (
	"testing"

	"wwt/internal/analysis"
	"wwt/internal/analysis/analysistest"
)

func TestReleaseResult(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.ReleaseResult, "releaseresult")
}
