package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant checker: a name (the diagnostic
// prefix and the wwt-vet sub-flag), a doc string, and a Run function
// applied to one type-checked package at a time. The shape deliberately
// mirrors golang.org/x/tools/go/analysis so the checkers can migrate to
// the upstream framework wholesale if the dependency ever lands; until
// then the stdlib-only Pass below is the entire contract.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be
	// a valid Go identifier.
	Name string

	// Doc is the one-paragraph user documentation: first line is a
	// summary, the rest explains the invariant and the escape hatch, if
	// any.
	Doc string

	// Run applies the analyzer to one package. Diagnostics are delivered
	// via pass.Report / pass.Reportf; the error return is for analysis
	// machinery failures only, not findings.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer. A Pass is
// single-use and not safe for concurrent mutation; the loader hands each
// analyzer its own.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The loader and test harness
	// install their own collectors here.
	Report func(Diagnostic)

	directives map[*ast.File]map[int][]string
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// HasDirective reports whether a `//wwt:name` comment suppressing or
// annotating the construct at pos is present — either trailing on the
// same source line or alone on the line immediately above. Directive
// comments may carry trailing prose after the name:
//
//	res, _ := eng.Answer(q) //wwt:retained — stashed on the heap for eval
func (p *Pass) HasDirective(pos token.Pos, name string) bool {
	if p.directives == nil {
		p.directives = make(map[*ast.File]map[int][]string)
		for _, f := range p.Files {
			p.directives[f] = fileDirectives(p.Fset, f)
		}
	}
	file := p.fileFor(pos)
	if file == nil {
		return false
	}
	line := p.Fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, d := range p.directives[file][l] {
			if d == name {
				return true
			}
		}
	}
	return false
}

func (p *Pass) fileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// fileDirectives indexes every `//wwt:name` comment in f by line number.
func fileDirectives(fset *token.FileSet, f *ast.File) map[int][]string {
	m := make(map[int][]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//wwt:")
			if !ok {
				continue
			}
			name := text
			if i := strings.IndexFunc(text, func(r rune) bool {
				return r == ' ' || r == '\t'
			}); i >= 0 {
				name = text[:i]
			}
			if name == "" {
				continue
			}
			line := fset.Position(c.Pos()).Line
			m[line] = append(m[line], name)
		}
	}
	return m
}

// InTestFile reports whether pos falls in a _test.go file. Several
// analyzers exempt test code (reflection sorts in benchmarks, deliberate
// retention in equivalence tests).
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// PathHasSuffix reports whether package path has the given slash-aligned
// suffix: "wwt/internal/index" matches "internal/index" but
// "wwt/internal/reindex" does not. Analyzers use it so both the real
// tree and the testdata fixture packages (whose import paths carry the
// testdata/src/ prefix) select the same way.
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// named returns the named type at the core of t, unwrapping pointers and
// aliases, or nil.
func named(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamedType reports whether t (possibly behind a pointer or alias, and
// generic instantiations included) is the named type pkgSuffix.name.
func isNamedType(t types.Type, pkgSuffix, name string) bool {
	n := named(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return PathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// calleeFunc returns the function or method object called by call, or
// nil for calls through function-typed variables, conversions, and
// builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	case *ast.IndexListExpr:
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// rootIdent walks to the base identifier of an lvalue-ish expression:
// x, x.f, x[i], (*x).f all root at x. Returns nil when there is no
// simple base (calls, literals).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}
