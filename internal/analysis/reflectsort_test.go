package analysis_test

import (
	"testing"

	"wwt/internal/analysis"
	"wwt/internal/analysis/analysistest"
)

func TestReflectSort(t *testing.T) {
	// The hot fixture's import path suffix-matches internal/index; the
	// cold fixture matches no hot package and must stay silent.
	analysistest.Run(t, analysistest.TestData(), analysis.ReflectSort,
		"reflectsorthot/internal/index", "reflectsortcold")
}
