// Package load type-checks module packages for the invariant analyzers
// using only the standard library and the go command. It is the offline
// stand-in for golang.org/x/tools/go/packages: `go list -deps -export
// -json` supplies file lists, import maps and compiled export data for
// every dependency, and go/importer's gc importer consumes that export
// data, so whole-tree analysis never re-typechecks the transitive
// closure from source.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// ID is go list's ImportPath, unique per package variant — a test
	// variant reads "wwt/internal/index [wwt/internal/index.test]".
	ID string
	// PkgPath is the import path proper, variant decoration stripped.
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// TypeErrors holds type-checking problems. The package is still
	// returned — analyzers run best-effort over what checked.
	TypeErrors []error
}

// listPkg is the subset of go list -json output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	DepOnly    bool
	ForTest    string
	Standard   bool
}

// Options configures a Load.
type Options struct {
	// Dir is the directory go list runs in (the module root or below).
	Dir string
	// Tests includes each matched package's test variant: the in-package
	// variant (which compiles _test.go files alongside the package and
	// replaces the plain package in the result) and the external _test
	// package.
	Tests bool
}

// Load lists patterns with the go command and type-checks every matched
// package of the surrounding module. Synthesized test-main packages are
// skipped; when Options.Tests is set, test variants replace their plain
// packages so each file is analyzed exactly once.
func Load(opts Options, patterns ...string) ([]*Package, error) {
	args := []string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,ImportMap,DepOnly,ForTest,Standard",
	}
	if opts.Tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = opts.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exportFile := make(map[string]string)
	var targets []*listPkg
	replaced := make(map[string]bool) // plain packages shadowed by a test variant
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exportFile[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		pc := p
		if base := variantBase(p.ImportPath); base != "" && base == p.ForTest {
			replaced[base] = true
		}
		targets = append(targets, &pc)
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, t := range targets {
		if replaced[t.ImportPath] {
			continue
		}
		pkg, err := check(fset, t, exportFile)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// variantBase extracts the plain import path from a test-variant ID:
// "p [p.test]" yields "p"; plain IDs yield "".
func variantBase(id string) string {
	if i := strings.Index(id, " ["); i >= 0 {
		return id[:i]
	}
	return ""
}

// Check type-checks one explicitly described package: files (absolute
// paths), its import path, and maps resolving imports to export data —
// the shape both go list output and a vet .cfg reduce to.
func Check(fset *token.FileSet, pkgPath string, files []string, importMap, exportFile map[string]string) (*Package, error) {
	pkg := &Package{ID: pkgPath, PkgPath: pkgPath, Fset: fset}
	if base := variantBase(pkgPath); base != "" {
		pkg.PkgPath = base
	}
	for _, f := range files {
		file, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, file)
	}

	// A fresh importer per package: the gc importer caches by source
	// spelling, and ImportMap is per-package (test variants remap their
	// own module imports to the variant builds).
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if m, ok := importMap[path]; ok {
			path = m
		}
		ef, ok := exportFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(ef)
	})
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(pkg.PkgPath, fset, pkg.Files, pkg.Info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	if tpkg == nil {
		return nil, errors.Join(pkg.TypeErrors...)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// check type-checks one go list target against the export-data map.
func check(fset *token.FileSet, t *listPkg, exportFile map[string]string) (*Package, error) {
	files := make([]string, 0, len(t.GoFiles))
	for _, f := range t.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(t.Dir, f)
		}
		files = append(files, f)
	}
	return Check(fset, t.ImportPath, files, t.ImportMap, exportFile)
}
