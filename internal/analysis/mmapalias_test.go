package analysis_test

import (
	"testing"

	"wwt/internal/analysis"
	"wwt/internal/analysis/analysistest"
)

func TestMmapAlias(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.MmapAlias, "mmapalias")
}
