package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapFloatSum flags floating-point accumulation performed while ranging
// over a map. Map iteration order is randomized, float addition is not
// associative, so `for _, v := range m { s += v }` produces a different
// bit pattern run to run — the exact nondeterminism class PR 3 fixed in
// inSimCosine/unsegScores by summing in first-occurrence order. The
// engine's bit-determinism contracts (TestSearcherEquivalence,
// TestAnswerScratchEquivalence) ride on every such sum being ordered.
//
// The accumulator must be declared outside the range statement to be
// flagged: a per-iteration local resets every pass and cannot observe
// iteration order. Sums a human has proven order-invariant (e.g. integer
// arithmetic staged through a float) can be annotated with
// //wwt:orderinvariant on the accumulation line.
var MapFloatSum = &Analyzer{
	Name: "mapfloatsum",
	Doc: "flag float accumulation in map-iteration order\n\n" +
		"Float sums inside `range someMap` depend on randomized iteration " +
		"order and break the engine's bit-determinism invariants. Hoist the " +
		"keys into a sorted or first-occurrence-ordered slice and sum over " +
		"that, or annotate a proven-order-invariant sum with //wwt:orderinvariant.",
	Run: runMapFloatSum,
}

func runMapFloatSum(pass *Pass) error {
	reported := make(map[token.Pos]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || rs.X == nil {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			ast.Inspect(rs.Body, func(inner ast.Node) bool {
				as, ok := inner.(*ast.AssignStmt)
				if !ok {
					return true
				}
				pass.checkMapRangeAssign(rs, as, reported)
				return true
			})
			return true
		})
	}
	return nil
}

// checkMapRangeAssign flags as if it accumulates a float into a variable
// that outlives one iteration of the map range rs.
func (pass *Pass) checkMapRangeAssign(rs *ast.RangeStmt, as *ast.AssignStmt, reported map[token.Pos]bool) {
	accumulates := false
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		accumulates = len(as.Lhs) == 1
	case token.ASSIGN:
		// s = s + x / s = x + s (and -, *, /): the spelled-out form of the
		// same accumulation.
		if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if bin, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr); ok {
				switch bin.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
					lhs := types.ExprString(as.Lhs[0])
					accumulates = types.ExprString(bin.X) == lhs ||
						types.ExprString(bin.Y) == lhs
				}
			}
		}
	}
	if !accumulates || reported[as.Pos()] {
		return
	}
	lhs := as.Lhs[0]
	tv, ok := pass.TypesInfo.Types[lhs]
	if !ok || !isFloat(tv.Type) {
		return
	}
	// The accumulator must be declared outside the range statement;
	// otherwise it is reset each iteration and order cannot matter.
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	obj := pass.TypesInfo.ObjectOf(root)
	if obj == nil || (obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()) {
		return
	}
	if pass.HasDirective(as.Pos(), "orderinvariant") {
		return
	}
	reported[as.Pos()] = true
	pass.Reportf(as.Pos(),
		"float accumulation into %s depends on map iteration order; sum in sorted or first-occurrence order instead (determinism invariant)",
		types.ExprString(lhs))
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
