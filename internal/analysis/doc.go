// Package analysis holds the repo's custom invariant checkers: five
// go/analysis-style analyzers that turn the architecture contracts the
// ROADMAP prose promises — and that code review has repeatedly had to
// re-litigate — into machine-checked invariants. The cmd/wwt-vet
// multichecker runs them standalone (wwt-vet ./...) or under the go
// vet driver (go vet -vettool=$(which wwt-vet) ./...), and the CI lint
// lane gates every other job on a clean run.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) but is built on the standard library
// alone: package loading shells out to `go list -deps -export -json`
// and type-checks against compiled export data (internal/analysis/load),
// so the checkers work in the offline build environment where x/tools
// is unavailable. If that dependency ever lands, the analyzers port
// wholesale.
//
// Each analyzer enforces one documented invariant:
//
//   - mapfloatsum — bit-determinism. Float accumulation inside `range`
//     over a map depends on randomized iteration order; PR 3 fixed this
//     exact class in inSimCosine/unsegScores by summing in
//     first-occurrence order, and the equivalence tests
//     (TestEngineDeterministic, TestSearcherEquivalence) ride on no new
//     instance appearing. Escape hatch: //wwt:orderinvariant on a sum a
//     human has proven exact.
//
//   - reflectsort — the PR 8 hot-sort standard. sort.Slice/SliceStable/
//     SliceIsSorted go through reflect.Swapper; the hot packages (root,
//     internal/index, internal/core, internal/inference) standardized
//     on the monomorphized slices.SortFunc family. Test files are
//     exempt.
//
//   - lockedcompute — the compute-outside-lock cache protocol. Every
//     cross-query cache is an internal/lru.Cache whose Get runs the
//     compute callback outside the cache lock so misses don't
//     serialize; calling Get while holding your own sync.Mutex/RWMutex
//     moves the compute back inside a critical section and invites
//     lock-order cycles.
//
//   - mmapalias — the flat-index aliasing contract. unsafe.Slice/
//     unsafe.String views over a flat-opened index's sections die with
//     Close; storing one in a package-level variable or a field of a
//     type with no Close method lets the alias outlive its mapping.
//     Escape hatch: //wwt:mmap-owner on a type that holds views on a
//     Close-owning struct's behalf.
//
//   - releaseresult — the QueryScratch pooling contract. An
//     Engine.Answer/AnswerCtx Result that never reaches Release is not
//     a leak (the GC collects it) but silently defeats the arena pool,
//     the regression class the PR 3/PR 4 pooling work exists to
//     prevent. Lostcancel-style and deliberately forgiving: escaping
//     Results are someone else's responsibility. Escape hatch:
//     //wwt:retained on the call line.
//
// Golden-diagnostic coverage lives under testdata/src/<fixture> and
// runs through internal/analysis/analysistest, which loads the fixture
// packages with the same loader and matches reported diagnostics
// against `// want "regexp"` comments. Fixtures are real packages of
// this module, so they exercise the analyzers against the genuine wwt
// and internal/lru types they match on.
package analysis
