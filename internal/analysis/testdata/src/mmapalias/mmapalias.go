// Package mmapalias exercises the mmap-alias lifetime checker: unsafe
// views over mapped bytes (the flat index's viewInt32 family) must stay
// inside the type that owns the mapping's Close; package-level variables
// and fields of non-owning types are flagged.
package mmapalias

import "unsafe"

// viewInt32 is the alias-producer shape from the flat index's format.go:
// a typed view over a parameter's bytes.
func viewInt32(b []byte, n int) []int32 {
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
}

// viewAll is a transitive producer: it returns another producer's view.
func viewAll(b []byte) []int32 {
	return viewInt32(b, len(b)/4)
}

// viewString is the string-shaped view.
func viewString(b []byte) string {
	return unsafe.String(&b[0], len(b))
}

var fileBytes = make([]byte, 8)

var eager = viewInt32(fileBytes, 1) // want `mmap-aliased slice stored in package-level var eager outlives the mapping's Close`

var leaked []int32

// holder has no Close method and no owner mark: views stored in its
// fields can outlive the mapping.
type holder struct {
	offs []int32
	name string
}

// mapping owns its file mapping: Close is the unmap point, so views may
// live in its fields.
type mapping struct {
	data []byte
	offs []int32
}

func (m *mapping) Close() error { return nil }

// viewStash has no Close of its own but holds views on behalf of the
// mapping that does; the mark vouches for the ownership chain.
//
//wwt:mmap-owner
type viewStash struct {
	offs []int32
}

func store(b []byte, h *holder, m *mapping, vs *viewStash) {
	leaked = viewInt32(b, 2) // want `mmap-aliased slice stored in package-level var leaked outlives the mapping's Close`
	h.offs = viewAll(b)      // want `mmap-aliased slice stored in field offs of holder, which has no Close and no //wwt:mmap-owner mark`
	h.name = viewString(b)   // want `mmap-aliased string stored in field name of holder, which has no Close and no //wwt:mmap-owner mark`
	m.offs = viewInt32(b, 2)
	vs.offs = viewInt32(b, 2)
	local := viewInt32(b, 2)
	_ = local
}
