package index

import "sort"

// Test files are exempt even in hot packages: benchmarks and reference
// implementations may sort however they like.
func sortForTest(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
