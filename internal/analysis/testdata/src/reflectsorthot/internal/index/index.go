// Package index stands in for the real hot-path index package: its
// import path suffix-matches internal/index, so the reflection-based
// sort.Slice family is banned here.
package index

import "sort"

func sortHits(ids []int, scores []float64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] }) // want `sort.Slice uses reflection on a hot path; use slices.SortFunc`
	sort.SliceStable(ids, func(i, j int) bool {                     // want `sort.SliceStable uses reflection on a hot path; use slices.SortStableFunc`
		return scores[ids[i]] > scores[ids[j]]
	})
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) { // want `sort.SliceIsSorted uses reflection on a hot path; use slices.IsSortedFunc`
		panic("unsorted")
	}
}

// The non-reflective sort API stays legal on hot paths.
func sortAllowed(ids []int, names []string) {
	sort.Ints(ids)
	sort.Strings(names)
	sort.Sort(sort.IntSlice(ids))
}
