// Package reflectsortcold is not on the hot-package list: reflection
// sorts are fine off the query path, so the analyzer stays silent.
package reflectsortcold

import "sort"

func sortAnything(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	sort.SliceStable(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
