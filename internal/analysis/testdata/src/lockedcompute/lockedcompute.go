// Package lockedcompute exercises the compute-outside-lock protocol
// checker against the real wwt/internal/lru generic cache: Cache.Get
// runs its compute callback outside the cache lock by contract, so
// calling it inside a caller-held sync.Mutex/RWMutex critical section
// must be flagged.
package lockedcompute

import (
	"sync"

	"wwt/internal/lru"
)

type scorer struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	cache *lru.Cache[string, float64]
	table map[string]float64
}

func expensive(string) float64 { return 0 }

func (s *scorer) scoreLocked(key string) float64 {
	s.mu.Lock()
	v := s.cache.Get(key, func() float64 { return expensive(key) }) // want `lru.Cache.Get called while s.mu is held`
	s.mu.Unlock()
	return v
}

// Releasing the lock before consulting the cache is the sanctioned
// pattern: no diagnostic.
func (s *scorer) scoreUnlocked(key string) float64 {
	s.mu.Lock()
	base := s.table[key]
	s.mu.Unlock()
	return s.cache.Get(key, func() float64 { return base * 2 })
}

// A deferred Unlock keeps the mutex held for the whole lexical body.
func (s *scorer) scoreDeferred(key string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.Get(key, func() float64 { return expensive(key) }) // want `lru.Cache.Get called while s.mu is held`
}

// Read locks count too: the compute still runs inside the critical
// section.
func (s *scorer) scoreReadLocked(key string) float64 {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.cache.Get(key, func() float64 { return expensive(key) }) // want `lru.Cache.Get called while s.rw is held`
}

// A literal defined inside the critical section runs later, outside it:
// its body is analyzed as its own function with no lock held.
func (s *scorer) deferredCompute(key string) func() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn := func() float64 {
		return s.cache.Get(key, func() float64 { return expensive(key) })
	}
	return fn
}
