// Package releaseresult exercises the arena-release checker against the
// real wwt API: Engine.Answer results that never reach Release fall off
// the QueryScratch pool. The engine value is never used at runtime —
// the fixture only has to type-check.
package releaseresult

import "wwt"

var eng *wwt.Engine

func query() wwt.Query {
	return wwt.Query{Columns: []string{"country", "currency"}}
}

func discarded() {
	eng.Answer(query()) // want `result of eng.Answer is discarded without Release`
}

func blankAssigned() {
	_, _ = eng.Answer(query()) // want `result of eng.Answer is assigned to _ without Release`
}

func neverReleased() {
	res, err := eng.Answer(query()) // want `result of eng.Answer never reaches Release on any path`
	if err != nil {
		return
	}
	if res.UsedProbe2 {
		println("second probe ran")
	}
}

// The sanctioned shape: defer Release immediately after the error check.
func released() {
	res, err := eng.Answer(query())
	if err != nil {
		return
	}
	defer res.Release()
	println(len(res.Answer.Rows))
}

// A returned Result is the caller's responsibility.
func escapesReturn() *wwt.Result {
	res, err := eng.Answer(query())
	if err != nil {
		return nil
	}
	return res
}

func sink(*wwt.Result) {}

// A Result passed along escapes: someone else's Release.
func escapesArg() {
	res, err := eng.Answer(query())
	if err != nil {
		return
	}
	sink(res)
}

// Deliberate retention is marked on the call line.
func retained() {
	res, err := eng.Answer(query()) //wwt:retained — pinned for the fixture's lifetime
	if err != nil {
		return
	}
	if res.UsedProbe2 {
		println("second probe ran")
	}
}

// Error-expectation shape: on failure there is no Result to release.
func errOnly() {
	if _, err := eng.Answer(wwt.Query{}); err != nil { //wwt:retained — rejected query, no Result
		println(err.Error())
	}
}
