// Package mapfloatsum exercises the mapfloatsum analyzer: float sums in
// map-iteration order (the PR 3 inSimCosine/unsegScores bug class) must
// be flagged; ordered, integer, per-iteration and annotated sums must
// not.
package mapfloatsum

import "sort"

// inSimCosine reproduces the exact PR 3 shape: the dot product and the
// norm accumulate in the map's randomized iteration order, so the float
// result differs bit-for-bit run to run.
func inSimCosine(a, b map[string]float64) float64 {
	var dot float64
	for t, wa := range a {
		dot += wa * b[t] // want `float accumulation into dot depends on map iteration order`
	}
	var nb float64
	for _, wb := range b {
		nb = nb + wb*wb // want `float accumulation into nb depends on map iteration order`
	}
	_ = nb
	return dot
}

// spelledForms: *= and the reversed spelled-out form accumulate too.
func spelledForms(m map[int]float32) (float32, float32) {
	prod := float32(1)
	var diff float32
	for _, v := range m {
		prod *= v       // want `float accumulation into prod depends on map iteration order`
		diff = v - diff // want `float accumulation into diff depends on map iteration order`
	}
	return prod, diff
}

// orderedSum is the sanctioned fix: hoist the keys, sort, sum over the
// slice. The accumulation happens in a slice range, not a map range.
func orderedSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}

// intSum: integer addition is associative; order cannot matter.
func intSum(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v
	}
	return n
}

// perIteration: the accumulator is declared inside the range body, so it
// resets every pass and cannot observe iteration order.
func perIteration(m map[string][]float64, out map[string]float64) {
	for k, vs := range m {
		var rowSum float64
		for _, v := range vs {
			rowSum += v
		}
		out[k] = rowSum
	}
}

// stagedInt sums integer-valued terms staged through a float64: exact,
// hence order-invariant, and annotated as such.
func stagedInt(m map[string]int) float64 {
	var s float64
	for _, v := range m {
		s += float64(v) //wwt:orderinvariant — integer-valued terms, exact in float64
	}
	return s
}
