package analysis

import (
	"go/ast"
	"go/types"
)

// MmapAlias guards the flat-index aliasing contract: slices and strings
// built over a flat-opened searcher's mmap'd sections (unsafe.Slice /
// unsafe.String views, format.go's viewInt32 family) die with Close —
// the mapping is unmapped and every surviving alias is a fault waiting
// for a page access. Such views may live in the struct that owns the
// mapping (it has the Close), but storing one into a package-level
// variable, or into a field of a type with no Close method, lets the
// alias outlive its mapping.
//
// Detection is intra-package and syntactic at the store site: the
// analyzer computes the package's alias-producing functions (those whose
// return values derive from unsafe.Slice/unsafe.String over a parameter
// or receiver, transitively), then flags assignments of their results —
// or of direct unsafe.Slice/unsafe.String calls — into package-level
// variables or into fields of non-owning types. A type that legitimately
// holds views on behalf of an owner with the Close (e.g. the per-shard
// struct inside ShardedSearcher) is marked //wwt:mmap-owner on its
// declaration line.
var MmapAlias = &Analyzer{
	Name: "mmapalias",
	Doc: "flag mmap-aliased slices stored where they outlive Close\n\n" +
		"Views over flat-index sections (unsafe.Slice/unsafe.String and the " +
		"viewInt32 family) are invalidated by Close. Keep them in the type " +
		"that owns the mapping: package-level variables and fields of types " +
		"without a Close method (and without a //wwt:mmap-owner mark) are " +
		"flagged.",
	Run: runMmapAlias,
}

func runMmapAlias(pass *Pass) error {
	aliasFns := pass.aliasProducers()

	// isAliasCall reports whether e is a call producing an unsafe view:
	// directly via unsafe.Slice/String or through an alias-producing
	// function of this package.
	isAliasCall := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		if isUnsafeView(pass.TypesInfo, call) {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		return fn != nil && aliasFns[fn]
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ValueSpec:
				// Package-level `var x = viewInt32(...)`.
				for i, v := range n.Values {
					if i < len(n.Names) && isAliasCall(v) {
						pass.checkAliasStore(n.Names[i], v)
					}
				}
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						if isAliasCall(n.Rhs[i]) {
							pass.checkAliasStore(n.Lhs[i], n.Rhs[i])
						}
					}
				} else if len(n.Rhs) == 1 && isAliasCall(n.Rhs[0]) {
					// x, err := viewish(...): any result may be the view.
					for _, lhs := range n.Lhs {
						pass.checkAliasStore(lhs, n.Rhs[0])
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkAliasStore flags lhs when it is a package-level variable or a
// field of a type that neither has a Close method nor carries the
// //wwt:mmap-owner mark.
func (pass *Pass) checkAliasStore(lhs, rhs ast.Expr) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		// lhs of := and var declarations has its type on the object, not
		// in Types.
		obj := pass.TypesInfo.ObjectOf(l)
		if obj == nil || !isViewType(obj.Type()) || obj.Parent() != pass.Pkg.Scope() {
			return
		}
		pass.Reportf(rhs.Pos(),
			"mmap-aliased %s stored in package-level var %s outlives the mapping's Close; copy it or keep it in the owning struct",
			viewKind(obj.Type()), l.Name)
	case *ast.SelectorExpr:
		tv, ok := pass.TypesInfo.Types[lhs]
		if !ok || !isViewType(tv.Type) {
			return
		}
		base, ok2 := pass.TypesInfo.Types[l.X]
		if !ok2 {
			return
		}
		owner := named(base.Type)
		if owner == nil || pass.typeOwnsMapping(owner) {
			return
		}
		pass.Reportf(rhs.Pos(),
			"mmap-aliased %s stored in field %s of %s, which has no Close and no //wwt:mmap-owner mark; the view can outlive the mapping",
			viewKind(tv.Type), l.Sel.Name, owner.Obj().Name())
	}
}

// viewKind names the stored view shape for the diagnostic.
func viewKind(t types.Type) string {
	if t != nil {
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
			return "string"
		}
	}
	return "slice"
}

// typeOwnsMapping reports whether the named type may legitimately hold
// mmap views: it has a Close method (the unmap point), or its in-package
// declaration is marked //wwt:mmap-owner.
func (pass *Pass) typeOwnsMapping(n *types.Named) bool {
	if obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(n), true, pass.Pkg, "Close"); obj != nil {
		if _, isFn := obj.(*types.Func); isFn {
			return true
		}
	}
	if n.Obj().Pkg() == pass.Pkg {
		return pass.HasDirective(n.Obj().Pos(), "mmap-owner")
	}
	return false
}

// aliasProducers computes the package's alias-producing functions: the
// fixpoint of "returns unsafe.Slice/unsafe.String over a parameter or
// receiver" through "returns a call to a known alias producer".
func (pass *Pass) aliasProducers() map[*types.Func]bool {
	type fnBody struct {
		fn   *types.Func
		body *ast.BlockStmt
		self map[types.Object]bool // params + receiver
	}
	var fns []fnBody
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			self := make(map[types.Object]bool)
			sig := fn.Type().(*types.Signature)
			for i := 0; i < sig.Params().Len(); i++ {
				self[sig.Params().At(i)] = true
			}
			if r := sig.Recv(); r != nil {
				self[r] = true
			}
			fns = append(fns, fnBody{fn, fd.Body, self})
		}
	}

	alias := make(map[*types.Func]bool)
	// Base case: a return statement contains unsafe.Slice/unsafe.String
	// applied over a parameter or the receiver.
	for _, f := range fns {
		if pass.returnsMatching(f.body, func(call *ast.CallExpr) bool {
			if !isUnsafeView(pass.TypesInfo, call) {
				return false
			}
			derived := false
			ast.Inspect(call, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && f.self[pass.TypesInfo.ObjectOf(id)] {
					derived = true
				}
				return !derived
			})
			return derived
		}) {
			alias[f.fn] = true
		}
	}
	// Fixpoint: returning a call to a known producer makes a producer.
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			if alias[f.fn] {
				continue
			}
			if pass.returnsMatching(f.body, func(call *ast.CallExpr) bool {
				fn := calleeFunc(pass.TypesInfo, call)
				return fn != nil && alias[fn]
			}) {
				alias[f.fn] = true
				changed = true
			}
		}
	}
	return alias
}

// returnsMatching reports whether any return statement in body contains
// a call matching pred (function literals excluded — their returns are
// not this function's).
func (pass *Pass) returnsMatching(body *ast.BlockStmt, pred func(*ast.CallExpr) bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(inner ast.Node) bool {
				if call, ok := inner.(*ast.CallExpr); ok && pred(call) {
					found = true
				}
				return !found
			})
		}
		return true
	})
	return found
}

// isUnsafeView reports whether call is unsafe.Slice or unsafe.String.
func isUnsafeView(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "unsafe" {
		return false
	}
	return obj.Name() == "Slice" || obj.Name() == "String"
}

// isViewType reports whether t is a slice or string — the shapes an
// unsafe view takes.
func isViewType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return true
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}
