package analysis

import (
	"go/ast"
)

// hotPackages are the packages on the query hot path where PR 8
// standardized sorting on the generic, reflection-free slices.SortFunc
// family. Matched by slash-aligned path suffix so the testdata fixture
// packages (whose import paths carry a testdata/src/ prefix) select the
// same way as the real tree.
var hotPackages = []string{
	"wwt",
	"internal/index",
	"internal/core",
	"internal/inference",
}

// reflectSortBanned maps each banned sort-package function to its
// generic replacement.
var reflectSortBanned = map[string]string{
	"Slice":         "slices.SortFunc",
	"SliceStable":   "slices.SortStableFunc",
	"SliceIsSorted": "slices.IsSortedFunc",
}

// ReflectSort bans reflection-based sort.Slice/sort.SliceStable/
// sort.SliceIsSorted in the hot packages. The reflect-based swapper
// costs an interface allocation and reflect.Swapper call per sort;
// slices.SortFunc monomorphizes and was measured faster on every hot
// sort in the PR 8 sweep. Test files are exempt — benchmarks and
// reference implementations may sort however they like.
var ReflectSort = &Analyzer{
	Name: "reflectsort",
	Doc: "ban reflection-based sort.Slice in hot packages\n\n" +
		"sort.Slice/SliceStable/SliceIsSorted go through reflect.Swapper; the " +
		"hot packages (root, internal/index, internal/core, internal/inference) " +
		"standardized on the generic slices.SortFunc family. Use " +
		"slices.SortFunc / slices.SortStableFunc / slices.IsSortedFunc.",
	Run: runReflectSort,
}

func runReflectSort(pass *Pass) error {
	hot := false
	for _, suffix := range hotPackages {
		if PathHasSuffix(pass.Pkg.Path(), suffix) {
			hot = true
			break
		}
	}
	if !hot {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sort" {
				return true
			}
			repl, banned := reflectSortBanned[fn.Name()]
			if !banned || pass.InTestFile(call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(),
				"sort.%s uses reflection on a hot path; use %s (PR 8 hot-sort invariant)",
				fn.Name(), repl)
			return true
		})
	}
	return nil
}
