package corpusgen

import "math/rand"

// Shared attribute vocabulary. Attributes reused across domains (country,
// year, ...) carry the same Key, which is what makes cross-domain tables
// genuine confusables: a country|gdp table contains the "country" column
// of a country|currency query but not its second column.
func attr(key string, headers []string, uninformative ...string) Attr {
	return Attr{Key: key, Headers: headers, Uninformative: uninformative}
}

var (
	attrCountry    = attr("country", []string{"Country", "Nation", "Country name"}, "Name")
	attrCurrency   = attr("currency", []string{"Currency", "Currency name", "Monetary unit"}, "Unit")
	attrPopulation = attr("population", []string{"Population", "Population estimate", "Inhabitants"}, "Total")
	attrGDP        = attr("gdp", []string{"GDP", "Gross domestic product", "GDP nominal"}, "Value")
	attrUSDRate    = attr("usd-rate", []string{"US dollar exchange rate", "Exchange rate", "Rate per US dollar"}, "Rate")
	attrFuel       = attr("fuel", []string{"Daily fuel consumption", "Fuel consumption", "Oil consumption"}, "Consumption")
	attrTLD        = attr("tld", []string{"Internet domain", "Country code domain", "TLD"}, "Code")
	attrYear       = attr("year", []string{"Year", "Year won", "Season"}, "No.")
	attrHeight     = attr("height", []string{"Height", "Height m", "Elevation"}, "Value")
	attrCompany    = attr("company", []string{"Company", "Manufacturer", "Maker"}, "Name")
	attrPrice      = attr("price", []string{"Price", "Launch price", "Price USD"}, "Value")
	attrDate       = attr("release-date", []string{"Release date", "Released", "Launch date"}, "Date")
	attrAuthor     = attr("author", []string{"Author", "Written by", "Authors"}, "Name")
	attrWinner     = attr("winner", []string{"Winner", "Winners", "Champion"}, "Name")
)

// dom is a shorthand constructor.
func dom(name string, query, keys []string, phrase string, attrs []Attr, rows [][]string,
	relevant, confusable int, noise NoiseProfile) *Domain {
	return &Domain{
		Name: name, Query: query, Keys: keys, Phrase: phrase,
		Attrs: attrs, Rows: rows,
		Relevant: relevant, Confusable: confusable, Noise: noise,
	}
}

// Domains instantiates every workload domain. The rng only feeds the
// procedural vocabularies, so a fixed seed makes the whole corpus
// deterministic.
func Domains(rng *rand.Rand) []*Domain {
	var ds []*Domain
	add := func(d *Domain) { ds = append(ds, d) }

	name2 := func(theme string, n int, extra ...procCol) [][]string {
		cols := append([]procCol{{kind: procKindName, words: 2}}, extra...)
		_ = theme
		return procMatrix(rng, n, cols)
	}

	// --- single column queries ---------------------------------------
	add(dom("dog-breeds", []string{"dog breed"}, []string{"dogbreed"},
		"list of dog breeds",
		[]Attr{attr("dogbreed", []string{"Dog breed", "Breed"}, "Name"), attr("breed-origin", []string{"Country of origin", "Origin"})},
		column(dogBreedNames, dogBreedOrigins), 14, 4, profileClean))

	add(dom("kings-of-africa", []string{"kings of africa"}, []string{"african-king"},
		"monarchies and kingdoms of africa",
		[]Attr{attr("african-king", []string{"King", "Monarch"}, "Name"), attrYear},
		name2("king", 12, procCol{kind: procKindYear, lo: 1800, hi: 1990}), 0, 6, profileBrutal))

	add(dom("moon-phases", []string{"phases of moon"}, []string{"moon-phase"},
		"phases of the moon lunar cycle",
		[]Attr{attr("moon-phase", []string{"Phase", "Moon phase"}, "Name"), attr("phase-day", []string{"Day", "Cycle day"})},
		column(moonPhases, []string{"0", "4", "7", "11", "15", "18", "22", "26"}), 5, 8, profileHard))

	add(dom("uk-pms", []string{"prime ministers of england"}, []string{"uk-pm"},
		"prime ministers of england and the united kingdom",
		[]Attr{attr("uk-pm", []string{"Prime Minister", "Prime minister name"}, "Name"), attrYear},
		name2("pm", 14, procCol{kind: procKindYear, lo: 1721, hi: 2010}), 2, 9, profileBrutal))

	add(dom("wrestlers", []string{"professional wrestlers"}, []string{"wrestler"},
		"professional wrestlers of the modern era",
		[]Attr{attr("wrestler", []string{"Wrestler", "Ring name"}, "Name"), attr("wrestler-debut", []string{"Debut", "Debut year"})},
		column(wrestlerNames, []string{
			"1977", "1972", "1987", "1989", "1996", "1992", "1984", "1978", "1973",
			"1964", "2000", "2000", "1998", "1992", "1989", "1990", "1995", "1992", "1997", "1985",
		}), 15, 3, profileClean))

	// --- two column queries -------------------------------------------
	add(dom("beijing-events", []string{"2008 beijing Olympic events", "winners"}, []string{"beijing-event", "winner"},
		"2008 beijing olympic games",
		[]Attr{attr("beijing-event", []string{"Event"}, "Name"), attrWinner},
		name2("event", 10, procCol{kind: procKindName, words: 2}), 0, 8, profileBrutal))

	add(dom("olympic-gold", []string{"2008 olympic gold medal winners", "sports/event"}, []string{"gold-winner", "sport"},
		"gold medal winners of the 2008 olympics",
		[]Attr{attr("gold-winner", []string{"Gold medalist"}, "Name"), attr("sport", []string{"Sport", "Event"})},
		name2("athlete", 10, procCol{kind: procKindName, words: 1}), 0, 8, profileBrutal))

	add(dom("australian-cities", []string{"australian cities", "area"}, []string{"au-city", "area"},
		"cities of australia by area",
		[]Attr{attr("au-city", []string{"City", "Australian city"}, "Name"), attr("area", []string{"Area", "Area km2", "Land area"}, "Value")},
		column(australianCityNames, australianCityAreas), 3, 8, profileHard))

	add(dom("banks", []string{"banks", "interest rates"}, []string{"bank", "interest-rate"},
		"bank savings interest rates comparison",
		[]Attr{attr("bank", []string{"Bank", "Bank name"}, "Name"), attr("interest-rate", []string{"Interest rate", "Savings rate", "APY"}, "Rate")},
		column(bankNames, bankRates), 11, 4, profileMedium))

	add(dom("black-metal", []string{"black metal bands", "country"}, []string{"metal-band", "country"},
		"black metal bands by country",
		[]Attr{attr("metal-band", []string{"Band", "Band name"}, "Name"), attrCountry, attr("genre", []string{"Genre", "Style"})},
		column(metalBandNames, metalBandCountries, []string{
			"Black metal", "Black metal", "Black metal", "Black metal", "Black metal",
			"Black metal", "Black metal", "Black metal", "Black metal", "Black metal",
			"Black metal", "Black metal",
		}), 7, 6, profileHard))

	add(dom("us-books", []string{"books in United States", "author"}, []string{"book", "author"},
		"best selling books in the united states",
		[]Attr{attr("book", []string{"Book", "Title"}, "Name"), attrAuthor},
		column(bookTitles, bookAuthors), 2, 4, profileHard))

	add(dom("car-accidents", []string{"car accidents location", "year"}, []string{"accident-location", "year"},
		"major car accidents by location and year",
		[]Attr{attr("accident-location", []string{"Location", "Accident location"}, "Place"), attrYear},
		name2("accident", 12, procCol{kind: procKindYear, lo: 1970, hi: 2011}), 3, 7, profileBrutal))

	add(dom("clothing-sizes", []string{"clothing sizes", "symbols"}, []string{"clothing-size", "size-symbol"},
		"international clothing size conversion",
		[]Attr{attr("clothing-size", []string{"Size"}, "Value"), attr("size-symbol", []string{"Symbol"}, "Code")},
		name2("size", 8, procCol{kind: procKindName, words: 1}), 0, 6, profileBrutal))

	add(dom("sun-composition", []string{"composition of the sun", "percentage"}, []string{"sun-element", "percentage"},
		"chemical composition of the sun",
		[]Attr{attr("sun-element", []string{"Element"}, "Name"), attr("percentage", []string{"Percentage", "Percent by mass", "Abundance"}, "Value")},
		column([]string{"Hydrogen", "Helium", "Oxygen", "Carbon", "Neon", "Iron", "Nitrogen", "Silicon", "Magnesium", "Sulfur"},
			[]string{"73.46", "24.85", "0.77", "0.29", "0.12", "0.16", "0.09", "0.07", "0.05", "0.04"}), 4, 8, profileHard))

	add(dom("country-currency", []string{"country", "currency"}, []string{"country", "currency"},
		"currencies of the world by country",
		[]Attr{attrCountry, attrCurrency, attrPopulation},
		column(countryNames, countryCurrencies, countryPopulations), 16, 0, profileClean))

	add(dom("country-fuel", []string{"country", "daily fuel consumption"}, []string{"country", "fuel"},
		"daily fuel consumption by country",
		[]Attr{attrCountry, attrFuel},
		column(countryNames, countryFuel), 5, 0, profileMedium))

	add(dom("country-gdp", []string{"country", "gdp"}, []string{"country", "gdp"},
		"countries of the world by gdp",
		[]Attr{attrCountry, attrGDP, attrPopulation},
		column(countryNames, countryGDPs, countryPopulations), 16, 0, profileClean))

	add(dom("country-population", []string{"country", "population"}, []string{"country", "population"},
		"world population by country",
		[]Attr{attrCountry, attrPopulation, attrGDP},
		column(countryNames, countryPopulations, countryGDPs), 16, 0, profileClean))

	add(dom("country-usd", []string{"country", "us dollar exchange rate"}, []string{"country", "usd-rate"},
		"exchange rates against the us dollar",
		[]Attr{attrCountry, attrUSDRate, attrCurrency},
		column(countryNames, countryUSDRates, countryCurrencies), 13, 0, profileMedium))

	add(dom("fifa", []string{"fifa worlds cup winners", "year"}, []string{"fifa-winner", "year"},
		"fifa world cup winners by year",
		[]Attr{attr("fifa-winner", []string{"World cup winner", "Winner"}, "Country"), attrYear},
		column(fifaWinners, fifaYears), 3, 11, profileBrutal))

	add(dom("golden-globe", []string{"Golden Globe award winners", "year"}, []string{"globe-winner", "year"},
		"golden globe award winners",
		[]Attr{attr("globe-winner", []string{"Golden Globe winner", "Winner"}, "Name"), attrYear},
		column(globeWinners, globeYears), 8, 2, profileMedium))

	add(dom("ibanez", []string{"Ibanez guitar series", "models"}, []string{"guitar-series", "guitar-model"},
		"ibanez guitar series and models",
		[]Attr{attr("guitar-series", []string{"Series"}, "Name"), attr("guitar-model", []string{"Models", "Model"}, "Value")},
		name2("guitar", 9, procCol{kind: procKindName, words: 1}), 2, 5, profileHard))

	add(dom("tld-entity", []string{"Internet domains", "entity"}, []string{"tld", "country"},
		"internet country code domains",
		[]Attr{attrTLD, attrCountry},
		column(countryDomains, countryNames), 3, 4, profileHard))

	add(dom("bond-films", []string{"James Bond films", "year"}, []string{"bond-film", "year"},
		"james bond films in order",
		[]Attr{attr("bond-film", []string{"Film", "Film title"}, "Title"), attrYear},
		column(bondFilmNames, bondFilmYears), 7, 3, profileMedium))

	add(dom("windows", []string{"Microsoft Windows products", "release date"}, []string{"windows-product", "release-date"},
		"microsoft windows release history",
		[]Attr{attr("windows-product", []string{"Windows product", "Product", "Version"}, "Name"), attrDate},
		column(windowsProducts, windowsDates), 6, 4, profileMedium))

	add(dom("mlb", []string{"MLB world series winners", "year"}, []string{"mlb-winner", "year"},
		"mlb world series champions",
		[]Attr{attr("mlb-winner", []string{"World series winner", "Team"}, "Name"), attrYear},
		column(mlbWinners, mlbYears), 2, 7, profileBrutal))

	add(dom("movies", []string{"movies", "gross collection"}, []string{"movie", "gross"},
		"highest grossing movies of all time",
		[]Attr{attr("movie", []string{"Movie", "Film", "Movie title"}, "Title"), attr("gross", []string{"Gross collection", "Worldwide gross", "Box office"}, "Total")},
		column(movieNames, movieGrosses), 16, 2, profileClean))

	add(dom("parrots", []string{"name of parrot", "binomial name"}, []string{"parrot", "binomial"},
		"species of parrots",
		[]Attr{attr("parrot", []string{"Parrot", "Common name"}, "Name"), attr("binomial", []string{"Binomial name", "Scientific name"}, "Species")},
		column(parrotNames, parrotBinomials), 4, 3, profileMedium))

	add(dom("mountains", []string{"north american mountains", "height"}, []string{"mountain", "height"},
		"highest mountains of north america",
		[]Attr{attr("mountain", []string{"Mountain", "Mountain peak", "Peak"}, "Name"), attrHeight, attrCountry},
		column(mountainNames, mountainHeights, mountainCountries), 9, 6, profileMedium))

	add(dom("painkillers", []string{"pain killers", "company"}, []string{"painkiller", "company"},
		"common pain killers and manufacturers",
		[]Attr{attr("painkiller", []string{"Pain killer", "Drug"}, "Name"), attrCompany, attr("side-effect", []string{"Side effects", "Side effect"})},
		column(painKillerNames, painKillerCompanies, painKillerSideEffects), 1, 0, profileClean))

	add(dom("pga", []string{"pga players", "total score"}, []string{"pga-player", "score"},
		"pga championship leaderboard",
		[]Attr{attr("pga-player", []string{"Player", "Golfer"}, "Name"), attr("score", []string{"Total score", "Score"}, "Total")},
		name2("golfer", 14, procCol{kind: procKindNumber, lo: 265, hi: 290}), 9, 4, profileMedium))

	add(dom("ev", []string{"pre-production electric vehicle", "release date"}, []string{"ev-model", "release-date"},
		"upcoming electric vehicles",
		[]Attr{attr("ev-model", []string{"Vehicle"}, "Model"), attrDate},
		name2("ev", 6, procCol{kind: procKindDate, lo: 2011, hi: 2014}), 0, 5, profileBrutal))

	add(dom("shoes", []string{"running shoes model", "company"}, []string{"shoe-model", "company"},
		"popular running shoes",
		[]Attr{attr("shoe-model", []string{"Shoe model", "Model"}, "Name"), attrCompany},
		name2("shoe", 9, procCol{kind: procKindName, words: 1}), 2, 5, profileHard))

	add(dom("discoveries", []string{"science discoveries", "discoverers"}, []string{"discovery", "discoverer"},
		"major scientific discoveries and their discoverers",
		[]Attr{attr("discovery", []string{"Discovery", "Scientific discovery"}, "Name"), attr("discoverer", []string{"Discoverer", "Discovered by", "Scientist"}, "Name")},
		name2("discovery", 13, procCol{kind: procKindName, words: 2}), 11, 3, profileMedium))

	add(dom("mottos", []string{"university", "motto"}, []string{"university", "motto"},
		"university mottos",
		[]Attr{attr("university", []string{"University", "Institution"}, "Name"), attr("motto", []string{"Motto"}, "Text")},
		column(universityNames, universityMottos), 2, 4, profileHard))

	add(dom("us-cities", []string{"us cities", "population"}, []string{"us-city", "population"},
		"largest cities in the united states",
		[]Attr{attr("us-city", []string{"City", "US city"}, "Name"), attrPopulation},
		column(usCityNames, usCityPopulations), 10, 4, profileClean))

	add(dom("pizza", []string{"us pizza store", "annual sales"}, []string{"pizza-chain", "sales"},
		"pizza chains in the united states by sales",
		[]Attr{attr("pizza-chain", []string{"Pizza chain", "Chain"}, "Name"), attr("sales", []string{"Annual sales", "Sales"}, "Total")},
		name2("pizza", 8, procCol{kind: procKindMoney, lo: 120, hi: 7000, suffix: " million"}), 1, 9, profileBrutal))

	add(dom("usa-states-pop", []string{"usa states", "population"}, []string{"us-state", "population"},
		"population of us states",
		[]Attr{attr("us-state", []string{"State", "US state"}, "Name"), attrPopulation},
		column(usStateNames, usStatePopulations), 11, 3, profileClean))

	add(dom("cellphones", []string{"used cellphones", "price"}, []string{"used-phone", "price"},
		"used cellphone price listings",
		[]Attr{attr("used-phone", []string{"Phone"}, "Model"), attrPrice},
		name2("phone", 8, procCol{kind: procKindMoney, lo: 40, hi: 420, suffix: ""}), 0, 7, profileBrutal))

	add(dom("video-games", []string{"video games", "company"}, []string{"video-game", "company"},
		"influential video games and their developers",
		[]Attr{attr("video-game", []string{"Video game", "Game", "Game title"}, "Title"), attrCompany},
		column(videoGameNames, videoGameCompanies), 9, 4, profileMedium))

	add(dom("wimbledon", []string{"wimbledon champions", "year"}, []string{"wimbledon-champion", "year"},
		"wimbledon gentlemen's singles champions",
		[]Attr{attr("wimbledon-champion", []string{"Wimbledon champion", "Champion"}, "Name"), attrYear},
		column(wimbledonChampions, wimbledonYears), 8, 5, profileMedium))

	add(dom("buildings", []string{"world tallest buildings", "height"}, []string{"building", "height"},
		"tallest buildings in the world",
		[]Attr{attr("building", []string{"Building", "Building name"}, "Name"), attrHeight},
		column(buildingNames, buildingHeights), 4, 12, profileBrutal))

	// --- three column queries ------------------------------------------
	add(dom("academy", []string{"academy award category", "winner", "year"}, []string{"award-category", "winner", "year"},
		"academy award winners by category",
		[]Attr{attr("award-category", []string{"Category", "Award category"}, "Name"), attrWinner, attrYear},
		column(awardCategories, awardWinners, awardYears), 7, 9, profileHard))

	add(dom("bittorrent", []string{"bittorrent clients", "license", "cost"}, []string{"bt-client", "license", "cost"},
		"comparison of bittorrent clients",
		[]Attr{attr("bt-client", []string{"Client"}, "Name"), attr("license", []string{"License"}), attr("cost", []string{"Cost"})},
		name2("client", 6, procCol{kind: procKindName, words: 1}, procCol{kind: procKindMoney, lo: 0, hi: 40, suffix: ""}), 0, 0, profileBrutal))

	add(dom("elements", []string{"chemical element", "atomic number", "atomic weight"}, []string{"element", "atomic-number", "atomic-weight"},
		"periodic table of the chemical elements",
		[]Attr{attr("element", []string{"Element", "Chemical element", "Element name"}, "Name"),
			attr("atomic-number", []string{"Atomic number", "Number"}, "No."),
			attr("atomic-weight", []string{"Atomic weight", "Atomic mass", "Standard atomic weight"}, "Weight")},
		column(elementNames, elementNumbers, elementWeights), 10, 2, profileClean))

	add(dom("stocks", []string{"company", "stock ticker", "price"}, []string{"company", "ticker", "price"},
		"stock tickers and prices of public companies",
		[]Attr{attrCompany, attr("ticker", []string{"Stock ticker", "Ticker", "Symbol"}, "Code"), attrPrice},
		name2("corp", 16, procCol{kind: procKindName, words: 1}, procCol{kind: procKindMoney, lo: 8, hi: 900, suffix: ""}), 14, 2, profileClean))

	add(dom("edu-exchange", []string{"educational exchange discipline in US", "number of students", "year"}, []string{"discipline", "student-count", "year"},
		"international students in the united states by discipline",
		[]Attr{attr("discipline", []string{"Discipline", "Field of study"}, "Name"),
			attr("student-count", []string{"Number of students", "Students"}, "Total"), attrYear},
		name2("field", 8, procCol{kind: procKindNumber, lo: 900, hi: 90000, suffix: ""}, procCol{kind: procKindYear, lo: 2004, hi: 2010}), 1, 6, profileBrutal))

	add(dom("fast-cars", []string{"fast cars", "company", "top speed"}, []string{"car", "company", "top-speed"},
		"fastest production cars in the world",
		[]Attr{attr("car", []string{"Car", "Car model"}, "Model"), attrCompany,
			attr("top-speed", []string{"Top speed", "Top speed km/h", "Max speed"}, "Speed")},
		column(fastCarNames, fastCarCompanies, fastCarSpeeds), 9, 4, profileMedium))

	add(dom("foods", []string{"food", "fat", "protein"}, []string{"food", "fat", "protein"},
		"nutrition facts fat and protein per 100g",
		[]Attr{attr("food", []string{"Food", "Food item"}, "Name"),
			attr("fat", []string{"Fat", "Fat g", "Total fat"}, "Value"),
			attr("protein", []string{"Protein", "Protein g"}, "Value")},
		column(foodNames, foodFats, foodProteins), 12, 3, profileClean))

	add(dom("ipods", []string{"ipod models", "release date", "price"}, []string{"ipod-model", "release-date", "price"},
		"apple ipod model history",
		[]Attr{attr("ipod-model", []string{"iPod model", "Model"}, "Name"), attrDate, attrPrice},
		column(ipodModels, ipodDates, ipodPrices), 5, 7, profileHard))

	add(dom("explorers", []string{"name of explorers", "nationality", "areas explored"}, []string{"explorer", "nationality", "areas"},
		"list of explorers and their explorations",
		[]Attr{attr("explorer", []string{"Name of explorer", "Explorer", "Who explorer"}, "Name"),
			attr("nationality", []string{"Nationality"}, "Origin"),
			attr("areas", []string{"Main areas explored", "Areas explored", "Exploration"}, "Area")},
		column(explorerNames, explorerNationalities, explorerAreas), 6, 2, profileMedium))

	add(dom("nba", []string{"NBA Match", "date", "winner"}, []string{"nba-match", "date", "winner"},
		"nba match results",
		[]Attr{attr("nba-match", []string{"Match", "Game"}, "Name"),
			attr("date", []string{"Date", "Match date"}, "Day"), attrWinner},
		name2("match", 13, procCol{kind: procKindDate, lo: 2008, hi: 2011}, procCol{kind: procKindName, words: 1}), 10, 3, profileMedium))

	add(dom("jedi-novels", []string{"new Jedi Order novels", "authors", "year"}, []string{"jedi-novel", "author", "year"},
		"new jedi order novel series",
		[]Attr{attr("jedi-novel", []string{"Novel", "Novel title"}, "Title"), attrAuthor, attrYear},
		name2("novel", 10, procCol{kind: procKindName, words: 2}, procCol{kind: procKindYear, lo: 1999, hi: 2003}), 8, 1, profileClean))

	add(dom("nobel", []string{"Nobel prize winners", "field", "year"}, []string{"nobel-winner", "field", "year"},
		"nobel prize winners by field and year",
		[]Attr{attr("nobel-winner", []string{"Nobel prize winner", "Winner", "Laureate"}, "Name"),
			attr("field", []string{"Field", "Prize field"}, "Category"), attrYear},
		column(nobelWinnerNames, nobelFields, nobelYears), 4, 2, profileHard))

	add(dom("olympus", []string{"Olympus digital SLR Models", "resolution", "price"}, []string{"camera-model", "resolution", "price"},
		"olympus digital slr cameras",
		[]Attr{attr("camera-model", []string{"Camera model", "Model"}, "Name"),
			attr("resolution", []string{"Resolution", "Megapixels"}, "Value"), attrPrice},
		name2("camera", 7, procCol{kind: procKindNumber, lo: 8, hi: 24, suffix: " MP"}, procCol{kind: procKindMoney, lo: 400, hi: 1800, suffix: ""}), 1, 4, profileBrutal))

	add(dom("president-library", []string{"president", "library name", "location"}, []string{"president", "library", "location"},
		"presidential libraries in the united states",
		[]Attr{attr("president", []string{"President"}, "Name"),
			attr("library", []string{"Library name", "Library"}, "Name"),
			attr("location", []string{"Location", "City"}, "Place")},
		column(presidentNames, presidentLibraries, presidentLibraryLocations), 1, 5, profileBrutal))

	add(dom("religions", []string{"religion", "number of followers", "country of origin"}, []string{"religion", "followers", "origin-country"},
		"major world religions by followers",
		[]Attr{attr("religion", []string{"Religion"}, "Name"),
			attr("followers", []string{"Number of followers", "Followers", "Adherents"}, "Total"),
			attr("origin-country", []string{"Country of origin", "Origin", "Place of origin"}, "Region")},
		column(religionNames, religionFollowers, religionOrigins), 9, 3, profileMedium))

	add(dom("star-trek", []string{"Star Trek novels", "authors", "release date"}, []string{"trek-novel", "author", "release-date"},
		"star trek novel publications",
		[]Attr{attr("trek-novel", []string{"Novel", "Novel title"}, "Title"), attrAuthor, attrDate},
		column(trekNovelTitles, trekNovelAuthors, trekNovelDates), 4, 1, profileClean))

	add(dom("states-capitals", []string{"us states", "capitals", "largest cities"}, []string{"us-state", "capital", "largest-city"},
		"us states their capitals and largest cities",
		[]Attr{attr("us-state", []string{"State", "US state"}, "Name"),
			attr("capital", []string{"Capital", "State capital"}, "City"),
			attr("largest-city", []string{"Largest city", "Biggest city"}, "City")},
		column(usStateNames, usStateCapitals, usStateLargestCities), 9, 4, profileMedium))

	return ds
}
