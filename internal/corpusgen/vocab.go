package corpusgen

// Hand-curated entity data backing the prominent workload domains. Each
// block is a set of aligned columns: element i of every slice describes
// the same entity. Real-world values keep the examples and experiments
// legible; domains without curated data fall back to procedural entities
// (entities.go).

var countryNames = []string{
	"France", "Germany", "Italy", "Spain", "Portugal", "Netherlands",
	"Belgium", "Austria", "Switzerland", "Sweden", "Norway", "Denmark",
	"Finland", "Poland", "Greece", "Ireland", "United Kingdom", "Iceland",
	"United States", "Canada", "Mexico", "Brazil", "Argentina", "Chile",
	"Peru", "Colombia", "Japan", "China", "India", "South Korea",
	"Indonesia", "Thailand", "Vietnam", "Malaysia", "Philippines",
	"Australia", "New Zealand", "South Africa", "Egypt", "Nigeria",
	"Kenya", "Morocco", "Turkey", "Russia", "Ukraine", "Saudi Arabia",
	"Israel", "Iran", "Pakistan", "Bangladesh",
}

var countryCurrencies = []string{
	"Euro", "Euro", "Euro", "Euro", "Euro", "Euro",
	"Euro", "Euro", "Swiss franc", "Swedish krona", "Norwegian krone", "Danish krone",
	"Euro", "Zloty", "Euro", "Euro", "Pound sterling", "Icelandic krona",
	"US dollar", "Canadian dollar", "Mexican peso", "Real", "Argentine peso", "Chilean peso",
	"Sol", "Colombian peso", "Yen", "Renminbi", "Indian rupee", "Won",
	"Rupiah", "Baht", "Dong", "Ringgit", "Philippine peso",
	"Australian dollar", "New Zealand dollar", "Rand", "Egyptian pound", "Naira",
	"Kenyan shilling", "Moroccan dirham", "Turkish lira", "Ruble", "Hryvnia", "Riyal",
	"Shekel", "Iranian rial", "Pakistani rupee", "Taka",
}

var countryPopulations = []string{
	"65 million", "83 million", "60 million", "47 million", "10 million", "17 million",
	"11 million", "9 million", "8.6 million", "10.4 million", "5.4 million", "5.8 million",
	"5.5 million", "38 million", "10.7 million", "5 million", "67 million", "370 thousand",
	"331 million", "38 million", "128 million", "212 million", "45 million", "19 million",
	"33 million", "50 million", "126 million", "1402 million", "1380 million", "51 million",
	"273 million", "69 million", "97 million", "32 million", "109 million",
	"25 million", "5 million", "59 million", "102 million", "206 million",
	"53 million", "36 million", "84 million", "144 million", "44 million", "34 million",
	"9 million", "83 million", "220 million", "164 million",
}

var countryGDPs = []string{
	"2716 billion", "3846 billion", "1888 billion", "1281 billion", "228 billion", "913 billion",
	"521 billion", "433 billion", "748 billion", "541 billion", "362 billion", "356 billion",
	"269 billion", "594 billion", "189 billion", "418 billion", "2707 billion", "21 billion",
	"20937 billion", "1643 billion", "1076 billion", "1444 billion", "389 billion", "252 billion",
	"202 billion", "271 billion", "5065 billion", "14722 billion", "2623 billion", "1630 billion",
	"1058 billion", "501 billion", "271 billion", "336 billion", "361 billion",
	"1392 billion", "212 billion", "301 billion", "363 billion", "432 billion",
	"98 billion", "112 billion", "720 billion", "1483 billion", "155 billion", "700 billion",
	"401 billion", "231 billion", "263 billion", "324 billion",
}

var countryUSDRates = []string{
	"0.93", "0.93", "0.93", "0.93", "0.93", "0.93",
	"0.93", "0.93", "0.91", "10.5", "10.6", "6.9",
	"0.93", "4.0", "0.93", "0.93", "0.79", "138",
	"1.00", "1.36", "17.1", "4.9", "350", "930",
	"3.7", "3900", "150", "7.2", "83", "1330",
	"15600", "35", "24500", "4.7", "56",
	"1.52", "1.64", "18.6", "31", "780",
	"129", "10.1", "29", "92", "37", "3.75",
	"3.7", "42000", "278", "110",
}

var countryFuel = []string{
	"1.7 million bbl", "2.3 million bbl", "1.2 million bbl", "1.2 million bbl", "0.23 million bbl", "0.9 million bbl",
	"0.6 million bbl", "0.27 million bbl", "0.22 million bbl", "0.3 million bbl", "0.2 million bbl", "0.16 million bbl",
	"0.2 million bbl", "0.65 million bbl", "0.3 million bbl", "0.15 million bbl", "1.6 million bbl", "0.02 million bbl",
	"19.7 million bbl", "2.4 million bbl", "2.0 million bbl", "3.0 million bbl", "0.8 million bbl", "0.4 million bbl",
	"0.25 million bbl", "0.35 million bbl", "3.7 million bbl", "14.2 million bbl", "4.7 million bbl", "2.6 million bbl",
	"1.7 million bbl", "1.3 million bbl", "0.5 million bbl", "0.7 million bbl", "0.43 million bbl",
	"1.0 million bbl", "0.17 million bbl", "0.6 million bbl", "0.8 million bbl", "0.45 million bbl",
	"0.11 million bbl", "0.3 million bbl", "1.0 million bbl", "3.2 million bbl", "0.22 million bbl", "3.2 million bbl",
	"0.23 million bbl", "1.8 million bbl", "0.5 million bbl", "0.12 million bbl",
}

var countryDomains = []string{
	".fr", ".de", ".it", ".es", ".pt", ".nl",
	".be", ".at", ".ch", ".se", ".no", ".dk",
	".fi", ".pl", ".gr", ".ie", ".uk", ".is",
	".us", ".ca", ".mx", ".br", ".ar", ".cl",
	".pe", ".co", ".jp", ".cn", ".in", ".kr",
	".id", ".th", ".vn", ".my", ".ph",
	".au", ".nz", ".za", ".eg", ".ng",
	".ke", ".ma", ".tr", ".ru", ".ua", ".sa",
	".il", ".ir", ".pk", ".bd",
}

var explorerNames = []string{
	"Vasco da Gama", "Christopher Columbus", "Abel Tasman", "Ferdinand Magellan",
	"James Cook", "Marco Polo", "Alexander Mackenzie", "Hernan Cortes",
	"Francisco Pizarro", "John Cabot", "Jacques Cartier", "Henry Hudson",
	"David Livingstone", "Roald Amundsen", "Ernest Shackleton", "Zheng He",
	"Ibn Battuta", "Leif Erikson", "Amerigo Vespucci", "Bartolomeu Dias",
}

var explorerNationalities = []string{
	"Portuguese", "Italian", "Dutch", "Portuguese",
	"British", "Italian", "British", "Spanish",
	"Spanish", "Italian", "French", "English",
	"Scottish", "Norwegian", "Irish", "Chinese",
	"Moroccan", "Norse", "Italian", "Portuguese",
}

var explorerAreas = []string{
	"Sea route to India", "Caribbean", "Oceania", "Pacific circumnavigation",
	"Pacific Ocean", "Silk Road", "Canada", "Mexico",
	"Peru", "North America coast", "St Lawrence River", "Hudson Bay",
	"Central Africa", "South Pole", "Antarctica", "Indian Ocean",
	"North Africa and Asia", "Vinland", "South America coast", "Cape of Good Hope",
}

var mountainNames = []string{
	"Denali", "Mount Logan", "Pico de Orizaba", "Mount Saint Elias",
	"Popocatepetl", "Mount Foraker", "Mount Lucania", "Iztaccihuatl",
	"King Peak", "Mount Bona", "Mount Steele", "Mount Blackburn",
	"Mount Sanford", "Mount Wood", "Mount Vancouver", "Mount Churchill",
	"Mount Fairweather", "Mount Hubbard", "Mount Bear", "Mount Walsh",
	"Mount Whitney", "Mount Elbert", "Mount Rainier", "Mount Shasta", "Pikes Peak",
}

var mountainHeights = []string{
	"6190", "5959", "5636", "5489",
	"5426", "5304", "5260", "5230",
	"5173", "5044", "5073", "4996",
	"4949", "4842", "4812", "4766",
	"4671", "4577", "4520", "4507",
	"4421", "4401", "4392", "4322", "4302",
}

var mountainCountries = []string{
	"United States", "Canada", "Mexico", "United States",
	"Mexico", "United States", "Canada", "Mexico",
	"Canada", "United States", "Canada", "United States",
	"United States", "Canada", "Canada", "United States",
	"United States", "Canada", "United States", "Canada",
	"United States", "United States", "United States", "United States", "United States",
}

var dogBreedNames = []string{
	"Labrador Retriever", "German Shepherd", "Golden Retriever", "Beagle",
	"Bulldog", "Poodle", "Rottweiler", "Dachshund", "Boxer", "Great Dane",
	"Siberian Husky", "Doberman Pinscher", "Shih Tzu", "Border Collie",
	"Chihuahua", "Pomeranian", "Saint Bernard", "Akita", "Dalmatian",
	"Basset Hound", "Greyhound", "Mastiff", "Samoyed", "Whippet",
}

var dogBreedOrigins = []string{
	"Canada", "Germany", "United Kingdom", "United Kingdom",
	"United Kingdom", "France", "Germany", "Germany", "Germany", "Germany",
	"Russia", "Germany", "China", "United Kingdom",
	"Mexico", "Germany", "Switzerland", "Japan", "Croatia",
	"France", "United Kingdom", "United Kingdom", "Russia", "United Kingdom",
}

var elementNames = []string{
	"Hydrogen", "Helium", "Lithium", "Beryllium", "Boron", "Carbon",
	"Nitrogen", "Oxygen", "Fluorine", "Neon", "Sodium", "Magnesium",
	"Aluminium", "Silicon", "Phosphorus", "Sulfur", "Chlorine", "Argon",
	"Potassium", "Calcium", "Scandium", "Titanium", "Vanadium", "Chromium",
	"Manganese", "Iron", "Cobalt", "Nickel", "Copper", "Zinc",
}

var elementNumbers = []string{
	"1", "2", "3", "4", "5", "6", "7", "8", "9", "10",
	"11", "12", "13", "14", "15", "16", "17", "18", "19", "20",
	"21", "22", "23", "24", "25", "26", "27", "28", "29", "30",
}

var elementWeights = []string{
	"1.008", "4.0026", "6.94", "9.0122", "10.81", "12.011",
	"14.007", "15.999", "18.998", "20.180", "22.990", "24.305",
	"26.982", "28.085", "30.974", "32.06", "35.45", "39.948",
	"39.098", "40.078", "44.956", "47.867", "50.942", "51.996",
	"54.938", "55.845", "58.933", "58.693", "63.546", "65.38",
}

var usStateNames = []string{
	"Alabama", "Alaska", "Arizona", "Arkansas", "California", "Colorado",
	"Connecticut", "Delaware", "Florida", "Georgia", "Hawaii", "Idaho",
	"Illinois", "Indiana", "Iowa", "Kansas", "Kentucky", "Louisiana",
	"Maine", "Maryland", "Massachusetts", "Michigan", "Minnesota",
	"Mississippi", "Missouri", "Montana", "Nebraska", "Nevada",
	"New York", "Texas",
}

var usStateCapitals = []string{
	"Montgomery", "Juneau", "Phoenix", "Little Rock", "Sacramento", "Denver",
	"Hartford", "Dover", "Tallahassee", "Atlanta", "Honolulu", "Boise",
	"Springfield", "Indianapolis", "Des Moines", "Topeka", "Frankfort", "Baton Rouge",
	"Augusta", "Annapolis", "Boston", "Lansing", "Saint Paul",
	"Jackson", "Jefferson City", "Helena", "Lincoln", "Carson City",
	"Albany", "Austin",
}

var usStateLargestCities = []string{
	"Birmingham", "Anchorage", "Phoenix", "Little Rock", "Los Angeles", "Denver",
	"Bridgeport", "Wilmington", "Jacksonville", "Atlanta", "Honolulu", "Boise",
	"Chicago", "Indianapolis", "Des Moines", "Wichita", "Louisville", "New Orleans",
	"Portland", "Baltimore", "Boston", "Detroit", "Minneapolis",
	"Jackson", "Kansas City", "Billings", "Omaha", "Las Vegas",
	"New York City", "Houston",
}

var usStatePopulations = []string{
	"5.0 million", "0.73 million", "7.2 million", "3.0 million", "39.5 million", "5.8 million",
	"3.6 million", "0.99 million", "21.5 million", "10.7 million", "1.46 million", "1.84 million",
	"12.8 million", "6.8 million", "3.2 million", "2.9 million", "4.5 million", "4.7 million",
	"1.36 million", "6.2 million", "7.0 million", "10.1 million", "5.7 million",
	"2.96 million", "6.15 million", "1.08 million", "1.96 million", "3.1 million",
	"20.2 million", "29.1 million",
}

var usCityNames = []string{
	"New York City", "Los Angeles", "Chicago", "Houston", "Phoenix",
	"Philadelphia", "San Antonio", "San Diego", "Dallas", "San Jose",
	"Austin", "Jacksonville", "Fort Worth", "Columbus", "Charlotte",
	"San Francisco", "Indianapolis", "Seattle", "Denver", "Boston",
}

var usCityPopulations = []string{
	"8.8 million", "3.9 million", "2.7 million", "2.3 million", "1.6 million",
	"1.6 million", "1.4 million", "1.4 million", "1.3 million", "1.0 million",
	"0.96 million", "0.95 million", "0.92 million", "0.90 million", "0.87 million",
	"0.87 million", "0.88 million", "0.74 million", "0.72 million", "0.68 million",
}

var australianCityNames = []string{
	"Sydney", "Melbourne", "Brisbane", "Perth", "Adelaide", "Gold Coast",
	"Canberra", "Newcastle", "Wollongong", "Hobart", "Geelong", "Townsville",
}

var australianCityAreas = []string{
	"12368", "9993", "15826", "6418", "3258", "1334",
	"814", "262", "714", "1696", "1240", "3736",
}

var movieNames = []string{
	"Avatar", "Titanic", "The Avengers", "Jurassic Park", "The Lion King",
	"Frozen", "Iron Man", "The Dark Knight", "Forrest Gump", "Gladiator",
	"Inception", "Interstellar", "The Matrix", "Casablanca", "Jaws",
	"Star Wars", "E.T.", "Rocky", "Alien", "Toy Story",
}

var movieGrosses = []string{
	"2847 million", "2201 million", "1519 million", "1033 million", "968 million",
	"1280 million", "585 million", "1004 million", "678 million", "460 million",
	"836 million", "701 million", "463 million", "3.7 million", "470 million",
	"775 million", "792 million", "225 million", "104 million", "373 million",
}

var bondFilmNames = []string{
	"Dr. No", "From Russia with Love", "Goldfinger", "Thunderball",
	"You Only Live Twice", "On Her Majesty's Secret Service", "Diamonds Are Forever",
	"Live and Let Die", "The Man with the Golden Gun", "The Spy Who Loved Me",
	"Moonraker", "For Your Eyes Only", "Octopussy", "GoldenEye", "Casino Royale",
}

var bondFilmYears = []string{
	"1962", "1963", "1964", "1965",
	"1967", "1969", "1971",
	"1973", "1974", "1977",
	"1979", "1981", "1983", "1995", "2006",
}

var wrestlerNames = []string{
	"Hulk Hogan", "Ric Flair", "The Undertaker", "Stone Cold Steve Austin",
	"The Rock", "Triple H", "Shawn Michaels", "Bret Hart", "Randy Savage",
	"Andre the Giant", "John Cena", "Randy Orton", "Kurt Angle", "Edge",
	"Rey Mysterio", "Chris Jericho", "Big Show", "Kane", "Batista", "Sting",
}

var painKillerNames = []string{
	"Aspirin", "Ibuprofen", "Paracetamol", "Naproxen", "Diclofenac",
	"Celecoxib", "Tramadol", "Codeine", "Morphine", "Oxycodone",
}

var painKillerCompanies = []string{
	"Bayer", "Pfizer", "GlaxoSmithKline", "Roche", "Novartis",
	"Pfizer", "Grunenthal", "Sanofi", "Purdue", "Purdue",
}

var painKillerSideEffects = []string{
	"stomach bleeding", "nausea", "liver damage", "heartburn", "dizziness",
	"headache", "drowsiness", "constipation", "sedation", "dependence",
}

var bankNames = []string{
	"Chase", "Bank of America", "Wells Fargo", "Citibank", "HSBC",
	"Barclays", "Deutsche Bank", "BNP Paribas", "Santander", "ING",
	"UBS", "Credit Suisse",
}

var bankRates = []string{
	"0.01%", "0.03%", "0.15%", "0.50%", "1.20%",
	"0.75%", "0.60%", "0.90%", "1.10%", "1.50%",
	"0.25%", "0.35%",
}

var fastCarNames = []string{
	"Bugatti Veyron", "Koenigsegg Agera", "Hennessey Venom GT", "SSC Ultimate Aero",
	"McLaren F1", "Pagani Huayra", "Lamborghini Aventador", "Ferrari LaFerrari",
	"Porsche 918 Spyder", "Tesla Roadster", "Jaguar XJ220", "Bugatti Chiron",
	"Aston Martin One-77", "Zenvo ST1",
}

var fastCarCompanies = []string{
	"Bugatti", "Koenigsegg", "Hennessey", "SSC",
	"McLaren", "Pagani", "Lamborghini", "Ferrari",
	"Porsche", "Tesla", "Jaguar", "Bugatti",
	"Aston Martin", "Zenvo",
}

var fastCarSpeeds = []string{
	"431", "418", "435", "412",
	"386", "383", "350", "352",
	"345", "402", "341", "420",
	"354", "375",
}

var foodNames = []string{
	"Cheddar cheese", "Whole milk", "Butter", "Olive oil", "White bread",
	"Brown rice", "Chicken breast", "Salmon", "Eggs", "Almonds",
	"Peanut butter", "Yogurt", "Avocado", "Banana", "Apple",
	"Broccoli", "Potato", "Lentils",
}

var foodFats = []string{
	"33", "3.3", "81", "100", "3.2",
	"0.9", "3.6", "13", "11", "49",
	"50", "3.3", "15", "0.3", "0.2",
	"0.4", "0.1", "0.4",
}

var foodProteins = []string{
	"25", "3.2", "0.9", "0", "9",
	"2.6", "31", "20", "13", "21",
	"25", "3.5", "2", "1.1", "0.3",
	"2.8", "2", "9",
}

var religionNames = []string{
	"Christianity", "Islam", "Hinduism", "Buddhism", "Sikhism",
	"Judaism", "Bahai Faith", "Jainism", "Shinto", "Taoism",
}

var religionFollowers = []string{
	"2.4 billion", "1.9 billion", "1.2 billion", "506 million", "26 million",
	"15 million", "6 million", "4.5 million", "3 million", "9 million",
}

var religionOrigins = []string{
	"Judea", "Arabia", "India", "India", "India",
	"Judea", "Iran", "India", "Japan", "China",
}

var metalBandNames = []string{
	"Mayhem", "Darkthrone", "Burzum", "Emperor", "Immortal",
	"Gorgoroth", "Satyricon", "Bathory", "Venom", "Marduk",
	"Dark Funeral", "Watain",
}

var metalBandCountries = []string{
	"Norway", "Norway", "Norway", "Norway", "Norway",
	"Norway", "Norway", "Sweden", "United Kingdom", "Sweden",
	"Sweden", "Sweden",
}

var awardCategories = []string{
	"Best Picture", "Best Director", "Best Actor", "Best Actress",
	"Best Supporting Actor", "Best Supporting Actress", "Best Original Screenplay",
	"Best Adapted Screenplay", "Best Cinematography", "Best Film Editing",
	"Best Original Score", "Best Visual Effects",
}

var awardWinners = []string{
	"The Artist", "Michel Hazanavicius", "Jean Dujardin", "Meryl Streep",
	"Christopher Plummer", "Octavia Spencer", "Woody Allen",
	"Alexander Payne", "Robert Richardson", "Kirk Baxter",
	"Ludovic Bource", "Rob Legato",
}

var awardYears = []string{
	"2011", "2011", "2011", "2011",
	"2011", "2011", "2011",
	"2011", "2011", "2011",
	"2011", "2011",
}

var wimbledonChampions = []string{
	"Roger Federer", "Rafael Nadal", "Novak Djokovic", "Andy Murray",
	"Pete Sampras", "Andre Agassi", "Boris Becker", "Stefan Edberg",
	"Bjorn Borg", "John McEnroe", "Jimmy Connors", "Goran Ivanisevic",
	"Lleyton Hewitt", "Michael Stich", "Richard Krajicek",
}

var wimbledonYears = []string{
	"2009", "2010", "2011", "2013",
	"2000", "1992", "1989", "1990",
	"1980", "1984", "1982", "2001",
	"2002", "1991", "1996",
}

var fifaWinners = []string{
	"Uruguay", "Italy", "Germany", "Brazil", "England",
	"Argentina", "France", "Spain", "Brazil", "Italy", "Germany", "France",
}

var fifaYears = []string{
	"1930", "1934", "1954", "1958", "1966",
	"1978", "1998", "2010", "2002", "2006", "2014", "2018",
}

var videoGameNames = []string{
	"The Legend of Zelda", "Super Mario Bros", "Tetris", "Minecraft",
	"Grand Theft Auto V", "The Sims", "Pac-Man", "Doom", "Half-Life",
	"Halo", "World of Warcraft", "Street Fighter II", "Final Fantasy VII",
	"Portal", "StarCraft",
}

var videoGameCompanies = []string{
	"Nintendo", "Nintendo", "Alexey Pajitnov", "Mojang",
	"Rockstar Games", "Electronic Arts", "Namco", "id Software", "Valve",
	"Bungie", "Blizzard", "Capcom", "Square",
	"Valve", "Blizzard",
}

var windowsProducts = []string{
	"Windows 95", "Windows 98", "Windows 2000", "Windows ME",
	"Windows XP", "Windows Vista", "Windows 7", "Windows 8",
	"Windows Server 2003", "Windows Server 2008",
}

var windowsDates = []string{
	"August 1995", "June 1998", "February 2000", "September 2000",
	"October 2001", "January 2007", "October 2009", "October 2012",
	"April 2003", "February 2008",
}

var ipodModels = []string{
	"iPod Classic", "iPod Mini", "iPod Nano", "iPod Shuffle",
	"iPod Touch", "iPod Photo", "iPod Video", "iPod Nano 2nd gen",
	"iPod Touch 4th gen", "iPod Shuffle 3rd gen",
}

var ipodDates = []string{
	"October 2001", "January 2004", "September 2005", "January 2005",
	"September 2007", "October 2004", "October 2005", "September 2006",
	"September 2010", "March 2009",
}

var ipodPrices = []string{
	"399", "249", "199", "99",
	"299", "499", "299", "149",
	"229", "79",
}

var buildingNames = []string{
	"Burj Khalifa", "Shanghai Tower", "Abraj Al-Bait", "Ping An Finance Center",
	"Lotte World Tower", "One World Trade Center", "Guangzhou CTF Centre",
	"Taipei 101", "Shanghai World Financial Center", "Petronas Towers",
	"Empire State Building", "Willis Tower", "Zifeng Tower", "KK100",
	"International Commerce Centre",
}

var buildingHeights = []string{
	"828", "632", "601", "599",
	"554", "541", "530",
	"508", "492", "452",
	"443", "442", "450", "442",
	"484",
}

var nobelWinnerNames = []string{
	"Marie Curie", "Albert Einstein", "Niels Bohr", "Werner Heisenberg",
	"Ernest Rutherford", "Linus Pauling", "Francis Crick", "James Watson",
	"Richard Feynman", "Max Planck", "Erwin Schrodinger", "Paul Dirac",
	"Enrico Fermi", "Dorothy Hodgkin", "Frederick Sanger",
}

var nobelFields = []string{
	"Physics", "Physics", "Physics", "Physics",
	"Chemistry", "Chemistry", "Medicine", "Medicine",
	"Physics", "Physics", "Physics", "Physics",
	"Physics", "Chemistry", "Chemistry",
}

var nobelYears = []string{
	"1903", "1921", "1922", "1932",
	"1908", "1954", "1962", "1962",
	"1965", "1918", "1933", "1933",
	"1938", "1964", "1958",
}

var moonPhases = []string{
	"New Moon", "Waxing Crescent", "First Quarter", "Waxing Gibbous",
	"Full Moon", "Waning Gibbous", "Last Quarter", "Waning Crescent",
}

var parrotNames = []string{
	"African Grey", "Budgerigar", "Cockatiel", "Scarlet Macaw",
	"Blue-and-yellow Macaw", "Sun Conure", "Eclectus", "Kakapo",
	"Rainbow Lorikeet", "Galah",
}

var parrotBinomials = []string{
	"Psittacus erithacus", "Melopsittacus undulatus", "Nymphicus hollandicus", "Ara macao",
	"Ara ararauna", "Aratinga solstitialis", "Eclectus roratus", "Strigops habroptilus",
	"Trichoglossus moluccanus", "Eolophus roseicapilla",
}

var cheeseNames = []string{
	"Cheddar", "Brie", "Gouda", "Parmesan", "Roquefort", "Feta",
	"Mozzarella", "Camembert", "Manchego", "Gruyere", "Stilton", "Halloumi",
}

var cheeseCountries = []string{
	"United Kingdom", "France", "Netherlands", "Italy", "France", "Greece",
	"Italy", "France", "Spain", "Switzerland", "United Kingdom", "Cyprus",
}

var cheeseMilks = []string{
	"Cow", "Cow", "Cow", "Cow", "Sheep", "Sheep",
	"Buffalo", "Cow", "Sheep", "Cow", "Cow", "Goat",
}

var bookTitles = []string{
	"To Kill a Mockingbird", "The Great Gatsby", "The Catcher in the Rye",
	"Of Mice and Men", "The Grapes of Wrath", "Beloved", "Moby Dick",
	"The Scarlet Letter", "Gone with the Wind", "On the Road",
	"The Sun Also Rises", "Invisible Man",
}

var bookAuthors = []string{
	"Harper Lee", "F. Scott Fitzgerald", "J.D. Salinger",
	"John Steinbeck", "John Steinbeck", "Toni Morrison", "Herman Melville",
	"Nathaniel Hawthorne", "Margaret Mitchell", "Jack Kerouac",
	"Ernest Hemingway", "Ralph Ellison",
}

var globeWinners = []string{
	"The Social Network", "Avatar", "Slumdog Millionaire", "Atonement",
	"Babel", "Brokeback Mountain", "The Aviator", "The Hours",
	"A Beautiful Mind", "Gladiator", "American Beauty", "Titanic",
	"The Descendants", "Boyhood",
}

var globeYears = []string{
	"2011", "2010", "2009", "2008",
	"2007", "2006", "2005", "2003",
	"2002", "2001", "2000", "1998",
	"2012", "2015",
}

var mlbWinners = []string{
	"New York Yankees", "Boston Red Sox", "St. Louis Cardinals",
	"San Francisco Giants", "Philadelphia Phillies", "Chicago White Sox",
	"Florida Marlins", "Anaheim Angels", "Arizona Diamondbacks",
	"Atlanta Braves",
}

var mlbYears = []string{
	"2009", "2007", "2006",
	"2010", "2008", "2005",
	"2003", "2002", "2001",
	"1995",
}

var presidentNames = []string{
	"Franklin D. Roosevelt", "Harry S. Truman", "Dwight D. Eisenhower",
	"John F. Kennedy", "Lyndon B. Johnson", "Richard Nixon",
	"Gerald Ford", "Jimmy Carter", "Ronald Reagan", "George H. W. Bush",
	"Bill Clinton", "George W. Bush",
}

var presidentLibraries = []string{
	"Roosevelt Presidential Library", "Truman Presidential Library", "Eisenhower Presidential Library",
	"Kennedy Presidential Library", "Johnson Presidential Library", "Nixon Presidential Library",
	"Ford Presidential Library", "Carter Presidential Library", "Reagan Presidential Library", "Bush Presidential Library",
	"Clinton Presidential Center", "Bush Presidential Center",
}

var presidentLibraryLocations = []string{
	"Hyde Park", "Independence", "Abilene",
	"Boston", "Austin", "Yorba Linda",
	"Ann Arbor", "Atlanta", "Simi Valley", "College Station",
	"Little Rock", "Dallas",
}

var universityNames = []string{
	"Harvard University", "Yale University", "Princeton University",
	"Stanford University", "Oxford University", "Cambridge University",
	"MIT", "Columbia University", "University of Chicago", "Cornell University",
}

var universityMottos = []string{
	"Veritas", "Lux et veritas", "Dei sub numine viget",
	"Die Luft der Freiheit weht", "Dominus illuminatio mea", "Hinc lucem et pocula sacra",
	"Mens et manus", "In lumine tuo videbimus lumen", "Crescat scientia vita excolatur", "I would found an institution",
}

var trekNovelTitles = []string{
	"Spock Must Die", "The Entropy Effect", "The Wounded Sky",
	"My Enemy My Ally", "Yesterdays Son", "Spocks World",
	"Prime Directive", "The Final Reflection", "How Much for Just the Planet",
	"Imzadi",
}

var trekNovelAuthors = []string{
	"James Blish", "Vonda McIntyre", "Diane Duane",
	"Diane Duane", "A.C. Crispin", "Diane Duane",
	"Judith Reeves-Stevens", "John M. Ford", "John M. Ford",
	"Peter David",
}

var trekNovelDates = []string{
	"February 1970", "June 1981", "December 1983",
	"July 1984", "August 1983", "September 1988",
	"September 1990", "November 1984", "October 1987",
	"August 1992",
}
