package corpusgen

import (
	"math/rand"
	"strings"
	"testing"

	"wwt/internal/extract"
)

func TestDomainsCoverWorkload(t *testing.T) {
	ds := Domains(rand.New(rand.NewSource(1)))
	if len(ds) != 59 {
		t.Fatalf("domains = %d, want 59 (one per Table 1 query)", len(ds))
	}
	single, double, triple := 0, 0, 0
	names := map[string]bool{}
	for _, d := range ds {
		if names[d.Name] {
			t.Errorf("duplicate domain name %q", d.Name)
		}
		names[d.Name] = true
		if len(d.Query) != len(d.Keys) {
			t.Errorf("%s: query/keys length mismatch", d.Name)
		}
		switch len(d.Query) {
		case 1:
			single++
		case 2:
			double++
		case 3:
			triple++
		default:
			t.Errorf("%s: bad query arity %d", d.Name, len(d.Query))
		}
		// Every query key must exist among the domain's attributes.
		for _, k := range d.Keys {
			if d.attrIndex(k) < 0 {
				t.Errorf("%s: key %q has no attribute", d.Name, k)
			}
		}
		if len(d.Rows) == 0 {
			t.Errorf("%s: no entities", d.Name)
		}
		for _, row := range d.Rows {
			if len(row) != len(d.Attrs) {
				t.Fatalf("%s: row width %d != attrs %d", d.Name, len(row), len(d.Attrs))
			}
		}
	}
	// Paper's split: 5 single, 37 two-column, 17 three-column.
	if single != 5 || double != 37 || triple != 17 {
		t.Errorf("query arity split = %d/%d/%d, want 5/37/17", single, double, triple)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 42})
	b := Generate(Config{Seed: 42})
	if len(a.Pages) != len(b.Pages) {
		t.Fatalf("page counts differ: %d vs %d", len(a.Pages), len(b.Pages))
	}
	for i := range a.Pages {
		if a.Pages[i].HTML != b.Pages[i].HTML {
			t.Fatalf("page %d differs between identical seeds", i)
		}
	}
	c := Generate(Config{Seed: 43})
	same := true
	for i := range a.Pages {
		if i < len(c.Pages) && a.Pages[i].HTML != c.Pages[i].HTML {
			same = false
			break
		}
	}
	if same && len(a.Pages) == len(c.Pages) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestGroundTruthMatchesExtraction(t *testing.T) {
	c := Generate(Config{Seed: 7, Scale: 0.5})
	tables := c.ExtractAll(extract.NewOptions())
	if len(tables) == 0 {
		t.Fatal("no tables extracted")
	}
	extracted := map[string]int{}
	for _, tb := range tables {
		extracted[tb.ID] = tb.NumCols()
	}
	found, missing := 0, 0
	for id, keys := range c.Truth {
		ncols, ok := extracted[id]
		if !ok {
			missing++
			continue
		}
		found++
		if ncols != len(keys) {
			t.Errorf("table %s: extracted %d cols, truth has %d keys", id, ncols, len(keys))
		}
	}
	if found == 0 {
		t.Fatal("no ground-truth tables were extracted")
	}
	// The extractor may reject a few generated tables (very small ones),
	// but the overwhelming majority must round-trip.
	if missing*10 > found {
		t.Errorf("too many truth tables missing after extraction: %d missing vs %d found", missing, found)
	}
}

func TestJunkTablesFiltered(t *testing.T) {
	c := Generate(Config{Seed: 7, Scale: 0.5})
	tables := c.ExtractAll(extract.NewOptions())
	for _, tb := range tables {
		if strings.HasPrefix(tb.URL, "http://junk.example/") {
			t.Errorf("junk page table extracted as data: %s", tb.ID)
		}
	}
}

func TestRelevantTablesCarryQueryAttrs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := Domains(rng)
	for _, d := range ds {
		if d.Relevant == 0 {
			continue
		}
		for i := 0; i < 5; i++ {
			spec := buildRelevantTable(d, rng)
			// Key attribute always present.
			hasKey := false
			mapped := 0
			for _, k := range spec.keys {
				if k == d.Keys[0] {
					hasKey = true
				}
				for _, qk := range d.Keys {
					if k == qk {
						mapped++
						break
					}
				}
			}
			if !hasKey {
				t.Fatalf("%s: relevant table missing key attribute", d.Name)
			}
			min := 1
			if len(d.Keys) >= 2 {
				min = 2
			}
			if mapped < min {
				t.Fatalf("%s: relevant table has %d query attrs, need >= %d", d.Name, mapped, min)
			}
			if len(spec.body) == 0 || len(spec.body[0]) != len(spec.keys) {
				t.Fatalf("%s: malformed body", d.Name)
			}
		}
	}
}

func TestConfusableTablesLackSecondAttr(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := Domains(rng)
	for _, d := range ds {
		if len(d.Keys) < 2 || d.Confusable == 0 {
			continue
		}
		spec := buildConfusableTable(d, rng)
		for _, k := range spec.keys[1:] {
			for _, qk := range d.Keys[1:] {
				if k == qk {
					t.Fatalf("%s: confusable table carries query attr %q", d.Name, k)
				}
			}
		}
		if spec.keys[0] != d.Keys[0] {
			t.Fatalf("%s: confusable table missing key attr", d.Name)
		}
	}
}

func TestNoiseProfilesProduceHeaderlessTables(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := Domains(rng)
	var headerless, total int
	for _, d := range ds {
		for i := 0; i < 20; i++ {
			spec := buildRelevantTable(d, rng)
			total++
			if len(spec.headerRows) == 0 {
				headerless++
			}
		}
	}
	frac := float64(headerless) / float64(total)
	if frac < 0.08 || frac > 0.45 {
		t.Errorf("headerless fraction = %.2f, want within [0.08, 0.45] (paper: 0.18)", frac)
	}
}

func TestRenderTableParses(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := Domains(rng)
	d := ds[0]
	spec := buildRelevantTable(d, rng)
	html := renderTable(spec)
	page := "<html><body>" + html + "</body></html>"
	tables := extract.Page("u", page, extract.NewOptions())
	if len(tables) != 1 {
		t.Fatalf("rendered table did not extract: %d tables", len(tables))
	}
	if tables[0].NumCols() != len(spec.keys) {
		t.Errorf("cols = %d, want %d", tables[0].NumCols(), len(spec.keys))
	}
}

func TestCorpusScaleControlsSize(t *testing.T) {
	small := Generate(Config{Seed: 9, Scale: 0.3, JunkPages: 5})
	big := Generate(Config{Seed: 9, Scale: 1.0, JunkPages: 5})
	if len(small.Truth) >= len(big.Truth) {
		t.Errorf("scale had no effect: %d vs %d", len(small.Truth), len(big.Truth))
	}
}

func TestDomainByName(t *testing.T) {
	c := Generate(Config{Seed: 1, Scale: 0.2, JunkPages: 1})
	if c.DomainByName("country-currency") == nil {
		t.Error("country-currency domain missing")
	}
	if c.DomainByName("nope") != nil {
		t.Error("phantom domain")
	}
}
