package corpusgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// tableSpec is one fully-decided table before HTML rendering.
type tableSpec struct {
	domain     *Domain
	keys       []string   // semantic key per column ("" = filler)
	headerRows [][]string // zero or more header rows
	body       [][]string
	title      string // optional in-table title row
	useTH      bool
	bold       bool // bold header cells (when not using <th>)
}

// buildRelevantTable assembles one relevant table of the domain: it always
// carries the first query attribute, at least MinMatch query attributes in
// total, optionally extra (na) attributes, with the domain's noise profile
// applied.
func buildRelevantTable(d *Domain, rng *rand.Rand) tableSpec {
	q := len(d.Keys)
	minMatch := 1
	if q >= 2 {
		minMatch = 2
	}
	// Choose attributes: key attr always; other query attrs with p=0.85
	// (re-drawn until min-match holds); extra attrs with p=0.45.
	var cols []int
	for {
		cols = cols[:0]
		count := 0
		for _, key := range d.Keys {
			ai := d.attrIndex(key)
			if ai < 0 {
				continue
			}
			if key == d.Keys[0] || rng.Float64() < 0.85 {
				cols = append(cols, ai)
				count++
			}
		}
		if count >= minInt(minMatch, q) {
			break
		}
	}
	for ai, a := range d.Attrs {
		if containsInt(cols, ai) {
			continue
		}
		isQuery := false
		for _, k := range d.Keys {
			if a.Key == k {
				isQuery = true
			}
		}
		if !isQuery && rng.Float64() < 0.45 {
			cols = append(cols, ai)
		}
	}
	rng.Shuffle(len(cols), func(i, j int) { cols[i], cols[j] = cols[j], cols[i] })

	rows := sampleRows(d.Rows, rng, 5, 14)
	spec := tableSpec{domain: d}
	for _, ai := range cols {
		spec.keys = append(spec.keys, d.Attrs[ai].Key)
	}
	spec.body = project(rows, cols)
	applyHeaderNoise(&spec, d, cols, rng)
	return spec
}

// buildConfusableTable shares the key attribute's content but lacks enough
// query attributes to be relevant — the content-overlap trap of §3.3.
func buildConfusableTable(d *Domain, rng *rand.Rand) tableSpec {
	keyIdx := d.attrIndex(d.Keys[0])
	spec := tableSpec{domain: d}
	rows := sampleRows(d.Rows, rng, 4, 10)

	cols := []int{keyIdx}
	spec.keys = []string{d.Keys[0]}
	spec.body = project(rows, cols)
	// Add 1-2 synthetic filler columns (rank, notes, a year column).
	fillers := 1 + rng.Intn(2)
	for f := 0; f < fillers; f++ {
		kind := rng.Intn(3)
		for r := range spec.body {
			switch kind {
			case 0:
				spec.body[r] = append(spec.body[r], fmt.Sprintf("%d", r+1))
			case 1:
				spec.body[r] = append(spec.body[r], procName(rng, 1))
			default:
				spec.body[r] = append(spec.body[r], fmt.Sprintf("%d", 1950+rng.Intn(60)))
			}
		}
		spec.keys = append(spec.keys, "")
	}
	// Header: key attr header (possibly uninformative) + generic fillers.
	hdr := make([]string, len(spec.keys))
	hdr[0] = pick(rng, d.Attrs[keyIdx].Headers)
	if len(d.Attrs[keyIdx].Uninformative) > 0 && rng.Float64() < 0.3 {
		hdr[0] = pick(rng, d.Attrs[keyIdx].Uninformative)
	}
	generic := []string{"Rank", "Notes", "Ref", "Details", "No."}
	for i := 1; i < len(hdr); i++ {
		hdr[i] = pick(rng, generic)
	}
	if rng.Float64() < 0.25 {
		spec.headerRows = nil // headerless confusable
	} else {
		spec.headerRows = [][]string{hdr}
	}
	spec.useTH = rng.Float64() < d.Noise.TH
	spec.bold = !spec.useTH
	return spec
}

// applyHeaderNoise decides header rows for a relevant table per the
// domain's noise profile.
func applyHeaderNoise(spec *tableSpec, d *Domain, cols []int, rng *rand.Rand) {
	n := d.Noise
	if rng.Float64() < n.Headerless {
		spec.headerRows = nil
		return
	}
	hdr := make([]string, len(cols))
	for i, ai := range cols {
		a := d.Attrs[ai]
		hdr[i] = pick(rng, a.Headers)
		if len(a.Uninformative) > 0 && rng.Float64() < n.Uninformative {
			hdr[i] = pick(rng, a.Uninformative)
			continue
		}
		if rng.Float64() < n.SplitContext {
			// Keep only the trailing word; the page context carries the
			// full phrase ("Nobel prize" in context, "winner" in header).
			words := strings.Fields(hdr[i])
			hdr[i] = words[len(words)-1]
		}
	}
	// Multi-row split: divide the words of one multi-word header across
	// two rows (Fig. 1 Table 1: "Main areas" / "explored").
	if rng.Float64() < n.MultiRow {
		for i := range hdr {
			words := strings.Fields(hdr[i])
			if len(words) >= 2 {
				second := make([]string, len(hdr))
				cut := len(words) - 1
				hdr[i] = strings.Join(words[:cut], " ")
				second[i] = strings.Join(words[cut:], " ")
				spec.headerRows = [][]string{hdr, second}
				break
			}
		}
	}
	if spec.headerRows == nil {
		spec.headerRows = [][]string{hdr}
	}
	// Spurious second header row with irrelevant detail (Fig. 1 Table 2:
	// "(Chronological order)").
	if len(spec.headerRows) == 1 && rng.Float64() < n.Spurious {
		spurious := make([]string, len(hdr))
		spurious[rng.Intn(len(spurious))] = pick(rng, []string{
			"chronological order", "2008 data", "approximate", "alphabetical",
		})
		spec.headerRows = append(spec.headerRows, spurious)
	}
	if rng.Float64() < 0.25 {
		spec.title = titleCase(d.Phrase)
	}
	spec.useTH = rng.Float64() < n.TH
	spec.bold = !spec.useTH
}

// renderTable emits the HTML for a spec. Header cells use <th> or bold
// <td> per the spec; every row is well-formed (the parser tests cover
// malformed markup separately).
func renderTable(spec tableSpec) string {
	var b strings.Builder
	b.WriteString("<table>\n")
	ncols := len(spec.keys)
	if spec.title != "" {
		b.WriteString("<tr><td><b>" + escape(spec.title) + "</b></td>")
		for i := 1; i < ncols; i++ {
			b.WriteString("<td></td>")
		}
		b.WriteString("</tr>\n")
	}
	for _, hr := range spec.headerRows {
		b.WriteString("<tr>")
		for _, h := range hr {
			switch {
			case spec.useTH:
				b.WriteString("<th>" + escape(h) + "</th>")
			case spec.bold:
				b.WriteString("<td><b>" + escape(h) + "</b></td>")
			default:
				b.WriteString("<td>" + escape(h) + "</td>")
			}
		}
		b.WriteString("</tr>\n")
	}
	for _, row := range spec.body {
		b.WriteString("<tr>")
		for _, c := range row {
			b.WriteString("<td>" + escape(c) + "</td>")
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table>\n")
	return b.String()
}

// renderJunkTable emits a non-data table: a form, a calendar or a nav
// grid — the artifacts the extractor's data filter must reject.
func renderJunkTable(rng *rand.Rand) string {
	switch rng.Intn(3) {
	case 0: // form
		return `<table><tr><td>Search</td><td><input type="text" name="q"></td></tr>
<tr><td>Go</td><td><button>Submit</button></td></tr></table>`
	case 1: // calendar
		var b strings.Builder
		b.WriteString("<table>")
		day := 1
		for r := 0; r < 5; r++ {
			b.WriteString("<tr>")
			for c := 0; c < 7; c++ {
				if day <= 31 {
					fmt.Fprintf(&b, "<td>%d</td>", day)
					day++
				} else {
					b.WriteString("<td></td>")
				}
			}
			b.WriteString("</tr>")
		}
		b.WriteString("</table>")
		return b.String()
	default: // single-row nav strip
		return `<table><tr><td>Home</td><td>About</td><td>Contact</td><td>Help</td></tr></table>`
	}
}

// --- small helpers --------------------------------------------------------

func sampleRows(rows [][]string, rng *rand.Rand, lo, hi int) [][]string {
	n := len(rows)
	k := lo
	if hi > lo && n > lo {
		k = lo + rng.Intn(minInt(hi, n)-lo+1)
	}
	if k > n {
		k = n
	}
	idx := rng.Perm(n)[:k]
	out := make([][]string, k)
	for i, r := range idx {
		out[i] = rows[r]
	}
	return out
}

func project(rows [][]string, cols []int) [][]string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		row := make([]string, len(cols))
		for j, c := range cols {
			row[j] = r[c]
		}
		out[i] = row
	}
	return out
}

func pick(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func titleCase(s string) string {
	words := strings.Fields(s)
	for i, w := range words {
		if len(w) > 0 {
			words[i] = strings.ToUpper(w[:1]) + w[1:]
		}
	}
	return strings.Join(words, " ")
}

var htmlEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")

func escape(s string) string { return htmlEscaper.Replace(s) }
