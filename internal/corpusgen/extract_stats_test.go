package corpusgen

import (
	"testing"

	"wwt/internal/extract"
)

// TestHeaderRowDistribution checks that the extractor's header detection
// over the generated corpus lands in a plausible band relative to the
// paper's corpus statistics (§2.1.1: 60% one header row, 18% none, 17%
// two, 5% more) and the generator's configured noise rates.
func TestHeaderRowDistribution(t *testing.T) {
	c := Generate(Config{Seed: 31, Scale: 1.0})
	tables := c.ExtractAll(extract.NewOptions())
	if len(tables) < 300 {
		t.Fatalf("extracted only %d tables", len(tables))
	}
	counts := map[int]int{}
	for _, tb := range tables {
		n := tb.NumHeaderRows()
		if n > 2 {
			n = 2
		}
		counts[n]++
	}
	total := len(tables)
	frac := func(n int) float64 { return float64(counts[n]) / float64(total) }
	// Zero headers: generator configures 5-55% headerless by domain plus
	// uninformative rows the detector may reject; expect a substantial
	// minority.
	if frac(0) < 0.10 || frac(0) > 0.50 {
		t.Errorf("headerless fraction = %.2f, want within [0.10, 0.50]", frac(0))
	}
	// One header row must dominate.
	if frac(1) < 0.40 {
		t.Errorf("single-header fraction = %.2f, want >= 0.40", frac(1))
	}
	// Multi-row headers exist but are a minority.
	if frac(2) == 0 {
		t.Error("no multi-row headers detected despite MultiRow noise")
	}
	if frac(2) > 0.30 {
		t.Errorf("multi-row header fraction = %.2f, too high", frac(2))
	}
}

// TestExtractionYield: junk tables (forms, calendars, nav strips) must be
// filtered; every surviving table validates.
func TestExtractionYield(t *testing.T) {
	c := Generate(Config{Seed: 32, Scale: 0.5})
	tables := c.ExtractAll(extract.NewOptions())
	for _, tb := range tables {
		if err := tb.Validate(); err != nil {
			t.Errorf("invalid extracted table: %v", err)
		}
		if tb.NumBodyRows() == 0 {
			t.Errorf("table %s extracted with no body", tb.ID)
		}
	}
	// Every extracted table with ground truth must have matching column
	// count; those without truth must be few (title rows misclassified
	// etc. can create extra splits, but not many).
	unknown := 0
	for _, tb := range tables {
		if _, ok := c.Truth[tb.ID]; !ok {
			unknown++
		}
	}
	if unknown*5 > len(tables) {
		t.Errorf("%d of %d extracted tables missing from truth ledger", unknown, len(tables))
	}
}

// TestContextCarriesTopicTokens: on non-bare generated pages the table
// context must include the domain phrase (the signal SegSim's out-part
// relies on).
func TestContextCarriesTopicTokens(t *testing.T) {
	c := Generate(Config{Seed: 33, Scale: 0.3})
	tables := c.ExtractAll(extract.NewOptions())
	withContext := 0
	for _, tb := range tables {
		if len(tb.Context) > 0 {
			withContext++
		}
	}
	if withContext*10 < len(tables)*6 {
		t.Errorf("only %d/%d tables have context snippets", withContext, len(tables))
	}
}
