package corpusgen

import (
	"fmt"
	"math/rand"
	"strings"

	"wwt/internal/extract"
	"wwt/internal/wtable"
)

// Config tunes corpus generation. The zero Seed is valid; identical
// configs generate byte-identical corpora.
type Config struct {
	Seed int64
	// Scale multiplies every domain's Relevant/Confusable counts
	// (default 1.0 when zero).
	Scale float64
	// JunkPages is the number of pages containing only non-data tables
	// (default 40 when zero).
	JunkPages int
}

// Page is one generated web page.
type Page struct {
	URL  string
	HTML string
}

// Corpus is a generated crawl plus its ground-truth ledger.
type Corpus struct {
	Pages []Page
	// Truth maps extracted-table IDs ("url#domIndex") to the semantic key
	// of every column ("" for filler columns).
	Truth map[string][]string
	// DomainOf maps table IDs to the generating domain.
	DomainOf map[string]string
	Domains  []*Domain
}

// Generate builds the full corpus: for every domain, its relevant and
// confusable tables distributed over pages with topical context, plus
// junk pages.
func Generate(cfg Config) *Corpus {
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	if cfg.JunkPages == 0 {
		cfg.JunkPages = 40
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Corpus{
		Truth:    make(map[string][]string),
		DomainOf: make(map[string]string),
		Domains:  Domains(rng),
	}
	pageNo := 0
	for _, d := range c.Domains {
		nRel := int(float64(d.Relevant)*cfg.Scale + 0.5)
		nConf := int(float64(d.Confusable)*cfg.Scale + 0.5)
		var specs []tableSpec
		for i := 0; i < nRel; i++ {
			specs = append(specs, buildRelevantTable(d, rng))
		}
		for i := 0; i < nConf; i++ {
			specs = append(specs, buildConfusableTable(d, rng))
		}
		rng.Shuffle(len(specs), func(i, j int) { specs[i], specs[j] = specs[j], specs[i] })
		// 1-2 tables per page. Headerless tables mostly land on bare
		// pages: a page that doesn't bother with headers rarely bothers
		// with descriptive prose either — these tables are reachable only
		// through content overlap, i.e. the second index probe (§2.2.1).
		for len(specs) > 0 {
			take := 1
			if len(specs) >= 2 && rng.Float64() < 0.3 {
				take = 2
			}
			headerless := true
			for _, sp := range specs[:take] {
				if len(sp.headerRows) > 0 {
					headerless = false
				}
			}
			bareP := 0.08
			if headerless {
				bareP = 0.8
			}
			bare := rng.Float64() < bareP
			pg := buildPage(d, specs[:take], rng, pageNo, bare, c)
			c.Pages = append(c.Pages, pg)
			specs = specs[take:]
			pageNo++
		}
	}
	for i := 0; i < cfg.JunkPages; i++ {
		url := fmt.Sprintf("http://junk.example/page%d", i)
		var b strings.Builder
		b.WriteString("<html><head><title>Portal page</title></head><body>")
		b.WriteString("<p>Welcome to the portal. Use the navigation below.</p>")
		for j := 0; j < 1+rng.Intn(2); j++ {
			b.WriteString(renderJunkTable(rng))
		}
		b.WriteString("</body></html>")
		c.Pages = append(c.Pages, Page{URL: url, HTML: b.String()})
	}
	return c
}

// buildPage renders one page holding the given table specs of domain d and
// records their ground truth. Junk tables are sometimes interleaved, which
// shifts DOM indexes exactly as on the real web.
func buildPage(d *Domain, specs []tableSpec, rng *rand.Rand, pageNo int, bare bool, c *Corpus) Page {
	url := fmt.Sprintf("http://site%d.example/%s/%d", pageNo%7, d.Name, pageNo)
	var b strings.Builder
	domIndex := 0

	// Pages alternate between the domain's own phrasing and the query's
	// phrasing: on the real web the AMT queries were worded in vocabulary
	// that existing pages actually use.
	phrase := d.Phrase
	if rng.Float64() < 0.5 {
		phrase = queryPhrase(d, rng)
	}
	if bare {
		b.WriteString("<html><head><title>Data page</title></head><body>\n")
	} else {
		title := titleCase(phrase)
		switch rng.Intn(3) {
		case 0:
			title += " - Encyclopedia"
		case 1:
			title = "List of " + phrase
		}
		b.WriteString("<html><head><title>" + escape(title) + "</title></head><body>\n")
		b.WriteString("<h1>" + escape(titleCase(phrase)) + "</h1>\n")
		b.WriteString("<p>This article lists " + escape(phrase) + ".</p>\n")
	}

	// Occasional leading junk table (nav) shifts DOM indexes.
	if rng.Float64() < 0.25 {
		b.WriteString(renderJunkTable(rng))
		domIndex++
	}
	for si, spec := range specs {
		if si > 0 {
			b.WriteString("<p>" + escape("More data about "+d.Phrase+" appears below.") + "</p>\n")
		}
		b.WriteString(renderTable(spec))
		id := fmt.Sprintf("%s#%d", url, domIndex)
		c.Truth[id] = append([]string(nil), spec.keys...)
		c.DomainOf[id] = d.Name
		domIndex++
	}
	if !bare {
		b.WriteString("<p>See also related pages about " + escape(lastWord(d.Phrase)) + ".</p>\n")
	}
	b.WriteString("</body></html>")
	return Page{URL: url, HTML: b.String()}
}

func lastWord(s string) string {
	f := strings.Fields(s)
	if len(f) == 0 {
		return s
	}
	return f[len(f)-1]
}

// queryPhrase words a page title the way the workload query words it,
// e.g. "north american mountains by height".
func queryPhrase(d *Domain, rng *rand.Rand) string {
	if len(d.Query) == 1 {
		return d.Query[0]
	}
	sep := " and "
	if rng.Float64() < 0.5 {
		sep = " by "
	}
	return d.Query[0] + sep + strings.Join(d.Query[1:], " and ")
}

// ExtractAll runs the extractor over every page and returns the harvested
// tables. Table IDs match the Truth ledger keys by construction.
func (c *Corpus) ExtractAll(opts extract.Options) []*wtable.Table {
	var out []*wtable.Table
	for _, p := range c.Pages {
		out = append(out, extract.Page(p.URL, p.HTML, opts)...)
	}
	return out
}

// DomainByName returns the named domain, or nil.
func (c *Corpus) DomainByName(name string) *Domain {
	for _, d := range c.Domains {
		if d.Name == name {
			return d
		}
	}
	return nil
}
