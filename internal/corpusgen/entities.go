// Package corpusgen synthesizes the web crawl that stands in for the
// paper's 500M-page corpus (DESIGN.md §2). It generates HTML pages
// containing relational data tables for 59 query domains — with the noise
// phenomena the column mapper must survive (headerless tables, multi-row
// and split headers, uninformative header text, keyword split between
// header and context, content-overlapping confusable tables) — plus layout
// junk, and emits a ground-truth ledger keyed by extracted table ID.
package corpusgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Attr describes one semantic column. Key is the global semantic identity
// used by ground truth (e.g. "country"); Headers are informative header
// variants; Uninformative are generic variants ("Name") that defeat header
// matching.
type Attr struct {
	Key           string
	Headers       []string
	Uninformative []string
}

// NoiseProfile sets the per-table corruption rates for a domain's
// relevant tables. Rates are probabilities in [0,1].
type NoiseProfile struct {
	Headerless    float64 // drop the header row entirely (paper: 18% corpus-wide)
	Uninformative float64 // replace a header with a generic variant
	SplitContext  float64 // keep only the last header word; move the rest to context
	MultiRow      float64 // split a header's words across two header rows
	Spurious      float64 // append a junk second header row
	TH            float64 // use <th> tags (paper: 20%)
}

// Difficulty presets, assigned across domains to spread Basic's error over
// the seven query groups of §5.
var (
	profileClean  = NoiseProfile{Headerless: 0.05, Uninformative: 0.05, SplitContext: 0.05, MultiRow: 0.10, Spurious: 0.05, TH: 0.2}
	profileMedium = NoiseProfile{Headerless: 0.20, Uninformative: 0.15, SplitContext: 0.25, MultiRow: 0.15, Spurious: 0.10, TH: 0.2}
	profileHard   = NoiseProfile{Headerless: 0.35, Uninformative: 0.30, SplitContext: 0.45, MultiRow: 0.20, Spurious: 0.15, TH: 0.2}
	profileBrutal = NoiseProfile{Headerless: 0.55, Uninformative: 0.45, SplitContext: 0.60, MultiRow: 0.25, Spurious: 0.20, TH: 0.2}
)

// Domain is one topical universe bound to a workload query.
type Domain struct {
	Name   string
	Query  []string // the query column keyword sets, verbatim from Table 1
	Keys   []string // semantic key per query column
	Phrase string   // topical phrase used in titles and context

	Attrs []Attr     // all columns available; Attrs[i] aligns with Rows[*][i]
	Rows  [][]string // entity matrix

	Relevant   int // how many relevant tables to generate
	Confusable int // tables with the key attribute but too few query attrs
	Noise      NoiseProfile
}

// attrIndex returns the position of key in d.Attrs, or -1.
func (d *Domain) attrIndex(key string) int {
	for i, a := range d.Attrs {
		if a.Key == key {
			return i
		}
	}
	return -1
}

// --- procedural entity generation -----------------------------------------

var procSyllables = []string{
	"ba", "ra", "ta", "ko", "mi", "su", "ve", "lo", "dan", "mar",
	"sel", "tor", "ny", "qua", "zen", "pol", "gar", "lin", "fe", "du",
}

// procName builds a deterministic pseudo-name of the given word count.
func procName(rng *rand.Rand, words int) string {
	parts := make([]string, words)
	for w := 0; w < words; w++ {
		n := 2 + rng.Intn(2)
		var b strings.Builder
		for i := 0; i < n; i++ {
			s := procSyllables[rng.Intn(len(procSyllables))]
			if i == 0 {
				s = strings.ToUpper(s[:1]) + s[1:]
			}
			b.WriteString(s)
		}
		parts[w] = b.String()
	}
	return strings.Join(parts, " ")
}

// procColumn kinds for procedural attribute values.
const (
	procKindName = iota
	procKindYear
	procKindNumber
	procKindMoney
	procKindDate
)

type procCol struct {
	kind   int
	lo, hi int    // numeric range for year/number/money
	suffix string // e.g. " million"
	words  int    // name word count
}

// procMatrix generates n aligned entity rows for the given column specs.
func procMatrix(rng *rand.Rand, n int, cols []procCol) [][]string {
	months := []string{"January", "March", "May", "June", "September", "October", "November"}
	rows := make([][]string, n)
	seen := make(map[string]bool)
	for i := 0; i < n; i++ {
		row := make([]string, len(cols))
		for j, c := range cols {
			switch c.kind {
			case procKindYear:
				row[j] = fmt.Sprintf("%d", c.lo+rng.Intn(c.hi-c.lo+1))
			case procKindNumber:
				row[j] = fmt.Sprintf("%d%s", c.lo+rng.Intn(c.hi-c.lo+1), c.suffix)
			case procKindMoney:
				row[j] = fmt.Sprintf("%d%s", c.lo+rng.Intn(c.hi-c.lo+1), c.suffix)
			case procKindDate:
				row[j] = fmt.Sprintf("%s %d", months[rng.Intn(len(months))], c.lo+rng.Intn(c.hi-c.lo+1))
			default:
				w := c.words
				if w == 0 {
					w = 2
				}
				name := procName(rng, w)
				for seen[name] {
					name = procName(rng, w)
				}
				seen[name] = true
				row[j] = name
			}
		}
		rows[i] = row
	}
	return rows
}

// column assembles an aligned matrix from per-attribute value slices; all
// slices must be the same length.
func column(cols ...[]string) [][]string {
	if len(cols) == 0 {
		return nil
	}
	n := len(cols[0])
	rows := make([][]string, n)
	for i := 0; i < n; i++ {
		row := make([]string, len(cols))
		for j, c := range cols {
			row[j] = c[i]
		}
		rows[i] = row
	}
	return rows
}
