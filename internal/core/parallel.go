package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(i) for every i in [0, n) across a worker pool sized
// to GOMAXPROCS. Iterations must be independent and write only to disjoint
// indices of any shared output, which keeps results deterministic
// regardless of scheduling. Small n falls through to a plain loop.
func parallelFor(n int, fn func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// A panic in a worker goroutine would kill the process; capture
			// the first one and rethrow it on the calling goroutine so
			// callers see the same panic the serial loop would raise.
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
