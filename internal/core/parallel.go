package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// numWorkers returns the worker count parallelFor uses for n iterations —
// the size callers must give any per-worker scratch array.
func numWorkers(n int) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// parallelFor runs fn(i) for every i in [0, n) across a worker pool sized
// to GOMAXPROCS. Iterations must be independent and write only to disjoint
// indices of any shared output, which keeps results deterministic
// regardless of scheduling. Small n falls through to a plain loop.
func parallelFor(n int, fn func(int)) {
	parallelForWorkers(n, numWorkers(n), func(_, i int) { fn(i) })
}

// parallelForWorkers is parallelFor with the worker index exposed:
// fn(w, i), w < workers, may freely use the w-th slot of per-worker
// scratch, since each worker runs its iterations sequentially. The caller
// passes workers (normally numWorkers(n)) explicitly so its scratch array
// and the pool size cannot disagree, even if GOMAXPROCS changes mid-call.
// Iteration results must not depend on which worker runs them.
func parallelForWorkers(n, workers int, fn func(worker, i int)) {
	if workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			// A panic in a worker goroutine would kill the process; capture
			// the first one and rethrow it on the calling goroutine so
			// callers see the same panic the serial loop would raise.
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
