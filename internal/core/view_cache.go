package core

import (
	"sync"
	"sync/atomic"

	"wwt/internal/wtable"
)

// ViewCache memoizes TableView construction across queries, keyed by table
// identity (pointer). Candidate sets overlap heavily between queries, and
// a TableView only depends on the table text, the corpus statistics, and
// the view-affecting params (FreqTokenMinFrac/FreqTokenMinCount) — all
// fixed for the lifetime of an engine. Sharing a cache between builders
// whose view-affecting params or stats differ is a caller bug. Keying by
// pointer means a distinct table that merely reuses an ID can never be
// served a stale view; it misses and is analyzed fresh.
//
// Cached views are immutable after construction and safe to share between
// concurrent model builds. The cache is unbounded and pins its tables:
// engine-driven queries bound it by the corpus (the store already holds
// those tables), but callers streaming endless fresh tables through
// Engine.MapColumns grow it with them.
type ViewCache struct {
	// in is the cache's symbol table: every view built through the cache
	// interns into it, so any two cached views are mutually comparable by
	// ContentSim/HeaderSim.
	in *Interner

	mu sync.RWMutex
	m  map[*wtable.Table]*TableView

	hits, misses atomic.Uint64
}

// NewViewCache returns an empty cache with its own interner.
func NewViewCache() *ViewCache {
	return &ViewCache{in: NewInterner(), m: make(map[*wtable.Table]*TableView)}
}

// Interner exposes the cache's shared symbol table (e.g. to build an
// ad-hoc view comparable against cached ones).
func (vc *ViewCache) Interner() *Interner { return vc.in }

// Stats reports cumulative hit/miss counts (a racing duplicate build
// counts as one miss per builder that computed).
func (vc *ViewCache) Stats() (hits, misses uint64) {
	return vc.hits.Load(), vc.misses.Load()
}

// Len returns the number of cached views.
func (vc *ViewCache) Len() int {
	vc.mu.RLock()
	defer vc.mu.RUnlock()
	return len(vc.m)
}

// view returns the cached view for t, building and storing it on a miss.
func (vc *ViewCache) view(t *wtable.Table, p Params, stats CorpusStats) *TableView {
	vc.mu.RLock()
	v, ok := vc.m[t]
	vc.mu.RUnlock()
	if ok {
		vc.hits.Add(1)
		return v
	}
	vc.misses.Add(1)
	v = NewTableView(t, p, stats, vc.in)
	vc.mu.Lock()
	// A racing builder may have inserted first; keep one winner so every
	// model in flight shares the same view instance.
	if prev, ok := vc.m[t]; ok {
		v = prev
	} else {
		vc.m[t] = v
	}
	vc.mu.Unlock()
	return v
}
