package core

import "wwt/internal/graph"

// BuildScratch is the reusable arena of one model build: every flat
// backing array Build needs — the node/feature/distribution grids, the
// stage-1 assignment solver state, and the edge-construction buffers —
// lives here, so a warm scratch builds a model with near-zero allocation.
// The zero value is ready to use.
//
// Ownership contract: a Model built through BuildWith aliases the scratch
// (its Node/Feats/Dist/Conf/Rel/Views/Edges storage IS the scratch), so the
// scratch may only be reused once that model is dead. The engine's query
// pipeline relies on this: the arena is handed to the Result and recycled
// only on Release. Scratch buffers must never be handed to a cross-query
// cache (ViewCache/PairSimCache/DocSetCache) — caches may only hold their
// own allocations; the reverse (read-only cache-owned slices referenced
// from scratch fields, e.g. pair-sim slots) is fine because the scratch
// never writes through them.
type BuildScratch struct {
	hDocs  [][]int32 // per query column: cache-owned H(Qℓ) doc sets (read-only)
	colOff []int     // table -> global offset of its first column

	views []*TableView

	// Flat grids over (global column, label): one backing array plus the
	// row and per-table headers that Model exposes as [][][] slices.
	feats    []Features
	featRows [][]Features
	featsTab [][][]Features

	node     []float64
	nodeRows [][]float64
	nodeTab  [][][]float64

	dist     []float64
	distRows [][]float64
	distTab  [][][]float64

	conf    []float64
	confTab [][]float64

	rel []float64

	// Per-worker stage-1 solver scratch (workers run disjoint tables).
	st1 []stage1Scratch

	// Edge construction.
	pairs    []tablePair
	slots    [][]colPairSim // cache- or compute-owned per-pair lists (read-only)
	denom    []float64
	rawEdges []rawEdge
	edges    []Edge
}

// stage1Scratch is one worker's state for the per-table max-marginal
// solves of §4.2: the assignment workspace plus the capacity/weight/output
// grids, all fully overwritten per table.
type stage1Scratch struct {
	ws   graph.Workspace
	capL []int
	capR []int
	w    [][]float64
	wB   []float64
	out  [][]float64
	outB []float64
}
