package core

import (
	"wwt/internal/text"
)

// pmi2 computes the corpus co-occurrence feature of §3.2.3 as the
// per-row average association between H(Qℓ) — corpus tables carrying
// Qℓ's keywords in header or context — and B(cell) — tables carrying the
// cell's words in their content. The measure is the paper's PMI²
//
//	|H ∩ B|² / (|H|·|B|)
//
// or, under the §7 future-work extension, the Dice coefficient
// 2|H∩B| / (|H|+|B|). hDocs is the precomputed, sorted H(Qℓ).
func pmi2(hDocs []int32, v *TableView, c int, src PMISource, p Params) float64 {
	if len(hDocs) == 0 || src == nil {
		return 0
	}
	t := v.Table
	rows := t.NumBodyRows()
	if rows == 0 {
		return 0
	}
	sample := rows
	if p.PMIMaxRows > 0 && sample > p.PMIMaxRows {
		sample = p.PMIMaxRows
	}
	var sum float64
	for r := 0; r < sample; r++ {
		cell := t.Body(r, c)
		if cell == "" {
			continue
		}
		toks := text.Normalize(cell)
		if len(toks) == 0 {
			continue
		}
		if len(toks) > 8 {
			toks = toks[:8]
		}
		bDocs := src.ContentDocs(toks)
		if len(bDocs) == 0 {
			continue
		}
		inter := float64(intersectSize(hDocs, bDocs))
		switch p.Cooccur {
		case CooccurDice:
			sum += 2 * inter / float64(len(hDocs)+len(bDocs))
		default:
			sum += inter * inter / (float64(len(hDocs)) * float64(len(bDocs)))
		}
	}
	return sum / float64(sample)
}

func intersectSize(a, b []int32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// tableRelevance computes R(Q,t) of Eq. 2 from the per-(column, query
// column) Cover features: the clipped total fraction of query words
// matched by the table's headers and surroundings.
//
//	R(Q,t) = (1/q) clip(Σ_ℓ max_c Cover(Qℓ,tc), min(q, 1.5))
//
// clip(a,b) is 0 when a < b and a otherwise.
func tableRelevance(feats [][]Features, q int) float64 {
	if q == 0 {
		return 0
	}
	var sum float64
	for ell := 0; ell < q; ell++ {
		best := 0.0
		for c := range feats {
			if feats[c][ell].Cover > best {
				best = feats[c][ell].Cover
			}
		}
		sum += best
	}
	threshold := 1.5
	if q == 1 {
		threshold = 1.0
	}
	if sum < threshold {
		return 0
	}
	return sum / float64(q)
}

// Features carries the raw feature values of one (column, query column)
// pair, kept for diagnostics, baselines and ablations.
type Features struct {
	SegSim float64
	Cover  float64
	PMI2   float64
}

// nodePotential assembles θ(tc, ℓ) per Eq. 3.
//
//	θ(tc, ℓ)  = w1·SegSim + w2·Cover + w3·PMI² + w5          for ℓ ∈ [1..q]
//	θ(tc, nr) = w4 · (min(q,nt)/nt) · (1 − R(Q,t))
//	θ(tc, na) = 0
func nodePotential(f Features, rel float64, q, nt, label int, p Params) float64 {
	switch {
	case label >= 0 && label < q:
		v := p.W1*f.SegSim + p.W2*f.Cover + p.W5
		if p.UsePMI {
			v += p.W3 * f.PMI2
		}
		return v
	case label == NR(q):
		scale := float64(q)
		if float64(nt) < scale {
			scale = float64(nt)
		}
		if nt == 0 {
			return 0
		}
		return p.W4 * (scale / float64(nt)) * (1 - rel)
	default: // na
		return 0
	}
}
