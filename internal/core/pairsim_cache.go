package core

import (
	"wwt/internal/graph"
	"wwt/internal/lru"
)

// colPairSim is one cross-view column pair whose content similarity
// cleared MinNeighborSim: c1 indexes the first view of the pair, c2 the
// second, sim is the raw content Jaccard, and matched marks survival of
// the blended content+header one-one max-matching between the two views
// (§3.3, "Max-matching Edges"). Everything here depends only on the view
// pair and the pair-affecting params — never on the query — which is what
// makes it cacheable across queries.
type colPairSim struct {
	c1, c2  int32
	sim     float64
	matched bool
}

// computePairSims evaluates the full column-similarity grid between views
// a and b, keeps the pairs at or above p.MinNeighborSim in (c1, c2) order,
// and solves the blended one-one max-matching that marks the surviving
// pairs. A size-ratio early-out skips the merge when even full containment
// (|small|/|large|) could not reach the threshold. Orientation matters for
// tie-breaking inside the assignment solve, so callers must present (a, b)
// in the orientation they will consume the result in.
func computePairSims(a, b *TableView, p Params) []colPairSim {
	n1, n2 := a.NumCols, b.NumCols
	var out []colPairSim
	for c1 := 0; c1 < n1; c1++ {
		ids1 := a.ColCellIDs[c1]
		for c2 := 0; c2 < n2; c2++ {
			ids2 := b.ColCellIDs[c2]
			var s float64
			if len(ids1) > 0 && len(ids2) > 0 {
				lo, hi := len(ids1), len(ids2)
				if lo > hi {
					lo, hi = hi, lo
				}
				// Max achievable Jaccard is |small|/|large| (full
				// containment); division is monotone, so the bound is exact.
				if float64(lo)/float64(hi) < p.MinNeighborSim {
					continue
				}
				s = jaccardSortedIDs(ids1, ids2)
			}
			if s < p.MinNeighborSim {
				continue
			}
			out = append(out, colPairSim{c1: int32(c1), c2: int32(c2), sim: s})
		}
	}
	if len(out) == 0 {
		return nil
	}
	// One-one matching over blended content+header similarity; pairs below
	// the neighbor threshold stay zero-weight cells, exactly like the
	// query-time path always built them.
	w := make([][]float64, n1)
	wBacking := make([]float64, n1*n2)
	for i := range w {
		w[i] = wBacking[i*n2 : (i+1)*n2]
	}
	for i := range out {
		e := &out[i]
		w[e.c1][e.c2] = p.MatchContentWeight*e.sim +
			p.MatchHeaderWeight*HeaderSim(a, b, int(e.c1), int(e.c2))
	}
	sol := graph.SolveAssignment(ones(n1), ones(n2), w)
	for i := range out {
		e := &out[i]
		if sol.MatchL[e.c1] == int(e.c2) {
			e.matched = true
		}
	}
	return out
}

// PairSimCache is a bounded, concurrency-safe LRU over the per-table-pair
// column-similarity lists of computePairSims. Candidate sets overlap
// heavily across queries, and the similarity grid plus the max-matching
// solve depend only on the two views and the pair-affecting params
// (MinNeighborSim, MatchContentWeight, MatchHeaderWeight) — all fixed for
// the lifetime of an engine. Sharing a cache between builders whose
// pair-affecting params differ is a caller bug, as is mixing views from
// different interners (keying is by view identity, which ViewCache makes
// stable per table).
//
// Entries are keyed by the ordered view-ID pair as presented, not by a
// canonicalized pair: assignment tie-breaking depends on which view plays
// the left side, and keeping both orientations distinct pins each one
// hit-for-hit to what the uncached path computes. Cached slices are shared
// and read-only.
type PairSimCache struct {
	c *lru.Cache[pairSimKey, []colPairSim]
}

type pairSimKey struct{ a, b uint64 }

// DefaultPairSimCacheSize bounds the cache when NewPairSimCache is given a
// non-positive capacity. At the default probe width (~40 candidates, ~800
// pairs per query) it holds the working set of tens of distinct queries.
const DefaultPairSimCacheSize = 1 << 15

// NewPairSimCache returns an LRU of at most capacity view pairs.
func NewPairSimCache(capacity int) *PairSimCache {
	if capacity <= 0 {
		capacity = DefaultPairSimCacheSize
	}
	return &PairSimCache{c: lru.New[pairSimKey, []colPairSim](capacity)}
}

// pairs returns computePairSims(a, b, p), memoized on the (a, b) view-ID
// pair. The Jaccard grid and the assignment solve run outside the cache
// lock (computePairSims is a pure function of (a, b, p), so racing
// duplicate computes are harmless).
func (c *PairSimCache) pairs(a, b *TableView, p Params) []colPairSim {
	return c.c.Get(pairSimKey{a.id, b.id}, func() []colPairSim {
		return computePairSims(a, b, p)
	})
}

// Stats reports cumulative hit/miss counts.
func (c *PairSimCache) Stats() (hits, misses uint64) { return c.c.Stats() }

// Len returns the number of cached view pairs.
func (c *PairSimCache) Len() int { return c.c.Len() }
