// Package core implements the paper's primary contribution: the column
// mapping task expressed as a graphical model (§3). It provides the
// two-part segmented similarity SegSim (Eq. 1) and its coverage variant
// Cover (§3.2.2), the corpus-wide PMI² feature (§3.2.3), the table
// relevance feature R(Q,t) (Eq. 2), node potentials (Eq. 3), the
// robustified content-overlap edge potentials (Eq. 4) with normalized
// similarity, confidence gating and max-matching edge selection, and the
// four table-level hard constraints (Eq. 5–8). The inference package
// consumes the assembled Model.
//
// # Ownership and concurrency contracts
//
// Builder.Build is safe to call concurrently when the Builder's caches
// are shared: ViewCache, PairSimCache and the PMISource are all
// concurrency-safe, and per-table feature extraction fans out over an
// internal worker pool with per-index writes, so output is deterministic
// and bit-identical across runs.
//
// ViewCache owns the per-engine Interner; every cached TableView interns
// its cell and header strings there, and interned IDs are comparable only
// within one interner — never compare views from different interners.
// Views are immutable once built, and the cache retains every table it
// has analyzed for its lifetime.
//
// PairSimCache entries are pure functions of (view pair, pair-affecting
// params: MinNeighborSim, MatchContentWeight, MatchHeaderWeight); sharing
// one cache across builders that differ in those is a caller bug. Cached
// slices — pair-sim lists, PMI doc sets, view cell sets — are shared and
// read-only.
//
// Build allocates a private arena; BuildWith carves every model grid from
// a caller-owned BuildScratch, and the resulting Model aliases that
// arena. The caller must not reuse the scratch while the Model is live.
// Scratch buffers must never be inserted into the cross-query caches;
// referencing cache-owned slices from scratch fields is fine because
// build code never writes through them.
package core
