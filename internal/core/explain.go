package core

import (
	"cmp"
	"fmt"
	"slices"
	"strings"
)

// Explanation is a human-readable account of why the column mapper
// labeled one table the way it did: per-column features, potentials and
// the edges that influenced it. It is a diagnostic surface for the
// `wwt -explain` CLI flag and for debugging corpora.
type Explanation struct {
	TableID  string
	Relevant bool
	R        float64 // Eq. 2 relevance feature
	Columns  []ColumnExplanation
}

// ColumnExplanation explains one column's label.
type ColumnExplanation struct {
	Column    int
	Header    string
	Label     string
	SegSim    float64 // feature values for the assigned label (if real)
	Cover     float64
	Potential float64
	Conf      float64 // stage-1 confidence max_{ℓ∈1..q} p(ℓ)
	Neighbors int     // gated edges touching this column
}

// Explain renders the mapper's decision for table ti under labeling l.
func (m *Model) Explain(ti int, l Labeling) Explanation {
	v := m.Views[ti]
	q := m.NumQ
	exp := Explanation{
		TableID:  v.Table.ID,
		Relevant: l.Relevant(ti),
		R:        m.Rel[ti],
	}
	degree := make(map[int]int)
	for _, e := range m.Edges {
		if e.T1 == ti {
			degree[e.C1]++
		}
		if e.T2 == ti {
			degree[e.C2]++
		}
	}
	for c := 0; c < v.NumCols; c++ {
		label := l.Y[ti][c]
		ce := ColumnExplanation{
			Column:    c,
			Header:    strings.Join(v.Table.HeaderText(c), " / "),
			Label:     LabelString(label, q),
			Potential: m.Node[ti][c][label],
			Conf:      m.Conf[ti][c],
			Neighbors: degree[c],
		}
		if label >= 0 && label < q {
			ce.SegSim = m.Feats[ti][c][label].SegSim
			ce.Cover = m.Feats[ti][c][label].Cover
		}
		exp.Columns = append(exp.Columns, ce)
	}
	return exp
}

// String renders the explanation as indented text.
func (e Explanation) String() string {
	var b strings.Builder
	status := "irrelevant"
	if e.Relevant {
		status = "relevant"
	}
	fmt.Fprintf(&b, "%s: %s (R=%.2f)\n", e.TableID, status, e.R)
	for _, c := range e.Columns {
		hdr := c.Header
		if hdr == "" {
			hdr = "(no header)"
		}
		fmt.Fprintf(&b, "  col %d %-30q -> %-4s θ=%+.2f conf=%.2f seg=%.2f cover=%.2f edges=%d\n",
			c.Column+1, hdr, c.Label, c.Potential, c.Conf, c.SegSim, c.Cover, c.Neighbors)
	}
	return b.String()
}

// ExplainAll explains every table, relevant tables first (by R), for
// compact CLI output.
func (m *Model) ExplainAll(l Labeling) []Explanation {
	out := make([]Explanation, len(m.Views))
	for ti := range m.Views {
		out[ti] = m.Explain(ti, l)
	}
	slices.SortStableFunc(out, func(a, b Explanation) int {
		if a.Relevant != b.Relevant {
			if a.Relevant {
				return -1
			}
			return 1
		}
		return cmp.Compare(b.R, a.R)
	})
	return out
}
