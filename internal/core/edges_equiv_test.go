package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"wwt/internal/graph"
	"wwt/internal/wtable"
)

// buildRawEdgesRef is a faithful port of the pre-refactor serial map-based
// buildRawEdges (the §3.3 edge construction before the flat/parallel
// rewrite): per-query Jaccard grid over all cross-table column pairs, map
// denominators, and a one-one max-matching per table pair marked through
// an edge-index map. The new path is pinned hit-for-hit against it.
func buildRawEdgesRef(m *Model) []rawEdge {
	type columnRef struct{ t, c int }
	p := m.Params
	n := len(m.Views)
	if n < 2 {
		return nil
	}
	type pairSim struct {
		a, b columnRef
		sim  float64
	}
	var sims []pairSim
	denom := make(map[columnRef]float64)
	for t1 := 0; t1 < n; t1++ {
		for t2 := t1 + 1; t2 < n; t2++ {
			for c1 := 0; c1 < m.Views[t1].NumCols; c1++ {
				for c2 := 0; c2 < m.Views[t2].NumCols; c2++ {
					s := ContentSim(m.Views[t1], m.Views[t2], c1, c2)
					if s < p.MinNeighborSim {
						continue
					}
					a := columnRef{t1, c1}
					b := columnRef{t2, c2}
					sims = append(sims, pairSim{a, b, s})
					denom[a] += s
					denom[b] += s
				}
			}
		}
	}
	if len(sims) == 0 {
		return nil
	}
	var rawEdges []rawEdge
	edgeIdx := make(map[[2]columnRef]int, len(sims))
	tablePairs := make(map[[2]int][]pairSim)
	for _, ps := range sims {
		edgeIdx[[2]columnRef{ps.a, ps.b}] = len(rawEdges)
		rawEdges = append(rawEdges, rawEdge{
			t1: ps.a.t, c1: ps.a.c, t2: ps.b.t, c2: ps.b.c,
			nsimAB: ps.sim / (p.Lambda + denom[ps.a]),
			nsimBA: ps.sim / (p.Lambda + denom[ps.b]),
			sim:    ps.sim,
		})
		key := [2]int{ps.a.t, ps.b.t}
		tablePairs[key] = append(tablePairs[key], ps)
	}
	for key, pairs := range tablePairs {
		t1, t2 := key[0], key[1]
		n1, n2 := m.Views[t1].NumCols, m.Views[t2].NumCols
		w := make([][]float64, n1)
		wBacking := make([]float64, n1*n2)
		for i := range w {
			w[i] = wBacking[i*n2 : (i+1)*n2]
		}
		for _, ps := range pairs {
			blend := p.MatchContentWeight*ps.sim +
				p.MatchHeaderWeight*HeaderSim(m.Views[t1], m.Views[t2], ps.a.c, ps.b.c)
			w[ps.a.c][ps.b.c] = blend
		}
		sol := graph.SolveAssignment(ones(n1), ones(n2), w)
		for c1, c2 := range sol.MatchL {
			if c2 < 0 {
				continue
			}
			if idx, ok := edgeIdx[[2]columnRef{{t1, c1}, {t2, c2}}]; ok {
				rawEdges[idx].matched = true
			}
		}
	}
	return rawEdges
}

// checkEdgesEquiv rebuilds m's edges through the reference path and
// demands identical rawEdges (order, endpoints, similarities, matched
// flags) and identical final Edges.
func checkEdgesEquiv(t *testing.T, m *Model, label string) {
	t.Helper()
	ref := buildRawEdgesRef(m)
	if len(ref) != len(m.rawEdges) {
		t.Fatalf("%s: rawEdges count = %d, want %d", label, len(m.rawEdges), len(ref))
	}
	for i := range ref {
		if m.rawEdges[i] != ref[i] {
			t.Fatalf("%s: rawEdges[%d] = %+v, want %+v", label, i, m.rawEdges[i], ref[i])
		}
	}
	refModel := *m
	refModel.rawEdges = ref
	refModel.Edges = nil
	refModel.finalizeEdges(nil)
	if !reflect.DeepEqual(m.Edges, refModel.Edges) {
		t.Fatalf("%s: Edges diverged:\n got %+v\nwant %+v", label, m.Edges, refModel.Edges)
	}
}

// TestBuildRawEdgesEquivalence fuzzes the flat/parallel/cached edge path
// against the serial map-based reference on randomized corpora, with and
// without a warm PairSimCache, across edge variants.
func TestBuildRawEdgesEquivalence(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		numTables := 2 + r.Intn(5)
		tables := make([]*wtable.Table, numTables)
		for i := range tables {
			tables[i] = randTable(r)
			tables[i].ID = fmt.Sprintf("t%d", i)
		}
		p := DefaultParams()
		// Exercise threshold extremes too: 0 keeps even zero-similarity
		// pairs (including empty columns), which the old path did.
		switch seed % 4 {
		case 1:
			p.MinNeighborSim = 0
		case 2:
			p.MinNeighborSim = 0.5
		case 3:
			p.Edges = EdgePotts
		}
		cols := []string{phraseFrom(r, 1+r.Intn(2)), phraseFrom(r, 1)}

		// Cacheless build (fresh interner per build).
		plain := &Builder{Params: p, Stats: constStats{}}
		m := plain.Build(cols, tables)
		checkEdgesEquiv(t, m, fmt.Sprintf("seed %d cacheless", seed))

		// Cold caches, then warm (second build served from PairSimCache).
		cached := &Builder{Params: p, Stats: constStats{}, Views: NewViewCache(), Pairs: NewPairSimCache(0)}
		mCold := cached.Build(cols, tables)
		checkEdgesEquiv(t, mCold, fmt.Sprintf("seed %d cold cache", seed))
		mWarm := cached.Build(cols, tables)
		checkEdgesEquiv(t, mWarm, fmt.Sprintf("seed %d warm cache", seed))
		if hits, _ := cached.Pairs.Stats(); hits == 0 && numTables >= 2 {
			t.Fatalf("seed %d: warm build never hit the pair cache", seed)
		}
		if !reflect.DeepEqual(mCold.Edges, mWarm.Edges) {
			t.Fatalf("seed %d: cold/warm Edges diverged", seed)
		}
	}
}

// TestBuildRawEdgesMinNeighborSimBoundary pins the >= threshold boundary:
// a pair at exactly MinNeighborSim is kept, one just below is dropped —
// in both the reference and the new path.
func TestBuildRawEdgesMinNeighborSimBoundary(t *testing.T) {
	// Column contents sized for exact Jaccard values: |A|=4, |B|=7,
	// inter=1 -> 1/10 = 0.1 (kept at MinNeighborSim=0.1); |A|=4, |B|=8,
	// inter=1 -> 1/11 (dropped).
	mkTable := func(id string, header string, cells []string) *wtable.Table {
		tb := &wtable.Table{ID: id}
		tb.HeaderRows = append(tb.HeaderRows, row(header))
		for _, c := range cells {
			tb.BodyRows = append(tb.BodyRows, row(c))
		}
		return tb
	}
	a := mkTable("a", "alpha", []string{"shared", "a1", "a2", "a3"})
	b := mkTable("b", "beta", []string{"shared", "b1", "b2", "b3", "b4", "b5", "b6"})
	c := mkTable("c", "gamma", []string{"shared", "c1", "c2", "c3", "c4", "c5", "c6", "c7"})

	p := DefaultParams()
	p.MinNeighborSim = 0.1
	builder := &Builder{Params: p, Stats: constStats{}, Views: NewViewCache(), Pairs: NewPairSimCache(0)}
	m := builder.Build([]string{"alpha", "beta"}, []*wtable.Table{a, b, c})
	checkEdgesEquiv(t, m, "boundary")

	found := map[[2]int]float64{}
	for _, re := range m.rawEdges {
		found[[2]int{re.t1, re.t2}] = re.sim
	}
	// a-b: 1/10 = 0.1 exactly -> kept. a-c: 1/11 < 0.1 -> dropped.
	if s, ok := found[[2]int{0, 1}]; !ok || s != 0.1 {
		t.Errorf("a-b edge at the exact threshold missing or wrong: %v %v", s, ok)
	}
	if _, ok := found[[2]int{0, 2}]; ok {
		t.Error("a-c edge below the threshold survived")
	}
}

// TestBuildRawEdgesDummyMatchedColumns pins the dummy-match behavior: when
// the assignment pairs columns through zero-weight cells (no similarity
// above threshold between them), no raw edge is marked matched for them.
func TestBuildRawEdgesDummyMatchedColumns(t *testing.T) {
	// Tables with 2 columns each; only (0,0) is similar. The matching
	// will pair column 1 with column 1 at weight 0 — there is no raw edge
	// for that pair, so nothing extra may be marked.
	t1 := &wtable.Table{ID: "x"}
	t1.HeaderRows = append(t1.HeaderRows, row("name", "other"))
	t1.BodyRows = append(t1.BodyRows, row("shared", "u1"), row("also", "u2"))
	t2 := &wtable.Table{ID: "y"}
	t2.HeaderRows = append(t2.HeaderRows, row("name", "different"))
	t2.BodyRows = append(t2.BodyRows, row("shared", "v1"), row("also", "v2"))

	builder := &Builder{Params: DefaultParams(), Stats: constStats{}, Views: NewViewCache(), Pairs: NewPairSimCache(0)}
	m := builder.Build([]string{"name"}, []*wtable.Table{t1, t2})
	checkEdgesEquiv(t, m, "dummy-matched")

	for _, re := range m.rawEdges {
		if re.c1 != 0 || re.c2 != 0 {
			t.Errorf("unexpected raw edge between dissimilar columns: %+v", re)
		}
	}
	if len(m.rawEdges) != 1 || !m.rawEdges[0].matched {
		t.Fatalf("want exactly one matched raw edge for (0,0), got %+v", m.rawEdges)
	}
}
