package core

import "testing"

// Allocation regression guards for the zero-alloc claims the ROADMAP
// makes: the interned sorted-set similarities must stay allocation-free —
// they run inside the O(T²·C²) pair grid, where a single allocation per
// call would dominate the edge-construction cost.

func TestContentSimZeroAlloc(t *testing.T) {
	a := view(table("a", [][]string{{"Country", "Currency"}},
		[][]string{{"France", "Euro"}, {"Japan", "Yen"}, {"Brazil", "Real"}}, ""))
	b := view(table("b", [][]string{{"Nation", "Currency"}},
		[][]string{{"France", "Euro"}, {"India", "Rupee"}, {"Japan", "Yen"}}, ""))
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		sink += ContentSim(a, b, 0, 0)
		sink += ContentSim(a, b, 1, 1)
	})
	if allocs != 0 {
		t.Errorf("ContentSim allocates %.0f/op, want 0", allocs)
	}
	_ = sink
}

func TestHeaderSimZeroAlloc(t *testing.T) {
	a := view(table("a", [][]string{{"Country Name", "Currency Unit"}},
		[][]string{{"France", "Euro"}}, ""))
	b := view(table("b", [][]string{{"Name of Country", "Currency"}},
		[][]string{{"Japan", "Yen"}}, ""))
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		sink += HeaderSim(a, b, 0, 0)
		sink += HeaderSim(a, b, 1, 1)
	})
	if allocs != 0 {
		t.Errorf("HeaderSim allocates %.0f/op, want 0", allocs)
	}
	_ = sink
}
