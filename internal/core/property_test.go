package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"wwt/internal/wtable"
)

// randWords builds a small vocabulary-driven phrase.
var propVocab = []string{
	"country", "currency", "population", "name", "year", "height",
	"winner", "company", "price", "area", "state", "city", "band",
}

func phraseFrom(r *rand.Rand, n int) string {
	words := make([]string, n)
	for i := range words {
		words[i] = propVocab[r.Intn(len(propVocab))]
	}
	return strings.Join(words, " ")
}

func randTable(r *rand.Rand) *wtable.Table {
	cols := 1 + r.Intn(4)
	t := &wtable.Table{ID: "p"}
	if r.Intn(4) > 0 { // 3/4 of tables have a header
		var hr wtable.Row
		for c := 0; c < cols; c++ {
			hr.Cells = append(hr.Cells, wtable.Cell{Text: phraseFrom(r, 1+r.Intn(2))})
		}
		t.HeaderRows = append(t.HeaderRows, hr)
	}
	rows := 1 + r.Intn(5)
	for i := 0; i < rows; i++ {
		var br wtable.Row
		for c := 0; c < cols; c++ {
			br.Cells = append(br.Cells, wtable.Cell{Text: phraseFrom(r, 1)})
		}
		t.BodyRows = append(t.BodyRows, br)
	}
	if r.Intn(2) == 0 {
		t.Context = []wtable.Snippet{{Text: phraseFrom(r, 4), Score: r.Float64()}}
	}
	return t
}

// TestSegScoresBoundedQuick: SegSim and Cover stay within [0, 1+eps] for
// arbitrary tables and queries (both are convex combinations of cosines
// and soft-maxed reliabilities, all bounded by 1).
func TestSegScoresBoundedQuick(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tb := randTable(r)
		v := NewTableView(tb, p, constStats{}, nil)
		qc := AnalyzeQuery([]string{phraseFrom(r, 1+r.Intn(3))}, constStats{})
		for c := 0; c < v.NumCols; c++ {
			seg, cov := segScores(&qc[0], v, c, p)
			if seg < 0 || seg > 1+1e-9 || cov < 0 || cov > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCoverMonotoneInHeaderQuick: adding a query token to a column's
// header never decreases Cover (more of the query mass is pinnable).
func TestCoverMonotoneInHeaderQuick(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tb := randTable(r)
		if len(tb.HeaderRows) == 0 || tb.NumCols() == 0 {
			return true
		}
		query := phraseFrom(r, 2+r.Intn(2))
		qc := AnalyzeQuery([]string{query}, constStats{})
		if len(qc[0].Tokens) == 0 {
			return true
		}
		c := r.Intn(tb.NumCols())
		v1 := NewTableView(tb, p, constStats{}, nil)
		_, cov1 := segScores(&qc[0], v1, c, p)

		// Append a query word to the header of column c.
		queryWord := strings.Fields(query)[0]
		tb.HeaderRows[0].Cells[c].Text += " " + queryWord
		v2 := NewTableView(tb, p, constStats{}, nil)
		_, cov2 := segScores(&qc[0], v2, c, p)
		return cov2 >= cov1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestUnsegmentedNeverExceedsOneQuick bounds the §5.2 comparison model.
func TestUnsegmentedNeverExceedsOneQuick(t *testing.T) {
	p := DefaultParams()
	p.Unsegmented = true
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tb := randTable(r)
		v := NewTableView(tb, p, constStats{}, nil)
		qc := AnalyzeQuery([]string{phraseFrom(r, 1+r.Intn(3))}, constStats{})
		for c := 0; c < v.NumCols; c++ {
			seg, cov := segScores(&qc[0], v, c, p)
			if seg < 0 || seg > 1+1e-9 || cov < 0 || cov > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestModelScoreFiniteForFeasibleQuick: any labeling built by per-table
// MAP has a finite objective.
func TestModelScoreFiniteForFeasibleQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var tables []*wtable.Table
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			tb := randTable(r)
			tb.ID = string(rune('a' + i))
			tables = append(tables, tb)
		}
		b := &Builder{Params: DefaultParams(), Stats: constStats{}}
		m := b.Build([]string{phraseFrom(r, 2), phraseFrom(r, 1)}, tables)
		// All-nr is always feasible.
		l := NewLabeling(2, m.Cols())
		s := m.Score(l)
		return s == s && s > -1e17 // finite, not -Inf
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestTableRelevanceBounds: R ∈ [0,1] whenever covers are in [0,1].
func TestTableRelevanceBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := 1 + r.Intn(3)
		nc := 1 + r.Intn(4)
		cover := make([][]Features, nc)
		for c := range cover {
			cover[c] = make([]Features, q)
			for ell := range cover[c] {
				cover[c][ell].Cover = r.Float64()
			}
		}
		rel := tableRelevance(cover, q)
		return rel >= 0 && rel <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestReweightMatchesFreshBuild: Reweight must agree with a from-scratch
// build at the same parameters (same nodes, confidences and edges).
func TestReweightMatchesFreshBuild(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	var tables []*wtable.Table
	for i := 0; i < 4; i++ {
		tb := randTable(r)
		tb.ID = string(rune('a' + i))
		tables = append(tables, tb)
	}
	q := []string{"country name", "currency"}
	base := DefaultParams()
	b := &Builder{Params: base, Stats: constStats{}}
	m := b.Build(q, tables)

	p2 := base
	p2.W2 *= 0.5
	p2.W5 = -1.0
	p2.We *= 2
	rew := m.Reweight(p2)
	b2 := &Builder{Params: p2, Stats: constStats{}}
	fresh := b2.Build(q, tables)

	for ti := range fresh.Node {
		for c := range fresh.Node[ti] {
			for l := range fresh.Node[ti][c] {
				if diff := fresh.Node[ti][c][l] - rew.Node[ti][c][l]; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("node potential mismatch at %d/%d/%d: %f vs %f",
						ti, c, l, fresh.Node[ti][c][l], rew.Node[ti][c][l])
				}
			}
		}
	}
	if len(fresh.Edges) != len(rew.Edges) {
		t.Fatalf("edge count mismatch: %d vs %d", len(fresh.Edges), len(rew.Edges))
	}
}

// TestPartMatchesConsistency: PartMatches must agree with segScores on
// whether a positive pin exists.
func TestPartMatchesConsistency(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tb := randTable(r)
		v := NewTableView(tb, p, constStats{}, nil)
		qc := AnalyzeQuery([]string{phraseFrom(r, 2)}, constStats{})
		for c := 0; c < v.NumCols; c++ {
			rep := PartMatches(&qc[0], v, c)
			seg, _ := segScores(&qc[0], v, c, p)
			if !rep.AnyInSim && seg > 0 {
				return false // SegSim requires a header pin
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
