package core

// Params collects every tunable of the column mapper. The six weights
// W1..W5, We are the trainable parameters of Eq. 3/4 (the paper trains
// them by exhaustive enumeration; internal/train does the same); the rest
// are the constants reported in the paper.
type Params struct {
	// Node potential weights (Eq. 3): SegSim, Cover, PMI², nr scale, bias.
	W1, W2, W3, W4, W5 float64
	// Edge potential weight (Eq. 4).
	We float64

	// UsePMI enables the corpus co-occurrence feature. WWT leaves it off
	// by default (§5.1: "WWT, which does not use the PMI2 scores by
	// default").
	UsePMI bool
	// Cooccur selects the association measure when UsePMI is set. The
	// paper uses PMI² and names "newer corpus wide co-occurrence
	// statistics" as future work (§7); CooccurDice is that extension.
	Cooccur CooccurMeasure

	// Unsegmented replaces SegSim/Cover with the plain whole-query cosine
	// against the concatenated header (the §5.2 comparison model).
	Unsegmented bool

	// Edges selects the edge-potential construction (§3.3 discusses why
	// the naive variants fail); EdgeCustom is the paper's final design.
	Edges EdgeVariant

	// Reliability parameters p_i of outSim for parts T, C, Hc, Hr, B
	// (§3.2.1; measured empirically in the paper as 1.0, 0.9, 0.5, 1.0, 0.8).
	RelTitle, RelContext, RelOtherHeaderRow, RelOtherHeaderCol, RelBody float64

	// Lambda is the smoothing constant of the nsim normalization (§3.3);
	// MinNeighborSim drops weakly similar neighbor columns (0.1).
	// MinNeighborSim is a pair-affecting param: PairSimCache entries bake
	// it in, so changing it requires a fresh cache (Lambda does not — the
	// normalization stays query-side).
	Lambda         float64
	MinNeighborSim float64
	// ConfidenceThreshold gates edge potentials on Pr(y|tc) (0.6).
	ConfidenceThreshold float64

	// Frequent-content-token extraction for the B part of outSim: a token
	// qualifies when it occurs in at least FreqTokenMinFrac of the rows of
	// some column and at least FreqTokenMinCount times.
	FreqTokenMinFrac  float64
	FreqTokenMinCount int

	// MinMatchFor returns m of the min-match constraint: 2 for q >= 2.
	// (kept as data to allow ablations).
	MinMatchTwoPlus int

	// PMIMaxRows caps the rows sampled by the PMI² feature per column.
	PMIMaxRows int

	// MatchContentWeight/MatchHeaderWeight blend content and header
	// similarity when computing the one-one max-matching between the
	// columns of two tables (§3.3, "Max-matching Edges"). Both are
	// pair-affecting params: PairSimCache memoizes the matching
	// survivors under them, so changing either requires a fresh cache.
	MatchContentWeight, MatchHeaderWeight float64
}

// DefaultParams returns the parameter set used across the experiments.
// The six weights come from the exhaustive enumeration in internal/train
// (cmd/wwt-train, training seed 777); the constants are the paper's. The
// trained optimum weighs Cover heavily against a strong negative bias:
// a column must cover most of a query column's token mass (in header or
// reliable surroundings) before a real label pays for itself, which is
// what rejects key-column-only confusable tables under min-match.
func DefaultParams() Params {
	return Params{
		W1: 1.0, W2: 8.0, W3: 0.25, W4: 0.35, W5: -5.5, We: 5.5,
		UsePMI:              false,
		RelTitle:            1.0,
		RelContext:          0.9,
		RelOtherHeaderRow:   0.5,
		RelOtherHeaderCol:   1.0,
		RelBody:             0.8,
		Lambda:              0.3,
		MinNeighborSim:      0.1,
		ConfidenceThreshold: 0.6,
		FreqTokenMinFrac:    0.3,
		FreqTokenMinCount:   2,
		MinMatchTwoPlus:     2,
		PMIMaxRows:          50,
		MatchContentWeight:  0.7,
		MatchHeaderWeight:   0.3,
	}
}

// MinMatch returns m, the minimum number of query columns a relevant table
// must cover (Eq. 8): 1 for single-column queries, MinMatchTwoPlus
// otherwise.
func (p Params) MinMatch(q int) int {
	if q < 2 {
		return 1
	}
	m := p.MinMatchTwoPlus
	if m > q {
		m = q
	}
	return m
}

// CooccurMeasure selects the corpus-wide association statistic used by
// the co-occurrence feature (§3.2.3 / §7).
type CooccurMeasure int

// Association measures.
const (
	// CooccurPMI2 is the paper's PMI² of Eq. in §3.2.3:
	// |H∩B|² / (|H|·|B|). [20] attributes its noise to the undue weight
	// low-frequency items get from the denominator.
	CooccurPMI2 CooccurMeasure = iota
	// CooccurDice is the §7 future-work extension: the Dice coefficient
	// 2|H∩B| / (|H|+|B|), which damps the low-frequency denominator
	// blow-up (a cell appearing in a single document can no longer
	// saturate the score).
	CooccurDice
)

// String names the measure.
func (m CooccurMeasure) String() string {
	if m == CooccurDice {
		return "dice"
	}
	return "pmi2"
}

// EdgeVariant selects how cross-table edges are built — the §3.3 design
// alternatives kept for ablation.
type EdgeVariant int

// Edge-potential variants.
const (
	// EdgeCustom is the paper's final design: normalized similarity,
	// confidence gating, max-matching edges, no reward for shared nr.
	EdgeCustom EdgeVariant = iota
	// EdgePotts is the naive positive Potts potential we·sim·[[ℓ=ℓ']]
	// over all similar column pairs — irrelevant columns drag relevant
	// ones toward nr.
	EdgePotts
	// EdgePottsNoNR zeroes the Potts reward when both labels are nr —
	// which overshoots the other way: irrelevant tables get pulled
	// relevant.
	EdgePottsNoNR
)

// String names the variant.
func (v EdgeVariant) String() string {
	switch v {
	case EdgePotts:
		return "potts"
	case EdgePottsNoNR:
		return "potts-no-nr"
	default:
		return "custom"
	}
}

// CorpusStats supplies corpus-wide term statistics (IDF). The index
// satisfies it; tests use small fakes.
type CorpusStats interface {
	IDF(tok string) float64
}

// PMISource supplies the document sets intersected by the PMI² feature:
// H(Qℓ) — documents carrying all of Qℓ's tokens in header or context —
// and B(cell) — documents carrying all of a cell's tokens in content.
//
// Builder.Build probes the source from a pool of worker goroutines, so
// implementations must be safe for concurrent calls. Returned doc sets may
// be shared (e.g. cache-backed) and must be treated as read-only by
// consumers.
type PMISource interface {
	HeaderContextDocs(tokens []string) []int32
	ContentDocs(tokens []string) []int32
}
