package core

import (
	"slices"
	"sync"
)

// Interner assigns dense uint32 IDs to strings so that set operations on
// analyzed text (cell values, header tokens) become integer comparisons
// over sorted slices instead of map probes over strings. IDs are only
// meaningful within one interner: two TableViews may be compared by
// ContentSim/HeaderSim only when both were built against the same
// interner. ViewCache owns one per engine; Builder.Build creates a
// build-local one when it runs cacheless.
//
// Interning is concurrency-safe (views are analyzed from a worker pool)
// and append-only: the table grows with the vocabulary it sees and is
// never evicted, which is bounded by the corpus for engine-driven use.
type Interner struct {
	mu  sync.RWMutex
	ids map[string]uint32
}

// NewInterner returns an empty symbol table.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]uint32)}
}

// Intern returns the stable ID of s, assigning the next free one on first
// sight.
func (in *Interner) Intern(s string) uint32 {
	in.mu.RLock()
	id, ok := in.ids[s]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	id, ok = in.ids[s]
	if !ok {
		id = uint32(len(in.ids))
		in.ids[s] = id
	}
	in.mu.Unlock()
	return id
}

// Len returns the number of interned strings.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.ids)
}

// sortedIDSet sorts ids in place, removes duplicates, and returns the
// shrunk slice — the canonical set representation the sorted-slice
// intersections below operate on.
func sortedIDSet(ids []uint32) []uint32 {
	slices.Sort(ids)
	out := slices.Compact(ids)
	// Cached views retain these sets for the engine's lifetime; when dedup
	// shrank the set to under half the backing array (heavily duplicated
	// columns), reallocate tight so the oversized array can be freed.
	if len(out)*2 < cap(ids) {
		out = slices.Clone(out)
	}
	return out
}

// jaccardSortedIDs is the Jaccard similarity of two sorted unique ID
// slices: |a∩b| / |a∪b|, allocation-free.
func jaccardSortedIDs(a, b []uint32) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}
