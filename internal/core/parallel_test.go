package core

import (
	"sync/atomic"
	"testing"
)

// TestParallelForCoversAllIndices: every index runs exactly once regardless
// of worker count.
func TestParallelForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100} {
		counts := make([]atomic.Int32, n)
		parallelFor(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, c)
			}
		}
	}
}

// TestParallelForPropagatesPanic: a panic inside fn must surface on the
// calling goroutine (as in the serial loop), not crash the process from a
// worker.
func TestParallelForPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want \"boom\"", r)
		}
	}()
	parallelFor(64, func(i int) {
		if i == 13 {
			panic("boom")
		}
	})
	t.Fatal("parallelFor returned instead of panicking")
}
