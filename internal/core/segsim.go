package core

import "math"

// This file implements the paper's central similarity machinery (§3.2.1,
// §3.2.2): the two-part segmented similarity SegSim of Eq. 1 and the
// coverage feature Cover. A query column Qℓ is split into a prefix P and a
// suffix S; one part is pinned to a specific header row of the column
// (inSim), the other gathers support from the rest of the table (outSim)
// across five parts — title T, context C, other header rows of the column
// Hc, other columns' headers in the same row Hr, and frequent body content
// B — each with its own reliability p_i. A token matching several parts
// scores the soft-max 1 - Π(1 - p_i).

// segScores returns SegSim and Cover for query column qc against column c
// of view v. Both maximize over header rows and over all prefix/suffix
// segmentations with either part pinned to the header (the pinned part
// must share a token with the header row). Headerless tables score zero —
// table-level matches must not count for unspecific columns.
func segScores(qc *QueryColumn, v *TableView, c int, p Params) (segSim, cover float64) {
	m := len(qc.Tokens)
	if m == 0 || qc.NormSq == 0 || v.HeaderRowCount() == 0 || c >= v.NumCols {
		return 0, 0
	}
	if p.Unsegmented {
		return unsegScores(qc, v, c)
	}
	for r := 0; r < v.HeaderRowCount(); r++ {
		// prefix sums of TI² let every split be O(1) plus the part scans.
		for k := 0; k <= m; k++ {
			// Orientation A: P = tokens[0:k] pinned to header, S = rest out.
			if k > 0 && intersectsHeader(qc.Tokens[:k], v, r, c) {
				in := inSimCosine(qc, 0, k, v, r, c)
				inCov := inSimCover(qc, 0, k, v, r, c)
				out := outSim(qc, k, m, v, r, c, p)
				wIn := mass(qc, 0, k) / qc.NormSq
				wOut := mass(qc, k, m) / qc.NormSq
				if s := wIn*in + wOut*out; s > segSim {
					segSim = s
				}
				if s := wIn*inCov + wOut*out; s > cover {
					cover = s
				}
			}
			// Orientation B: S = tokens[k:m] pinned to header, P = rest out.
			if k < m && intersectsHeader(qc.Tokens[k:], v, r, c) {
				in := inSimCosine(qc, k, m, v, r, c)
				inCov := inSimCover(qc, k, m, v, r, c)
				out := outSim(qc, 0, k, v, r, c, p)
				wIn := mass(qc, k, m) / qc.NormSq
				wOut := mass(qc, 0, k) / qc.NormSq
				if s := wIn*in + wOut*out; s > segSim {
					segSim = s
				}
				if s := wIn*inCov + wOut*out; s > cover {
					cover = s
				}
			}
		}
	}
	return segSim, cover
}

// unsegScores is the §5.2 unsegmented comparison model: the whole query is
// matched against the column's concatenated header rows with a plain
// TF-IDF cosine (and coverage fraction); no segmentation, no outSim.
func unsegScores(qc *QueryColumn, v *TableView, c int) (float64, float64) {
	// All sums below run in deterministic first-occurrence order (header
	// rows ascending, tokens in cell order; query tokens in query order),
	// never map order, so repeated builds are bit-identical.
	vec := make(map[string]float64)
	var order []string
	for r := 0; r < v.HeaderRowCount(); r++ {
		hv := v.headerVec[r][c]
		toks := v.HeaderTokens[r][c]
		for i, w := range toks {
			first := true
			for j := 0; j < i; j++ {
				if toks[j] == w {
					first = false
					break
				}
			}
			if !first {
				continue
			}
			if _, seen := vec[w]; !seen {
				order = append(order, w)
			}
			vec[w] += hv[w]
		}
	}
	if len(vec) == 0 {
		return 0, 0
	}
	var hn2, dot, covered float64
	for _, w := range order {
		x := vec[w]
		hn2 += x * x
	}
	qvec := make(map[string]float64, len(qc.Tokens))
	for i, w := range qc.Tokens {
		qvec[w] += mathSqrt(qc.TI2[i])
	}
	var qn2 float64
	for _, w := range qc.Tokens {
		x, ok := qvec[w]
		if !ok {
			continue
		}
		delete(qvec, w)
		qn2 += x * x
		if y, ok := vec[w]; ok {
			dot += x * y
		}
	}
	for i, w := range qc.Tokens {
		if _, ok := vec[w]; ok {
			covered += qc.TI2[i]
		}
	}
	if qn2 == 0 || hn2 == 0 || qc.NormSq == 0 {
		return 0, 0
	}
	return dot / (mathSqrt(qn2) * mathSqrt(hn2)), covered / qc.NormSq
}

func mathSqrt(x float64) float64 { return math.Sqrt(x) }

// mass returns ‖tokens[a:b]‖² = Σ TI(w)².
func mass(qc *QueryColumn, a, b int) float64 {
	var s float64
	for i := a; i < b; i++ {
		s += qc.TI2[i]
	}
	return s
}

func intersectsHeader(tokens []string, v *TableView, r, c int) bool {
	for _, w := range tokens {
		if v.headerHas(r, c, w) {
			return true
		}
	}
	return false
}

// inSimCosine is the TF-IDF cosine between the pinned query part
// tokens[a:b] and header row r of column c, using the header vectors
// precomputed in the view.
func inSimCosine(qc *QueryColumn, a, b int, v *TableView, r, c int) float64 {
	hvec := v.headerVec[r][c]
	hnorm := v.headerNorm[r][c]
	if len(hvec) == 0 || hnorm == 0 || a >= b {
		return 0
	}
	// Query-part vector: TI(w) per occurrence.
	qvec := make(map[string]float64, b-a)
	for i := a; i < b; i++ {
		qvec[qc.Tokens[i]] += math.Sqrt(qc.TI2[i])
	}
	// Accumulate in first-occurrence token order (consuming qvec entries as
	// they are visited), NOT map order: feature extraction must be
	// bit-deterministic so repeated builds — pooled-arena vs fresh — sum
	// identically.
	var dot, qn2 float64
	for i := a; i < b; i++ {
		w := qc.Tokens[i]
		x, ok := qvec[w]
		if !ok {
			continue
		}
		delete(qvec, w)
		qn2 += x * x
		if y, ok := hvec[w]; ok {
			dot += x * y
		}
	}
	if qn2 == 0 {
		return 0
	}
	return dot / (math.Sqrt(qn2) * hnorm)
}

// inSimCover is the Cover variant of inSim (§3.2.2): the TI²-weighted
// fraction of the pinned part's tokens that appear in the header row.
func inSimCover(qc *QueryColumn, a, b int, v *TableView, r, c int) float64 {
	total := mass(qc, a, b)
	if total == 0 {
		return 0
	}
	var hit float64
	for i := a; i < b; i++ {
		if v.headerHas(r, c, qc.Tokens[i]) {
			hit += qc.TI2[i]
		}
	}
	return hit / total
}

// outSim scores the unpinned query part tokens[a:b] against the five
// outside parts with soft-maxed reliabilities (§3.2.1).
func outSim(qc *QueryColumn, a, b int, v *TableView, r, c int, p Params) float64 {
	norm := mass(qc, a, b)
	if norm == 0 {
		return 0
	}
	var sum float64
	for i := a; i < b; i++ {
		w := qc.Tokens[i]
		miss := 1.0
		if v.TitleSet[w] {
			miss *= 1 - p.RelTitle
		}
		if cs := v.ContextScore[w]; cs > 0 {
			// Snippet scores modulate the context reliability (§2.1.2).
			miss *= 1 - p.RelContext*cs
		}
		if v.otherHeaderRowsHave(r, c, w) {
			miss *= 1 - p.RelOtherHeaderRow
		}
		if v.otherHeaderColsHave(r, c, w) {
			miss *= 1 - p.RelOtherHeaderCol
		}
		if v.FreqBody[w] {
			miss *= 1 - p.RelBody
		}
		sum += qc.TI2[i] / norm * (1 - miss)
	}
	return sum
}
