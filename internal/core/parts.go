package core

// PartMatchReport records, for one (query column, table column) pair,
// which outSim parts matched at least one query token while the column
// header also pinned part of the query (positive inSim). It feeds the
// reliability estimation of §3.2.1 (internal/train).
type PartMatchReport struct {
	// AnyInSim reports whether any header row of the column shares a
	// token with the query column (a positive inSim pin is possible).
	AnyInSim bool
	// Parts flags matches in T, C, Hc, Hr, B order.
	Parts [5]bool
}

// PartMatches analyzes which parts of table view v support query column
// qc at column c.
func PartMatches(qc *QueryColumn, v *TableView, c int) PartMatchReport {
	var rep PartMatchReport
	if c >= v.NumCols {
		return rep
	}
	for r := 0; r < v.HeaderRowCount(); r++ {
		for _, w := range qc.Tokens {
			if v.headerHas(r, c, w) {
				rep.AnyInSim = true
			}
		}
	}
	if !rep.AnyInSim {
		return rep
	}
	for _, w := range qc.Tokens {
		if v.TitleSet[w] {
			rep.Parts[0] = true
		}
		if v.ContextScore[w] > 0 {
			rep.Parts[1] = true
		}
		for r := 0; r < v.HeaderRowCount(); r++ {
			if v.otherHeaderRowsHave(r, c, w) {
				rep.Parts[2] = true
			}
			if v.otherHeaderColsHave(r, c, w) {
				rep.Parts[3] = true
			}
		}
		if v.FreqBody[w] {
			rep.Parts[4] = true
		}
	}
	return rep
}
