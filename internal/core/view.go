package core

import (
	"math"
	"strings"
	"sync/atomic"

	"wwt/internal/text"
	"wwt/internal/wtable"
)

// QueryColumn is one analyzed query column: the normalized token sequence
// (order matters — SegSim segments it into prefix and suffix) and the
// squared TF-IDF mass of every token under the corpus statistics.
type QueryColumn struct {
	Raw    string
	Tokens []string
	TI2    []float64 // TI(w)² per token
	NormSq float64   // ‖Qℓ‖²
}

// AnalyzeQuery normalizes each raw query column against the corpus stats.
func AnalyzeQuery(cols []string, stats CorpusStats) []QueryColumn {
	out := make([]QueryColumn, len(cols))
	for i, raw := range cols {
		toks := text.Normalize(raw)
		qc := QueryColumn{Raw: raw, Tokens: toks, TI2: make([]float64, len(toks))}
		for j, w := range toks {
			ti := stats.IDF(w)
			qc.TI2[j] = ti * ti
			qc.NormSq += ti * ti
		}
		out[i] = qc
	}
	return out
}

// TableView caches every piece of analyzed text the features touch, so
// that feature computation stays pure and allocation-light.
//
// The ID-based column sets (ColCellIDs, HeaderIDs) are interned: two views
// may be compared by ContentSim/HeaderSim only when both were built
// against the same Interner (ViewCache and Builder.Build guarantee this
// for every view inside one model).
type TableView struct {
	Table   *wtable.Table
	NumCols int

	// id is process-unique, assigned at view build; PairSimCache keys
	// view pairs by it.
	id uint64

	// HeaderTokens[r][c]: normalized tokens of header row r, column c.
	HeaderTokens [][][]string
	// headerSet[r][c]: membership set of HeaderTokens[r][c].
	headerSet [][]map[string]bool
	// headerVec[r][c]: TF-IDF vector of the header cell; headerNorm its L2
	// norm (for inSim cosines).
	headerVec  [][]map[string]float64
	headerNorm [][]float64

	TitleSet map[string]bool // title rows + caption
	// ContextScore maps each context token to the best score of a snippet
	// containing it (§2.1.2 attaches snippet scores exactly for this use):
	// page titles carry 1.0; buried or trailing snippets carry less, so a
	// stray mention far from the table cannot ride outSim at full
	// reliability.
	ContextScore map[string]float64
	FreqBody     map[string]bool // tokens frequent in some column (B part)

	// ColCellIDs[c]: sorted interned IDs of the normalized whole-cell
	// strings of column c (drives content-overlap similarity).
	ColCellIDs [][]uint32
	// ColTokens[c]: all normalized body tokens of column c.
	ColTokens [][]string
	// HeaderConcat[c]: all header tokens of column c, rows concatenated.
	HeaderConcat [][]string
	// HeaderIDs[c]: sorted interned IDs of the unique tokens of
	// HeaderConcat[c] (drives header similarity).
	HeaderIDs [][]uint32
}

// viewIDs issues the process-unique TableView IDs.
var viewIDs atomic.Uint64

// NewTableView analyzes a table once against the corpus statistics,
// interning cell strings and header tokens into in. A nil interner gets a
// private one — safe only when the view is never compared against another
// view (cross-view similarities require a shared interner).
func NewTableView(t *wtable.Table, p Params, stats CorpusStats, in *Interner) *TableView {
	if in == nil {
		in = NewInterner()
	}
	v := &TableView{Table: t, NumCols: t.NumCols(), id: viewIDs.Add(1)}
	h := len(t.HeaderRows)
	v.HeaderTokens = make([][][]string, h)
	v.headerSet = make([][]map[string]bool, h)
	v.headerVec = make([][]map[string]float64, h)
	v.headerNorm = make([][]float64, h)
	for r := 0; r < h; r++ {
		v.HeaderTokens[r] = make([][]string, v.NumCols)
		v.headerSet[r] = make([]map[string]bool, v.NumCols)
		v.headerVec[r] = make([]map[string]float64, v.NumCols)
		v.headerNorm[r] = make([]float64, v.NumCols)
		for c := 0; c < v.NumCols; c++ {
			toks := text.Normalize(t.Header(r, c))
			v.HeaderTokens[r][c] = toks
			v.headerSet[r][c] = toSet(toks)
			vec := make(map[string]float64, len(toks))
			for _, w := range toks {
				vec[w] += stats.IDF(w)
			}
			// Sum the norm in first-occurrence token order, not map order:
			// float addition is order-sensitive and header norms feed the
			// bit-deterministic model build.
			var n2 float64
			seen := make(map[string]bool, len(vec))
			for _, w := range toks {
				if seen[w] {
					continue
				}
				seen[w] = true
				x := vec[w]
				n2 += x * x
			}
			v.headerVec[r][c] = vec
			v.headerNorm[r][c] = sqrt(n2)
		}
	}
	v.TitleSet = toSet(text.Normalize(t.TitleText()))
	v.ContextScore = make(map[string]float64)
	for _, w := range text.Normalize(t.PageTitle) {
		v.ContextScore[w] = 1.0
	}
	for _, s := range t.Context {
		score := s.Score
		if score > 1 {
			score = 1
		}
		if score < 0 {
			score = 0
		}
		for _, w := range text.Normalize(s.Text) {
			if score > v.ContextScore[w] {
				v.ContextScore[w] = score
			}
		}
	}

	v.ColCellIDs = make([][]uint32, v.NumCols)
	v.ColTokens = make([][]string, v.NumCols)
	v.HeaderConcat = make([][]string, v.NumCols)
	v.HeaderIDs = make([][]uint32, v.NumCols)
	v.FreqBody = make(map[string]bool)
	rows := len(t.BodyRows)
	for c := 0; c < v.NumCols; c++ {
		cellIDs := make([]uint32, 0, rows)
		counts := make(map[string]int)
		var colToks []string
		for r := 0; r < rows; r++ {
			cell := t.Body(r, c)
			if cell == "" {
				continue
			}
			toks := text.Normalize(cell)
			colToks = append(colToks, toks...)
			if key := strings.Join(toks, " "); key != "" {
				cellIDs = append(cellIDs, in.Intern(key))
			}
			seen := make(map[string]bool, len(toks))
			for _, w := range toks {
				if !seen[w] {
					seen[w] = true
					counts[w]++
				}
			}
		}
		v.ColCellIDs[c] = sortedIDSet(cellIDs)
		v.ColTokens[c] = colToks
		for r := 0; r < len(v.HeaderTokens); r++ {
			v.HeaderConcat[c] = append(v.HeaderConcat[c], v.HeaderTokens[r][c]...)
		}
		hids := make([]uint32, 0, len(v.HeaderConcat[c]))
		for _, w := range v.HeaderConcat[c] {
			hids = append(hids, in.Intern(w))
		}
		v.HeaderIDs[c] = sortedIDSet(hids)
		// Frequent tokens of this column feed the B part of outSim.
		if rows > 0 {
			for w, n := range counts {
				if n >= p.FreqTokenMinCount && float64(n) >= p.FreqTokenMinFrac*float64(rows) {
					v.FreqBody[w] = true
				}
			}
		}
	}
	return v
}

// HeaderRowCount returns the number of header rows.
func (v *TableView) HeaderRowCount() int { return len(v.HeaderTokens) }

// headerHas reports whether token w occurs in header row r, column c.
func (v *TableView) headerHas(r, c int, w string) bool {
	if r < 0 || r >= len(v.headerSet) || c < 0 || c >= len(v.headerSet[r]) {
		return false
	}
	return v.headerSet[r][c][w]
}

// otherHeaderRowsHave reports whether w appears in column c in a header
// row other than r (the Hc part of outSim).
func (v *TableView) otherHeaderRowsHave(r, c int, w string) bool {
	for rr := 0; rr < len(v.headerSet); rr++ {
		if rr != r && v.headerSet[rr][c][w] {
			return true
		}
	}
	return false
}

// otherHeaderColsHave reports whether w appears in header row r in a
// column other than c (the Hr part of outSim).
func (v *TableView) otherHeaderColsHave(r, c int, w string) bool {
	if r < 0 || r >= len(v.headerSet) {
		return false
	}
	for cc := 0; cc < len(v.headerSet[r]); cc++ {
		if cc != c && v.headerSet[r][cc][w] {
			return true
		}
	}
	return false
}

// ContentSim is the content-overlap similarity between two columns: the
// Jaccard similarity of their normalized whole-cell sets, computed as an
// allocation-free merge over the views' sorted interned cell IDs. Both
// views must share one Interner.
func ContentSim(a, b *TableView, ca, cb int) float64 {
	return jaccardSortedIDs(a.ColCellIDs[ca], b.ColCellIDs[cb])
}

// HeaderSim is the token-set Jaccard of two columns' concatenated headers,
// over the views' sorted interned header-token IDs. Both views must share
// one Interner.
func HeaderSim(a, b *TableView, ca, cb int) float64 {
	return jaccardSortedIDs(a.HeaderIDs[ca], b.HeaderIDs[cb])
}

func toSet(toks []string) map[string]bool {
	s := make(map[string]bool, len(toks))
	for _, t := range toks {
		s[t] = true
	}
	return s
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
