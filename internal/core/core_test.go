package core

import (
	"math"
	"strings"
	"testing"

	"wwt/internal/wtable"
)

// constStats gives every token IDF 1, making hand-computation easy.
type constStats struct{}

func (constStats) IDF(string) float64 { return 1 }

func row(texts ...string) wtable.Row {
	cells := make([]wtable.Cell, len(texts))
	for i, t := range texts {
		cells[i] = wtable.Cell{Text: t}
	}
	return wtable.Row{Cells: cells}
}

func table(id string, headerRows [][]string, body [][]string, context string) *wtable.Table {
	t := &wtable.Table{ID: id}
	for _, hr := range headerRows {
		t.HeaderRows = append(t.HeaderRows, row(hr...))
	}
	for _, br := range body {
		t.BodyRows = append(t.BodyRows, row(br...))
	}
	if context != "" {
		t.Context = []wtable.Snippet{{Text: context, Score: 1}}
	}
	return t
}

// testIntern is shared by every view the tests build, so views from
// separate view() calls stay comparable by ContentSim/HeaderSim.
var testIntern = NewInterner()

func view(t *wtable.Table) *TableView {
	return NewTableView(t, DefaultParams(), constStats{}, testIntern)
}

func qcol(s string) *QueryColumn {
	q := AnalyzeQuery([]string{s}, constStats{})
	return &q[0]
}

func TestSegSimExactHeaderMatch(t *testing.T) {
	tb := table("t", [][]string{{"Country", "Currency"}}, [][]string{{"France", "Euro"}}, "")
	v := view(tb)
	seg, cov := segScores(qcol("currency"), v, 1, DefaultParams())
	if math.Abs(seg-1) > 1e-9 {
		t.Errorf("SegSim = %f, want 1 for exact header match", seg)
	}
	if math.Abs(cov-1) > 1e-9 {
		t.Errorf("Cover = %f, want 1", cov)
	}
	// The other column must score 0 (no shared token).
	seg0, _ := segScores(qcol("currency"), v, 0, DefaultParams())
	if seg0 != 0 {
		t.Errorf("non-matching column SegSim = %f, want 0", seg0)
	}
}

func TestSegSimSplitAcrossHeaderAndContext(t *testing.T) {
	// §3.2.1 first limitation: "Nobel prize" in context, "winner" in
	// header. The segmentation pins "winner" to the header and scores
	// "nobel prize" against the context (reliability 0.9).
	tb := table("t", [][]string{{"winner", "year"}},
		[][]string{{"Marie Curie", "1903"}}, "list of Nobel prize laureates by year")
	v := view(tb)
	p := DefaultParams()
	seg, _ := segScores(qcol("nobel prize winner"), v, 0, p)
	// Pin suffix [winner]: inSim vs header {winner} = 1 (both weight 1).
	// Out part [nobel, prize] both in context: each scores 0.9.
	want := (1.0/3)*1 + (2.0/3)*0.9
	if math.Abs(seg-want) > 1e-9 {
		t.Errorf("SegSim = %f, want %f", seg, want)
	}
	// Column "year" shares no token with the query: 0.
	if s, _ := segScores(qcol("nobel prize winner"), v, 1, p); s != 0 {
		t.Errorf("year column = %f, want 0", s)
	}
}

func TestSegSimMultiRowHeaderConcatenation(t *testing.T) {
	// Split header "Main areas" / "explored" (Fig. 1 Table 1 col 3): the
	// out part finds "explored" in the other header row (Hc, rel 0.5).
	tb := table("t", [][]string{{"Name", "Main areas"}, {"", "explored"}},
		[][]string{{"Tasman", "Oceania"}}, "")
	v := view(tb)
	seg, _ := segScores(qcol("main areas explored"), v, 1, DefaultParams())
	// Pin [main, area] row 0 (inSim=2/(sqrt2*sqrt2)=1), out [explor] in Hc: 0.5.
	want := (2.0/3)*1 + (1.0/3)*0.5
	if math.Abs(seg-want) > 1e-9 {
		t.Errorf("SegSim = %f, want %f", seg, want)
	}
	// Alternative: pin [explor] to row 1 (inSim=1), out [main, area] in Hc 0.5
	// = 1/3 + 2/3*0.5 = 0.666 < want. max picks the better.
}

func TestSegSimSpuriousSecondHeaderRowHarmless(t *testing.T) {
	// Fig. 1 Table 2: second header row "(chronological order)" must not
	// dilute the match of row 1's "Exploration".
	clean := table("a", [][]string{{"Exploration", "Who"}},
		[][]string{{"Oceania", "Tasman"}}, "")
	noisy := table("b", [][]string{{"Exploration", "Who"}, {"chronological order", ""}},
		[][]string{{"Oceania", "Tasman"}}, "")
	q := qcol("exploration")
	segClean, _ := segScores(q, view(clean), 0, DefaultParams())
	segNoisy, _ := segScores(q, view(noisy), 0, DefaultParams())
	if segNoisy < segClean-1e-9 {
		t.Errorf("spurious header row hurt SegSim: %f < %f", segNoisy, segClean)
	}
}

func TestSegSimFrequentBodyContent(t *testing.T) {
	// "Black metal bands": genre column holds "Black metal" frequently;
	// header of column 0 is "Band name". Out part hits B (rel 0.8).
	tb := table("t", [][]string{{"Band name", "Country", "Genre"}},
		[][]string{
			{"Mayhem", "Norway", "Black metal"},
			{"Darkthrone", "Norway", "Black metal"},
			{"Burzum", "Norway", "Black metal"},
		}, "")
	v := view(tb)
	seg, _ := segScores(qcol("black metal bands"), v, 0, DefaultParams())
	// Pin suffix [band] (inSim with {band, name} = 1/sqrt2), out
	// [black, metal] both frequent body tokens: 0.8 each.
	want := (1.0/3)*(1/math.Sqrt2) + (2.0/3)*0.8
	if math.Abs(seg-want) > 1e-9 {
		t.Errorf("SegSim = %f, want %f", seg, want)
	}
}

func TestSegSimCrossColumnHeader(t *testing.T) {
	// "dog breeds" vs table with adjacent headers "dog" | "breed": column
	// "dog" pins [dog], out [breed] in Hr (rel 1.0) → full score.
	tb := table("t", [][]string{{"dog", "breed", "weight"}},
		[][]string{{"Rex", "Beagle", "12"}}, "")
	v := view(tb)
	seg, _ := segScores(qcol("dog breeds"), v, 0, DefaultParams())
	want := (1.0/2)*1 + (1.0/2)*1.0
	if math.Abs(seg-want) > 1e-9 {
		t.Errorf("SegSim = %f, want %f", seg, want)
	}
}

func TestSegSimHeaderlessTableZero(t *testing.T) {
	tb := table("t", nil, [][]string{{"France", "Euro"}, {"Japan", "Yen"}}, "currency of countries")
	v := view(tb)
	if seg, cov := segScores(qcol("currency"), v, 1, DefaultParams()); seg != 0 || cov != 0 {
		t.Errorf("headerless SegSim/Cover = %f/%f, want 0", seg, cov)
	}
}

func TestSegSimMultipleMatchesDecay(t *testing.T) {
	// A token matching several parts scores 1-Π(1-p) — more than each
	// alone but less than their sum.
	tb := table("t", [][]string{{"winner", "year"}},
		[][]string{{"Curie", "1903"}}, "nobel prize winners")
	tb.TitleRows = []wtable.Row{row("Nobel prize")}
	v := view(tb)
	seg, _ := segScores(qcol("nobel prize winner"), v, 0, DefaultParams())
	// [nobel, prize] in both T (1.0) and C (0.9): 1-(0)(0.1) = 1.
	want := (1.0/3)*1 + (2.0/3)*1.0
	if math.Abs(seg-want) > 1e-9 {
		t.Errorf("SegSim = %f, want %f", seg, want)
	}
}

func TestCoverPartialHeaderMatch(t *testing.T) {
	// Cover counts matched token mass; "exchange rate" vs header
	// "exchange" covers half the query mass (pin [exchange], out [rate]
	// matches nothing).
	tb := table("t", [][]string{{"exchange", "country"}},
		[][]string{{"1.07", "France"}}, "")
	v := view(tb)
	_, cov := segScores(qcol("exchange rate"), v, 0, DefaultParams())
	if math.Abs(cov-0.5) > 1e-9 {
		t.Errorf("Cover = %f, want 0.5", cov)
	}
}

func TestTableRelevanceClip(t *testing.T) {
	// q=2: threshold 1.5. Sum of best covers 1.0 -> clipped to 0.
	cover := coverFeats([][]float64{{0.5, 0.0}, {0.0, 0.5}})
	if r := tableRelevance(cover, 2); r != 0 {
		t.Errorf("R = %f, want 0 (below clip)", r)
	}
	cover = coverFeats([][]float64{{1.0, 0.0}, {0.0, 0.8}})
	if r := tableRelevance(cover, 2); math.Abs(r-0.9) > 1e-9 {
		t.Errorf("R = %f, want 0.9", r)
	}
	// q=1: threshold 1.0.
	if r := tableRelevance(coverFeats([][]float64{{0.9}}), 1); r != 0 {
		t.Errorf("single-col R = %f, want 0", r)
	}
	if r := tableRelevance(coverFeats([][]float64{{1.0}}), 1); math.Abs(r-1.0) > 1e-9 {
		t.Errorf("single-col R = %f, want 1", r)
	}
}

// coverFeats lifts a bare cover grid into the Features grid
// tableRelevance reads.
func coverFeats(cover [][]float64) [][]Features {
	out := make([][]Features, len(cover))
	for c := range cover {
		out[c] = make([]Features, len(cover[c]))
		for ell, v := range cover[c] {
			out[c][ell].Cover = v
		}
	}
	return out
}

func TestNodePotentialShape(t *testing.T) {
	p := DefaultParams()
	f := Features{SegSim: 0.8, Cover: 0.9}
	q, nt := 2, 3
	real := nodePotential(f, 0.5, q, nt, 0, p)
	want := p.W1*0.8 + p.W2*0.9 + p.W5
	if math.Abs(real-want) > 1e-9 {
		t.Errorf("real-label potential = %f, want %f", real, want)
	}
	nr := nodePotential(Features{}, 0.5, q, nt, NR(q), p)
	wantNR := p.W4 * (2.0 / 3.0) * 0.5
	if math.Abs(nr-wantNR) > 1e-9 {
		t.Errorf("nr potential = %f, want %f", nr, wantNR)
	}
	if na := nodePotential(Features{}, 0.5, q, nt, NA(q), p); na != 0 {
		t.Errorf("na potential = %f, want 0", na)
	}
}

func buildTestModel(t *testing.T, q []string, tables []*wtable.Table) *Model {
	t.Helper()
	b := &Builder{Params: DefaultParams(), Stats: constStats{}}
	return b.Build(q, tables)
}

func TestModelStage1Confidence(t *testing.T) {
	good := table("good", [][]string{{"Country", "Currency"}},
		[][]string{{"France", "Euro"}, {"Japan", "Yen"}}, "currencies of the world")
	junk := table("junk", [][]string{{"ID", "Area"}},
		[][]string{{"7", "2236"}, {"9", "880"}}, "forest reserves")
	m := buildTestModel(t, []string{"country", "currency"}, []*wtable.Table{good, junk})

	// Distributions are proper.
	for ti := range m.Dist {
		for c := range m.Dist[ti] {
			var sum float64
			for _, p := range m.Dist[ti][c] {
				if p < -1e-12 || p > 1+1e-12 {
					t.Fatalf("probability out of range: %f", p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("distribution does not sum to 1: %f", sum)
			}
		}
	}
	// The good table's columns should be confidently mapped.
	if m.Conf[0][0] < 0.5 || m.Conf[0][1] < 0.5 {
		t.Errorf("good table confidences too low: %v", m.Conf[0])
	}
	// The junk table should not be confident about real labels.
	if m.Conf[1][0] > 0.6 || m.Conf[1][1] > 0.6 {
		t.Errorf("junk table spuriously confident: %v", m.Conf[1])
	}
}

func TestModelEdgesConnectOverlappingColumns(t *testing.T) {
	a := table("a", [][]string{{"Country", "Currency"}},
		[][]string{{"France", "Euro"}, {"Japan", "Yen"}, {"India", "Rupee"}}, "currency list")
	// b is headerless but shares content with a.
	b := table("b", nil,
		[][]string{{"France", "Euro"}, {"Japan", "Yen"}, {"India", "Rupee"}}, "")
	m := buildTestModel(t, []string{"country", "currency"}, []*wtable.Table{a, b})
	if len(m.Edges) == 0 {
		t.Fatal("no edges built despite full content overlap")
	}
	// Edges must pair column 0 with 0 and 1 with 1 (max-matching).
	for _, e := range m.Edges {
		if e.C1 != e.C2 {
			t.Errorf("mismatched edge %v", e)
		}
		if e.Coef() <= 0 {
			t.Errorf("edge with non-positive coefficient: %v", e)
		}
	}
}

func TestModelEdgeGatingByConfidence(t *testing.T) {
	// Two headerless junk tables with shared content but no confident
	// endpoint must produce no edge.
	a := table("a", nil, [][]string{{"x1", "y1"}, {"x2", "y2"}}, "")
	b := table("b", nil, [][]string{{"x1", "y1"}, {"x2", "y2"}}, "")
	m := buildTestModel(t, []string{"country", "currency"}, []*wtable.Table{a, b})
	if len(m.Edges) != 0 {
		t.Errorf("edges built between two unconfident tables: %v", m.Edges)
	}
}

func TestScoreConstraints(t *testing.T) {
	a := table("a", [][]string{{"Country", "Currency"}},
		[][]string{{"France", "Euro"}}, "currencies")
	m := buildTestModel(t, []string{"country", "currency"}, []*wtable.Table{a})
	q := 2

	ok := Labeling{Q: q, Y: [][]int{{0, 1}}}
	if s := m.Score(ok); math.IsInf(s, -1) {
		t.Error("feasible labeling scored -Inf")
	}
	mutex := Labeling{Q: q, Y: [][]int{{0, 0}}}
	if s := m.Score(mutex); !math.IsInf(s, -1) {
		t.Error("mutex violation not rejected")
	}
	halfNR := Labeling{Q: q, Y: [][]int{{NR(q), 0}}}
	if s := m.Score(halfNR); !math.IsInf(s, -1) {
		t.Error("all-Irr violation not rejected")
	}
	noFirst := Labeling{Q: q, Y: [][]int{{1, NA(q)}}}
	if s := m.Score(noFirst); !math.IsInf(s, -1) {
		t.Error("must-match violation not rejected")
	}
	minMatch := Labeling{Q: q, Y: [][]int{{0, NA(q)}}}
	if s := m.Score(minMatch); !math.IsInf(s, -1) {
		t.Error("min-match violation not rejected (q=2 needs 2 mapped)")
	}
	allNR := Labeling{Q: q, Y: [][]int{{NR(q), NR(q)}}}
	if s := m.Score(allNR); math.IsInf(s, -1) {
		t.Error("all-nr labeling must be feasible")
	}
}

func TestTableMaxMarginalsRespectMutex(t *testing.T) {
	// Two columns both matching query column 0 strongly: forcing both is
	// impossible, so each column's max-marginal for label 0 reflects the
	// other taking na.
	a := table("a", [][]string{{"Currency", "Currency"}},
		[][]string{{"Euro", "Euro"}}, "")
	m := buildTestModel(t, []string{"currency"}, []*wtable.Table{a})
	mu := m.TableMaxMarginals(0)
	q := 1
	// µ(c=0, ℓ=0) must equal θ(0,ℓ0) + θ(1,na): the other column cannot
	// also take ℓ0.
	want := m.Node[0][0][0] + m.Node[0][1][NA(q)]
	if math.Abs(mu[0][0]-want) > 1e-9 {
		t.Errorf("mu[0][0] = %f, want %f", mu[0][0], want)
	}
	// nr max-marginal equals the all-nr score.
	wantNR := m.Node[0][0][NR(q)] + m.Node[0][1][NR(q)]
	if math.Abs(mu[0][NR(q)]-wantNR) > 1e-9 {
		t.Errorf("mu[0][nr] = %f, want %f", mu[0][NR(q)], wantNR)
	}
}

func TestLabelingHelpers(t *testing.T) {
	l := NewLabeling(2, []int{2, 3})
	if l.Relevant(0) {
		t.Error("fresh labeling should be all-nr (irrelevant)")
	}
	l.Y[0][0] = 0
	l.Y[0][1] = 1
	if !l.Relevant(0) {
		t.Error("table with real labels should be relevant")
	}
	if l.Relevant(1) {
		t.Error("all-nr table should be irrelevant")
	}
	if c := l.ColumnOf(0, 1); c != 1 {
		t.Errorf("ColumnOf = %d, want 1", c)
	}
	if c := l.ColumnOf(1, 0); c != -1 {
		t.Errorf("ColumnOf missing = %d, want -1", c)
	}
	cp := l.Clone()
	cp.Y[0][0] = NA(2)
	if l.Y[0][0] == NA(2) {
		t.Error("Clone aliases underlying storage")
	}
}

func TestLabelString(t *testing.T) {
	if LabelString(0, 3) != "Q1" || LabelString(2, 3) != "Q3" {
		t.Error("query labels misrendered")
	}
	if LabelString(NA(3), 3) != "na" || LabelString(NR(3), 3) != "nr" {
		t.Error("na/nr labels misrendered")
	}
}

func TestContentSimOverlap(t *testing.T) {
	a := view(table("a", nil, [][]string{{"France"}, {"Japan"}, {"India"}}, ""))
	b := view(table("b", nil, [][]string{{"France"}, {"Japan"}, {"Brazil"}}, ""))
	s := ContentSim(a, b, 0, 0)
	if math.Abs(s-0.5) > 1e-9 { // 2 shared / 4 union
		t.Errorf("ContentSim = %f, want 0.5", s)
	}
	empty := view(table("e", nil, [][]string{{""}}, ""))
	if s := ContentSim(a, empty, 0, 0); s != 0 {
		t.Errorf("ContentSim with empty column = %f", s)
	}
}

func TestExplain(t *testing.T) {
	good := table("good", [][]string{{"Country", "Currency"}},
		[][]string{{"France", "Euro"}, {"Japan", "Yen"}}, "currencies of the world")
	m := buildTestModel(t, []string{"country", "currency"}, []*wtable.Table{good})
	l := Labeling{Q: 2, Y: [][]int{{0, 1}}}
	exp := m.Explain(0, l)
	if !exp.Relevant {
		t.Error("explanation should mark table relevant")
	}
	if len(exp.Columns) != 2 {
		t.Fatalf("columns = %d", len(exp.Columns))
	}
	if exp.Columns[0].Label != "Q1" || exp.Columns[1].Label != "Q2" {
		t.Errorf("labels = %s, %s", exp.Columns[0].Label, exp.Columns[1].Label)
	}
	if exp.Columns[0].SegSim <= 0 {
		t.Error("SegSim missing from explanation")
	}
	s := exp.String()
	for _, want := range []string{"good", "relevant", "Country", "Q1"} {
		if !strings.Contains(s, want) {
			t.Errorf("explanation text missing %q:\n%s", want, s)
		}
	}
	all := m.ExplainAll(l)
	if len(all) != 1 {
		t.Errorf("ExplainAll returned %d entries", len(all))
	}
}
