package core

import "fmt"

// Labels. A column variable takes one of q+2 labels (§3.1): indices
// 0..q-1 map the column to the corresponding query column; NA marks a
// column of a relevant table that matches no query column; NR marks a
// column of an irrelevant table.
//
// Label values are relative to q, so the helpers below take q explicitly.

// NA returns the "no match" label index for a q-column query.
func NA(q int) int { return q }

// NR returns the "irrelevant table" label index for a q-column query.
func NR(q int) int { return q + 1 }

// NumLabels returns the label-space size q+2.
func NumLabels(q int) int { return q + 2 }

// LabelString renders a label for diagnostics.
func LabelString(label, q int) string {
	switch {
	case label >= 0 && label < q:
		return fmt.Sprintf("Q%d", label+1)
	case label == NA(q):
		return "na"
	case label == NR(q):
		return "nr"
	}
	return fmt.Sprintf("label(%d)", label)
}

// Labeling assigns a label to every column of every candidate table:
// Y[t][c] is the label of column c of table t.
type Labeling struct {
	Q int     // number of query columns
	Y [][]int // per table, per column
}

// NewLabeling allocates a labeling for the given per-table column counts,
// initialized to all-NR.
func NewLabeling(q int, cols []int) Labeling {
	y := make([][]int, len(cols))
	for i, n := range cols {
		row := make([]int, n)
		for j := range row {
			row[j] = NR(q)
		}
		y[i] = row
	}
	return Labeling{Q: q, Y: y}
}

// Clone deep-copies the labeling.
func (l Labeling) Clone() Labeling {
	y := make([][]int, len(l.Y))
	for i, row := range l.Y {
		y[i] = append([]int(nil), row...)
	}
	return Labeling{Q: l.Q, Y: y}
}

// Relevant reports whether table t is labeled relevant (no column carries
// NR; by the all-Irr constraint a single NR implies all NR).
func (l Labeling) Relevant(t int) bool {
	for _, y := range l.Y[t] {
		if y == NR(l.Q) {
			return false
		}
	}
	return true
}

// ColumnOf returns the column of table t labeled with query column ell,
// or -1.
func (l Labeling) ColumnOf(t, ell int) int {
	for c, y := range l.Y[t] {
		if y == ell {
			return c
		}
	}
	return -1
}
