package core

import (
	"math"

	"wwt/internal/graph"
	"wwt/internal/slicex"
	"wwt/internal/wtable"
)

// Edge is one cross-table edge of the graphical model (§3.3). Its
// potential is (WAB + WBA) · [[ℓ_A = ℓ_B ∧ ℓ_A ≠ nr]] (Eq. 4), where the
// two directed terms are already weighted by we, the normalized similarity
// and the neighbor-confidence gates.
type Edge struct {
	T1, C1 int     // endpoint A: table index, column
	T2, C2 int     // endpoint B
	WAB    float64 // we · nsim(A,B) · [[conf(B) > τ]]
	WBA    float64 // we · nsim(B,A) · [[conf(A) > τ]]
	// IncludeNR marks plain-Potts ablation edges that also reward a
	// shared nr label (the failure mode §3.3 describes).
	IncludeNR bool
}

// Coef returns the symmetric potential coefficient of the edge.
func (e Edge) Coef() float64 { return e.WAB + e.WBA }

// Model is the assembled graphical model for one query against one
// candidate table set.
type Model struct {
	Params Params
	Q      []QueryColumn
	NumQ   int
	Views  []*TableView

	// Node[t][c][label]: θ(tc, ℓ) for labels 0..q-1, na, nr.
	Node [][][]float64
	// Feats[t][c][ell]: raw features behind the potentials.
	Feats [][][]Features
	// Rel[t]: R(Q,t) of Eq. 2.
	Rel []float64

	Edges []Edge
	// rawEdges caches the weight-independent edge candidates (matched
	// column pairs with normalized similarities) so Reweight can rebuild
	// Edges without redoing the pairwise similarity work.
	rawEdges []rawEdge
	// Dist[t][c][label]: stage-1 per-column label distribution ptc(ℓ)
	// from table-local max-marginals (§4.2). Conf[t][c] is
	// max_{ℓ ∈ 1..q} ptc(ℓ) — §3.3: "A column is confident only if
	// Pr(ℓ|tc) is large for some ℓ ∈ [1..q]" (na does not count).
	Dist [][][]float64
	Conf [][]float64
}

// rawEdge is a matched cross-table column pair before gating/weighting.
type rawEdge struct {
	t1, c1, t2, c2 int
	nsimAB, nsimBA float64
	sim            float64 // raw (unnormalized) similarity, for ablations
	matched        bool    // survived the one-one max-matching
}

// tablePair identifies one unordered candidate-table pair of the edge grid.
type tablePair struct{ t1, t2 int }

// Builder constructs Models. Stats is required; PMI may be nil when
// Params.UsePMI is false — when set, it is probed from Build's worker pool
// and must be safe for concurrent calls. Views, when set, memoizes
// TableView construction across builds (see ViewCache for the sharing
// rules). Pairs, when set, memoizes per-table-pair column similarities and
// matching survivors across builds; it requires Views (pair keys are view
// identities, so uncached fresh views would miss forever) and the same
// pair-affecting params on every sharing builder (see PairSimCache).
type Builder struct {
	Params Params
	Stats  CorpusStats
	PMI    PMISource
	Views  *ViewCache
	Pairs  *PairSimCache
	// Interner, when set and Views is nil, is the symbol table cacheless
	// builds intern into, letting parameter sweeps that rebuild the same
	// tables under many configurations pay the vocabulary cost once
	// instead of per Build. Ignored when Views is set (the cache owns its
	// own interner). Cross-view similarities only ever compare views from
	// one model, and every view of one build shares whichever interner
	// applies, so results are identical either way.
	Interner *Interner
}

// viewFor returns the (possibly cached) analyzed view of one table,
// interning into the cache's symbol table or the build-local one.
func (b *Builder) viewFor(t *wtable.Table, in *Interner) *TableView {
	if b.Views != nil {
		return b.Views.view(t, b.Params, b.Stats)
	}
	return NewTableView(t, b.Params, b.Stats, in)
}

// Build assembles the full graphical model with a private scratch arena:
// the result owns its storage and is safe to retain indefinitely.
func (b *Builder) Build(queryCols []string, tables []*wtable.Table) *Model {
	return b.BuildWith(queryCols, tables, nil)
}

// BuildWith is Build through a caller-owned scratch arena. The returned
// model aliases s — every grid and edge slice is scratch-backed — so s may
// be reused only once the model is dead, and Reweight clones of a
// scratch-backed model share its feature storage (don't reuse s while a
// clone is live either). A nil s uses a fresh private arena, which is what
// makes Build safe for retention.
//
// The per-table work — view analysis plus the SegSim/Cover/PMI² feature
// grid — is independent across tables and runs on a GOMAXPROCS-wide worker
// pool; every worker writes only its own table's slots, so the result is
// identical to the serial build.
func (b *Builder) BuildWith(queryCols []string, tables []*wtable.Table, s *BuildScratch) *Model {
	if s == nil {
		s = &BuildScratch{}
	}
	p := b.Params
	m := &Model{
		Params: p,
		Q:      AnalyzeQuery(queryCols, b.Stats),
		NumQ:   len(queryCols),
	}

	// Precompute H(Qℓ) doc sets once per query column for PMI². The sets
	// are cache-owned and read-only; the scratch only holds the headers.
	var hDocs [][]int32
	if p.UsePMI && b.PMI != nil {
		s.hDocs = slicex.Grow(s.hDocs, m.NumQ)
		hDocs = s.hDocs
		for ell, qc := range m.Q {
			hDocs[ell] = b.PMI.HeaderContextDocs(qc.Tokens)
		}
	}

	q := m.NumQ
	// Cacheless builds still need one interner shared by every view in the
	// model, or cross-view similarities would compare unrelated IDs.
	in := b.Interner
	if b.Views == nil && in == nil {
		in = NewInterner()
	}

	// Column offsets and the flat feature grid: one backing array for the
	// whole model instead of a slice per column.
	s.colOff = slicex.Grow(s.colOff, len(tables)+1)
	colOff := s.colOff
	colOff[0] = 0
	for ti, t := range tables {
		colOff[ti+1] = colOff[ti] + t.NumCols()
	}
	totalCols := colOff[len(tables)]

	s.views = slicex.Grow(s.views, len(tables))
	m.Views = s.views
	s.rel = slicex.Grow(s.rel, len(tables))
	m.Rel = s.rel
	s.feats = slicex.Grow(s.feats, totalCols*q)
	s.featRows = slicex.Grow(s.featRows, totalCols)
	s.featsTab = slicex.Grow(s.featsTab, len(tables))
	for gc := 0; gc < totalCols; gc++ {
		s.featRows[gc] = s.feats[gc*q : (gc+1)*q : (gc+1)*q]
	}
	for ti := range tables {
		s.featsTab[ti] = s.featRows[colOff[ti]:colOff[ti+1]:colOff[ti+1]]
	}
	m.Feats = s.featsTab

	parallelFor(len(tables), func(ti int) {
		v := b.viewFor(tables[ti], in)
		m.Views[ti] = v
		nt := v.NumCols
		feats := m.Feats[ti]
		for c := 0; c < nt; c++ {
			for ell := 0; ell < q; ell++ {
				seg, cov := segScores(&m.Q[ell], v, c, p)
				f := Features{SegSim: seg, Cover: cov}
				if p.UsePMI && b.PMI != nil {
					f.PMI2 = pmi2(hDocs[ell], v, c, b.PMI, p)
				}
				feats[c][ell] = f
			}
		}
		m.Rel[ti] = tableRelevance(feats, q)
	})
	m.computeNodes(s)
	m.computeStage1(s)
	// Without a view cache every build mints fresh view IDs, so a pair
	// cache could never hit — bypass it instead of polluting it with
	// permanently dead entries.
	pairs := b.Pairs
	if b.Views == nil {
		pairs = nil
	}
	m.buildRawEdges(pairs, s, colOff)
	m.finalizeEdges(s)
	return m
}

// computeNodes assembles node potentials from the cached features under
// the current Params, into the scratch grids when s is non-nil (fresh
// arrays otherwise, for Reweight clones).
func (m *Model) computeNodes(s *BuildScratch) {
	q := m.NumQ
	labels := NumLabels(q)
	totalCols := 0
	for _, v := range m.Views {
		totalCols += v.NumCols
	}
	var backing []float64
	var rows [][]float64
	var tab [][][]float64
	if s != nil {
		s.node = slicex.Grow(s.node, totalCols*labels)
		s.nodeRows = slicex.Grow(s.nodeRows, totalCols)
		s.nodeTab = slicex.Grow(s.nodeTab, len(m.Views))
		backing, rows, tab = s.node, s.nodeRows, s.nodeTab
	} else {
		backing = make([]float64, totalCols*labels)
		rows = make([][]float64, totalCols)
		tab = make([][][]float64, len(m.Views))
	}
	gc := 0
	for ti, v := range m.Views {
		nt := v.NumCols
		tab[ti] = rows[gc : gc+nt : gc+nt]
		for c := 0; c < nt; c++ {
			row := backing[(gc+c)*labels : (gc+c+1)*labels : (gc+c+1)*labels]
			rows[gc+c] = row
			for label := 0; label < labels; label++ {
				var f Features
				if label < q {
					f = m.Feats[ti][c][label]
				}
				row[label] = nodePotential(f, m.Rel[ti], q, nt, label, m.Params)
			}
		}
		gc += nt
	}
	m.Node = tab
}

// Reweight returns a model identical to m except for the trainable
// weights in p: node potentials, stage-1 confidences and gated edges are
// recomputed from the cached features and raw edge candidates. Feature
// extraction (SegSim/Cover/PMI²/similarities) is NOT redone, so Reweight
// is cheap enough for the exhaustive weight enumeration of §3.4.
// p must not change feature-affecting fields (Unsegmented, UsePMI,
// reliabilities); those require a full rebuild. The clone shares the
// feature and raw-edge storage of m: if m was built through BuildWith,
// its scratch must stay unused while the clone is live.
func (m *Model) Reweight(p Params) *Model {
	clone := *m
	clone.Params = p
	clone.computeNodes(nil)
	clone.computeStage1(nil)
	clone.finalizeEdges(nil)
	return &clone
}

// Cols returns the per-table column counts.
func (m *Model) Cols() []int {
	out := make([]int, len(m.Views))
	for i, v := range m.Views {
		out[i] = v.NumCols
	}
	return out
}

// TableMaxMarginals computes µ_tc(ℓ) for one table under the mutex and
// all-Irr constraints only (§4.2.3): the must-match and min-match
// constraints are deliberately excluded so relative magnitudes stay
// undistorted. Returns [col][label] with labels 0..q-1, na, nr; the
// result is freshly allocated and safe to retain.
func (m *Model) TableMaxMarginals(ti int) [][]float64 {
	return m.tableMaxMarginals(ti, &stage1Scratch{})
}

// tableMaxMarginals is TableMaxMarginals through one worker's scratch; the
// returned grid aliases sc and is valid until its next use.
func (m *Model) tableMaxMarginals(ti int, sc *stage1Scratch) [][]float64 {
	q := m.NumQ
	nt := m.Views[ti].NumCols
	node := m.Node[ti]

	sc.capL = slicex.Grow(sc.capL, nt)
	capL := sc.capL
	for i := range capL {
		capL[i] = 1
	}
	// Rights: q query labels (capacity 1) plus na with capacity nt.
	sc.capR = slicex.Grow(sc.capR, q+1)
	capR := sc.capR
	for j := 0; j < q; j++ {
		capR[j] = 1
	}
	capR[q] = nt
	sc.wB = slicex.Grow(sc.wB, nt*(q+1))
	sc.w = slicex.Grow(sc.w, nt)
	w := sc.w
	for c := 0; c < nt; c++ {
		w[c] = sc.wB[c*(q+1) : (c+1)*(q+1)]
		for j := 0; j < q; j++ {
			w[c][j] = node[c][j]
		}
		w[c][q] = node[c][NA(q)]
	}
	sol := graph.SolveAssignmentWS(capL, capR, w, &sc.ws)
	mm := sol.MaxMarginals()

	var nrScore float64
	for c := 0; c < nt; c++ {
		nrScore += node[c][NR(q)]
	}
	sc.outB = slicex.Grow(sc.outB, nt*NumLabels(q))
	sc.out = slicex.Grow(sc.out, nt)
	out := sc.out
	for c := 0; c < nt; c++ {
		out[c] = sc.outB[c*NumLabels(q) : (c+1)*NumLabels(q)]
		for j := 0; j <= q; j++ { // q is the na right node
			label := j
			if j == q {
				label = NA(q)
			}
			out[c][label] = mm[c][j]
		}
		out[c][NR(q)] = nrScore
	}
	return out
}

// computeStage1 fills Dist and Conf from per-table max-marginals. Each
// table's assignment solve is independent, so the loop runs on the shared
// worker pool with per-index writes; every worker reuses its own slot of
// the stage-1 solver scratch.
func (m *Model) computeStage1(s *BuildScratch) {
	q := m.NumQ
	labels := NumLabels(q)
	totalCols := 0
	for _, v := range m.Views {
		totalCols += v.NumCols
	}
	var distB []float64
	var distRows [][]float64
	var distTab [][][]float64
	var confB []float64
	var confTab [][]float64
	workers := numWorkers(len(m.Views))
	var st1 []stage1Scratch
	if s != nil {
		s.dist = slicex.Grow(s.dist, totalCols*labels)
		s.distRows = slicex.Grow(s.distRows, totalCols)
		s.distTab = slicex.Grow(s.distTab, len(m.Views))
		s.conf = slicex.Grow(s.conf, totalCols)
		s.confTab = slicex.Grow(s.confTab, len(m.Views))
		distB, distRows, distTab = s.dist, s.distRows, s.distTab
		confB, confTab = s.conf, s.confTab
		s.st1 = slicex.GrowKeep(s.st1, workers)
		st1 = s.st1
	} else {
		distB = make([]float64, totalCols*labels)
		distRows = make([][]float64, totalCols)
		distTab = make([][][]float64, len(m.Views))
		confB = make([]float64, totalCols)
		confTab = make([][]float64, len(m.Views))
		st1 = make([]stage1Scratch, workers)
	}
	gc := 0
	for ti, v := range m.Views {
		nt := v.NumCols
		distTab[ti] = distRows[gc : gc+nt : gc+nt]
		for c := 0; c < nt; c++ {
			distRows[gc+c] = distB[(gc+c)*labels : (gc+c+1)*labels : (gc+c+1)*labels]
		}
		confTab[ti] = confB[gc : gc+nt : gc+nt]
		gc += nt
	}
	m.Dist = distTab
	m.Conf = confTab
	parallelForWorkers(len(m.Views), workers, func(w, ti int) {
		mu := m.tableMaxMarginals(ti, &st1[w])
		nt := m.Views[ti].NumCols
		dist := m.Dist[ti]
		conf := m.Conf[ti]
		for c := 0; c < nt; c++ {
			softmaxInto(dist[c], mu[c])
			best := 0.0
			for label := 0; label < q; label++ {
				if dist[c][label] > best {
					best = dist[c][label]
				}
			}
			conf[c] = best
		}
	})
}

// buildRawEdges realizes the weight-independent part of §3.3: content
// similarity between cross-table column pairs, normalization against each
// column's neighborhood, and the one-one max-matching per table pair.
//
// The per-pair work — the Jaccard grid and the blended max-matching — is
// independent across table pairs, so it fans out over the worker pool
// (served from cache when one is wired), each pair writing only its own
// slot. The query-dependent part — summing each column's neighborhood
// denominator and normalizing — runs as a deterministic serial merge over
// the slots in (t1, t2, c1, c2) order, the exact accumulation order of the
// old serial map-based path, so float sums stay bit-identical. The denom /
// edge-index maps of that path are replaced by flat arrays indexed by
// global column offsets, all scratch-backed. colOff is the prefix sum
// BuildWith already computed — colOff[t] is the global offset of table
// t's first column — passed through so the feature grid and the edge
// offsets share one source of truth.
func (m *Model) buildRawEdges(cache *PairSimCache, s *BuildScratch, colOff []int) {
	p := m.Params
	n := len(m.Views)
	if n < 2 {
		return
	}

	pairs := s.pairs[:0]
	for t1 := 0; t1 < n; t1++ {
		for t2 := t1 + 1; t2 < n; t2++ {
			pairs = append(pairs, tablePair{t1, t2})
		}
	}
	s.pairs = pairs
	s.slots = slicex.Grow(s.slots, len(pairs))
	slots := s.slots
	parallelFor(len(pairs), func(i int) {
		pr := pairs[i]
		if cache != nil {
			slots[i] = cache.pairs(m.Views[pr.t1], m.Views[pr.t2], p)
		} else {
			slots[i] = computePairSims(m.Views[pr.t1], m.Views[pr.t2], p)
		}
	})

	total := 0
	for _, sl := range slots {
		total += len(sl)
	}
	if total == 0 {
		return
	}
	// Neighborhood denominators depend on the whole candidate set, so they
	// stay query-side: accumulate over every surviving pair first, then
	// normalize.
	s.denom = slicex.GrowClear(s.denom, colOff[n])
	denom := s.denom
	for i, sl := range slots {
		pr := pairs[i]
		off1, off2 := colOff[pr.t1], colOff[pr.t2]
		for _, e := range sl {
			denom[off1+int(e.c1)] += e.sim
			denom[off2+int(e.c2)] += e.sim
		}
	}
	// Every similar pair becomes a raw edge (the naive Potts ablations use
	// them all); matched marks the max-matching survivors the custom
	// potential keeps.
	raw := s.rawEdges[:0]
	for i, sl := range slots {
		pr := pairs[i]
		off1, off2 := colOff[pr.t1], colOff[pr.t2]
		for _, e := range sl {
			raw = append(raw, rawEdge{
				t1: pr.t1, c1: int(e.c1), t2: pr.t2, c2: int(e.c2),
				nsimAB:  e.sim / (p.Lambda + denom[off1+int(e.c1)]),
				nsimBA:  e.sim / (p.Lambda + denom[off2+int(e.c2)]),
				sim:     e.sim,
				matched: e.matched,
			})
		}
	}
	s.rawEdges = raw
	m.rawEdges = raw
}

// finalizeEdges applies the weight- and confidence-dependent part of
// Eq. 4 to the raw edge candidates, honoring the ablation variant. The
// edge list is scratch-backed when s is non-nil.
func (m *Model) finalizeEdges(s *BuildScratch) {
	p := m.Params
	var edges []Edge
	if s != nil {
		edges = s.edges[:0]
	}
	for _, re := range m.rawEdges {
		switch p.Edges {
		case EdgePotts, EdgePottsNoNR:
			// Naive variants: every similar pair, raw similarity, no
			// confidence gates. Split the coefficient evenly so the
			// table-centric messages stay defined.
			w := p.We * re.sim / 2
			edges = append(edges, Edge{
				T1: re.t1, C1: re.c1, T2: re.t2, C2: re.c2,
				WAB: w, WBA: w,
				IncludeNR: p.Edges == EdgePotts,
			})
		default:
			if !re.matched {
				continue
			}
			var wab, wba float64
			if m.Conf[re.t2][re.c2] > p.ConfidenceThreshold {
				wab = p.We * re.nsimAB
			}
			if m.Conf[re.t1][re.c1] > p.ConfidenceThreshold {
				wba = p.We * re.nsimBA
			}
			if wab == 0 && wba == 0 {
				continue
			}
			edges = append(edges, Edge{T1: re.t1, C1: re.c1, T2: re.t2, C2: re.c2, WAB: wab, WBA: wba})
		}
	}
	if s != nil {
		s.edges = edges
	}
	// An edge-free model keeps a nil Edges slice in both modes, so pooled
	// and fresh builds stay comparable with reflect.DeepEqual.
	if len(edges) == 0 {
		edges = nil
	}
	m.Edges = edges
}

// EdgePotential evaluates Eq. 4 for an edge under labels la, lb.
func (m *Model) EdgePotential(e Edge, la, lb int) float64 {
	if la != lb {
		return 0
	}
	if la == NR(m.NumQ) && !e.IncludeNR {
		return 0
	}
	return e.Coef()
}

// Score evaluates the overall objective (Eq. 9) of a labeling: node
// potentials plus edge potentials, with -Inf for any violated hard
// constraint (Eq. 5–8).
func (m *Model) Score(l Labeling) float64 {
	q := m.NumQ
	var total float64
	for ti, v := range m.Views {
		labels := l.Y[ti]
		if len(labels) != v.NumCols {
			return math.Inf(-1)
		}
		nrCount := 0
		realCount := 0
		seen := make(map[int]bool)
		hasFirst := false
		for c, y := range labels {
			total += m.Node[ti][c][y]
			switch {
			case y == NR(q):
				nrCount++
			case y >= 0 && y < q:
				if seen[y] {
					return math.Inf(-1) // mutex
				}
				seen[y] = true
				realCount++
				if y == 0 {
					hasFirst = true
				}
			}
		}
		if nrCount != 0 && nrCount != len(labels) {
			return math.Inf(-1) // all-Irr
		}
		if nrCount == 0 {
			if !hasFirst {
				return math.Inf(-1) // must-match
			}
			if realCount < m.Params.MinMatch(q) {
				return math.Inf(-1) // min-match
			}
		}
	}
	for _, e := range m.Edges {
		total += m.EdgePotential(e, l.Y[e.T1][e.C1], l.Y[e.T2][e.C2])
	}
	return total
}

// softmaxInto writes the softmax of xs into out (same length). -Inf
// entries get probability zero; an all -Inf input yields the uniform
// distribution.
func softmaxInto(out, xs []float64) {
	best := math.Inf(-1)
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	if math.IsInf(best, -1) {
		for i := range out {
			out[i] = 1 / float64(len(xs))
		}
		return
	}
	var sum float64
	for i, x := range xs {
		if math.IsInf(x, -1) {
			out[i] = 0
			continue
		}
		out[i] = math.Exp(x - best)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
}

func ones(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 1
	}
	return out
}
