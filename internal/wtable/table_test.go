package wtable

import (
	"strings"
	"testing"
)

func row(texts ...string) Row {
	cells := make([]Cell, len(texts))
	for i, t := range texts {
		cells[i] = Cell{Text: t}
	}
	return Row{Cells: cells}
}

func sample() *Table {
	return &Table{
		ID:        "t1",
		URL:       "http://example.com/page",
		PageTitle: "List of explorers",
		TitleRows: []Row{row("Explorers")},
		HeaderRows: []Row{
			row("Name", "Nationality", "Main areas"),
			row("", "", "explored"),
		},
		BodyRows: []Row{
			row("Abel Tasman", "Dutch", "Oceania"),
			row("Vasco da Gama", "Portuguese", "Sea route to India"),
		},
		Context: []Snippet{{Text: "This article lists the explorations in history", Score: 0.8}},
	}
}

func TestNumCols(t *testing.T) {
	tb := sample()
	if tb.NumCols() != 3 {
		t.Errorf("NumCols = %d, want 3", tb.NumCols())
	}
	ragged := &Table{ID: "r", BodyRows: []Row{row("a"), row("a", "b", "c", "d")}}
	if ragged.NumCols() != 4 {
		t.Errorf("ragged NumCols = %d, want 4", ragged.NumCols())
	}
}

func TestHeaderAccess(t *testing.T) {
	tb := sample()
	if got := tb.Header(0, 2); got != "Main areas" {
		t.Errorf("Header(0,2) = %q", got)
	}
	if got := tb.Header(1, 2); got != "explored" {
		t.Errorf("Header(1,2) = %q", got)
	}
	if got := tb.Header(5, 0); got != "" {
		t.Errorf("out-of-range header = %q", got)
	}
	if got := tb.Header(0, 9); got != "" {
		t.Errorf("out-of-range col = %q", got)
	}
}

func TestHeaderTextMultiRow(t *testing.T) {
	tb := sample()
	ht := tb.HeaderText(2)
	if len(ht) != 2 || ht[0] != "Main areas" || ht[1] != "explored" {
		t.Errorf("HeaderText(2) = %v", ht)
	}
	if ht := tb.HeaderText(0); len(ht) != 1 {
		t.Errorf("HeaderText(0) should skip empty second row: %v", ht)
	}
}

func TestColumnText(t *testing.T) {
	tb := sample()
	col := tb.ColumnText(1)
	if len(col) != 2 || col[0] != "Dutch" || col[1] != "Portuguese" {
		t.Errorf("ColumnText(1) = %v", col)
	}
}

func TestTitleAndContext(t *testing.T) {
	tb := sample()
	if tb.TitleText() != "Explorers" {
		t.Errorf("TitleText = %q", tb.TitleText())
	}
	if !strings.Contains(tb.ContextText(), "explorations") {
		t.Errorf("ContextText = %q", tb.ContextText())
	}
}

func TestValidate(t *testing.T) {
	tb := sample()
	if err := tb.Validate(); err != nil {
		t.Errorf("valid table rejected: %v", err)
	}
	bad := &Table{ID: "x"}
	if err := bad.Validate(); err == nil {
		t.Error("empty table accepted")
	}
	noID := &Table{BodyRows: []Row{row("a")}}
	if err := noID.Validate(); err == nil {
		t.Error("missing ID accepted")
	}
}

func TestCellIsEmpty(t *testing.T) {
	if !(Cell{Text: "  "}).IsEmpty() {
		t.Error("whitespace cell should be empty")
	}
	if (Cell{Text: "x"}).IsEmpty() {
		t.Error("non-empty cell misreported")
	}
}

func TestRowCellPadding(t *testing.T) {
	r := row("a")
	if got := r.Cell(3); got.Text != "" {
		t.Errorf("padded cell = %q", got.Text)
	}
	if got := r.Cell(-1); got.Text != "" {
		t.Errorf("negative index cell = %q", got.Text)
	}
}

func TestStringSummary(t *testing.T) {
	s := sample().String()
	for _, want := range []string{"t1", "3 cols", "2 header rows", "2 body rows", "Explorers"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
