// Package wtable defines the web-table data model shared by the extractor,
// the index, the column mapper and the consolidator: tables with title,
// header and body rows, per-cell formatting signals, and scored context
// snippets harvested from the surrounding document.
package wtable

import (
	"fmt"
	"strings"
)

// Cell is one table cell with the formatting markers the header detector
// relies on (§2.1.1 of the paper).
type Cell struct {
	Text      string
	Bold      bool
	Italic    bool
	Underline bool
	IsTH      bool   // used the designated <th> tag
	BGColor   string // background color, if styled
	CSSClass  string
}

// IsEmpty reports whether the cell holds no visible text.
func (c Cell) IsEmpty() bool { return strings.TrimSpace(c.Text) == "" }

// Row is one table row.
type Row struct {
	Cells []Cell
}

// Cell returns the i-th cell, or an empty cell when the row is ragged.
func (r Row) Cell(i int) Cell {
	if i < 0 || i >= len(r.Cells) {
		return Cell{}
	}
	return r.Cells[i]
}

// Texts returns the trimmed text of every cell.
func (r Row) Texts() []string {
	out := make([]string, len(r.Cells))
	for i, c := range r.Cells {
		out[i] = strings.TrimSpace(c.Text)
	}
	return out
}

// Snippet is a context fragment extracted from around the table in its
// parent document, with the relevance score assigned by the extractor
// (§2.1.2).
type Snippet struct {
	Text  string
	Score float64
}

// Table is one extracted web table.
type Table struct {
	ID        string // stable unique id within a corpus
	URL       string // source page
	PageTitle string

	TitleRows  []Row // rows classified as table titles
	HeaderRows []Row // rows classified as headers (possibly none)
	BodyRows   []Row

	Context []Snippet
}

// NumCols returns the column count: the maximum cell count over header and
// body rows. Ragged rows are padded with empty cells by Cell accessors.
func (t *Table) NumCols() int {
	n := 0
	for _, r := range t.HeaderRows {
		if len(r.Cells) > n {
			n = len(r.Cells)
		}
	}
	for _, r := range t.BodyRows {
		if len(r.Cells) > n {
			n = len(r.Cells)
		}
	}
	return n
}

// NumHeaderRows returns the number of header rows.
func (t *Table) NumHeaderRows() int { return len(t.HeaderRows) }

// NumBodyRows returns the number of body rows.
func (t *Table) NumBodyRows() int { return len(t.BodyRows) }

// Header returns the text of header row r, column c ("" when absent).
func (t *Table) Header(r, c int) string {
	if r < 0 || r >= len(t.HeaderRows) {
		return ""
	}
	return strings.TrimSpace(t.HeaderRows[r].Cell(c).Text)
}

// Body returns the text of body row r, column c ("" when absent).
func (t *Table) Body(r, c int) string {
	if r < 0 || r >= len(t.BodyRows) {
		return ""
	}
	return strings.TrimSpace(t.BodyRows[r].Cell(c).Text)
}

// ColumnText returns the body text of column c, one entry per body row.
func (t *Table) ColumnText(c int) []string {
	out := make([]string, len(t.BodyRows))
	for i := range t.BodyRows {
		out[i] = t.Body(i, c)
	}
	return out
}

// HeaderText returns all header text of column c across header rows, top to
// bottom.
func (t *Table) HeaderText(c int) []string {
	out := make([]string, 0, len(t.HeaderRows))
	for r := range t.HeaderRows {
		if h := t.Header(r, c); h != "" {
			out = append(out, h)
		}
	}
	return out
}

// TitleText returns the concatenated text of all title rows.
func (t *Table) TitleText() string {
	var parts []string
	for _, r := range t.TitleRows {
		for _, c := range r.Cells {
			if s := strings.TrimSpace(c.Text); s != "" {
				parts = append(parts, s)
			}
		}
	}
	return strings.Join(parts, " ")
}

// ContextText returns all context snippets joined (unweighted); the feature
// code consumes Context directly when it needs scores.
func (t *Table) ContextText() string {
	var parts []string
	for _, s := range t.Context {
		parts = append(parts, s.Text)
	}
	return strings.Join(parts, " ")
}

// String renders a compact human-readable summary, used by CLIs and tests.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table %s (%d cols, %d header rows, %d body rows)", t.ID, t.NumCols(), len(t.HeaderRows), len(t.BodyRows))
	if tt := t.TitleText(); tt != "" {
		fmt.Fprintf(&b, " title=%q", tt)
	}
	return b.String()
}

// Validate checks structural sanity: at least one body row and one column,
// and no row wider than NumCols. It returns a descriptive error otherwise.
func (t *Table) Validate() error {
	if t.ID == "" {
		return fmt.Errorf("table missing ID")
	}
	if len(t.BodyRows) == 0 {
		return fmt.Errorf("table %s: no body rows", t.ID)
	}
	n := t.NumCols()
	if n == 0 {
		return fmt.Errorf("table %s: no columns", t.ID)
	}
	return nil
}
