package text

// Porter stemmer (M.F. Porter, "An algorithm for suffix stripping", 1980).
// This is a faithful, dependency-free implementation of the original five
// step algorithm. Tokens of length < 3 and tokens containing non-letters
// are returned unchanged.

type porterWord struct {
	b []byte
	// end is the index of the last letter of the current stem (inclusive).
	end int
}

func isConsonant(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isConsonant(w, i-1)
	}
	return true
}

// measure computes m in the [C](VC)^m[V] decomposition of w[0..end].
func (p *porterWord) measure(end int) int {
	n, i := 0, 0
	for {
		if i > end {
			return n
		}
		if !isConsonant(p.b, i) {
			break
		}
		i++
	}
	i++
	for {
		for {
			if i > end {
				return n
			}
			if isConsonant(p.b, i) {
				break
			}
			i++
		}
		i++
		n++
		for {
			if i > end {
				return n
			}
			if !isConsonant(p.b, i) {
				break
			}
			i++
		}
		i++
	}
}

func (p *porterWord) hasVowel(end int) bool {
	for i := 0; i <= end; i++ {
		if !isConsonant(p.b, i) {
			return true
		}
	}
	return false
}

// doubleC reports whether w ends in a double consonant at position j.
func (p *porterWord) doubleC(j int) bool {
	if j < 1 {
		return false
	}
	if p.b[j] != p.b[j-1] {
		return false
	}
	return isConsonant(p.b, j)
}

// cvc reports whether the stem ending at i matches consonant-vowel-consonant
// where the final consonant is not w, x or y.
func (p *porterWord) cvc(i int) bool {
	if i < 2 || !isConsonant(p.b, i) || isConsonant(p.b, i-1) || !isConsonant(p.b, i-2) {
		return false
	}
	switch p.b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func (p *porterWord) endsWith(s string) bool {
	l := len(s)
	if l > p.end+1 {
		return false
	}
	return string(p.b[p.end+1-l:p.end+1]) == s
}

// setTo replaces the matched suffix of length oldLen with s.
func (p *porterWord) setTo(oldLen int, s string) {
	base := p.end + 1 - oldLen
	p.b = append(p.b[:base], s...)
	p.end = base + len(s) - 1
}

// r replaces suffix s (already matched) with repl if measure of the stem
// before the suffix is > 0.
func (p *porterWord) r(s, repl string) {
	if p.measure(p.end-len(s)) > 0 {
		p.setTo(len(s), repl)
	}
}

func (p *porterWord) step1a() {
	if p.endsWith("sses") {
		p.setTo(4, "ss")
	} else if p.endsWith("ies") {
		p.setTo(3, "i")
	} else if !p.endsWith("ss") && p.endsWith("s") {
		p.setTo(1, "")
	}
}

func (p *porterWord) step1b() {
	if p.endsWith("eed") {
		if p.measure(p.end-3) > 0 {
			p.setTo(3, "ee")
		}
		return
	}
	var cut int
	if p.endsWith("ed") && p.hasVowel(p.end-2) {
		cut = 2
	} else if p.endsWith("ing") && p.hasVowel(p.end-3) {
		cut = 3
	} else {
		return
	}
	p.setTo(cut, "")
	switch {
	case p.endsWith("at"):
		p.setTo(2, "ate")
	case p.endsWith("bl"):
		p.setTo(2, "ble")
	case p.endsWith("iz"):
		p.setTo(2, "ize")
	case p.doubleC(p.end):
		switch p.b[p.end] {
		case 'l', 's', 'z':
		default:
			p.end--
			p.b = p.b[:p.end+1]
		}
	case p.measure(p.end) == 1 && p.cvc(p.end):
		p.setTo(0, "e")
	}
}

func (p *porterWord) step1c() {
	if p.endsWith("y") && p.hasVowel(p.end-1) {
		p.b[p.end] = 'i'
	}
}

var step2Rules = []struct{ from, to string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

var step3Rules = []struct{ from, to string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func (p *porterWord) step2() {
	for _, rule := range step2Rules {
		if p.endsWith(rule.from) {
			p.r(rule.from, rule.to)
			return
		}
	}
}

func (p *porterWord) step3() {
	for _, rule := range step3Rules {
		if p.endsWith(rule.from) {
			p.r(rule.from, rule.to)
			return
		}
	}
}

func (p *porterWord) step4() {
	for _, s := range step4Suffixes {
		if !p.endsWith(s) {
			continue
		}
		stemEnd := p.end - len(s)
		if s == "ion" && stemEnd >= 0 && p.b[stemEnd] != 's' && p.b[stemEnd] != 't' {
			continue
		}
		if p.measure(stemEnd) > 1 {
			p.setTo(len(s), "")
		}
		return
	}
}

func (p *porterWord) step5() {
	if p.endsWith("e") {
		m := p.measure(p.end - 1)
		if m > 1 || (m == 1 && !p.cvc(p.end-1)) {
			p.setTo(1, "")
		}
	}
	if p.endsWith("ll") && p.measure(p.end) > 1 {
		p.setTo(1, "")
	}
}

// Stem returns the Porter stem of tok. tok is expected to be lowercase;
// tokens shorter than 3 runes or containing non a-z bytes are returned
// unchanged.
func Stem(tok string) string {
	if len(tok) < 3 {
		return tok
	}
	for i := 0; i < len(tok); i++ {
		if tok[i] < 'a' || tok[i] > 'z' {
			return tok
		}
	}
	p := &porterWord{b: []byte(tok), end: len(tok) - 1}
	p.step1a()
	p.step1b()
	p.step1c()
	p.step2()
	p.step3()
	p.step4()
	p.step5()
	return string(p.b[:p.end+1])
}
