// Package text provides the low-level IR primitives used throughout WWT:
// tokenization, stopword filtering, Porter stemming, TF-IDF vocabularies and
// sparse vectors, and similarity measures over token bags.
//
// All functions are deterministic and allocation-conscious; the package has
// no dependencies outside the standard library.
package text

import (
	"strings"
	"unicode"
)

// Tokenize lowercases s and splits it into maximal runs of letters and
// digits. Punctuation, markup remnants and whitespace act as separators.
// The returned slice is freshly allocated.
func Tokenize(s string) []string {
	var toks []string
	start := -1
	lower := strings.ToLower(s)
	for i, r := range lower {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			toks = append(toks, lower[start:i])
			start = -1
		}
	}
	if start >= 0 {
		toks = append(toks, lower[start:])
	}
	return toks
}

// stopwords is a compact English stopword list tuned for header/context
// matching: determiners, prepositions and auxiliaries that carry no column
// semantics. Content-bearing short words ("us", "uk") are deliberately kept.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "of": true, "in": true, "on": true,
	"at": true, "by": true, "for": true, "to": true, "and": true, "or": true,
	"is": true, "are": true, "was": true, "were": true, "be": true,
	"with": true, "as": true, "from": true, "that": true, "this": true,
	"these": true, "those": true, "it": true, "its": true, "their": true,
	"his": true, "her": true, "have": true, "has": true, "had": true,
	"but": true, "not": true, "no": true, "all": true, "any": true,
	"can": true, "will": true, "into": true, "about": true, "than": true,
	"per": true, "via": true, "s": true, "t": true,
}

// IsStopword reports whether tok (already lowercased) is on the stopword
// list used by Normalize.
func IsStopword(tok string) bool { return stopwords[tok] }

// Normalize runs the full analysis chain used by the index and by all
// similarity features: Tokenize, drop stopwords, Porter-stem each survivor.
// Numeric tokens pass through unstemmed.
func Normalize(s string) []string {
	raw := Tokenize(s)
	out := raw[:0]
	for _, t := range raw {
		if stopwords[t] {
			continue
		}
		out = append(out, Stem(t))
	}
	return out
}

// NormalizeKeep is Normalize without stopword removal; useful for phrase
// fields (titles) where function words still disambiguate.
func NormalizeKeep(s string) []string {
	raw := Tokenize(s)
	for i, t := range raw {
		raw[i] = Stem(t)
	}
	return raw
}
