package text

import (
	"reflect"
	"testing"
)

// TestNormCacheMatchesNormalize pins cached results to plain Normalize and
// checks LRU eviction bookkeeping.
func TestNormCacheMatchesNormalize(t *testing.T) {
	c := NewNormCache(4)
	inputs := []string{"Indian rupee", "the pound sterling", "2236", "", "Indian rupee"}
	for _, s := range inputs {
		if got, want := c.Normalize(s), Normalize(s); !reflect.DeepEqual(got, want) {
			t.Errorf("Normalize(%q) = %v, want %v", s, got, want)
		}
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 4 {
		t.Errorf("stats = %d hits / %d misses, want 1/4", hits, misses)
	}
	// Overflow the capacity: oldest entries evict, size stays bounded.
	for _, s := range []string{"a1", "b2", "c3", "d4", "e5"} {
		c.Normalize(s)
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d, want capacity 4", c.Len())
	}
}

// TestNormCacheWarmZeroAlloc guards the point of the cache: a warm hit —
// the second-probe steady state, where sampled cell values repeat across
// queries — must not allocate. Alongside the warm-pool guards in the root
// package, this keeps text.Normalize from re-emerging as the dominant
// steady-state allocator.
func TestNormCacheWarmZeroAlloc(t *testing.T) {
	c := NewNormCache(0)
	cells := []string{"France", "Euro", "Indian rupee", "Pound sterling", "2236"}
	for _, s := range cells {
		c.Normalize(s)
	}
	buf := make([]string, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		buf = buf[:0]
		for _, s := range cells {
			buf = append(buf, c.Normalize(s)...)
		}
	})
	if allocs != 0 {
		t.Errorf("warm NormCache hit allocates %.1f/op, want 0", allocs)
	}
}
