package text

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"  multiple   spaces ", []string{"multiple", "spaces"}},
		{"CO2-emissions (2008)", []string{"co2", "emissions", "2008"}},
		{"", nil},
		{"---", nil},
		{"US$ 4.50", []string{"us", "4", "50"}},
		{"naïve café", []string{"naïve", "café"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestStemKnownPairs(t *testing.T) {
	// Reference pairs from Porter's original test vocabulary.
	pairs := map[string]string{
		"caresses":       "caress",
		"ponies":         "poni",
		"ties":           "ti",
		"caress":         "caress",
		"cats":           "cat",
		"feed":           "feed",
		"agreed":         "agre",
		"plastered":      "plaster",
		"bled":           "bled",
		"motoring":       "motor",
		"sing":           "sing",
		"conflated":      "conflat",
		"troubled":       "troubl",
		"sized":          "size",
		"hopping":        "hop",
		"tanned":         "tan",
		"falling":        "fall",
		"hissing":        "hiss",
		"fizzed":         "fizz",
		"failing":        "fail",
		"filing":         "file",
		"happy":          "happi",
		"sky":            "sky",
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		"triplicate":     "triplic",
		"formative":      "form",
		"formalize":      "formal",
		"electriciti":    "electr",
		"electrical":     "electr",
		"hopeful":        "hope",
		"goodness":       "good",
		"revival":        "reviv",
		"allowance":      "allow",
		"inference":      "infer",
		"airliner":       "airlin",
		"gyroscopic":     "gyroscop",
		"adjustable":     "adjust",
		"defensible":     "defens",
		"irritant":       "irrit",
		"replacement":    "replac",
		"adjustment":     "adjust",
		"dependent":      "depend",
		"adoption":       "adopt",
		"homologou":      "homolog",
		"communism":      "commun",
		"activate":       "activ",
		"angulariti":     "angular",
		"homologous":     "homolog",
		"effective":      "effect",
		"bowdlerize":     "bowdler",
		"probate":        "probat",
		"rate":           "rate",
		"cease":          "ceas",
		"controll":       "control",
		"roll":           "roll",
	}
	for in, want := range pairs {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortAndNonAlpha(t *testing.T) {
	for _, s := range []string{"ab", "a", "", "x9", "2008", "co2"} {
		if got := Stem(s); got != s {
			t.Errorf("Stem(%q) = %q, want unchanged", s, got)
		}
	}
}

func TestStemIdempotentOnStems(t *testing.T) {
	// Stemming the stem of common nouns should be stable for this sample.
	for _, s := range []string{"cat", "motor", "fall", "country", "population"} {
		once := Stem(s)
		twice := Stem(once)
		if once != twice {
			t.Errorf("Stem not stable: %q -> %q -> %q", s, once, twice)
		}
	}
}

func TestNormalizeDropsStopwords(t *testing.T) {
	got := Normalize("The population of the United States")
	want := []string{"popul", "unit", "state"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Normalize = %v, want %v", got, want)
	}
}

func TestVocabIDFMonotone(t *testing.T) {
	v := NewVocab()
	v.AddDoc([]string{"common", "rare"})
	v.AddDoc([]string{"common"})
	v.AddDoc([]string{"common"})
	if v.IDF("rare") <= v.IDF("common") {
		t.Errorf("IDF(rare)=%f should exceed IDF(common)=%f", v.IDF("rare"), v.IDF("common"))
	}
	if v.IDF("unseen") < v.IDF("rare") {
		t.Errorf("unseen token should have max IDF")
	}
}

func TestVocabAddDocDedup(t *testing.T) {
	v := NewVocab()
	v.AddDoc([]string{"x", "x", "x"})
	if v.DF("x") != 1 {
		t.Errorf("DF should count documents, not occurrences: got %d", v.DF("x"))
	}
}

func TestCosineProperties(t *testing.T) {
	v := NewVocab()
	v.AddDoc([]string{"a", "b"})
	v.AddDoc([]string{"b", "c"})
	a := v.VectorOf([]string{"a", "b"})
	if c := Cosine(a, a); math.Abs(c-1) > 1e-9 {
		t.Errorf("self cosine = %f, want 1", c)
	}
	empty := Vector{}
	if c := Cosine(a, empty); c != 0 {
		t.Errorf("cosine with empty = %f, want 0", c)
	}
	b := v.VectorOf([]string{"c"})
	if c := Cosine(a, b); c != 0 {
		t.Errorf("disjoint cosine = %f, want 0", c)
	}
}

func TestCosineSymmetricQuick(t *testing.T) {
	v := NewVocab()
	v.AddDoc([]string{"a", "b", "c", "d"})
	mk := func(bits uint8) Vector {
		toks := []string{}
		for i, s := range []string{"a", "b", "c", "d"} {
			if bits&(1<<i) != 0 {
				toks = append(toks, s)
			}
		}
		return v.VectorOf(toks)
	}
	f := func(x, y uint8) bool {
		a, b := mk(x%16), mk(y%16)
		return math.Abs(Cosine(a, b)-Cosine(b, a)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCosineRangeQuick(t *testing.T) {
	v := NewVocab()
	words := []string{"w0", "w1", "w2", "w3", "w4", "w5"}
	v.AddDoc(words)
	v.AddDoc(words[:3])
	mk := func(bits uint8) Vector {
		toks := []string{}
		for i, s := range words {
			if bits&(1<<i) != 0 {
				toks = append(toks, s)
			}
		}
		return v.VectorOf(toks)
	}
	f := func(x, y uint8) bool {
		c := Cosine(mk(x%64), mk(y%64))
		return c >= -1e-12 && c <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaccardTokens(t *testing.T) {
	if j := JaccardTokens([]string{"a", "b"}, []string{"b", "c"}); math.Abs(j-1.0/3) > 1e-9 {
		t.Errorf("Jaccard = %f, want 1/3", j)
	}
	if j := JaccardTokens(nil, []string{"a"}); j != 0 {
		t.Errorf("Jaccard with empty = %f, want 0", j)
	}
	if j := JaccardTokens([]string{"a", "a"}, []string{"a"}); math.Abs(j-1) > 1e-9 {
		t.Errorf("Jaccard should use sets: got %f", j)
	}
}

func TestVectorTopTerms(t *testing.T) {
	v := NewVocab()
	v.AddDoc([]string{"common"})
	v.AddDoc([]string{"common"})
	v.AddDoc([]string{"common", "rare"})
	vec := v.VectorOf([]string{"common", "rare"})
	top := vec.TopTerms(1)
	if len(top) != 1 || top[0] != "rare" {
		t.Errorf("TopTerms = %v, want [rare]", top)
	}
	if got := vec.TopTerms(10); len(got) != 2 {
		t.Errorf("TopTerms over-ask = %v", got)
	}
}

func TestNormSqMatchesNorm(t *testing.T) {
	v := NewVocab()
	v.AddDoc([]string{"a", "b", "c"})
	vec := v.VectorOf([]string{"a", "b", "b"})
	if d := math.Abs(vec.NormSq() - vec.Norm()*vec.Norm()); d > 1e-9 {
		t.Errorf("NormSq inconsistent with Norm: diff %g", d)
	}
}
