package text

import (
	"maps"
	"math"
	"slices"
	"sort"
)

// Vocab accumulates document frequencies over a corpus and converts token
// bags into TF-IDF vectors. It is the repo-wide stand-in for Lucene's term
// statistics. Vocab is not safe for concurrent mutation; concurrent reads
// after construction are fine.
type Vocab struct {
	docs int
	df   map[string]int
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab { return &Vocab{df: make(map[string]int)} }

// AddDoc registers one document's (deduplicated) tokens into the document
// frequency table.
func (v *Vocab) AddDoc(tokens []string) {
	v.docs++
	seen := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		if !seen[t] {
			seen[t] = true
			v.df[t]++
		}
	}
}

// Docs returns the number of documents registered.
func (v *Vocab) Docs() int { return v.docs }

// DF returns the document frequency of tok.
func (v *Vocab) DF(tok string) int { return v.df[tok] }

// IDF returns the smoothed inverse document frequency
// log(1 + N/(1+df)). Unknown tokens get the maximum IDF.
func (v *Vocab) IDF(tok string) float64 {
	n := v.docs
	if n == 0 {
		return 1
	}
	return math.Log(1 + float64(n)/float64(1+v.df[tok]))
}

// Vector is a sparse TF-IDF vector keyed by token.
type Vector map[string]float64

// VectorOf builds the TF-IDF vector of a token bag: tf(t) * idf(t).
func (v *Vocab) VectorOf(tokens []string) Vector {
	tf := make(map[string]int, len(tokens))
	for _, t := range tokens {
		tf[t]++
	}
	out := make(Vector, len(tf))
	for t, c := range tf {
		out[t] = float64(c) * v.IDF(t)
	}
	return out
}

// TI returns the TF-IDF weight of a single occurrence of tok, i.e. the
// paper's TI(w) with tf = 1.
func (v *Vocab) TI(tok string) float64 { return v.IDF(tok) }

// Norm returns the L2 norm of the vector.
func (a Vector) Norm() float64 {
	return math.Sqrt(a.NormSq())
}

// NormSq returns the squared L2 norm — the paper's ‖·‖² quantity.
// Like every float reduction in the repo it sums in a deterministic
// (sorted-key) order: map-range sums are bit-nondeterministic.
func (a Vector) NormSq() float64 {
	var s float64
	for _, t := range slices.Sorted(maps.Keys(a)) {
		x := a[t]
		s += x * x
	}
	return s
}

// Dot returns the inner product of two sparse vectors, summing over the
// smaller vector's keys in sorted order for bit-determinism.
func (a Vector) Dot(b Vector) float64 {
	if len(b) < len(a) {
		a, b = b, a
	}
	var s float64
	for _, t := range slices.Sorted(maps.Keys(a)) {
		if y, ok := b[t]; ok {
			s += a[t] * y
		}
	}
	return s
}

// Cosine returns the cosine similarity of two sparse vectors; zero when
// either vector is empty.
func Cosine(a, b Vector) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return a.Dot(b) / (na * nb)
}

// CosineTokens is Cosine over raw token bags using vocabulary v.
func (v *Vocab) CosineTokens(a, b []string) float64 {
	return Cosine(v.VectorOf(a), v.VectorOf(b))
}

// NormSqOf returns ‖tokens‖² under v, treating repeated tokens with their
// term frequency.
func (v *Vocab) NormSqOf(tokens []string) float64 {
	return v.VectorOf(tokens).NormSq()
}

// TopTerms returns up to k tokens of the vector ordered by descending
// weight (ties broken lexicographically); useful for debugging and for the
// consolidator's column naming.
func (a Vector) TopTerms(k int) []string {
	type tw struct {
		t string
		w float64
	}
	all := make([]tw, 0, len(a))
	for t, w := range a {
		all = append(all, tw{t, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].t < all[j].t
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].t
	}
	return out
}

// JaccardTokens returns the Jaccard similarity of two token sets.
func JaccardTokens(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sa := make(map[string]bool, len(a))
	for _, t := range a {
		sa[t] = true
	}
	sb := make(map[string]bool, len(b))
	for _, t := range b {
		sb[t] = true
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
