package text

import "wwt/internal/lru"

// NormCache is a bounded, concurrency-safe LRU memoization of Normalize.
// The second index probe re-normalizes sampled body cells on every query,
// and cell values repeat heavily within and across queries (the same
// tables keep being sampled), so the tokenize + stopword + stem chain —
// the dominant steady-state allocator once the arenas are pooled — is paid
// once per distinct cell string. Cached token slices are shared: callers
// must treat them as read-only (every in-repo consumer only appends copies
// into its own buffer).
type NormCache struct {
	c *lru.Cache[string, []string]
}

// DefaultNormCacheSize bounds the cache when NewNormCache is given a
// non-positive capacity.
const DefaultNormCacheSize = 32768

// NewNormCache returns an LRU of at most capacity distinct strings.
func NewNormCache(capacity int) *NormCache {
	if capacity <= 0 {
		capacity = DefaultNormCacheSize
	}
	return &NormCache{c: lru.New[string, []string](capacity)}
}

// Normalize returns Normalize(s), memoized on the raw string. A warm hit
// allocates nothing; the returned slice is shared and read-only.
func (c *NormCache) Normalize(s string) []string {
	return c.c.Get(s, func() []string { return Normalize(s) })
}

// Stats reports cumulative hit/miss counts.
func (c *NormCache) Stats() (hits, misses uint64) { return c.c.Stats() }

// Len returns the number of cached entries.
func (c *NormCache) Len() int { return c.c.Len() }
