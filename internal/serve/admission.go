package serve

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// errOverloaded is returned by acquire when admitting the request would
// exceed both the in-flight capacity and the wait queue; the handler maps
// it to 429 + Retry-After.
var errOverloaded = errors.New("serve: overloaded")

// admission is the bounded in-flight semaphore behind load shedding.
// Units are engine worker slots: a request acquires min(members, workers)
// slots for the duration of its batch. Up to queueDepth slots' worth of
// requests may wait for capacity; any demand beyond that is shed
// immediately — the queue is bounded by construction, never by client
// patience. Waiters are admitted strictly FIFO, so a wide batch at the
// head of the queue cannot be starved by a stream of narrow requests
// slipping past it (head-of-line blocking is the accepted cost; the
// queue is small).
type admission struct {
	mu          sync.Mutex
	cond        *sync.Cond
	inFlight    int        // slots currently executing
	queued      int        // slots currently waiting for capacity
	waiters     *list.List // FIFO of *int (each waiter's slot count)
	maxInFlight int
	queueDepth  int
}

func newAdmission(maxInFlight, queueDepth int) *admission {
	a := &admission{maxInFlight: maxInFlight, queueDepth: queueDepth, waiters: list.New()}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// acquire claims n slots, waiting in the bounded FIFO queue when the
// server is saturated. It returns errOverloaded when the queue is full
// (shed load) and ctx.Err() when the caller gives up while waiting. n is
// clamped to the capacity so one oversized request cannot become
// unadmittable (New clamps Config.Workers the same way, so in practice n
// already fits).
func (a *admission) acquire(ctx context.Context, n int) error {
	if n > a.maxInFlight {
		n = a.maxInFlight
	}
	a.mu.Lock()
	if a.waiters.Len() == 0 && a.inFlight+n <= a.maxInFlight {
		a.inFlight += n
		a.mu.Unlock()
		return nil
	}
	if a.queued+n > a.queueDepth {
		a.mu.Unlock()
		return errOverloaded
	}
	a.queued += n
	el := a.waiters.PushBack(&n)
	// Wake the waiters (they re-check and go back to sleep) when this
	// caller abandons the wait, so it can leave the queue.
	stop := context.AfterFunc(ctx, func() {
		a.mu.Lock()
		a.cond.Broadcast()
		a.mu.Unlock()
	})
	defer stop()
	for a.waiters.Front() != el || a.inFlight+n > a.maxInFlight {
		if err := ctx.Err(); err != nil {
			a.queued -= n
			a.waiters.Remove(el)
			a.mu.Unlock()
			// A departing head may have unblocked the next waiter.
			a.cond.Broadcast()
			return err
		}
		a.cond.Wait()
	}
	a.queued -= n
	a.waiters.Remove(el)
	a.inFlight += n
	a.mu.Unlock()
	// The new head may also fit in the remaining capacity.
	a.cond.Broadcast()
	return nil
}

// release returns n slots (the same n acquire granted, post-clamp) and
// wakes waiters.
func (a *admission) release(n int) {
	if n > a.maxInFlight {
		n = a.maxInFlight
	}
	a.mu.Lock()
	a.inFlight -= n
	a.mu.Unlock()
	a.cond.Broadcast()
}

// snapshot reports current occupancy for /healthz and /metrics.
func (a *admission) snapshot() (inFlight, queued, capacity int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inFlight, a.queued, a.maxInFlight
}
