package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"wwt"
	"wwt/internal/index"
)

// liveEngine freezes the test corpus to a flat directory and opens it
// live, so the ingest endpoint runs against the real segment machinery.
func liveEngine(t *testing.T) *wwt.LiveEngine {
	t.Helper()
	eng := testEngine(t)
	dir := t.TempDir()
	if err := index.WriteSharded(dir, eng.Searcher(), 2); err != nil {
		t.Fatal(err)
	}
	if err := eng.Store.Save(filepath.Join(dir, index.StoreFileName)); err != nil {
		t.Fatal(err)
	}
	le, err := wwt.OpenLive(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { le.Close() })
	return le
}

const metalsPage = `<html><head><title>Metals</title></head><body>
<table><tr><th>Metal</th><th>Symbol</th></tr>
<tr><td>Gold</td><td>Au</td></tr><tr><td>Silver</td><td>Ag</td></tr>
<tr><td>Iron</td><td>Fe</td></tr></table></body></html>`

// TestIngestNotRegisteredOnFrozenBackend: a plain engine has no live
// surface, so POST /v1/ingest must not exist.
func TestIngestNotRegisteredOnFrozenBackend(t *testing.T) {
	ts := httptest.NewServer(New(testEngine(t), Config{}))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("frozen backend accepted an ingest")
	}
}

// TestIngestEndToEnd: POST an HTML page, then query the new table through
// /v1/answer on the same daemon — the whole point of live ingest — and
// check the wwt_index_* gauges moved.
func TestIngestEndToEnd(t *testing.T) {
	le := liveEngine(t)
	ts := httptest.NewServer(New(le, Config{}))
	defer ts.Close()

	body, _ := json.Marshal(map[string]string{"html": metalsPage, "url": "http://m.example/metals"})
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var ing ingestDTO
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if ing.Ingested != 1 || ing.Generation != 1 || ing.Segments != 2 {
		t.Fatalf("ingest response = %+v", ing)
	}

	// The ingested table answers queries without a restart.
	resp2, data := postJSON(t, ts, `{"columns": ["metal", "symbol"]}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("answer status %d: %s", resp2.StatusCode, data)
	}
	var member memberDTO
	if err := json.Unmarshal(data, &member); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range member.Rows {
		if len(row.Cells) > 0 && row.Cells[0] == "Gold" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ingested table not answering: %+v", member.Rows)
	}

	// Re-ingesting the same page collides on table IDs: 409.
	resp3, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate ingest status %d, want 409", resp3.StatusCode)
	}

	// Metrics expose the live-index gauges and ingest counters.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	met := readAll(t, mresp)
	for _, want := range []string{
		"wwt_index_generation 1",
		"wwt_index_segments 2",
		"wwt_ingest_requests_total 1",
		"wwt_ingest_errors_total 1",
	} {
		if !strings.Contains(met, want) {
			t.Fatalf("metrics missing %q:\n%s", want, met)
		}
	}
}

// TestIngestCSV: a CSV table ingests with the first record as header.
func TestIngestCSV(t *testing.T) {
	le := liveEngine(t)
	ts := httptest.NewServer(New(le, Config{}))
	defer ts.Close()

	body := `{"csv": [{"id": "rates-1", "title": "Exchange rates",
		"data": "Country,Rate\nNarnia,42\nOz,7\n"}]}`
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ing ingestDTO
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ing.Ingested != 1 {
		t.Fatalf("csv ingest: status %d, %+v", resp.StatusCode, ing)
	}
	if got := le.Info().Docs; got != 3 {
		t.Fatalf("docs = %d, want 3", got)
	}
}

// TestIngestBadRequests: malformed bodies and empty batches are rejected
// without touching the index.
func TestIngestBadRequests(t *testing.T) {
	le := liveEngine(t)
	ts := httptest.NewServer(New(le, Config{}))
	defer ts.Close()

	for _, body := range []string{
		`not json`,
		`{}`, // neither html nor csv
		`{"html": "<table><tr><td>a</td></tr></table>"}`,    // html without url
		`{"csv": [{"data": "A,B\n1,2\n"}]}`,                 // csv without id
		`{"csv": [{"id": "x", "data": "A,B\n"}]}`,           // header only
		`{"html": "<p>tableless</p>", "url": "http://x/y"}`, // nothing extracted
	} {
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	if info := le.Info(); info.Generation != 0 || info.Segments != 1 {
		t.Fatalf("bad requests moved the index: %+v", info)
	}
}
