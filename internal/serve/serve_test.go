package serve

// Serving-layer tests: request/response shapes over a real engine,
// deterministic load shedding and deadline behavior over a stub backend,
// metrics exposition, and graceful drain of in-flight requests.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wwt"
	"wwt/internal/consolidate"
	"wwt/internal/extract"
	"wwt/internal/wtable"
)

func testTables(t *testing.T) []*wtable.Table {
	t.Helper()
	pages := map[string]string{
		"http://a.example/currencies": `<html><head><title>Currencies of the world</title></head><body>
<h1>World currencies by country</h1><p>This article lists currencies of the world.</p>
<table><tr><th>Country</th><th>Currency</th></tr>
<tr><td>France</td><td>Euro</td></tr><tr><td>Japan</td><td>Yen</td></tr>
<tr><td>India</td><td>Indian rupee</td></tr><tr><td>Brazil</td><td>Real</td></tr></table>
</body></html>`,
		"http://b.example/capitals": `<html><head><title>Capitals</title></head><body>
<p>Capital cities by country.</p>
<table><tr><th>Country</th><th>Capital</th></tr>
<tr><td>France</td><td>Paris</td></tr><tr><td>Japan</td><td>Tokyo</td></tr>
<tr><td>India</td><td>New Delhi</td></tr><tr><td>Brazil</td><td>Brasilia</td></tr></table>
</body></html>`,
	}
	var tables []*wtable.Table
	opts := extract.NewOptions()
	for url, html := range pages {
		tables = append(tables, extract.Page(url, html, opts)...)
	}
	if len(tables) == 0 {
		t.Fatal("no tables extracted")
	}
	return tables
}

func testEngine(t *testing.T) *wwt.Engine {
	t.Helper()
	eng, err := wwt.NewEngine(testTables(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func postJSON(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/answer", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestSingleAnswer round-trips one query through a real engine and checks
// the response shape.
func TestSingleAnswer(t *testing.T) {
	ts := httptest.NewServer(New(testEngine(t), Config{}))
	defer ts.Close()

	resp, body := postJSON(t, ts, `{"columns": ["country", "currency"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var m memberDTO
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("bad JSON %s: %v", body, err)
	}
	if m.Error != "" || len(m.Rows) == 0 || m.Tables == 0 {
		t.Fatalf("unexpected member result: %+v", m)
	}
	for _, row := range m.Rows {
		if len(row.Cells) != 2 {
			t.Fatalf("row has %d cells, want 2: %+v", len(row.Cells), row)
		}
	}
}

// TestBatchAnswer: member errors stay in their own slots, the rest of the
// batch answers, and the batch summary counts both.
func TestBatchAnswer(t *testing.T) {
	ts := httptest.NewServer(New(testEngine(t), Config{}))
	defer ts.Close()

	resp, body := postJSON(t, ts,
		`{"queries": [{"columns": ["country", "currency"]}, {"columns": ["the of a"]}, {"columns": ["country", "capital"]}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var b batchDTO
	if err := json.Unmarshal(body, &b); err != nil {
		t.Fatalf("bad JSON %s: %v", body, err)
	}
	if len(b.Results) != 3 || b.Queries != 3 || b.Failed != 1 {
		t.Fatalf("batch summary: %+v", b)
	}
	if b.Results[1].Error == "" || len(b.Results[1].Rows) != 0 {
		t.Fatalf("bad member not isolated: %+v", b.Results[1])
	}
	for _, i := range []int{0, 2} {
		if b.Results[i].Error != "" || len(b.Results[i].Rows) == 0 {
			t.Fatalf("member %d: %+v", i, b.Results[i])
		}
	}
}

// TestBatchScheduleSJF: a batch carrying "schedule": "sjf" and per-request
// planner knobs answers exactly like the default FIFO batch — scheduling
// reorders dispatch, never output slots.
func TestBatchScheduleSJF(t *testing.T) {
	ts := httptest.NewServer(New(testEngine(t), Config{}))
	defer ts.Close()

	body := `{"queries": [{"columns": ["country", "currency"]}, {"columns": ["country", "capital"]}]}`
	resp, fifo := postJSON(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fifo status = %d (%s)", resp.StatusCode, fifo)
	}
	sjfBody := `{"queries": [{"columns": ["country", "currency"]}, {"columns": ["country", "capital"]}], "schedule": "sjf", "planner": {"elide_probe2": false}}`
	resp, sjf := postJSON(t, ts, sjfBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sjf status = %d (%s)", resp.StatusCode, sjf)
	}
	var bf, bs batchDTO
	if err := json.Unmarshal(fifo, &bf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(sjf, &bs); err != nil {
		t.Fatal(err)
	}
	if len(bs.Results) != 2 || bs.Failed != 0 {
		t.Fatalf("sjf batch summary: %+v", bs)
	}
	for i := range bf.Results {
		a, _ := json.Marshal(bf.Results[i].Rows)
		b, _ := json.Marshal(bs.Results[i].Rows)
		if string(a) != string(b) {
			t.Fatalf("member %d rows diverge under sjf:\n%s\n%s", i, a, b)
		}
	}
}

// TestRetryAfterDerivation pins the drain-estimate clamp: cold hold
// average floors at 1s, long drains cap at MaxTimeout.
func TestRetryAfterDerivation(t *testing.T) {
	s := New(testEngine(t), Config{MaxTimeout: 10 * time.Second})
	if got := s.retryAfter(5, 1, 4); got != "1" {
		t.Errorf("cold estimator: Retry-After = %s, want 1", got)
	}
	s.met.hold.Observe(float64(2 * time.Second))  // one 2s wave observed
	if got := s.retryAfter(7, 1, 4); got != "4" { // ceil(8/4)=2 waves x 2s
		t.Errorf("warm estimator: Retry-After = %s, want 4", got)
	}
	if got := s.retryAfter(400, 1, 4); got != "10" { // clamped to MaxTimeout
		t.Errorf("long drain: Retry-After = %s, want 10", got)
	}
}

// TestRequestValidation: malformed bodies, empty requests, mixed forms
// and oversized batches are rejected without reaching the engine.
func TestRequestValidation(t *testing.T) {
	ts := httptest.NewServer(New(testEngine(t), Config{MaxBatchSize: 2}))
	defer ts.Close()

	for _, tc := range []struct {
		body string
		want int
	}{
		{`not json`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},
		{`{"columns": ["a"], "queries": [{"columns": ["b"]}]}`, http.StatusBadRequest},
		{`{"queries": [{"columns":["a"]},{"columns":["b"]},{"columns":["c"]}]}`, http.StatusRequestEntityTooLarge},
		{`{"columns": ["the of a"]}`, http.StatusBadRequest}, // engine: no content words
		{`{"queries": [{"columns":["a"]}], "schedule": "bogus"}`, http.StatusBadRequest},
	} {
		resp, body := postJSON(t, ts, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("body %q: status = %d, want %d (%s)", tc.body, resp.StatusCode, tc.want, body)
		}
		var e errorDTO
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("body %q: error response not well-formed JSON: %s", tc.body, body)
		}
	}
}

// stubBackend is a controllable Backend: it signals when a batch starts
// and holds every member until release is closed or the member's context
// expires.
type stubBackend struct {
	started chan struct{} // receives one token per AnswerBatchPlan call
	release chan struct{} // close to let held batches finish
}

func newStubBackend() *stubBackend {
	return &stubBackend{started: make(chan struct{}, 64), release: make(chan struct{})}
}

func (b *stubBackend) AnswerBatchPlan(ctx context.Context, queries []wwt.Query, workers int, perQuery time.Duration, _ wwt.BatchPlan) *wwt.BatchResult {
	b.started <- struct{}{}
	br := &wwt.BatchResult{
		Results: make([]*wwt.Result, len(queries)),
		Errs:    make([]error, len(queries)),
	}
	br.Timings.Queries = len(queries)
	for i := range queries {
		qctx := ctx
		var cancel context.CancelFunc
		if perQuery > 0 {
			qctx, cancel = context.WithTimeout(ctx, perQuery)
		}
		select {
		case <-b.release:
			br.Results[i] = &wwt.Result{Answer: &consolidate.Answer{}}
		case <-qctx.Done():
			br.Errs[i] = qctx.Err()
			br.Timings.Failed++
		}
		if cancel != nil {
			cancel()
		}
	}
	return br
}

func (b *stubBackend) CacheStats() wwt.EngineCacheStats { return wwt.EngineCacheStats{} }

func (b *stubBackend) PlanStats() wwt.PlanStats { return wwt.PlanStats{} }

// TestAdmissionShedding saturates a 1-slot, no-queue server and demands
// the second request is shed with 429 + Retry-After while the first
// completes untouched.
func TestAdmissionShedding(t *testing.T) {
	stub := newStubBackend()
	ts := httptest.NewServer(New(stub, Config{Workers: 1, MaxInFlight: 1, QueueDepth: -1}))
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/answer", "application/json",
			strings.NewReader(`{"columns": ["country"]}`))
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-stub.started // the first request holds the only slot

	resp, body := postJSON(t, ts, `{"columns": ["currency"]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(stub.release)
	if got := <-done; got != http.StatusOK {
		t.Fatalf("first request finished with %d, want 200", got)
	}

	// Capacity freed: the server admits again.
	resp, body = postJSON(t, ts, `{"columns": ["country"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain status = %d (%s)", resp.StatusCode, body)
	}
}

// TestDeadlineExceeded: a request whose per-query budget expires maps to
// 504 with the context error in the body (single form) and to a
// member-slot error (batch form).
func TestDeadlineExceeded(t *testing.T) {
	stub := newStubBackend() // never released: every member waits out its deadline
	ts := httptest.NewServer(New(stub, Config{DefaultTimeout: 30 * time.Millisecond, MaxTimeout: 50 * time.Millisecond}))
	defer ts.Close()

	resp, body := postJSON(t, ts, `{"columns": ["country"], "timeout_ms": 25}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%s)", resp.StatusCode, body)
	}
	var e errorDTO
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, context.DeadlineExceeded.Error()) {
		t.Fatalf("error body %s, want deadline exceeded", body)
	}

	resp, body = postJSON(t, ts, `{"queries": [{"columns": ["country"]}], "timeout_ms": 25}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d (%s)", resp.StatusCode, body)
	}
	var b batchDTO
	if err := json.Unmarshal(body, &b); err != nil || b.Failed != 1 ||
		!strings.Contains(b.Results[0].Error, context.DeadlineExceeded.Error()) {
		t.Fatalf("batch deadline body %s", body)
	}

	// An absurd timeout_ms must clamp to MaxTimeout, not overflow
	// time.Duration into "no deadline at all".
	resp, body = postJSON(t, ts, `{"columns": ["country"], "timeout_ms": 99999999999999999}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("overflow timeout status = %d, want 504 (%s)", resp.StatusCode, body)
	}
}

// TestErrStatusMapping: budget exhaustion is 504, recovered engine panics
// are server faults (500), anything else is a client-side query error.
func TestErrStatusMapping(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want int
	}{
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{context.Canceled, http.StatusGatewayTimeout},
		{fmt.Errorf("wwt: batch member 0 %w: boom", wwt.ErrPanic), http.StatusInternalServerError},
		{errors.New("wwt: empty query"), http.StatusBadRequest},
	} {
		if got := errStatus(tc.err); got != tc.want {
			t.Errorf("errStatus(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

// TestHealthzAndMetrics drives traffic through a real engine and checks
// both observability endpoints: healthz JSON shape, and the metrics
// exposition carrying QPS, per-stage latency, occupancy and all four
// cache series.
func TestHealthzAndMetrics(t *testing.T) {
	ts := httptest.NewServer(New(testEngine(t), Config{}))
	defer ts.Close()

	postJSON(t, ts, `{"columns": ["country", "currency"]}`)
	postJSON(t, ts, `{"queries": [{"columns": ["country", "capital"]}, {"columns": ["the"]}]}`)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthDTO
	body := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil || h.Status != "ok" || h.Capacity <= 0 {
		t.Fatalf("healthz body %s: %v", body, err)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	met := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	for _, want := range []string{
		"wwt_http_requests_total 2",
		"wwt_queries_total 3",
		"wwt_queries_answered_total 2",
		"wwt_queries_failed_total 1",
		"wwt_qps_30s ",
		"wwt_inflight_capacity ",
		`wwt_stage_seconds_total{stage="probe1"}`,
		`wwt_stage_seconds_total{stage="consolidate"}`,
		`wwt_cache_hits_total{cache="views"}`,
		`wwt_cache_hit_rate{cache="doc_sets"}`,
		`wwt_cache_misses_total{cache="pair_sims"}`,
		`wwt_cache_hits_total{cache="norm_cells"}`,
		"wwt_plan_probe2_elided_total ",
		"wwt_plan_degraded_total ",
		"wwt_plan_cost_error ",
		"wwt_plan_calibrated ",
		"wwt_plan_queue_drain_seconds ",
	} {
		if !strings.Contains(met, want) {
			t.Errorf("metrics missing %q:\n%s", want, met)
		}
	}
}

// TestGracefulShutdownDrains: http.Server.Shutdown must wait for an
// in-flight batch to finish and deliver its response, while the listener
// stops accepting new work.
func TestGracefulShutdownDrains(t *testing.T) {
	stub := newStubBackend()
	srv := New(stub, Config{})
	hs := httptest.NewServer(srv)

	status := make(chan int, 1)
	go func() {
		resp, err := http.Post(hs.URL+"/v1/answer", "application/json",
			strings.NewReader(`{"columns": ["country"]}`))
		if err != nil {
			status <- -1
			return
		}
		resp.Body.Close()
		status <- resp.StatusCode
	}()
	<-stub.started

	var wg sync.WaitGroup
	wg.Add(1)
	shutdownErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- hs.Config.Shutdown(ctx)
	}()
	// Shutdown is draining; release the in-flight batch and demand both a
	// clean response and a clean shutdown.
	time.Sleep(50 * time.Millisecond)
	close(stub.release)
	wg.Wait()
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := <-status; got != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", got)
	}
	hs.Close()
}

// TestAdmissionQueueing: with queue depth available, a saturating request
// waits instead of shedding, and is admitted when capacity frees.
func TestAdmissionQueueing(t *testing.T) {
	adm := newAdmission(2, 2)
	if err := adm.acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	admitted := make(chan error, 1)
	go func() { admitted <- adm.acquire(context.Background(), 2) }()
	// The waiter occupies the whole queue: further demand sheds.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, queued, _ := adm.snapshot(); queued == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if err := adm.acquire(context.Background(), 1); !errors.Is(err, errOverloaded) {
		t.Fatalf("full queue: err = %v, want errOverloaded", err)
	}
	adm.release(2)
	if err := <-admitted; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	if inFlight, queued, _ := adm.snapshot(); inFlight != 2 || queued != 0 {
		t.Fatalf("after handoff: inFlight=%d queued=%d", inFlight, queued)
	}
	adm.release(2)

	// A queued waiter whose context dies leaves the queue cleanly.
	if err := adm.acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	gone := make(chan error, 1)
	go func() { gone <- adm.acquire(ctx, 1) }()
	for {
		if _, queued, _ := adm.snapshot(); queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-gone; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned waiter: err = %v, want context.Canceled", err)
	}
	if _, queued, _ := adm.snapshot(); queued != 0 {
		t.Fatalf("abandoned waiter left queued=%d", queued)
	}
	adm.release(2)
}

// TestAdmissionFIFONoStarvation: waiters are admitted strictly in arrival
// order — a narrow request queued behind a wide one must not slip past it
// when capacity frees in small pieces, so wide batches cannot be starved
// by a stream of single-query requests.
func TestAdmissionFIFONoStarvation(t *testing.T) {
	adm := newAdmission(2, 4)
	for i := 0; i < 2; i++ { // saturate: inFlight = 2
		if err := adm.acquire(context.Background(), 1); err != nil {
			t.Fatal(err)
		}
	}
	waitQueued := func(want int) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			if _, queued, _ := adm.snapshot(); queued == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("queued never reached %d", want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	wide := make(chan error, 1)
	go func() { wide <- adm.acquire(context.Background(), 2) }()
	waitQueued(2)
	narrow := make(chan error, 1)
	go func() { narrow <- adm.acquire(context.Background(), 1) }()
	waitQueued(3)

	// One slot frees: the narrow waiter would fit, but the wide head needs
	// two — nobody may be admitted.
	adm.release(1)
	select {
	case err := <-wide:
		t.Fatalf("wide admitted with insufficient capacity: %v", err)
	case err := <-narrow:
		t.Fatalf("narrow overtook the wide head: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if inFlight, queued, _ := adm.snapshot(); inFlight != 1 || queued != 3 {
		t.Fatalf("after partial release: inFlight=%d queued=%d", inFlight, queued)
	}

	// The second slot frees: the wide head is admitted and now saturates
	// the capacity, so the narrow waiter keeps waiting behind it.
	adm.release(1)
	if err := <-wide; err != nil {
		t.Fatalf("wide head: %v", err)
	}
	select {
	case err := <-narrow:
		t.Fatalf("narrow admitted beyond capacity: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	adm.release(2)
	if err := <-narrow; err != nil {
		t.Fatalf("narrow after wide released: %v", err)
	}
	adm.release(1)
	if inFlight, queued, _ := adm.snapshot(); inFlight != 0 || queued != 0 {
		t.Fatalf("final state: inFlight=%d queued=%d", inFlight, queued)
	}
}
