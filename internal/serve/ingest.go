package serve

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"wwt"
	"wwt/internal/extract"
	"wwt/internal/wtable"
)

// LiveBackend is the optional live-ingest surface of a Backend. When the
// backend implements it (wwt.LiveEngine does; the frozen wwt.Engine does
// not), the server additionally exposes POST /v1/ingest and the
// wwt_index_* gauges on /metrics. Implementations must be safe for
// concurrent calls; ingests may serialize internally but must never
// block in-flight queries.
type LiveBackend interface {
	Backend
	// IngestTables freezes the batch into a new index segment and
	// atomically publishes the new generation.
	IngestTables(tables []*wtable.Table) (wwt.LiveInfo, error)
	// Info snapshots the serving generation.
	Info() wwt.LiveInfo
}

// ingestRequest is the POST /v1/ingest body. At least one of HTML or CSV
// must yield a table. HTML goes through the paper's extractor (data-table
// filter, header/title classification, context snippets); CSV tables are
// taken as-is with the first record as the header row.
type ingestRequest struct {
	// HTML is a page source; every extracted data table is ingested. URL
	// mints the tables' IDs ("url#k") and must be set with HTML.
	HTML string `json:"html,omitempty"`
	URL  string `json:"url,omitempty"`
	// CSV tables are ingested verbatim.
	CSV []csvTableDTO `json:"csv,omitempty"`
}

// csvTableDTO is one CSV table: RFC 4180 data whose first record is the
// header row, under a caller-chosen corpus-unique ID.
type csvTableDTO struct {
	ID    string `json:"id"`
	Title string `json:"title,omitempty"`
	Data  string `json:"data"`
}

// ingestDTO is the POST /v1/ingest response: what was ingested and the
// now-serving generation.
type ingestDTO struct {
	Ingested   int    `json:"ingested"`
	Generation uint64 `json:"generation"`
	Segments   int    `json:"segments"`
	Docs       int    `json:"docs"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	r.Body = http.MaxBytesReader(w, r.Body, 8<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.ingestErrs.Add(1)
		writeJSON(w, http.StatusBadRequest, errorDTO{Error: "bad request body: " + err.Error()})
		return
	}
	tables, err := ingestTables(req)
	if err != nil {
		s.ingestErrs.Add(1)
		writeJSON(w, http.StatusBadRequest, errorDTO{Error: err.Error()})
		return
	}
	info, err := s.live.IngestTables(tables)
	if err != nil {
		s.ingestErrs.Add(1)
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "already indexed") {
			status = http.StatusConflict
		}
		writeJSON(w, status, errorDTO{Error: err.Error()})
		return
	}
	s.ingestReqs.Add(1)
	s.ingestTables.Add(int64(len(tables)))
	writeJSON(w, http.StatusOK, ingestDTO{
		Ingested:   len(tables),
		Generation: info.Generation,
		Segments:   info.Segments,
		Docs:       info.Docs,
	})
}

// ingestTables materializes the request's tables: HTML through the
// extractor, CSV verbatim. An ingest that yields no tables is an error —
// segments are never empty.
func ingestTables(req ingestRequest) ([]*wtable.Table, error) {
	var tables []*wtable.Table
	if req.HTML != "" {
		if req.URL == "" {
			return nil, fmt.Errorf("html ingest requires url (it mints table IDs)")
		}
		tables = append(tables, extract.Page(req.URL, req.HTML, extract.NewOptions())...)
	}
	for i, c := range req.CSV {
		t, err := csvTable(c)
		if err != nil {
			return nil, fmt.Errorf("csv[%d]: %w", i, err)
		}
		tables = append(tables, t)
	}
	if len(tables) == 0 {
		return nil, fmt.Errorf("ingest yielded no tables (html without data tables, empty csv list?)")
	}
	return tables, nil
}

// csvTable converts one CSV DTO: first record → header row (marked as
// header cells for the labeler), remaining records → body rows.
func csvTable(c csvTableDTO) (*wtable.Table, error) {
	if c.ID == "" {
		return nil, fmt.Errorf("table without id")
	}
	rd := csv.NewReader(strings.NewReader(c.Data))
	rd.FieldsPerRecord = -1 // ragged rows are padded by the accessors
	recs, err := rd.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) < 2 {
		return nil, fmt.Errorf("need a header record plus at least one body record")
	}
	t := &wtable.Table{ID: c.ID, PageTitle: c.Title}
	if c.Title != "" {
		t.TitleRows = []wtable.Row{rowOf([]string{c.Title}, false)}
	}
	t.HeaderRows = []wtable.Row{rowOf(recs[0], true)}
	for _, rec := range recs[1:] {
		t.BodyRows = append(t.BodyRows, rowOf(rec, false))
	}
	return t, nil
}

func rowOf(cells []string, header bool) wtable.Row {
	r := wtable.Row{Cells: make([]wtable.Cell, len(cells))}
	for i, c := range cells {
		r.Cells[i] = wtable.Cell{Text: strings.TrimSpace(c), IsTH: header}
	}
	return r
}

// renderLiveMetrics writes the live-index gauges appended to /metrics
// when the backend supports ingest: serving generation, segment and doc
// counts, and cumulative ingest activity.
func (s *Server) renderLiveMetrics() string {
	info := s.live.Info()
	var b strings.Builder
	fmt.Fprintf(&b, "wwt_index_generation %d\n", info.Generation)
	fmt.Fprintf(&b, "wwt_index_segments %d\n", info.Segments)
	fmt.Fprintf(&b, "wwt_index_docs %d\n", info.Docs)
	fmt.Fprintf(&b, "wwt_ingest_requests_total %d\n", s.ingestReqs.Load())
	fmt.Fprintf(&b, "wwt_ingest_tables_total %d\n", s.ingestTables.Load())
	fmt.Fprintf(&b, "wwt_ingest_errors_total %d\n", s.ingestErrs.Load())
	return b.String()
}
