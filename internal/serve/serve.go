package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"wwt"
	"wwt/internal/plan"
)

// Backend is the engine surface the server drives. *wwt.Engine implements
// it; tests substitute stubs. Implementations must be safe for concurrent
// calls.
type Backend interface {
	// AnswerBatchPlan answers queries under ctx with a per-member deadline
	// and a batch plan (member schedule + planner lever overrides); see
	// wwt.Engine.AnswerBatchPlan for the slot/error contract.
	AnswerBatchPlan(ctx context.Context, queries []wwt.Query, workers int, perQuery time.Duration, bp wwt.BatchPlan) *wwt.BatchResult
	// CacheStats snapshots the engine's cross-query cache counters.
	CacheStats() wwt.EngineCacheStats
	// PlanStats snapshots the adaptive planner's lever counters and
	// cost-model error.
	PlanStats() wwt.PlanStats
}

// Config tunes the server. The zero value serves with sane defaults.
type Config struct {
	// Workers is the engine worker pool size per batch (<= 0: GOMAXPROCS).
	// Clamped to MaxInFlight so the admission cap truly bounds executing
	// goroutines: one admitted batch can never out-run the semaphore.
	Workers int
	// MaxInFlight bounds concurrently executing worker slots across all
	// requests (<= 0: GOMAXPROCS). A request occupies min(members,
	// Workers) slots.
	MaxInFlight int
	// QueueDepth bounds the worker slots' worth of requests allowed to
	// wait for capacity before the server sheds with 429. 0 means the
	// default (4x MaxInFlight); negative disables queuing entirely.
	QueueDepth int
	// DefaultTimeout is the per-query deadline when a request doesn't set
	// timeout_ms (<= 0: 10s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested timeouts (<= 0: 60s).
	MaxTimeout time.Duration
	// MaxBatchSize bounds members per request (<= 0: 256); larger
	// requests are rejected with 413.
	MaxBatchSize int
	// DefaultSchedule is the batch member dispatch order used when a
	// request doesn't set "schedule" (zero value: FIFO).
	DefaultSchedule wwt.Schedule
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.Workers > c.MaxInFlight {
		c.Workers = c.MaxInFlight
	}
	switch {
	case c.QueueDepth == 0:
		c.QueueDepth = 4 * c.MaxInFlight
	case c.QueueDepth < 0:
		c.QueueDepth = 0
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxBatchSize <= 0 {
		c.MaxBatchSize = 256
	}
	return c
}

// Server is the HTTP serving layer: an http.Handler exposing
// POST /v1/answer, GET /healthz and GET /metrics over a Backend. See the
// package documentation for the endpoint, deadline and admission
// contracts. Immutable after New; safe for concurrent requests.
type Server struct {
	backend Backend
	cfg     Config
	adm     *admission
	met     *metrics
	mux     *http.ServeMux

	// live is non-nil when backend supports live ingest; POST /v1/ingest
	// is registered and /metrics gains the wwt_index_* gauges.
	live         LiveBackend
	ingestReqs   atomic.Int64
	ingestTables atomic.Int64
	ingestErrs   atomic.Int64
}

// New returns a ready server over backend. cfg zero values take defaults.
func New(backend Backend, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		backend: backend,
		cfg:     cfg,
		adm:     newAdmission(cfg.MaxInFlight, cfg.QueueDepth),
		met:     newMetrics(time.Now()),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/answer", s.handleAnswer)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if lb, ok := backend.(LiveBackend); ok {
		s.live = lb
		s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	}
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// answerRequest is the POST /v1/answer body. Exactly one of Columns
// (single query) or Queries (batch) must be set. Schedule and Planner are
// per-request planner knobs: schedule picks the batch dispatch order
// ("fifo", "sjf", "deadline"; empty = server default) and planner
// overrides the engine's planner levers for this request only.
type answerRequest struct {
	Columns   []string    `json:"columns,omitempty"`
	Queries   []queryDTO  `json:"queries,omitempty"`
	TimeoutMS int64       `json:"timeout_ms,omitempty"`
	Schedule  string      `json:"schedule,omitempty"`
	Planner   *plannerDTO `json:"planner,omitempty"`
}

// plannerDTO mirrors wwt.PlannerOptions on the wire. A present planner
// object replaces the engine's levers wholesale for the request (absent
// fields fall back to the lever defaults, not the engine's settings).
type plannerDTO struct {
	ElideProbe2      bool    `json:"elide_probe2,omitempty"`
	ElideConfidence  float64 `json:"elide_confidence,omitempty"`
	DeadlineDegrade  bool    `json:"deadline_degrade,omitempty"`
	DegradeMaxTables int     `json:"degrade_max_tables,omitempty"`
}

type queryDTO struct {
	Columns []string `json:"columns"`
}

type rowDTO struct {
	Cells   []string `json:"cells"`
	Support int      `json:"support"`
}

// memberDTO is one query's outcome. Error is set exactly when the member
// failed (and Rows is then absent).
type memberDTO struct {
	Rows       []rowDTO `json:"rows"`
	Tables     int      `json:"tables"`
	Relevant   int      `json:"relevant"`
	UsedProbe2 bool     `json:"used_probe2"`
	// Degraded reports the planner degraded this member (capped tables,
	// independent inference) to beat its deadline.
	Degraded bool   `json:"degraded,omitempty"`
	TotalUS  int64  `json:"total_us"`
	Error    string `json:"error,omitempty"`
}

// batchDTO is the batch response: Results is index-aligned with the
// request's queries.
type batchDTO struct {
	Results []memberDTO `json:"results"`
	Queries int         `json:"queries"`
	Failed  int         `json:"failed"`
	Workers int         `json:"workers"`
	WallUS  int64       `json:"wall_us"`
	QPS     float64     `json:"qps"`
}

type errorDTO struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	var req answerRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDTO{Error: "bad request body: " + err.Error()})
		return
	}
	single := len(req.Queries) == 0
	var queries []wwt.Query
	if single {
		if len(req.Columns) == 0 {
			writeJSON(w, http.StatusBadRequest, errorDTO{Error: "set either columns (single query) or queries (batch)"})
			return
		}
		queries = []wwt.Query{{Columns: req.Columns}}
	} else {
		if len(req.Columns) != 0 {
			writeJSON(w, http.StatusBadRequest, errorDTO{Error: "columns and queries are mutually exclusive"})
			return
		}
		if len(req.Queries) > s.cfg.MaxBatchSize {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorDTO{Error: fmt.Sprintf("batch of %d exceeds the %d-member limit", len(req.Queries), s.cfg.MaxBatchSize)})
			return
		}
		queries = make([]wwt.Query, len(req.Queries))
		for i, q := range req.Queries {
			queries[i] = wwt.Query{Columns: q.Columns}
		}
	}

	sched := s.cfg.DefaultSchedule
	if req.Schedule != "" {
		var err error
		if sched, err = wwt.ParseSchedule(req.Schedule); err != nil {
			writeJSON(w, http.StatusBadRequest, errorDTO{Error: err.Error()})
			return
		}
	}
	bp := wwt.BatchPlan{Schedule: sched}
	if req.Planner != nil {
		bp.Planner = &wwt.PlannerOptions{
			ElideProbe2:      req.Planner.ElideProbe2,
			ElideConfidence:  req.Planner.ElideConfidence,
			DeadlineDegrade:  req.Planner.DeadlineDegrade,
			DegradeMaxTables: req.Planner.DegradeMaxTables,
		}
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		// Clamp in integer milliseconds before converting: a huge
		// timeout_ms would overflow time.Duration into a negative value
		// and escape both the ceiling and the deadline entirely.
		ms := req.TimeoutMS
		if maxMS := s.cfg.MaxTimeout.Milliseconds(); ms > maxMS {
			ms = maxMS
		}
		timeout = time.Duration(ms) * time.Millisecond
	}

	// Admission: occupy one worker slot per member the batch can actually
	// run concurrently. Overload is answered immediately, not queued.
	weight := len(queries)
	if weight > s.cfg.Workers {
		weight = s.cfg.Workers
	}
	if err := s.adm.acquire(r.Context(), weight); err != nil {
		if errors.Is(err, errOverloaded) {
			s.met.recordShed(len(queries))
			inFlight, queued, capacity := s.adm.snapshot()
			w.Header().Set("Retry-After", s.retryAfter(inFlight+queued, weight, capacity))
			writeJSON(w, http.StatusTooManyRequests, errorDTO{Error: "server overloaded, retry later"})
			return
		}
		// The client gave up while queued; the status is moot but keep the
		// connection protocol-clean.
		writeJSON(w, http.StatusServiceUnavailable, errorDTO{Error: err.Error()})
		return
	}
	defer s.adm.release(weight)

	br := s.backend.AnswerBatchPlan(r.Context(), queries, s.cfg.Workers, timeout, bp)
	s.met.recordBatch(br.Timings, time.Now())
	// Serialize, then hand every member's pooled arena straight back to
	// the engine: the serving tier never pins arenas across requests.
	defer br.Release()

	members := make([]memberDTO, len(queries))
	for i := range queries {
		if err := br.Errs[i]; err != nil {
			members[i] = memberDTO{Error: err.Error()}
			continue
		}
		members[i] = toMemberDTO(br.Results[i])
	}

	if single {
		if err := br.Errs[0]; err != nil {
			writeJSON(w, errStatus(err), errorDTO{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, members[0])
		return
	}
	writeJSON(w, http.StatusOK, batchDTO{
		Results: members,
		Queries: br.Timings.Queries,
		Failed:  br.Timings.Failed,
		Workers: br.Timings.Workers,
		WallUS:  br.Timings.Wall.Microseconds(),
		QPS:     br.Timings.QPS(),
	})
}

func toMemberDTO(res *wwt.Result) memberDTO {
	rows := make([]rowDTO, len(res.Answer.Rows))
	for i, row := range res.Answer.Rows {
		rows[i] = rowDTO{Cells: row.Cells, Support: row.Support}
	}
	relevant := 0
	for ti := range res.Tables {
		if res.Labeling.Relevant(ti) {
			relevant++
		}
	}
	return memberDTO{
		Rows:       rows,
		Tables:     len(res.Tables),
		Relevant:   relevant,
		UsedProbe2: res.UsedProbe2,
		Degraded:   res.Degraded,
		TotalUS:    res.Timings.Total().Microseconds(),
	}
}

// errStatus maps a single query's error to its HTTP status: deadline and
// cancellation map to 504 (the query ran out of budget), a recovered
// engine panic is a server fault (500), anything else is a client-side
// query problem.
func errStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, wwt.ErrPanic):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// retryAfter derives the 429 backoff from the planner's estimated queue
// drain: the occupancy at shed time divided into capacity-sized waves,
// each lasting the decayed average slot-hold time of recent requests
// (plan.DrainEstimate). The estimate is clamped to [1s, MaxTimeout]; a
// cold server (no holds observed yet) falls back to the 1s floor.
func (s *Server) retryAfter(occupied, need, capacity int) string {
	est := plan.DrainEstimate(occupied, need, capacity, s.met.holdAvg())
	secs := int64(est.Seconds() + 0.999) // ceil: never advise retrying early
	if secs < 1 {
		secs = 1
	}
	if maxS := int64(s.cfg.MaxTimeout.Seconds()); secs > maxS {
		secs = maxS
	}
	return fmt.Sprintf("%d", secs)
}

type healthDTO struct {
	Status   string  `json:"status"`
	UptimeS  float64 `json:"uptime_s"`
	InFlight int     `json:"inflight_workers"`
	Queued   int     `json:"queued_workers"`
	Capacity int     `json:"capacity_workers"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	inFlight, queued, capacity := s.adm.snapshot()
	writeJSON(w, http.StatusOK, healthDTO{
		Status:   "ok",
		UptimeS:  time.Since(s.met.start).Seconds(),
		InFlight: inFlight,
		Queued:   queued,
		Capacity: capacity,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	inFlight, queued, capacity := s.adm.snapshot()
	drain := plan.DrainEstimate(inFlight+queued, 1, capacity, s.met.holdAvg())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, s.met.render(time.Now(), inFlight, queued, capacity,
		s.backend.CacheStats(), s.backend.PlanStats(), drain))
	if s.live != nil {
		fmt.Fprint(w, s.renderLiveMetrics())
	}
}
