// Package serve is the HTTP serving layer over the batched query engine:
// the daemon surface (cmd/wwt-serve) that turns Engine.AnswerBatchCtx
// into a latency-budgeted, load-shedding network service.
//
// # Endpoints
//
//   - POST /v1/answer — answer one query ({"columns": [...]}) or a batch
//     ({"queries": [{"columns": [...]}, ...]}), with an optional
//     "timeout_ms" per-query deadline. A single query returns one result
//     object; a batch returns index-aligned per-member results where a
//     failed member carries its error string in its own slot and the
//     rest of the batch is unaffected.
//   - GET /healthz — liveness: status, uptime, in-flight occupancy.
//   - GET /metrics — Prometheus-style text: request/query counters, a
//     live QPS window, cumulative per-stage latency, worker occupancy,
//     and hit/miss counters for the engine's four cross-query caches
//     (table views, pair similarities, PMI doc sets, normalized cells).
//
// # Deadlines
//
// Every member query runs under a context deadline: the request's
// timeout_ms when given (clamped to Config.MaxTimeout), otherwise
// Config.DefaultTimeout. The engine checks cancellation between pipeline
// stages, so a query past its deadline aborts with
// context.DeadlineExceeded in its own slot and abort latency is bounded
// by the longest single stage. Client disconnects cancel the request
// context and propagate the same way.
//
// # Admission control
//
// Admission is a bounded in-flight semaphore measured in engine worker
// slots: a request occupies min(members, workers) slots while it runs.
// When the server is saturated, up to Config.QueueDepth slots' worth of
// requests wait for capacity; beyond that the server sheds load
// immediately with 429 and a Retry-After header instead of queuing
// unboundedly. Shed requests never reach the engine.
//
// # Ownership and concurrency
//
// A Server is immutable after New and safe for concurrent requests; all
// mutable state (admission counters, metrics) is internally synchronized.
// The server borrows each BatchResult only for the duration of one
// response: every member's pooled arena is released back to the engine
// before the handler returns, so serving traffic never pins arenas
// between requests. The Backend must be safe for concurrent
// AnswerBatchCtx calls (wwt.Engine is). Graceful shutdown is the
// caller's http.Server.Shutdown: the server holds no background
// goroutines, so draining in-flight requests drains everything.
package serve
