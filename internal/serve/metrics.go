package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"wwt"
	"wwt/internal/plan"
)

// qpsWindow is the span of the live throughput window reported as
// wwt_qps_30s: one bucket per second, summed over the last 30 seconds.
const qpsWindow = 30

// metrics accumulates the serving counters exported by /metrics. One
// mutex guards everything; the serving path takes it once per batch, so
// contention is bounded by request rate, not query rate.
type metrics struct {
	mu    sync.Mutex
	start time.Time

	requests int64 // POST /v1/answer requests accepted for execution
	queries  int64 // member queries received by the engine
	answered int64 // member queries that produced a result
	failed   int64 // member queries that returned an error
	shed     int64 // member queries rejected with 429

	stage   map[string]time.Duration // cumulative per-stage time
	wall    time.Duration            // cumulative batch wall time
	buckets [qpsWindow]qpsBucket     // answered-query completions per second

	// hold is the decayed average wall time a request holds its worker
	// slots — the wave length behind the 429 Retry-After drain estimate.
	// Deliberately faster-decaying than the cost model (load shifts
	// faster than per-stage costs do).
	hold *plan.EWMA
}

type qpsBucket struct {
	sec int64 // unix second this bucket currently counts
	n   int64
}

func newMetrics(now time.Time) *metrics {
	return &metrics{start: now, stage: make(map[string]time.Duration), hold: plan.NewEWMA(0.2)}
}

// holdAvg returns the decayed average slot-hold time (0 before the first
// completed batch).
func (m *metrics) holdAvg() time.Duration {
	return time.Duration(m.hold.Value())
}

// recordBatch folds one executed batch into the counters.
func (m *metrics) recordBatch(bt wwt.BatchTimings, now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	m.queries += int64(bt.Queries)
	m.answered += int64(bt.Succeeded())
	m.failed += int64(bt.Failed)
	for _, s := range bt.Stages.Stages() {
		m.stage[s.Name] += s.D
	}
	m.wall += bt.Wall
	m.hold.Observe(float64(bt.Wall))
	sec := now.Unix()
	b := &m.buckets[sec%qpsWindow]
	if b.sec != sec {
		b.sec, b.n = sec, 0
	}
	b.n += int64(bt.Succeeded())
}

// recordShed counts n member queries turned away with 429.
func (m *metrics) recordShed(n int) {
	m.mu.Lock()
	m.shed += int64(n)
	m.mu.Unlock()
}

// qps returns the answered-queries-per-second rate over the trailing
// window (or over the uptime, when shorter). Callers hold m.mu.
func (m *metrics) qpsLocked(now time.Time) float64 {
	sec := now.Unix()
	var n int64
	for i := range m.buckets {
		if b := m.buckets[i]; b.sec > sec-qpsWindow {
			n += b.n
		}
	}
	span := now.Sub(m.start).Seconds()
	if span > qpsWindow {
		span = qpsWindow
	}
	if span < 1 {
		span = 1
	}
	return float64(n) / span
}

// render writes the Prometheus text exposition. Stage lines follow
// pipeline order; cache lines are sorted by name.
func (m *metrics) render(now time.Time, inFlight, queued, capacity int, cache wwt.EngineCacheStats, ps wwt.PlanStats, drain time.Duration) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	put := func(name string, v any) { fmt.Fprintf(&b, "%s %v\n", name, v) }
	put("wwt_uptime_seconds", fmt.Sprintf("%.3f", now.Sub(m.start).Seconds()))
	put("wwt_http_requests_total", m.requests)
	put("wwt_queries_total", m.queries)
	put("wwt_queries_answered_total", m.answered)
	put("wwt_queries_failed_total", m.failed)
	put("wwt_queries_shed_total", m.shed)
	put(fmt.Sprintf("wwt_qps_%ds", qpsWindow), fmt.Sprintf("%.3f", m.qpsLocked(now)))
	put("wwt_inflight_workers", inFlight)
	put("wwt_inflight_capacity", capacity)
	put("wwt_queued_workers", queued)
	put("wwt_batch_wall_seconds_total", fmt.Sprintf("%.6f", m.wall.Seconds()))
	// Adaptive-planner lever counters and cost-model quality: elision and
	// degradation totals, the estimator's decayed |est−actual|/actual
	// relative error, whether estimates are calibrated at all, and the
	// current estimated queue-drain time (the 429 Retry-After signal).
	put("wwt_plan_probe2_elided_total", ps.Probe2Elided)
	put("wwt_plan_degraded_total", ps.Degraded)
	put("wwt_plan_cost_error", fmt.Sprintf("%.4f", ps.CostError))
	put("wwt_plan_calibrated", boolGauge(ps.Calibrated))
	put("wwt_plan_queue_drain_seconds", fmt.Sprintf("%.3f", drain.Seconds()))
	// Probe-pruning counters: blocks the block-max skip pruned vs
	// considered, and shard scatters the floor-seeding pre-pass pruned —
	// aggregate plus a per-shard breakdown for sharded engines.
	put("wwt_probe_blocks_skipped_total", ps.ProbeBlocksSkipped)
	put("wwt_probe_blocks_total", ps.ProbeBlocksTotal)
	put("wwt_probe_shards_pruned_total", ps.ProbeShardsPruned)
	for i, n := range ps.ShardPrunes {
		fmt.Fprintf(&b, "wwt_probe_shard_pruned_total{shard=\"%d\"} %d\n", i, n)
	}
	// Per-stage cumulative latency, in the pipeline's own stage order.
	for _, s := range (wwt.Timings{}).Stages() {
		fmt.Fprintf(&b, "wwt_stage_seconds_total{stage=%q} %.6f\n", s.Name, m.stage[s.Name].Seconds())
	}
	caches := map[string]wwt.CacheStats{
		"views":      cache.Views,
		"pair_sims":  cache.PairSims,
		"doc_sets":   cache.DocSets,
		"norm_cells": cache.NormCells,
	}
	names := make([]string, 0, len(caches))
	for name := range caches {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := caches[name]
		fmt.Fprintf(&b, "wwt_cache_hits_total{cache=%q} %d\n", name, st.Hits)
		fmt.Fprintf(&b, "wwt_cache_misses_total{cache=%q} %d\n", name, st.Misses)
		fmt.Fprintf(&b, "wwt_cache_hit_rate{cache=%q} %.4f\n", name, st.HitRate())
	}
	// Sharded engines additionally break the doc-set cache down per shard,
	// so a cold or thrashing shard is visible in isolation.
	for i, st := range cache.DocSetShards {
		fmt.Fprintf(&b, "wwt_cache_hits_total{cache=\"doc_sets\",shard=\"%d\"} %d\n", i, st.Hits)
		fmt.Fprintf(&b, "wwt_cache_misses_total{cache=\"doc_sets\",shard=\"%d\"} %d\n", i, st.Misses)
		fmt.Fprintf(&b, "wwt_cache_hit_rate{cache=\"doc_sets\",shard=\"%d\"} %.4f\n", i, st.HitRate())
	}
	return b.String()
}

// boolGauge renders a boolean as a 0/1 Prometheus gauge value.
func boolGauge(v bool) int {
	if v {
		return 1
	}
	return 0
}
