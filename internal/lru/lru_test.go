package lru

import (
	"sync"
	"testing"
)

func TestGetComputesOncePerKey(t *testing.T) {
	c := New[string, int](4)
	calls := 0
	get := func(k string) int {
		return c.Get(k, func() int { calls++; return len(k) })
	}
	if got := get("ab"); got != 2 {
		t.Fatalf("Get = %d, want 2", got)
	}
	if got := get("ab"); got != 2 || calls != 1 {
		t.Fatalf("warm Get = %d with %d computes, want 2 with 1", got, calls)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d, want 1 hit / 1 miss", hits, misses)
	}
}

func TestEvictionKeepsBoundAndRecency(t *testing.T) {
	c := New[int, int](2)
	for _, k := range []int{1, 2, 1, 3} { // 2 is the LRU when 3 arrives
		c.Get(k, func() int { return -k })
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	recomputed := false
	if v := c.Get(1, func() int { recomputed = true; return -1 }); v != -1 || recomputed {
		t.Errorf("key 1 evicted despite being recently used")
	}
	c.Get(2, func() int { recomputed = true; return -2 })
	if !recomputed {
		t.Errorf("key 2 not evicted")
	}
}

func TestConcurrentGet(t *testing.T) {
	c := New[int, int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g + i) % 32
				if v := c.Get(k, func() int { return k * k }); v != k*k {
					t.Errorf("Get(%d) = %d", k, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestNewRejectsNonPositiveCapacity: a non-positive bound would silently
// disable the cache (every insert immediately evicted); New must refuse it
// loudly instead.
func TestNewRejectsNonPositiveCapacity(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", capacity)
				}
			}()
			New[int, int](capacity)
		}()
	}
}

// TestRacingDuplicateInsert drives the duplicate-insert path
// deterministically by re-entering Get from inside compute (compute runs
// outside the cache lock, so a nested Get stands in for the racing
// goroutine). The losing computer must be served the canonical first-won
// value, count a hit, and refresh the entry's recency.
func TestRacingDuplicateInsert(t *testing.T) {
	c := New[int, int](2)
	f := func(k int) func() int { return func() int { return -k } }
	c.Get(2, f(2)) // [2]
	got := c.Get(1, func() int {
		c.Get(1, func() int { return 10 }) // the "racer" wins the insert: [1 2]
		c.Get(2, f(2))                     // hit, demotes 1: [2 1]
		return 99                          // the losing duplicate value
	})
	if got != 10 {
		t.Fatalf("duplicate insert returned %d, want the winning value 10", got)
	}
	// The duplicate-insert path must have refreshed key 1 ([1 2]), so
	// inserting 3 evicts 2, not 1.
	c.Get(3, f(3))
	recomputed := false
	c.Get(1, func() int { recomputed = true; return -1 })
	if recomputed {
		t.Errorf("key 1 evicted: duplicate-insert path did not refresh recency")
	}
	if hits, misses := c.Stats(); hits != 3 || misses != 4 {
		t.Errorf("stats = %d/%d, want 3 hits / 4 misses", hits, misses)
	}
}

// TestPutEvictIfEach covers the generation-migration surface: Put inserts
// without counters, Each walks least→most recent (so Put-ing in that
// order reproduces the LRU order in a new cache), and EvictIf removes
// exactly the matching keys without touching the rest.
func TestPutEvictIfEach(t *testing.T) {
	c := New[string, int](4)
	for i, k := range []string{"a", "b", "c", "d"} {
		c.Put(k, i)
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("Put moved counters: %d/%d", hits, misses)
	}
	// Refresh "a" so the recency order is b c d a (least→most recent).
	c.Put("a", 10)
	var order []string
	c.Each(func(k string, v int) { order = append(order, k) })
	want := []string{"b", "c", "d", "a"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("Each order = %v, want %v", order, want)
		}
	}

	// Replaying Each's order into a fresh cache preserves LRU behavior:
	// the next eviction removes the same key either way.
	fresh := New[string, int](4)
	c.Each(func(k string, v int) { fresh.Put(k, v) })
	fresh.Put("e", 5) // evicts "b", the least recent
	if _, ok := fresh.Cached("b"); ok {
		t.Fatal("migrated cache evicted the wrong key")
	}
	if _, ok := fresh.Cached("a"); !ok {
		t.Fatal("migrated cache lost a recent key")
	}

	// EvictIf removes exactly the matching keys.
	n := c.EvictIf(func(k string) bool { return k == "b" || k == "d" })
	if n != 2 || c.Len() != 2 {
		t.Fatalf("EvictIf removed %d (len %d), want 2 (len 2)", n, c.Len())
	}
	if _, ok := c.Cached("c"); !ok {
		t.Fatal("EvictIf evicted a non-matching key")
	}
	if _, ok := c.Cached("d"); ok {
		t.Fatal("EvictIf kept a matching key")
	}

	// Put over capacity evicts the oldest.
	small := New[int, int](2)
	small.Put(1, 1)
	small.Put(2, 2)
	small.Put(3, 3)
	if small.Len() != 2 {
		t.Fatalf("Put over capacity: len %d, want 2", small.Len())
	}
	if _, ok := small.Cached(1); ok {
		t.Fatal("Put over capacity kept the oldest entry")
	}
}
