package lru

import (
	"sync"
	"testing"
)

func TestGetComputesOncePerKey(t *testing.T) {
	c := New[string, int](4)
	calls := 0
	get := func(k string) int {
		return c.Get(k, func() int { calls++; return len(k) })
	}
	if got := get("ab"); got != 2 {
		t.Fatalf("Get = %d, want 2", got)
	}
	if got := get("ab"); got != 2 || calls != 1 {
		t.Fatalf("warm Get = %d with %d computes, want 2 with 1", got, calls)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d, want 1 hit / 1 miss", hits, misses)
	}
}

func TestEvictionKeepsBoundAndRecency(t *testing.T) {
	c := New[int, int](2)
	for _, k := range []int{1, 2, 1, 3} { // 2 is the LRU when 3 arrives
		c.Get(k, func() int { return -k })
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	recomputed := false
	if v := c.Get(1, func() int { recomputed = true; return -1 }); v != -1 || recomputed {
		t.Errorf("key 1 evicted despite being recently used")
	}
	c.Get(2, func() int { recomputed = true; return -2 })
	if !recomputed {
		t.Errorf("key 2 not evicted")
	}
}

func TestConcurrentGet(t *testing.T) {
	c := New[int, int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g + i) % 32
				if v := c.Get(k, func() int { return k * k }); v != k*k {
					t.Errorf("Get(%d) = %d", k, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
