// Package lru provides the one bounded, concurrency-safe LRU memoization
// primitive behind the engine's cross-query caches (PMI doc sets, pair
// similarities, normalized cells). Values are computed outside the cache
// lock and shared across callers read-only; see Cache.Get for the exact
// protocol.
package lru

import (
	"container/list"
	"sync"
)

// Cache memoizes a pure function of K, keeping at most cap entries in
// least-recently-used order. The zero value is not usable; construct with
// New.
type Cache[K comparable, V any] struct {
	mu  sync.Mutex
	cap int
	lru *list.List // front = most recent; values are *entry[K, V]
	m   map[K]*list.Element

	hits, misses uint64
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns an LRU of at most capacity entries. The map grows with
// actual use rather than being pre-sized, so short-lived caches don't pay
// for the full bound up front.
//
// capacity must be positive: New panics on capacity <= 0. A non-positive
// bound would silently turn every insert into insert-then-evict — a
// disabled cache with no signal — and every in-repo wrapper maps its
// "use the default size" sentinel to a real bound before calling New.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity <= 0 {
		panic("lru: non-positive capacity")
	}
	return &Cache[K, V]{
		cap: capacity,
		lru: list.New(),
		m:   make(map[K]*list.Element),
	}
}

// Get returns the value for key, calling compute on a miss. compute runs
// outside the cache lock so concurrent misses don't serialize; it must be
// a pure function of key — a racing duplicate insert holds an identical
// value, and the LRU keeps one entry per key. The returned value is
// shared with every other caller: treat it as read-only. A warm hit
// allocates nothing.
func (c *Cache[K, V]) Get(key K, compute func() V) V {
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		c.lru.MoveToFront(el)
		v := el.Value.(*entry[K, V]).val
		c.hits++
		c.mu.Unlock()
		return v
	}
	c.misses++
	c.mu.Unlock()

	v := compute()

	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		// A racing computer inserted first. Its entry is as recently used
		// as a fresh insert would be (and this lookup is served from it),
		// so refresh recency and count the hit like any other.
		c.lru.MoveToFront(el)
		v = el.Value.(*entry[K, V]).val
		c.hits++
	} else {
		c.m[key] = c.lru.PushFront(&entry[K, V]{key: key, val: v})
		if c.lru.Len() > c.cap {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.m, oldest.Value.(*entry[K, V]).key)
		}
	}
	c.mu.Unlock()
	return v
}

// Cached returns the value for key if present, refreshing its recency and
// counting a hit. A lookup miss counts nothing — pair Cached with Get,
// which counts the miss on the compute path. The point of the split is
// allocation-free warm hits: Get's compute closure captures its inputs and
// so heap-allocates even when never called, while Cached takes no closure.
func (c *Cache[K, V]) Cached(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Put inserts (or refreshes) an entry without touching the hit/miss
// counters — the bulk-load primitive behind cross-generation cache
// migration, where adopted entries are neither hits nor misses of the new
// cache. An existing key keeps its value object only if the new one is
// passed again; recency is refreshed either way.
func (c *Cache[K, V]) Put(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*entry[K, V]).val = val
		c.lru.MoveToFront(el)
		return
	}
	c.m[key] = c.lru.PushFront(&entry[K, V]{key: key, val: val})
	if c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.m, oldest.Value.(*entry[K, V]).key)
	}
}

// EvictIf removes every entry whose key matches pred and returns how many
// were dropped. This is the selective-invalidation primitive: a corpus
// generation swap evicts exactly the keys the new generation staled
// instead of flushing the whole cache, so unaffected warm entries keep
// their recency. pred runs under the cache lock and must not call back
// into the cache.
func (c *Cache[K, V]) EvictIf(pred func(K) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*entry[K, V]); pred(e.key) {
			c.lru.Remove(el)
			delete(c.m, e.key)
			n++
		}
		el = next
	}
	return n
}

// Each visits every entry from least to most recently used, without
// changing recency or counters. Re-inserting the visited entries into a
// fresh cache with Put in this order reproduces the LRU order. fn runs
// under the cache lock and must not call back into the cache.
func (c *Cache[K, V]) Each(fn func(K, V)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry[K, V])
		fn(e.key, e.val)
	}
}

// Stats reports cumulative hit/miss counts.
func (c *Cache[K, V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
