// Package slicex holds the grow-only buffer helpers shared by every
// scratch arena (graph.Workspace, core.BuildScratch, inference.Scratch).
// They live in one place so their semantics — in particular the
// non-nil-on-reuse guarantee the pooled-vs-fresh equivalence tests depend
// on — cannot drift between packages.
package slicex

// Grow returns buf resliced to n, reallocating when capacity is short.
// The result is always non-nil (mirroring make), so slices exposed on
// retained values compare identically whether the arena was virgin or
// reused. Reused elements keep stale values: callers must overwrite every
// entry (or use GrowClear) before reading.
func Grow[T any](buf []T, n int) []T {
	if cap(buf) < n || buf == nil {
		return make([]T, n)
	}
	return buf[:n]
}

// GrowClear is Grow with every element reset to the zero value.
func GrowClear[T any](buf []T, n int) []T {
	out := Grow(buf, n)
	clear(out)
	return out
}

// GrowKeep is Grow preserving existing elements — for per-worker scratch
// whose warm state should survive a capacity bump.
func GrowKeep[T any](buf []T, n int) []T {
	if cap(buf) >= n && buf != nil {
		return buf[:n]
	}
	out := make([]T, n)
	copy(out, buf)
	return out
}
