package eval

import (
	"fmt"
	"sort"
	"time"

	"wwt"
	"wwt/internal/baseline"
	"wwt/internal/consolidate"
	"wwt/internal/core"
	"wwt/internal/corpusgen"
	"wwt/internal/extract"
	"wwt/internal/inference"
	"wwt/internal/workload"
	"wwt/internal/wtable"
)

// Method names used across the experiment tables.
const (
	MethodBasic   = "Basic"
	MethodNbrText = "NbrText"
	MethodPMI2    = "PMI2"
	MethodWWT     = "WWT"
	MethodUnseg   = "WWT-unseg"
)

// QueryResult caches everything measured for one workload query.
type QueryResult struct {
	Query      workload.Query
	Tables     []*wtable.Table
	GT         GroundTruth
	UsedProbe2 bool
	Timings    wwt.Timings
	// Model is the assembled graphical model (kept for diagnostics and
	// ablation benches).
	Model *core.Model

	// Labelings and F1 errors per method; inference-algorithm variants are
	// stored under their Algorithm.String() names.
	Labelings map[string]core.Labeling
	Errors    map[string]float64
	// InferenceTime per collective algorithm (for Table 2's ratios).
	InferenceTime map[string]time.Duration
}

// Runner owns a generated corpus, its index, and the per-query caches.
type Runner struct {
	Corpus  *corpusgen.Corpus
	Tables  []*wtable.Table
	Engine  *wwt.Engine
	Queries []workload.Query

	results map[int]*QueryResult
}

// NewRunner generates the corpus, extracts and indexes it, and prepares
// the workload. opts may be nil for wwt.DefaultOptions.
func NewRunner(cfg corpusgen.Config, opts *wwt.Options) (*Runner, error) {
	corpus := corpusgen.Generate(cfg)
	tables := corpus.ExtractAll(extract.NewOptions())
	eng, err := wwt.NewEngine(tables, opts)
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	return &Runner{
		Corpus:  corpus,
		Tables:  tables,
		Engine:  eng,
		Queries: workload.FromCorpus(corpus),
		results: make(map[int]*QueryResult),
	}, nil
}

// CandidatesFor returns the candidate tables and ground truth for a query
// without evaluating any method (used by training).
func (r *Runner) CandidatesFor(q workload.Query) ([]*wtable.Table, GroundTruth) {
	tables, _, err := r.Engine.Candidates(wwt.Query{Columns: q.Columns}, nil)
	if err != nil {
		tables = nil
	}
	return tables, TruthFor(q, tables, r.Corpus.Truth)
}

// Run evaluates one query with every method and caches the result.
func (r *Runner) Run(q workload.Query) *QueryResult {
	if cached, ok := r.results[q.ID]; ok {
		return cached
	}
	res := &QueryResult{
		Query:         q,
		Labelings:     make(map[string]core.Labeling),
		Errors:        make(map[string]float64),
		InferenceTime: make(map[string]time.Duration),
	}
	wq := wwt.Query{Columns: q.Columns}
	tables, used2, err := r.Engine.Candidates(wq, &res.Timings)
	if err != nil {
		tables = nil
	}
	res.Tables = tables
	res.UsedProbe2 = used2
	res.GT = TruthFor(q, tables, r.Corpus.Truth)

	// Baselines.
	cfg := baseline.DefaultConfig()
	pmi := r.Engine.PMISource()
	for _, bm := range []baseline.Method{baseline.Basic, baseline.NbrText, baseline.PMI2} {
		l := baseline.Solve(bm, cfg, q.Columns, tables, r.Engine.Index, pmi)
		res.Labelings[bm.String()] = l
		res.Errors[bm.String()] = F1Error(l, tables, res.GT)
	}

	// WWT model once; all five inference algorithms on it.
	start := time.Now()
	builder := &core.Builder{Params: r.Engine.Opts.Params, Stats: r.Engine.Index, PMI: pmi}
	m := builder.Build(q.Columns, tables)
	res.Model = m
	buildTime := time.Since(start)
	for _, alg := range inference.Algorithms {
		st := time.Now()
		l := inference.Solve(m, alg)
		res.InferenceTime[alg.String()] = time.Since(st)
		res.Labelings[alg.String()] = l
		res.Errors[alg.String()] = F1Error(l, tables, res.GT)
	}
	// ColumnMap covers only the model build; the paper-default (table-
	// centric) solve is reported as the separate Infer stage, matching
	// Engine.Answer's pipeline split.
	res.Timings.ColumnMap = buildTime
	res.Timings.Infer = res.InferenceTime[inference.TableCentric.String()]
	// WWT == the table-centric labeling (the paper's default).
	res.Labelings[MethodWWT] = res.Labelings[inference.TableCentric.String()]
	res.Errors[MethodWWT] = res.Errors[inference.TableCentric.String()]

	// Unsegmented ablation (§5.2).
	unsegParams := r.Engine.Opts.Params
	unsegParams.Unsegmented = true
	ub := &core.Builder{Params: unsegParams, Stats: r.Engine.Index, PMI: pmi}
	um := ub.Build(q.Columns, tables)
	ul := inference.Solve(um, inference.TableCentric)
	res.Labelings[MethodUnseg] = ul
	res.Errors[MethodUnseg] = F1Error(ul, tables, res.GT)

	// Consolidation timing for Fig. 7.
	start = time.Now()
	_ = consolidate.Consolidate(q.Q(), tables, res.Labelings[MethodWWT], m.Conf, m.Rel, consolidate.NewOptions())
	res.Timings.Consolidate = time.Since(start)

	r.results[q.ID] = res
	return res
}

// RunAll evaluates the whole workload.
func (r *Runner) RunAll() []*QueryResult {
	out := make([]*QueryResult, len(r.Queries))
	for i, q := range r.Queries {
		out[i] = r.Run(q)
	}
	return out
}

// EasyHard splits results per §5: a query is easy when all four headline
// methods land within 0.5% of each other.
func EasyHard(results []*QueryResult) (easy, hard []*QueryResult) {
	for _, res := range results {
		lo, hi := 1e18, -1e18
		for _, m := range []string{MethodBasic, MethodNbrText, MethodPMI2, MethodWWT} {
			e := res.Errors[m]
			if e < lo {
				lo = e
			}
			if e > hi {
				hi = e
			}
		}
		if hi-lo <= 0.5 {
			easy = append(easy, res)
		} else {
			hard = append(hard, res)
		}
	}
	return easy, hard
}

// Groups bins the hard queries into seven groups by descending Basic
// error, mirroring Fig. 5 / Table 2.
func Groups(hard []*QueryResult) [][]*QueryResult {
	sorted := append([]*QueryResult(nil), hard...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Errors[MethodBasic] > sorted[j].Errors[MethodBasic]
	})
	const n = 7
	groups := make([][]*QueryResult, n)
	for i, res := range sorted {
		g := i * n / len(sorted)
		groups[g] = append(groups[g], res)
	}
	return groups
}

// MeanError averages a method's error over a result set.
func MeanError(results []*QueryResult, method string) float64 {
	if len(results) == 0 {
		return 0
	}
	var sum float64
	for _, r := range results {
		sum += r.Errors[method]
	}
	return sum / float64(len(results))
}
