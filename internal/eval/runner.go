package eval

import (
	"fmt"
	"sort"
	"time"

	"wwt"
	"wwt/internal/baseline"
	"wwt/internal/core"
	"wwt/internal/corpusgen"
	"wwt/internal/extract"
	"wwt/internal/inference"
	"wwt/internal/workload"
	"wwt/internal/wtable"
)

// Method names used across the experiment tables.
const (
	MethodBasic   = "Basic"
	MethodNbrText = "NbrText"
	MethodPMI2    = "PMI2"
	MethodWWT     = "WWT"
	MethodUnseg   = "WWT-unseg"
)

// QueryResult caches everything measured for one workload query.
type QueryResult struct {
	Query      workload.Query
	Tables     []*wtable.Table
	GT         GroundTruth
	UsedProbe2 bool
	Timings    wwt.Timings
	// Model is the assembled graphical model (kept for diagnostics and
	// ablation benches).
	Model *core.Model

	// Labelings and F1 errors per method; inference-algorithm variants are
	// stored under their Algorithm.String() names.
	Labelings map[string]core.Labeling
	Errors    map[string]float64
	// InferenceTime per collective algorithm (for Table 2's ratios).
	InferenceTime map[string]time.Duration
}

// Runner owns a generated corpus, its index, and the per-query caches.
type Runner struct {
	Corpus  *corpusgen.Corpus
	Tables  []*wtable.Table
	Engine  *wwt.Engine
	Queries []workload.Query

	// Workers bounds the worker pool RunAll hands to Engine.AnswerBatch.
	// 0 means serial (one worker): Fig 7 reports per-query stage wall
	// times, and concurrent members would inflate them with contention.
	// Raise it on sweeps where wall clock matters more than per-stage
	// timing fidelity. Per-method evaluation stays serial either way.
	Workers int

	results map[int]*QueryResult
}

// NewRunner generates the corpus, extracts and indexes it, and prepares
// the workload. opts may be nil for wwt.DefaultOptions.
func NewRunner(cfg corpusgen.Config, opts *wwt.Options) (*Runner, error) {
	corpus := corpusgen.Generate(cfg)
	tables := corpus.ExtractAll(extract.NewOptions())
	eng, err := wwt.NewEngine(tables, opts)
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	return &Runner{
		Corpus:  corpus,
		Tables:  tables,
		Engine:  eng,
		Queries: workload.FromCorpus(corpus),
		results: make(map[int]*QueryResult),
	}, nil
}

// CandidatesFor returns the candidate tables and ground truth for a query
// without evaluating any method (used by training).
func (r *Runner) CandidatesFor(q workload.Query) ([]*wtable.Table, GroundTruth) {
	tables, _, err := r.Engine.Candidates(wwt.Query{Columns: q.Columns}, nil)
	if err != nil {
		tables = nil
	}
	return tables, TruthFor(q, tables, r.Corpus.Truth)
}

// Run evaluates one query with every method and caches the result.
func (r *Runner) Run(q workload.Query) *QueryResult {
	if cached, ok := r.results[q.ID]; ok {
		return cached
	}
	r.runBatch([]workload.Query{q})
	return r.results[q.ID]
}

// RunAll evaluates the whole workload. The online pipeline runs once per
// query through Engine.AnswerBatch on the Workers-bounded pool — the eval
// harness is the batch entry point's first real consumer — and the
// per-method evaluation then runs serially over the batch results.
func (r *Runner) RunAll() []*QueryResult {
	var todo []workload.Query
	for _, q := range r.Queries {
		if _, ok := r.results[q.ID]; !ok {
			todo = append(todo, q)
		}
	}
	r.runBatch(todo)
	out := make([]*QueryResult, len(r.Queries))
	for i, q := range r.Queries {
		out[i] = r.results[q.ID]
	}
	return out
}

// batchWorkers resolves the Workers knob for the engine batch calls: the
// zero default means one worker, keeping reported timings contention-free.
func (r *Runner) batchWorkers() int {
	if r.Workers <= 0 {
		return 1
	}
	return r.Workers
}

// runBatch answers the given queries through the batched pipeline, then
// evaluates every method on each member.
func (r *Runner) runBatch(queries []workload.Query) {
	if len(queries) == 0 {
		return
	}
	wqs := make([]wwt.Query, len(queries))
	for i, q := range queries {
		wqs[i] = wwt.Query{Columns: q.Columns}
	}
	batch := r.Engine.AnswerBatch(wqs, r.batchWorkers())
	for i, q := range queries {
		r.results[q.ID] = r.evaluate(q, batch.Results[i], batch.Errs[i])
	}
}

// evaluate scores one query given its pipeline outcome: the baselines,
// all five collective inference algorithms on the pipeline's model, and
// the unsegmented ablation.
func (r *Runner) evaluate(q workload.Query, ans *wwt.Result, err error) *QueryResult {
	res := &QueryResult{
		Query:         q,
		Labelings:     make(map[string]core.Labeling),
		Errors:        make(map[string]float64),
		InferenceTime: make(map[string]time.Duration),
	}
	pmi := r.Engine.PMISource()
	var tables []*wtable.Table
	if err == nil {
		// Tables, the probe2 flag and the timings own their storage and
		// survive Release; a failed member (e.g. a stopword-only query) is
		// evaluated over the empty candidate set, as the serial path
		// always did when Candidates errored.
		tables = ans.Tables
		res.UsedProbe2 = ans.UsedProbe2
		res.Timings = ans.Timings
	}
	res.Tables = tables
	res.GT = TruthFor(q, tables, r.Corpus.Truth)
	// The retained model is rebuilt heap-side rather than taken from the
	// batch member: diagnostics and ablations reweight it for the runner's
	// lifetime, and the member's Model aliases a full QueryScratch arena —
	// releasing the member recycles that arena through the engine pool
	// instead of pinning one per query.
	builder := &core.Builder{Params: r.Engine.Opts.Params, Stats: r.Engine.Index, PMI: pmi}
	res.Model = builder.Build(q.Columns, tables)
	if ans != nil {
		ans.Release()
	}

	// Baselines.
	cfg := baseline.DefaultConfig()
	for _, bm := range []baseline.Method{baseline.Basic, baseline.NbrText, baseline.PMI2} {
		l := baseline.Solve(bm, cfg, q.Columns, tables, r.Engine.Index, pmi)
		res.Labelings[bm.String()] = l
		res.Errors[bm.String()] = F1Error(l, tables, res.GT)
	}

	// All five inference algorithms on the pipeline's model.
	for _, alg := range inference.Algorithms {
		st := time.Now()
		l := inference.Solve(res.Model, alg)
		res.InferenceTime[alg.String()] = time.Since(st)
		res.Labelings[alg.String()] = l
		res.Errors[alg.String()] = F1Error(l, tables, res.GT)
	}
	// WWT == the table-centric labeling (the paper's default). The
	// pipeline's ColumnMap/Infer/Consolidate timings already follow the
	// same split: ColumnMap is the model build only.
	res.Labelings[MethodWWT] = res.Labelings[inference.TableCentric.String()]
	res.Errors[MethodWWT] = res.Errors[inference.TableCentric.String()]

	// Unsegmented ablation (§5.2).
	unsegParams := r.Engine.Opts.Params
	unsegParams.Unsegmented = true
	ub := &core.Builder{Params: unsegParams, Stats: r.Engine.Index, PMI: pmi}
	um := ub.Build(q.Columns, tables)
	ul := inference.Solve(um, inference.TableCentric)
	res.Labelings[MethodUnseg] = ul
	res.Errors[MethodUnseg] = F1Error(ul, tables, res.GT)

	return res
}

// EasyHard splits results per §5: a query is easy when all four headline
// methods land within 0.5% of each other.
func EasyHard(results []*QueryResult) (easy, hard []*QueryResult) {
	for _, res := range results {
		lo, hi := 1e18, -1e18
		for _, m := range []string{MethodBasic, MethodNbrText, MethodPMI2, MethodWWT} {
			e := res.Errors[m]
			if e < lo {
				lo = e
			}
			if e > hi {
				hi = e
			}
		}
		if hi-lo <= 0.5 {
			easy = append(easy, res)
		} else {
			hard = append(hard, res)
		}
	}
	return easy, hard
}

// Groups bins the hard queries into seven groups by descending Basic
// error, mirroring Fig. 5 / Table 2.
func Groups(hard []*QueryResult) [][]*QueryResult {
	sorted := append([]*QueryResult(nil), hard...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Errors[MethodBasic] > sorted[j].Errors[MethodBasic]
	})
	const n = 7
	groups := make([][]*QueryResult, n)
	for i, res := range sorted {
		g := i * n / len(sorted)
		groups[g] = append(groups[g], res)
	}
	return groups
}

// MeanError averages a method's error over a result set.
func MeanError(results []*QueryResult, method string) float64 {
	if len(results) == 0 {
		return 0
	}
	var sum float64
	for _, r := range results {
		sum += r.Errors[method]
	}
	return sum / float64(len(results))
}
