package eval

import (
	"testing"

	"wwt/internal/core"
	"wwt/internal/corpusgen"
)

// TestDiagnoseFalsePositives dumps, for a chosen query, every table whose
// predicted relevance disagrees with ground truth, with its potentials.
func TestDiagnoseFalsePositives(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	r, err := NewRunner(corpusgen.Config{Seed: 2012}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, domain := range []string{"country-currency", "black-metal", "dog-breeds"} {
		var q = r.Queries[0]
		for _, qq := range r.Queries {
			if qq.Domain == domain {
				q = qq
			}
		}
		res := r.Run(q)
		wl := res.Labelings[MethodWWT]
		wm := res.Labelings["None"]
		t.Logf("\n##### %s (WWT err %.1f)\n", q.String(), res.Errors[MethodWWT])
		for ti, tb := range res.Tables {
			gtRel := res.GT.Relevant[tb.ID]
			pRel := wl.Relevant(ti)
			if gtRel == pRel {
				continue
			}
			kind := "FP"
			if gtRel {
				kind = "FN"
			}
			t.Logf("%s %s dom=%s hdr=%d gt=%v wwt=%v indep=%v\n",
				kind, tb.ID, r.Corpus.DomainOf[tb.ID], tb.NumHeaderRows(),
				res.GT.Labels[tb.ID], wl.Y[ti], wm.Y[ti])
			if kind == "FP" {
				for c := 0; c < tb.NumCols() && c < 5; c++ {
					hdr := ""
					for hr := 0; hr < tb.NumHeaderRows(); hr++ {
						hdr += tb.Header(hr, c) + "/"
					}
					t.Logf("   col%d hdr=%-28q", c, hdr)
					for ell := 0; ell < q.Q(); ell++ {
						t.Logf(" Q%d(s%.2f,n%.2f)", ell+1,
							res.Model.Feats[ti][c][ell].SegSim, res.Model.Node[ti][c][ell])
					}
					t.Logf(" nr=%.2f R=%.2f\n", res.Model.Node[ti][c][core.NR(q.Q())], res.Model.Rel[ti])
				}
			}
		}
	}
}
