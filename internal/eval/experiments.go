package eval

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"wwt"
	"wwt/internal/consolidate"
	"wwt/internal/core"
	"wwt/internal/inference"
	"wwt/internal/text"
)

// This file renders every table and figure of the paper's evaluation (§5)
// from a Runner's cached results. Each Experiment* function writes a plain
// text block; cmd/wwt-experiments drives them.

// ExperimentTable1 prints the query set with total and relevant source
// table counts (paper Table 1).
func ExperimentTable1(w io.Writer, r *Runner) {
	fmt.Fprintln(w, "=== Table 1: query set with candidate counts ===")
	results := r.RunAll()
	var totalAll, relAll int
	arity := map[int]string{1: "Single", 2: "Two", 3: "Three"}
	for _, res := range results {
		total := len(res.Tables)
		rel := res.GT.RelevantCount()
		totalAll += total
		relAll += rel
		fmt.Fprintf(w, "%-7s %-70s total=%-3d relevant=%-3d\n",
			arity[res.Query.Q()], res.Query.String(), total, rel)
	}
	fmt.Fprintf(w, "queries=%d  avg candidates/query=%.2f  avg relevant fraction=%.0f%%\n",
		len(results), float64(totalAll)/float64(len(results)),
		100*float64(relAll)/float64(maxInt(totalAll, 1)))
}

// ExperimentCorpusStats prints the offline-pipeline statistics of §2.1:
// the header-row distribution over extracted tables (paper: 60% one
// header row, 18% none, 17% two, 5% more) and the data-table yield of
// the extraction filter (paper: ~10% of table tags carry data).
func ExperimentCorpusStats(w io.Writer, r *Runner) {
	fmt.Fprintln(w, "=== §2.1: offline corpus statistics ===")
	counts := map[int]int{}
	th := 0
	for _, tb := range r.Tables {
		n := tb.NumHeaderRows()
		if n > 3 {
			n = 3
		}
		counts[n]++
		usesTH := false
		for _, row := range tb.HeaderRows {
			for _, cell := range row.Cells {
				if cell.IsTH {
					usesTH = true
				}
			}
		}
		if usesTH {
			th++
		}
	}
	total := len(r.Tables)
	if total == 0 {
		return
	}
	fmt.Fprintf(w, "extracted data tables: %d from %d pages\n", total, len(r.Corpus.Pages))
	fmt.Fprintf(w, "header rows: none=%.0f%% one=%.0f%% two=%.0f%% more=%.0f%% (paper: 18/60/17/5)\n",
		100*float64(counts[0])/float64(total), 100*float64(counts[1])/float64(total),
		100*float64(counts[2])/float64(total), 100*float64(counts[3])/float64(total))
	fmt.Fprintf(w, "tables using <th>: %.0f%% (paper: 20%%)\n", 100*float64(th)/float64(total))
}

// ExperimentProbe2 prints the §2.2.1 second-probe statistics: usage rate,
// the relevant fraction per stage, and how many relevant tables only the
// second stage retrieves.
func ExperimentProbe2(w io.Writer, r *Runner) {
	fmt.Fprintln(w, "=== §2.2.1: two-stage index probe statistics ===")
	results := r.RunAll()
	used := 0
	var rel1, tot1, rel2, tot2, stage2RelSum, relSum int
	opts := r.Engine.Opts
	opts.SecondProbe = false
	single := wwt.NewEngineFrom(r.Engine.Index, r.Engine.Store, &opts)
	// One batched first-stage-only sweep over the probe2 queries.
	var probe2 []*QueryResult
	var wqs []wwt.Query
	for _, res := range results {
		if res.UsedProbe2 {
			probe2 = append(probe2, res)
			wqs = append(wqs, wwt.Query{Columns: res.Query.Columns})
			used++
		}
	}
	sets, errs, _ := single.CandidatesBatch(wqs, r.batchWorkers())
	for i, res := range probe2 {
		if errs[i] != nil {
			continue
		}
		inStage1 := make(map[string]bool, len(sets[i].Tables))
		for _, tb := range sets[i].Tables {
			inStage1[tb.ID] = true
			tot1++
			if res.GT.Relevant[tb.ID] {
				rel1++
			}
		}
		for _, tb := range res.Tables {
			if res.GT.Relevant[tb.ID] {
				relSum++
			}
			if inStage1[tb.ID] {
				continue
			}
			tot2++
			if res.GT.Relevant[tb.ID] {
				rel2++
				stage2RelSum++
			}
		}
	}
	fmt.Fprintf(w, "second probe used: %d/%d queries (%.0f%%; paper: 65%%)\n",
		used, len(results), 100*float64(used)/float64(len(results)))
	if tot1 > 0 && tot2 > 0 {
		fmt.Fprintf(w, "relevant fraction: stage1 %.0f%%, stage2 %.0f%% (paper: 52%% vs 70%%)\n",
			100*float64(rel1)/float64(tot1), 100*float64(rel2)/float64(tot2))
	}
	if relSum > 0 {
		fmt.Fprintf(w, "share of relevant tables only reachable via stage2: %.0f%% (paper: ~50%%)\n",
			100*float64(stage2RelSum)/float64(relSum))
	}
}

// ExperimentFig5 prints the error reduction relative to Basic of PMI²,
// NbrText and WWT over the seven hard-query groups (paper Fig. 5).
func ExperimentFig5(w io.Writer, r *Runner) {
	fmt.Fprintln(w, "=== Figure 5: error reduction over Basic by query group ===")
	results := r.RunAll()
	easy, hard := EasyHard(results)
	fmt.Fprintf(w, "easy queries: %d (all methods within 0.5%%), hard queries: %d\n",
		len(easy), len(hard))
	fmt.Fprintf(w, "mean error on easy queries: Basic=%.1f WWT=%.1f\n",
		MeanError(easy, MethodBasic), MeanError(easy, MethodWWT))
	groups := Groups(hard)
	fmt.Fprintf(w, "%-6s %-3s %-10s %-10s %-10s %-10s\n",
		"group", "n", "Basic", "dPMI2", "dNbrText", "dWWT")
	for gi, g := range groups {
		b := MeanError(g, MethodBasic)
		fmt.Fprintf(w, "%-6d %-3d %-10.1f %-+10.1f %-+10.1f %-+10.1f\n",
			gi+1, len(g), b,
			b-MeanError(g, MethodPMI2),
			b-MeanError(g, MethodNbrText),
			b-MeanError(g, MethodWWT))
	}
	fmt.Fprintf(w, "overall (hard): Basic=%.1f PMI2=%.1f NbrText=%.1f WWT=%.1f\n",
		MeanError(hard, MethodBasic), MeanError(hard, MethodPMI2),
		MeanError(hard, MethodNbrText), MeanError(hard, MethodWWT))
	singles := filterArity(hard, 1)
	if len(singles) > 0 {
		fmt.Fprintf(w, "single-column queries: WWT=%.1f PMI2=%.1f\n",
			MeanError(singles, MethodWWT), MeanError(singles, MethodPMI2))
	}
}

// ExperimentFig6 prints the consolidated-answer row error of WWT vs Basic
// per query group (paper Fig. 6).
func ExperimentFig6(w io.Writer, r *Runner) {
	fmt.Fprintln(w, "=== Figure 6: answer-row error by query group ===")
	results := r.RunAll()
	_, hard := EasyHard(results)
	groups := Groups(hard)
	fmt.Fprintf(w, "%-6s %-3s %-10s %-10s\n", "group", "n", "Basic", "WWT")
	for gi, g := range groups {
		var basicErr, wwtErr float64
		for _, res := range g {
			truthRows := answerRows(res, res.GT.Labeling(res.Tables))
			basicErr += RowSetError(answerRows(res, res.Labelings[MethodBasic]), truthRows)
			wwtErr += RowSetError(answerRows(res, res.Labelings[MethodWWT]), truthRows)
		}
		n := float64(len(g))
		if n == 0 {
			n = 1
		}
		fmt.Fprintf(w, "%-6d %-3d %-10.1f %-10.1f\n", gi+1, len(g), basicErr/n, wwtErr/n)
	}
}

// answerRows consolidates under a labeling and returns normalized full-row
// keys (all cells, analyzed and joined), the row identity used by Fig. 6.
func answerRows(res *QueryResult, l core.Labeling) []string {
	ans := consolidate.Consolidate(res.Query.Q(), res.Tables, l, nil, nil, consolidate.NewOptions())
	keys := make([]string, 0, len(ans.Rows))
	for _, row := range ans.Rows {
		var parts []string
		for _, cell := range row.Cells {
			parts = append(parts, strings.Join(text.Normalize(cell), " "))
		}
		keys = append(keys, strings.Join(parts, " | "))
	}
	return keys
}

// ExperimentFig7 prints the per-query running time split (paper Fig. 7).
func ExperimentFig7(w io.Writer, r *Runner) {
	fmt.Fprintln(w, "=== Figure 7: running time split per query (ms) ===")
	results := r.RunAll()
	sorted := append([]*QueryResult(nil), results...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Timings.Total() < sorted[j].Timings.Total()
	})
	fmt.Fprintf(w, "%-40s %8s %8s %8s %8s %8s %8s %8s %8s\n",
		"query", "probe1", "read1", "probe2", "read2", "colmap", "infer", "consol", "total")
	var tot time.Duration
	for _, res := range sorted {
		t := res.Timings
		tot += t.Total()
		fmt.Fprintf(w, "%-40s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			clipStr(res.Query.String(), 40),
			ms(t.Probe1), ms(t.Read1), ms(t.Probe2), ms(t.Read2),
			ms(t.ColumnMap), ms(t.Infer), ms(t.Consolidate), ms(t.Total()))
	}
	fmt.Fprintf(w, "average total: %.2f ms\n", ms(tot)/float64(len(sorted)))
}

// ExperimentFig8 prints the per-query segmented vs unsegmented errors
// (paper Fig. 8's scatter, as a table).
func ExperimentFig8(w io.Writer, r *Runner) {
	fmt.Fprintln(w, "=== Figure 8: segmented vs unsegmented similarity (per hard query) ===")
	results := r.RunAll()
	_, hard := EasyHard(results)
	better, worse, equal := 0, 0, 0
	fmt.Fprintf(w, "%-50s %12s %12s\n", "query", "unsegmented", "segmented")
	for _, res := range hard {
		seg := res.Errors[MethodWWT]
		unseg := res.Errors[MethodUnseg]
		switch {
		case seg < unseg-1e-9:
			better++
		case seg > unseg+1e-9:
			worse++
		default:
			equal++
		}
		fmt.Fprintf(w, "%-50s %12.1f %12.1f\n", clipStr(res.Query.String(), 50), unseg, seg)
	}
	fmt.Fprintf(w, "segmented better on %d, worse on %d, equal on %d of %d hard queries\n",
		better, worse, equal, len(hard))
	fmt.Fprintf(w, "overall (hard): unsegmented=%.1f segmented=%.1f\n",
		MeanError(hard, MethodUnseg), MeanError(hard, MethodWWT))
}

// ExperimentTable2 prints the collective inference comparison (paper
// Table 2) plus measured runtime ratios.
func ExperimentTable2(w io.Writer, r *Runner) {
	fmt.Fprintln(w, "=== Table 2: collective inference algorithms, F1 error by group ===")
	results := r.RunAll()
	_, hard := EasyHard(results)
	groups := Groups(hard)
	algs := inference.Algorithms
	header := fmt.Sprintf("%-6s", "group")
	for _, a := range algs {
		header += fmt.Sprintf(" %13s", a.String())
	}
	fmt.Fprintln(w, header)
	for gi, g := range groups {
		line := fmt.Sprintf("%-6d", gi+1)
		for _, a := range algs {
			line += fmt.Sprintf(" %13.1f", MeanError(g, a.String()))
		}
		fmt.Fprintln(w, line)
	}
	line := fmt.Sprintf("%-6s", "all")
	for _, a := range algs {
		line += fmt.Sprintf(" %13.1f", MeanError(hard, a.String()))
	}
	fmt.Fprintln(w, line)

	// Runtime ratios relative to the table-centric algorithm.
	total := map[string]time.Duration{}
	for _, res := range results {
		for name, d := range res.InferenceTime {
			total[name] += d
		}
	}
	base := total[inference.TableCentric.String()]
	if base > 0 {
		fmt.Fprint(w, "runtime vs Table-centric: ")
		for _, a := range algs {
			fmt.Fprintf(w, "%s=%.1fx ", a.String(), float64(total[a.String()])/float64(base))
		}
		fmt.Fprintln(w)
	}
}

func filterArity(results []*QueryResult, q int) []*QueryResult {
	var out []*QueryResult
	for _, r := range results {
		if r.Query.Q() == q {
			out = append(out, r)
		}
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func clipStr(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
