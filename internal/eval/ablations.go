package eval

import (
	"fmt"
	"io"

	"wwt"
	"wwt/internal/core"
	"wwt/internal/inference"
)

// This file implements the ablation experiments DESIGN.md calls out beyond
// the paper's own figures: edge-potential variants, the second index
// probe, and the constrained-cut handling of mutex inside α-expansion.

// ExperimentAblationEdges compares the three edge-potential constructions
// of §3.3 (plain Potts, Potts without the nr reward, and the paper's
// custom design). Both inference styles are reported: the nr reward only
// matters to energy-based inference (α-expansion), while gating and
// normalization matter to both.
func ExperimentAblationEdges(w io.Writer, r *Runner) {
	fmt.Fprintln(w, "=== Ablation: edge potential variants (§3.3), F1 error ===")
	variants := []core.EdgeVariant{core.EdgePotts, core.EdgePottsNoNR, core.EdgeCustom}
	tcSums := make([]float64, len(variants))
	aeSums := make([]float64, len(variants))
	n := 0
	for _, q := range r.Queries {
		res := r.Run(q)
		if res.Model == nil {
			continue
		}
		n++
		for vi, variant := range variants {
			p := r.Engine.Opts.Params
			p.Edges = variant
			m := res.Model.Reweight(p)
			tcSums[vi] += F1Error(inference.SolveTableCentric(m), res.Tables, res.GT)
			aeSums[vi] += F1Error(inference.SolveAlphaExpansion(m), res.Tables, res.GT)
		}
	}
	if n == 0 {
		return
	}
	fmt.Fprintf(w, "%-14s %14s %14s\n", "variant", "table-centric", "α-expansion")
	for vi, variant := range variants {
		fmt.Fprintf(w, "%-14s %14.1f %14.1f\n", variant.String(),
			tcSums[vi]/float64(n), aeSums[vi]/float64(n))
	}
}

// ExperimentAblationProbe2 measures the contribution of the second index
// probe (§2.2.1). Both runs are scored against the same candidate
// universe (the two-probe set): a relevant table the single-probe engine
// never retrieves counts as an all-nr miss, exactly as a user would
// experience it.
func ExperimentAblationProbe2(w io.Writer, r *Runner) {
	fmt.Fprintln(w, "=== Ablation: second index probe (§2.2.1) ===")
	var withErr, withoutErr float64
	n := 0
	opts := r.Engine.Opts
	opts.SecondProbe = false
	single := wwt.NewEngineFrom(r.Engine.Index, r.Engine.Store, &opts)
	for _, q := range r.Queries {
		res := r.Run(q) // full two-probe pipeline
		withErr += res.Errors[MethodWWT]
		tables, _, err := single.Candidates(wwt.Query{Columns: q.Columns}, nil)
		if err != nil {
			tables = nil
		}
		_, l1 := single.MapColumns(wwt.Query{Columns: q.Columns}, tables)
		// Project the single-probe labeling onto the full universe; tables
		// it never saw stay all-nr.
		full := res.GT.Labeling(res.Tables) // correct shape
		for i := range full.Y {
			for c := range full.Y[i] {
				full.Y[i][c] = core.NR(q.Q())
			}
		}
		pos := make(map[string]int, len(res.Tables))
		for i, tb := range res.Tables {
			pos[tb.ID] = i
		}
		for i, tb := range tables {
			if fi, ok := pos[tb.ID]; ok {
				copy(full.Y[fi], l1.Y[i])
			}
		}
		withoutErr += F1Error(full, res.Tables, res.GT)
		n++
	}
	if n == 0 {
		return
	}
	fmt.Fprintf(w, "WWT with probe2:    %6.1f\n", withErr/float64(n))
	fmt.Fprintf(w, "WWT without probe2: %6.1f (missing candidates scored all-nr)\n", withoutErr/float64(n))
}

// ExperimentAblationCooccur compares the paper's PMI² against the §7
// future-work Dice association inside WWT's node potentials, and both
// against WWT without the co-occurrence feature.
func ExperimentAblationCooccur(w io.Writer, r *Runner) {
	fmt.Fprintln(w, "=== Ablation: co-occurrence measures (§3.2.3 / §7 future work) ===")
	type variant struct {
		name string
		mod  func(*core.Params)
	}
	// W3 is scaled up to the trained weights' magnitude so the feature has
	// real leverage; with the paper-default W3 the trained node potentials
	// dominate and all variants coincide (the paper's own finding: "we
	// did not get any accuracy boost overall with the PMI2 score").
	variants := []variant{
		{"off", func(p *core.Params) { p.UsePMI = false }},
		{"pmi2", func(p *core.Params) { p.UsePMI = true; p.Cooccur = core.CooccurPMI2; p.W3 = 3.0 }},
		{"dice", func(p *core.Params) { p.UsePMI = true; p.Cooccur = core.CooccurDice; p.W3 = 3.0 }},
	}
	sums := make([]float64, len(variants))
	n := 0
	pmi := r.Engine.PMISource()
	for _, q := range r.Queries {
		res := r.Run(q)
		n++
		for vi, v := range variants {
			p := r.Engine.Opts.Params
			v.mod(&p)
			// The feature enters node potentials, so a full rebuild is
			// needed (Reweight caches features).
			b := &core.Builder{Params: p, Stats: r.Engine.Index, PMI: pmi}
			m := b.Build(q.Columns, res.Tables)
			l := inference.SolveTableCentric(m)
			sums[vi] += F1Error(l, res.Tables, res.GT)
		}
	}
	if n == 0 {
		return
	}
	for vi, v := range variants {
		fmt.Fprintf(w, "%-6s %6.1f\n", v.name, sums[vi]/float64(n))
	}
}

// ExperimentAblationMutex compares constrained-cut mutex handling inside
// α-expansion against post-hoc repair only (§4.3).
func ExperimentAblationMutex(w io.Writer, r *Runner) {
	fmt.Fprintln(w, "=== Ablation: α-expansion mutex handling (§4.3) ===")
	var cut, posthoc float64
	n := 0
	for _, q := range r.Queries {
		res := r.Run(q)
		if res.Model == nil {
			continue
		}
		n++
		cut += res.Errors[inference.AlphaExpansion.String()]
		l := inference.SolveAlphaExpansionPostHocMutex(res.Model)
		posthoc += F1Error(l, res.Tables, res.GT)
	}
	if n == 0 {
		return
	}
	fmt.Fprintf(w, "constrained cut:  %6.1f\n", cut/float64(n))
	fmt.Fprintf(w, "post-hoc repair:  %6.1f\n", posthoc/float64(n))
}
