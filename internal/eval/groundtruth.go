// Package eval implements the paper's evaluation methodology (§5): ground
// truth derivation from the generator's ledger, the F1 error measure, the
// easy/hard query split, the seven difficulty groups binned on Basic's
// error, and the drivers that regenerate every table and figure.
package eval

import (
	"wwt/internal/core"
	"wwt/internal/workload"
	"wwt/internal/wtable"
)

// GroundTruth is the correct labeling of a candidate set for one query.
type GroundTruth struct {
	Q int
	// Labels[tableID][col] is the true label (0..q-1, na, nr).
	Labels map[string][]int
	// Relevant[tableID] mirrors the all-Irr semantics of the labels.
	Relevant map[string]bool
}

// TruthFor derives ground truth structurally from the generator ledger:
// a table is relevant to a query iff its columns include the first query
// attribute and at least MinMatch query attributes overall; its mapped
// columns take the corresponding query labels, other columns na. Tables
// outside the ledger (or missing the requirement) are all-nr.
func TruthFor(q workload.Query, tables []*wtable.Table, ledger map[string][]string) GroundTruth {
	gt := GroundTruth{
		Q:        q.Q(),
		Labels:   make(map[string][]int, len(tables)),
		Relevant: make(map[string]bool, len(tables)),
	}
	for _, tb := range tables {
		ncols := tb.NumCols()
		labels := make([]int, ncols)
		keys, known := ledger[tb.ID]
		mapped := 0
		hasFirst := false
		if known {
			for c := 0; c < ncols && c < len(keys); c++ {
				labels[c] = core.NA(gt.Q)
				for ell, qk := range q.Keys {
					if keys[c] == qk && qk != "" {
						labels[c] = ell
						mapped++
						if ell == 0 {
							hasFirst = true
						}
						break
					}
				}
			}
			for c := len(keys); c < ncols; c++ {
				labels[c] = core.NA(gt.Q)
			}
		}
		if !known || !hasFirst || mapped < q.MinMatch() {
			for c := range labels {
				labels[c] = core.NR(gt.Q)
			}
			gt.Relevant[tb.ID] = false
		} else {
			gt.Relevant[tb.ID] = true
		}
		gt.Labels[tb.ID] = labels
	}
	return gt
}

// Labeling materializes the ground truth as a core.Labeling over the given
// candidate order.
func (gt GroundTruth) Labeling(tables []*wtable.Table) core.Labeling {
	cols := make([]int, len(tables))
	for i, tb := range tables {
		cols[i] = tb.NumCols()
	}
	l := core.NewLabeling(gt.Q, cols)
	for i, tb := range tables {
		if labels, ok := gt.Labels[tb.ID]; ok {
			copy(l.Y[i], labels)
		}
	}
	return l
}

// RelevantCount returns the number of relevant candidates.
func (gt GroundTruth) RelevantCount() int {
	n := 0
	for _, r := range gt.Relevant {
		if r {
			n++
		}
	}
	return n
}

// F1Error computes the paper's error measure (§5):
//
//	error = 100 · (1 − 2·Σ[[y=y* ∧ y∈1..q]] / (Σ[[y∈1..q]] + Σ[[y*∈1..q]]))
//
// over all (table, column) pairs. When neither prediction nor truth maps
// any column the error is 0 (nothing to get wrong).
func F1Error(pred core.Labeling, tables []*wtable.Table, gt GroundTruth) float64 {
	q := gt.Q
	var correct, predicted, gold int
	for ti, tb := range tables {
		truth := gt.Labels[tb.ID]
		for c := 0; c < tb.NumCols(); c++ {
			var py, gy int = core.NR(q), core.NR(q)
			if ti < len(pred.Y) && c < len(pred.Y[ti]) {
				py = pred.Y[ti][c]
			}
			if c < len(truth) {
				gy = truth[c]
			}
			pReal := py >= 0 && py < q
			gReal := gy >= 0 && gy < q
			if pReal {
				predicted++
			}
			if gReal {
				gold++
			}
			if pReal && gReal && py == gy {
				correct++
			}
		}
	}
	if predicted+gold == 0 {
		return 0
	}
	return 100 * (1 - 2*float64(correct)/float64(predicted+gold))
}

// RowSetError compares two consolidated answers by their row key sets (the
// first-column values), as in Fig. 6: the F1 error of predicted rows
// against the rows of the true-mapping consolidation.
func RowSetError(pred, truth []string) float64 {
	if len(pred)+len(truth) == 0 {
		return 0
	}
	set := make(map[string]bool, len(truth))
	for _, k := range truth {
		set[k] = true
	}
	correct := 0
	seen := make(map[string]bool, len(pred))
	for _, k := range pred {
		if set[k] && !seen[k] {
			correct++
			seen[k] = true
		}
	}
	return 100 * (1 - 2*float64(correct)/float64(len(pred)+len(truth)))
}
