package eval

import (
	"testing"

	"wwt/internal/core"
	"wwt/internal/corpusgen"
)

// TestDiagnosePerQuery prints per-query WWT/Basic errors with prediction
// vs truth counts; a development aid kept as a skipped-by-default test.
func TestDiagnosePerQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	r, err := NewRunner(corpusgen.Config{Seed: 2012}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%-55s %5s %5s | %6s %6s | %5s %5s %5s\n",
		"query", "cand", "rel", "Basic", "WWT", "pRel", "gReal", "pReal")
	for _, q := range r.Queries {
		res := r.Run(q)
		wl := res.Labelings[MethodWWT]
		pRel, pReal, gReal := 0, 0, 0
		for ti := range res.Tables {
			if wl.Relevant(ti) {
				pRel++
			}
			for _, y := range wl.Y[ti] {
				if y >= 0 && y < q.Q() {
					pReal++
				}
			}
		}
		for _, tb := range res.Tables {
			for _, y := range res.GT.Labels[tb.ID] {
				if y >= 0 && y < q.Q() {
					gReal++
				}
			}
		}
		t.Logf("%-55s %5d %5d | %6.1f %6.1f | %5d %5d %5d\n",
			q.String(), len(res.Tables), res.GT.RelevantCount(),
			res.Errors[MethodBasic], res.Errors[MethodWWT], pRel, gReal, pReal)
	}
	_ = core.NA
}
