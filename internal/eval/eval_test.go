package eval

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"wwt/internal/core"
	"wwt/internal/corpusgen"
	"wwt/internal/workload"
	"wwt/internal/wtable"
)

func mkTable(id string, cols int) *wtable.Table {
	t := &wtable.Table{ID: id}
	row := wtable.Row{}
	for c := 0; c < cols; c++ {
		row.Cells = append(row.Cells, wtable.Cell{Text: "x"})
	}
	t.BodyRows = []wtable.Row{row}
	return t
}

func TestTruthForRelevance(t *testing.T) {
	q := workload.Query{ID: 1, Columns: []string{"country", "currency"}, Keys: []string{"country", "currency"}}
	tables := []*wtable.Table{mkTable("full", 3), mkTable("keyonly", 2), mkTable("second", 2), mkTable("unknown", 2)}
	ledger := map[string][]string{
		"full":    {"country", "currency", ""},
		"keyonly": {"country", "gdp"},
		"second":  {"gdp", "currency"},
	}
	gt := TruthFor(q, tables, ledger)
	if !gt.Relevant["full"] {
		t.Error("full table should be relevant")
	}
	if gt.Relevant["keyonly"] {
		t.Error("key-only table violates min-match, must be irrelevant")
	}
	if gt.Relevant["second"] {
		t.Error("table without first query column violates must-match")
	}
	if gt.Relevant["unknown"] {
		t.Error("unledgered table must be irrelevant")
	}
	want := []int{0, 1, core.NA(2)}
	for i, w := range want {
		if gt.Labels["full"][i] != w {
			t.Errorf("full labels = %v, want %v", gt.Labels["full"], want)
		}
	}
	for _, y := range gt.Labels["keyonly"] {
		if y != core.NR(2) {
			t.Errorf("keyonly labels = %v, want all nr", gt.Labels["keyonly"])
		}
	}
}

func TestF1ErrorExactAndEmpty(t *testing.T) {
	q := workload.Query{ID: 1, Columns: []string{"a", "b"}, Keys: []string{"ka", "kb"}}
	tables := []*wtable.Table{mkTable("t", 2)}
	gt := TruthFor(q, tables, map[string][]string{"t": {"ka", "kb"}})
	perfect := gt.Labeling(tables)
	if e := F1Error(perfect, tables, gt); e != 0 {
		t.Errorf("perfect labeling error = %f", e)
	}
	allNR := core.NewLabeling(2, []int{2})
	if e := F1Error(allNR, tables, gt); math.Abs(e-100) > 1e-9 {
		t.Errorf("all-miss error = %f, want 100", e)
	}
	// Empty prediction and truth: 0 error.
	gtEmpty := TruthFor(q, tables, nil)
	if e := F1Error(allNR, tables, gtEmpty); e != 0 {
		t.Errorf("empty/empty error = %f, want 0", e)
	}
}

func TestF1ErrorPartial(t *testing.T) {
	q := workload.Query{ID: 1, Columns: []string{"a", "b"}, Keys: []string{"ka", "kb"}}
	tables := []*wtable.Table{mkTable("t", 2)}
	gt := TruthFor(q, tables, map[string][]string{"t": {"ka", "kb"}})
	// Predict only the first column correctly, second as na — violates
	// nothing for scoring purposes: C=1, P=1, G=2 -> error = 100(1-2/3).
	l := core.NewLabeling(2, []int{2})
	l.Y[0][0] = 0
	l.Y[0][1] = core.NA(2)
	want := 100 * (1 - 2.0/3.0)
	if e := F1Error(l, tables, gt); math.Abs(e-want) > 1e-9 {
		t.Errorf("partial error = %f, want %f", e, want)
	}
}

func TestRowSetError(t *testing.T) {
	if e := RowSetError([]string{"a", "b"}, []string{"a", "b"}); e != 0 {
		t.Errorf("identical rows error = %f", e)
	}
	if e := RowSetError(nil, nil); e != 0 {
		t.Errorf("empty error = %f", e)
	}
	if e := RowSetError([]string{"a"}, []string{"b"}); math.Abs(e-100) > 1e-9 {
		t.Errorf("disjoint error = %f, want 100", e)
	}
	// Duplicate predictions must not double-count.
	e := RowSetError([]string{"a", "a"}, []string{"a"})
	want := 100 * (1 - 2.0/3.0)
	if math.Abs(e-want) > 1e-9 {
		t.Errorf("dup error = %f, want %f", e, want)
	}
}

func TestEasyHardAndGroups(t *testing.T) {
	mk := func(id int, basic, others float64) *QueryResult {
		return &QueryResult{
			Query: workload.Query{ID: id},
			Errors: map[string]float64{
				MethodBasic: basic, MethodNbrText: others,
				MethodPMI2: others, MethodWWT: others,
			},
		}
	}
	var results []*QueryResult
	results = append(results, mk(1, 50, 50)) // easy: all equal
	for i := 0; i < 14; i++ {
		results = append(results, mk(i+2, float64(90-i*5), 10))
	}
	easy, hard := EasyHard(results)
	if len(easy) != 1 || len(hard) != 14 {
		t.Fatalf("easy/hard = %d/%d, want 1/14", len(easy), len(hard))
	}
	groups := Groups(hard)
	if len(groups) != 7 {
		t.Fatalf("groups = %d", len(groups))
	}
	// Basic error must be non-increasing across groups.
	prev := math.Inf(1)
	total := 0
	for _, g := range groups {
		if len(g) == 0 {
			t.Fatal("empty group")
		}
		total += len(g)
		b := MeanError(g, MethodBasic)
		if b > prev+1e-9 {
			t.Errorf("groups not ordered by Basic error: %f after %f", b, prev)
		}
		prev = b
	}
	if total != 14 {
		t.Errorf("group sizes sum to %d", total)
	}
}

func TestRunnerSmokeAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus run")
	}
	r, err := NewRunner(corpusgen.Config{Seed: 99, Scale: 0.25, JunkPages: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for name, f := range map[string]func(*testing.T){
		"table1": func(t *testing.T) { ExperimentTable1(&buf, r) },
		"probe2": func(t *testing.T) { ExperimentProbe2(&buf, r) },
		"fig5":   func(t *testing.T) { ExperimentFig5(&buf, r) },
		"fig6":   func(t *testing.T) { ExperimentFig6(&buf, r) },
		"fig7":   func(t *testing.T) { ExperimentFig7(&buf, r) },
		"fig8":   func(t *testing.T) { ExperimentFig8(&buf, r) },
		"table2": func(t *testing.T) { ExperimentTable2(&buf, r) },
		"abl-e":  func(t *testing.T) { ExperimentAblationEdges(&buf, r) },
		"abl-p":  func(t *testing.T) { ExperimentAblationProbe2(&buf, r) },
		"abl-m":  func(t *testing.T) { ExperimentAblationMutex(&buf, r) },
	} {
		t.Run(name, f)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Figure 5", "Figure 6", "Figure 7", "Figure 8", "Table 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("experiment output missing %q", want)
		}
	}
}

func TestRunnerCachesResults(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus run")
	}
	r, err := NewRunner(corpusgen.Config{Seed: 99, Scale: 0.25, JunkPages: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := r.Run(r.Queries[0])
	b := r.Run(r.Queries[0])
	if a != b {
		t.Error("Run should cache per query ID")
	}
}
