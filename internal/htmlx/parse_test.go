package htmlx

import (
	"strings"
	"testing"
)

func TestParseSimpleTree(t *testing.T) {
	doc := Parse(`<html><body><p>Hello <b>World</b></p></body></html>`)
	ps := doc.Find("p")
	if len(ps) != 1 {
		t.Fatalf("want 1 <p>, got %d", len(ps))
	}
	if got := ps[0].InnerText(); got != "Hello World" {
		t.Errorf("InnerText = %q", got)
	}
	if doc.FindFirst("b") == nil {
		t.Error("missing <b>")
	}
}

func TestParseAttributes(t *testing.T) {
	doc := Parse(`<table class="data wide" border=1 data-x='7'><tr><td>x</td></tr></table>`)
	tb := doc.FindFirst("table")
	if tb == nil {
		t.Fatal("no table")
	}
	if tb.Attr("class") != "data wide" {
		t.Errorf("class = %q", tb.Attr("class"))
	}
	if tb.Attr("border") != "1" {
		t.Errorf("border = %q", tb.Attr("border"))
	}
	if tb.Attr("data-x") != "7" {
		t.Errorf("data-x = %q", tb.Attr("data-x"))
	}
	if tb.Attr("missing") != "" {
		t.Errorf("missing attr should be empty")
	}
}

func TestParseUnclosedTableCells(t *testing.T) {
	// Permissive markup: no </td>, no </tr>.
	doc := Parse(`<table><tr><td>a<td>b<tr><td>c<td>d</table>`)
	trs := doc.Find("tr")
	if len(trs) != 2 {
		t.Fatalf("want 2 rows, got %d", len(trs))
	}
	for i, tr := range trs {
		tds := tr.Find("td")
		if len(tds) != 2 {
			t.Errorf("row %d: want 2 cells, got %d", i, len(tds))
		}
	}
	if got := trs[1].InnerText(); got != "c d" {
		t.Errorf("row 2 text = %q", got)
	}
}

func TestParseNestedTableScope(t *testing.T) {
	doc := Parse(`<table><tr><td><table><tr><td>inner</td></tr></table></td><td>outer2</td></tr></table>`)
	tables := doc.Find("table")
	if len(tables) != 2 {
		t.Fatalf("want 2 tables, got %d", len(tables))
	}
	outerRows := 0
	for _, tr := range doc.Find("tr") {
		if !tr.HasAncestor(tables[1]) {
			outerRows++
		}
	}
	if outerRows != 1 {
		t.Errorf("outer table rows = %d, want 1", outerRows)
	}
	// The inner <tr> must not have auto-closed the outer <td>.
	outerCells := tables[0].Children[0].Find("td")
	_ = outerCells
	innerTable := tables[1]
	if !innerTable.HasAncestor(tables[0]) {
		t.Error("inner table should be nested inside outer table")
	}
}

func TestParseCommentsAndDoctype(t *testing.T) {
	doc := Parse(`<!DOCTYPE html><!-- a comment --><p>text</p>`)
	if doc.FindFirst("p") == nil {
		t.Fatal("p lost")
	}
	var comments int
	doc.Walk(func(n *Node) {
		if n.Type == CommentNode {
			comments++
		}
	})
	if comments != 1 {
		t.Errorf("comments = %d, want 1", comments)
	}
}

func TestParseScriptRawText(t *testing.T) {
	doc := Parse(`<script>if (a < b) { x("<td>"); }</script><p>after</p>`)
	if doc.FindFirst("td") != nil {
		t.Error("script content leaked into DOM")
	}
	if doc.FindFirst("p") == nil {
		t.Error("content after script lost")
	}
}

func TestParseVoidElements(t *testing.T) {
	doc := Parse(`<p>a<br>b<img src="x.png">c</p>`)
	p := doc.FindFirst("p")
	if p == nil {
		t.Fatal("no p")
	}
	if got := p.InnerText(); got != "a b c" {
		t.Errorf("text = %q", got)
	}
}

func TestParseEntities(t *testing.T) {
	doc := Parse(`<td>Fish &amp; Chips &lt;small&gt;</td>`)
	td := doc.FindFirst("td")
	if td == nil {
		t.Fatal("no td")
	}
	if got := td.InnerText(); got != "Fish & Chips <small>" {
		t.Errorf("text = %q", got)
	}
}

func TestParseStrayCloseTags(t *testing.T) {
	doc := Parse(`</div><p>ok</p></table>`)
	if doc.FindFirst("p") == nil {
		t.Error("content lost around stray close tags")
	}
}

func TestParseMalformedNeverPanics(t *testing.T) {
	cases := []string{
		"<", "<x", "<table><tr><td", "<!--", "<a href=", `<a href="unterminated`,
		"<<<>>>", "</", "<table></p></table>", strings.Repeat("<div>", 2000),
	}
	for _, c := range cases {
		_ = Parse(c) // must not panic
	}
}

func TestPathToRoot(t *testing.T) {
	doc := Parse(`<html><body><div><table><tr><td>x</td></tr></table></div></body></html>`)
	td := doc.FindFirst("td")
	path := td.PathToRoot()
	if path[0] != td {
		t.Error("path should start at node")
	}
	if path[len(path)-1] != doc {
		t.Error("path should end at document")
	}
	want := []string{"td", "tr", "table", "div", "body", "html"}
	for i, w := range want {
		if path[i].Tag != w {
			t.Errorf("path[%d] = %q, want %q", i, path[i].Tag, w)
		}
	}
}

func TestChildIndex(t *testing.T) {
	doc := Parse(`<ul><li>a</li><li>b</li><li>c</li></ul>`)
	ul := doc.FindFirst("ul")
	if ul == nil || len(ul.Children) != 3 {
		t.Fatalf("bad ul: %+v", ul)
	}
	if ul.ChildIndex(ul.Children[2]) != 2 {
		t.Error("ChildIndex wrong")
	}
	if ul.ChildIndex(&Node{}) != -1 {
		t.Error("ChildIndex of foreign node should be -1")
	}
}

func TestTitleExtraction(t *testing.T) {
	doc := Parse(`<html><head><title>List of explorers - Wikipedia</title></head><body></body></html>`)
	ti := doc.FindFirst("title")
	if ti == nil {
		t.Fatal("no title")
	}
	if got := ti.InnerText(); got != "List of explorers - Wikipedia" {
		t.Errorf("title = %q", got)
	}
}

func TestParseTHAndTheadStructure(t *testing.T) {
	doc := Parse(`<table><thead><tr><th>Name</th><th>Area</th></tr></thead><tbody><tr><td>x</td><td>1</td></tr></tbody></table>`)
	if n := len(doc.Find("th")); n != 2 {
		t.Errorf("th count = %d", n)
	}
	if n := len(doc.Find("tr")); n != 2 {
		t.Errorf("tr count = %d", n)
	}
	thead := doc.FindFirst("thead")
	if thead == nil || len(thead.Find("th")) != 2 {
		t.Error("thead structure broken")
	}
}
