package htmlx

import "strings"

// voidElements never take children and need no closing tag.
var voidElements = map[string]bool{
	"br": true, "hr": true, "img": true, "input": true, "meta": true,
	"link": true, "col": true, "area": true, "base": true, "embed": true,
	"source": true, "track": true, "wbr": true, "param": true,
}

// rawTextElements swallow everything until their literal closing tag.
var rawTextElements = map[string]bool{"script": true, "style": true}

// autoClose lists, for an opening tag, the tags that an open element must
// have closed before it can start. This captures the HTML permissive-markup
// rules that matter for tables, lists and paragraphs.
var autoClose = map[string][]string{
	"tr":     {"td", "th", "tr"},
	"td":     {"td", "th"},
	"th":     {"td", "th"},
	"tbody":  {"td", "th", "tr", "thead", "tbody", "tfoot"},
	"thead":  {"td", "th", "tr", "thead", "tbody", "tfoot"},
	"tfoot":  {"td", "th", "tr", "thead", "tbody", "tfoot"},
	"li":     {"li"},
	"p":      {"p"},
	"option": {"option"},
	"dt":     {"dd", "dt"},
	"dd":     {"dd", "dt"},
}

// scopeBarriers stop the auto-close upward scan; a new <tr> must not close
// a <td> of an *outer* table.
var scopeBarriers = map[string]bool{"table": true, "html": true, "body": true}

// Parse builds a DOM tree from raw HTML. It never fails: malformed markup
// degrades to best-effort structure, mirroring how browsers and crawlers
// treat the open web.
func Parse(src string) *Node {
	doc := &Node{Type: DocumentNode}
	p := &parser{src: src, stack: []*Node{doc}}
	p.run()
	return doc
}

type parser struct {
	src   string
	pos   int
	stack []*Node
}

func (p *parser) top() *Node { return p.stack[len(p.stack)-1] }

func (p *parser) run() {
	for p.pos < len(p.src) {
		lt := strings.IndexByte(p.src[p.pos:], '<')
		if lt < 0 {
			p.addText(p.src[p.pos:])
			return
		}
		if lt > 0 {
			p.addText(p.src[p.pos : p.pos+lt])
		}
		p.pos += lt
		p.parseTag()
	}
}

func (p *parser) addText(t string) {
	if strings.TrimSpace(t) == "" {
		return
	}
	p.top().appendChild(&Node{Type: TextNode, Text: Unescape(t)})
}

// parseTag consumes one construct starting at '<'.
func (p *parser) parseTag() {
	s := p.src
	i := p.pos
	if strings.HasPrefix(s[i:], "<!--") {
		end := strings.Index(s[i+4:], "-->")
		if end < 0 {
			p.pos = len(s)
			return
		}
		p.top().appendChild(&Node{Type: CommentNode, Text: s[i+4 : i+4+end]})
		p.pos = i + 4 + end + 3
		return
	}
	if strings.HasPrefix(s[i:], "<!") || strings.HasPrefix(s[i:], "<?") {
		// DOCTYPE / processing instruction: skip to '>'.
		end := strings.IndexByte(s[i:], '>')
		if end < 0 {
			p.pos = len(s)
			return
		}
		p.pos = i + end + 1
		return
	}
	if strings.HasPrefix(s[i:], "</") {
		end := strings.IndexByte(s[i:], '>')
		if end < 0 {
			p.pos = len(s)
			return
		}
		name := strings.ToLower(strings.TrimSpace(s[i+2 : i+end]))
		p.pos = i + end + 1
		p.closeTag(name)
		return
	}
	// Opening tag.
	end := strings.IndexByte(s[i:], '>')
	if end < 0 {
		// Treat a stray '<' with no closing '>' as text.
		p.addText(s[i:])
		p.pos = len(s)
		return
	}
	inner := s[i+1 : i+end]
	selfClose := strings.HasSuffix(inner, "/")
	if selfClose {
		inner = inner[:len(inner)-1]
	}
	name, attrs := parseTagBody(inner)
	p.pos = i + end + 1
	if name == "" {
		return
	}
	p.openTag(name, attrs, selfClose)
}

func (p *parser) openTag(name string, attrs map[string]string, selfClose bool) {
	if closers, ok := autoClose[name]; ok {
		p.autoCloseFor(closers)
	}
	n := &Node{Type: ElementNode, Tag: name, Attrs: attrs}
	p.top().appendChild(n)
	if selfClose || voidElements[name] {
		return
	}
	if rawTextElements[name] {
		p.consumeRawText(n, name)
		return
	}
	p.stack = append(p.stack, n)
}

// consumeRawText swallows content until </name>.
func (p *parser) consumeRawText(n *Node, name string) {
	closeTag := "</" + name
	rest := strings.ToLower(p.src[p.pos:])
	idx := strings.Index(rest, closeTag)
	if idx < 0 {
		p.pos = len(p.src)
		return
	}
	raw := p.src[p.pos : p.pos+idx]
	if strings.TrimSpace(raw) != "" {
		n.appendChild(&Node{Type: TextNode, Text: raw})
	}
	gt := strings.IndexByte(p.src[p.pos+idx:], '>')
	if gt < 0 {
		p.pos = len(p.src)
		return
	}
	p.pos += idx + gt + 1
}

// autoCloseFor pops open elements matching any of tags, stopping at scope
// barriers.
func (p *parser) autoCloseFor(tags []string) {
	for len(p.stack) > 1 {
		t := p.top().Tag
		if scopeBarriers[t] {
			return
		}
		match := false
		for _, x := range tags {
			if t == x {
				match = true
				break
			}
		}
		if !match {
			return
		}
		p.stack = p.stack[:len(p.stack)-1]
	}
}

// closeTag handles </name>: pop to the nearest matching open element; a
// close tag with no matching open element is ignored.
func (p *parser) closeTag(name string) {
	for i := len(p.stack) - 1; i >= 1; i-- {
		if p.stack[i].Tag == name {
			p.stack = p.stack[:i]
			return
		}
		// Do not let a stray close tag cross a table boundary.
		if scopeBarriers[p.stack[i].Tag] && p.stack[i].Tag != name {
			return
		}
	}
}

// parseTagBody splits "name k=v k2='v2' k3" into the lowercase tag name and
// attribute map.
func parseTagBody(s string) (string, map[string]string) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", nil
	}
	nameEnd := len(s)
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r' {
			nameEnd = i
			break
		}
	}
	name := strings.ToLower(s[:nameEnd])
	rest := s[nameEnd:]
	var attrs map[string]string
	i := 0
	for i < len(rest) {
		for i < len(rest) && isSpace(rest[i]) {
			i++
		}
		if i >= len(rest) {
			break
		}
		keyStart := i
		for i < len(rest) && rest[i] != '=' && !isSpace(rest[i]) {
			i++
		}
		key := strings.ToLower(rest[keyStart:i])
		val := ""
		for i < len(rest) && isSpace(rest[i]) {
			i++
		}
		if i < len(rest) && rest[i] == '=' {
			i++
			for i < len(rest) && isSpace(rest[i]) {
				i++
			}
			if i < len(rest) && (rest[i] == '"' || rest[i] == '\'') {
				q := rest[i]
				i++
				vStart := i
				for i < len(rest) && rest[i] != q {
					i++
				}
				val = rest[vStart:i]
				if i < len(rest) {
					i++
				}
			} else {
				vStart := i
				for i < len(rest) && !isSpace(rest[i]) {
					i++
				}
				val = rest[vStart:i]
			}
		}
		if key != "" {
			if attrs == nil {
				attrs = make(map[string]string)
			}
			attrs[key] = Unescape(val)
		}
	}
	return name, attrs
}

func isSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r'
}

// entity replacements for the handful of entities that occur in practice in
// table cells; numeric entities are left untouched (tokenization treats them
// as separators anyway).
var entityReplacer = strings.NewReplacer(
	"&amp;", "&", "&lt;", "<", "&gt;", ">", "&quot;", `"`,
	"&apos;", "'", "&nbsp;", " ", "&#39;", "'", "&#34;", `"`,
	"&ndash;", "–", "&mdash;", "—",
)

// Unescape resolves common HTML entities in s.
func Unescape(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	return entityReplacer.Replace(s)
}
