// Package htmlx is a small, dependency-free HTML parser sufficient for web
// table extraction: it tokenizes markup, builds a DOM tree with the
// auto-closing rules that matter for tables and lists, and offers the
// traversal helpers the extractor needs (descendant search, inner text,
// root paths). It is intentionally not a full HTML5 parser; it is the
// substrate standing in for the production crawler's parser.
package htmlx

import "strings"

// NodeType discriminates DOM node kinds.
type NodeType int

// Node kinds produced by Parse.
const (
	DocumentNode NodeType = iota
	ElementNode
	TextNode
	CommentNode
)

// Node is a DOM tree node. Element nodes carry Tag and Attrs; text and
// comment nodes carry Text.
type Node struct {
	Type     NodeType
	Tag      string // lowercase element name
	Attrs    map[string]string
	Text     string
	Parent   *Node
	Children []*Node
}

// appendChild links c under n.
func (n *Node) appendChild(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
}

// Attr returns the value of attribute k ("" when absent). Keys are
// lowercase.
func (n *Node) Attr(k string) string {
	if n.Attrs == nil {
		return ""
	}
	return n.Attrs[k]
}

// Find returns all descendant elements (depth-first, document order) whose
// tag equals tag.
func (n *Node) Find(tag string) []*Node {
	var out []*Node
	n.walk(func(c *Node) bool {
		if c.Type == ElementNode && c.Tag == tag {
			out = append(out, c)
		}
		return true
	})
	return out
}

// FindFirst returns the first descendant element with the given tag, or nil.
func (n *Node) FindFirst(tag string) *Node {
	var found *Node
	n.walk(func(c *Node) bool {
		if found == nil && c.Type == ElementNode && c.Tag == tag {
			found = c
			return false
		}
		return found == nil
	})
	return found
}

// walk visits every descendant of n (not n itself) in document order. If f
// returns false the subtree below the visited node is skipped.
func (n *Node) walk(f func(*Node) bool) {
	for _, c := range n.Children {
		if f(c) {
			c.walk(f)
		}
	}
}

// Walk visits n and every descendant in document order.
func (n *Node) Walk(f func(*Node)) {
	f(n)
	for _, c := range n.Children {
		c.Walk(f)
	}
}

// InnerText concatenates all descendant text, separating block fragments by
// single spaces and collapsing whitespace.
func (n *Node) InnerText() string {
	var b strings.Builder
	n.Walk(func(c *Node) {
		if c.Type == TextNode {
			t := strings.TrimSpace(c.Text)
			if t != "" {
				if b.Len() > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(t)
			}
		}
	})
	return b.String()
}

// PathToRoot returns the chain of ancestors from n (inclusive) to the tree
// root (inclusive).
func (n *Node) PathToRoot() []*Node {
	var path []*Node
	for cur := n; cur != nil; cur = cur.Parent {
		path = append(path, cur)
	}
	return path
}

// HasAncestor reports whether a is a proper ancestor of n.
func (n *Node) HasAncestor(a *Node) bool {
	for cur := n.Parent; cur != nil; cur = cur.Parent {
		if cur == a {
			return true
		}
	}
	return false
}

// ChildIndex returns the index of c within n.Children, or -1.
func (n *Node) ChildIndex(c *Node) int {
	for i, x := range n.Children {
		if x == c {
			return i
		}
	}
	return -1
}
