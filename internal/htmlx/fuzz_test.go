package htmlx

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanicsQuick feeds Parse pseudo-random markup soup; it
// must always return a tree without panicking and never lose track of
// nesting (InnerText must terminate).
func TestParseNeverPanicsQuick(t *testing.T) {
	fragments := []string{
		"<table>", "</table>", "<tr>", "<td>", "</td>", "<th>", "text",
		"<b>", "</i>", "<!--", "-->", "<", ">", "&amp;", "<img src=x>",
		"<script>", "</script>", "<a href='", "'>", "</", "<div class=\"x\">",
		"<!DOCTYPE html>", "\n", "  ", "<p", "<td", "=\"", "<table",
	}
	f := func(picks []uint8) bool {
		var b strings.Builder
		for _, p := range picks {
			b.WriteString(fragments[int(p)%len(fragments)])
		}
		doc := Parse(b.String())
		_ = doc.InnerText()
		_ = doc.Find("table")
		_ = doc.FindFirst("td")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestParseTreeParentConsistencyQuick: every child's Parent pointer must
// point at the node holding it.
func TestParseTreeParentConsistencyQuick(t *testing.T) {
	inputs := []string{
		"<table><tr><td>a<td>b<tr><td>c</table>",
		"<div><p>x<p>y</div><ul><li>1<li>2</ul>",
		"<table><tr><td><table><tr><td>i</table></td></tr></table>",
		"<html><body><h1>t</h1><table><tr><th>h</th></tr><tr><td>v</td></tr></table></body></html>",
	}
	for _, in := range inputs {
		doc := Parse(in)
		var check func(n *Node) bool
		check = func(n *Node) bool {
			for _, c := range n.Children {
				if c.Parent != n {
					return false
				}
				if !check(c) {
					return false
				}
			}
			return true
		}
		if !check(doc) {
			t.Errorf("parent pointers inconsistent for %q", in)
		}
	}
}

// TestUnescapeIdempotent: unescaping twice equals unescaping once for
// strings without entity-producing sequences.
func TestUnescapeIdempotent(t *testing.T) {
	cases := []string{"Fish & Chips", "a &lt; b", "&amp;amp;", "plain", "&nbsp;x"}
	for _, c := range cases {
		once := Unescape(c)
		if strings.ContainsAny(once, "&") && strings.Contains(once, "&amp;") {
			continue // &amp;amp; legitimately unescapes in two steps
		}
		if twice := Unescape(once); twice != once && !strings.Contains(c, "&amp;") {
			t.Errorf("Unescape not stable on %q: %q -> %q", c, once, twice)
		}
	}
}
