// Package consolidate implements the final stage of Fig. 2: merging the
// relevant columns and rows of mapped web tables into a single q-column
// answer table, resolving duplicate rows across sources (after [9], soft
// key matching on the first query column), and ranking rows so that highly
// supported, high-confidence rows surface first.
//
// # Ownership and concurrency contracts
//
// Consolidate reads its inputs (tables, labeling, confidence and
// relevance grids) without mutating them, and the returned Answer owns
// all of its storage — rows, cells and source lists are freshly
// allocated, so an Answer outlives any scratch or model it was derived
// from. ConsolidateScratch reuses a caller-owned Scratch (key indexes)
// across calls: one consolidation owns the arena at a time, and only the
// arena is reused — the Answer it returns still owns its storage.
package consolidate
