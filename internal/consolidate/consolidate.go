package consolidate

import (
	"sort"
	"strings"

	"wwt/internal/core"
	"wwt/internal/text"
	"wwt/internal/wtable"
)

// Options tunes consolidation.
type Options struct {
	// KeyJaccard is the token-set similarity above which two first-column
	// cells are considered the same entity.
	KeyJaccard float64
	// MaxRows caps the answer size (0 = unlimited).
	MaxRows int
}

// NewOptions returns defaults.
func NewOptions() Options { return Options{KeyJaccard: 0.8, MaxRows: 0} }

// Row is one consolidated answer row.
type Row struct {
	Cells   []string // one per query column ("" when unknown)
	Support int      // number of source tables contributing
	Sources []string // contributing table IDs
	Score   float64  // support + relevance mass, drives ranking
}

// Answer is the consolidated result table.
type Answer struct {
	NumCols int
	Rows    []Row
	// Sources lists the relevant tables that were merged.
	Sources []string
}

// keyedRow pairs a row's key tokens with its answer-row index for the
// fuzzy key matching.
type keyedRow struct {
	keyTokens []string
	row       int // index into ans.Rows
}

// Scratch is the reusable working state of one consolidation: the exact
// and fuzzy key indexes plus the per-table column mapping. Only the
// returned Answer survives a call (it is always freshly allocated), so a
// Scratch may be reused as soon as Consolidate returns. The zero value is
// ready to use.
type Scratch struct {
	exact  map[string]int
	fuzzy  []keyedRow
	colFor []int
}

// Consolidate merges the rows of all tables marked relevant by the
// labeling. conf[t][c] supplies per-column confidence (may be nil: uniform
// 1); relevance[t] supplies table scores (may be nil: uniform 1).
func Consolidate(q int, tables []*wtable.Table, l core.Labeling, conf [][]float64, relevance []float64, opts Options) *Answer {
	return ConsolidateScratch(q, tables, l, conf, relevance, opts, nil)
}

// ConsolidateScratch is Consolidate through a caller-owned scratch (nil
// for a fresh private one).
func ConsolidateScratch(q int, tables []*wtable.Table, l core.Labeling, conf [][]float64, relevance []float64, opts Options, s *Scratch) *Answer {
	if s == nil {
		s = &Scratch{}
	}
	ans := &Answer{NumCols: q}
	if s.exact == nil {
		s.exact = make(map[string]int)
	}
	clear(s.exact)
	exact := s.exact // normalized key -> row index
	fuzzy := s.fuzzy[:0]
	defer func() { s.fuzzy = fuzzy }()

	if cap(s.colFor) < q {
		s.colFor = make([]int, q)
	}

	for ti, tb := range tables {
		if ti >= len(l.Y) || !l.Relevant(ti) {
			continue
		}
		colFor := s.colFor[:q]
		for ell := 0; ell < q; ell++ {
			colFor[ell] = l.ColumnOf(ti, ell)
		}
		if colFor[0] < 0 {
			continue // no key column mapped; nothing to anchor rows on
		}
		ans.Sources = append(ans.Sources, tb.ID)
		rel := 1.0
		if relevance != nil && ti < len(relevance) {
			rel = relevance[ti]
		}
		for r := 0; r < tb.NumBodyRows(); r++ {
			key := strings.TrimSpace(tb.Body(r, colFor[0]))
			if key == "" {
				continue
			}
			cells := make([]string, q)
			for ell := 0; ell < q; ell++ {
				if colFor[ell] >= 0 {
					cells[ell] = strings.TrimSpace(tb.Body(r, colFor[ell]))
				}
			}
			keyToks := text.Normalize(key)
			norm := strings.Join(keyToks, " ")
			if norm == "" {
				continue
			}
			target := -1
			if idx, ok := exact[norm]; ok {
				target = idx
			} else if opts.KeyJaccard < 1 {
				for _, kr := range fuzzy {
					if text.JaccardTokens(keyToks, kr.keyTokens) >= opts.KeyJaccard {
						target = kr.row
						break
					}
				}
			}
			if target >= 0 && compatible(ans.Rows[target].Cells, cells) {
				merge(&ans.Rows[target], cells, tb.ID, rel)
			} else {
				ans.Rows = append(ans.Rows, Row{
					Cells:   cells,
					Support: 1,
					Sources: []string{tb.ID},
					Score:   rel,
				})
				idx := len(ans.Rows) - 1
				exact[norm] = idx
				fuzzy = append(fuzzy, keyedRow{keyTokens: keyToks, row: idx})
			}
		}
	}
	rankRows(ans)
	if opts.MaxRows > 0 && len(ans.Rows) > opts.MaxRows {
		ans.Rows = ans.Rows[:opts.MaxRows]
	}
	return ans
}

// compatible reports whether two projected rows can describe the same
// entity: every pair of non-empty cells must agree on at least half of
// their token sets.
func compatible(a, b []string) bool {
	for i := range a {
		if a[i] == "" || b[i] == "" {
			continue
		}
		ta, tb := text.Normalize(a[i]), text.Normalize(b[i])
		if len(ta) == 0 || len(tb) == 0 {
			continue
		}
		if text.JaccardTokens(ta, tb) < 0.5 {
			return false
		}
	}
	return true
}

// merge folds cells into row: fills blanks, bumps support once per new
// source table.
func merge(row *Row, cells []string, source string, rel float64) {
	for i, c := range cells {
		if row.Cells[i] == "" {
			row.Cells[i] = c
		}
	}
	for _, s := range row.Sources {
		if s == source {
			return
		}
	}
	row.Sources = append(row.Sources, source)
	row.Support++
	row.Score += rel
}

// rankRows implements the ranker: higher support first, then score, then
// fuller rows, then stable lexicographic key order for determinism.
func rankRows(ans *Answer) {
	filled := func(r Row) int {
		n := 0
		for _, c := range r.Cells {
			if c != "" {
				n++
			}
		}
		return n
	}
	sort.SliceStable(ans.Rows, func(i, j int) bool {
		a, b := ans.Rows[i], ans.Rows[j]
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if fa, fb := filled(a), filled(b); fa != fb {
			return fa > fb
		}
		return a.Cells[0] < b.Cells[0]
	})
}
