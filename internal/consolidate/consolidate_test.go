package consolidate

import (
	"testing"

	"wwt/internal/core"
	"wwt/internal/wtable"
)

func row(texts ...string) wtable.Row {
	cells := make([]wtable.Cell, len(texts))
	for i, t := range texts {
		cells[i] = wtable.Cell{Text: t}
	}
	return wtable.Row{Cells: cells}
}

func table(id string, body [][]string) *wtable.Table {
	t := &wtable.Table{ID: id}
	for _, br := range body {
		t.BodyRows = append(t.BodyRows, row(br...))
	}
	return t
}

func TestConsolidateMergesDuplicates(t *testing.T) {
	a := table("a", [][]string{
		{"Vasco da Gama", "Portuguese", "Sea route to India"},
		{"Abel Tasman", "Dutch", "Oceania"},
	})
	// b maps columns in a different order: col0=area, col1=name.
	b := table("b", [][]string{
		{"Sea route to India", "Vasco da Gama"},
		{"Caribbean", "Christopher Columbus"},
	})
	q := 3
	l := core.Labeling{Q: q, Y: [][]int{
		{0, 1, 2}, // a: name, nationality, area
		{2, 0},    // b: area, name
	}}
	ans := Consolidate(q, []*wtable.Table{a, b}, l, nil, nil, NewOptions())
	if len(ans.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (Vasco merged)", len(ans.Rows))
	}
	// Vasco row must be merged: support 2, nationality filled from a.
	var vasco *Row
	for i := range ans.Rows {
		if ans.Rows[i].Cells[0] == "Vasco da Gama" {
			vasco = &ans.Rows[i]
		}
	}
	if vasco == nil {
		t.Fatal("Vasco row missing")
	}
	if vasco.Support != 2 {
		t.Errorf("Vasco support = %d, want 2", vasco.Support)
	}
	if vasco.Cells[1] != "Portuguese" {
		t.Errorf("nationality lost in merge: %v", vasco.Cells)
	}
	// Merged row ranks first.
	if ans.Rows[0].Cells[0] != "Vasco da Gama" {
		t.Errorf("highest-support row should rank first, got %v", ans.Rows[0].Cells)
	}
}

func TestConsolidateSkipsIrrelevantTables(t *testing.T) {
	a := table("a", [][]string{{"France", "Euro"}})
	junk := table("junk", [][]string{{"7", "2236"}})
	q := 2
	l := core.Labeling{Q: q, Y: [][]int{
		{0, 1},
		{core.NR(q), core.NR(q)},
	}}
	ans := Consolidate(q, []*wtable.Table{a, junk}, l, nil, nil, NewOptions())
	if len(ans.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(ans.Rows))
	}
	if len(ans.Sources) != 1 || ans.Sources[0] != "a" {
		t.Errorf("sources = %v", ans.Sources)
	}
}

func TestConsolidateConflictingRowsKeptSeparate(t *testing.T) {
	a := table("a", [][]string{{"France", "Euro"}})
	b := table("b", [][]string{{"France", "Franc"}}) // conflicting value
	q := 2
	l := core.Labeling{Q: q, Y: [][]int{{0, 1}, {0, 1}}}
	ans := Consolidate(q, []*wtable.Table{a, b}, l, nil, nil, NewOptions())
	if len(ans.Rows) != 2 {
		t.Fatalf("conflicting rows merged: %v", ans.Rows)
	}
}

func TestConsolidateMissingKeyColumn(t *testing.T) {
	// Table maps Q2 but not Q1: cannot anchor rows, skipped.
	a := table("a", [][]string{{"Euro", "x"}})
	q := 2
	l := core.Labeling{Q: q, Y: [][]int{{1, core.NA(q)}}}
	ans := Consolidate(q, []*wtable.Table{a}, l, nil, nil, NewOptions())
	if len(ans.Rows) != 0 {
		t.Errorf("rows without key column should be dropped: %v", ans.Rows)
	}
}

func TestConsolidateEmptyKeyRowsDropped(t *testing.T) {
	a := table("a", [][]string{{"", "Euro"}, {"Japan", "Yen"}})
	q := 2
	l := core.Labeling{Q: q, Y: [][]int{{0, 1}}}
	ans := Consolidate(q, []*wtable.Table{a}, l, nil, nil, NewOptions())
	if len(ans.Rows) != 1 || ans.Rows[0].Cells[0] != "Japan" {
		t.Errorf("rows = %v", ans.Rows)
	}
}

func TestConsolidateFuzzyKeyMatch(t *testing.T) {
	a := table("a", [][]string{{"United States of America", "Washington"}})
	b := table("b", [][]string{{"The United States of America", "Washington"}})
	q := 2
	l := core.Labeling{Q: q, Y: [][]int{{0, 1}, {0, 1}}}
	opts := NewOptions()
	opts.KeyJaccard = 0.7
	ans := Consolidate(q, []*wtable.Table{a, b}, l, nil, nil, opts)
	if len(ans.Rows) != 1 {
		t.Errorf("fuzzy keys not merged: %d rows", len(ans.Rows))
	}
}

func TestConsolidateMaxRows(t *testing.T) {
	a := table("a", [][]string{{"a", "1"}, {"b", "2"}, {"c", "3"}})
	q := 2
	l := core.Labeling{Q: q, Y: [][]int{{0, 1}}}
	opts := NewOptions()
	opts.MaxRows = 2
	ans := Consolidate(q, []*wtable.Table{a}, l, nil, nil, opts)
	if len(ans.Rows) != 2 {
		t.Errorf("MaxRows not applied: %d", len(ans.Rows))
	}
}

func TestConsolidateSupportCountsTablesNotRows(t *testing.T) {
	// The same table repeating a row must not inflate support.
	a := table("a", [][]string{{"France", "Euro"}, {"France", "Euro"}})
	q := 2
	l := core.Labeling{Q: q, Y: [][]int{{0, 1}}}
	ans := Consolidate(q, []*wtable.Table{a}, l, nil, nil, NewOptions())
	if len(ans.Rows) != 1 {
		t.Fatalf("rows = %d", len(ans.Rows))
	}
	if ans.Rows[0].Support != 1 {
		t.Errorf("support = %d, want 1 (same source)", ans.Rows[0].Support)
	}
}

func TestRankingPrefersRelevanceOnTie(t *testing.T) {
	a := table("a", [][]string{{"x", "1"}})
	b := table("b", [][]string{{"y", "2"}})
	q := 2
	l := core.Labeling{Q: q, Y: [][]int{{0, 1}, {0, 1}}}
	ans := Consolidate(q, []*wtable.Table{a, b}, l, nil, []float64{0.2, 0.9}, NewOptions())
	if len(ans.Rows) != 2 || ans.Rows[0].Cells[0] != "y" {
		t.Errorf("higher-relevance source should rank first: %v", ans.Rows)
	}
}
