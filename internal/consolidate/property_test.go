package consolidate

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"wwt/internal/core"
	"wwt/internal/wtable"
)

func randAnswerWorld(r *rand.Rand) (int, []*wtable.Table, core.Labeling) {
	q := 1 + r.Intn(3)
	n := 1 + r.Intn(4)
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	tables := make([]*wtable.Table, n)
	cols := make([]int, n)
	for i := range tables {
		nc := q + r.Intn(2)
		t := &wtable.Table{ID: fmt.Sprintf("t%d", i)}
		rows := 1 + r.Intn(5)
		for ri := 0; ri < rows; ri++ {
			var row wtable.Row
			for c := 0; c < nc; c++ {
				row.Cells = append(row.Cells, wtable.Cell{Text: names[r.Intn(len(names))]})
			}
			t.BodyRows = append(t.BodyRows, row)
		}
		tables[i] = t
		cols[i] = nc
	}
	l := core.NewLabeling(q, cols)
	for i := range tables {
		if r.Intn(3) == 0 {
			continue // stays irrelevant
		}
		// Assign query labels to distinct random columns, always
		// including Q1 (must-match).
		perm := r.Perm(cols[i])
		for ell := 0; ell < q && ell < len(perm); ell++ {
			l.Y[i][perm[ell]] = ell
		}
		for c := 0; c < cols[i]; c++ {
			if l.Y[i][c] == core.NR(q) {
				l.Y[i][c] = core.NA(q)
			}
		}
	}
	return q, tables, l
}

// TestConsolidateInvariantsQuick: row count bounded by input rows; every
// row has exactly q cells with a non-empty key; support bounded by the
// number of relevant tables; sources only from relevant tables.
func TestConsolidateInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, tables, l := randAnswerWorld(r)
		ans := Consolidate(q, tables, l, nil, nil, NewOptions())
		totalRows := 0
		relevant := map[string]bool{}
		for i, tb := range tables {
			if l.Relevant(i) {
				totalRows += tb.NumBodyRows()
				relevant[tb.ID] = true
			}
		}
		if len(ans.Rows) > totalRows {
			return false
		}
		for _, row := range ans.Rows {
			if len(row.Cells) != q || row.Cells[0] == "" {
				return false
			}
			if row.Support < 1 || row.Support > len(relevant) {
				return false
			}
			for _, src := range row.Sources {
				if !relevant[src] {
					return false
				}
			}
		}
		for _, src := range ans.Sources {
			if !relevant[src] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestConsolidateRankingMonotoneQuick: rows are ordered by non-increasing
// support.
func TestConsolidateRankingMonotoneQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, tables, l := randAnswerWorld(r)
		ans := Consolidate(q, tables, l, nil, nil, NewOptions())
		for i := 1; i < len(ans.Rows); i++ {
			if ans.Rows[i].Support > ans.Rows[i-1].Support {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestConsolidateDeterministicQuick: same inputs, same output.
func TestConsolidateDeterministicQuick(t *testing.T) {
	f := func(seed int64) bool {
		r1 := rand.New(rand.NewSource(seed))
		q1, t1, l1 := randAnswerWorld(r1)
		r2 := rand.New(rand.NewSource(seed))
		q2, t2, l2 := randAnswerWorld(r2)
		a := Consolidate(q1, t1, l1, nil, nil, NewOptions())
		b := Consolidate(q2, t2, l2, nil, nil, NewOptions())
		if len(a.Rows) != len(b.Rows) {
			return false
		}
		for i := range a.Rows {
			for c := range a.Rows[i].Cells {
				if a.Rows[i].Cells[c] != b.Rows[i].Cells[c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
