// Package workload exposes the 59-query evaluation workload of the
// paper's Table 1: 5 single-column, 37 two-column and 17 three-column
// queries, each bound to the corpus domain that generates its candidate
// universe and to the semantic attribute keys that define ground truth.
package workload

import (
	"fmt"

	"wwt/internal/corpusgen"
)

// Query is one evaluation query.
type Query struct {
	ID      int      // 1-based position in Table 1 order
	Columns []string // the raw column keyword sets Q1..Qq
	Keys    []string // semantic attribute key per column
	Domain  string   // generating domain name
}

// Q returns the number of query columns.
func (q Query) Q() int { return len(q.Columns) }

// String renders the query in the paper's "a | b | c" form.
func (q Query) String() string {
	s := ""
	for i, c := range q.Columns {
		if i > 0 {
			s += " | "
		}
		s += c
	}
	return s
}

// MinMatch returns m of the min-match constraint for this query.
func (q Query) MinMatch() int {
	if q.Q() < 2 {
		return 1
	}
	return 2
}

// FromCorpus derives the workload from a generated corpus: one query per
// domain, in domain declaration order (which follows Table 1).
func FromCorpus(c *corpusgen.Corpus) []Query {
	out := make([]Query, len(c.Domains))
	for i, d := range c.Domains {
		out[i] = Query{
			ID:      i + 1,
			Columns: append([]string(nil), d.Query...),
			Keys:    append([]string(nil), d.Keys...),
			Domain:  d.Name,
		}
	}
	return out
}

// ByDomain returns the query bound to the named domain.
func ByDomain(qs []Query, domain string) (Query, error) {
	for _, q := range qs {
		if q.Domain == domain {
			return q, nil
		}
	}
	return Query{}, fmt.Errorf("workload: no query for domain %q", domain)
}
