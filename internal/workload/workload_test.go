package workload

import (
	"math/rand"
	"strings"
	"testing"

	"wwt/internal/corpusgen"
)

func corpus() *corpusgen.Corpus {
	return corpusgen.Generate(corpusgen.Config{Seed: 1, Scale: 0.1, JunkPages: 1})
}

func TestFromCorpusShape(t *testing.T) {
	qs := FromCorpus(corpus())
	if len(qs) != 59 {
		t.Fatalf("queries = %d, want 59", len(qs))
	}
	arity := map[int]int{}
	for i, q := range qs {
		if q.ID != i+1 {
			t.Errorf("query %d has ID %d", i, q.ID)
		}
		if len(q.Columns) != len(q.Keys) {
			t.Errorf("%s: columns/keys mismatch", q)
		}
		arity[q.Q()]++
	}
	if arity[1] != 5 || arity[2] != 37 || arity[3] != 17 {
		t.Errorf("arity split = %v, want 5/37/17", arity)
	}
}

func TestQueryString(t *testing.T) {
	q := Query{Columns: []string{"country", "currency"}}
	if got := q.String(); got != "country | currency" {
		t.Errorf("String = %q", got)
	}
}

func TestMinMatch(t *testing.T) {
	if (Query{Columns: []string{"a"}}).MinMatch() != 1 {
		t.Error("single column min-match should be 1")
	}
	if (Query{Columns: []string{"a", "b", "c"}}).MinMatch() != 2 {
		t.Error("multi column min-match should be 2")
	}
}

func TestByDomain(t *testing.T) {
	qs := FromCorpus(corpus())
	q, err := ByDomain(qs, "country-currency")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.String(), "currency") {
		t.Errorf("wrong query: %s", q)
	}
	if _, err := ByDomain(qs, "missing"); err == nil {
		t.Error("missing domain accepted")
	}
}

func TestWorkloadMatchesPaperQueries(t *testing.T) {
	// Spot-check a few Table 1 queries appear verbatim.
	qs := FromCorpus(corpus())
	want := []string{
		"dog breed",
		"country | currency",
		"name of explorers | nationality | areas explored",
		"chemical element | atomic number | atomic weight",
		"us states | capitals | largest cities",
	}
	have := map[string]bool{}
	for _, q := range qs {
		have[q.String()] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("workload missing paper query %q", w)
		}
	}
	_ = rand.Int
}
