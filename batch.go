package wwt

// Batched multi-query execution: AnswerBatch and CandidatesBatch run many
// queries through the same stage list (pipeline.go) on a bounded worker
// pool. Each worker holds exactly one pooled QueryScratch arena at a time,
// every worker shares the engine's warm cross-query caches (table views,
// pair similarities, PMI doc sets, normalized cells), and each member
// query's output is bit-identical to a solo Answer/Candidates call —
// pinned by TestAnswerBatchEquivalence. A failing (or even panicking)
// member is isolated to its own slot; the rest of the batch completes.

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"wwt/internal/wtable"
)

// BatchTimings aggregates one batch run. Stages sums every member query's
// per-stage wall time, so with overlapping workers the sum exceeds Wall —
// the ratio Stages.Total()/Wall is the realized parallelism.
type BatchTimings struct {
	// Stages is the per-stage time summed over all successful members.
	Stages Timings
	// Wall is the wall-clock time of the whole batch.
	Wall time.Duration
	// Workers is the number of worker goroutines the batch ran on.
	Workers int
	// Queries is the number of member queries (successful + failed).
	Queries int
	// Failed is the number of members that returned an error.
	Failed int
}

// Succeeded returns the number of members that produced a result.
func (t BatchTimings) Succeeded() int { return t.Queries - t.Failed }

// QPS returns the realized batch throughput in successfully answered
// queries per second. Failed members are excluded — a batch of
// fast-failing queries would otherwise report inflated throughput; use
// TotalQPS for the all-members rate.
func (t BatchTimings) QPS() float64 {
	if t.Wall <= 0 {
		return 0
	}
	return float64(t.Succeeded()) / t.Wall.Seconds()
}

// TotalQPS returns the batch throughput counting every member, successful
// or failed.
func (t BatchTimings) TotalQPS() float64 {
	if t.Wall <= 0 {
		return 0
	}
	return float64(t.Queries) / t.Wall.Seconds()
}

// ErrPanic marks a batch member error produced by recovering a panicking
// member (errors.Is(err, ErrPanic)). It distinguishes server-side faults
// from ordinary query errors — the serving layer maps it to 500 instead
// of 400.
var ErrPanic = errors.New("panicked")

// BatchResult holds a batch's per-query outcomes, index-aligned with the
// queries passed to AnswerBatch: Results[i] is nil exactly when Errs[i] is
// non-nil. Each non-nil Result owns its pooled arena just like a solo
// Answer; release them individually as they are consumed, or call
// BatchResult.Release once for the rest.
type BatchResult struct {
	Results []*Result
	Errs    []error
	Timings BatchTimings
	// Latency[i] is member i's completion latency measured from the start
	// of the batch — queue wait included, which is what batch scheduling
	// reorders. Indexed like Results; failed and panicked members record
	// their latency too.
	Latency []time.Duration
}

// FirstErr returns the error of the lowest-indexed failed member, or nil
// when every member succeeded.
func (b *BatchResult) FirstErr() error {
	for _, err := range b.Errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Release releases every remaining result's arena back to the engine pool
// (already-released and failed members are skipped). Like Result.Release
// it is optional and invalidates only the scratch-backed Models; answer
// rows, labelings and tables stay valid.
func (b *BatchResult) Release() {
	for _, r := range b.Results {
		if r != nil {
			r.Release()
		}
	}
}

// CandidateSet is one CandidatesBatch member's outcome: the deduplicated
// candidate tables (first-probe order first), whether the second probe
// fired, and the member's probe-stage time split.
type CandidateSet struct {
	Tables     []*wtable.Table
	UsedProbe2 bool
	Timings    Timings
}

// batchWorkers resolves a caller worker count: non-positive means
// GOMAXPROCS, and a batch never runs more workers than members.
func batchWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// forEachQuery fans indices 0..n-1 out over a bounded worker pool, in
// dispatch order `order` (nil means submission order; otherwise a
// permutation of 0..n-1 — workers pull order[0], order[1], ... but fn
// still receives the original index, so output slots never move). Each
// worker draws one arena from the engine pool and hands it to fn query by
// query; fn reports whether it retained the arena (gave it to a Result),
// in which case the worker draws a fresh one. A panicking fn is recovered
// into onPanic and its arena is discarded — a half-written arena never
// re-enters the pool. Returns the worker count actually used.
func (e *Engine) forEachQuery(n, workers int, order []int, fn func(i int, s *QueryScratch) (retained bool), onPanic func(i int, v any)) int {
	workers = batchWorkers(workers, n)
	if workers == 0 {
		return 0
	}
	runOne := func(i int, s *QueryScratch) (retained, poisoned bool) {
		defer func() {
			if r := recover(); r != nil {
				onPanic(i, r)
				retained, poisoned = false, true
			}
		}()
		return fn(i, s), false
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := e.getScratch()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				if order != nil {
					i = order[i]
				}
				retained, poisoned := runOne(i, s)
				if poisoned {
					s = &QueryScratch{}
				} else if retained {
					s = e.getScratch()
				}
			}
			e.putScratch(s)
		}()
	}
	wg.Wait()
	return workers
}

// AnswerBatch answers many queries through the full pipeline on a bounded
// worker pool (workers <= 0 means GOMAXPROCS). Every worker reuses one
// pooled arena across the member queries it serves — a member that
// produces a Result hands the arena over, exactly as a solo Answer does,
// and the worker draws the next one from the pool — and all members share
// the engine's warm cross-query caches. Each member's output is
// bit-identical to a solo Answer of the same query on the same engine.
//
// Members are isolated: one query returning an error (or panicking; the
// panic is recovered into its error slot) does not affect the others.
// BatchResult.Timings aggregates the batch; per-query splits stay on each
// Result.Timings.
func (e *Engine) AnswerBatch(queries []Query, workers int) *BatchResult {
	return e.AnswerBatchCtx(context.Background(), queries, workers, 0)
}

// AnswerBatchCtx is AnswerBatch under a context with an optional
// per-member deadline. ctx bounds the whole batch: once it is canceled or
// past its deadline, every not-yet-finished member aborts between stages
// with ctx.Err() in its own error slot. perQuery > 0 additionally gives
// each member its own deadline of that much time, measured from when a
// worker picks the member up — a slow member times out alone with
// context.DeadlineExceeded in its slot while the rest of the batch runs
// to completion, bit-identical to solo answers.
//
// An aborted member's arena returns to the engine pool like any other
// failed member's (stages are never interrupted mid-flight, so the arena
// is reusable, not poisoned). Cancellation latency is bounded by the
// longest single stage.
func (e *Engine) AnswerBatchCtx(ctx context.Context, queries []Query, workers int, perQuery time.Duration) *BatchResult {
	return e.AnswerBatchPlan(ctx, queries, workers, perQuery, BatchPlan{})
}

// BatchPlan carries per-batch planner overrides for AnswerBatchPlan. The
// zero value reproduces AnswerBatchCtx exactly: FIFO dispatch, the
// engine's default planner levers.
type BatchPlan struct {
	// Schedule selects the member dispatch order (FIFO, SJF, deadline).
	Schedule Schedule
	// Planner, when non-nil, replaces the engine's default planner levers
	// for every member of this batch (nil keeps Options.Planner).
	Planner *PlannerOptions
}

// AnswerBatchPlan is AnswerBatchCtx with a per-batch plan: a member
// dispatch order (planner lever (c)) and optional per-batch planner lever
// overrides. Scheduling only reorders *when* members run — every member
// still lands in its submission-order output slot with a result
// bit-identical to its solo call (pinned by
// TestAnswerBatchSchedulingEquivalence); BatchResult.Latency records what
// the reordering did to each member's completion time.
func (e *Engine) AnswerBatchPlan(ctx context.Context, queries []Query, workers int, perQuery time.Duration, bp BatchPlan) *BatchResult {
	start := time.Now()
	popts := e.Opts.Planner
	if bp.Planner != nil {
		popts = *bp.Planner
	}
	order := e.dispatchOrder(queries, bp.Schedule, perQuery)
	br := &BatchResult{
		Results: make([]*Result, len(queries)),
		Errs:    make([]error, len(queries)),
		Latency: make([]time.Duration, len(queries)),
	}
	br.Timings.Queries = len(queries)
	br.Timings.Workers = e.forEachQuery(len(queries), workers, order, func(i int, s *QueryScratch) bool {
		// The deadline context lives in its own frame so the deferred
		// cancel releases the timer even when the member panics (the
		// recover sits in forEachQuery, above this frame).
		res, err := func() (*Result, error) {
			qctx := ctx
			if perQuery > 0 {
				var cancel context.CancelFunc
				qctx, cancel = context.WithTimeout(ctx, perQuery)
				defer cancel()
			}
			return e.answerPlan(qctx, queries[i], s, popts)
		}()
		br.Latency[i] = time.Since(start)
		if err != nil {
			br.Errs[i] = err
			return false
		}
		br.Results[i] = res
		return true
	}, func(i int, v any) {
		br.Latency[i] = time.Since(start)
		br.Errs[i] = fmt.Errorf("wwt: batch member %d %w: %v", i, ErrPanic, v)
	})
	for i, r := range br.Results {
		if br.Errs[i] != nil {
			br.Timings.Failed++
			continue
		}
		br.Timings.Stages.Add(r.Timings)
	}
	br.Timings.Wall = time.Since(start)
	return br
}

// dispatchOrder computes the member dispatch permutation for a schedule:
// nil for FIFO (and for any batch too small to reorder), otherwise a
// stable sort of the member indices by estimated cost (SJF ascending;
// deadline by ascending slack = perQuery − estimate, which under the
// uniform per-member budget is descending cost — the members closest to
// blowing the deadline run first). Stability makes ties keep submission
// order, so a cold estimator (all estimates 0) degenerates to FIFO.
func (e *Engine) dispatchOrder(queries []Query, sched Schedule, perQuery time.Duration) []int {
	if sched == ScheduleFIFO || len(queries) < 2 || e.planner == nil {
		return nil
	}
	est := make([]time.Duration, len(queries))
	for i := range queries {
		est[i] = e.EstimateCost(queries[i])
	}
	order := make([]int, len(queries))
	for i := range order {
		order[i] = i
	}
	switch sched {
	case ScheduleSJF:
		slices.SortStableFunc(order, func(a, b int) int { return cmp.Compare(est[a], est[b]) })
	case ScheduleDeadline:
		slices.SortStableFunc(order, func(a, b int) int {
			return cmp.Compare(perQuery-est[a], perQuery-est[b])
		})
	}
	return order
}

// CandidatesBatch runs the candidate-retrieval prefix of the pipeline for
// many queries on a bounded worker pool (workers <= 0 means GOMAXPROCS),
// with the same sharing, determinism and isolation contracts as
// AnswerBatch. Candidate retrieval never retains an arena, so each worker
// keeps its single arena for the whole batch. The returned slices are
// index-aligned with queries; sets[i] is meaningful only when errs[i] is
// nil.
func (e *Engine) CandidatesBatch(queries []Query, workers int) (sets []CandidateSet, errs []error, bt BatchTimings) {
	start := time.Now()
	sets = make([]CandidateSet, len(queries))
	errs = make([]error, len(queries))
	bt.Queries = len(queries)
	bt.Workers = e.forEachQuery(len(queries), workers, nil, func(i int, s *QueryScratch) bool {
		st := &queryState{query: queries[i], popts: e.Opts.Planner}
		if err := e.runStages(nil, probePipeline, st, s, &sets[i].Timings); err != nil {
			errs[i] = err
			return false
		}
		sets[i].Tables = st.tables
		sets[i].UsedProbe2 = st.probe2Fired
		return false
	}, func(i int, v any) {
		errs[i] = fmt.Errorf("wwt: batch member %d %w: %v", i, ErrPanic, v)
	})
	for i := range sets {
		if errs[i] != nil {
			bt.Failed++
			continue
		}
		bt.Stages.Add(sets[i].Timings)
	}
	bt.Wall = time.Since(start)
	return sets, errs, bt
}
