package wwt_test

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"wwt"
	"wwt/internal/index"
	"wwt/internal/wtable"
)

// liveDir freezes the small corpus as a 2-shard flat index directory the
// live engine can open (flat files + table store, no manifest yet).
func liveDir(t *testing.T) string {
	t.Helper()
	eng, err := wwt.NewEngine(smallCorpus(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := index.WriteSharded(dir, eng.Searcher(), 2); err != nil {
		t.Fatal(err)
	}
	if err := eng.Store.Save(filepath.Join(dir, index.StoreFileName)); err != nil {
		t.Fatal(err)
	}
	return dir
}

// currencyTable builds one Country/Currency table carrying a unique row.
func currencyTable(i int) *wtable.Table {
	hdr := wtable.Row{Cells: []wtable.Cell{
		{Text: "Country", IsTH: true}, {Text: "Currency", IsTH: true},
	}}
	body := wtable.Row{Cells: []wtable.Cell{
		{Text: fmt.Sprintf("Atlantis%d", i)}, {Text: fmt.Sprintf("Coin%d", i)},
	}}
	return &wtable.Table{
		ID:         fmt.Sprintf("live-%d", i),
		PageTitle:  "Currencies of the world",
		HeaderRows: []wtable.Row{hdr},
		BodyRows:   []wtable.Row{body},
	}
}

func hasRow(res *wwt.Result, cell0 string) bool {
	for _, row := range res.Answer.Rows {
		if len(row.Cells) > 0 && row.Cells[0] == cell0 {
			return true
		}
	}
	return false
}

// TestOpenLiveFallback: a directory without a flat index reports
// fs.ErrNotExist so the daemon can fall back to the gob path.
func TestOpenLiveFallback(t *testing.T) {
	if _, err := wwt.OpenLive(t.TempDir(), nil); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("OpenLive on empty dir: %v, want fs.ErrNotExist", err)
	}
}

// TestLiveEngineIngestRoundTrip: ingest publishes a new queryable
// generation without reopening, rejects duplicate IDs, and the committed
// manifest makes the ingested segment survive a cold reopen.
func TestLiveEngineIngestRoundTrip(t *testing.T) {
	dir := liveDir(t)
	le, err := wwt.OpenLive(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer le.Close()

	info := le.Info()
	if info.Generation != 0 || info.Segments != 1 || info.Docs != 3 {
		t.Fatalf("fresh open info = %+v", info)
	}

	q := wwt.Query{Columns: []string{"country", "currency"}}
	res, err := le.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if hasRow(res, "Atlantis0") {
		t.Fatal("unreachable row present before ingest")
	}

	info, err = le.IngestTables([]*wtable.Table{currencyTable(0)})
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 1 || info.Segments != 2 || info.Docs != 4 {
		t.Fatalf("post-ingest info = %+v", info)
	}
	res, err = le.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if !hasRow(res, "Atlantis0") {
		t.Fatalf("ingested row missing from answer: %+v", res.Answer.Rows)
	}

	// Duplicate IDs are rejected — against the base corpus and the
	// just-ingested segment alike.
	if _, err := le.IngestTables([]*wtable.Table{currencyTable(0)}); err == nil ||
		!strings.Contains(err.Error(), "already indexed") {
		t.Fatalf("duplicate ingest: %v", err)
	}

	// A cold reopen sees the committed manifest: same generation, same
	// docs, ingested row still answerable.
	le2, err := wwt.OpenLive(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer le2.Close()
	if got := le2.Info(); got.Generation != 1 || got.Docs != 4 {
		t.Fatalf("reopened info = %+v", got)
	}
	res, err = le2.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if !hasRow(res, "Atlantis0") {
		t.Fatal("ingested row lost across reopen")
	}
}

// TestLiveEngineMerge: enough single-doc ingests trigger the size-tiered
// background merge; the compacted index answers identically and the
// segment count drops.
func TestLiveEngineMerge(t *testing.T) {
	dir := liveDir(t)
	le, err := wwt.OpenLive(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer le.Close()

	const n = 5
	for i := 0; i < n; i++ {
		if _, err := le.IngestTables([]*wtable.Table{currencyTable(i)}); err != nil {
			t.Fatal(err)
		}
		// Drain the merger each round so the merge boundary is
		// deterministic: the tier-0 quartet compacts right after the
		// fourth ingest, before the fifth arrives.
		le.WaitMerges()
	}
	info := le.Info()
	// 5 one-doc segments: the first full tier-0 quartet merges into one
	// segment of 4 docs, leaving base + merged + 1 straggler.
	if info.Segments != 3 {
		t.Fatalf("post-merge segments = %d, want 3", info.Segments)
	}
	if info.Docs != 3+n {
		t.Fatalf("post-merge docs = %d, want %d", info.Docs, 3+n)
	}
	_, _, _, merges := le.IngestCounts()
	if merges == 0 {
		t.Fatal("no merge recorded")
	}
	res, err := le.Answer(wwt.Query{Columns: []string{"country", "currency"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !hasRow(res, fmt.Sprintf("Atlantis%d", i)) {
			t.Fatalf("row Atlantis%d lost after merge", i)
		}
	}
}

// TestHotSwapConcurrent hammers the live engine from 16 goroutines while
// the main goroutine repeatedly ingests and the background merger swaps
// generations underneath them. Asserts: queries never fail mid-swap,
// every ingest is immediately visible on the next query (no stale
// cross-query cache hits), and after Close every retired generation was
// reclaimed exactly once (old segments closed only after their last
// release). Run under -race in CI, where the generation pin/refcount
// protocol is the actual subject under test.
func TestHotSwapConcurrent(t *testing.T) {
	dir := liveDir(t)
	le, err := wwt.OpenLive(dir, nil)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 16
	stop := make(chan struct{})
	errc := make(chan error, workers)
	var wg sync.WaitGroup
	queries := []wwt.Query{
		{Columns: []string{"country", "currency"}},
		{Columns: []string{"name", "area"}},
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				br := le.AnswerBatchPlan(context.Background(), queries, 2, 10*time.Second, wwt.BatchPlan{})
				for i, err := range br.Errs {
					if err != nil {
						select {
						case errc <- fmt.Errorf("query %d: %w", i, err):
						default:
						}
						br.Release()
						return
					}
					// In-flight members finished on their pinned
					// generation: a batch spanning a swap must still
					// produce a complete answer, never a partial one.
					if len(br.Results[i].Answer.Rows) == 0 {
						select {
						case errc <- fmt.Errorf("query %d: empty answer mid-swap", i):
						default:
						}
						br.Release()
						return
					}
				}
				br.Release()
			}
		}()
	}

	const ingests = 8
	for i := 0; i < ingests; i++ {
		info, err := le.IngestTables([]*wtable.Table{currencyTable(i)})
		if err != nil {
			t.Fatal(err)
		}
		if info.Docs != 3+i+1 {
			t.Fatalf("ingest %d: docs = %d, want %d", i, info.Docs, 3+i+1)
		}
		// The swap is immediately visible — a stale view/pair-sim/doc-set
		// cache would keep answering without the new table.
		res, err := le.Answer(wwt.Query{Columns: []string{"country", "currency"}})
		if err != nil {
			t.Fatal(err)
		}
		if !hasRow(res, fmt.Sprintf("Atlantis%d", i)) {
			t.Fatalf("ingest %d not visible on the very next query", i)
		}
	}

	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if err := le.Close(); err != nil {
		t.Fatal(err)
	}
	retired, reclaimed := le.GenerationCounts()
	if retired < ingests {
		t.Fatalf("retired = %d, want >= %d (one per ingest swap)", retired, ingests)
	}
	// Every retired generation plus the final one must have closed exactly
	// once, and only after its last query released it.
	if reclaimed != retired+1 {
		t.Fatalf("reclaimed = %d, want retired+1 = %d", reclaimed, retired+1)
	}
}
