// Command wwt-benchjson converts `go test -bench` text output into the
// repo's benchmark-trajectory JSON: one record per benchmark with name,
// ns/op and (when -benchmem was on) allocs/op and bytes/op. CI runs it
// after the bench lane and uploads BENCH_<commit>.json, so perf across
// commits can be diffed mechanically instead of by eyeballing logs.
//
//	go test -run '^$' -bench . -benchmem ./... | wwt-benchjson -commit "$(git rev-parse --short HEAD)" -o BENCH_abc1234.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// benchLine is one parsed benchmark result.
type benchLine struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64 `json:"mb_per_sec,omitempty"`

	// Extra carries custom b.ReportMetric units (p99-ns, elide-rate, ...)
	// keyed by unit name, so scheduler/planner benchmarks survive the
	// conversion without the parser learning each new unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

type trajectory struct {
	Commit string `json:"commit,omitempty"`
	// GoVersion and GoMaxProcs pin the toolchain and parallelism the
	// numbers were measured under: a ns/op shift that coincides with a
	// toolchain or core-count change is a machine delta, not a
	// regression.
	GoVersion  string      `json:"go_version"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Benchmarks []benchLine `json:"benchmarks"`
}

func main() {
	commit := flag.String("commit", "", "commit hash recorded in the output")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: wwt-benchjson [-commit SHA] [-o FILE] [bench-output.txt]")
		os.Exit(2)
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	tr := trajectory{
		Commit:     *commit,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Benchmarks: []benchLine{},
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if bl, ok := parseBenchLine(sc.Text()); ok {
			tr.Benchmarks = append(tr.Benchmarks, bl)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	data, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wwt-benchjson: %d benchmarks -> %s\n", len(tr.Benchmarks), *out)
}

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkFoo/shards=2-8   120   9876543 ns/op   24 B/op   1 allocs/op
//
// Non-benchmark lines (headers, PASS/ok, failures) return ok=false.
func parseBenchLine(line string) (benchLine, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return benchLine{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return benchLine{}, false
	}
	bl := benchLine{Name: trimCPUSuffix(f[0]), Iterations: iters}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return benchLine{}, false
		}
		switch f[i+1] {
		case "ns/op":
			bl.NsPerOp = v
			seen = true
		case "B/op":
			bl.BytesPerOp = ptr(v)
		case "allocs/op":
			bl.AllocsPerOp = ptr(v)
		case "MB/s":
			bl.MBPerSec = ptr(v)
		default:
			if bl.Extra == nil {
				bl.Extra = make(map[string]float64)
			}
			bl.Extra[f[i+1]] = v
		}
	}
	return bl, seen
}

// trimCPUSuffix drops go test's -GOMAXPROCS name suffix (Benchmark-8 and
// Benchmark-16 are the same benchmark), keeping sub-benchmark paths.
func trimCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func ptr(v float64) *float64 { return &v }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wwt-benchjson:", err)
	os.Exit(1)
}
