// Command wwt answers column-keyword queries against a persisted index:
//
//	wwt -idx ./idx "name of explorers | nationality | areas explored"
//	wwt -idx ./idx -batch queries.txt -workers 8
//
// Column keyword sets are separated by '|'. In batch mode each
// non-empty, non-comment line of the query file is one query; the batch
// runs on a bounded worker pool and prints per-query summaries plus the
// aggregate stage split and realized throughput. Flags select the
// inference algorithm and control output size.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"wwt"
	"wwt/internal/index"
	"wwt/internal/inference"
)

func main() {
	idxDir := flag.String("idx", "idx", "index directory (from wwt-index)")
	alg := flag.String("alg", "table-centric", "inference: none|table-centric|alpha|bp|trws")
	maxRows := flag.Int("rows", 20, "max answer rows to print")
	showSources := flag.Bool("sources", false, "print contributing source tables")
	explain := flag.Bool("explain", false, "print per-table mapping rationale")
	batchFile := flag.String("batch", "", "file of queries, one per line ('-' = stdin); answers them as one batch")
	workers := flag.Int("workers", 0, "batch worker pool size (0 = GOMAXPROCS)")
	schedule := flag.String("schedule", "fifo", "batch dispatch order: fifo|sjf|deadline")
	planElide := flag.Bool("plan-elide", false, "planner: skip the second probe when stage-1 mapping confidence clears -plan-elide-conf")
	planElideConf := flag.Float64("plan-elide-conf", wwt.DefaultElideConfidence, "planner: stage-1 confidence threshold for probe-2 elision")
	flag.Parse()

	single := *batchFile == ""
	if (single && flag.NArg() != 1) || (!single && flag.NArg() != 0) {
		fmt.Fprintln(os.Stderr, `usage: wwt -idx DIR "col1 keywords | col2 keywords | ..."
       wwt -idx DIR -batch FILE [-workers N]`)
		os.Exit(2)
	}
	// Validate the single query up front: a content-free query must fail
	// before the (potentially large) index is loaded.
	var cols []string
	if single {
		if cols = parseColumns(flag.Arg(0)); len(cols) == 0 {
			fmt.Fprintln(os.Stderr, "wwt: empty query")
			os.Exit(2)
		}
	}

	ix, err := index.Load(filepath.Join(*idxDir, "index.gob"))
	if err != nil {
		fatal(err)
	}
	st, err := index.LoadStore(filepath.Join(*idxDir, "store.gob"))
	if err != nil {
		fatal(err)
	}
	opts := wwt.DefaultOptions()
	switch strings.ToLower(*alg) {
	case "none":
		opts.Algorithm = inference.Independent
	case "alpha", "alpha-exp":
		opts.Algorithm = inference.AlphaExpansion
	case "bp":
		opts.Algorithm = inference.BP
	case "trws":
		opts.Algorithm = inference.TRWS
	case "table-centric":
		opts.Algorithm = inference.TableCentric
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *alg))
	}
	opts.Planner = wwt.PlannerOptions{ElideProbe2: *planElide, ElideConfidence: *planElideConf}
	sched, err := wwt.ParseSchedule(*schedule)
	if err != nil {
		fatal(err)
	}
	eng := wwt.NewEngineFrom(ix, st, &opts)

	if !single {
		runBatch(eng, *batchFile, *workers, sched)
		return
	}

	res, err := eng.Answer(wwt.Query{Columns: cols})
	if err != nil {
		fatal(err)
	}
	defer res.Release()

	relevant := 0
	for ti := range res.Tables {
		if res.Labeling.Relevant(ti) {
			relevant++
		}
	}
	fmt.Printf("candidates: %d tables (probe2 used: %v), relevant: %d, answer rows: %d\n",
		len(res.Tables), res.UsedProbe2, relevant, len(res.Answer.Rows))
	fmt.Printf("timings: probe %.1fms, read %.1fms, column-map %.1fms, infer %.1fms, consolidate %.1fms\n\n",
		float64((res.Timings.Probe1+res.Timings.Probe2).Microseconds())/1000,
		float64((res.Timings.Read1+res.Timings.Read2).Microseconds())/1000,
		float64(res.Timings.ColumnMap.Microseconds())/1000,
		float64(res.Timings.Infer.Microseconds())/1000,
		float64(res.Timings.Consolidate.Microseconds())/1000)

	printRow(cols, "support")
	fmt.Println(strings.Repeat("-", 24*len(cols)+8))
	for i, row := range res.Answer.Rows {
		if i >= *maxRows {
			fmt.Printf("... and %d more rows\n", len(res.Answer.Rows)-*maxRows)
			break
		}
		printRow(row.Cells, fmt.Sprintf("%d", row.Support))
	}
	if *showSources {
		fmt.Println("\nsources:")
		for _, s := range res.Answer.Sources {
			fmt.Println(" ", s)
		}
	}
	if *explain {
		fmt.Println("\ncolumn mapping rationale:")
		for _, e := range res.Model.ExplainAll(res.Labeling) {
			fmt.Print(e)
		}
	}
}

// parseColumns splits a '|'-separated query line into column keyword sets.
func parseColumns(line string) []string {
	var cols []string
	for _, c := range strings.Split(line, "|") {
		if c = strings.TrimSpace(c); c != "" {
			cols = append(cols, c)
		}
	}
	return cols
}

// runBatch answers every query in the file as one AnswerBatch and prints
// per-query summaries plus the aggregate stage split and throughput.
func runBatch(eng *wwt.Engine, path string, workers int, sched wwt.Schedule) {
	f := os.Stdin
	if path != "-" {
		var err error
		if f, err = os.Open(path); err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	var queries []wwt.Query
	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024) // wide queries exceed the 64KB default
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		queries = append(queries, wwt.Query{Columns: parseColumns(line)})
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(queries) == 0 {
		fatal(fmt.Errorf("no queries in %s", path))
	}

	br := eng.AnswerBatchPlan(context.Background(), queries, workers, 0, wwt.BatchPlan{Schedule: sched})
	fmt.Printf("%-50s %10s %8s %7s %9s\n", "query", "candidates", "relevant", "rows", "total(ms)")
	for i, res := range br.Results {
		name := clip(lines[i], 50)
		if err := br.Errs[i]; err != nil {
			fmt.Printf("%-50s error: %v\n", name, err)
			continue
		}
		relevant := 0
		for ti := range res.Tables {
			if res.Labeling.Relevant(ti) {
				relevant++
			}
		}
		fmt.Printf("%-50s %10d %8d %7d %9.2f\n", name,
			len(res.Tables), relevant, len(res.Answer.Rows),
			float64(res.Timings.Total().Microseconds())/1000)
		res.Release()
	}
	t := br.Timings
	fmt.Printf("\nbatch: %d queries (%d failed) on %d workers in %.1fms — %.1f answered/s (%.1f total/s)\n",
		t.Queries, t.Failed, t.Workers, float64(t.Wall.Microseconds())/1000, t.QPS(), t.TotalQPS())
	fmt.Printf("stage totals: probe %.1fms, read %.1fms, column-map %.1fms, infer %.1fms, consolidate %.1fms (parallelism %.1fx)\n",
		float64((t.Stages.Probe1+t.Stages.Probe2).Microseconds())/1000,
		float64((t.Stages.Read1+t.Stages.Read2).Microseconds())/1000,
		float64(t.Stages.ColumnMap.Microseconds())/1000,
		float64(t.Stages.Infer.Microseconds())/1000,
		float64(t.Stages.Consolidate.Microseconds())/1000,
		float64(t.Stages.Total())/float64(t.Wall))
}

// clip truncates s to at most n runes (not bytes, so multi-byte cells
// never split mid-rune), marking the cut with an ellipsis.
func clip(s string, n int) string {
	r := []rune(s)
	if len(r) <= n {
		return s
	}
	return string(r[:n-1]) + "…"
}

func printRow(cells []string, last string) {
	for _, c := range cells {
		fmt.Printf("%-24s", clip(c, 22))
	}
	fmt.Printf("%8s\n", last)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wwt:", err)
	os.Exit(1)
}
