// Command wwt answers a column-keyword query against a persisted index:
//
//	wwt -idx ./idx "name of explorers | nationality | areas explored"
//
// Column keyword sets are separated by '|'. Flags select the inference
// algorithm and control output size.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"wwt"
	"wwt/internal/index"
	"wwt/internal/inference"
)

func main() {
	idxDir := flag.String("idx", "idx", "index directory (from wwt-index)")
	alg := flag.String("alg", "table-centric", "inference: none|table-centric|alpha|bp|trws")
	maxRows := flag.Int("rows", 20, "max answer rows to print")
	showSources := flag.Bool("sources", false, "print contributing source tables")
	explain := flag.Bool("explain", false, "print per-table mapping rationale")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, `usage: wwt -idx DIR "col1 keywords | col2 keywords | ..."`)
		os.Exit(2)
	}
	var cols []string
	for _, c := range strings.Split(flag.Arg(0), "|") {
		if c = strings.TrimSpace(c); c != "" {
			cols = append(cols, c)
		}
	}
	if len(cols) == 0 {
		fmt.Fprintln(os.Stderr, "wwt: empty query")
		os.Exit(2)
	}

	ix, err := index.Load(filepath.Join(*idxDir, "index.gob"))
	if err != nil {
		fatal(err)
	}
	st, err := index.LoadStore(filepath.Join(*idxDir, "store.gob"))
	if err != nil {
		fatal(err)
	}
	opts := wwt.DefaultOptions()
	switch strings.ToLower(*alg) {
	case "none":
		opts.Algorithm = inference.Independent
	case "alpha", "alpha-exp":
		opts.Algorithm = inference.AlphaExpansion
	case "bp":
		opts.Algorithm = inference.BP
	case "trws":
		opts.Algorithm = inference.TRWS
	case "table-centric":
		opts.Algorithm = inference.TableCentric
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *alg))
	}
	eng := wwt.NewEngineFrom(ix, st, &opts)
	res, err := eng.Answer(wwt.Query{Columns: cols})
	if err != nil {
		fatal(err)
	}

	relevant := 0
	for ti := range res.Tables {
		if res.Labeling.Relevant(ti) {
			relevant++
		}
	}
	fmt.Printf("candidates: %d tables (probe2 used: %v), relevant: %d, answer rows: %d\n",
		len(res.Tables), res.UsedProbe2, relevant, len(res.Answer.Rows))
	fmt.Printf("timings: probe %.1fms, read %.1fms, column-map %.1fms, infer %.1fms, consolidate %.1fms\n\n",
		float64((res.Timings.Probe1+res.Timings.Probe2).Microseconds())/1000,
		float64((res.Timings.Read1+res.Timings.Read2).Microseconds())/1000,
		float64(res.Timings.ColumnMap.Microseconds())/1000,
		float64(res.Timings.Infer.Microseconds())/1000,
		float64(res.Timings.Consolidate.Microseconds())/1000)

	printRow(cols, "support")
	fmt.Println(strings.Repeat("-", 24*len(cols)+8))
	for i, row := range res.Answer.Rows {
		if i >= *maxRows {
			fmt.Printf("... and %d more rows\n", len(res.Answer.Rows)-*maxRows)
			break
		}
		printRow(row.Cells, fmt.Sprintf("%d", row.Support))
	}
	if *showSources {
		fmt.Println("\nsources:")
		for _, s := range res.Answer.Sources {
			fmt.Println(" ", s)
		}
	}
	if *explain {
		fmt.Println("\ncolumn mapping rationale:")
		for _, e := range res.Model.ExplainAll(res.Labeling) {
			fmt.Print(e)
		}
	}
}

func printRow(cells []string, last string) {
	for _, c := range cells {
		if len(c) > 22 {
			c = c[:21] + "…"
		}
		fmt.Printf("%-24s", c)
	}
	fmt.Printf("%8s\n", last)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wwt:", err)
	os.Exit(1)
}
