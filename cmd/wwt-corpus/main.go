// Command wwt-corpus generates the synthetic web crawl to a directory:
// one HTML file per page, a manifest mapping URLs to files, and the
// ground-truth ledger.
//
//	wwt-corpus -out ./crawl -seed 2012 -scale 1.0
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"wwt/internal/corpusgen"
)

// manifestEntry records where a page's HTML lives.
type manifestEntry struct {
	URL  string `json:"url"`
	File string `json:"file"`
}

func main() {
	out := flag.String("out", "crawl", "output directory")
	seed := flag.Int64("seed", 2012, "generation seed")
	scale := flag.Float64("scale", 1.0, "corpus size multiplier")
	flag.Parse()

	c := corpusgen.Generate(corpusgen.Config{Seed: *seed, Scale: *scale})
	if err := os.MkdirAll(filepath.Join(*out, "pages"), 0o755); err != nil {
		fatal(err)
	}
	manifest := make([]manifestEntry, len(c.Pages))
	for i, p := range c.Pages {
		file := filepath.Join("pages", fmt.Sprintf("page%05d.html", i))
		if err := os.WriteFile(filepath.Join(*out, file), []byte(p.HTML), 0o644); err != nil {
			fatal(err)
		}
		manifest[i] = manifestEntry{URL: p.URL, File: file}
	}
	if err := writeJSON(filepath.Join(*out, "manifest.json"), manifest); err != nil {
		fatal(err)
	}
	if err := writeJSON(filepath.Join(*out, "truth.json"), c.Truth); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d pages, %d ground-truth tables to %s\n", len(c.Pages), len(c.Truth), *out)
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wwt-corpus:", err)
	os.Exit(1)
}
