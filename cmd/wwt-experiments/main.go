// Command wwt-experiments regenerates every table and figure of the
// paper's evaluation section (§5) over the synthetic corpus:
//
//	wwt-experiments                  # run everything
//	wwt-experiments -exp fig5        # one experiment
//	wwt-experiments -scale 0.5       # smaller corpus
//
// Experiments: table1, probe2, fig5, fig6, fig7, fig8, table2, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"wwt/internal/corpusgen"
	"wwt/internal/eval"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|probe2|fig5|fig6|fig7|fig8|table2|all")
	seed := flag.Int64("seed", 2012, "corpus generation seed")
	scale := flag.Float64("scale", 1.0, "corpus size multiplier")
	workers := flag.Int("workers", 0, "batched pipeline workers; 0 = serial (faithful Fig 7 stage times), >1 trades timing fidelity for wall clock")
	flag.Parse()

	start := time.Now()
	runner, err := eval.NewRunner(corpusgen.Config{Seed: *seed, Scale: *scale}, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup failed:", err)
		os.Exit(1)
	}
	runner.Workers = *workers
	fmt.Printf("corpus: %d pages, %d extracted tables, %d queries (setup %.1fs)\n\n",
		len(runner.Corpus.Pages), len(runner.Tables), len(runner.Queries),
		time.Since(start).Seconds())

	experiments := map[string]func(io.Writer, *eval.Runner){
		"table1":           eval.ExperimentTable1,
		"corpus":           eval.ExperimentCorpusStats,
		"probe2":           eval.ExperimentProbe2,
		"fig5":             eval.ExperimentFig5,
		"fig6":             eval.ExperimentFig6,
		"fig7":             eval.ExperimentFig7,
		"fig8":             eval.ExperimentFig8,
		"table2":           eval.ExperimentTable2,
		"ablation-edges":   eval.ExperimentAblationEdges,
		"ablation-probe2":  eval.ExperimentAblationProbe2,
		"ablation-mutex":   eval.ExperimentAblationMutex,
		"ablation-cooccur": eval.ExperimentAblationCooccur,
	}
	order := []string{"table1", "corpus", "probe2", "fig5", "fig6", "fig7", "fig8", "table2",
		"ablation-edges", "ablation-probe2", "ablation-mutex", "ablation-cooccur"}

	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = order
	}
	for _, name := range names {
		f, ok := experiments[strings.TrimSpace(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(1)
		}
		f(os.Stdout, runner)
		fmt.Println()
	}
	fmt.Printf("total wall time: %.1fs\n", time.Since(start).Seconds())
}
