// Command wwt-vet is the repo's invariant multichecker: it runs the
// internal/analysis suite (mapfloatsum, reflectsort, lockedcompute,
// mmapalias, releaseresult) over module packages and fails when an
// architecture invariant from ROADMAP "Architecture invariants" is
// violated at the source level.
//
// Two modes share the analyzers:
//
//	wwt-vet ./...                     # standalone, test files included
//	go vet -vettool=$(which wwt-vet) ./...
//
// Standalone mode drives `go list -deps -export -json` itself (see
// internal/analysis/load). As a vettool it speaks the go command's
// unitchecker protocol: the -V=full identification handshake, then one
// invocation per package with a JSON .cfg describing files, import maps
// and export data, writing an (empty — the analyzers are fact-free)
// .vetx facts file per package.
//
// Individual analyzers can be disabled with -<name>=false. Exit status:
// 0 clean, 1 usage or internal failure, 2 diagnostics reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"wwt/internal/analysis"
	"wwt/internal/analysis/load"
)

var suite = []*analysis.Analyzer{
	analysis.MapFloatSum,
	analysis.ReflectSort,
	analysis.LockedCompute,
	analysis.MmapAlias,
	analysis.ReleaseResult,
}

func main() {
	enabled := make(map[string]*bool, len(suite))
	for _, a := range suite {
		summary, _, _ := strings.Cut(a.Doc, "\n")
		enabled[a.Name] = flag.Bool(a.Name, true, summary)
	}
	version := flag.Bool("V", false, "print version and exit (go vet handshake)")
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON and exit (go vet handshake)")
	tests := flag.Bool("tests", true, "analyze test files too (standalone mode)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: wwt-vet [flags] [packages]\n       go vet -vettool=$(which wwt-vet) [packages]\n")
		flag.PrintDefaults()
	}
	// The go command invokes vet tools as `tool -V=full`; boolean flag
	// syntax accepts -V=full only through explicit handling.
	for i, arg := range os.Args {
		if arg == "-V=full" || arg == "--V=full" {
			os.Args[i] = "-V"
		}
	}
	flag.Parse()

	if *version {
		printVersion()
		return
	}
	if *printflags {
		printFlagDefs()
		return
	}

	active := make([]*analysis.Analyzer, 0, len(suite))
	for _, a := range suite {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0], active))
	}
	os.Exit(standalone(args, active, *tests))
}

// printVersion emits the identification line the go command's vettool
// handshake parses: "<name> version <version> ...". The content hash of
// the executable doubles as the build ID so vet results are re-cached
// when the tool changes.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("wwt-vet version devel buildID=%x\n", h.Sum(nil)[:16])
}

// printFlagDefs emits the tool's flags as the JSON array the go
// command's `vettool -flags` handshake expects, so it knows which vet
// flags it may forward.
func printFlagDefs() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var defs []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		if f.Name == "V" || f.Name == "flags" {
			return
		}
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		defs = append(defs, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(defs, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, "wwt-vet:", err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// diag is one located finding.
type diag struct {
	pos      token.Position
	analyzer string
	message  string
}

func runSuite(pkg *load.Package, active []*analysis.Analyzer) ([]diag, error) {
	var out []diag
	for _, a := range active {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			out = append(out, diag{pos: pkg.Fset.Position(d.Pos), analyzer: name, message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	return out, nil
}

// standalone loads patterns (default ./...) and prints findings.
func standalone(patterns []string, active []*analysis.Analyzer, tests bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(load.Options{Tests: tests}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wwt-vet:", err)
		return 1
	}
	var all []diag
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "wwt-vet: %s: typecheck: %v\n", pkg.ID, terr)
		}
		if pkg.Types == nil {
			continue
		}
		ds, err := runSuite(pkg, active)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wwt-vet: %s: %v\n", pkg.ID, err)
			return 1
		}
		all = append(all, ds...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.message < b.message
	})
	for _, d := range all {
		fmt.Printf("%s: [%s] %s\n", relPos(d.pos), d.analyzer, d.message)
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "wwt-vet: %d finding(s)\n", len(all))
		return 2
	}
	return 0
}

func relPos(p token.Position) token.Position {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, p.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			p.Filename = rel
		}
	}
	return p
}

// vetConfig is the package description the go command hands a vettool;
// field set and semantics follow x/tools' unitchecker.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single package described by cfgFile per the go
// vet protocol.
func unitcheck(cfgFile string, active []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wwt-vet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "wwt-vet: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// The go command caches the facts file per package; it must exist
	// even though the suite exports no facts.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "wwt-vet:", err)
				os.Exit(1)
			}
		}
	}
	if cfg.VetxOnly {
		// Dependency pass: only facts are wanted, and we have none.
		writeVetx()
		return 0
	}

	files := make([]string, 0, len(cfg.GoFiles))
	for _, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		files = append(files, f)
	}
	pkg, err := load.Check(token.NewFileSet(), cfg.ImportPath, files, cfg.ImportMap, cfg.PackageFile)
	if err != nil || pkg.Types == nil || len(pkg.TypeErrors) > 0 {
		writeVetx()
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		if err == nil && len(pkg.TypeErrors) > 0 {
			err = pkg.TypeErrors[0]
		}
		fmt.Fprintf(os.Stderr, "wwt-vet: %s: typecheck: %v\n", cfg.ImportPath, err)
		return 1
	}

	ds, err := runSuite(pkg, active)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wwt-vet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	writeVetx()
	for _, d := range ds {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.pos, d.analyzer, d.message)
	}
	if len(ds) > 0 {
		return 2
	}
	return 0
}
