// Command wwt-serve is the serving daemon: it loads a persisted index
// (from wwt-index) and answers column-keyword queries over HTTP on top of
// the batched engine, with per-query deadlines, admission control and
// graceful shutdown.
//
//	wwt-serve -idx ./idx -addr :8080
//	curl -s localhost:8080/v1/answer -d '{"columns": ["country", "currency"]}'
//	curl -s localhost:8080/v1/answer -d '{"queries": [{"columns": ["country", "currency"]}], "timeout_ms": 500}'
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains
// in-flight batches (bounded by -drain), and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"wwt"
	"wwt/internal/index"
	"wwt/internal/inference"
	"wwt/internal/plan"
	"wwt/internal/serve"
)

func main() {
	idxDir := flag.String("idx", "idx", "index directory (from wwt-index)")
	addr := flag.String("addr", ":8080", "listen address")
	alg := flag.String("alg", "table-centric", "inference: none|table-centric|alpha|bp|trws")
	workers := flag.Int("workers", 0, "engine workers per batch (0 = GOMAXPROCS)")
	maxInFlight := flag.Int("max-inflight", 0, "concurrent worker slots across requests (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 0, "worker slots' worth of requests that may wait before 429 (0 = 4x max-inflight, negative = no queue)")
	timeout := flag.Duration("timeout", 10*time.Second, "default per-query deadline")
	maxTimeout := flag.Duration("max-timeout", time.Minute, "ceiling on client-requested timeout_ms")
	maxBatch := flag.Int("max-batch", 256, "members per batch request")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	schedule := flag.String("schedule", "fifo", "default batch dispatch order: fifo|sjf|deadline")
	planElide := flag.Bool("plan-elide", false, "planner: skip the second probe when stage-1 mapping confidence clears -plan-elide-conf")
	planElideConf := flag.Float64("plan-elide-conf", wwt.DefaultElideConfidence, "planner: stage-1 confidence threshold for probe-2 elision")
	planDegrade := flag.Bool("plan-degrade", false, "planner: degrade (cap tables, downgrade inference) instead of missing deadlines")
	planDegradeTables := flag.Int("plan-degrade-tables", wwt.DefaultDegradeMaxTables, "planner: candidate-table cap under deadline degradation")
	planCoeffs := flag.String("plan-coeffs", "", "planner: calibrated-coefficient sidecar path, loaded at startup and written on drain (default <idx>/plan-coeffs.json; empty string after an explicit -plan-coeffs= disables)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: wwt-serve -idx DIR [-addr :8080] [flags]")
		os.Exit(2)
	}

	opts := wwt.DefaultOptions()
	switch strings.ToLower(*alg) {
	case "none":
		opts.Algorithm = inference.Independent
	case "alpha", "alpha-exp":
		opts.Algorithm = inference.AlphaExpansion
	case "bp":
		opts.Algorithm = inference.BP
	case "trws":
		opts.Algorithm = inference.TRWS
	case "table-centric":
		opts.Algorithm = inference.TableCentric
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *alg))
	}
	opts.Planner = wwt.PlannerOptions{
		ElideProbe2:      *planElide,
		ElideConfidence:  *planElideConf,
		DeadlineDegrade:  *planDegrade,
		DegradeMaxTables: *planDegradeTables,
	}
	sched, err := wwt.ParseSchedule(*schedule)
	if err != nil {
		fatal(err)
	}

	coeffsPath := *planCoeffs
	coeffsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "plan-coeffs" {
			coeffsSet = true
		}
	})
	if !coeffsSet {
		coeffsPath = filepath.Join(*idxDir, "plan-coeffs.json")
	}

	eng, form, tables, err := openBackend(*idxDir, &opts)
	if err != nil {
		fatal(err)
	}
	defer eng.Close()

	// Warm the cost model from the last run's calibration, when a sidecar
	// is present; a missing file just starts cold. A corrupt or
	// version-mismatched sidecar is fatal (delete it to recalibrate) —
	// silently serving with wrong coefficients would be worse.
	if coeffsPath != "" {
		if loaded, err := eng.Planner().LoadFile(coeffsPath); err != nil {
			fatal(err)
		} else if loaded {
			fmt.Printf("wwt-serve: planner coefficients loaded from %s\n", coeffsPath)
		}
	}

	srv := serve.New(eng, serve.Config{
		Workers:         *workers,
		MaxInFlight:     *maxInFlight,
		QueueDepth:      *queueDepth,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		MaxBatchSize:    *maxBatch,
		DefaultSchedule: sched,
	})
	// Header/read/idle timeouts bound the layer below admission control:
	// without them a slow-header (slowloris) client pins a goroutine and
	// fd per connection without ever reaching the in-flight semaphore. No
	// WriteTimeout — response time is governed by the per-query deadlines.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("wwt-serve: %d tables (%s), listening on %s\n", tables, form, *addr)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Printf("wwt-serve: %v, draining in-flight batches\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fatal(fmt.Errorf("drain: %w", err))
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
		// Persist what this run learned so the next start resumes warm.
		// Best-effort: a full disk must not turn a clean drain into a
		// non-zero exit.
		if coeffsPath != "" {
			if err := eng.Planner().SaveFile(coeffsPath); err != nil {
				fmt.Fprintln(os.Stderr, "wwt-serve:", err)
			} else {
				fmt.Printf("wwt-serve: planner coefficients saved to %s\n", coeffsPath)
			}
		}
		fmt.Println("wwt-serve: drained, bye")
	}
}

// engineHandle is what main needs from either engine form: the serving
// backend plus planner-sidecar and shutdown hooks.
type engineHandle interface {
	serve.Backend
	Planner() *plan.Estimator
	Close() error
}

// openBackend prefers the live segmented engine over the flat index
// (manifest-aware, memory-mapped, POST /v1/ingest enabled), falling back
// to the frozen gob snapshot when the directory predates wwt-index's
// flat output. It returns the engine, a human-readable description of
// which form loaded, and the serving table count.
func openBackend(dir string, opts *wwt.Options) (engineHandle, string, int, error) {
	le, err := wwt.OpenLive(dir, opts)
	if err == nil {
		info := le.Info()
		form := fmt.Sprintf("flat index, %d shard(s)", info.Shards)
		if info.Mmapped {
			form = fmt.Sprintf("flat mmap index, %d shard(s)", info.Shards)
		}
		form += fmt.Sprintf(", live generation %d, %d segment(s)", info.Generation, info.Segments)
		return le, form, info.Docs, nil
	}
	if !errors.Is(err, fs.ErrNotExist) {
		return nil, "", 0, err
	}
	st, err := index.LoadStore(filepath.Join(dir, "store.gob"))
	if err != nil {
		return nil, "", 0, err
	}
	ix, err := index.Load(filepath.Join(dir, "index.gob"))
	if err != nil {
		return nil, "", 0, err
	}
	return wwt.NewEngineFrom(ix, st, opts), "gob index", st.Len(), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wwt-serve:", err)
	os.Exit(1)
}
