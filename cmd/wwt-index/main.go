// Command wwt-index runs the offline pipeline of §2.1 over a crawl
// directory produced by wwt-corpus (or any directory with the same
// manifest layout): parse each page, extract data tables with title/
// header/context detection, and persist the boosted 3-field index and the
// table store.
//
// Alongside the gob snapshot it writes the sharded flat index
// (docs.wwt + postings-NNN.wwt) that wwt-serve memory-maps for O(1)
// startup; -shards controls how many postings shards the terms are
// hashed across.
//
//	wwt-index -crawl ./crawl -out ./idx -shards 4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"wwt/internal/extract"
	"wwt/internal/index"
	"wwt/internal/wtable"
)

type manifestEntry struct {
	URL  string `json:"url"`
	File string `json:"file"`
}

func main() {
	crawl := flag.String("crawl", "crawl", "crawl directory (from wwt-corpus)")
	out := flag.String("out", "idx", "output directory for index.gob, store.gob and the flat shard files")
	shards := flag.Int("shards", 1, "postings shards for the flat index (terms are hashed across shards)")
	flatVersion := flag.Int("flat-version", 2, "flat index format version: 2 (WWTFLT02, block-max postings) or 1 (WWTFLT01, for older readers)")
	blockSize := flag.Int("block-size", index.DefaultBlockSize, "postings per block-max block (v2 only; must be > 0)")
	flag.Parse()
	// Validate the flat-format options before the (long) extract+build run,
	// with the same versioned precision the writer itself enforces.
	if *flatVersion != 1 && *flatVersion != 2 {
		fatal(fmt.Errorf("flat format version %d not supported, this build writes 1 (WWTFLT01) and 2 (WWTFLT02)", *flatVersion))
	}
	if *flatVersion == 2 && *blockSize <= 0 {
		fatal(fmt.Errorf("flat format v2 (WWTFLT02) requires a positive -block-size, got %d", *blockSize))
	}

	start := time.Now()
	data, err := os.ReadFile(filepath.Join(*crawl, "manifest.json"))
	if err != nil {
		fatal(err)
	}
	var manifest []manifestEntry
	if err := json.Unmarshal(data, &manifest); err != nil {
		fatal(err)
	}

	opts := extract.NewOptions()
	var tables []*wtable.Table
	pages := 0
	for _, m := range manifest {
		html, err := os.ReadFile(filepath.Join(*crawl, m.File))
		if err != nil {
			fatal(fmt.Errorf("reading %s: %w", m.File, err))
		}
		tables = append(tables, extract.Page(m.URL, string(html), opts)...)
		pages++
	}

	ix, err := index.Build(tables)
	if err != nil {
		fatal(err)
	}
	st := index.NewStore()
	for _, t := range tables {
		if err := st.Add(t); err != nil {
			fatal(err)
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	if err := ix.Save(filepath.Join(*out, "index.gob")); err != nil {
		fatal(err)
	}
	if err := st.Save(filepath.Join(*out, "store.gob")); err != nil {
		fatal(err)
	}
	flatStart := time.Now()
	wopts := index.WriteShardedOptions{FormatVersion: *flatVersion, BlockSize: *blockSize}
	if err := index.WriteShardedWith(*out, index.NewSearcher(ix), *shards, wopts); err != nil {
		fatal(err)
	}
	fmt.Printf("indexed %d tables from %d pages in %.1fs -> %s (flat index: %d shard(s), %.2fs)\n",
		len(tables), pages, time.Since(start).Seconds(), *out, *shards, time.Since(flatStart).Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wwt-index:", err)
	os.Exit(1)
}
