// Command wwt-train runs the exhaustive weight enumeration of §3.4 on a
// training corpus (a different seed than the evaluation corpus) and
// prints the best weight vector and baseline thresholds.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wwt/internal/core"
	"wwt/internal/corpusgen"
	"wwt/internal/eval"
	"wwt/internal/train"
)

func main() {
	seed := flag.Int64("seed", 777, "training corpus seed (keep != eval seed)")
	scale := flag.Float64("scale", 1.0, "corpus size multiplier")
	flag.Parse()

	start := time.Now()
	runner, err := eval.NewRunner(corpusgen.Config{Seed: *seed, Scale: *scale}, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup failed:", err)
		os.Exit(1)
	}
	fmt.Printf("training corpus: %d tables (%.1fs)\n", len(runner.Tables), time.Since(start).Seconds())

	params, werr := train.Weights(runner, core.DefaultParams(), train.DefaultGrid())
	fmt.Printf("best weights: w1=%.2f w2=%.2f w3=%.2f w4=%.2f w5=%.2f we=%.2f  (train F1 error %.2f)\n",
		params.W1, params.W2, params.W3, params.W4, params.W5, params.We, werr)

	cfg, berr := train.BaselineThresholds(runner, train.DefaultThresholdGrid())
	fmt.Printf("best Basic thresholds: relevance=%.2f column=%.2f  (train F1 error %.2f)\n",
		cfg.RelevanceThreshold, cfg.ColumnThreshold, berr)

	rel := train.MeasureReliabilities(runner, core.DefaultParams())
	fmt.Printf("measured outSim reliabilities (paper: 1.0, 0.9, 0.5, 1.0, 0.8):\n")
	fmt.Printf("  T=%.2f C=%.2f Hc=%.2f Hr=%.2f B=%.2f  (support %v)\n",
		rel.Title, rel.Context, rel.OtherHeaderRow, rel.OtherHeaderCol, rel.Body, rel.Support)
	fmt.Printf("total %.1fs\n", time.Since(start).Seconds())
}
