// Command wwt-ingest pushes tables into a running wwt-serve daemon via
// POST /v1/ingest: an HTML page (every extracted data table) or a CSV
// file (one table, first record as header). The daemon freezes the batch
// into a new index segment and hot-swaps the serving generation — no
// restart, no dropped queries.
//
//	wwt-ingest -addr http://localhost:8080 -html page.html -url http://example.com/page
//	wwt-ingest -addr http://localhost:8080 -csv rates.csv -id rates-2026 -title "Exchange rates"
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "wwt-serve base URL")
	htmlPath := flag.String("html", "", "HTML page to extract tables from")
	pageURL := flag.String("url", "", "source URL of the HTML page (mints table IDs; required with -html)")
	csvPath := flag.String("csv", "", "CSV file to ingest as one table (first record is the header)")
	id := flag.String("id", "", "corpus-unique table ID for -csv")
	title := flag.String("title", "", "table title for -csv")
	timeout := flag.Duration("timeout", 30*time.Second, "request timeout")
	flag.Parse()
	if flag.NArg() != 0 || (*htmlPath == "" && *csvPath == "") {
		fmt.Fprintln(os.Stderr, "usage: wwt-ingest -addr URL (-html FILE -url PAGEURL | -csv FILE -id ID [-title T])")
		os.Exit(2)
	}

	req := map[string]any{}
	if *htmlPath != "" {
		if *pageURL == "" {
			fatal(fmt.Errorf("-html requires -url"))
		}
		src, err := os.ReadFile(*htmlPath)
		if err != nil {
			fatal(err)
		}
		req["html"] = string(src)
		req["url"] = *pageURL
	}
	if *csvPath != "" {
		if *id == "" {
			fatal(fmt.Errorf("-csv requires -id"))
		}
		data, err := os.ReadFile(*csvPath)
		if err != nil {
			fatal(err)
		}
		req["csv"] = []map[string]string{{"id": *id, "title": *title, "data": string(data)}}
	}

	body, err := json.Marshal(req)
	if err != nil {
		fatal(err)
	}
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Post(strings.TrimRight(*addr, "/")+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(out))))
	}
	fmt.Printf("wwt-ingest: %s", out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wwt-ingest:", err)
	os.Exit(1)
}
