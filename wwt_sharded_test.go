package wwt_test

import (
	"testing"

	"wwt"
	"wwt/internal/index"
)

// TestEngineShardedFlatRoundTrip: an engine opened from the flat sharded
// on-disk index must answer identically to the in-memory engine it was
// written from, and must surface per-shard doc-set cache counters.
func TestEngineShardedFlatRoundTrip(t *testing.T) {
	tables := smallCorpus(t)
	eng, err := wwt.NewEngine(tables, nil)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := index.WriteSharded(dir, eng.Searcher(), 2); err != nil {
		t.Fatal(err)
	}
	ss, err := index.OpenSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng2 := wwt.NewEngineFromSharded(ss, eng.Store, nil)
	defer eng2.Close()
	if eng2.Sharded() == nil || eng2.Sharded().Shards() != 2 {
		t.Fatalf("sharded engine not wired to a 2-shard searcher")
	}

	q := wwt.Query{Columns: []string{"country", "currency"}}
	a, err := eng.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Release()
	b, err := eng2.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Release()
	if len(a.Answer.Rows) != len(b.Answer.Rows) {
		t.Fatalf("flat-opened engine differs: %d vs %d rows", len(b.Answer.Rows), len(a.Answer.Rows))
	}
	for i := range a.Answer.Rows {
		for c := range a.Answer.Rows[i].Cells {
			if a.Answer.Rows[i].Cells[c] != b.Answer.Rows[i].Cells[c] {
				t.Fatalf("row %d cell %d differs: %q vs %q",
					i, c, b.Answer.Rows[i].Cells[c], a.Answer.Rows[i].Cells[c])
			}
		}
		if a.Answer.Rows[i].Support != b.Answer.Rows[i].Support {
			t.Fatalf("row %d support differs", i)
		}
	}

	// Drive the PMI doc-set cache directly (the tiny corpus's answer path
	// doesn't reach the PMI feature), then check the per-shard breakdown is
	// populated and consistent.
	pmi := eng2.PMISource()
	for i := 0; i < 2; i++ { // second pass hits
		pmi.HeaderContextDocs([]string{"country"})
		pmi.HeaderContextDocs([]string{"currency"})
		pmi.ContentDocs([]string{"france", "euro"})
	}
	cs := eng2.CacheStats()
	if len(cs.DocSetShards) != 2 {
		t.Fatalf("DocSetShards has %d entries, want 2", len(cs.DocSetShards))
	}
	var hits, misses uint64
	for _, sh := range cs.DocSetShards {
		hits += sh.Hits
		misses += sh.Misses
	}
	if hits != cs.DocSets.Hits || misses != cs.DocSets.Misses {
		t.Fatalf("per-shard counters %d/%d do not sum to aggregate %d/%d",
			hits, misses, cs.DocSets.Hits, cs.DocSets.Misses)
	}
	if cs.DocSets.Misses == 0 {
		t.Fatal("doc-set cache recorded no misses; PMI probes not routed through it?")
	}

	// The in-memory engine keeps the single-shard layout and no per-shard
	// breakdown.
	if got := eng.CacheStats().DocSetShards; got != nil {
		t.Fatalf("single-shard engine reports DocSetShards = %v, want nil", got)
	}
}
