package wwt_test

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"wwt"
	"wwt/internal/text"
)

// TestAnswerConcurrent exercises the full pipeline from many goroutines at
// once (run under -race): the frozen searcher, the PMI doc-set cache, the
// shared view cache and the parallel model build must all be safe to share,
// and every goroutine must see identical results for identical queries.
func TestAnswerConcurrent(t *testing.T) {
	eng, err := wwt.NewEngine(smallCorpus(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	queries := []wwt.Query{
		{Columns: []string{"country", "currency"}},
		{Columns: []string{"name", "area"}},
		{Columns: []string{"currency"}},
	}
	// Reference results, computed serially.
	type outcome struct {
		rows     [][]string
		labeling [][]int
	}
	want := make([]outcome, len(queries))
	for i, q := range queries {
		res, err := eng.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range res.Answer.Rows {
			want[i].rows = append(want[i].rows, row.Cells)
		}
		want[i].labeling = res.Labeling.Y
		res.Release() // rows/labeling stay valid after Release; only the arena returns
	}

	const goroutines = 8
	const rounds = 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				qi := (g + r) % len(queries)
				res, err := eng.Answer(queries[qi])
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				var rows [][]string
				for _, row := range res.Answer.Rows {
					rows = append(rows, row.Cells)
				}
				if !reflect.DeepEqual(rows, want[qi].rows) {
					t.Errorf("goroutine %d query %d: rows diverged", g, qi)
					return
				}
				if !reflect.DeepEqual(res.Labeling.Y, want[qi].labeling) {
					t.Errorf("goroutine %d query %d: labeling diverged", g, qi)
					return
				}
				res.Release()
			}
		}(g)
	}
	wg.Wait()
}

// TestAnswerConcurrentPairSimCache hammers the cross-query pair-similarity
// cache (run under -race): the queries share candidate tables, so many
// goroutines look up — and race to populate — the same view-pair entries,
// and every goroutine must still see the exact same model edges.
func TestAnswerConcurrentPairSimCache(t *testing.T) {
	eng, err := wwt.NewEngine(smallCorpus(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Overlapping two-column queries over the same currency tables: every
	// query's candidate set shares table pairs with the others.
	queries := []wwt.Query{
		{Columns: []string{"country", "currency"}},
		{Columns: []string{"currency", "country"}},
		{Columns: []string{"country"}},
		{Columns: []string{"currency"}},
		{Columns: []string{"name", "area"}},
	}
	ref := make([]*wwt.Result, len(queries))
	for i, q := range queries {
		res, err := eng.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		ref[i] = res
	}

	const goroutines = 16
	const rounds = 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				qi := (g*7 + r) % len(queries)
				res, err := eng.Answer(queries[qi])
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if !reflect.DeepEqual(res.Model.Edges, ref[qi].Model.Edges) {
					t.Errorf("goroutine %d query %d: model edges diverged", g, qi)
					return
				}
				if !reflect.DeepEqual(res.Labeling.Y, ref[qi].Labeling.Y) {
					t.Errorf("goroutine %d query %d: labeling diverged", g, qi)
					return
				}
				res.Release() // after the Model.Edges check: Release nils Model
			}
		}(g)
	}
	wg.Wait()
}

// TestAnswerScratchPoolConcurrent hammers the engine's scratch-arena pool
// (run under -race): 16 goroutines answer overlapping queries, each
// releasing its arena back to the shared pool, so arenas are constantly
// recycled between goroutines mid-flight. Every result must be identical
// to the serial fresh-scratch reference run (whose arenas are deliberately
// never released, so the references cannot alias the pool).
func TestAnswerScratchPoolConcurrent(t *testing.T) {
	eng, err := wwt.NewEngine(smallCorpus(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	queries := []wwt.Query{
		{Columns: []string{"country", "currency"}},
		{Columns: []string{"currency", "country"}},
		{Columns: []string{"country"}},
		{Columns: []string{"name", "area"}},
	}
	// Serial fresh-scratch references: retained (not Released), so they own
	// their arenas for the test's lifetime.
	ref := make([]*wwt.Result, len(queries))
	for i, q := range queries {
		res, err := eng.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		ref[i] = res
	}

	const goroutines = 16
	const rounds = 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				qi := (g*5 + r) % len(queries)
				res, err := eng.Answer(queries[qi])
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				ok := reflect.DeepEqual(res.Labeling.Y, ref[qi].Labeling.Y) &&
					reflect.DeepEqual(res.Model.Edges, ref[qi].Model.Edges) &&
					reflect.DeepEqual(res.Answer, ref[qi].Answer)
				res.Release()
				if !ok {
					t.Errorf("goroutine %d query %d: pooled result diverged from fresh reference", g, qi)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestAnswerWarmPoolAllocs guards the scratch-pool win: a warm-pool Answer
// + Release cycle must stay under a fixed allocation ceiling, so later
// changes can't silently reintroduce per-query grid churn. The ceiling is
// loose (inherent per-query allocations: result payload, hits, labeling,
// query-token normalization) but far below the thousands of allocations
// the unpooled build used to make. Second-probe cell normalization is
// served by the engine's NormCache (see TestNormCacheWarmZeroAlloc for
// the cache-level guard); the ceiling here assumes those hits stay free.
func TestAnswerWarmPoolAllocs(t *testing.T) {
	eng, err := wwt.NewEngine(smallCorpus(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	q := wwt.Query{Columns: []string{"country", "currency"}}
	// Warm every cache and the arena pool.
	for i := 0; i < 3; i++ {
		res, err := eng.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		res.Release()
	}
	allocs := testing.AllocsPerRun(50, func() {
		res, err := eng.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		res.Release()
	})
	const ceiling = 280 // measured ~189 warm with the norm cache
	if allocs > ceiling {
		t.Errorf("warm-pool Answer allocates %.0f/op, ceiling %d", allocs, ceiling)
	}
}

// TestEngineProbeMatchesMapScorer pins the engine's frozen-searcher probe
// to the reference map-based scorer at the API level: same hits, same
// order, same scores.
func TestEngineProbeMatchesMapScorer(t *testing.T) {
	eng, err := wwt.NewEngine(smallCorpus(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, cols := range [][]string{
		{"country", "currency"},
		{"name", "area"},
		{"forest reserves"},
	} {
		var tokens []string
		for _, c := range cols {
			tokens = append(tokens, text.Normalize(c)...)
		}
		for _, k := range []int{0, 1, 2, 40} {
			want := eng.Index.Search(tokens, k)
			got := eng.Searcher().Search(tokens, k)
			if len(want) != len(got) {
				t.Fatalf("cols %v k=%d: %d hits, want %d", cols, k, len(got), len(want))
			}
			for i := range want {
				if want[i].ID != got[i].ID || math.Abs(want[i].Score-got[i].Score) > 1e-9 {
					t.Fatalf("cols %v k=%d hit %d: got %+v, want %+v", cols, k, i, got[i], want[i])
				}
			}
		}
	}
}
