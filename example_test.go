package wwt_test

// Runnable godoc examples for the public API. They compile and run under
// `go test`, so the documented usage can never rot.

import (
	"fmt"
	"log"

	"wwt"
	"wwt/internal/extract"
	"wwt/internal/wtable"
)

// examplePages is a tiny three-page "web crawl": two pages about
// currencies (one table headerless) and one irrelevant page. A slice, not
// a map, so extraction order — and therefore every example's output — is
// deterministic.
var examplePages = []struct{ url, html string }{
	{"http://money.example/currencies", `<html><head><title>Currencies of the world</title></head><body>
<h1>World currencies by country</h1><p>This article lists currencies of the world.</p>
<table><tr><th>Country</th><th>Currency</th></tr>
<tr><td>France</td><td>Euro</td></tr><tr><td>Japan</td><td>Yen</td></tr>
<tr><td>India</td><td>Indian rupee</td></tr><tr><td>Brazil</td><td>Real</td></tr></table>
</body></html>`},
	{"http://blog.example/travel-money", `<html><head><title>Travel money tips</title></head><body>
<table><tr><td>France</td><td>Euro</td></tr><tr><td>Japan</td><td>Yen</td></tr>
<tr><td>India</td><td>Indian rupee</td></tr><tr><td>Brazil</td><td>Real</td></tr></table>
</body></html>`},
	{"http://parks.example/reserves", `<html><head><title>Forest reserves</title></head><body>
<p>Forest reserves under the forestry act.</p>
<table><tr><th>ID</th><th>Name</th><th>Area</th></tr>
<tr><td>7</td><td>Shakespeare Hills</td><td>2236</td></tr>
<tr><td>9</td><td>Plains Creek</td><td>880</td></tr></table>
</body></html>`},
}

// exampleEngine extracts the example pages (§2.1, offline) and indexes
// them into a ready engine.
func exampleEngine() *wwt.Engine {
	var tables []*wtable.Table
	for _, p := range examplePages {
		tables = append(tables, extract.Page(p.url, p.html, extract.NewOptions())...)
	}
	eng, err := wwt.NewEngine(tables, nil)
	if err != nil {
		log.Fatal(err)
	}
	return eng
}

// ExampleEngine_Answer runs one column-keyword query through the full
// pipeline and prints the consolidated answer rows.
func ExampleEngine_Answer() {
	eng := exampleEngine()
	res, err := eng.Answer(wwt.Query{Columns: []string{"country", "currency"}})
	if err != nil {
		log.Fatal(err)
	}
	defer res.Release()
	for _, row := range res.Answer.Rows {
		fmt.Printf("%s: %s (support %d)\n", row.Cells[0], row.Cells[1], row.Support)
	}
	// Output:
	// Brazil: Real (support 2)
	// France: Euro (support 2)
	// India: Indian rupee (support 2)
	// Japan: Yen (support 2)
}

// ExampleEngine_AnswerBatch answers several queries as one batch on a
// bounded worker pool. A member that fails — here a stopword-only query —
// fills only its own error slot; the rest of the batch completes.
func ExampleEngine_AnswerBatch() {
	eng := exampleEngine()
	queries := []wwt.Query{
		{Columns: []string{"country", "currency"}},
		{Columns: []string{"name", "area"}},
		{Columns: []string{"the of a"}}, // stopwords only: this member errors
	}
	br := eng.AnswerBatch(queries, 2)
	defer br.Release()
	for i := range queries {
		if err := br.Errs[i]; err != nil {
			fmt.Printf("query %d failed: %v\n", i, err)
			continue
		}
		res := br.Results[i]
		fmt.Printf("query %d: %d answer rows from %d candidate tables\n",
			i, len(res.Answer.Rows), len(res.Tables))
	}
	// Output:
	// query 0: 4 answer rows from 2 candidate tables
	// query 1: 2 answer rows from 1 candidate tables
	// query 2 failed: wwt: query has no content words
}

// ExampleResult_Release shows the arena contract: Release recycles the
// pooled scratch behind the Result (nilling the scratch-backed Model),
// while the answer rows, labeling and tables own their storage and stay
// valid afterwards.
func ExampleResult_Release() {
	eng := exampleEngine()
	res, err := eng.Answer(wwt.Query{Columns: []string{"country", "currency"}})
	if err != nil {
		log.Fatal(err)
	}
	first := res.Answer.Rows[0]
	res.Release()
	fmt.Printf("model recycled: %v\n", res.Model == nil)
	fmt.Printf("rows still valid: %s: %s\n", first.Cells[0], first.Cells[1])
	// Output:
	// model recycled: true
	// rows still valid: Brazil: Real
}
