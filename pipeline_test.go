package wwt

// Internal pipeline tests: pooled-arena answers must be bit-identical to
// fresh-arena answers. These run in package wwt (not wwt_test) so they can
// drive the pipeline with hand-built scratches.

import (
	"reflect"
	"testing"

	"wwt/internal/consolidate"
	"wwt/internal/corpusgen"
	"wwt/internal/extract"
	"wwt/internal/inference"
	"wwt/internal/workload"
)

// TestAnswerScratchEquivalence answers the evaluation workload (the query
// set behind Table 1 / Fig. 5 / Fig. 7) twice per query on one engine —
// once through the warm engine pool (arena dirty from every earlier
// query), once with a virgin arena — and demands bit-identical results for
// every inference algorithm: labeling, model edges, node potentials,
// stage-1 state, answer rows and their ranking.
func TestAnswerScratchEquivalence(t *testing.T) {
	corpus := corpusgen.Generate(corpusgen.Config{Seed: 2012, Scale: 0.25})
	tables := corpus.ExtractAll(extract.NewOptions())
	queries := workload.FromCorpus(corpus)
	if len(queries) == 0 {
		t.Fatal("no workload queries")
	}
	for _, alg := range inference.Algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			opts := DefaultOptions()
			opts.Algorithm = alg
			eng, err := NewEngine(tables, &opts)
			if err != nil {
				t.Fatal(err)
			}
			// Dirty the pool: every query leaves its footprint in some
			// arena, so the comparison runs see thoroughly stale buffers.
			for _, q := range queries {
				if res, err := eng.Answer(Query{Columns: q.Columns}); err == nil {
					res.Release()
				}
			}
			for _, q := range queries {
				wq := Query{Columns: q.Columns}
				pooled, errP := eng.Answer(wq)
				fresh, errF := eng.answer(nil, wq, &QueryScratch{})
				if (errP == nil) != (errF == nil) {
					t.Fatalf("%v: pooled err %v, fresh err %v", q.Columns, errP, errF)
				}
				if errP != nil {
					continue
				}
				if pooled.UsedProbe2 != fresh.UsedProbe2 {
					t.Fatalf("%v: UsedProbe2 %v != %v", q.Columns, pooled.UsedProbe2, fresh.UsedProbe2)
				}
				if len(pooled.Tables) != len(fresh.Tables) {
					t.Fatalf("%v: %d tables != %d", q.Columns, len(pooled.Tables), len(fresh.Tables))
				}
				for i := range pooled.Tables {
					if pooled.Tables[i].ID != fresh.Tables[i].ID {
						t.Fatalf("%v: table %d = %s, want %s", q.Columns, i, pooled.Tables[i].ID, fresh.Tables[i].ID)
					}
				}
				if !reflect.DeepEqual(pooled.Labeling.Y, fresh.Labeling.Y) {
					t.Fatalf("%v: labeling diverged", q.Columns)
				}
				if !reflect.DeepEqual(pooled.Model.Edges, fresh.Model.Edges) {
					t.Fatalf("%v: edges diverged", q.Columns)
				}
				if !reflect.DeepEqual(pooled.Model.Node, fresh.Model.Node) {
					t.Fatalf("%v: node potentials diverged", q.Columns)
				}
				if !reflect.DeepEqual(pooled.Model.Dist, fresh.Model.Dist) ||
					!reflect.DeepEqual(pooled.Model.Conf, fresh.Model.Conf) ||
					!reflect.DeepEqual(pooled.Model.Rel, fresh.Model.Rel) {
					t.Fatalf("%v: stage-1 state diverged", q.Columns)
				}
				// Answer rows, including ranking, support, sources, scores.
				if !reflect.DeepEqual(pooled.Answer, fresh.Answer) {
					t.Fatalf("%v: consolidated answer diverged", q.Columns)
				}
				pooled.Release()
			}
		})
	}
}

// TestResultReleaseIdempotent: double Release must be a no-op, and Release
// must not invalidate the answer payload (rows, labeling, tables).
func TestResultReleaseIdempotent(t *testing.T) {
	corpus := corpusgen.Generate(corpusgen.Config{Seed: 7, Scale: 0.1})
	tables := corpus.ExtractAll(extract.NewOptions())
	queries := workload.FromCorpus(corpus)
	if len(queries) == 0 {
		t.Skip("no workload queries at this scale")
	}
	eng, err := NewEngine(tables, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Use a query that actually produces answer rows.
	var res *Result
	for _, q := range queries {
		r, err := eng.Answer(Query{Columns: q.Columns})
		if err != nil {
			continue
		}
		if len(r.Answer.Rows) > 0 {
			res = r
			break
		}
		r.Release()
	}
	if res == nil {
		t.Skip("no workload query produced rows at this scale")
	}
	// Independent deep copy of the payload, to detect any later corruption
	// of the retained result.
	rows := make([]consolidate.Row, len(res.Answer.Rows))
	for i, r := range res.Answer.Rows {
		rows[i] = r
		rows[i].Cells = append([]string(nil), r.Cells...)
		rows[i].Sources = append([]string(nil), r.Sources...)
	}
	labeling := res.Labeling.Clone()
	res.Release()
	if res.Model != nil || res.scratch != nil {
		t.Error("Release must nil the scratch-backed model and arena")
	}
	res.Release() // must not panic or double-free
	// Overwrite the recycled arena with a different query...
	if res2, err := eng.Answer(Query{Columns: queries[len(queries)-1].Columns}); err == nil {
		defer res2.Release()
	}
	// ...and the released result's payload must be untouched.
	if len(res.Answer.Rows) != len(rows) {
		t.Fatalf("row count changed after Release + reuse: %d, want %d", len(res.Answer.Rows), len(rows))
	}
	for i := range rows {
		if !reflect.DeepEqual(res.Answer.Rows[i], rows[i]) {
			t.Errorf("row %d corrupted after Release + reuse:\n got %+v\nwant %+v", i, res.Answer.Rows[i], rows[i])
		}
	}
	if !reflect.DeepEqual(res.Labeling.Y, labeling.Y) {
		t.Error("labeling corrupted after Release + reuse")
	}
}
